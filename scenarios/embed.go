// Package scenarios holds the committed scenario config files of the
// declarative scenario DSL (see internal/scenario). Every *.toml here is
// parsed, bound, and registered at startup by internal/scenario's init;
// dataset.NewByName resolves names against that registry. The package
// intentionally has no Go logic so internal/scenario can embed the files
// without an import cycle.
package scenarios

import "embed"

// FS exposes the committed scenario configs.
//
//go:embed *.toml
var FS embed.FS
