package gendt

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each iteration regenerates the experiment end to end
// (dataset synthesis, model training, generation, metrics) at the quick
// scale, reporting wall-clock per full reproduction; run with
//
//	go test -bench=. -benchmem
//
// For paper-scale numbers use `gendt-experiments -scale default`. The
// benchmarks print the headline rows once so the output doubles as a
// compact reproduction record.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/experiments"
)

// benchOpt returns the benchmark experiment scale with a fixed seed.
func benchOpt() experiments.Options {
	return experiments.QuickOptions()
}

// printOnce ensures each benchmark prints its headline rows a single time
// regardless of the iteration count chosen by the harness.
var printOnce sync.Map

func headline(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("%s", text)
	}
}

func BenchmarkTable1DatasetAStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchOpt())
		if len(rows) != 3 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t1", experiments.RenderStats("Table 1", rows))
	}
}

func BenchmarkTable2DatasetBStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(benchOpt())
		if len(rows) != 4 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t2", experiments.RenderStats("Table 2", rows))
	}
}

func BenchmarkFig1RSRPStochasticity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rr := experiments.Figures1And2(benchOpt(), 5)
		if rr.SpreadDB <= 0 {
			b.Fatal("no stochasticity")
		}
		headline(b, "f1", fmt.Sprintf("Figures 1-2: spread %.1f dB, churn correlation %.2f",
			rr.SpreadDB, rr.ChurnCorrelation))
	}
}

func BenchmarkFig2ServingCellChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rr := experiments.Figures1And2(benchOpt(), 3)
		if len(rr.ServingIDs) != 3 {
			b.Fatal("missing serving series")
		}
	}
}

func BenchmarkFig4CellDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cases := experiments.Figure4(benchOpt())
		if len(cases) != 7 {
			b.Fatalf("got %d cases", len(cases))
		}
		headline(b, "f4", experiments.RenderDensity(cases))
	}
}

func BenchmarkFig16ServingCellDistanceCDF(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		d := dataset.NewDatasetB(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
		cdfs := experiments.Figure16(d)
		if len(cdfs) != 4 {
			b.Fatalf("got %d cdfs", len(cdfs))
		}
		headline(b, "f16", experiments.RenderCDFs("Figure 16", cdfs))
	}
}

func BenchmarkTable3DatasetARSRP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(benchOpt())
		if len(rows) != 18 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t3", experiments.RenderFidelity("Table 3 (quick scale)", rows))
	}
}

func BenchmarkTable4DatasetAAllKPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(benchOpt())
		if len(rows) != 24 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t4", experiments.RenderFidelity("Table 4 (quick scale)", rows))
	}
}

func BenchmarkTable5DatasetBRSRP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table5(benchOpt())
		if len(rows) != 24 { // 6 methods x 4 scenarios
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t5", experiments.RenderFidelity("Table 5 (quick scale)", rows))
	}
}

func BenchmarkTable6DatasetBAvg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table6(benchOpt())
		if len(rows) != 12 { // 6 methods x 2 channels
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t6", experiments.RenderFidelity("Table 6 (quick scale)", rows))
	}
}

func BenchmarkTable7LongTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table7(benchOpt())
		if len(rows) != 12 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t7", experiments.RenderFidelity("Table 7 (quick scale)", rows))
	}
}

func BenchmarkTable8ShortStitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table8(benchOpt())
		if len(rows) != 3 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t8", experiments.RenderTable8(rows))
	}
}

func BenchmarkFig9LongTrajectoryEnvelope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.Figure9(benchOpt(), 4)
		if len(env.Real) == 0 {
			b.Fatal("empty envelope")
		}
		headline(b, "f9", fmt.Sprintf("Figure 9: coverage %.0f%%, pooled HWD %.2f",
			env.Coverage*100, env.HWD))
	}
}

func BenchmarkFig10StitchingArtifacts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure10(benchOpt())
		if len(f.Real) == 0 {
			b.Fatal("empty series")
		}
		headline(b, "f10", fmt.Sprintf("Figure 10: boundary-jump excess %.2f dB (stitch len %d)",
			f.BoundaryJumpExcess, f.ShortLen))
	}
}

func BenchmarkFig11MeasurementEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.Figure11(benchOpt(), 5, 2)
		if len(c.Uncertainty) == 0 || len(c.Random) == 0 {
			b.Fatal("empty curves")
		}
		headline(b, "f11", experiments.RenderFigure11(c))
	}
}

func BenchmarkTable9QoEPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table9(benchOpt())
		if len(rows) != 8 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t9", experiments.RenderTable9(rows))
	}
}

func BenchmarkTable10Handover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table10(benchOpt())
		if len(res.Rows) != 6 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
		headline(b, "t10", experiments.RenderTable10(res))
	}
}

func BenchmarkTable12Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table12(benchOpt())
		if len(rows) != 5 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "t12", experiments.RenderTable12(rows))
	}
}

func BenchmarkFig18SampleSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Figure18(benchOpt())
		if len(s.Real) == 0 {
			b.Fatal("empty series")
		}
		headline(b, "f18", fmt.Sprintf("Figure 18: %d-step walk series generated (GenDT + Real-Context DG)", len(s.Real)))
	}
}

// Component micro-benchmarks: the hot paths a user of the library pays for.

func BenchmarkModelTrainEpoch(b *testing.B) {
	opt := benchOpt()
	d := dataset.NewDatasetA(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
	chans := RSRPRSRQChannels()
	train := PrepareAll(d.TrainRuns(), chans, opt.MaxCells)
	cfg := Config{
		Channels: chans, Hidden: opt.Hidden,
		BatchLen: opt.BatchLen, StepLen: opt.StepLen,
		MaxCells: opt.MaxCells, Epochs: 1, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewModel(cfg)
		m.Train(train, nil)
	}
}

func BenchmarkModelGenerate(b *testing.B) {
	opt := benchOpt()
	d := dataset.NewDatasetA(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
	chans := RSRPRSRQChannels()
	train := PrepareAll(d.TrainRuns(), chans, opt.MaxCells)
	m := NewModel(Config{
		Channels: chans, Hidden: opt.Hidden,
		BatchLen: opt.BatchLen, StepLen: opt.StepLen,
		MaxCells: opt.MaxCells, Epochs: 1, Seed: 1,
	})
	m.Train(train, nil)
	seq := PrepareSequence(d.TestRuns()[0], chans, opt.MaxCells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := m.Generate(seq); len(out) != seq.Len() {
			b.Fatal("bad generation")
		}
	}
}

// benchModelSetup prepares the quick-scale training set and config used by
// the allocation/parallelism benchmarks (BENCH_train.json tracks these).
func benchModelSetup(workers int) ([]*Sequence, *Sequence, Config) {
	opt := benchOpt()
	d := dataset.NewDatasetA(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
	chans := RSRPRSRQChannels()
	train := PrepareAll(d.TrainRuns(), chans, opt.MaxCells)
	cfg := Config{
		Channels: chans, Hidden: opt.Hidden,
		BatchLen: opt.BatchLen, StepLen: opt.StepLen,
		MaxCells: opt.MaxCells, Epochs: 1, Seed: 1,
		Workers: workers,
	}
	test := PrepareSequence(d.TestRuns()[0], chans, opt.MaxCells)
	return train, test, cfg
}

// BenchmarkTrain measures one training epoch with the serial loop
// (workers=1) and the data-parallel engine at full width.
func BenchmarkTrain(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			train, _, cfg := benchModelSetup(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := NewModel(cfg)
				b.StartTimer()
				m.Train(train, nil)
			}
		})
	}
}

// BenchmarkGenerate measures single-sequence generation on a trained
// model across the three serving backends: the live float64 model (the
// training-faithful path) and the frozen f32/int8 inference kernels
// (BENCH_infer.json tracks the speedups). One model is trained and frozen
// outside the timer so the sub-benchmarks compare pure generation cost.
func BenchmarkGenerate(b *testing.B) {
	train, test, cfg := benchModelSetup(1)
	m := NewModel(cfg)
	m.Train(train, nil)

	run := func(b *testing.B, g ModelGenerator) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if out := g.GenerateSeeded(test, int64(1)); len(out) != test.Len() {
				b.Fatal("bad generation")
			}
		}
	}
	b.Run("f64", func(b *testing.B) {
		// Generate (not GenerateSeeded) keeps the historical measurement:
		// the serial hot path on the model's own RNG stream.
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if out := m.Generate(test); len(out) != test.Len() {
				b.Fatal("bad generation")
			}
		}
	})
	for _, p := range []Precision{PrecisionF32, PrecisionInt8} {
		im, err := m.Freeze(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(p), func(b *testing.B) { run(b, im) })
	}
}

// BenchmarkGenerateBatch measures the frozen backends' lockstep batched
// GenerateJobs engine at paper-scale weights (Hidden=100), where weight
// bandwidth dominates: every layer-step issues one packed GEMM across the
// micro-batch instead of one GEMV per sequence. x1 is the sequential
// baseline (a singleton chunk takes the job-at-a-time path); x4/x8 step
// that many sequences in lockstep on one worker, so ns/op ratios read
// directly as aggregate-throughput amortization (the seq/s metric reports
// it explicitly). BENCH_infer.json tracks the batched trajectory.
func BenchmarkGenerateBatch(b *testing.B) {
	opt := benchOpt()
	d := dataset.NewDatasetA(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
	chans := RSRPRSRQChannels()
	train := PrepareAll(d.TrainRuns(), chans, opt.MaxCells)
	cfg := Config{
		Channels: chans, Hidden: 100,
		BatchLen: opt.BatchLen, StepLen: opt.StepLen,
		MaxCells: opt.MaxCells, Epochs: 1, Seed: 1, Workers: 1,
	}
	m := NewModel(cfg)
	m.Train(train, nil)
	test := PrepareSequence(d.TestRuns()[0], chans, opt.MaxCells)

	for _, p := range []Precision{PrecisionF32, PrecisionInt8} {
		im, err := m.Freeze(p)
		if err != nil {
			b.Fatal(err)
		}
		g := im.WithWorkers(1)
		for _, n := range []int{1, 4, 8} {
			jobs := make([]core.GenJob, n)
			for i := range jobs {
				jobs[i] = core.GenJob{Seq: test, Seed: core.DeriveSeed(1, i)}
			}
			b.Run(fmt.Sprintf("%sx%d", p, n), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if out := g.GenerateJobs(jobs); len(out) != n {
						b.Fatal("bad generation")
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "seq/s")
			})
		}
	}
}

// BenchmarkModelUncertainty measures the k-pass MC-dropout uncertainty,
// serial vs fanned out across the worker pool.
func BenchmarkModelUncertainty(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			train, test, cfg := benchModelSetup(workers)
			m := NewModel(cfg)
			m.Train(train, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if u := m.ModelUncertainty(test, 4); u < 0 {
					b.Fatal("bad uncertainty")
				}
			}
		})
	}
}

func BenchmarkDriveTestSimulation(b *testing.B) {
	d := dataset.NewDatasetA(dataset.Spec{Seed: 1, Scale: 0.02})
	tr := d.Runs[0].Traj
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs := d.World.RepeatedRuns(tr, 1, int64(i))
		if len(runs[0]) != len(tr) {
			b.Fatal("bad simulation")
		}
	}
}

func BenchmarkDTWMetric(b *testing.B) {
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i] = float64(i % 37)
		y[i] = float64((i + 3) % 37)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DTW(x, y, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtMDTComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtMDTComparison(benchOpt())
		if len(rows) != 3 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "extmdt", experiments.RenderMDT(rows))
	}
}

func BenchmarkExtClosedLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtClosedLoop(benchOpt())
		if len(rows) != 2 {
			b.Fatalf("got %d rows", len(rows))
		}
		headline(b, "extcl", experiments.RenderClosedLoop(rows))
	}
}
