package gendt

import (
	"math"
	"math/rand"
	"testing"
)

// TestFacadeQuickstart exercises the documented public-API flow end to end.
func TestFacadeQuickstart(t *testing.T) {
	data := NewDatasetA(DatasetSpec{Seed: 71, Scale: 0.015})
	chans := RSRPRSRQChannels()
	train := PrepareAll(data.TrainRuns(), chans, 6)
	model := NewModel(Config{
		Channels: chans,
		Hidden:   8, BatchLen: 10, StepLen: 5, MaxCells: 6, Epochs: 2, Seed: 1,
	})
	model.Train(train, nil)
	test := PrepareSequence(data.TestRuns()[0], chans, 6)
	norm := model.Generate(test)
	series := model.DenormalizeSeries(norm)
	if len(series) != 2 || len(series[0]) != test.Len() {
		t.Fatalf("series shape [%d][%d]", len(series), len(series[0]))
	}
	for _, v := range series[0] {
		if v < -140 || v > -44 {
			t.Fatalf("RSRP %v outside physical range", v)
		}
	}
	// Metrics over the facade.
	real := make([]float64, test.Len())
	for i := range real {
		real[i] = chans[0].Denormalize(test.KPIs[i][0])
	}
	if _, err := MAE(real, series[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := DTW(real, series[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := HWD(real, series[0], 30); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeBaselines exercises the baseline constructors through the
// Generator interface.
func TestFacadeBaselines(t *testing.T) {
	data := NewDatasetA(DatasetSpec{Seed: 72, Scale: 0.015})
	chans := RSRPRSRQChannels()
	train := PrepareAll(data.TrainRuns(), chans, 6)
	test := PrepareSequence(data.TestRuns()[0], chans, 6)
	gens := []Generator{
		NewFDaS(2, 1),
		NewMLP(2, 8, 1, 2e-3, 2),
		NewLSTMGNN(2, 8, 1, 3e-3, 3),
		NewDG(2, 8, 1, true, 4),
	}
	for _, g := range gens {
		g.Fit(train)
		out := g.Generate(test)
		if len(out) != test.Len() {
			t.Errorf("%s: length %d", g.Name(), len(out))
		}
	}
}

// TestFacadePartition checks the §6.2.2 subset helper via the facade.
func TestFacadePartition(t *testing.T) {
	data := NewDatasetA(DatasetSpec{Seed: 73, Scale: 0.015})
	parts := Partition(data.TrainRuns(), 3)
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
}

// TestFacadeExperimentOptions checks preset plumbing.
func TestFacadeExperimentOptions(t *testing.T) {
	if DefaultExperimentOptions().Scale <= QuickExperimentOptions().Scale {
		t.Error("default scale should exceed quick scale")
	}
}

// TestFacadeVirtualDriveTest exercises the paper's operational workflow
// through the facade: sketch a route from waypoints, annotate it with
// operator-held context (no measurement), and generate KPIs with a
// trained model.
func TestFacadeVirtualDriveTest(t *testing.T) {
	data := NewDatasetA(DatasetSpec{Seed: 74, Scale: 0.015})
	chans := RSRPRSRQChannels()
	model := NewModel(Config{
		Channels: chans,
		Hidden:   8, BatchLen: 10, StepLen: 5, MaxCells: 6, Epochs: 1, Seed: 3,
	})
	model.Train(PrepareAll(data.TrainRuns(), chans, 6), nil)

	start := data.Runs[0].Traj.Centroid()
	wps := []Point{start}
	for _, brg := range []float64{45, 135} {
		wps = append(wps, offsetPoint(start, brg, 400))
	}
	tr := RouteThrough(wps, CityDriveProfile, 1, rand.New(rand.NewSource(9)))
	if len(tr) < 10 {
		t.Fatalf("route too short: %d", len(tr))
	}
	run := Run{Scenario: "custom", Traj: tr, Meas: data.World.Annotate(tr)}
	seq := PrepareSequence(run, chans, 6)
	series := model.DenormalizeSeries(model.Generate(seq))
	if len(series[0]) != len(tr) {
		t.Fatalf("generated %d steps for %d-sample route", len(series[0]), len(tr))
	}
	for _, v := range series[0] {
		if v < -140 || v > -44 {
			t.Fatalf("generated RSRP %v outside physical range", v)
		}
	}
}

func offsetPoint(p Point, brg, dist float64) Point {
	// Small-offset approximation adequate for test routes.
	const mPerDegLat = 111320.0
	rad := brg * 3.14159265 / 180
	return Point{
		Lat: p.Lat + dist*math.Cos(rad)/mPerDegLat,
		Lon: p.Lon + dist*math.Sin(rad)/(mPerDegLat*math.Cos(p.Lat*3.14159265/180)),
	}
}
