package dataset

import (
	"math"
	"testing"

	"gendt/internal/radio"
	"gendt/internal/sim"
)

// smallSpec keeps test datasets fast to build.
var smallSpec = Spec{Seed: 1, Scale: 0.02}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"A", "a", "B", "b"} {
		d, err := NewByName(name, smallSpec)
		if err != nil {
			t.Fatalf("NewByName(%q): %v", name, err)
		}
		if d.World == nil || len(d.Runs) == 0 {
			t.Fatalf("NewByName(%q) returned empty dataset", name)
		}
	}
	if _, err := NewByName("C", smallSpec); err == nil {
		t.Fatal("unknown dataset name must error")
	}
}

func TestDatasetAScenarios(t *testing.T) {
	d := NewDatasetA(smallSpec)
	scens := d.Scenarios()
	want := []string{ScenarioWalk, ScenarioBus, ScenarioTram}
	if len(scens) != len(want) {
		t.Fatalf("scenarios = %v, want %v", scens, want)
	}
	for i := range want {
		if scens[i] != want[i] {
			t.Fatalf("scenarios = %v, want %v", scens, want)
		}
	}
}

func TestDatasetATrainTestSplitGeographicallyDisjoint(t *testing.T) {
	d := NewDatasetA(smallSpec)
	train, test := d.TrainRuns(), d.TestRuns()
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("split produced %d train / %d test runs", len(train), len(test))
	}
	// Every test run should keep a nonzero minimum distance from every
	// train run (the paper avoids geographic proximity between splits).
	for _, te := range test {
		for _, tr := range train {
			if d := te.Traj.MinDistanceTo(tr.Traj); d < 100 {
				t.Errorf("test run (%s) within %v m of a train run (%s)", te.Scenario, d, tr.Scenario)
			}
		}
	}
}

func TestDatasetAStatsPlausible(t *testing.T) {
	d := NewDatasetA(Spec{Seed: 2, Scale: 0.05})
	st := d.ScenarioStats(ScenarioWalk)
	if st.TimeGranularity != 1 {
		t.Errorf("walk granularity = %v, want 1 s", st.TimeGranularity)
	}
	if st.AvgVelocity < 0.8 || st.AvgVelocity > 2.2 {
		t.Errorf("walk velocity = %v m/s", st.AvgVelocity)
	}
	if st.AvgRSRP > -60 || st.AvgRSRP < -110 {
		t.Errorf("walk avg RSRP = %v dBm, implausible", st.AvgRSRP)
	}
	if st.StdRSRP < 2 || st.StdRSRP > 18 {
		t.Errorf("walk std RSRP = %v dB, implausible", st.StdRSRP)
	}
	if st.Samples == 0 {
		t.Error("no samples")
	}
	tram := d.ScenarioStats(ScenarioTram)
	if tram.AvgVelocity <= st.AvgVelocity {
		t.Errorf("tram velocity %v should exceed walk %v", tram.AvgVelocity, st.AvgVelocity)
	}
}

func TestDatasetBScenariosAndGranularity(t *testing.T) {
	d := NewDatasetB(smallSpec)
	if got := len(d.Scenarios()); got != 4 {
		t.Fatalf("Dataset B has %d scenarios, want 4", got)
	}
	hw := d.ScenarioStats(ScenarioHighway1)
	cc := d.ScenarioStats(ScenarioCity1)
	if hw.TimeGranularity >= cc.TimeGranularity {
		t.Errorf("highway granularity %v should be finer than city %v", hw.TimeGranularity, cc.TimeGranularity)
	}
	if hw.AvgVelocity < 18 {
		t.Errorf("highway velocity = %v m/s, want >= 18", hw.AvgVelocity)
	}
	if cc.AvgVelocity > 18 {
		t.Errorf("city velocity = %v m/s, want < 18", cc.AvgVelocity)
	}
}

func TestDatasetBHighwayDwellShorter(t *testing.T) {
	d := NewDatasetB(Spec{Seed: 3, Scale: 0.05})
	hw := d.ScenarioStats(ScenarioHighway2)
	if hw.AvgServingDwell <= 0 {
		t.Skip("no handovers in scaled-down run")
	}
	if hw.AvgServingDwell > 600 {
		t.Errorf("highway serving dwell = %v s, implausibly long", hw.AvgServingDwell)
	}
}

func TestLongComplexRunSpansUnseenCities(t *testing.T) {
	spec := Spec{Seed: 4, Scale: 0.1}
	d := NewDatasetB(spec)
	long := LongComplexRun(d, spec)
	if long.Train {
		t.Error("long run must be test data")
	}
	if len(long.Meas) != len(long.Traj) {
		t.Fatalf("measurements %d != trajectory samples %d", len(long.Meas), len(long.Traj))
	}
	// The long trajectory must stay away from all training runs.
	for _, tr := range d.TrainRuns() {
		if dist := long.Traj.MinDistanceTo(tr.Traj); dist < 2000 {
			t.Errorf("long trajectory within %v m of training run %s", dist, tr.Scenario)
		}
	}
	// It should be mostly in coverage.
	covered := 0
	for _, m := range long.Meas {
		if m.ServingCell >= 0 && m.RSRP > radio.RSRPMin {
			covered++
		}
	}
	if frac := float64(covered) / float64(len(long.Meas)); frac < 0.9 {
		t.Errorf("long trajectory only %v covered", frac)
	}
}

func TestPartitionDisjointAndComplete(t *testing.T) {
	d := NewDatasetA(smallSpec)
	train := d.TrainRuns()
	parts := Partition(train, 5)
	if len(parts) != 5 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	for _, p := range parts {
		for _, r := range p {
			total += len(r.Meas)
		}
	}
	want := 0
	for _, r := range train {
		want += len(r.Meas)
	}
	if total != want {
		t.Errorf("partition covers %d samples, want %d", total, want)
	}
	// Chunks from the same run must not overlap in time.
	for pi, p := range parts {
		for pj := pi + 1; pj < len(parts); pj++ {
			for _, a := range p {
				for _, b := range parts[pj] {
					if a.Scenario == b.Scenario && len(a.Traj) > 0 && len(b.Traj) > 0 {
						aLo, aHi := a.Traj[0].T, a.Traj[len(a.Traj)-1].T
						bLo, bHi := b.Traj[0].T, b.Traj[len(b.Traj)-1].T
						if aLo < bHi && bLo < aHi && sameRun(a, b) {
							t.Fatalf("parts %d and %d overlap in time", pi, pj)
						}
					}
				}
			}
		}
	}
}

// sameRun approximates identity of origin run via first-point equality of
// the parent trajectory; with chunked slices the underlying arrays differ,
// so compare scenario + overlap instead.
func sameRun(a, b Run) bool { return a.Scenario == b.Scenario && a.Train == b.Train }

func TestStatsStringNonEmpty(t *testing.T) {
	d := NewDatasetA(smallSpec)
	if s := d.ScenarioStats(ScenarioBus).String(); len(s) == 0 {
		t.Error("empty stats string")
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a := NewDatasetA(Spec{Seed: 5, Scale: 0.02})
	b := NewDatasetA(Spec{Seed: 5, Scale: 0.02})
	sa := sim.Series(a.Runs[0].Meas, radio.KPIRSRP)
	sb := sim.Series(b.Runs[0].Meas, radio.KPIRSRP)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed produced different data at %d", i)
		}
	}
}

func TestScenarioMeansNearPaper(t *testing.T) {
	// Shape check against paper Tables 1-2: RSRP means in the -80s dBm,
	// RSRQ in the -8..-15 dB band.
	d := NewDatasetA(Spec{Seed: 6, Scale: 0.05})
	for _, s := range d.Scenarios() {
		st := d.ScenarioStats(s)
		if st.AvgRSRP < -100 || st.AvgRSRP > -70 {
			t.Errorf("%s avg RSRP = %v, outside plausible band", s, st.AvgRSRP)
		}
		if st.AvgRSRQ < -19 || st.AvgRSRQ > -3 {
			t.Errorf("%s avg RSRQ = %v, outside plausible band", s, st.AvgRSRQ)
		}
		if math.IsNaN(st.StdRSRQ) {
			t.Errorf("%s std RSRQ is NaN", s)
		}
	}
}

func TestWithExtraCellsAndNewSiteAt(t *testing.T) {
	d := NewDatasetA(smallSpec)
	before := len(d.World.Deployment.Cells)
	spot := d.Runs[0].Traj.Centroid()
	extra := NewSiteAt(spot, 100000, 3, 43)
	if len(extra) != 3 {
		t.Fatalf("NewSiteAt produced %d cells", len(extra))
	}
	w := d.WithExtraCells(extra)
	if got := len(w.Deployment.Cells); got != before+3 {
		t.Fatalf("augmented deployment has %d cells, want %d", got, before+3)
	}
	// Original world unchanged.
	if len(d.World.Deployment.Cells) != before {
		t.Fatal("WithExtraCells mutated the original deployment")
	}
	// The new site is visible near the spot.
	found := false
	for _, v := range w.Deployment.Visible(spot, 500) {
		if v.Cell.ID >= 100000 {
			found = true
		}
	}
	if !found {
		t.Error("new site not visible at its own location")
	}
}
