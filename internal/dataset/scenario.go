package dataset

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"

	"gendt/internal/scenario"
)

// FromScenario compiles a bound scenario into a Dataset — the path every
// registered config file (including A and B themselves) takes through
// NewByName.
func FromScenario(sc *scenario.Scenario, spec Spec) (*Dataset, error) {
	w, built, err := scenario.Build(sc, spec.Seed, spec.scale())
	if err != nil {
		return nil, err
	}
	d := &Dataset{Name: sc.Name, World: w, Runs: make([]Run, len(built))}
	for i, r := range built {
		d.Runs[i] = Run{Scenario: r.Scenario, Train: r.Train, Traj: r.Traj, Meas: r.Meas}
	}
	return d, nil
}

// Fingerprint hashes everything observable about the dataset — deployment
// cells, every trajectory sample, and every measurement including context
// annotations — with FNV-64a over exact float bits. Two datasets share a
// fingerprint iff they are bit-identical, which is how the golden
// regression test proves the DSL-compiled A/B equal the historical
// constructors.
func (d *Dataset) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wf := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	wi := func(i int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		h.Write(buf[:])
	}
	wb := func(b bool) {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	io.WriteString(h, d.Name)
	for _, c := range d.World.Deployment.Cells {
		wi(int64(c.ID))
		wf(c.Site.Lat)
		wf(c.Site.Lon)
		wf(c.PMaxDBm)
		wf(c.Azimuth)
		wf(c.BeamWidth)
		wf(c.Height)
		wf(c.PeakGainDBi)
		wf(c.FrontToBackDB)
	}
	for _, r := range d.Runs {
		io.WriteString(h, r.Scenario)
		wb(r.Train)
		for _, s := range r.Traj {
			wf(s.T)
			wf(s.Point.Lat)
			wf(s.Point.Lon)
		}
		for i := range r.Meas {
			m := &r.Meas[i]
			wf(m.T)
			wf(m.RSRP)
			wf(m.RSRQ)
			wf(m.SINR)
			wf(m.CQI)
			wf(m.RSSI)
			wi(int64(m.ServingCell))
			wb(m.Handover)
			for _, v := range m.Visible {
				wi(int64(v.Cell.ID))
				wf(v.Distance)
			}
			for _, e := range m.EnvCtx {
				wf(e)
			}
			for _, l := range m.VisibleLoad {
				wf(l)
			}
		}
	}
	return h.Sum64()
}
