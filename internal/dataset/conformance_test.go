package dataset

import (
	"math"
	"testing"

	"gendt/internal/env"
	"gendt/internal/geo"
	"gendt/internal/radio"
	"gendt/internal/scenario"
)

// conformanceScale keeps every conformance build cheap while leaving
// enough route length for the geometry checks to bite. It is small enough
// that even the longest-reaching scenario (Highway 1's train runs) cannot
// stray into its test region.
const conformanceScale = 0.005

// TestScenarioConformance is the table-driven lockdown over *every*
// registered scenario — builtins and any future additions alike. For each
// scenario it checks:
//
//   - sample counts: every run's trajectory and measurement series match
//     the duration/interval contract (within ±1 sample);
//   - value ranges: every KPI lies inside its physical bounds, serving
//     cells are real deployment cells (or -1 out of coverage), loads stay
//     in the clamped band, and environment context is well-formed;
//   - split disjointness: train and test routes never come near each
//     other geographically;
//   - seed determinism: the same seed reproduces the dataset bit for bit
//     and a different seed does not.
//
// A new scenario config is covered automatically the moment it is
// committed under scenarios/ — there is nothing to add here.
func TestScenarioConformance(t *testing.T) {
	names := scenario.Names()
	if len(names) < 5 {
		t.Fatalf("expected at least the 5 builtin scenarios, registry has %v", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, ok := scenario.Lookup(name)
			if !ok {
				t.Fatalf("registry listed %q but Lookup failed", name)
			}
			spec := Spec{Seed: 11, Scale: conformanceScale}
			d, err := FromScenario(sc, spec)
			if err != nil {
				t.Fatalf("FromScenario: %v", err)
			}
			checkSampleCounts(t, sc, d, spec)
			checkValueRanges(t, d)
			checkSplitDisjoint(t, d)
			checkSeedDeterminism(t, sc, d, spec)
		})
	}
}

func checkSampleCounts(t *testing.T, sc *scenario.Scenario, d *Dataset, spec Spec) {
	t.Helper()
	ri := 0
	for _, m := range sc.Measures {
		perRun := m.DurationS * spec.Scale / float64(m.Runs)
		want := int(perRun/m.IntervalS) + 1
		for k := 0; k < m.Runs; k++ {
			run := d.Runs[ri]
			ri++
			if run.Scenario != m.Name {
				t.Fatalf("run %d: scenario %q, expected measure %q", ri-1, run.Scenario, m.Name)
			}
			if len(run.Traj) != len(run.Meas) {
				t.Errorf("%s run %d: %d trajectory samples but %d measurements", m.Name, k, len(run.Traj), len(run.Meas))
			}
			if diff := len(run.Meas) - want; diff < -1 || diff > 1 {
				t.Errorf("%s run %d: %d samples, want %d±1 (duration %.1f s at %.2g s)",
					m.Name, k, len(run.Meas), want, perRun, m.IntervalS)
			}
			// The measurement clock must advance by the configured interval.
			if len(run.Meas) > 1 {
				dt := run.Meas[1].T - run.Meas[0].T
				if math.Abs(dt-m.IntervalS) > 1e-9 {
					t.Errorf("%s run %d: sample spacing %.4f s, want %.4f s", m.Name, k, dt, m.IntervalS)
				}
			}
		}
	}
	if ri != len(d.Runs) {
		t.Errorf("measures account for %d runs, dataset has %d", ri, len(d.Runs))
	}
}

func checkValueRanges(t *testing.T, d *Dataset) {
	t.Helper()
	ids := map[int]bool{}
	for _, c := range d.World.Deployment.Cells {
		ids[c.ID] = true
	}
	for i, r := range d.Runs {
		for j := range r.Meas {
			m := &r.Meas[j]
			for _, v := range []struct {
				name   string
				val    float64
				lo, hi float64
			}{
				{"RSRP", m.RSRP, radio.RSRPMin, radio.RSRPMax},
				{"RSRQ", m.RSRQ, radio.RSRQMin, radio.RSRQMax},
				{"SINR", m.SINR, radio.SINRMin, radio.SINRMax},
				{"CQI", m.CQI, radio.CQIMin, radio.CQIMax},
			} {
				if math.IsNaN(v.val) || v.val < v.lo || v.val > v.hi {
					t.Fatalf("run %d sample %d: %s = %v outside [%v, %v]", i, j, v.name, v.val, v.lo, v.hi)
				}
			}
			if m.ServingCell != -1 && !ids[m.ServingCell] {
				t.Fatalf("run %d sample %d: serving cell %d not in deployment", i, j, m.ServingCell)
			}
			if len(m.VisibleLoad) != len(m.Visible) {
				t.Fatalf("run %d sample %d: %d loads for %d visible cells", i, j, len(m.VisibleLoad), len(m.Visible))
			}
			for _, l := range m.VisibleLoad {
				if l < 0.05 || l > 0.95 {
					t.Fatalf("run %d sample %d: load %v outside clamp band [0.05, 0.95]", i, j, l)
				}
			}
			if len(m.EnvCtx) != env.NumAttributes {
				t.Fatalf("run %d sample %d: context dim %d, want %d", i, j, len(m.EnvCtx), env.NumAttributes)
			}
			for a := 0; a < env.NumLandUse; a++ {
				if m.EnvCtx[a] < 0 || m.EnvCtx[a] > 1 {
					t.Fatalf("run %d sample %d: land-use share %d = %v outside [0, 1]", i, j, a, m.EnvCtx[a])
				}
			}
			for a := env.NumLandUse; a < env.NumAttributes; a++ {
				if m.EnvCtx[a] < 0 {
					t.Fatalf("run %d sample %d: negative PoI count %d = %v", i, j, a, m.EnvCtx[a])
				}
			}
		}
	}
}

// checkSplitDisjoint verifies the geographic train/test separation the
// paper's evaluation protocol depends on: no train sample within 100 m of
// any test sample of the same measurement scenario.
func checkSplitDisjoint(t *testing.T, d *Dataset) {
	t.Helper()
	const minSeparationM = 100.0
	for _, name := range d.Scenarios() {
		var train, test geo.Trajectory
		for _, r := range d.ScenarioRuns(name) {
			if r.Train {
				train = append(train, r.Traj...)
			} else {
				test = append(test, r.Traj...)
			}
		}
		if len(train) == 0 || len(test) == 0 {
			t.Errorf("%s: missing a split (train %d, test %d samples)", name, len(train), len(test))
			continue
		}
		closest := math.Inf(1)
		for _, a := range train {
			for _, b := range test {
				if d := geo.Distance(a.Point, b.Point); d < closest {
					closest = d
				}
			}
		}
		if closest < minSeparationM {
			t.Errorf("%s: train and test routes approach to %.1f m (< %.0f m)", name, closest, minSeparationM)
		}
	}
}

func checkSeedDeterminism(t *testing.T, sc *scenario.Scenario, d *Dataset, spec Spec) {
	t.Helper()
	again, err := FromScenario(sc, spec)
	if err != nil {
		t.Fatalf("FromScenario (rebuild): %v", err)
	}
	if d.Fingerprint() != again.Fingerprint() {
		t.Errorf("same seed produced different datasets: %#x vs %#x", d.Fingerprint(), again.Fingerprint())
	}
	other, err := FromScenario(sc, Spec{Seed: spec.Seed + 1, Scale: spec.Scale})
	if err != nil {
		t.Fatalf("FromScenario (reseed): %v", err)
	}
	if d.Fingerprint() == other.Fingerprint() {
		t.Errorf("different seeds produced identical datasets (%#x)", d.Fingerprint())
	}
}
