package dataset

import (
	"strings"
	"testing"
)

// FuzzNewByName hammers the dataset-by-name entry point with arbitrary
// names: it must never panic, must accept exactly the documented names,
// and must return a descriptive error for everything else. Scale is kept
// tiny so the accepted paths stay cheap.
func FuzzNewByName(f *testing.F) {
	for _, s := range []string{"A", "a", "B", "b", "", "C", "AB", "A ", " b", "aa", "\x00", "ä"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		d, err := NewByName(name, Spec{Seed: 1, Scale: 0.002})
		valid := name == "A" || name == "a" || name == "B" || name == "b"
		if valid {
			if err != nil {
				t.Fatalf("NewByName(%q): unexpected error %v", name, err)
			}
			if d == nil || d.World == nil || len(d.Runs) == 0 {
				t.Fatalf("NewByName(%q): incomplete dataset %+v", name, d)
			}
			if got := strings.ToUpper(name); d.Name != got {
				t.Fatalf("NewByName(%q): Name = %q, want %q", name, d.Name, got)
			}
		} else {
			if err == nil {
				t.Fatalf("NewByName(%q): expected error", name)
			}
			if d != nil {
				t.Fatalf("NewByName(%q): non-nil dataset alongside error", name)
			}
			if !strings.Contains(err.Error(), "unknown dataset") {
				t.Fatalf("NewByName(%q): undescriptive error %q", name, err)
			}
		}
	})
}
