package dataset

import (
	"strings"
	"testing"

	"gendt/internal/scenario"
)

// FuzzNewByName hammers the dataset-by-name entry point with arbitrary
// names: it must never panic, must accept exactly the registered scenario
// names (case-insensitively), and must return a descriptive error listing
// the registry for everything else. Scale is kept tiny so the accepted
// paths stay cheap.
func FuzzNewByName(f *testing.F) {
	for _, s := range []string{"A", "a", "B", "b", "NR5G", "nr5g", "Tunnel", "Suburb",
		"", "C", "AB", "A ", " b", "aa", "\x00", "ä"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		d, err := NewByName(name, Spec{Seed: 1, Scale: 0.002})
		sc, valid := scenario.Lookup(name)
		if valid {
			if err != nil {
				t.Fatalf("NewByName(%q): unexpected error %v", name, err)
			}
			if d == nil || d.World == nil || len(d.Runs) == 0 {
				t.Fatalf("NewByName(%q): incomplete dataset %+v", name, d)
			}
			if d.Name != sc.Name {
				t.Fatalf("NewByName(%q): Name = %q, want canonical %q", name, d.Name, sc.Name)
			}
		} else {
			if err == nil {
				t.Fatalf("NewByName(%q): expected error", name)
			}
			if d != nil {
				t.Fatalf("NewByName(%q): non-nil dataset alongside error", name)
			}
			if !strings.Contains(err.Error(), "unknown dataset") {
				t.Fatalf("NewByName(%q): undescriptive error %q", name, err)
			}
			for _, reg := range scenario.Names() {
				if !strings.Contains(err.Error(), reg) {
					t.Fatalf("NewByName(%q): error %q does not list registered scenario %q", name, err, reg)
				}
			}
		}
	})
}

// TestNewByNameErrorListsScenarios pins the error message contract: the
// unknown-name error enumerates every registered scenario, sorted, so a
// user who typos a name sees what is available.
func TestNewByNameErrorListsScenarios(t *testing.T) {
	_, err := NewByName("no-such-scenario", Spec{Seed: 1, Scale: 0.01})
	if err == nil {
		t.Fatal("expected error for unknown scenario name")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown dataset "no-such-scenario"`) {
		t.Errorf("error does not name the bad input: %q", msg)
	}
	names := scenario.Names()
	for _, want := range []string{"A", "B", "NR5G", "Suburb", "Tunnel"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin scenario %q not registered (have %v)", want, names)
		}
	}
	if !strings.Contains(msg, "registered scenarios: "+strings.Join(names, ", ")) {
		t.Errorf("error does not list the sorted registry %v: %q", names, msg)
	}
}
