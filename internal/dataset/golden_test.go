package dataset

import (
	"os"
	"testing"

	"gendt/internal/scenario"
)

// Committed fingerprints of the historical constructors at Seed=42,
// Scale=0.05. If these change, dataset synthesis is no longer reproducing
// the bytes every committed golden and trained model was built against.
const (
	goldenFingerprintA = 0x7d285f8fc7615375
	goldenFingerprintB = 0x3785e9e56fd8c985
)

// TestScenarioGoldenBitIdentity proves the DSL-compiled datasets are
// byte-identical to the historical hard-coded constructors: same cells,
// same trajectories, same measurements, bit for bit. This is the lockdown
// that lets NewByName route everything through scenario configs without a
// regression risk.
func TestScenarioGoldenBitIdentity(t *testing.T) {
	spec := Spec{Seed: 42, Scale: 0.05}
	cases := []struct {
		name   string
		legacy func(Spec) *Dataset
		want   uint64
	}{
		{"A", NewDatasetA, goldenFingerprintA},
		{"B", NewDatasetB, goldenFingerprintB},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy := tc.legacy(spec)
			lfp := legacy.Fingerprint()
			if lfp != tc.want {
				t.Errorf("legacy constructor fingerprint = %#x, committed golden %#x", lfp, tc.want)
			}
			sc, ok := scenario.Lookup(tc.name)
			if !ok {
				t.Fatalf("scenario %q not registered", tc.name)
			}
			built, err := FromScenario(sc, spec)
			if err != nil {
				t.Fatalf("FromScenario(%q): %v", tc.name, err)
			}
			bfp := built.Fingerprint()
			if bfp != lfp {
				t.Errorf("DSL-compiled fingerprint = %#x, legacy constructor = %#x", bfp, lfp)
			}
			if len(built.Runs) != len(legacy.Runs) {
				t.Fatalf("run count: DSL %d, legacy %d", len(built.Runs), len(legacy.Runs))
			}
			for i := range built.Runs {
				if built.Runs[i].Scenario != legacy.Runs[i].Scenario || built.Runs[i].Train != legacy.Runs[i].Train {
					t.Errorf("run %d: DSL (%q train=%v), legacy (%q train=%v)", i,
						built.Runs[i].Scenario, built.Runs[i].Train,
						legacy.Runs[i].Scenario, legacy.Runs[i].Train)
				}
			}
		})
	}
}

// TestScenarioGoldenBitIdentityFullScale repeats the identity check at
// Scale=1.0 — the paper-sized datasets. Building both copies of A and B at
// full scale takes minutes, so the test only runs when asked:
// GENDT_FULL_SCALE_GOLDEN=1 go test ./internal/dataset -run FullScale
func TestScenarioGoldenBitIdentityFullScale(t *testing.T) {
	if os.Getenv("GENDT_FULL_SCALE_GOLDEN") == "" {
		t.Skip("set GENDT_FULL_SCALE_GOLDEN=1 to run the full-scale identity check")
	}
	spec := Spec{Seed: 42, Scale: 1.0}
	for _, name := range []string{"A", "B"} {
		legacy := map[string]func(Spec) *Dataset{"A": NewDatasetA, "B": NewDatasetB}[name](spec)
		sc, _ := scenario.Lookup(name)
		built, err := FromScenario(sc, spec)
		if err != nil {
			t.Fatalf("FromScenario(%q): %v", name, err)
		}
		if got, want := built.Fingerprint(), legacy.Fingerprint(); got != want {
			t.Errorf("%s: full-scale DSL fingerprint %#x != legacy %#x", name, got, want)
		}
	}
}
