// Package dataset synthesizes the two drive-test measurement datasets the
// paper evaluates on (§2.3) from the simulator substrate: Dataset A
// (walk/bus/tram around one city centre at 1 s granularity, à la Nemo
// Handy) and Dataset B (city driving and highways over a multi-city region
// at coarser Android-API granularity, à la the CNI Cell Tracker dataset).
// It also provides the geographically disjoint train/test split, the
// 23-subset partition used by the measurement-efficiency experiment
// (§6.2), the long/complex 3-city trajectory (§6.1.3), and the summary
// statistics of Tables 1–2.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"gendt/internal/cells"
	"gendt/internal/env"
	"gendt/internal/geo"
	"gendt/internal/metrics"
	"gendt/internal/radio"
	"gendt/internal/scenario"
	"gendt/internal/sim"
)

// Scenario names for Dataset A (paper Table 1).
const (
	ScenarioWalk = "Walk"
	ScenarioBus  = "Bus"
	ScenarioTram = "Tram"
)

// Scenario names for Dataset B (paper Table 2).
const (
	ScenarioCity1    = "City Center 1"
	ScenarioCity2    = "City Center 2"
	ScenarioHighway1 = "Highway 1"
	ScenarioHighway2 = "Highway 2"
)

// Run is one measurement campaign: a trajectory and its measurements.
type Run struct {
	Scenario string
	Train    bool // member of the training split
	Traj     geo.Trajectory
	Meas     []sim.Measurement
}

// Dataset bundles a simulated world and the measurement runs taken in it.
type Dataset struct {
	Name  string
	World *sim.World
	Runs  []Run
}

// Spec controls dataset synthesis.
type Spec struct {
	Seed int64
	// Scale multiplies the per-scenario measurement duration; 1.0
	// approximates the paper's sample counts (Tables 1-2), smaller values
	// give proportionally shorter runs for fast tests.
	Scale float64
}

func (s Spec) scale() float64 {
	if s.Scale <= 0 {
		return 1
	}
	return s.Scale
}

// TrainRuns returns the runs in the training split.
func (d *Dataset) TrainRuns() []Run { return d.filter(true) }

// TestRuns returns the runs in the held-out testing split.
func (d *Dataset) TestRuns() []Run { return d.filter(false) }

func (d *Dataset) filter(train bool) []Run {
	var out []Run
	for _, r := range d.Runs {
		if r.Train == train {
			out = append(out, r)
		}
	}
	return out
}

// ScenarioRuns returns all runs of one scenario.
func (d *Dataset) ScenarioRuns(name string) []Run {
	var out []Run
	for _, r := range d.Runs {
		if r.Scenario == name {
			out = append(out, r)
		}
	}
	return out
}

// Scenarios returns the distinct scenario names in declaration order.
func (d *Dataset) Scenarios() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range d.Runs {
		if !seen[r.Scenario] {
			seen[r.Scenario] = true
			out = append(out, r.Scenario)
		}
	}
	return out
}

// NewByName builds a dataset by scenario name (case-insensitive) — the
// shared world handle long-lived services construct once and hold
// resident, so route annotation does not rebuild the deployment and
// environment map per request. Names resolve against the scenario
// registry: the committed configs under scenarios/ ("A", "B", "NR5G",
// "Tunnel", "Suburb", ...) plus anything registered at runtime via
// scenario.RegisterFile (the CLIs' -scenario-file flag).
func NewByName(name string, spec Spec) (*Dataset, error) {
	if sc, ok := scenario.Lookup(name); ok {
		return FromScenario(sc, spec)
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q (registered scenarios: %s)",
		name, strings.Join(scenario.Names(), ", "))
}

// originA anchors Dataset A (a UK-like city centre).
var originA = geo.Point{Lat: 55.9533, Lon: -3.1883}

// originB anchors Dataset B (a German-like multi-city region).
var originB = geo.Point{Lat: 51.5136, Lon: 7.4653}

// NewDatasetA builds the Dataset A analogue: one city with a dense core,
// three mobility scenarios (walk, bus, tram) measured at 1 s granularity.
// Each scenario contributes several runs; runs are split into train/test by
// geography (train routes in the western half, test routes in the east).
func NewDatasetA(spec Spec) *Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	// Deployment: dense urban core plus suburban ring.
	cs := cells.Generate(cells.DeploymentSpec{
		Origin: originA, ExtentKm: 4, SitesPerKm2: 7, Sectors: 3, Jitter: 0.2, PMaxJitter: 4,
	}, rng)
	ring := cells.Generate(cells.DeploymentSpec{
		Origin: originA, ExtentKm: 12, SitesPerKm2: 1.2, Sectors: 3, Jitter: 0.25, PMaxJitter: 4,
		FirstID: len(cs),
	}, rng)
	dep := cells.NewDeployment(append(cs, ring...), originA, 1000)
	em := env.NewMap(env.MapSpec{
		Origin: originA, ExtentKm: 14, CoreKm: 1.8, PoIPerKm2: 60, Seed: spec.Seed + 1,
	})
	w := sim.DefaultWorld(dep, em)
	w.VisibleRange = 2000 // inner-city serving cells are close (paper §4.2)
	w.WorldSeed = spec.Seed

	d := &Dataset{Name: "A", World: w}
	sc := spec.scale()

	// Per paper Table 1: ~15000 samples per scenario at 1 s.
	type scen struct {
		name      string
		profile   geo.SpeedProfile
		duration  float64
		turnEvery float64
		gridSnap  bool
	}
	scens := []scen{
		{ScenarioWalk, geo.WalkProfile, 15000 * sc, 90, true},
		{ScenarioBus, geo.BusProfile, 14000 * sc, 75, true},
		{ScenarioTram, geo.TramProfile, 14000 * sc, 120, false},
	}
	// Six runs per scenario: three train runs starting on the western arc
	// of the core, three test runs on the eastern arc. Spreading the runs
	// over several bearings keeps the two splits geographically disjoint
	// (paper §6.1) while giving both splits comparable coverage statistics.
	const runsPerScenario = 6
	for si, s := range scens {
		for ri := 0; ri < runsPerScenario; ri++ {
			train := ri < runsPerScenario/2
			var side float64
			if train {
				side = 225 + 45*float64(ri) // 225, 270, 315
			} else {
				side = 45 + 45*float64(ri-3) // 45, 90, 135
			}
			start := geo.Offset(originA, side, 900+400*float64(ri%3))
			start = geo.Offset(start, float64(si)*37, 300)
			routeRng := rand.New(rand.NewSource(spec.Seed + int64(100*si+ri)))
			tr := geo.BuildRoute(geo.RouteSpec{
				Start: start, Bearing: float64((si*90 + ri*45) % 360),
				Duration: s.duration / runsPerScenario, Interval: 1,
				Profile: s.profile, TurnEvery: s.turnEvery,
				TurnJitter: 45, GridSnap: s.gridSnap,
			}, routeRng)
			ms := w.DriveTest(tr, rand.New(rand.NewSource(spec.Seed+int64(1000+100*si+ri))))
			d.Runs = append(d.Runs, Run{Scenario: s.name, Train: train, Traj: tr, Meas: ms})
		}
	}
	return d
}

// CityCenters returns the planar anchors of Dataset B's cities: the two
// scenario cities plus the three long-trajectory cities (unused in
// training), mirroring the paper's Dortmund-region layout.
func CityCenters() []geo.Point {
	return []geo.Point{
		originB,                         // city 1 (City Center 1 scenario)
		geo.Offset(originB, 95, 20000),  // city 2 (City Center 2 scenario)
		geo.Offset(originB, 215, 17000), // city 3 (long trajectory)
		geo.Offset(originB, 180, 26000), // city 4 (long trajectory)
		geo.Offset(originB, 140, 21000), // city 5 (long trajectory)
	}
}

// NewDatasetB builds the Dataset B analogue: a wide region with five city
// cores and connecting highway corridors; four measurement scenarios (two
// city drives, two highways) at the coarser granularities of Table 2. The
// long/complex trajectory of §6.1.3 is produced by LongComplexRun against
// the same world.
func NewDatasetB(spec Spec) *Dataset {
	rng := rand.New(rand.NewSource(spec.Seed + 7))
	centers := CityCenters()
	var all []cells.Cell
	next := 0
	// Urban deployments around each city.
	for i, c := range centers {
		density := 4.0
		extent := 6.0
		if i >= 2 {
			density = 3.0 // long-trajectory cities slightly sparser
		}
		cs := cells.Generate(cells.DeploymentSpec{
			Origin: c, ExtentKm: extent, SitesPerKm2: density, Sectors: 3,
			Jitter: 0.25, PMaxJitter: 4, FirstID: next,
		}, rng)
		all = append(all, cs...)
		next += len(cs)
	}
	// Sparse rural background over the whole region.
	bg := cells.Generate(cells.DeploymentSpec{
		Origin: originB, ExtentKm: 60, SitesPerKm2: 0.12, Sectors: 3,
		Jitter: 0.3, PMaxJitter: 4, FirstID: next,
	}, rng)
	all = append(all, bg...)
	next += len(bg)
	// Highway corridors: city1->city2 (Highway 1 scenario) and
	// city3->city4->city5 (the long-trajectory route).
	hw1 := cells.GenerateCorridor(originB, geo.Bearing(centers[0], centers[1]), 20, 2500, 46, next, rng)
	all = append(all, hw1...)
	next += len(hw1)
	hw2 := cells.GenerateCorridor(geo.Offset(originB, 0, 8000), 80, 25, 2800, 46, next, rng)
	all = append(all, hw2...)
	next += len(hw2)
	hwLong1 := cells.GenerateCorridor(centers[2], geo.Bearing(centers[2], centers[3]), 12, 2800, 46, next, rng)
	all = append(all, hwLong1...)
	next += len(hwLong1)
	hwLong2 := cells.GenerateCorridor(centers[3], geo.Bearing(centers[3], centers[4]), 12, 2800, 46, next, rng)
	all = append(all, hwLong2...)

	dep := cells.NewDeployment(all, originB, 1500)
	var cores []env.Core
	for _, c := range centers {
		cores = append(cores, env.Core{Center: c, RadiusKm: 1.8})
	}
	em := env.NewMap(env.MapSpec{
		Origin: originB, ExtentKm: 64, CellM: 400, Cores: cores,
		PoIPerKm2: 8, Seed: spec.Seed + 8,
	})
	w := sim.DefaultWorld(dep, em)
	w.VisibleRange = 4000 // highways see cells up to ~4 km (paper §4.2)
	w.WorldSeed = spec.Seed + 50

	d := &Dataset{Name: "B", World: w}
	sc := spec.scale()

	// Table 2: city scenarios ~2.2e4 samples at ~3.5-3.8 s; highways
	// ~4e4 samples at ~2.2 s.
	type scen struct {
		name     string
		interval float64
		duration float64
	}
	scens := []scen{
		{ScenarioCity1, 3.8, 2.1e4 * 3.8 * sc},
		{ScenarioCity2, 3.5, 2.3e4 * 3.5 * sc},
		{ScenarioHighway1, 2.1, 3.9e4 * 2.1 * sc},
		{ScenarioHighway2, 2.3, 4.6e4 * 2.3 * sc},
	}
	const runsPerScenario = 6
	for si, s := range scens {
		for ri := 0; ri < runsPerScenario; ri++ {
			train := ri < runsPerScenario/2
			routeRng := rand.New(rand.NewSource(spec.Seed + int64(500+100*si+ri)))
			var tr geo.Trajectory
			dur := s.duration / runsPerScenario
			switch s.name {
			case ScenarioCity1, ScenarioCity2:
				center := centers[0]
				if s.name == ScenarioCity2 {
					center = centers[1]
				}
				// Train runs on the western arc, test runs on the eastern
				// arc, at several bearings each.
				var side float64
				if train {
					side = 225 + 45*float64(ri)
				} else {
					side = 45 + 45*float64(ri-3)
				}
				start := geo.Offset(center, side, 800+300*float64(ri%3))
				tr = geo.BuildRoute(geo.RouteSpec{
					Start: start, Bearing: float64((ri * 70) % 360),
					Duration: dur, Interval: s.interval,
					Profile: geo.CityDriveProfile, TurnEvery: 45,
					TurnJitter: 40, GridSnap: true,
				}, routeRng)
			case ScenarioHighway1:
				// Along the city1->city2 corridor; train runs use the first
				// half, test runs the second half.
				brg := geo.Bearing(centers[0], centers[1])
				start := geo.Offset(originB, brg, 2000+1200*float64(ri%3))
				if !train {
					start = geo.Offset(originB, brg, 11000+1200*float64(ri%3))
				}
				tr = geo.BuildRoute(geo.RouteSpec{
					Start: start, Bearing: brg,
					Duration: dur, Interval: s.interval,
					Profile: geo.HighwayProfile, TurnJitter: 5,
				}, routeRng)
			case ScenarioHighway2:
				start := geo.Offset(originB, 0, 8000)
				off := 1500 + 1500*float64(ri%3)
				if !train {
					off = 13000 + 1500*float64(ri%3)
				}
				start = geo.Offset(start, 80, off)
				tr = geo.BuildRoute(geo.RouteSpec{
					Start: start, Bearing: 80,
					Duration: dur, Interval: s.interval,
					Profile: geo.HighwayProfile, TurnJitter: 5,
				}, routeRng)
			}
			ms := w.DriveTest(tr, rand.New(rand.NewSource(spec.Seed+int64(2000+100*si+ri))))
			d.Runs = append(d.Runs, Run{Scenario: s.name, Train: train, Traj: tr, Meas: ms})
		}
	}
	return d
}

// LongComplexRun builds the paper's §6.1.3 test workload against Dataset
// B's world: a ~2230 s (scaled) trajectory spanning three cities none of
// which appear in the training runs, alternating inner-city driving with
// highway stretches. It returns the run (marked as test data).
func LongComplexRun(d *Dataset, spec Spec) Run {
	sc := spec.scale()
	centers := CityCenters()
	c3, c4, c5 := centers[2], centers[3], centers[4]
	mk := func(seed int64, start geo.Point, bearing float64, dur float64, prof geo.SpeedProfile, grid bool, turn float64) geo.Trajectory {
		return geo.BuildRoute(geo.RouteSpec{
			Start: start, Bearing: bearing, Duration: dur, Interval: 1,
			Profile: prof, TurnEvery: turn, TurnJitter: 30, GridSnap: grid,
		}, rand.New(rand.NewSource(spec.Seed+seed)))
	}
	cityDur := 400 * sc
	hwDur := 350 * sc
	segments := []geo.Trajectory{
		mk(31, geo.Offset(c3, 10, 500), 120, cityDur, geo.CityDriveProfile, true, 50),
		mk(32, c3, geo.Bearing(c3, c4), hwDur, geo.HighwayProfile, false, 0),
		mk(33, geo.Offset(c4, 200, 400), 40, cityDur, geo.CityDriveProfile, true, 50),
		mk(34, c4, geo.Bearing(c4, c5), hwDur, geo.HighwayProfile, false, 0),
		mk(35, geo.Offset(c5, 300, 400), 250, cityDur, geo.CityDriveProfile, true, 50),
	}
	tr := geo.Concat(1, segments...)
	ms := d.World.DriveTest(tr, rand.New(rand.NewSource(spec.Seed+99)))
	return Run{Scenario: "Long", Train: false, Traj: tr, Meas: ms}
}

// Partition splits the training runs of a dataset into n geographically
// contiguous, non-overlapping subsets (the 23 subsets of §6.2.2) by slicing
// each run into n consecutive chunks. Each subset is returned as a list of
// runs.
func Partition(runs []Run, n int) [][]Run {
	out := make([][]Run, n)
	for _, r := range runs {
		per := len(r.Meas) / n
		if per == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			lo := i * per
			hi := lo + per
			if i == n-1 {
				hi = len(r.Meas)
			}
			sub := Run{
				Scenario: r.Scenario, Train: r.Train,
				Traj: r.Traj[lo:hi], Meas: r.Meas[lo:hi],
			}
			out[i] = append(out[i], sub)
		}
	}
	return out
}

// Stats summarizes one scenario as the rows of the paper's Tables 1-2.
type Stats struct {
	Scenario         string
	TimeGranularity  float64
	AvgVelocity      float64
	AvgServingDwell  float64 // mean seconds between serving-cell changes
	AvgRSRP, StdRSRP float64
	ROCRSRP          float64
	AvgRSRQ, StdRSRQ float64
	ROCRSRQ          float64
	Samples          int
}

// ScenarioStats computes Table 1/2-style statistics for one scenario.
func (d *Dataset) ScenarioStats(name string) Stats {
	runs := d.ScenarioRuns(name)
	st := Stats{Scenario: name}
	var rsrp, rsrq []float64
	var gran, vel []float64
	var dwellTotal float64
	var dwellCount int
	for _, r := range runs {
		st.Samples += len(r.Meas)
		rsrp = append(rsrp, sim.Series(r.Meas, radio.KPIRSRP)...)
		rsrq = append(rsrq, sim.Series(r.Meas, radio.KPIRSRQ)...)
		gran = append(gran, r.Traj.TimeGranularity())
		vel = append(vel, r.Traj.AvgSpeed())
		ids := sim.Series(r.Meas, radio.KPIServingCell)
		times := radio.InterHandoverTimes(ids, r.Traj.TimeGranularity())
		for _, t := range times {
			dwellTotal += t
			dwellCount++
		}
	}
	st.TimeGranularity = metrics.Mean(gran)
	st.AvgVelocity = metrics.Mean(vel)
	if dwellCount > 0 {
		st.AvgServingDwell = dwellTotal / float64(dwellCount)
	}
	st.AvgRSRP, st.StdRSRP = metrics.Mean(rsrp), metrics.Std(rsrp)
	st.AvgRSRQ, st.StdRSRQ = metrics.Mean(rsrq), metrics.Std(rsrq)
	st.ROCRSRP = metrics.RateOfChange(rsrp)
	st.ROCRSRQ = metrics.RateOfChange(rsrq)
	return st
}

// String renders the stats as one table row.
func (s Stats) String() string {
	return fmt.Sprintf("%-16s gran=%.1fs v=%.1fm/s dwell=%.1fs RSRP=%.1f±%.1f (ROC %.2f) RSRQ=%.1f±%.1f (ROC %.2f) n=%d",
		s.Scenario, s.TimeGranularity, s.AvgVelocity, s.AvgServingDwell,
		s.AvgRSRP, s.StdRSRP, s.ROCRSRP, s.AvgRSRQ, s.StdRSRQ, s.ROCRSRQ, s.Samples)
}

// WithExtraCells returns a copy of the dataset's world whose deployment
// additionally contains the given cells — the substrate for the paper's
// §C.2 what-if analysis (e.g. studying the effect of deploying a new cell
// before building it). The original world is not modified.
func (d *Dataset) WithExtraCells(extra []cells.Cell) *sim.World {
	all := append(append([]cells.Cell{}, d.World.Deployment.Cells...), extra...)
	w := *d.World
	w.Deployment = cells.NewDeployment(all, d.World.Env.Origin(), 1000)
	return &w
}

// NewSiteAt builds the sectors of a hypothetical new cell site at a
// location — the input to what-if analyses (§C.2). IDs start at firstID.
func NewSiteAt(at geo.Point, firstID, sectors int, pMaxDBm float64) []cells.Cell {
	if sectors < 1 {
		sectors = 1
	}
	out := make([]cells.Cell, 0, sectors)
	for s := 0; s < sectors; s++ {
		out = append(out, cells.Cell{
			ID: firstID + s, Site: at, PMaxDBm: pMaxDBm,
			Azimuth: float64(s) * 360 / float64(sectors), BeamWidth: 120, Height: 25,
		})
	}
	return out
}
