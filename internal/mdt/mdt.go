// Package mdt simulates the two alternative measurement-collection
// approaches the paper compares drive testing against conceptually but
// could not evaluate for lack of data (§7.2): 3GPP minimization of drive
// tests (MDT) and app-based crowdsourcing. Both produce measurement runs
// in the same format as drive-test runs, so GenDT can be trained on them
// and the resulting fidelity compared — closing the paper's stated
// future-work gap inside the simulated world.
//
// The simulated pathologies follow the paper's §1-2 discussion:
//
//   - MDT: measurements come from real user devices, so sampling is
//     spatially skewed toward where users are (the urban core), reports
//     are sporadic, and device-side location is noisy (or inferred
//     network-side with worse error).
//   - Crowdsourcing: additionally limited by OS APIs — coarse reporting
//     period and signal-strength-only measurements (RSRP; the other KPIs
//     are unavailable), from a skewed user population.
package mdt

import (
	"math"
	"math/rand"

	"gendt/internal/dataset"
	"gendt/internal/geo"
	"gendt/internal/sim"
)

// Spec parameterizes a simulated MDT or crowdsourcing campaign.
type Spec struct {
	Users      int     // participating devices
	SessionS   float64 // mean session duration per device, seconds
	ReportProb float64 // probability a sample is actually reported
	LocErrM    float64 // stddev of the reported location error, metres
	CoreBiasM  float64 // user sessions cluster within this radius of the core
	Interval   float64 // reporting granularity, seconds
	SignalOnly bool    // crowdsourcing: only RSRP survives in reports
	Seed       int64
}

// DefaultMDT returns paper-flavoured MDT parameters: device-side
// positioning (GNSS) with moderate error, sporadic reporting.
func DefaultMDT(seed int64) Spec {
	return Spec{
		Users: 40, SessionS: 240, ReportProb: 0.5, LocErrM: 40,
		CoreBiasM: 2500, Interval: 1, Seed: seed,
	}
}

// DefaultCrowdsourcing returns crowdsourcing parameters: coarse Telephony
// API granularity, signal-strength only, stronger skew.
func DefaultCrowdsourcing(seed int64) Spec {
	return Spec{
		Users: 40, SessionS: 240, ReportProb: 0.6, LocErrM: 25,
		CoreBiasM: 1500, Interval: 5, SignalOnly: true, Seed: seed,
	}
}

// Collect runs a measurement campaign against the world around the given
// centre point: each user walks or drives a short session biased toward
// the core; the device measures ground truth, but each *report* carries a
// perturbed location — and, crucially, the context annotation is computed
// at the reported location, exactly the error MDT suffers from (§1).
func Collect(w *sim.World, center geo.Point, spec Spec) []dataset.Run {
	rng := rand.New(rand.NewSource(spec.Seed))
	var runs []dataset.Run
	for u := 0; u < spec.Users; u++ {
		// Session start biased toward the core (rejection sampling).
		var start geo.Point
		for {
			brg := rng.Float64() * 360
			dist := math.Abs(rng.NormFloat64()) * spec.CoreBiasM
			start = geo.Offset(center, brg, dist)
			break
		}
		profile := geo.WalkProfile
		if rng.Float64() < 0.4 {
			profile = geo.CityDriveProfile
		}
		dur := spec.SessionS * (0.5 + rng.Float64())
		tr := geo.BuildRoute(geo.RouteSpec{
			Start: start, Bearing: rng.Float64() * 360,
			Duration: dur, Interval: spec.Interval,
			Profile: profile, TurnEvery: 60, TurnJitter: 40, GridSnap: true,
		}, rng)
		truth := w.DriveTest(tr, rand.New(rand.NewSource(spec.Seed+int64(u)+1000)))

		// Reported subset with location error and re-annotated context.
		var reported []sim.Measurement
		var repTraj geo.Trajectory
		for i, m := range truth {
			if rng.Float64() > spec.ReportProb {
				continue
			}
			loc := m.Loc
			if spec.LocErrM > 0 {
				loc = geo.Offset(loc, rng.Float64()*360, math.Abs(rng.NormFloat64())*spec.LocErrM)
			}
			r := m
			r.Loc = loc
			// The operator annotates the report with context at the
			// *reported* location.
			r.Visible = w.Deployment.Visible(loc, w.VisibleRange)
			r.EnvCtx = w.Env.ContextAt(loc, w.EnvRadius)
			if spec.SignalOnly {
				// Crowdsourced APIs expose signal strength but not the
				// full KPI set; unavailable KPIs collapse to floors.
				r.RSRQ = -19.5
				r.SINR = -10
				r.CQI = 1
			}
			reported = append(reported, r)
			repTraj = append(repTraj, geo.Sample{Point: loc, T: tr[i].T})
		}
		if len(reported) < 8 {
			continue // too sparse to form a usable run
		}
		runs = append(runs, dataset.Run{
			Scenario: "MDT", Train: true, Traj: repTraj, Meas: reported,
		})
	}
	return runs
}

// SampleCount returns the total reported samples across runs.
func SampleCount(runs []dataset.Run) int {
	total := 0
	for _, r := range runs {
		total += len(r.Meas)
	}
	return total
}

// TrimTo truncates the campaign to at most n samples (whole runs), so
// comparisons against drive-test training data use equal sample budgets.
func TrimTo(runs []dataset.Run, n int) []dataset.Run {
	var out []dataset.Run
	total := 0
	for _, r := range runs {
		if total >= n {
			break
		}
		if total+len(r.Meas) > n {
			keep := n - total
			r = dataset.Run{Scenario: r.Scenario, Train: r.Train,
				Traj: r.Traj[:keep], Meas: r.Meas[:keep]}
		}
		out = append(out, r)
		total += len(r.Meas)
	}
	return out
}
