package mdt

import (
	"math"
	"testing"

	"gendt/internal/dataset"
	"gendt/internal/geo"
)

func testWorld(t *testing.T) (*dataset.Dataset, geo.Point) {
	t.Helper()
	d := dataset.NewDatasetA(dataset.Spec{Seed: 71, Scale: 0.01})
	// Dataset A is anchored at its first run's region; use the centroid of
	// a run as the campaign centre.
	return d, d.Runs[0].Traj.Centroid()
}

func TestCollectProducesRuns(t *testing.T) {
	d, center := testWorld(t)
	spec := DefaultMDT(1)
	spec.Users = 10
	spec.SessionS = 60
	runs := Collect(d.World, center, spec)
	if len(runs) == 0 {
		t.Fatal("MDT campaign produced no runs")
	}
	for _, r := range runs {
		if len(r.Meas) != len(r.Traj) {
			t.Fatalf("run measurements %d != trajectory %d", len(r.Meas), len(r.Traj))
		}
		for _, m := range r.Meas {
			if len(m.EnvCtx) == 0 {
				t.Fatal("report missing context annotation")
			}
		}
	}
}

func TestCollectSporadic(t *testing.T) {
	d, center := testWorld(t)
	spec := DefaultMDT(2)
	spec.Users = 8
	spec.SessionS = 120
	spec.ReportProb = 0.3
	runs := Collect(d.World, center, spec)
	for _, r := range runs {
		// With 30% reporting, runs must be much shorter than sessions.
		if float64(len(r.Meas)) > 0.6*r.Traj.Duration()/spec.Interval {
			t.Fatalf("run has %d reports for %v s session — not sporadic",
				len(r.Meas), r.Traj.Duration())
		}
	}
}

func TestCollectLocationErrorAnnotatesWrongContext(t *testing.T) {
	d, center := testWorld(t)
	spec := DefaultMDT(3)
	spec.Users = 6
	spec.SessionS = 60
	spec.LocErrM = 200 // exaggerated to make the effect measurable
	runs := Collect(d.World, center, spec)
	if len(runs) == 0 {
		t.Skip("no runs at this seed")
	}
	// Reported locations differ from a re-simulation at true locations; we
	// can at least assert the visible sets were recomputed (non-empty) and
	// locations are plausible.
	moved := 0
	for _, r := range runs {
		for _, m := range r.Meas {
			if len(m.Visible) > 0 {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Error("no annotated reports")
	}
}

func TestCrowdsourcingSignalOnly(t *testing.T) {
	d, center := testWorld(t)
	spec := DefaultCrowdsourcing(4)
	spec.Users = 6
	spec.SessionS = 120
	runs := Collect(d.World, center, spec)
	if len(runs) == 0 {
		t.Skip("no runs at this seed")
	}
	for _, r := range runs {
		for _, m := range r.Meas {
			if m.RSRQ != -19.5 || m.SINR != -10 || m.CQI != 1 {
				t.Fatalf("crowdsourced report leaked full KPIs: %+v", m)
			}
			if m.RSRP >= 0 || math.IsNaN(m.RSRP) {
				t.Fatalf("RSRP missing from crowdsourced report")
			}
		}
		if g := r.Traj.TimeGranularity(); g < 4 {
			t.Fatalf("crowdsourced granularity %v s, want coarse (>= 5s nominal)", g)
		}
	}
}

func TestTrimTo(t *testing.T) {
	d, center := testWorld(t)
	spec := DefaultMDT(5)
	spec.Users = 10
	spec.SessionS = 120
	runs := Collect(d.World, center, spec)
	total := SampleCount(runs)
	if total == 0 {
		t.Skip("no samples")
	}
	n := total / 2
	trimmed := TrimTo(runs, n)
	if got := SampleCount(trimmed); got != n {
		t.Errorf("TrimTo(%d) kept %d samples", n, got)
	}
	// Trimming to more than available keeps everything.
	if got := SampleCount(TrimTo(runs, total*2)); got != total {
		t.Errorf("over-trim kept %d of %d", got, total)
	}
}
