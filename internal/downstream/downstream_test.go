package downstream

import (
	"math"
	"math/rand"
	"testing"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/metrics"
	"gendt/internal/radio"
	"gendt/internal/sim"
)

func testRuns(t *testing.T) (train, test dataset.Run) {
	t.Helper()
	d := dataset.NewDatasetA(dataset.Spec{Seed: 51, Scale: 0.03})
	return d.TrainRuns()[0], d.TestRuns()[0]
}

func TestGroundTruthQoEBounds(t *testing.T) {
	train, _ := testRuns(t)
	thr, per := GroundTruthQoE(train.Meas, rand.New(rand.NewSource(1)))
	if len(thr) != len(train.Meas) || len(per) != len(train.Meas) {
		t.Fatal("length mismatch")
	}
	for i := range thr {
		if thr[i] < 0 || thr[i] > ThroughputMaxMbps {
			t.Fatalf("throughput %v out of bounds", thr[i])
		}
		if per[i] < 0 || per[i] > PERMax {
			t.Fatalf("PER %v out of bounds", per[i])
		}
	}
}

func TestGroundTruthQoECorrelatesWithSINR(t *testing.T) {
	train, _ := testRuns(t)
	thr, per := GroundTruthQoE(train.Meas, rand.New(rand.NewSource(2)))
	sinr := sim.Series(train.Meas, radio.KPISINR)
	if corr(sinr, thr) < 0.3 {
		t.Errorf("throughput-SINR correlation = %v, want positive", corr(sinr, thr))
	}
	if corr(sinr, per) > -0.3 {
		t.Errorf("PER-SINR correlation = %v, want negative", corr(sinr, per))
	}
}

func corr(a, b []float64) float64 {
	ma, mb := metrics.Mean(a), metrics.Mean(b)
	var num, da, db float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func TestQoEPredictorLearnsWithKPIs(t *testing.T) {
	train, test := testRuns(t)
	thrTr, _ := GroundTruthQoE(train.Meas, rand.New(rand.NewSource(3)))
	thrTe, _ := GroundTruthQoE(test.Meas, rand.New(rand.NewSource(4)))
	normTr := normalize(thrTr, ThroughputMaxMbps)
	normTe := normalize(thrTe, ThroughputMaxMbps)

	with := NewQoEPredictor(true, 16, 20, 5)
	with.Fit(train.Meas, normTr)
	without := NewQoEPredictor(false, 16, 20, 6)
	without.Fit(train.Meas, normTr)

	rsrp := sim.Series(test.Meas, radio.KPIRSRP)
	rsrq := sim.Series(test.Meas, radio.KPIRSRQ)
	predWith := with.Predict(test.Meas, rsrp, rsrq)
	predWithout := without.Predict(test.Meas, rsrp, rsrq)

	maeWith, _ := metrics.MAE(normTe, predWith)
	maeWithout, _ := metrics.MAE(normTe, predWithout)
	// Paper Figure 12 / Table 9: dropping RSRP/RSRQ significantly degrades
	// QoE prediction.
	if maeWith >= maeWithout {
		t.Errorf("KPI features did not help: with=%v without=%v", maeWith, maeWithout)
	}
}

func TestQoEPredictorOutputsBounded(t *testing.T) {
	train, test := testRuns(t)
	thr, _ := GroundTruthQoE(train.Meas, rand.New(rand.NewSource(7)))
	q := NewQoEPredictor(true, 8, 3, 8)
	q.Fit(train.Meas, normalize(thr, ThroughputMaxMbps))
	pred := q.Predict(test.Meas, sim.Series(test.Meas, radio.KPIRSRP), sim.Series(test.Meas, radio.KPIRSRQ))
	for _, v := range pred {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("prediction %v out of [0,1]", v)
		}
	}
}

func TestSnapServingSeries(t *testing.T) {
	// A perfect rank channel should snap back to the real serving cells
	// wherever the serving cell is within the rank cap; pooled over all
	// runs to damp per-route degeneracies (short runs can dwell on a
	// beyond-cap cell).
	d := dataset.NewDatasetA(dataset.Spec{Seed: 51, Scale: 0.03})
	ch := core.ServingRankChannel()
	matches, total := 0, 0
	for _, run := range d.Runs {
		seq := core.PrepareSequence(run, []core.ChannelSpec{ch}, 8)
		norm := make([]float64, seq.Len())
		for t2 := 0; t2 < seq.Len(); t2++ {
			norm[t2] = ch.Normalize(ch.Extract(&run.Meas[t2]))
		}
		ids := SnapServingSeries(seq, norm)
		for t2 := range ids {
			if len(run.Meas[t2].Visible) == 0 {
				continue
			}
			total++
			if ids[t2] == float64(run.Meas[t2].ServingCell) {
				matches++
			}
		}
	}
	if total == 0 {
		t.Skip("no visible cells")
	}
	if frac := float64(matches) / float64(total); frac < 0.85 {
		t.Errorf("perfect rank snapped to real serving only %.2f of the time", frac)
	}
}

func TestSnapServingSeriesClamps(t *testing.T) {
	_, test := testRuns(t)
	seq := core.PrepareSequence(test, []core.ChannelSpec{core.ServingRankChannel()}, 8)
	norm := make([]float64, seq.Len())
	for i := range norm {
		norm[i] = 1.5 // out-of-range rank must clamp, not panic
	}
	ids := SnapServingSeries(seq, norm)
	for t2, id := range ids {
		if len(test.Meas[t2].Visible) > 0 && id < 0 {
			t.Fatalf("clamped rank produced invalid id at %d", t2)
		}
	}
}

func TestRealServingSeriesAndInterHandover(t *testing.T) {
	train, _ := testRuns(t)
	ids := RealServingSeries(train.Meas)
	if len(ids) != len(train.Meas) {
		t.Fatal("length mismatch")
	}
	times := InterHandoverTimes(ids, 1)
	for _, v := range times {
		if v <= 0 {
			t.Fatalf("non-positive inter-handover time %v", v)
		}
	}
}

func normalize(xs []float64, max float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / max
	}
	return out
}

func TestModeFilterDebounces(t *testing.T) {
	ids := []float64{1, 1, 1, 9, 1, 1, 2, 2, 2, 2}
	got := ModeFilter(ids, 5)
	// The single-sample flicker to 9 must vanish.
	for _, v := range got[:5] {
		if v != 1 {
			t.Fatalf("flicker survived: %v", got)
		}
	}
	// The genuine transition to 2 must survive.
	if got[len(got)-1] != 2 {
		t.Fatalf("transition removed: %v", got)
	}
}

func TestModeFilterIdentityCases(t *testing.T) {
	ids := []float64{3, 4, 5}
	got := ModeFilter(ids, 1)
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatal("window 1 must be identity")
		}
	}
	if out := ModeFilter(nil, 5); len(out) != 0 {
		t.Fatal("empty input")
	}
}

func TestDecodeServingSeriesSticky(t *testing.T) {
	d := dataset.NewDatasetA(dataset.Spec{Seed: 51, Scale: 0.03})
	run := d.TestRuns()[0]
	ch := core.ServingRankChannel()
	seq := core.PrepareSequence(run, []core.ChannelSpec{ch}, 8)
	// Noisy rank: perfect rank plus alternating one-rank flicker.
	norm := make([]float64, seq.Len())
	for t2 := 0; t2 < seq.Len(); t2++ {
		norm[t2] = ch.Normalize(ch.Extract(&run.Meas[t2]))
		if t2%2 == 1 {
			norm[t2] += 1.0 / core.MaxServingRank // one-rank flicker
		}
	}
	decoded := DecodeServingSeries(seq, norm, 3)
	raw := SnapServingSeries(seq, norm)
	// Sticky decode must produce far fewer serving changes than the raw
	// snap under the same flicker.
	if ch1, ch2 := changes(decoded), changes(raw); ch1 >= ch2 {
		t.Errorf("sticky decode changes %d not below raw %d", ch1, ch2)
	}
}

func changes(ids []float64) int {
	n := 0
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1] {
			n++
		}
	}
	return n
}

func TestDecodeServingSeriesPerfectRankFollowsHandovers(t *testing.T) {
	d := dataset.NewDatasetA(dataset.Spec{Seed: 52, Scale: 0.03})
	run := d.TestRuns()[1]
	ch := core.ServingRankChannel()
	seq := core.PrepareSequence(run, []core.ChannelSpec{ch}, 8)
	norm := make([]float64, seq.Len())
	for t2 := 0; t2 < seq.Len(); t2++ {
		norm[t2] = ch.Normalize(ch.Extract(&run.Meas[t2]))
	}
	decoded := DecodeServingSeries(seq, norm, 2)
	realChanges := changes(RealServingSeries(run.Meas))
	gotChanges := changes(decoded)
	// Same order of magnitude of serving changes as reality (the decode
	// lags by TTT but must not flap or freeze).
	if realChanges > 0 && (gotChanges > 4*realChanges+4) {
		t.Errorf("decoded changes %d vs real %d — flapping", gotChanges, realChanges)
	}
}
