// Package downstream implements the paper's §6.3 use cases: mobile QoE
// (throughput and packet error rate) prediction from radio KPIs, and
// handover analysis from a generated serving-cell series. Since the
// paper's iPerf3 ground truth is unavailable, QoE ground truth is derived
// from the simulated link physics (a Shannon-style rate model plus a BLER
// curve) — preserving the property the experiment tests: an ML model can
// predict QoE from RSRP/RSRQ, so generated KPIs that are faithful yield
// predictions close to those from real KPIs.
package downstream

import (
	"math"
	"math/rand"

	"gendt/internal/nn"
	"gendt/internal/radio"
	"gendt/internal/sim"
)

// QoE bounds used for normalization.
const (
	ThroughputMaxMbps = 75.0 // 10 MHz LTE cap with good SINR
	PERMax            = 1.0
)

// GroundTruthQoE derives downlink throughput (Mbps) and packet error rate
// series from simulated measurements. Throughput follows a truncated
// Shannon model over the serving link's SINR with a load-dependent resource
// share; PER follows a logistic BLER curve in SINR. Both carry measurement
// noise.
func GroundTruthQoE(ms []sim.Measurement, rng *rand.Rand) (throughputMbps, per []float64) {
	throughputMbps = make([]float64, len(ms))
	per = make([]float64, len(ms))
	for i := range ms {
		m := &ms[i]
		sinr := math.Pow(10, m.SINR/10)
		// Effective bandwidth ~9 MHz with 0.6 implementation efficiency;
		// the device competes with the serving cell's other traffic.
		share := 0.35 + 0.4*rng.Float64()
		thr := 9.0 * 0.6 * math.Log2(1+sinr) * share
		thr *= 1 + 0.05*rng.NormFloat64()
		if thr < 0 {
			thr = 0
		}
		if thr > ThroughputMaxMbps {
			thr = ThroughputMaxMbps
		}
		throughputMbps[i] = thr
		// Logistic BLER: near 0 above ~8 dB SINR, approaching 0.6 at the
		// very bottom, with residual noise.
		p := 0.6/(1+math.Exp((m.SINR-2.0)/2.5)) + 0.02 + 0.02*rng.Float64()
		if p < 0 {
			p = 0
		}
		if p > PERMax {
			p = PERMax
		}
		per[i] = p
	}
	return throughputMbps, per
}

// QoEPredictor is the MLP regression model of the paper's §6.3.1 (after
// Sliwa & Wietfeld): it predicts a QoE metric from radio KPIs and context
// features. IncludeRadioKPIs=false reproduces the paper's "RSRP & RSRQ
// Excluded" ablation row.
type QoEPredictor struct {
	IncludeRadioKPIs bool

	net    *nn.MLP
	opt    *nn.Adam
	epochs int
	rng    *rand.Rand
}

// qoeFeatures builds the predictor input from one measurement step:
// normalized RSRP/RSRQ (optional) plus coarse context features (serving
// distance and visible-cell count), mirroring the feature set of [56].
func (q *QoEPredictor) features(rsrp, rsrq float64, m *sim.Measurement) []float64 {
	out := make([]float64, 0, 4)
	if q.IncludeRadioKPIs {
		out = append(out, radio.Normalize(radio.KPIRSRP, rsrp), radio.Normalize(radio.KPIRSRQ, rsrq))
	}
	dist := 0.0
	if len(m.Visible) > 0 {
		dist = m.Visible[0].Distance / 4000
	}
	out = append(out, dist, float64(len(m.Visible))/16)
	return out
}

// NewQoEPredictor builds the predictor. includeRadioKPIs=false drops RSRP
// and RSRQ from the features.
func NewQoEPredictor(includeRadioKPIs bool, hidden, epochs int, seed int64) *QoEPredictor {
	q := &QoEPredictor{IncludeRadioKPIs: includeRadioKPIs, epochs: epochs,
		rng: rand.New(rand.NewSource(seed))}
	in := 2
	if includeRadioKPIs {
		in = 4
	}
	q.net = nn.NewMLP([]int{in, hidden, hidden, 1}, 0.1, q.rng)
	q.opt = nn.NewAdam(2e-3)
	return q
}

// Fit trains on real measurements against a normalized QoE target series
// (values in [0,1], e.g. throughput/ThroughputMaxMbps).
func (q *QoEPredictor) Fit(ms []sim.Measurement, target []float64) {
	type ex struct {
		x []float64
		y float64
	}
	var data []ex
	for i := range ms {
		data = append(data, ex{q.features(ms[i].RSRP, ms[i].RSRQ, &ms[i]), target[i]})
	}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < q.epochs; e++ {
		q.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			pred := q.net.Forward(data[i].x)
			_, g := nn.MSELoss(pred, []float64{data[i].y})
			q.net.Backward(g)
			q.opt.Step(q.net.Params())
		}
	}
}

// Predict returns the normalized QoE prediction series for measurements
// whose RSRP/RSRQ have been replaced by the provided series (pass the real
// series to predict from real KPIs, or a generator's output to evaluate
// generated KPIs).
func (q *QoEPredictor) Predict(ms []sim.Measurement, rsrp, rsrq []float64) []float64 {
	out := make([]float64, len(ms))
	for i := range ms {
		pred := q.net.Forward(q.features(rsrp[i], rsrq[i], &ms[i]))
		q.net.ClearCache()
		v := pred[0]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}
