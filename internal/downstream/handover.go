package downstream

import (
	"math"

	"gendt/internal/core"
	"gendt/internal/radio"
	"gendt/internal/sim"
)

// (DecodeServingSeries below is the preferred decoder; SnapServingSeries
// is the raw per-sample snap it builds on.)

// SnapServingSeries converts a generated serving-rank channel (normalized
// [0,1] values, rank encoding per core.ServingRankChannel) back into a
// serving-cell-id series by rounding the rank and indexing each step's
// distance-sorted visible-cell list.
func SnapServingSeries(seq *core.Sequence, normRank []float64) []float64 {
	out := make([]float64, len(normRank))
	for t, v := range normRank {
		rank := int(math.Round(v * core.MaxServingRank))
		vis := seq.Raw[t].Visible
		if len(vis) == 0 {
			out[t] = -1
			continue
		}
		if rank >= len(vis) {
			rank = len(vis) - 1
		}
		if rank < 0 {
			rank = 0
		}
		out[t] = float64(vis[rank].Cell.ID)
	}
	return out
}

// RealServingSeries extracts the measured serving-cell-id series.
func RealServingSeries(ms []sim.Measurement) []float64 {
	return sim.Series(ms, radio.KPIServingCell)
}

// DecodeServingSeries converts a generated serving-rank channel into a
// serving-cell-id series with UE-like persistence: the current cell is
// kept until the rank channel durably (for ttt consecutive samples) points
// at a different cell — mirroring the time-to-trigger behaviour real
// handovers have, and making the decode robust to the sampling noise and
// benign rank reshuffling a generative channel carries.
func DecodeServingSeries(seq *core.Sequence, normRank []float64, ttt int) []float64 {
	if ttt < 1 {
		ttt = 1
	}
	out := make([]float64, len(normRank))
	current := -1.0
	candidate := -1.0
	streak := 0
	for t, v := range normRank {
		vis := seq.Raw[t].Visible
		if len(vis) == 0 {
			out[t] = current
			continue
		}
		rank := int(math.Round(v * core.MaxServingRank))
		if rank >= len(vis) {
			rank = len(vis) - 1
		}
		if rank < 0 {
			rank = 0
		}
		pointed := float64(vis[rank].Cell.ID)
		if current < 0 {
			current = pointed
		} else if pointed != current {
			// Only switch when the channel durably points elsewhere AND the
			// current cell is no longer where the channel points.
			if pointed == candidate {
				streak++
			} else {
				candidate = pointed
				streak = 1
			}
			if streak >= ttt {
				current = pointed
				candidate, streak = -1, 0
			}
		} else {
			candidate, streak = -1, 0
		}
		out[t] = current
	}
	return out
}

// ModeFilter debounces a categorical id series with a sliding-window
// majority vote (window samples, centred): the decoding step for the
// generated serving-cell channel, which removes single-sample sampling
// flicker while keeping genuine serving-cell transitions — the categorical
// analogue of rounding the CQI channel.
func ModeFilter(ids []float64, window int) []float64 {
	if window <= 1 || len(ids) == 0 {
		return append([]float64(nil), ids...)
	}
	half := window / 2
	out := make([]float64, len(ids))
	for t := range ids {
		lo, hi := t-half, t+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(ids) {
			hi = len(ids) - 1
		}
		counts := map[float64]int{}
		best, bestN := ids[t], 0
		for i := lo; i <= hi; i++ {
			counts[ids[i]]++
			if counts[ids[i]] > bestN {
				best, bestN = ids[i], counts[ids[i]]
			}
		}
		out[t] = best
	}
	return out
}

// InterHandoverTimes is re-exported from radio for convenience: durations
// between consecutive serving-cell changes, in seconds.
func InterHandoverTimes(servingIDs []float64, interval float64) []float64 {
	return radio.InterHandoverTimes(servingIDs, interval)
}
