package downstream

import (
	"math"
	"math/rand"

	"gendt/internal/nn"
	"gendt/internal/radio"
	"gendt/internal/sim"
)

// This file implements the further use cases the paper sketches in §C.2:
// cell-load estimation from RSRQ/SINR, link-bandwidth prediction from five
// KPIs, and video-streaming QoE. Each follows the same pattern as §6.3:
// train an estimator on real measurements, then feed it generated KPIs and
// compare the resulting inferences with those from real KPIs.

// ServingLoadSeries extracts the ground-truth serving-cell load per sample
// by inverting the §2.2 RSRQ relation: RSRQ depends on the serving cell's
// occupied-resource share, so the simulator's hidden load can be recovered
// for evaluation. (Real networks would obtain this from counters; the
// paper cites [9, 46] for estimating it from drive-test KPIs.)
func ServingLoadSeries(ms []sim.Measurement) []float64 {
	out := make([]float64, len(ms))
	for i := range ms {
		m := &ms[i]
		// From radio.DeriveKPIs: rssiMW = servMW*(2+10*load)*NRB + rest.
		// Recover occupied = rssiMW/servMW/NRB - interferenceShare; a
		// cleaner inversion uses RSRQ = NRB*RSRP/RSSI in linear terms.
		servMW := math.Pow(10, m.RSRP/10)
		rssiMW := math.Pow(10, m.RSSI/10)
		if servMW <= 0 {
			continue
		}
		occ := rssiMW/(servMW*radio.NRB) - 2 // ≈ 10*load + interference/serv
		load := (occ - 2) / 10               // rough inversion; clamped below
		out[i] = math.Max(0, math.Min(1, load))
	}
	return out
}

// LoadEstimator infers the serving-cell load from RSRQ and SINR, following
// the approach of the works the paper cites in §C.2 (Chang & Wicaksono;
// Raida et al.): at a given signal power, higher serving load depresses
// RSRQ while interference depresses SINR, so the pair identifies load.
type LoadEstimator struct {
	net    *nn.MLP
	opt    *nn.Adam
	rng    *rand.Rand
	epochs int
}

// NewLoadEstimator builds the estimator.
func NewLoadEstimator(hidden, epochs int, seed int64) *LoadEstimator {
	rng := rand.New(rand.NewSource(seed))
	return &LoadEstimator{
		net:    nn.NewMLP([]int{3, hidden, hidden, 1}, 0.1, rng),
		opt:    nn.NewAdam(2e-3),
		rng:    rng,
		epochs: epochs,
	}
}

func loadFeatures(rsrp, rsrq, sinr float64) []float64 {
	return []float64{
		radio.Normalize(radio.KPIRSRP, rsrp),
		radio.Normalize(radio.KPIRSRQ, rsrq),
		radio.Normalize(radio.KPISINR, sinr),
	}
}

// Fit trains on real measurements against the ground-truth load series.
func (e *LoadEstimator) Fit(ms []sim.Measurement, load []float64) {
	idx := make([]int, len(ms))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < e.epochs; ep++ {
		e.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			x := loadFeatures(ms[i].RSRP, ms[i].RSRQ, ms[i].SINR)
			pred := e.net.Forward(x)
			_, g := nn.MSELoss(pred, []float64{load[i]})
			e.net.Backward(g)
			e.opt.Step(e.net.Params())
		}
	}
}

// Estimate returns load estimates from (possibly generated) KPI series.
func (e *LoadEstimator) Estimate(rsrp, rsrq, sinr []float64) []float64 {
	out := make([]float64, len(rsrp))
	for i := range rsrp {
		pred := e.net.Forward(loadFeatures(rsrp[i], rsrq[i], sinr[i]))
		e.net.ClearCache()
		out[i] = math.Max(0, math.Min(1, pred[0]))
	}
	return out
}

// BandwidthPredictor implements the §C.2 link-bandwidth use case (after
// LinkForecast): predict the attainable link bandwidth from the five KPIs
// the paper lists — RSRP, RSRQ, CQI, a handover indicator, and BLER (we
// use the PER proxy).
type BandwidthPredictor struct {
	net    *nn.MLP
	opt    *nn.Adam
	rng    *rand.Rand
	epochs int
}

// NewBandwidthPredictor builds the predictor.
func NewBandwidthPredictor(hidden, epochs int, seed int64) *BandwidthPredictor {
	rng := rand.New(rand.NewSource(seed))
	return &BandwidthPredictor{
		net:    nn.NewMLP([]int{5, hidden, hidden, 1}, 0.1, rng),
		opt:    nn.NewAdam(2e-3),
		rng:    rng,
		epochs: epochs,
	}
}

// BandwidthFeatures assembles the five-KPI feature vector for one step.
func BandwidthFeatures(rsrp, rsrq, cqi float64, handover bool, per float64) []float64 {
	ho := 0.0
	if handover {
		ho = 1
	}
	return []float64{
		radio.Normalize(radio.KPIRSRP, rsrp),
		radio.Normalize(radio.KPIRSRQ, rsrq),
		radio.Normalize(radio.KPICQI, cqi),
		ho,
		per,
	}
}

// Fit trains on real measurements; target is normalized bandwidth
// (throughput / ThroughputMaxMbps).
func (b *BandwidthPredictor) Fit(ms []sim.Measurement, per, target []float64) {
	idx := make([]int, len(ms))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < b.epochs; ep++ {
		b.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			x := BandwidthFeatures(ms[i].RSRP, ms[i].RSRQ, ms[i].CQI, ms[i].Handover, per[i])
			pred := b.net.Forward(x)
			_, g := nn.MSELoss(pred, []float64{target[i]})
			b.net.Backward(g)
			b.opt.Step(b.net.Params())
		}
	}
}

// Predict returns normalized bandwidth predictions from KPI series; the
// handover indicator is derived from changes in the serving series.
func (b *BandwidthPredictor) Predict(rsrp, rsrq, cqi, serving, per []float64) []float64 {
	out := make([]float64, len(rsrp))
	for i := range rsrp {
		ho := i > 0 && serving[i] != serving[i-1]
		pred := b.net.Forward(BandwidthFeatures(rsrp[i], rsrq[i], cqi[i], ho, per[i]))
		b.net.ClearCache()
		v := pred[0]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

// VideoQoE summarizes a video-streaming session driven by a throughput
// series (§C.2's video QoE use case): a fixed-bitrate player with a
// buffer, reporting stall ratio and mean playable bitrate.
type VideoQoE struct {
	StallRatio  float64 // fraction of session spent rebuffering
	MeanBitrate float64 // Mbps actually sustained
	Startup     float64 // seconds to first play
}

// SimulateVideoSession plays a stream of the given bitrate (Mbps) against
// a throughput series sampled at the given interval, with an initial
// buffer target of bufferTarget seconds.
func SimulateVideoSession(throughputMbps []float64, intervalS, bitrateMbps, bufferTarget float64) VideoQoE {
	if len(throughputMbps) == 0 || bitrateMbps <= 0 {
		return VideoQoE{}
	}
	buffer := 0.0 // seconds of video buffered
	const (
		startingUp = iota
		playing
		rebuffering
	)
	state := startingUp
	var stalled, played, startup float64
	sumRate := 0.0
	for _, thr := range throughputMbps {
		// Seconds of video downloaded during this tick.
		buffer += intervalS * thr / bitrateMbps
		switch state {
		case startingUp:
			startup += intervalS
			if buffer >= bufferTarget {
				state = playing
			}
		case playing:
			if buffer >= intervalS {
				buffer -= intervalS
				played += intervalS
				sumRate += thr
			} else {
				state = rebuffering
				stalled += intervalS
			}
		case rebuffering:
			stalled += intervalS
			if buffer >= bufferTarget/2 {
				state = playing
			}
		}
	}
	total := played + stalled
	q := VideoQoE{Startup: startup}
	if total > 0 {
		q.StallRatio = stalled / total
	}
	if played > 0 {
		q.MeanBitrate = math.Min(bitrateMbps, sumRate/(played/intervalS))
	}
	return q
}
