package downstream

import (
	"math"
	"math/rand"
	"testing"

	"gendt/internal/dataset"
	"gendt/internal/metrics"
	"gendt/internal/radio"
	"gendt/internal/sim"
)

func TestServingLoadSeriesBounded(t *testing.T) {
	d := dataset.NewDatasetA(dataset.Spec{Seed: 61, Scale: 0.02})
	for _, r := range d.Runs[:3] {
		load := ServingLoadSeries(r.Meas)
		if len(load) != len(r.Meas) {
			t.Fatal("length mismatch")
		}
		for _, v := range load {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("load %v out of [0,1]", v)
			}
		}
	}
}

func TestLoadEstimatorLearns(t *testing.T) {
	d := dataset.NewDatasetA(dataset.Spec{Seed: 62, Scale: 0.03})
	train := d.TrainRuns()[0]
	test := d.TestRuns()[0]
	e := NewLoadEstimator(12, 15, 1)
	e.Fit(train.Meas, ServingLoadSeries(train.Meas))
	got := e.Estimate(
		sim.Series(test.Meas, radio.KPIRSRP),
		sim.Series(test.Meas, radio.KPIRSRQ),
		sim.Series(test.Meas, radio.KPISINR))
	want := ServingLoadSeries(test.Meas)
	mae, _ := metrics.MAE(want, got)
	// A mean predictor would score ~ the load std (>= ~0.1); the estimator
	// should land well within the plausible band.
	if mae > 0.35 {
		t.Errorf("load estimation MAE %v implausibly high", mae)
	}
	for _, v := range got {
		if v < 0 || v > 1 {
			t.Fatalf("estimate %v out of range", v)
		}
	}
}

func TestBandwidthPredictorLearns(t *testing.T) {
	d := dataset.NewDatasetA(dataset.Spec{Seed: 63, Scale: 0.03})
	rng := rand.New(rand.NewSource(2))
	// Pool training data across runs so the target spans a real dynamic
	// range (a single short run can sit in flat coverage).
	var trainMeas []sim.Measurement
	var perTr, thrTr []float64
	for _, r := range d.TrainRuns() {
		thr, per := GroundTruthQoE(r.Meas, rng)
		trainMeas = append(trainMeas, r.Meas...)
		thrTr = append(thrTr, thr...)
		perTr = append(perTr, per...)
	}
	b := NewBandwidthPredictor(12, 10, 3)
	b.Fit(trainMeas, perTr, normalize(thrTr, ThroughputMaxMbps))

	var mae, maeConst float64
	for _, test := range d.TestRuns() {
		thrTe, perTe := GroundTruthQoE(test.Meas, rng)
		pred := b.Predict(
			sim.Series(test.Meas, radio.KPIRSRP),
			sim.Series(test.Meas, radio.KPIRSRQ),
			sim.Series(test.Meas, radio.KPICQI),
			sim.Series(test.Meas, radio.KPIServingCell),
			perTe)
		want := normalize(thrTe, ThroughputMaxMbps)
		m, _ := metrics.MAE(want, pred)
		mean := metrics.Mean(want)
		cs := make([]float64, len(want))
		for i := range cs {
			cs[i] = mean
		}
		mc, _ := metrics.MAE(want, cs)
		mae += m
		maeConst += mc
	}
	// The per-run-oracle constant is a strong floor; the predictor must be
	// in its ballpark across runs (it wins whenever throughput varies).
	if mae > 1.5*maeConst {
		t.Errorf("bandwidth predictor MAE %v far worse than oracle constant %v", mae, maeConst)
	}
}

func TestSimulateVideoSessionGoodLink(t *testing.T) {
	thr := make([]float64, 300)
	for i := range thr {
		thr[i] = 10 // 10 Mbps steady
	}
	q := SimulateVideoSession(thr, 1, 4, 5)
	if q.StallRatio > 0.01 {
		t.Errorf("good link stalled %v of the time", q.StallRatio)
	}
	if q.MeanBitrate < 3.9 {
		t.Errorf("good link bitrate %v", q.MeanBitrate)
	}
	if q.Startup <= 0 || q.Startup > 10 {
		t.Errorf("startup %v s", q.Startup)
	}
}

func TestSimulateVideoSessionBadLink(t *testing.T) {
	thr := make([]float64, 300)
	for i := range thr {
		thr[i] = 1 // 1 Mbps against a 4 Mbps stream
	}
	q := SimulateVideoSession(thr, 1, 4, 5)
	if q.StallRatio < 0.3 {
		t.Errorf("starved link only stalled %v", q.StallRatio)
	}
}

func TestSimulateVideoSessionDegenerate(t *testing.T) {
	if q := SimulateVideoSession(nil, 1, 4, 5); q.StallRatio != 0 || q.MeanBitrate != 0 {
		t.Error("empty series should be zero QoE")
	}
	if q := SimulateVideoSession([]float64{5}, 1, 0, 5); q != (VideoQoE{}) {
		t.Error("zero bitrate should be zero QoE")
	}
}

func TestVideoQoEOrdering(t *testing.T) {
	// Better throughput must not yield worse video QoE.
	rng := rand.New(rand.NewSource(4))
	good := make([]float64, 400)
	bad := make([]float64, 400)
	for i := range good {
		good[i] = 6 + rng.Float64()*2
		bad[i] = 2 + rng.Float64()*2
	}
	qg := SimulateVideoSession(good, 1, 4, 5)
	qb := SimulateVideoSession(bad, 1, 4, 5)
	if qg.StallRatio > qb.StallRatio {
		t.Errorf("good link stalls more: %v vs %v", qg.StallRatio, qb.StallRatio)
	}
}
