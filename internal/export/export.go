// Package export serializes measurement runs and generated series to CSV
// and JSON for use outside the library (plotting, spreadsheets, other
// tools).
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"gendt/internal/dataset"
	"gendt/internal/geo"
)

// runHeader is the CSV column layout for measurement runs.
var runHeader = []string{
	"t", "lat", "lon", "rsrp_dbm", "rsrq_db", "sinr_db", "cqi",
	"rssi_dbm", "serving_cell", "handover", "visible_cells",
}

// WriteRunCSV writes one measurement run to path.
func WriteRunCSV(path string, run dataset.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	defer f.Close()
	if err := EncodeRunCSV(f, run); err != nil {
		return err
	}
	return f.Close()
}

// EncodeRunCSV streams a measurement run as CSV to w.
func EncodeRunCSV(w io.Writer, run dataset.Run) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(runHeader); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, m := range run.Meas {
		rec := []string{
			fmtF(m.T), fmtF(m.Loc.Lat), fmtF(m.Loc.Lon),
			fmtF(m.RSRP), fmtF(m.RSRQ), fmtF(m.SINR), fmtF(m.CQI),
			fmtF(m.RSSI), strconv.Itoa(m.ServingCell),
			strconv.FormatBool(m.Handover), strconv.Itoa(len(m.Visible)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRunCSV reads back the (t, rsrp, rsrq, sinr, cqi, serving) columns of
// a CSV written by EncodeRunCSV, returning parallel slices.
func ReadRunCSV(r io.Reader) (t, rsrp, rsrq, sinr, cqi, serving []float64, err error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, nil, nil, nil, nil, nil, fmt.Errorf("export: %w", err)
	}
	if len(recs) == 0 {
		return nil, nil, nil, nil, nil, nil, fmt.Errorf("export: empty CSV")
	}
	for i, rec := range recs[1:] {
		if len(rec) < len(runHeader) {
			return nil, nil, nil, nil, nil, nil, fmt.Errorf("export: short record %d", i+1)
		}
		vals := make([]float64, 7)
		for j, col := range []int{0, 3, 4, 5, 6, 8} {
			v, perr := strconv.ParseFloat(rec[col], 64)
			if perr != nil {
				return nil, nil, nil, nil, nil, nil, fmt.Errorf("export: record %d col %d: %w", i+1, col, perr)
			}
			vals[j] = v
		}
		t = append(t, vals[0])
		rsrp = append(rsrp, vals[1])
		rsrq = append(rsrq, vals[2])
		sinr = append(sinr, vals[3])
		cqi = append(cqi, vals[4])
		serving = append(serving, vals[5])
	}
	return t, rsrp, rsrq, sinr, cqi, serving, nil
}

// GeneratedSeries is the JSON export format for generated KPI series.
type GeneratedSeries struct {
	Channels []string    `json:"channels"`
	Interval float64     `json:"interval_s"`
	Series   [][]float64 `json:"series"` // [channel][t], physical units
}

// WriteSeriesJSON writes generated series to path.
func WriteSeriesJSON(path string, gs GeneratedSeries) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(gs); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	return f.Close()
}

// ReadSeriesJSON reads a series file back.
func ReadSeriesJSON(path string) (GeneratedSeries, error) {
	var gs GeneratedSeries
	f, err := os.Open(path)
	if err != nil {
		return gs, fmt.Errorf("export: %w", err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&gs); err != nil {
		return gs, fmt.Errorf("export: %w", err)
	}
	return gs, nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// trajHeader is the CSV layout for trajectories: one (t, lat, lon) row per
// sample.
var trajHeader = []string{"t", "lat", "lon"}

// WriteTrajectoryCSV writes a trajectory to path.
func WriteTrajectoryCSV(path string, tr geo.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write(trajHeader); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	for _, s := range tr {
		if err := cw.Write([]string{fmtF(s.T), fmtF(s.Lat), fmtF(s.Lon)}); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return f.Close()
}

// ReadTrajectoryCSV reads a trajectory written by WriteTrajectoryCSV (or
// any CSV with t,lat,lon columns in that order, header row required).
func ReadTrajectoryCSV(r io.Reader) (geo.Trajectory, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("export: trajectory CSV needs a header and at least one row")
	}
	var tr geo.Trajectory
	for i, rec := range recs[1:] {
		if len(rec) < 3 {
			return nil, fmt.Errorf("export: short trajectory record %d", i+1)
		}
		var vals [3]float64
		for j := 0; j < 3; j++ {
			v, perr := strconv.ParseFloat(rec[j], 64)
			if perr != nil {
				return nil, fmt.Errorf("export: trajectory record %d col %d: %w", i+1, j, perr)
			}
			vals[j] = v
		}
		tr = append(tr, geo.Sample{Point: geo.Point{Lat: vals[1], Lon: vals[2]}, T: vals[0]})
	}
	return tr, nil
}
