package export

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gendt/internal/dataset"
)

func smallRun(t *testing.T) dataset.Run {
	t.Helper()
	d := dataset.NewDatasetA(dataset.Spec{Seed: 81, Scale: 0.01})
	return d.Runs[0]
}

func TestCSVRoundTrip(t *testing.T) {
	run := smallRun(t)
	var buf bytes.Buffer
	if err := EncodeRunCSV(&buf, run); err != nil {
		t.Fatal(err)
	}
	ts, rsrp, rsrq, sinr, cqi, serving, err := ReadRunCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(run.Meas) {
		t.Fatalf("read %d rows, want %d", len(ts), len(run.Meas))
	}
	for i := range run.Meas {
		m := run.Meas[i]
		if !close4(rsrp[i], m.RSRP) || !close4(rsrq[i], m.RSRQ) ||
			!close4(sinr[i], m.SINR) || !close4(cqi[i], m.CQI) {
			t.Fatalf("row %d mismatch", i)
		}
		if int(serving[i]) != m.ServingCell {
			t.Fatalf("row %d serving %v != %d", i, serving[i], m.ServingCell)
		}
	}
}

func close4(a, b float64) bool {
	d := a - b
	return d < 1e-3 && d > -1e-3
}

func TestWriteRunCSVFile(t *testing.T) {
	run := smallRun(t)
	path := filepath.Join(t.TempDir(), "run.csv")
	if err := WriteRunCSV(path, run); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,lat,lon,rsrp_dbm") {
		t.Errorf("unexpected header: %q", string(data[:40]))
	}
}

func TestReadRunCSVErrors(t *testing.T) {
	if _, _, _, _, _, _, err := ReadRunCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV should error")
	}
	bad := "t,lat,lon,rsrp_dbm,rsrq_db,sinr_db,cqi,rssi_dbm,serving_cell,handover,visible_cells\nx,1,2,3,4,5,6,7,8,true,9\n"
	if _, _, _, _, _, _, err := ReadRunCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric field should error")
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	gs := GeneratedSeries{
		Channels: []string{"RSRP", "RSRQ"},
		Interval: 1,
		Series:   [][]float64{{-80, -81}, {-10, -11}},
	}
	path := filepath.Join(t.TempDir(), "series.json")
	if err := WriteSeriesJSON(path, gs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSeriesJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Channels) != 2 || back.Channels[0] != "RSRP" {
		t.Errorf("channels = %v", back.Channels)
	}
	if back.Series[1][1] != -11 {
		t.Errorf("series = %v", back.Series)
	}
}

func TestReadSeriesJSONMissing(t *testing.T) {
	if _, err := ReadSeriesJSON(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestTrajectoryCSVRoundTrip(t *testing.T) {
	run := smallRun(t)
	path := filepath.Join(t.TempDir(), "route.csv")
	if err := WriteTrajectoryCSV(path, run.Traj); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadTrajectoryCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(run.Traj) {
		t.Fatalf("read %d samples, want %d", len(back), len(run.Traj))
	}
	for i := range back {
		if !close4(back[i].T, run.Traj[i].T) || !close4(back[i].Lat, run.Traj[i].Lat) {
			t.Fatalf("sample %d mismatch", i)
		}
	}
}

func TestReadTrajectoryCSVErrors(t *testing.T) {
	if _, err := ReadTrajectoryCSV(strings.NewReader("t,lat,lon\n")); err == nil {
		t.Error("header-only CSV should error")
	}
	if _, err := ReadTrajectoryCSV(strings.NewReader("t,lat,lon\nx,1,2\n")); err == nil {
		t.Error("bad number should error")
	}
}
