// Package experiments contains one harness per table and figure of the
// paper's evaluation (§3, §6, §C). Each harness builds the simulated
// datasets, trains GenDT and the baselines, and returns the same rows or
// series the paper reports, at a configurable scale.
package experiments

import (
	"gendt/internal/core"
)

// Options scales the experiments. Defaults (via DefaultOptions) run the
// full suite on a laptop CPU in minutes; QuickOptions shrinks everything
// for benchmarks and smoke tests.
type Options struct {
	Seed  int64
	Scale float64 // dataset scale relative to the paper's sample counts

	Hidden   int // GenDT / baseline hidden size
	Epochs   int // GenDT epochs
	BatchLen int
	StepLen  int
	MaxCells int

	// Workers is the data-parallel width passed to core.Config.Workers
	// (0 = runtime.NumCPU()). QuickOptions pins 1 so smoke runs and
	// benchmarks exercise the deterministic serial loop.
	Workers int

	BaselineEpochs int // epochs for MLP / LSTM-GNN / DG
}

// DefaultOptions returns the standard experiment scale: ~10% of the
// paper's sample counts with moderately sized models — large enough for
// the paper's qualitative shapes, small enough for CPU.
func DefaultOptions() Options {
	return Options{
		Seed:           1,
		Scale:          0.08,
		Hidden:         48,
		Epochs:         40,
		BatchLen:       24,
		StepLen:        6,
		MaxCells:       10,
		BaselineEpochs: 8,
	}
}

// QuickOptions returns a heavily scaled-down configuration for benchmarks
// and CI smoke runs.
func QuickOptions() Options {
	return Options{
		Seed:           1,
		Scale:          0.02,
		Hidden:         12,
		Epochs:         4,
		BatchLen:       12,
		StepLen:        6,
		MaxCells:       6,
		Workers:        1,
		BaselineEpochs: 2,
	}
}

// gendtConfig builds a GenDT config for the given channels.
func (o Options) gendtConfig(chans []core.ChannelSpec) core.Config {
	return core.Config{
		Channels: chans,
		Hidden:   o.Hidden,
		BatchLen: o.BatchLen,
		StepLen:  o.StepLen,
		MaxCells: o.MaxCells,
		Epochs:   o.Epochs,
		Seed:     o.Seed,
		Workers:  o.Workers,
	}
}
