package experiments

import (
	"fmt"
	"strings"
	"sync"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/mdt"
)

// These experiments go beyond the paper's evaluation and exercise its two
// named future-work directions (§7.2): comparing against MDT and
// crowdsourced measurement collection, and a closed-loop design that
// conditions on network-side load.

// MDTRow is one row of the measurement-source comparison.
type MDTRow struct {
	Source  string
	Samples int
	MAE     float64
	DTW     float64
	HWD     float64
}

// ExtMDTComparison trains identical GenDT models on equal sample budgets
// drawn from (a) controlled drive testing, (b) a simulated MDT campaign
// (sporadic, core-skewed, location-noisy reports), and (c) a simulated
// crowdsourcing campaign (additionally signal-only and coarse-grained),
// then evaluates RSRP fidelity on the same held-out drive-test routes.
// The paper hypothesizes drive-test data is the most dependable per
// sample; this experiment quantifies it inside the simulated world.
func ExtMDTComparison(opt Options) []MDTRow {
	d := dataset.NewDatasetA(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
	chans := []core.ChannelSpec{core.KPIChannel(0)}
	driveTrain := d.TrainRuns()
	budget := 0
	for _, r := range driveTrain {
		budget += len(r.Meas)
	}
	center := driveTrain[0].Traj.Centroid()

	mdtSpec := mdt.DefaultMDT(opt.Seed + 31)
	crowdSpec := mdt.DefaultCrowdsourcing(opt.Seed + 32)
	mdtRuns := mdt.TrimTo(mdt.Collect(d.World, center, mdtSpec), budget)
	crowdRuns := mdt.TrimTo(mdt.Collect(d.World, center, crowdSpec), budget)

	sources := []struct {
		name string
		runs []dataset.Run
	}{
		{"Drive test", driveTrain},
		{"MDT", mdtRuns},
		{"Crowdsourcing", crowdRuns},
	}
	testSeqs := make([]*core.Sequence, 0, len(d.TestRuns()))
	for _, r := range d.TestRuns() {
		testSeqs = append(testSeqs, core.PrepareSequence(r, chans, opt.MaxCells))
	}

	out := make([]MDTRow, len(sources))
	var wg sync.WaitGroup
	for si, src := range sources {
		wg.Add(1)
		go func(si int, name string, runs []dataset.Run) {
			defer wg.Done()
			row := MDTRow{Source: name, Samples: mdt.SampleCount(runs)}
			if len(runs) == 0 {
				out[si] = row
				return
			}
			train := core.PrepareAll(runs, chans, opt.MaxCells)
			cfg := opt.gendtConfig(chans)
			cfg.Seed = opt.Seed + int64(si)
			m := core.NewModel(cfg)
			m.Train(train, nil)
			n := 0
			for _, seq := range testSeqs {
				rows := evaluate(chans, seq, m.Generate(seq))
				row.MAE += rows[0].MAE
				row.DTW += rows[0].DTW
				row.HWD += rows[0].HWD
				n++
			}
			if n > 0 {
				row.MAE /= float64(n)
				row.DTW /= float64(n)
				row.HWD /= float64(n)
			}
			out[si] = row
		}(si, src.name, src.runs)
	}
	wg.Wait()
	return out
}

// RenderMDT prints the measurement-source comparison.
func RenderMDT(rows []MDTRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Extension: training-data source comparison (RSRP, Dataset A world) ==")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s n=%-6d MAE=%6.2f DTW=%6.2f HWD=%6.2f\n",
			r.Source, r.Samples, r.MAE, r.DTW, r.HWD)
	}
	return b.String()
}

// ClosedLoopRow compares open-loop GenDT (the paper's design) against the
// closed-loop variant that additionally conditions on per-cell load.
type ClosedLoopRow struct {
	Variant string
	RSRQ    FidelityRow
	SINR    FidelityRow
}

// ExtClosedLoop evaluates the §7.2 closed-loop extension: cell load mostly
// moves RSRQ and SINR (interference), so conditioning on network-side load
// should pay off on exactly those channels.
func ExtClosedLoop(opt Options) []ClosedLoopRow {
	d := dataset.NewDatasetA(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
	chans := []core.ChannelSpec{
		core.KPIChannel(1), // RSRQ
		core.KPIChannel(2), // SINR
	}
	variants := []struct {
		name      string
		loadAware bool
	}{
		{"Open loop (paper)", false},
		{"Closed loop (+load)", true},
	}
	out := make([]ClosedLoopRow, len(variants))
	var wg sync.WaitGroup
	for vi, v := range variants {
		wg.Add(1)
		go func(vi int, name string, loadAware bool) {
			defer wg.Done()
			prep := core.PrepareOptions{MaxCells: opt.MaxCells, LoadAware: loadAware}
			var train []*core.Sequence
			for _, r := range d.TrainRuns() {
				train = append(train, core.PrepareSequenceWith(r, chans, prep))
			}
			cfg := opt.gendtConfig(chans)
			cfg.LoadAware = loadAware
			m := core.NewModel(cfg)
			m.Train(train, nil)
			row := ClosedLoopRow{Variant: name}
			n := 0
			for _, r := range d.TestRuns() {
				seq := core.PrepareSequenceWith(r, chans, prep)
				rows := evaluate(chans, seq, m.Generate(seq))
				row.RSRQ.MAE += rows[0].MAE
				row.RSRQ.DTW += rows[0].DTW
				row.RSRQ.HWD += rows[0].HWD
				row.SINR.MAE += rows[1].MAE
				row.SINR.DTW += rows[1].DTW
				row.SINR.HWD += rows[1].HWD
				n++
			}
			if n > 0 {
				for _, fr := range []*FidelityRow{&row.RSRQ, &row.SINR} {
					fr.MAE /= float64(n)
					fr.DTW /= float64(n)
					fr.HWD /= float64(n)
				}
			}
			out[vi] = row
		}(vi, v.name, v.loadAware)
	}
	wg.Wait()
	return out
}

// RenderClosedLoop prints the open- vs closed-loop comparison.
func RenderClosedLoop(rows []ClosedLoopRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Extension: open-loop vs closed-loop (load-aware) GenDT ==")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s RSRQ: MAE=%5.2f DTW=%5.2f HWD=%5.2f | SINR: MAE=%5.2f DTW=%5.2f HWD=%5.2f\n",
			r.Variant, r.RSRQ.MAE, r.RSRQ.DTW, r.RSRQ.HWD,
			r.SINR.MAE, r.SINR.DTW, r.SINR.HWD)
	}
	return b.String()
}
