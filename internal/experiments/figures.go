package experiments

import (
	"fmt"
	"strings"

	"gendt/internal/dataset"
	"gendt/internal/metrics"
	"gendt/internal/radio"
	"gendt/internal/sim"
)

// RepeatedRunSeries holds the Figures 1-2 artifact: several measurement
// runs over the same trajectory, location-aligned (same sample index =
// same location), with per-run RSRP and serving-cell-id series.
type RepeatedRunSeries struct {
	RSRP       [][]float64 // [run][t]
	ServingIDs [][]float64 // [run][t]
	// SpreadDB is the mean across locations of the max-min RSRP spread
	// between runs — the stochasticity the paper's Figure 1 demonstrates.
	SpreadDB float64
	// ChurnCorrelation is the fraction of high-spread locations at which
	// runs also disagree on the serving cell (Figure 2's observation).
	ChurnCorrelation float64
}

// Figures1And2 reproduces the §3 stochasticity analysis: five runs over
// the same tram trajectory in Dataset A.
func Figures1And2(opt Options, nRuns int) RepeatedRunSeries {
	d := dataset.NewDatasetA(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
	tram := d.ScenarioRuns(dataset.ScenarioTram)[0]
	runs := d.World.RepeatedRuns(tram.Traj, nRuns, opt.Seed*77)
	out := RepeatedRunSeries{}
	for _, r := range runs {
		out.RSRP = append(out.RSRP, sim.Series(r, radio.KPIRSRP))
		out.ServingIDs = append(out.ServingIDs, sim.Series(r, radio.KPIServingCell))
	}
	T := len(out.RSRP[0])
	var spreadSum float64
	highSpread, churnAtHigh := 0, 0
	for t := 0; t < T; t++ {
		lo, hi := out.RSRP[0][t], out.RSRP[0][t]
		ids := map[float64]bool{}
		for r := range runs {
			v := out.RSRP[r][t]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			ids[out.ServingIDs[r][t]] = true
		}
		spread := hi - lo
		spreadSum += spread
		if spread > 6 {
			highSpread++
			if len(ids) > 1 {
				churnAtHigh++
			}
		}
	}
	out.SpreadDB = spreadSum / float64(T)
	if highSpread > 0 {
		out.ChurnCorrelation = float64(churnAtHigh) / float64(highSpread)
	}
	return out
}

// DensityCase is one bar of Figure 4: cell density along one scenario's
// trajectories.
type DensityCase struct {
	Case    string
	PerKm2  float64
	Dataset string
}

// Figure4 reproduces the cell-density-per-case analysis over the paper's
// seven cases (Dataset A: walk, bus, tram; Dataset B: two city centres and
// two highways).
func Figure4(opt Options) []DensityCase {
	a := dataset.NewDatasetA(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
	b := dataset.NewDatasetB(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
	var out []DensityCase
	add := func(d *dataset.Dataset, name, label string) {
		runs := d.ScenarioRuns(name)
		if len(runs) == 0 {
			return
		}
		dens := 0.0
		for _, r := range runs {
			dens += d.World.Deployment.DensityPerKm2(r.Traj, 2000)
		}
		out = append(out, DensityCase{Case: label, PerKm2: dens / float64(len(runs)), Dataset: d.Name})
	}
	add(a, dataset.ScenarioWalk, "Case 1 (Walk)")
	add(a, dataset.ScenarioBus, "Case 2 (Bus)")
	add(a, dataset.ScenarioTram, "Case 3 (Tram)")
	add(b, dataset.ScenarioCity1, "Case 4 (City 1)")
	add(b, dataset.ScenarioCity2, "Case 5 (City 2)")
	add(b, dataset.ScenarioHighway1, "Case 6 (Highway 1)")
	add(b, dataset.ScenarioHighway2, "Case 7 (Highway 2)")
	return out
}

// ServingDistanceCDF is one curve of Figure 16: the CDF of the distance to
// the primary serving cell for one scenario.
type ServingDistanceCDF struct {
	Scenario string
	Values   []float64 // sorted distances, metres
	Probs    []float64
	Median   float64
}

// Figure16 reproduces the distance-to-serving-cell CDFs for every scenario
// of a dataset.
func Figure16(d *dataset.Dataset) []ServingDistanceCDF {
	var out []ServingDistanceCDF
	for _, scen := range d.Scenarios() {
		var dists []float64
		for _, r := range d.ScenarioRuns(scen) {
			for _, m := range r.Meas {
				for _, v := range m.Visible {
					if v.Cell.ID == m.ServingCell {
						dists = append(dists, v.Distance)
						break
					}
				}
			}
		}
		if len(dists) == 0 {
			continue
		}
		vals, probs := metrics.CDF(dists)
		out = append(out, ServingDistanceCDF{
			Scenario: scen, Values: vals, Probs: probs,
			Median: vals[len(vals)/2],
		})
	}
	return out
}

// Figure10Series reproduces Figure 10's qualitative comparison: the real
// RSRP series and the GenDT / stitched-short generations over the long
// trajectory. The Table8 rows quantify the same artifact; the
// BoundaryJumpExcess statistic quantifies the visible stitching seams.
type Figure10Series struct {
	Real     []float64
	GenDT    []float64
	Short    []float64
	ShortLen int
	// BoundaryJumpExcess is the mean |Δ| of the stitched series at its
	// batch boundaries minus the mean |Δ| of the GenDT series at the same
	// points — positive values mean visible stitching artifacts.
	BoundaryJumpExcess float64
}

// BoundaryJumpExcess computes the stitched-minus-carried boundary jump
// statistic for two generated series and a stitching period.
func BoundaryJumpExcess(gendt, short []float64, period int) float64 {
	if period < 1 || len(short) != len(gendt) {
		return 0
	}
	var js, jg float64
	n := 0
	for t := period; t < len(short); t += period {
		js += abs(short[t] - short[t-1])
		jg += abs(gendt[t] - gendt[t-1])
		n++
	}
	if n == 0 {
		return 0
	}
	return (js - jg) / float64(n)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderDensity prints Figure 4's bars.
func RenderDensity(cases []DensityCase) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Figure 4: cell density per case ==")
	for _, c := range cases {
		fmt.Fprintf(&b, "%-20s %6.2f cells/km2 (Dataset %s)\n", c.Case, c.PerKm2, c.Dataset)
	}
	return b.String()
}

// RenderCDFs prints Figure 16-style medians.
func RenderCDFs(title string, cdfs []ServingDistanceCDF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, c := range cdfs {
		fmt.Fprintf(&b, "%-16s median serving-cell distance %6.0f m (n=%d)\n",
			c.Scenario, c.Median, len(c.Values))
	}
	return b.String()
}

// ASCIISeries renders a compact ASCII sparkline of a series (for the cmd
// tool's figure output).
func ASCIISeries(name string, xs []float64, width int) string {
	if len(xs) == 0 || width <= 0 {
		return name + ": (empty)\n"
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s [%7.1f, %7.1f] ", name, lo, hi)
	step := float64(len(xs)) / float64(width)
	for i := 0; i < width; i++ {
		v := xs[int(float64(i)*step)]
		g := 0
		if hi > lo {
			g = int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[g])
	}
	b.WriteString("\n")
	return b.String()
}
