package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gendt/internal/baselines"
	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/metrics"
)

// FidelityRow is one (method, scenario, channel) cell group of the
// fidelity tables (Tables 3-7).
type FidelityRow struct {
	Method   string
	Scenario string
	Channel  string
	MAE      float64
	DTW      float64
	HWD      float64
}

// String renders a row.
func (r FidelityRow) String() string {
	return fmt.Sprintf("%-14s %-14s %-11s MAE=%6.2f DTW=%6.2f HWD=%6.2f",
		r.Method, r.Scenario, r.Channel, r.MAE, r.DTW, r.HWD)
}

// methodSet builds the standard comparison: GenDT plus the five baselines
// of §5.2, all for the given channel set.
func methodSet(opt Options, chans []core.ChannelSpec) []baselines.Generator {
	nch := len(chans)
	return []baselines.Generator{
		baselines.NewGenDT(opt.gendtConfig(chans)),
		baselines.NewFDaS(nch, opt.Seed+101),
		baselines.NewMLP(nch, opt.Hidden, opt.BaselineEpochs, 2e-3, opt.Seed+102),
		baselines.NewLSTMGNN(nch, opt.Hidden, opt.BaselineEpochs, 3e-3, opt.Seed+103),
		baselines.NewDG(nch, opt.Hidden, opt.BaselineEpochs, false, opt.Seed+104),
		baselines.NewDG(nch, opt.Hidden, opt.BaselineEpochs, true, opt.Seed+105),
	}
}

// evaluate computes MAE/DTW/HWD per channel between a real and generated
// normalized series, in physical units.
func evaluate(chans []core.ChannelSpec, seq *core.Sequence, gen [][]float64) []FidelityRow {
	rows := make([]FidelityRow, len(chans))
	for c, ch := range chans {
		real := make([]float64, seq.Len())
		got := make([]float64, seq.Len())
		for t := 0; t < seq.Len(); t++ {
			real[t] = ch.Denormalize(seq.KPIs[t][c])
			got[t] = ch.Denormalize(gen[t][c])
		}
		window := len(real) / 10
		if window < 50 {
			window = 50
		}
		mae, _ := metrics.MAE(real, got)
		dtw, _ := metrics.DTW(real, got, window)
		hwd, _ := metrics.HWD(real, got, 40)
		rows[c] = FidelityRow{Channel: ch.Name, MAE: mae, DTW: dtw, HWD: hwd}
	}
	return rows
}

// FidelityComparison trains every method on the dataset's training split
// and evaluates per-scenario, per-channel fidelity on the test split —
// the engine behind Tables 3-6. Methods are independent, so training and
// evaluation fan out across goroutines (one per method).
func FidelityComparison(d *dataset.Dataset, opt Options, chans []core.ChannelSpec) []FidelityRow {
	train := core.PrepareAll(d.TrainRuns(), chans, opt.MaxCells)
	methods := methodSet(opt, chans)

	// Prepared test sequences are shared read-only across methods.
	scenarios := d.Scenarios()
	testSeqs := map[string][]*core.Sequence{}
	for _, scen := range scenarios {
		for _, r := range d.TestRuns() {
			if r.Scenario == scen {
				testSeqs[scen] = append(testSeqs[scen], core.PrepareSequence(r, chans, opt.MaxCells))
			}
		}
	}

	perMethod := make([][]FidelityRow, len(methods))
	var wg sync.WaitGroup
	for mi, m := range methods {
		wg.Add(1)
		go func(mi int, m baselines.Generator) {
			defer wg.Done()
			m.Fit(train)
			var rows []FidelityRow
			for _, scen := range scenarios {
				acc := make([]FidelityRow, len(chans))
				for c := range acc {
					acc[c] = FidelityRow{Method: m.Name(), Scenario: scen, Channel: chans[c].Name}
				}
				n := 0
				for _, seq := range testSeqs[scen] {
					gen := m.Generate(seq)
					got := evaluate(chans, seq, gen)
					for c := range got {
						acc[c].MAE += got[c].MAE
						acc[c].DTW += got[c].DTW
						acc[c].HWD += got[c].HWD
					}
					n++
				}
				if n > 0 {
					for c := range acc {
						acc[c].MAE /= float64(n)
						acc[c].DTW /= float64(n)
						acc[c].HWD /= float64(n)
					}
				}
				rows = append(rows, acc...)
			}
			perMethod[mi] = rows
		}(mi, m)
	}
	wg.Wait()

	// Reassemble in the stable order the tables expect: scenario-major,
	// method-minor.
	var out []FidelityRow
	for si := range scenarios {
		for mi := range methods {
			rows := perMethod[mi]
			per := len(chans)
			out = append(out, rows[si*per:(si+1)*per]...)
		}
	}
	return out
}

// AverageAcrossScenarios reduces per-scenario rows to per-(method, channel)
// averages — the format of Tables 4 and 6.
func AverageAcrossScenarios(rows []FidelityRow) []FidelityRow {
	type key struct{ method, channel string }
	sums := map[key]*FidelityRow{}
	counts := map[key]int{}
	var order []key
	for _, r := range rows {
		k := key{r.Method, r.Channel}
		if _, ok := sums[k]; !ok {
			sums[k] = &FidelityRow{Method: r.Method, Scenario: "All", Channel: r.Channel}
			order = append(order, k)
		}
		sums[k].MAE += r.MAE
		sums[k].DTW += r.DTW
		sums[k].HWD += r.HWD
		counts[k]++
	}
	out := make([]FidelityRow, 0, len(order))
	for _, k := range order {
		r := *sums[k]
		n := float64(counts[k])
		r.MAE /= n
		r.DTW /= n
		r.HWD /= n
		out = append(out, r)
	}
	return out
}

// FilterChannel keeps only rows of one channel (e.g. "RSRP" for Tables
// 3 and 5).
func FilterChannel(rows []FidelityRow, channel string) []FidelityRow {
	var out []FidelityRow
	for _, r := range rows {
		if r.Channel == channel {
			out = append(out, r)
		}
	}
	return out
}

// RenderFidelity prints rows as an aligned text table grouped by scenario.
func RenderFidelity(title string, rows []FidelityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	byScenario := map[string][]FidelityRow{}
	var scenarios []string
	for _, r := range rows {
		if _, ok := byScenario[r.Scenario]; !ok {
			scenarios = append(scenarios, r.Scenario)
		}
		byScenario[r.Scenario] = append(byScenario[r.Scenario], r)
	}
	for _, s := range scenarios {
		fmt.Fprintf(&b, "-- %s --\n", s)
		rs := byScenario[s]
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].Channel < rs[j].Channel })
		for _, r := range rs {
			fmt.Fprintln(&b, r.String())
		}
	}
	return b.String()
}

// BestMethodBy returns the method with the lowest average value of the
// given metric selector across rows (used by tests to assert "GenDT wins").
func BestMethodBy(rows []FidelityRow, sel func(FidelityRow) float64) string {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range rows {
		sums[r.Method] += sel(r)
		counts[r.Method]++
	}
	best, bestV := "", 0.0
	for m, s := range sums {
		v := s / float64(counts[m])
		if best == "" || v < bestV {
			best, bestV = m, v
		}
	}
	return best
}
