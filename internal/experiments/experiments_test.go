package experiments

import (
	"math"
	"strings"
	"testing"

	"gendt/internal/dataset"
)

// quick keeps experiment smoke tests fast.
var quick = QuickOptions()

func TestTable1Shape(t *testing.T) {
	rows := Table1(quick)
	if len(rows) != 3 {
		t.Fatalf("Table 1 has %d rows, want 3", len(rows))
	}
	// Paper Table 1 shape: 1 s granularity, walk slowest, tram fastest.
	var walk, tram dataset.Stats
	for _, r := range rows {
		switch r.Scenario {
		case dataset.ScenarioWalk:
			walk = r
		case dataset.ScenarioTram:
			tram = r
		}
		if math.Abs(r.TimeGranularity-1) > 1e-9 {
			t.Errorf("%s granularity %v, want 1 s", r.Scenario, r.TimeGranularity)
		}
		if r.Samples == 0 {
			t.Errorf("%s has no samples", r.Scenario)
		}
	}
	if walk.AvgVelocity >= tram.AvgVelocity {
		t.Errorf("walk %v m/s not slower than tram %v m/s", walk.AvgVelocity, tram.AvgVelocity)
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(quick)
	if len(rows) != 4 {
		t.Fatalf("Table 2 has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.ROCRSRP <= 0 {
			t.Errorf("%s ROC RSRP = %v, want positive", r.Scenario, r.ROCRSRP)
		}
		if strings.HasPrefix(r.Scenario, "Highway") && r.AvgVelocity < 18 {
			t.Errorf("%s velocity %v too low for a highway", r.Scenario, r.AvgVelocity)
		}
	}
}

func TestFigures1And2Stochasticity(t *testing.T) {
	rr := Figures1And2(quick, 3)
	if len(rr.RSRP) != 3 {
		t.Fatalf("got %d runs", len(rr.RSRP))
	}
	if rr.SpreadDB <= 0 {
		t.Error("no run-to-run RSRP spread; stochasticity missing")
	}
	// Figure 2's observation: where RSRP spread is high, serving cells
	// also differ between runs at least sometimes.
	if rr.ChurnCorrelation < 0 || rr.ChurnCorrelation > 1 {
		t.Errorf("churn correlation %v out of [0,1]", rr.ChurnCorrelation)
	}
}

func TestFigure4DensityOrdering(t *testing.T) {
	cases := Figure4(quick)
	if len(cases) != 7 {
		t.Fatalf("Figure 4 has %d cases, want 7", len(cases))
	}
	byCase := map[string]float64{}
	for _, c := range cases {
		if c.PerKm2 < 0 {
			t.Errorf("%s negative density", c.Case)
		}
		byCase[c.Case] = c.PerKm2
	}
	// Paper's Figure 4 shape: inner-city cases denser than highways.
	cityMin := math.Min(byCase["Case 1 (Walk)"], byCase["Case 4 (City 1)"])
	hwMax := math.Max(byCase["Case 6 (Highway 1)"], byCase["Case 7 (Highway 2)"])
	if cityMin <= hwMax {
		t.Errorf("city density %v not above highway density %v", cityMin, hwMax)
	}
}

func TestFigure16CDFs(t *testing.T) {
	d := dataset.NewDatasetB(dataset.Spec{Seed: quick.Seed, Scale: quick.Scale})
	cdfs := Figure16(d)
	if len(cdfs) != 4 {
		t.Fatalf("got %d CDFs, want 4", len(cdfs))
	}
	medians := map[string]float64{}
	for _, c := range cdfs {
		if len(c.Values) == 0 {
			t.Fatalf("%s empty CDF", c.Scenario)
		}
		last := c.Probs[len(c.Probs)-1]
		if math.Abs(last-1) > 1e-9 {
			t.Errorf("%s CDF ends at %v", c.Scenario, last)
		}
		medians[c.Scenario] = c.Median
	}
	// Paper Figure 16(b): highway serving cells are farther than city ones.
	if medians[dataset.ScenarioHighway1] <= medians[dataset.ScenarioCity1] {
		t.Errorf("highway median %v not beyond city median %v",
			medians[dataset.ScenarioHighway1], medians[dataset.ScenarioCity1])
	}
}

func TestRenderHelpers(t *testing.T) {
	if s := RenderStats("t", Table1(quick)); !strings.Contains(s, "Walk") {
		t.Error("RenderStats missing scenario")
	}
	if s := RenderDensity(Figure4(quick)); !strings.Contains(s, "Case 1") {
		t.Error("RenderDensity missing case")
	}
	d := dataset.NewDatasetA(dataset.Spec{Seed: quick.Seed, Scale: quick.Scale})
	if s := RenderCDFs("f16", Figure16(d)); !strings.Contains(s, "median") {
		t.Error("RenderCDFs missing median")
	}
	if s := ASCIISeries("x", []float64{1, 2, 3}, 10); !strings.Contains(s, "x") {
		t.Error("ASCIISeries missing name")
	}
	if s := ASCIISeries("empty", nil, 10); !strings.Contains(s, "empty") {
		t.Error("ASCIISeries empty case")
	}
}

func TestBoundaryJumpExcess(t *testing.T) {
	gendt := []float64{0, 0, 0, 0, 0, 0}
	short := []float64{0, 0, 5, 5, 10, 10} // jumps of 5 at t=2 and t=4
	got := BoundaryJumpExcess(gendt, short, 2)
	if got != 5 {
		t.Errorf("BoundaryJumpExcess = %v, want 5", got)
	}
	if BoundaryJumpExcess(gendt, short[:4], 2) != 0 {
		t.Error("length mismatch should return 0")
	}
}

func TestFidelityHelpers(t *testing.T) {
	rows := []FidelityRow{
		{Method: "A", Scenario: "s1", Channel: "RSRP", MAE: 1, DTW: 2, HWD: 3},
		{Method: "A", Scenario: "s2", Channel: "RSRP", MAE: 3, DTW: 4, HWD: 5},
		{Method: "B", Scenario: "s1", Channel: "RSRP", MAE: 10, DTW: 10, HWD: 10},
		{Method: "B", Scenario: "s1", Channel: "RSRQ", MAE: 1, DTW: 1, HWD: 1},
	}
	avg := AverageAcrossScenarios(rows)
	var aRSRP *FidelityRow
	for i := range avg {
		if avg[i].Method == "A" && avg[i].Channel == "RSRP" {
			aRSRP = &avg[i]
		}
	}
	if aRSRP == nil || aRSRP.MAE != 2 {
		t.Fatalf("average MAE = %+v, want 2", aRSRP)
	}
	filtered := FilterChannel(rows, "RSRQ")
	if len(filtered) != 1 || filtered[0].Method != "B" {
		t.Fatalf("FilterChannel = %+v", filtered)
	}
	if best := BestMethodBy(rows, func(r FidelityRow) float64 { return r.MAE }); best != "A" {
		t.Errorf("BestMethodBy = %s, want A", best)
	}
	if s := RenderFidelity("t", rows); !strings.Contains(s, "MAE") {
		t.Error("RenderFidelity output")
	}
}

// Smoke tests for the heavier harnesses at quick scale: they must run and
// produce structurally valid output (shape assertions against the paper's
// orderings live in the bench harness where models are trained at full
// experiment scale).

func TestTable3Smoke(t *testing.T) {
	rows := Table3(quick)
	if len(rows) != 6*3 { // 6 methods x 3 scenarios
		t.Fatalf("Table 3 has %d rows, want 18", len(rows))
	}
	for _, r := range rows {
		if r.Channel != "RSRP" {
			t.Errorf("unexpected channel %s", r.Channel)
		}
		if math.IsNaN(r.MAE) || math.IsNaN(r.DTW) || math.IsNaN(r.HWD) {
			t.Errorf("NaN metric in %+v", r)
		}
	}
}

func TestTable8Smoke(t *testing.T) {
	rows := Table8(quick)
	if len(rows) != 3 {
		t.Fatalf("Table 8 has %d rows", len(rows))
	}
	if rows[0].Method != "GenDT" {
		t.Errorf("first row %s", rows[0].Method)
	}
	if s := RenderTable8(rows); !strings.Contains(s, "GenDT") {
		t.Error("render output")
	}
}

func TestFigure9Smoke(t *testing.T) {
	env := Figure9(quick, 3)
	if len(env.Real) == 0 || len(env.Min) != len(env.Real) {
		t.Fatal("envelope shape")
	}
	for i := range env.Min {
		if env.Min[i] > env.Max[i] {
			t.Fatalf("min %v > max %v at %d", env.Min[i], env.Max[i], i)
		}
		if env.Mean[i] < env.Min[i]-1e-9 || env.Mean[i] > env.Max[i]+1e-9 {
			t.Fatalf("mean outside envelope at %d", i)
		}
	}
	if env.Coverage < 0 || env.Coverage > 1 {
		t.Fatalf("coverage %v", env.Coverage)
	}
}

func TestFigure10Smoke(t *testing.T) {
	f := Figure10(quick)
	if len(f.Real) != len(f.GenDT) || len(f.Real) != len(f.Short) {
		t.Fatal("series length mismatch")
	}
	if f.ShortLen < 2 {
		t.Errorf("short length %d", f.ShortLen)
	}
}

func TestFigure11Smoke(t *testing.T) {
	c := Figure11(quick, 3, 1)
	if len(c.Uncertainty) != 2 || len(c.Random) != 2 {
		t.Fatalf("curves %d/%d steps", len(c.Uncertainty), len(c.Random))
	}
	if s := RenderFigure11(c); !strings.Contains(s, "%") {
		t.Error("render output")
	}
}

func TestTable9Smoke(t *testing.T) {
	rows := Table9(quick)
	if len(rows) != 8 { // Real, Excluded, 6 methods
		t.Fatalf("Table 9 has %d rows, want 8", len(rows))
	}
	if rows[0].Source != "Real" || rows[1].Source != "RSRP & RSRQ Excluded" {
		t.Errorf("row order: %s, %s", rows[0].Source, rows[1].Source)
	}
	// The paper's core ablation: excluding RSRP/RSRQ must hurt throughput
	// prediction relative to using real measurements.
	if rows[1].Throughput.MAE <= rows[0].Throughput.MAE {
		t.Errorf("excluding KPIs did not degrade prediction: excl=%v real=%v",
			rows[1].Throughput.MAE, rows[0].Throughput.MAE)
	}
	if s := RenderTable9(rows); !strings.Contains(s, "Real") {
		t.Error("render output")
	}
}

func TestTable10Smoke(t *testing.T) {
	res := Table10(quick)
	if len(res.Rows) != 6 {
		t.Fatalf("Table 10 has %d rows, want 6", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.HWD < 0 || math.IsNaN(r.HWD) {
			t.Errorf("%s HWD = %v", r.Method, r.HWD)
		}
	}
	if len(res.RealCDF.Values) == 0 {
		t.Error("empty real inter-handover CDF")
	}
	if s := RenderTable10(res); !strings.Contains(s, "HWD") {
		t.Error("render output")
	}
}

func TestTable12Smoke(t *testing.T) {
	rows := Table12(quick)
	if len(rows) != 5 {
		t.Fatalf("Table 12 has %d rows, want 5", len(rows))
	}
	if rows[0].Variant != "GenDT" {
		t.Errorf("first variant %s", rows[0].Variant)
	}
	if s := RenderTable12(rows); !strings.Contains(s, "No SRNN") {
		t.Error("render output")
	}
}

func TestFigure18Smoke(t *testing.T) {
	s := Figure18(quick)
	if len(s.Real) == 0 || len(s.Real) != len(s.GenDT) || len(s.Real) != len(s.RealDG) {
		t.Fatal("series lengths")
	}
}

func TestExtMDTComparisonSmoke(t *testing.T) {
	rows := ExtMDTComparison(quick)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Source != "Drive test" {
		t.Errorf("first source %s", rows[0].Source)
	}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Errorf("%s collected no samples", r.Source)
		}
		if math.IsNaN(r.MAE) {
			t.Errorf("%s NaN MAE", r.Source)
		}
	}
	if s := RenderMDT(rows); !strings.Contains(s, "MDT") {
		t.Error("render output")
	}
}

func TestExtClosedLoopSmoke(t *testing.T) {
	rows := ExtClosedLoop(quick)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.RSRQ.MAE) || math.IsNaN(r.SINR.MAE) {
			t.Errorf("%s NaN metrics", r.Variant)
		}
	}
	if s := RenderClosedLoop(rows); !strings.Contains(s, "Closed loop") {
		t.Error("render output")
	}
}
