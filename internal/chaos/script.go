// Package chaos is a seeded, deterministic HTTP fault proxy that sits
// between gendt-lb and its replicas and injects failures on a scripted
// schedule. It exists to turn the front tier's probe/ejection/retry
// machinery and the rollout rollback path into CI-proven behavior: the
// same seed and schedule always injects the same faults into the same
// request positions, so a chaos run that passes locally passes in CI.
//
// Fault taxonomy (Kind):
//
//	latency    hold the request for a fixed delay, then forward it
//	reset      kill the client connection (SO_LINGER 0 → TCP RST)
//	http       answer with a fixed status code, never touching the backend
//	truncate   forward, then cut the response body short mid-stream
//	slowloris  forward, then drip the response one byte at a time
//	blackhole  swallow the request and never answer (one-way partition:
//	           client→server delivered, server→client dropped)
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind names one fault type.
type Kind string

// The fault kinds a Rule can inject.
const (
	KindLatency   Kind = "latency"
	KindReset     Kind = "reset"
	KindHTTP      Kind = "http"
	KindTruncate  Kind = "truncate"
	KindSlowloris Kind = "slowloris"
	KindBlackhole Kind = "blackhole"
)

// Rule is one window of a fault schedule: between Start and End (offsets
// from the moment the schedule is armed), each request independently
// suffers Kind with probability Prob.
type Rule struct {
	Kind  Kind
	Start time.Duration // window start, inclusive
	End   time.Duration // window end, exclusive
	Prob  float64       // per-request injection probability in the window

	Latency time.Duration // KindLatency: added delay
	Code    int           // KindHTTP: injected status code
}

func (r Rule) String() string {
	s := fmt.Sprintf("%s-%s:%s", r.Start, r.End, r.Kind)
	switch r.Kind {
	case KindLatency:
		s += ":" + r.Latency.String()
	case KindHTTP:
		s += ":" + strconv.Itoa(r.Code)
	}
	return fmt.Sprintf("%s@%g", s, r.Prob)
}

// ParseScript parses a fault schedule. The grammar, per semicolon-separated
// rule:
//
//	START-END:KIND[:PARAM][@PROB]
//
// START and END are Go durations (plain numbers mean seconds) relative to
// arming. PARAM is the latency duration for "latency" and the status code
// for "http". PROB defaults to 1. Examples:
//
//	0-5:reset@0.3
//	2s-4s:latency:250ms@0.5
//	0-10:http:503@0.25;10-15:blackhole@0.1
func ParseScript(s string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", part, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("empty fault script")
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	r := Rule{Prob: 1}
	if at := strings.LastIndex(s, "@"); at >= 0 {
		p, err := strconv.ParseFloat(s[at+1:], 64)
		if err != nil || p < 0 || p > 1 {
			return r, fmt.Errorf("probability %q: want a float in [0,1]", s[at+1:])
		}
		r.Prob = p
		s = s[:at]
	}
	fields := strings.Split(s, ":")
	if len(fields) < 2 {
		return r, fmt.Errorf("want START-END:KIND[:PARAM]")
	}
	window := strings.SplitN(fields[0], "-", 2)
	if len(window) != 2 {
		return r, fmt.Errorf("window %q: want START-END", fields[0])
	}
	var err error
	if r.Start, err = parseOffset(window[0]); err != nil {
		return r, err
	}
	if r.End, err = parseOffset(window[1]); err != nil {
		return r, err
	}
	if r.End <= r.Start {
		return r, fmt.Errorf("window end %s not after start %s", r.End, r.Start)
	}

	r.Kind = Kind(fields[1])
	param := ""
	if len(fields) > 2 {
		// Latency durations like "1m30s" contain no colons, so any extra
		// fields beyond the kind are a single param.
		param = strings.Join(fields[2:], ":")
	}
	switch r.Kind {
	case KindLatency:
		if param == "" {
			return r, fmt.Errorf("latency needs a duration param, e.g. latency:200ms")
		}
		if r.Latency, err = time.ParseDuration(param); err != nil || r.Latency <= 0 {
			return r, fmt.Errorf("latency %q: want a positive duration", param)
		}
	case KindHTTP:
		if param == "" {
			return r, fmt.Errorf("http needs a status code param, e.g. http:503")
		}
		if r.Code, err = strconv.Atoi(param); err != nil || r.Code < 400 || r.Code > 599 {
			return r, fmt.Errorf("http code %q: want 400..599", param)
		}
	case KindReset, KindTruncate, KindSlowloris, KindBlackhole:
		if param != "" {
			return r, fmt.Errorf("%s takes no param", r.Kind)
		}
	default:
		return r, fmt.Errorf("unknown fault kind %q", r.Kind)
	}
	return r, nil
}

// parseOffset accepts a Go duration or a bare number of seconds.
func parseOffset(s string) (time.Duration, error) {
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		if secs < 0 {
			return 0, fmt.Errorf("offset %q: negative", s)
		}
		return time.Duration(secs * float64(time.Second)), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("offset %q: want seconds or a duration", s)
	}
	return d, nil
}
