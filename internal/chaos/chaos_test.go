package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseScript(t *testing.T) {
	rules, err := ParseScript("0-5:reset@0.3; 2s-4s:latency:250ms@0.5 ;0-10:http:503;10-15:blackhole@0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("got %d rules", len(rules))
	}
	want := []Rule{
		{Kind: KindReset, Start: 0, End: 5 * time.Second, Prob: 0.3},
		{Kind: KindLatency, Start: 2 * time.Second, End: 4 * time.Second, Prob: 0.5, Latency: 250 * time.Millisecond},
		{Kind: KindHTTP, Start: 0, End: 10 * time.Second, Prob: 1, Code: 503},
		{Kind: KindBlackhole, Start: 10 * time.Second, End: 15 * time.Second, Prob: 0.1},
	}
	for i, r := range rules {
		if r != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestParseScriptRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"0-5",                  // no kind
		"5-5:reset",            // empty window
		"5-2:reset",            // inverted window
		"0-5:latency",          // missing param
		"0-5:latency:-1s",      // negative latency
		"0-5:http:200",         // non-error code
		"0-5:http",             // missing code
		"0-5:reset:x",          // stray param
		"0-5:quake",            // unknown kind
		"0-5:reset@1.5",        // prob out of range
		"0-5:reset@minusone",   // unparsable prob
		"x-5:reset",            // bad offset
		"0-5:latency:250ms@@1", // double @
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) accepted", bad)
		}
	}
}

// backend answers every request with a fixed JSON body.
func backend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"series":[1,2,3,4,5,6,7,8]}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func proxyFor(t *testing.T, target string, rules []Rule, seed uint64) (*Proxy, *httptest.Server) {
	t.Helper()
	p := NewProxy(target, rules, seed)
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func TestDormantProxyIsTransparent(t *testing.T) {
	be := backend(t)
	rules, _ := ParseScript("0-3600:http:503") // would kill everything if armed
	p, srv := proxyFor(t, be.URL, rules, 1)

	for i := 0; i < 10; i++ {
		resp, err := http.Get(srv.URL + "/v1/generate")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(body) != `{"series":[1,2,3,4,5,6,7,8]}` {
			t.Fatalf("dormant proxy mangled request: %d %s", resp.StatusCode, body)
		}
	}
	if s := p.Stats(); s.Total != 0 || s.Forwards != 10 {
		t.Fatalf("dormant stats %+v", s)
	}
}

func TestInjectHTTP(t *testing.T) {
	be := backend(t)
	rules, _ := ParseScript("0-3600:http:503")
	p, srv := proxyFor(t, be.URL, rules, 1)
	p.Arm()

	resp, err := http.Get(srv.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status %d, want injected 503", resp.StatusCode)
	}
	if resp.Header.Get(HeaderInjected) == "" {
		t.Fatal("injected response not marked with " + HeaderInjected)
	}
	if s := p.Stats(); s.Injected[KindHTTP] != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInjectReset(t *testing.T) {
	be := backend(t)
	rules, _ := ParseScript("0-3600:reset")
	p, srv := proxyFor(t, be.URL, rules, 1)
	p.Arm()

	_, err := http.Get(srv.URL + "/v1/generate")
	if err == nil {
		t.Fatal("reset fault produced a successful response")
	}
	if s := p.Stats(); s.Injected[KindReset] != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInjectLatency(t *testing.T) {
	be := backend(t)
	rules, _ := ParseScript("0-3600:latency:150ms")
	p, srv := proxyFor(t, be.URL, rules, 1)
	p.Arm()

	start := time.Now()
	resp, err := http.Get(srv.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("latency fault added only %s", d)
	}
	// Delayed, not corrupted.
	if resp.StatusCode != 200 || string(body) != `{"series":[1,2,3,4,5,6,7,8]}` {
		t.Fatalf("latency fault corrupted response: %d %s", resp.StatusCode, body)
	}
}

func TestInjectTruncate(t *testing.T) {
	be := backend(t)
	rules, _ := ParseScript("0-3600:truncate")
	p, srv := proxyFor(t, be.URL, rules, 1)
	p.Arm()

	resp, err := http.Get(srv.URL + "/v1/generate")
	if err == nil {
		// Headers may arrive fine; the body read must fail short.
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && string(body) == `{"series":[1,2,3,4,5,6,7,8]}` {
			t.Fatal("truncate fault delivered the full body")
		}
	}
	if s := p.Stats(); s.Injected[KindTruncate] != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInjectBlackholeHonorsClientTimeout(t *testing.T) {
	be := backend(t)
	rules, _ := ParseScript("0-3600:blackhole")
	p, srv := proxyFor(t, be.URL, rules, 1)
	p.Arm()

	client := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(srv.URL + "/v1/generate")
	if err == nil {
		t.Fatal("blackhole answered")
	}
	if d := time.Since(start); d < 90*time.Millisecond || d > 2*time.Second {
		t.Fatalf("blackhole released after %s, want ~client timeout", d)
	}
	if s := p.Stats(); s.Injected[KindBlackhole] != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInjectSlowloris(t *testing.T) {
	be := backend(t)
	rules, _ := ParseScript("0-3600:slowloris")
	p, srv := proxyFor(t, be.URL, rules, 1)
	p.Arm()

	client := &http.Client{Timeout: 200 * time.Millisecond}
	resp, err := client.Get(srv.URL + "/v1/generate")
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("slowloris delivered the full body within the client timeout")
		}
	}
	if s := p.Stats(); s.Injected[KindSlowloris] != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestDeterministicInjections: same seed + schedule + request order →
// identical injection decisions; different seed → (overwhelmingly) a
// different pattern.
func TestDeterministicInjections(t *testing.T) {
	pattern := func(seed uint64) string {
		var b strings.Builder
		for n := uint64(1); n <= 256; n++ {
			if draw(seed, 0, n) < 0.3 {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	if pattern(42) != pattern(42) {
		t.Fatal("same seed produced different injection patterns")
	}
	if pattern(42) == pattern(43) {
		t.Fatal("different seeds produced the same 256-request pattern")
	}
	// Probability is roughly honored.
	hits := strings.Count(pattern(42), "x")
	if hits < 48 || hits > 112 { // 0.3*256=77 ± slack
		t.Fatalf("prob 0.3 hit %d/256 requests", hits)
	}
}

func TestArmResetRestartsSchedule(t *testing.T) {
	be := backend(t)
	rules, _ := ParseScript("0-3600:http:503@0.5")
	p, srv := proxyFor(t, be.URL, rules, 9)

	run := func() string {
		p.Arm()
		var b strings.Builder
		for i := 0; i < 64; i++ {
			resp, err := http.Get(srv.URL + "/x")
			if err != nil {
				b.WriteByte('E')
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 503 {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("re-armed run diverged:\n%s\n%s", a, b)
	}
}

func TestFleetControl(t *testing.T) {
	be := backend(t)
	rules, _ := ParseScript("0-3600:http:503")
	p, srv := proxyFor(t, be.URL, rules, 1)
	fleet := &Fleet{Proxies: []*Proxy{p}}
	ctl := httptest.NewServer(fleet.ControlHandler())
	defer ctl.Close()

	// Dormant → clean.
	resp, _ := http.Get(srv.URL + "/x")
	if resp.StatusCode != 200 {
		t.Fatalf("dormant: %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Arm via control → faults fire.
	if resp, err := http.Post(ctl.URL+"/arm", "", nil); err != nil || resp.StatusCode != 200 {
		t.Fatalf("arm: %v %d", err, resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/x")
	if resp.StatusCode != 503 {
		t.Fatalf("armed: %d, want 503", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Disarm → clean again; stats report the injection.
	if resp, err := http.Post(ctl.URL+"/disarm", "", nil); err != nil || resp.StatusCode != 200 {
		t.Fatalf("disarm: %v", err)
	}
	resp, _ = http.Get(srv.URL + "/x")
	if resp.StatusCode != 200 {
		t.Fatalf("disarmed: %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	sresp, err := http.Get(ctl.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(stats), `"http": 1`) {
		t.Fatalf("stats missing injection count: %s", stats)
	}
}

func TestScheduleWindows(t *testing.T) {
	be := backend(t)
	// Faults only in a window that has already passed by the time we send.
	rules, _ := ParseScript("3600-7200:http:503")
	p, srv := proxyFor(t, be.URL, rules, 1)
	p.Arm()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("out-of-window fault fired: %d", resp.StatusCode)
	}
}
