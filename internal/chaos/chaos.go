package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HeaderInjected marks a chaos-generated response (KindHTTP) so harnesses
// can tell injected errors from real backend ones.
const HeaderInjected = "X-Gendt-Chaos"

// Proxy forwards HTTP requests to one backend, injecting scripted faults.
// Until Arm is called the schedule is dormant and the proxy is transparent,
// which lets a harness verify clean behavior through the exact same path
// before unleashing the script.
//
// Fault decisions are deterministic: request i through this proxy draws
// from splitmix64(seed, ruleIndex, i), so a given seed + schedule + request
// order reproduces the same injections.
type Proxy struct {
	target string // backend base URL, e.g. http://127.0.0.1:18081
	rules  []Rule
	seed   uint64
	client *http.Client

	armedAt atomic.Int64 // unixnano; 0 = dormant
	reqs    atomic.Uint64

	mu       sync.Mutex
	injected map[Kind]uint64
	forwards uint64
}

// NewProxy builds a fault proxy in front of target. rules may be nil (a
// permanently transparent proxy is still useful as a control).
func NewProxy(target string, rules []Rule, seed uint64) *Proxy {
	return &Proxy{
		target:   strings.TrimRight(target, "/"),
		rules:    rules,
		seed:     seed,
		injected: make(map[Kind]uint64),
		// No client timeout: the proxy honors the caller's context so the
		// LB's own per-attempt timeout stays the one source of deadline.
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}},
	}
}

// Arm starts the schedule clock: rule windows are offsets from this
// moment. Re-arming restarts the clock and the request counter, so a
// harness can replay the same scripted run.
func (p *Proxy) Arm() {
	p.reqs.Store(0)
	p.armedAt.Store(time.Now().UnixNano())
}

// Disarm returns the proxy to transparent mode.
func (p *Proxy) Disarm() { p.armedAt.Store(0) }

// Stats reports how many requests were forwarded untouched and how many
// suffered each fault kind.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{Target: p.target, Forwards: p.forwards, Injected: make(map[Kind]uint64, len(p.injected))}
	for k, v := range p.injected {
		s.Injected[k] = v
		s.Total += v
	}
	return s
}

// Stats is one proxy's injection accounting.
type Stats struct {
	Target   string          `json:"target"`
	Forwards uint64          `json:"forwards"` // requests passed through clean
	Total    uint64          `json:"injected_total"`
	Injected map[Kind]uint64 `json:"injected"` // by fault kind
}

func (p *Proxy) count(k Kind) {
	p.mu.Lock()
	p.injected[k]++
	p.mu.Unlock()
}

// pick returns the fault to inject for the next request, if any.
func (p *Proxy) pick() (Rule, bool) {
	armed := p.armedAt.Load()
	n := p.reqs.Add(1)
	if armed == 0 {
		return Rule{}, false
	}
	t := time.Duration(time.Now().UnixNano() - armed)
	for i, r := range p.rules {
		if t < r.Start || t >= r.End {
			continue
		}
		if draw(p.seed, uint64(i), n) < r.Prob {
			return r, true
		}
	}
	return Rule{}, false
}

// draw maps (seed, rule, request#) to a uniform float in [0,1) via the
// splitmix64 finalizer — the same request position always draws the same
// value for a given seed.
func draw(seed, rule, n uint64) float64 {
	z := seed ^ (rule+1)*0x9e3779b97f4a7c15 ^ n*0xbf58476d1ce4e5b9
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// ServeHTTP implements the proxy.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rule, inject := p.pick()
	if inject {
		switch rule.Kind {
		case KindLatency:
			p.count(KindLatency)
			select {
			case <-time.After(rule.Latency):
			case <-r.Context().Done():
				return
			}
			// fall through to a normal forward after the delay
		case KindReset:
			p.count(KindReset)
			p.reset(w)
			return
		case KindHTTP:
			p.count(KindHTTP)
			w.Header().Set(HeaderInjected, string(KindHTTP))
			w.WriteHeader(rule.Code)
			fmt.Fprintf(w, `{"error":"chaos-injected %d"}`, rule.Code)
			return
		case KindBlackhole:
			p.count(KindBlackhole)
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done() // hold until the client gives up
			return
		case KindTruncate, KindSlowloris:
			p.count(rule.Kind)
			p.forwardMangled(w, r, rule.Kind)
			return
		}
	}
	p.forward(w, r, inject)
}

// forward relays the request to the backend unchanged.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, wasDelayed bool) {
	resp, err := p.roundTrip(r)
	if err != nil {
		// Backend unreachable: surface as a connect-style failure by
		// killing the conn, which is what the LB expects from a dead
		// replica (a 502 would be relayed to the client instead).
		p.reset(w)
		return
	}
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	if !wasDelayed {
		p.mu.Lock()
		p.forwards++
		p.mu.Unlock()
	}
}

// forwardMangled forwards the request but corrupts the response stream:
// truncate cuts the body at half its length and kills the conn; slowloris
// drips one byte per 50ms until the client hangs up.
func (p *Proxy) forwardMangled(w http.ResponseWriter, r *http.Request, kind Kind) {
	resp, err := p.roundTrip(r)
	if err != nil {
		p.reset(w)
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	switch kind {
	case KindTruncate:
		// Advertise the full length, deliver half, then RST: the client
		// sees a mid-body connection error, not a short-but-valid reply.
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush() // half the body must hit the wire before the RST
		}
		p.reset(w)
	case KindSlowloris:
		copyHeaders(w.Header(), resp.Header)
		w.Header().Del("Content-Length")
		w.WriteHeader(resp.StatusCode)
		fl, _ := w.(http.Flusher)
		for i := range body {
			if r.Context().Err() != nil {
				return
			}
			if _, err := w.Write(body[i : i+1]); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			select {
			case <-time.After(50 * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
	}
}

func (p *Proxy) roundTrip(r *http.Request) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	return p.client.Do(req)
}

// reset kills the client connection abruptly. SO_LINGER 0 turns the close
// into a TCP RST so the peer sees "connection reset", the same signal a
// crashed replica produces.
func (p *Proxy) reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// Fallback for non-hijackable writers (http2, tests): an empty 502
		// at least fails the request.
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	conn.Close()
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if k == "Connection" || k == "Keep-Alive" || k == "Transfer-Encoding" {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// Fleet is a set of proxies plus the control server CI drives: POST /arm
// starts every schedule, POST /disarm stops them, GET /stats dumps
// per-proxy injection counts.
type Fleet struct {
	Proxies []*Proxy
}

// ControlHandler returns the /arm, /disarm, /stats mux.
func (f *Fleet) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/arm", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "use POST", http.StatusMethodNotAllowed)
			return
		}
		for _, p := range f.Proxies {
			p.Arm()
		}
		fmt.Fprintln(w, `{"armed":true}`)
	})
	mux.HandleFunc("/disarm", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "use POST", http.StatusMethodNotAllowed)
			return
		}
		for _, p := range f.Proxies {
			p.Disarm()
		}
		fmt.Fprintln(w, `{"armed":false}`)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		stats := make([]Stats, len(f.Proxies))
		for i, p := range f.Proxies {
			stats[i] = p.Stats()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(stats)
	})
	return mux
}
