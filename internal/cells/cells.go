// Package cells models the mobile network deployment side of the GenDT
// context: cell sites with location, transmit power, and sector orientation,
// plus deployment generators for the paper's measurement scenarios and a
// spatial index answering the "visible cells within d_s" query that drives
// GenDT's dynamic network context (paper §2.3.3, Figure 3).
package cells

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gendt/internal/geo"
)

// Cell is one sector of a cell site — the unit the paper treats as a
// potential serving cell. Its five context attributes per the paper are
// [lat, lon, p_max, direction, distance_t]; the first four live here and
// distance is computed against the device location at query time.
type Cell struct {
	ID        int       // globally unique identifier (plays the role of PCI/cell id)
	Site      geo.Point // true cell site location (drives propagation)
	PMaxDBm   float64   // maximum transmit power, dBm
	Azimuth   float64   // boresight direction of the sector, degrees clockwise from north
	BeamWidth float64   // sector width in degrees (< 180 per the paper's Figure 3 note)
	Height    float64   // antenna height above ground, metres

	// PeakGainDBi and FrontToBackDB parameterize the sector antenna
	// pattern. The zero values keep the classic LTE macro pattern (15 dBi
	// peak, 28 dB front-to-back limit); narrow-beam high-gain values model
	// 5G-NR beam-like sectors. See SectorGainDB.
	PeakGainDBi   float64
	FrontToBackDB float64

	// Reported is the crowdsourced estimate of the site location as a
	// CellMapper-style database would report it — the position models see
	// as context. The zero value means "same as Site".
	Reported geo.Point
	// ReportedPMaxDBm is the database's estimated transmit power (0 means
	// same as PMaxDBm).
	ReportedPMaxDBm float64
}

// ReportedSite returns the context-visible site estimate.
func (c *Cell) ReportedSite() geo.Point {
	if c.Reported == (geo.Point{}) {
		return c.Site
	}
	return c.Reported
}

// ReportedPower returns the context-visible transmit-power estimate.
func (c *Cell) ReportedPower() float64 {
	if c.ReportedPMaxDBm == 0 {
		return c.PMaxDBm
	}
	return c.ReportedPMaxDBm
}

// String implements fmt.Stringer.
func (c Cell) String() string {
	return fmt.Sprintf("cell %d @ %v az=%.0f p=%.1fdBm", c.ID, c.Site, c.Azimuth, c.PMaxDBm)
}

// Deployment is a set of cells over a region with a spatial index for
// visibility queries.
type Deployment struct {
	Cells []Cell

	proj     *geo.Projection
	cellSize float64          // grid cell edge, metres
	grid     map[[2]int][]int // grid coords -> indices into Cells
}

// NewDeployment indexes the given cells. indexCellSize is the spatial-hash
// bucket edge in metres; 1000 is a good default for LTE macro deployments.
func NewDeployment(cells []Cell, origin geo.Point, indexCellSize float64) *Deployment {
	if indexCellSize <= 0 {
		indexCellSize = 1000
	}
	d := &Deployment{
		Cells:    cells,
		proj:     geo.NewProjection(origin),
		cellSize: indexCellSize,
		grid:     make(map[[2]int][]int),
	}
	for i, c := range cells {
		k := d.key(c.Site)
		d.grid[k] = append(d.grid[k], i)
	}
	return d
}

func (d *Deployment) key(p geo.Point) [2]int {
	x, y := d.proj.ToXY(p)
	return [2]int{int(math.Floor(x / d.cellSize)), int(math.Floor(y / d.cellSize))}
}

// VisibleCell pairs a cell with its current distance from the device.
type VisibleCell struct {
	Cell     *Cell
	Distance float64 // metres from device to cell site
}

// Visible returns all cells within radius ds metres of loc, sorted by
// ascending distance. This is the paper's set C_cell of potential serving
// cells around a device location.
func (d *Deployment) Visible(loc geo.Point, ds float64) []VisibleCell {
	x, y := d.proj.ToXY(loc)
	r := int(math.Ceil(ds/d.cellSize)) + 1
	k0 := d.key(loc)
	var out []VisibleCell
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for _, idx := range d.grid[[2]int{k0[0] + dx, k0[1] + dy}] {
				c := &d.Cells[idx]
				cx, cy := d.proj.ToXY(c.Site)
				dist := math.Hypot(cx-x, cy-y)
				if dist <= ds {
					out = append(out, VisibleCell{Cell: c, Distance: dist})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Cell.ID < out[j].Cell.ID
	})
	return out
}

// ByID returns the cell with the given id, or nil.
func (d *Deployment) ByID(id int) *Cell {
	for i := range d.Cells {
		if d.Cells[i].ID == id {
			return &d.Cells[i]
		}
	}
	return nil
}

// DensityPerKm2 computes the cell density (cells per square kilometre)
// within radius metres of each trajectory sample, averaged along the
// trajectory — the quantity plotted in the paper's Figure 4.
func (d *Deployment) DensityPerKm2(tr geo.Trajectory, radius float64) float64 {
	if len(tr) == 0 {
		return 0
	}
	area := math.Pi * radius * radius / 1e6 // km^2
	total := 0.0
	for _, s := range tr {
		total += float64(len(d.Visible(s.Point, radius)))
	}
	return total / float64(len(tr)) / area
}

// DeploymentSpec parameterizes a synthetic deployment generator.
type DeploymentSpec struct {
	Origin      geo.Point
	ExtentKm    float64 // square region edge length, km
	SitesPerKm2 float64 // density of cell *sites* (each site hosts Sectors cells)
	Sectors     int     // sectors per site (typically 3)
	PMaxDBm     float64 // nominal sector max transmit power
	PMaxJitter  float64 // per-sector power jitter, dB
	Height      float64 // antenna height, m
	Jitter      float64 // site placement jitter as a fraction of grid pitch
	FirstID     int     // id of the first generated cell
	// ReportErrM is the standard deviation (metres) of the crowdsourced
	// position estimate each generated cell reports as context, and
	// ReportErrDB the standard deviation of its reported-power error.
	// Zero means the database is exact.
	ReportErrM  float64
	ReportErrDB float64

	// BeamWidth, PeakGainDBi, and FrontToBackDB override the sector
	// antenna pattern of every generated cell; zero keeps the defaults
	// (120 degrees, 15 dBi, 28 dB).
	BeamWidth     float64
	PeakGainDBi   float64
	FrontToBackDB float64
}

// Generate synthesizes a sectorized deployment: sites on a jittered grid,
// each with Sectors cells at evenly spaced azimuths. Densities follow the
// paper's Figure 4 observation that inner-city areas are much denser than
// highways.
func Generate(spec DeploymentSpec, rng *rand.Rand) []Cell {
	if spec.Sectors <= 0 {
		spec.Sectors = 3
	}
	if spec.PMaxDBm == 0 {
		spec.PMaxDBm = 43 // typical LTE macro sector
	}
	if spec.Height == 0 {
		spec.Height = 25
	}
	if spec.BeamWidth == 0 {
		spec.BeamWidth = 120
	}
	areaKm2 := spec.ExtentKm * spec.ExtentKm
	nSites := int(math.Round(spec.SitesPerKm2 * areaKm2))
	if nSites < 1 {
		nSites = 1
	}
	// Approximately square grid of sites.
	cols := int(math.Ceil(math.Sqrt(float64(nSites))))
	pitch := spec.ExtentKm * 1000 / float64(cols)
	proj := geo.NewProjection(spec.Origin)
	half := spec.ExtentKm * 500
	var out []Cell
	id := spec.FirstID
	placed := 0
	for gy := 0; gy < cols && placed < nSites; gy++ {
		for gx := 0; gx < cols && placed < nSites; gx++ {
			x := -half + (float64(gx)+0.5)*pitch + spec.Jitter*pitch*rng.NormFloat64()
			y := -half + (float64(gy)+0.5)*pitch + spec.Jitter*pitch*rng.NormFloat64()
			site := proj.FromXY(x, y)
			base := rng.Float64() * 360
			reported := site
			if spec.ReportErrM > 0 {
				reported = geo.Offset(site, rng.Float64()*360, math.Abs(spec.ReportErrM*rng.NormFloat64()))
			}
			for s := 0; s < spec.Sectors; s++ {
				pmax := spec.PMaxDBm + spec.PMaxJitter*rng.NormFloat64()
				c := Cell{
					ID:            id,
					Site:          site,
					PMaxDBm:       pmax,
					Azimuth:       math.Mod(base+float64(s)*360/float64(spec.Sectors), 360),
					BeamWidth:     spec.BeamWidth,
					Height:        spec.Height,
					Reported:      reported,
					PeakGainDBi:   spec.PeakGainDBi,
					FrontToBackDB: spec.FrontToBackDB,
				}
				if spec.ReportErrDB > 0 {
					c.ReportedPMaxDBm = pmax + spec.ReportErrDB*rng.NormFloat64()
				}
				out = append(out, c)
				id++
			}
			placed++
		}
	}
	return out
}

// GenerateCorridor places sites along a line (a highway corridor) with the
// given spacing in metres, starting at start and heading along bearing for
// lengthKm kilometres. Sites alternate sides of the road.
func GenerateCorridor(start geo.Point, bearing float64, lengthKm, spacingM float64, pMaxDBm float64, firstID int, rng *rand.Rand) []Cell {
	var out []Cell
	id := firstID
	n := int(lengthKm * 1000 / spacingM)
	side := 1.0
	for i := 0; i <= n; i++ {
		along := geo.Offset(start, bearing, float64(i)*spacingM)
		lateral := 300 + 200*rng.Float64()
		site := geo.Offset(along, bearing+90*side, lateral)
		// Two sectors pointing up and down the corridor.
		for s := 0; s < 2; s++ {
			az := bearing
			if s == 1 {
				az = bearing + 180
			}
			out = append(out, Cell{
				ID:        id,
				Site:      site,
				PMaxDBm:   pMaxDBm + rng.NormFloat64(),
				Azimuth:   math.Mod(az+360, 360),
				BeamWidth: 120,
				Height:    30,
			})
			id++
		}
		side = -side
	}
	return out
}

// SectorGainDB returns the antenna gain in dB of cell c toward a device at
// loc, using a standard 3GPP-style parabolic sector pattern with 20 dB
// front-to-back limit. Devices inside the sector's beam see near-peak gain;
// devices behind it see heavily attenuated signal, which is what makes
// serving cells churn along a trajectory (paper Figure 2).
func SectorGainDB(c *Cell, loc geo.Point) float64 {
	brg := geo.Bearing(c.Site, loc)
	diff := math.Mod(brg-c.Azimuth+540, 360) - 180 // [-180, 180)
	theta3db := c.BeamWidth / 2
	att := 12 * (diff / theta3db) * (diff / theta3db)
	maxAtt := c.FrontToBackDB
	if maxAtt == 0 {
		maxAtt = 28 // 3GPP-style front-to-back limit A_m
	}
	if att > maxAtt {
		att = maxAtt
	}
	peakGain := c.PeakGainDBi
	if peakGain == 0 {
		peakGain = 15 // dBi, classic LTE macro sector
	}
	return peakGain - att
}
