package cells

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gendt/internal/geo"
)

var origin = geo.Point{Lat: 51.5, Lon: 7.46} // Dortmund-ish, matching Dataset B

func testDeployment(t *testing.T, sitesPerKm2 float64) *Deployment {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	cs := Generate(DeploymentSpec{
		Origin: origin, ExtentKm: 10, SitesPerKm2: sitesPerKm2,
		Sectors: 3, Jitter: 0.2,
	}, rng)
	return NewDeployment(cs, origin, 1000)
}

func TestGenerateCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cs := Generate(DeploymentSpec{Origin: origin, ExtentKm: 5, SitesPerKm2: 2, Sectors: 3}, rng)
	wantSites := 50 // 2 sites/km2 * 25 km2
	if got := len(cs) / 3; got != wantSites {
		t.Errorf("generated %d sites, want %d", got, wantSites)
	}
	// IDs unique and sequential from 0.
	seen := map[int]bool{}
	for _, c := range cs {
		if seen[c.ID] {
			t.Fatalf("duplicate cell ID %d", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestGenerateDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cs := Generate(DeploymentSpec{Origin: origin, ExtentKm: 2, SitesPerKm2: 1}, rng)
	for _, c := range cs {
		if c.PMaxDBm < 30 || c.PMaxDBm > 50 {
			t.Errorf("default PMax = %v outside plausible macro range", c.PMaxDBm)
		}
		if c.Height <= 0 {
			t.Errorf("default height = %v", c.Height)
		}
	}
}

func TestVisibleSortedAndWithinRadius(t *testing.T) {
	d := testDeployment(t, 4)
	vis := d.Visible(origin, 2000)
	if len(vis) == 0 {
		t.Fatal("no visible cells at deployment origin")
	}
	for i, v := range vis {
		if v.Distance > 2000 {
			t.Errorf("cell %d at %v m exceeds radius", v.Cell.ID, v.Distance)
		}
		if i > 0 && vis[i-1].Distance > v.Distance {
			t.Errorf("visible cells not sorted at %d", i)
		}
	}
}

func TestVisibleMatchesBruteForce(t *testing.T) {
	d := testDeployment(t, 4)
	pr := geo.NewProjection(origin)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		loc := pr.FromXY((rng.Float64()-0.5)*8000, (rng.Float64()-0.5)*8000)
		ds := 500 + rng.Float64()*3000
		want := 0
		for _, c := range d.Cells {
			if pr.PlanarDistance(loc, c.Site) <= ds {
				want++
			}
		}
		if got := len(d.Visible(loc, ds)); got != want {
			t.Errorf("Visible(%v, %v) = %d cells, brute force = %d", loc, ds, got, want)
		}
	}
}

func TestDensityScalesWithSpec(t *testing.T) {
	dense := testDeployment(t, 8)
	sparse := testDeployment(t, 1)
	tr := geo.Trajectory{{Point: origin, T: 0}}
	dd := dense.DensityPerKm2(tr, 2000)
	sd := sparse.DensityPerKm2(tr, 2000)
	if dd <= sd {
		t.Errorf("dense deployment density %v not greater than sparse %v", dd, sd)
	}
}

func TestByID(t *testing.T) {
	d := testDeployment(t, 2)
	c := d.ByID(d.Cells[3].ID)
	if c == nil || c.ID != d.Cells[3].ID {
		t.Fatalf("ByID returned %v", c)
	}
	if d.ByID(-999) != nil {
		t.Error("ByID(-999) should be nil")
	}
}

func TestSectorGainPeakAtBoresight(t *testing.T) {
	c := &Cell{Site: origin, Azimuth: 0, BeamWidth: 120}
	ahead := geo.Offset(origin, 0, 1000)
	behind := geo.Offset(origin, 180, 1000)
	edge := geo.Offset(origin, 60, 1000)
	ga, gb, ge := SectorGainDB(c, ahead), SectorGainDB(c, behind), SectorGainDB(c, edge)
	if ga <= gb {
		t.Errorf("boresight gain %v not above back-lobe gain %v", ga, gb)
	}
	if math.Abs(ga-ge-12) > 1.0 {
		t.Errorf("3dB-ish edge: boresight %v, edge %v, want ~12 dB apart", ga, ge)
	}
	if ga-gb > 28.5 {
		t.Errorf("front-to-back ratio %v exceeds 28 dB cap", ga-gb)
	}
}

func TestSectorGainBounded(t *testing.T) {
	c := &Cell{Site: origin, Azimuth: 123, BeamWidth: 120}
	f := func(brg float64) bool {
		if math.IsNaN(brg) || math.IsInf(brg, 0) {
			return true
		}
		loc := geo.Offset(origin, math.Mod(math.Abs(brg), 360), 500)
		g := SectorGainDB(c, loc)
		return g <= 15 && g >= -13.001 // peak 15 dBi, floor 15-28 dB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateCorridor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cs := GenerateCorridor(origin, 90, 20, 2000, 46, 100, rng)
	if len(cs) < 20 {
		t.Fatalf("corridor produced only %d cells", len(cs))
	}
	// All sites should be within ~1km laterally of the corridor line and IDs start at 100.
	if cs[0].ID != 100 {
		t.Errorf("first corridor id = %d, want 100", cs[0].ID)
	}
	end := geo.Offset(origin, 90, 20000)
	for _, c := range cs {
		if geo.Distance(c.Site, origin) > 22000 && geo.Distance(c.Site, end) > 22000 {
			t.Errorf("corridor cell %d too far from corridor", c.ID)
		}
	}
}

func TestVisibleEmptyFarAway(t *testing.T) {
	d := testDeployment(t, 2)
	far := geo.Offset(origin, 0, 100000)
	if vis := d.Visible(far, 2000); len(vis) != 0 {
		t.Errorf("expected no visible cells 100 km away, got %d", len(vis))
	}
}

func TestReportedDefaultsToTrue(t *testing.T) {
	c := Cell{ID: 1, Site: origin, PMaxDBm: 43}
	if c.ReportedSite() != origin {
		t.Error("zero Reported should fall back to Site")
	}
	if c.ReportedPower() != 43 {
		t.Error("zero ReportedPMaxDBm should fall back to PMaxDBm")
	}
}

func TestReportErrProducesOffsetEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cs := Generate(DeploymentSpec{
		Origin: origin, ExtentKm: 4, SitesPerKm2: 2, Sectors: 3,
		ReportErrM: 150, ReportErrDB: 3,
	}, rng)
	moved, powerDiff := 0, 0
	for _, c := range cs {
		if d := geo.Distance(c.Site, c.ReportedSite()); d > 1 {
			moved++
			if d > 1000 {
				t.Errorf("reported position %v m off, implausibly far", d)
			}
		}
		if c.ReportedPower() != c.PMaxDBm {
			powerDiff++
		}
	}
	if moved == 0 {
		t.Error("ReportErrM had no effect")
	}
	if powerDiff == 0 {
		t.Error("ReportErrDB had no effect")
	}
}
