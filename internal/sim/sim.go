// Package sim glues geo, cells, env, and radio into a drive-test simulator:
// given a trajectory it produces the timestamped multi-KPI measurement
// series (with full context annotation) that substitutes for the paper's
// field datasets. Repeated runs over the same trajectory differ in
// shadowing realization, fading, and cell load — reproducing the
// stochasticity the paper documents in Figures 1–2.
package sim

import (
	"math/rand"

	"gendt/internal/cells"
	"gendt/internal/env"
	"gendt/internal/geo"
	"gendt/internal/radio"
)

// Measurement is one drive-test sample: everything a tool like Nemo Handy
// would record at one tick, plus the context GenDT conditions on.
type Measurement struct {
	T   float64   // seconds
	Loc geo.Point // device location

	// Radio KPIs of the serving cell.
	RSRP float64 // dBm
	RSRQ float64 // dB
	SINR float64 // dB
	CQI  float64 // 1..15
	RSSI float64 // dBm

	ServingCell int  // serving cell id
	Handover    bool // whether a handover completed at this sample

	// Context annotations.
	Visible []cells.VisibleCell // potential serving cells within d_s
	EnvCtx  []float64           // 26-attribute environment context
	// VisibleLoad is the per-visible-cell traffic load at this instant
	// (parallel to Visible). In the paper's open-loop design this is a
	// hidden factor; the closed-loop extension (§7.2) conditions on it.
	VisibleLoad []float64
}

// KPI returns the measurement's value for a radio.KPI* channel index.
func (m *Measurement) KPI(k int) float64 {
	switch k {
	case radio.KPIRSRP:
		return m.RSRP
	case radio.KPIRSRQ:
		return m.RSRQ
	case radio.KPISINR:
		return m.SINR
	case radio.KPICQI:
		return m.CQI
	case radio.KPIServingCell:
		return float64(m.ServingCell)
	default:
		return 0
	}
}

// Series extracts one KPI channel as a flat series from measurements.
func Series(ms []Measurement, kpi int) []float64 {
	out := make([]float64, len(ms))
	for i := range ms {
		out[i] = ms[i].KPI(kpi)
	}
	return out
}

// World bundles the static substrate a simulator runs against.
type World struct {
	Deployment *cells.Deployment
	Env        *env.Map
	Pathloss   *radio.PathlossModel

	// VisibleRange is d_s: candidates within this many metres of the device
	// are potential serving cells (paper: ~2 km city, ~4 km highway).
	VisibleRange float64
	// EnvRadius is the environment-context radius (paper: 500 m).
	EnvRadius float64
	// NoiseFloorDBm is thermal noise plus receiver noise figure.
	NoiseFloorDBm float64
	// StaticShadowSigmaDB parameterizes the repeatable, location-dependent
	// shadowing component (buildings/terrain), shared by all runs against
	// this world. ShadowSigmaDB / ShadowDecorrM parameterize the per-run
	// dynamic remainder.
	StaticShadowSigmaDB float64
	StaticShadowCorrM   float64
	WorldSeed           int64
	ShadowSigmaDB       float64
	ShadowDecorrM       float64
	// FadingSigmaDB is the per-sample fast-fading spread.
	FadingSigmaDB float64
	// LoadMean / LoadAlpha / LoadStd parameterize the hidden per-cell
	// traffic-load process (mean-reverting AR(1) in [0,1]) each drive test
	// runs against. DefaultWorld sets the paper-flavoured values; scenario
	// configs may override them to model busier or burstier networks.
	LoadMean  float64
	LoadAlpha float64
	LoadStd   float64
	// HysteresisDB / TimeToTrigger parameterize handover.
	HysteresisDB  float64
	TimeToTrigger int
	// L3Alpha is the 3GPP layer-3 filtering coefficient applied to per-cell
	// power before reporting and cell selection: filtered = α·instant +
	// (1-α)·previous. Real measurement tools report L3-filtered KPIs, which
	// makes every reported value explicitly history-dependent.
	L3Alpha float64
}

// DefaultWorld wires a world with paper-flavoured defaults over the given
// deployment and environment.
func DefaultWorld(dep *cells.Deployment, em *env.Map) *World {
	return &World{
		Deployment:          dep,
		Env:                 em,
		Pathloss:            radio.DefaultPathloss(),
		VisibleRange:        2500,
		EnvRadius:           500,
		NoiseFloorDBm:       -116,
		StaticShadowSigmaDB: 6,
		StaticShadowCorrM:   80,
		ShadowSigmaDB:       3,
		ShadowDecorrM:       60,
		FadingSigmaDB:       2.0,
		LoadMean:            0.45,
		LoadAlpha:           0.97,
		LoadStd:             0.25,
		HysteresisDB:        4,
		TimeToTrigger:       3,
		L3Alpha:             0.3,
	}
}

// DriveTest simulates one measurement run over the trajectory. The rng
// seeds this run's shadowing realization, fading, and load processes, so
// distinct rngs yield distinct (but statistically consistent) runs.
func (w *World) DriveTest(tr geo.Trajectory, rng *rand.Rand) []Measurement {
	shadow := radio.NewShadowField(w.ShadowSigmaDB, w.ShadowDecorrM, rng)
	static := radio.NewStaticShadow(w.StaticShadowSigmaDB, w.StaticShadowCorrM, w.WorldSeed, w.Env.Origin())
	loadMean, loadAlpha, loadStd := w.LoadMean, w.LoadAlpha, w.LoadStd
	if loadAlpha == 0 { // zero-value World: fall back to the classic process
		loadMean, loadAlpha, loadStd = 0.45, 0.97, 0.25
	}
	load := radio.NewLoadProcess(loadMean, loadAlpha, loadStd, rng)
	sel := radio.NewServingSelector(w.HysteresisDB, w.TimeToTrigger)
	alpha := w.L3Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 1 // no filtering
	}
	l3 := make(map[int]float64) // per-cell L3-filtered power

	out := make([]Measurement, 0, len(tr))
	for _, s := range tr {
		clutter := w.Env.LandUseAt(s.Point)
		vis := w.Deployment.Visible(s.Point, w.VisibleRange)
		links := make([]radio.Link, 0, len(vis))
		for _, v := range vis {
			sh := static.Sample(v.Cell.ID, s.Point) + shadow.Sample(v.Cell.ID, s.Point)
			p := radio.RxPowerDBm(v.Cell, s.Point, v.Distance, w.Pathloss, clutter,
				sh, radio.FastFading(w.FadingSigmaDB, rng))
			if prev, ok := l3[v.Cell.ID]; ok {
				p = alpha*p + (1-alpha)*prev
			}
			l3[v.Cell.ID] = p
			links = append(links, radio.Link{CellID: v.Cell.ID, RSRPdBm: p, Load: load.Step(v.Cell.ID)})
		}
		servingID, ho := sel.Step(links)
		loads := make([]float64, len(links))
		for i, l := range links {
			loads[i] = l.Load
		}
		m := Measurement{
			T: s.T, Loc: s.Point,
			ServingCell: servingID, Handover: ho,
			Visible:     vis,
			EnvCtx:      w.Env.ContextAt(s.Point, w.EnvRadius),
			VisibleLoad: loads,
		}
		if servingID >= 0 {
			var serving radio.Link
			others := make([]radio.Link, 0, len(links))
			for _, l := range links {
				if l.CellID == servingID {
					serving = l
				} else {
					others = append(others, l)
				}
			}
			m.RSRP = radio.ClampKPI(radio.KPIRSRP, serving.RSRPdBm)
			m.RSSI, m.RSRQ, m.SINR, m.CQI = radio.DeriveKPIs(serving, others, w.NoiseFloorDBm)
		} else {
			// Out of coverage: report floor values.
			m.RSRP, m.RSRQ, m.SINR, m.CQI = radio.RSRPMin, radio.RSRQMin, radio.SINRMin, radio.CQIMin
		}
		out = append(out, m)
	}
	return out
}

// RepeatedRuns performs n independent measurement runs over the same
// trajectory (the setup behind the paper's Figures 1–2), using sequential
// seeds derived from base.
func (w *World) RepeatedRuns(tr geo.Trajectory, n int, base int64) [][]Measurement {
	out := make([][]Measurement, n)
	for i := 0; i < n; i++ {
		out[i] = w.DriveTest(tr, rand.New(rand.NewSource(base+int64(i))))
	}
	return out
}

// Annotate builds context-only measurements for a trajectory: visible
// cells and environment context per step, with no radio KPIs (they are
// what a GenDT model will generate). This is the operational entry point
// of the GenDT workflow (paper Figure 5): an operator supplies a new
// trajectory, annotates it with the context they already hold, and feeds
// it to a trained model — no field measurement involved.
func (w *World) Annotate(tr geo.Trajectory) []Measurement {
	out := make([]Measurement, 0, len(tr))
	for _, s := range tr {
		out = append(out, Measurement{
			T: s.T, Loc: s.Point,
			ServingCell: -1,
			Visible:     w.Deployment.Visible(s.Point, w.VisibleRange),
			EnvCtx:      w.Env.ContextAt(s.Point, w.EnvRadius),
		})
	}
	return out
}
