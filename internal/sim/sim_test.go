package sim

import (
	"math"
	"math/rand"
	"testing"

	"gendt/internal/cells"
	"gendt/internal/env"
	"gendt/internal/geo"
	"gendt/internal/radio"
)

var origin = geo.Point{Lat: 51.5, Lon: 7.46}

func testWorld(t testing.TB) *World {
	rng := rand.New(rand.NewSource(9))
	cs := cells.Generate(cells.DeploymentSpec{
		Origin: origin, ExtentKm: 10, SitesPerKm2: 3, Sectors: 3, Jitter: 0.2,
	}, rng)
	dep := cells.NewDeployment(cs, origin, 1000)
	em := env.NewMap(env.MapSpec{Origin: origin, ExtentKm: 12, CoreKm: 2, PoIPerKm2: 50, Seed: 3})
	return DefaultWorld(dep, em)
}

func cityRoute(duration float64, seed int64) geo.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	return geo.BuildRoute(geo.RouteSpec{
		Start: origin, Bearing: 30, Duration: duration, Interval: 1,
		Profile: geo.CityDriveProfile, TurnEvery: 60, GridSnap: true,
	}, rng)
}

func TestDriveTestProducesOneMeasurementPerSample(t *testing.T) {
	w := testWorld(t)
	tr := cityRoute(120, 1)
	ms := w.DriveTest(tr, rand.New(rand.NewSource(10)))
	if len(ms) != len(tr) {
		t.Fatalf("got %d measurements for %d samples", len(ms), len(tr))
	}
}

func TestDriveTestKPIsInRange(t *testing.T) {
	w := testWorld(t)
	ms := w.DriveTest(cityRoute(300, 2), rand.New(rand.NewSource(11)))
	for i, m := range ms {
		if m.RSRP < radio.RSRPMin || m.RSRP > radio.RSRPMax {
			t.Fatalf("sample %d RSRP %v out of range", i, m.RSRP)
		}
		if m.RSRQ < radio.RSRQMin || m.RSRQ > radio.RSRQMax {
			t.Fatalf("sample %d RSRQ %v out of range", i, m.RSRQ)
		}
		if m.SINR < radio.SINRMin || m.SINR > radio.SINRMax {
			t.Fatalf("sample %d SINR %v out of range", i, m.SINR)
		}
		if m.CQI < 1 || m.CQI > 15 {
			t.Fatalf("sample %d CQI %v out of range", i, m.CQI)
		}
		if len(m.EnvCtx) != env.NumAttributes {
			t.Fatalf("sample %d env context has %d attrs", i, len(m.EnvCtx))
		}
	}
}

func TestDriveTestPlausibleRSRPStats(t *testing.T) {
	w := testWorld(t)
	ms := w.DriveTest(cityRoute(900, 3), rand.New(rand.NewSource(12)))
	series := Series(ms, radio.KPIRSRP)
	mean, std := meanStd(series)
	// Paper Tables 1-2 report means around -84..-88 dBm, std ~7-11 dB.
	if mean < -105 || mean > -65 {
		t.Errorf("RSRP mean = %v dBm, implausible for urban drive", mean)
	}
	if std < 3 || std > 16 {
		t.Errorf("RSRP std = %v dB, implausible", std)
	}
}

func TestDriveTestServingCellChanges(t *testing.T) {
	w := testWorld(t)
	ms := w.DriveTest(cityRoute(900, 4), rand.New(rand.NewSource(13)))
	changes := 0
	for i := 1; i < len(ms); i++ {
		if ms[i].ServingCell != ms[i-1].ServingCell {
			changes++
		}
	}
	if changes == 0 {
		t.Error("no serving-cell changes over a 15-minute city drive")
	}
	// Dwell time should be tens of seconds as in paper Tables 1-2.
	dwell := float64(len(ms)) / float64(changes+1)
	if dwell < 5 || dwell > 600 {
		t.Errorf("mean serving-cell dwell = %v s, implausible", dwell)
	}
}

func TestRepeatedRunsDiffer(t *testing.T) {
	w := testWorld(t)
	tr := cityRoute(120, 5)
	runs := w.RepeatedRuns(tr, 2, 100)
	a := Series(runs[0], radio.KPIRSRP)
	b := Series(runs[1], radio.KPIRSRP)
	diff := 0.0
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	diff /= float64(len(a))
	if diff < 0.5 {
		t.Errorf("repeated runs nearly identical (mean |diff| = %v dB); want stochasticity", diff)
	}
	// But they should be correlated (same trajectory, same deployment):
	// means within a few dB.
	ma, _ := meanStd(a)
	mb, _ := meanStd(b)
	if math.Abs(ma-mb) > 6 {
		t.Errorf("repeated run means differ by %v dB, too much", math.Abs(ma-mb))
	}
}

func TestDriveTestDeterministicForSeed(t *testing.T) {
	w := testWorld(t)
	tr := cityRoute(60, 6)
	a := w.DriveTest(tr, rand.New(rand.NewSource(42)))
	b := w.DriveTest(tr, rand.New(rand.NewSource(42)))
	for i := range a {
		if a[i].RSRP != b[i].RSRP || a[i].ServingCell != b[i].ServingCell {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
}

func TestOutOfCoverageFloors(t *testing.T) {
	w := testWorld(t)
	far := geo.Offset(origin, 0, 200000)
	tr := geo.Trajectory{{Point: far, T: 0}, {Point: far, T: 1}}
	ms := w.DriveTest(tr, rand.New(rand.NewSource(1)))
	if ms[0].ServingCell != -1 {
		t.Fatalf("expected detached device, got serving cell %d", ms[0].ServingCell)
	}
	if ms[0].RSRP != radio.RSRPMin {
		t.Errorf("out-of-coverage RSRP = %v, want floor", ms[0].RSRP)
	}
}

func TestSeriesExtraction(t *testing.T) {
	ms := []Measurement{
		{RSRP: -80, RSRQ: -10, SINR: 5, CQI: 7, ServingCell: 3},
		{RSRP: -90, RSRQ: -12, SINR: 2, CQI: 5, ServingCell: 4},
	}
	if s := Series(ms, radio.KPIRSRP); s[0] != -80 || s[1] != -90 {
		t.Errorf("RSRP series = %v", s)
	}
	if s := Series(ms, radio.KPIServingCell); s[0] != 3 || s[1] != 4 {
		t.Errorf("serving series = %v", s)
	}
	if v := ms[0].KPI(99); v != 0 {
		t.Errorf("unknown KPI index should return 0, got %v", v)
	}
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

func TestAnnotateContextOnly(t *testing.T) {
	w := testWorld(t)
	tr := cityRoute(60, 9)
	ms := w.Annotate(tr)
	if len(ms) != len(tr) {
		t.Fatalf("annotated %d of %d samples", len(ms), len(tr))
	}
	for i, m := range ms {
		if m.ServingCell != -1 {
			t.Fatalf("sample %d has a serving cell; annotation must be KPI-free", i)
		}
		if m.RSRP != 0 || m.RSRQ != 0 {
			t.Fatalf("sample %d carries KPI values", i)
		}
		if len(m.EnvCtx) == 0 {
			t.Fatalf("sample %d missing environment context", i)
		}
	}
	// Context must match what a drive test at the same points would see.
	real := w.DriveTest(tr, rand.New(rand.NewSource(5)))
	for i := range ms {
		if len(ms[i].Visible) != len(real[i].Visible) {
			t.Fatalf("sample %d visible-set size differs from drive test", i)
		}
	}
}
