package core

import (
	"errors"
	"fmt"
	"sync"

	"gendt/internal/nn"
)

// window is one training batch: a [lo, lo+L) slice of a sequence.
type window struct {
	seq *Sequence
	lo  int
}

// windows enumerates training windows of length L with stride Δt over all
// sequences (the paper's overlapping batches, Figure 8a).
func (m *Model) windows(seqs []*Sequence) []window {
	var out []window
	L, step := m.Cfg.BatchLen, m.Cfg.StepLen
	for _, s := range seqs {
		for lo := 0; lo+L <= s.Len(); lo += step {
			out = append(out, window{seq: s, lo: lo})
		}
	}
	return out
}

// forwardCache holds everything one generator forward pass over a window
// produces, for use by the backward pass. During training it is the
// model's reusable scratch (one window in flight at a time); generation
// builds a fresh one per batch because the outputs escape to the caller.
type forwardCache struct {
	L, nch  int
	nCells  []int          // visible-cell count per step
	nodeSeq []nn.StepCache // per-slot detached node-LSTM caches
	hAvg    [][]float64    // [L][H] mean node embedding (discriminator context)
	base    [][]float64    // [L][nch] aggregation output
	resOuts []*ResOut      // nil when ResGen disabled
	out     [][]float64    // [L][nch] final generated (normalized)
}

// rows re-slices a [rows][width] matrix over a shared arena, reusing the
// previous backing storage when large enough. The arena is zeroed.
func rows(hdr [][]float64, arena *[]float64, n, width int) [][]float64 {
	need := n * width
	if cap(*arena) < need {
		*arena = make([]float64, need)
	}
	a := (*arena)[:need]
	for i := range a {
		a[i] = 0
	}
	*arena = a
	if cap(hdr) < n {
		hdr = make([][]float64, n)
	}
	hdr = hdr[:n]
	for i := 0; i < n; i++ {
		hdr[i] = a[i*width : (i+1)*width]
	}
	return hdr
}

// hdrs resizes a row-header slice without touching row contents.
func hdrs(hdr [][]float64, n int) [][]float64 {
	if cap(hdr) < n {
		return make([][]float64, n)
	}
	return hdr[:n]
}

// forward runs the generator over L steps of seq starting at lo, into the
// model's scratch cache. teacher gives the series used for ResGen lags
// (the real series during training; the generated history during
// generation). The per-step mean node embedding is accumulated in slot
// order, exactly matching the summation order of the original
// list-then-average implementation, so results are bit-identical.
func (m *Model) forward(seq *Sequence, lo, L int, teacher [][]float64) *forwardCache {
	cfg := m.Cfg
	nch := len(cfg.Channels)
	fc := &m.fc
	fc.L, fc.nch = L, nch

	// Per-cell GNN-node passes. Each visible cell at this window gets its
	// own LSTM rollout over the L steps; cells are identified positionally
	// per step (the visible set varies over time, so we roll the network
	// over each step's cell list and average — a mean-aggregation GNN).
	//
	// Implementation: we process "cell slots". Slot i at step t carries the
	// i-th nearest visible cell. Slot sequences run the shared node LSTM
	// across the window, which lets the LSTM track how a given nearby cell
	// evolves (nearest cells keep their slot while dominant).
	maxSlots := 0
	for t := 0; t < L; t++ {
		if n := len(seq.Cells[lo+t]); n > maxSlots {
			maxSlots = n
		}
	}
	if maxSlots == 0 {
		maxSlots = 1
	}
	if cap(fc.nCells) < L {
		fc.nCells = make([]int, L)
	}
	fc.nCells = fc.nCells[:L]
	for t := range fc.nCells {
		fc.nCells[t] = 0
	}
	fc.nodeSeq = fc.nodeSeq[:0]
	fc.hAvg = rows(fc.hAvg, &m.hAvgArena, L, cfg.Hidden)
	if m.zeroCell == nil {
		m.zeroCell = make([]float64, cfg.CellDim())
	}
	for slot := 0; slot < maxSlots; slot++ {
		m.node.ResetState()
		for t := 0; t < L; t++ {
			cellsAtT := seq.Cells[lo+t]
			attrs := m.zeroCell // absent cell: zero attrs
			if slot < len(cellsAtT) {
				attrs = cellsAtT[slot]
			}
			in := append(m.inBuf[:0], attrs...)
			for z := 0; z < cfg.NoiseDim; z++ {
				// z0 denoising noise (paper §4.3.1).
				in = append(in, 0.1*m.rng.NormFloat64())
			}
			m.inBuf = in
			h := m.node.Step(in)
			if slot < len(cellsAtT) || (len(cellsAtT) == 0 && slot == 0) {
				sum := fc.hAvg[t]
				for j, v := range h {
					sum[j] += v
				}
				fc.nCells[t]++
			}
		}
		fc.nodeSeq = append(fc.nodeSeq, m.node.TakeSteps())
	}

	// Aggregation: mean of slot embeddings per step -> aggregation LSTM ->
	// linear head, giving the context-driven base series.
	fc.base = hdrs(fc.base, L)
	m.agg.ResetState()
	for t := 0; t < L; t++ {
		avg := fc.hAvg[t]
		if n := fc.nCells[t]; n > 0 {
			for j := range avg {
				avg[j] /= float64(n)
			}
		}
		ha := m.agg.Step(avg)
		fc.base[t] = m.aggOut.Forward(ha)
	}

	// ResGen residual, autoregressive over the teacher series. The lags
	// are perturbed (noisy teacher forcing) so the learned autoregression
	// tolerates the generated history it will see at generation time.
	fc.out = rows(fc.out, &m.outArena, L, nch)
	if m.res != nil {
		fc.resOuts = fc.resOuts[:0]
		if cap(fc.resOuts) < L {
			fc.resOuts = make([]*ResOut, 0, L)
		}
		if len(m.lagBuf) != cfg.Lags*nch {
			m.lagBuf = make([]float64, cfg.Lags*nch)
		}
		for t := 0; t < L; t++ {
			lags := BuildLagsInto(m.lagBuf, teacher, lo+t, cfg.Lags, nch)
			if cfg.LagNoise > 0 {
				for i := range lags {
					lags[i] += cfg.LagNoise * m.rng.NormFloat64()
				}
			}
			ro := m.res.Forward(seq.Env[lo+t], lags)
			fc.resOuts = append(fc.resOuts, ro)
			out := fc.out[t]
			for c := 0; c < nch; c++ {
				out[c] = fc.base[t][c] + ro.Sample[c]
			}
		}
	} else {
		for t := 0; t < L; t++ {
			copy(fc.out[t], fc.base[t])
		}
	}
	return fc
}

// backward pushes dOut (gradient on fc.out, [L][nch]) through the
// generator, accumulating parameter gradients.
func (m *Model) backward(fc *forwardCache, dOut [][]float64) {
	cfg := m.Cfg
	// Residual path (reverse order of Forward calls for cache discipline).
	if m.res != nil {
		for t := fc.L - 1; t >= 0; t-- {
			m.res.Backward(fc.resOuts[t], dOut[t])
		}
		fc.resOuts = fc.resOuts[:0]
	}
	// Base path: linear head -> aggregation LSTM -> node LSTMs.
	dHa := hdrs(m.dHaRows, fc.L)
	m.dHaRows = dHa
	for t := fc.L - 1; t >= 0; t-- {
		dHa[t] = m.aggOut.Backward(dOut[t])
	}
	dAvg := m.agg.BackwardSeq(dHa)
	// Distribute the mean-aggregation gradient to each slot. The gradient
	// rows are recomputed per slot into shared scratch (BackwardSteps only
	// reads them).
	m.dNodeH = rows(m.dNodeH, &m.dNodeAren, fc.L, cfg.Hidden)
	for slot := len(fc.nodeSeq) - 1; slot >= 0; slot-- {
		for t := 0; t < fc.L; t++ {
			g := m.dNodeH[t]
			if slot < fc.nCells[t] && fc.nCells[t] > 0 {
				inv := 1 / float64(fc.nCells[t])
				for j := range g {
					g[j] = dAvg[t][j] * inv
				}
			} else {
				for j := range g {
					g[j] = 0
				}
			}
		}
		m.node.BackwardSteps(fc.nodeSeq[slot], m.dNodeH)
	}
	fc.nodeSeq = fc.nodeSeq[:0]
}

// discriminate runs the discriminator over a window, returning the logit.
// x is the (real or generated) normalized KPI series; hAvg the context
// embedding per step (detached).
func (m *Model) discriminate(x, hAvg [][]float64) float64 {
	m.disc.ResetState()
	var last []float64
	for t := range x {
		in := append(m.inBuf[:0], x[t]...)
		in = append(in, hAvg[t]...)
		m.inBuf = in
		last = m.disc.Step(in)
	}
	return m.discOut.Forward(last)[0]
}

// discBackward backpropagates dLogit through the discriminator's cached
// pass, returning the gradient on the x-portion of each step input. The
// returned rows alias pooled discriminator buffers: they stay valid until
// the next discriminate/discBackward call.
func (m *Model) discBackward(dLogit float64, L, nch int) [][]float64 {
	if m.dLogit == nil {
		m.dLogit = make([]float64, 1)
		m.zeroH = make([]float64, m.Cfg.Hidden)
	}
	m.dLogit[0] = dLogit
	dLast := m.discOut.Backward(m.dLogit)
	dH := hdrs(m.dHdisc, L)
	m.dHdisc = dH
	for t := 0; t < L-1; t++ {
		dH[t] = m.zeroH // BackwardSeq only reads the rows
	}
	dH[L-1] = dLast
	dIn := m.disc.BackwardSeq(dH)
	dx := hdrs(m.dxRows, L)
	m.dxRows = dx
	for t := 0; t < L; t++ {
		dx[t] = dIn[t][:nch]
	}
	return dx
}

// TrainResult summarizes a training run.
type TrainResult struct {
	Windows    int
	FinalMSE   float64
	FinalDLoss float64
}

// EpochEvent describes one completed training epoch to an AfterEpoch hook.
type EpochEvent struct {
	Epoch  int     // completed epochs so far (1-based)
	Epochs int     // total configured epochs
	MSE    float64 // epoch mean window MSE
	DLoss  float64 // epoch mean discriminator loss

	// State captures a full resumable snapshot of training at this epoch
	// boundary (weights, optimizer moments and counters, every RNG stream
	// position). Building it deep-copies the model, so call it only when
	// the snapshot will be persisted. Valid only for the duration of the
	// hook call.
	State func() *TrainState
}

// ErrStopTraining can be returned by an AfterEpoch hook to end training
// cleanly after the current epoch; TrainWithOptions then returns the
// results so far with a nil error. Any other hook error aborts training
// and is returned as-is.
var ErrStopTraining = errors.New("core: stop training")

// TrainOpts configures a resumable training run.
type TrainOpts struct {
	// Logf observes progress (may be nil).
	Logf func(format string, args ...any)
	// Resume restarts training from a checkpoint taken by an AfterEpoch
	// hook's State(). The model must have the checkpoint's architecture
	// (same config), and seqs must be the same training set; the continued
	// run is then bit-identical to one that never stopped, for both serial
	// and data-parallel training.
	Resume *TrainState
	// AfterEpoch runs at each epoch boundary (after the epoch's optimizer
	// steps). Checkpointing hooks call ev.State() and persist it.
	AfterEpoch func(ev EpochEvent) error
}

// Train fits the model on the prepared sequences for Cfg.Epochs passes.
// Progress can be observed via the optional logf (may be nil).
//
// With Cfg.Workers <= 1 this is the original serial per-window SGD loop,
// bit-for-bit. With Workers = N, each shuffled epoch is processed in
// mini-batches of N windows: N worker replicas (deep clones with
// deterministically derived RNG seeds) run forward/backward concurrently,
// their gradients are averaged into the primary model in worker order, one
// optimizer step applies the update, and the new weights are broadcast
// back to the replicas. The result is deterministic for a fixed Seed and
// N regardless of scheduling; see DESIGN.md, "Parallel training engine".
func (m *Model) Train(seqs []*Sequence, logf func(format string, args ...any)) TrainResult {
	res, _ := m.TrainWithOptions(seqs, TrainOpts{Logf: logf})
	return res
}

// TrainWithOptions is Train with checkpoint hooks and resume; see
// TrainOpts. The error is non-nil only when a resume state is incompatible
// or an AfterEpoch hook fails with something other than ErrStopTraining.
func (m *Model) TrainWithOptions(seqs []*Sequence, opts TrainOpts) (TrainResult, error) {
	if opts.Resume != nil {
		if err := m.restoreTrainState(opts.Resume); err != nil {
			return TrainResult{}, err
		}
	}
	if m.Cfg.Workers > 1 {
		return m.trainParallel(seqs, opts)
	}
	return m.trainSerial(seqs, opts)
}

func (m *Model) trainSerial(seqs []*Sequence, opts TrainOpts) (TrainResult, error) {
	cfg := m.Cfg
	nch := len(cfg.Channels)
	wins := m.windows(seqs)
	if len(wins) == 0 {
		return TrainResult{}, nil
	}
	start := 0
	if opts.Resume != nil {
		if n := len(opts.Resume.WorkerRNGs); n > 0 {
			return TrainResult{}, fmt.Errorf("core: resume: checkpoint was taken with %d workers; set Workers accordingly", n)
		}
		start = opts.Resume.Epoch
	}
	m.SetNoise(true)
	if m.res != nil {
		m.res.Dropout.Active = true
	}
	var res TrainResult
	res.Windows = len(wins)
	if opts.Resume != nil {
		res.FinalMSE, res.FinalDLoss = opts.Resume.FinalMSE, opts.Resume.FinalDLoss
	}
	order := make([]int, len(wins))
	for i := range order {
		order[i] = i
	}
	if opts.Resume != nil {
		if err := restoreWindowOrder(order, opts.Resume); err != nil {
			return res, err
		}
	}
	for epoch := start; epoch < cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var mseSum, dSum float64
		for _, wi := range order {
			w := wins[wi]
			L := cfg.BatchLen
			real := w.seq.KPIs
			fc := m.forward(w.seq, w.lo, L, real)

			// --- Discriminator update (skipped under NoGANLoss). ---
			if !cfg.NoGANLoss {
				logitReal := m.discriminate(realWindow(real, w.lo, L), fc.hAvg)
				lossR, gR := nn.BCEWithLogitsLoss(logitReal, 1)
				m.discBackward(gR, L, nch)
				logitFake := m.discriminate(fc.out, fc.hAvg)
				lossF, gF := nn.BCEWithLogitsLoss(logitFake, 0)
				m.discBackward(gF, L, nch)
				nn.ClipGrads(m.discParams(), cfg.ClipNorm)
				m.discOpt.Step(m.discParams())
				dSum += lossR + lossF
			}

			// --- Generator update: L = L_M + λ L_JS. ---
			dOut := make([][]float64, L)
			mse := 0.0
			for t := 0; t < L; t++ {
				lossT, gT := nn.MSELoss(fc.out[t], real[w.lo+t])
				mse += lossT
				// Scale per-step MSE gradient by 1/L for a window mean.
				for c := range gT {
					gT[c] /= float64(L)
				}
				dOut[t] = gT
			}
			mse /= float64(L)
			mseSum += mse
			if !cfg.NoGANLoss {
				// Non-saturating generator loss: maximize log R(x').
				logitFake := m.discriminate(fc.out, fc.hAvg)
				_, gAdv := nn.BCEWithLogitsLoss(logitFake, 1)
				dxAdv := m.discBackward(gAdv, L, nch)
				// The adversarial pass accumulated discriminator grads we
				// must not apply.
				for _, p := range m.discParams() {
					p.ZeroGrad()
				}
				for t := 0; t < L; t++ {
					for c := 0; c < nch; c++ {
						dOut[t][c] += cfg.Lambda * dxAdv[t][c] / float64(L)
					}
				}
			}
			m.backward(fc, dOut)
			nn.ClipGrads(m.genParams(), cfg.ClipNorm)
			m.genOpt.Step(m.genParams())
		}
		res.FinalMSE = mseSum / float64(len(wins))
		res.FinalDLoss = dSum / float64(len(wins))
		if opts.Logf != nil {
			opts.Logf("epoch %d/%d: mse=%.5f dloss=%.4f", epoch+1, cfg.Epochs, res.FinalMSE, res.FinalDLoss)
		}
		if err := m.fireAfterEpoch(opts, epoch+1, res, nil, order); err != nil {
			if errors.Is(err, ErrStopTraining) {
				return res, nil
			}
			return res, err
		}
	}
	return res, nil
}

// fireAfterEpoch invokes the AfterEpoch hook (when set) with a lazy state
// capture over the primary model, the worker replicas, and the current
// window order.
func (m *Model) fireAfterEpoch(opts TrainOpts, epoch int, res TrainResult, replicas []*Model, order []int) error {
	if opts.AfterEpoch == nil {
		return nil
	}
	return opts.AfterEpoch(EpochEvent{
		Epoch:  epoch,
		Epochs: m.Cfg.Epochs,
		MSE:    res.FinalMSE,
		DLoss:  res.FinalDLoss,
		State: func() *TrainState {
			return m.captureTrainState(epoch, res.FinalMSE, res.FinalDLoss, replicas, order)
		},
	})
}

// windowGrads runs one window's forward/backward passes on a worker
// replica, leaving generator gradients accumulated (unclipped) in the
// replica's params. Discriminator gradients are flushed into discAcc and
// zeroed in place, because the generator's adversarial pass must zero the
// live discriminator grads to discard them. Returns the window's mean MSE
// and discriminator loss.
func (m *Model) windowGrads(w window, discAcc [][]float64) (mse, dloss float64) {
	cfg := m.Cfg
	nch := len(cfg.Channels)
	L := cfg.BatchLen
	real := w.seq.KPIs
	fc := m.forward(w.seq, w.lo, L, real)

	if !cfg.NoGANLoss {
		logitReal := m.discriminate(realWindow(real, w.lo, L), fc.hAvg)
		lossR, gR := nn.BCEWithLogitsLoss(logitReal, 1)
		m.discBackward(gR, L, nch)
		logitFake := m.discriminate(fc.out, fc.hAvg)
		lossF, gF := nn.BCEWithLogitsLoss(logitFake, 0)
		m.discBackward(gF, L, nch)
		for pi, p := range m.discParams() {
			acc := discAcc[pi]
			for j, gv := range p.G {
				acc[j] += gv
			}
			p.ZeroGrad()
		}
		dloss = lossR + lossF
	}

	dOut := make([][]float64, L)
	for t := 0; t < L; t++ {
		lossT, gT := nn.MSELoss(fc.out[t], real[w.lo+t])
		mse += lossT
		for c := range gT {
			gT[c] /= float64(L)
		}
		dOut[t] = gT
	}
	mse /= float64(L)
	if !cfg.NoGANLoss {
		logitFake := m.discriminate(fc.out, fc.hAvg)
		_, gAdv := nn.BCEWithLogitsLoss(logitFake, 1)
		dxAdv := m.discBackward(gAdv, L, nch)
		for _, p := range m.discParams() {
			p.ZeroGrad()
		}
		for t := 0; t < L; t++ {
			for c := 0; c < nch; c++ {
				dOut[t][c] += cfg.Lambda * dxAdv[t][c] / float64(L)
			}
		}
	}
	m.backward(fc, dOut)
	return mse, dloss
}

// trainParallel is the data-parallel training engine: worker replicas,
// deterministic gradient reduction, a single optimizer step per mini-batch
// of W windows, and weight re-broadcast.
//
// Semantically this is a batch-size change, not a model change: the
// replicas compute exactly the per-window gradients the serial loop would,
// and averaging W of them before one Adam step is gradient accumulation
// over a mini-batch of W. Gradient clipping consequently applies once to
// the averaged mini-batch gradient rather than per window.
func (m *Model) trainParallel(seqs []*Sequence, opts TrainOpts) (TrainResult, error) {
	cfg := m.Cfg
	wins := m.windows(seqs)
	if len(wins) == 0 {
		return TrainResult{}, nil
	}
	W := cfg.Workers
	if W > len(wins) {
		W = len(wins)
	}
	m.SetNoise(true)
	if m.res != nil {
		m.res.Dropout.Active = true
	}
	genP := m.genParams()
	discP := m.discParams()

	// Worker replicas with deterministically derived, well-separated seeds.
	replicas := make([]*Model, W)
	repGen := make([][]*nn.Param, W)
	repDisc := make([][]*nn.Param, W)
	discAcc := make([][][]float64, W)
	for w := 0; w < W; w++ {
		rep := m.Clone(workerSeed(cfg.Seed, w))
		rep.SetNoise(true)
		if rep.res != nil {
			rep.res.Dropout.Active = true
		}
		replicas[w] = rep
		repGen[w] = rep.genParams()
		repDisc[w] = rep.discParams()
		discAcc[w] = make([][]float64, len(discP))
		for pi, p := range discP {
			discAcc[w][pi] = make([]float64, len(p.G))
		}
	}

	// Resuming mid-run: the primary state (weights, moments, RNG) was
	// restored by TrainWithOptions before the replicas were cloned above,
	// so the replicas start from the checkpointed weights; their RNG
	// streams are repositioned here.
	start := 0
	if opts.Resume != nil {
		if got := len(opts.Resume.WorkerRNGs); got != W {
			return TrainResult{}, fmt.Errorf("core: resume: checkpoint has %d worker RNG streams, this run has %d workers", got, W)
		}
		for w, st := range opts.Resume.WorkerRNGs {
			replicas[w].rngSrc.restore(st)
		}
		start = opts.Resume.Epoch
	}

	var res TrainResult
	res.Windows = len(wins)
	if opts.Resume != nil {
		res.FinalMSE, res.FinalDLoss = opts.Resume.FinalMSE, opts.Resume.FinalDLoss
	}
	order := make([]int, len(wins))
	for i := range order {
		order[i] = i
	}
	if opts.Resume != nil {
		if err := restoreWindowOrder(order, opts.Resume); err != nil {
			return res, err
		}
	}
	mses := make([]float64, W)
	dlosses := make([]float64, W)
	for epoch := start; epoch < cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var mseSum, dSum float64
		for g0 := 0; g0 < len(order); g0 += W {
			gN := len(order) - g0
			if gN > W {
				gN = W
			}
			var wg sync.WaitGroup
			for w := 0; w < gN; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					mses[w], dlosses[w] = replicas[w].windowGrads(wins[order[g0+w]], discAcc[w])
				}(w)
			}
			wg.Wait()

			// Deterministic reduction in worker order: average the worker
			// gradients into the primary model's params.
			inv := 1.0 / float64(gN)
			for w := 0; w < gN; w++ {
				mseSum += mses[w]
				dSum += dlosses[w]
				for pi, p := range repGen[w] {
					dst := genP[pi].G
					for j, gv := range p.G {
						dst[j] += gv * inv
					}
					p.ZeroGrad()
				}
				if !cfg.NoGANLoss {
					for pi := range repDisc[w] {
						dst := discP[pi].G
						acc := discAcc[w][pi]
						for j, gv := range acc {
							dst[j] += gv * inv
							acc[j] = 0
						}
					}
				}
			}
			if !cfg.NoGANLoss {
				nn.ClipGrads(discP, cfg.ClipNorm)
				m.discOpt.Step(discP)
			}
			nn.ClipGrads(genP, cfg.ClipNorm)
			m.genOpt.Step(genP)

			// Broadcast the updated weights back to every replica.
			for w := 0; w < W; w++ {
				for pi, p := range repGen[w] {
					copy(p.W, genP[pi].W)
				}
				for pi, p := range repDisc[w] {
					copy(p.W, discP[pi].W)
				}
			}
		}
		res.FinalMSE = mseSum / float64(len(wins))
		res.FinalDLoss = dSum / float64(len(wins))
		if opts.Logf != nil {
			opts.Logf("epoch %d/%d: mse=%.5f dloss=%.4f", epoch+1, cfg.Epochs, res.FinalMSE, res.FinalDLoss)
		}
		if err := m.fireAfterEpoch(opts, epoch+1, res, replicas, order); err != nil {
			if errors.Is(err, ErrStopTraining) {
				return res, nil
			}
			return res, err
		}
	}
	return res, nil
}

func realWindow(series [][]float64, lo, L int) [][]float64 {
	return series[lo : lo+L]
}

// String describes the model briefly.
func (m *Model) String() string {
	return fmt.Sprintf("GenDT(nch=%d, H=%d, L=%d, Δt=%d, λ=%g, W=%d, params=%d)",
		len(m.Cfg.Channels), m.Cfg.Hidden, m.Cfg.BatchLen, m.Cfg.StepLen, m.Cfg.Lambda, m.Cfg.Workers, m.ParamCount())
}
