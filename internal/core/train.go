package core

import (
	"fmt"

	"gendt/internal/nn"
)

// window is one training batch: a [lo, lo+L) slice of a sequence.
type window struct {
	seq *Sequence
	lo  int
}

// windows enumerates training windows of length L with stride Δt over all
// sequences (the paper's overlapping batches, Figure 8a).
func (m *Model) windows(seqs []*Sequence) []window {
	var out []window
	L, step := m.Cfg.BatchLen, m.Cfg.StepLen
	for _, s := range seqs {
		for lo := 0; lo+L <= s.Len(); lo += step {
			out = append(out, window{seq: s, lo: lo})
		}
	}
	return out
}

// forwardCache holds everything one generator forward pass over a window
// produces, for use by the backward pass.
type forwardCache struct {
	L, nch  int
	nCells  []int          // visible-cell count per step
	nodeSeq []nn.StepCache // per-slot detached node-LSTM caches
	hAvg    [][]float64    // [L][H] mean node embedding (discriminator context)
	base    [][]float64    // [L][nch] aggregation output
	resOuts []*ResOut      // nil when ResGen disabled
	out     [][]float64    // [L][nch] final generated (normalized)
}

// forward runs the generator over L steps of seq starting at lo. teacher
// gives the series used for ResGen lags (the real series during training;
// the generated history during generation). When train is false the caches
// needed for backward are still built but can be discarded with clearCaches.
func (m *Model) forward(seq *Sequence, lo, L int, teacher [][]float64) *forwardCache {
	cfg := m.Cfg
	nch := len(cfg.Channels)
	fc := &forwardCache{L: L, nch: nch}

	// Per-cell GNN-node passes. Each visible cell at this window gets its
	// own LSTM rollout over the L steps; cells are identified positionally
	// per step (the visible set varies over time, so we roll the network
	// over each step's cell list and average — a mean-aggregation GNN).
	// For tractability the node rollout is per-step: node state is reset
	// per cell per window, and each cell contributes its embedding at each
	// step it is visible.
	//
	// Implementation: we process "cell slots". Slot i at step t carries the
	// i-th nearest visible cell. Slot sequences run the shared node LSTM
	// across the window, which lets the LSTM track how a given nearby cell
	// evolves (nearest cells keep their slot while dominant).
	maxSlots := 0
	for t := 0; t < L; t++ {
		if n := len(seq.Cells[lo+t]); n > maxSlots {
			maxSlots = n
		}
	}
	if maxSlots == 0 {
		maxSlots = 1
	}
	hPerStep := make([][][]float64, L) // [t][slot][H]
	for t := range hPerStep {
		hPerStep[t] = make([][]float64, 0, maxSlots)
	}
	fc.nCells = make([]int, L)
	for slot := 0; slot < maxSlots; slot++ {
		m.node.ResetState()
		for t := 0; t < L; t++ {
			cellsAtT := seq.Cells[lo+t]
			var attrs []float64
			if slot < len(cellsAtT) {
				attrs = cellsAtT[slot]
			} else {
				attrs = make([]float64, cfg.CellDim()) // absent cell: zero attrs
			}
			in := make([]float64, 0, cfg.CellDim()+cfg.NoiseDim)
			in = append(in, attrs...)
			for z := 0; z < cfg.NoiseDim; z++ {
				// z0 denoising noise (paper §4.3.1).
				in = append(in, 0.1*m.rng.NormFloat64())
			}
			h := m.node.Step(in)
			if slot < len(cellsAtT) || (len(cellsAtT) == 0 && slot == 0) {
				hPerStep[t] = append(hPerStep[t], h)
			}
		}
		fc.nodeSeq = append(fc.nodeSeq, m.node.TakeSteps())
	}

	// Aggregation: mean of slot embeddings per step -> aggregation LSTM ->
	// linear head, giving the context-driven base series.
	fc.hAvg = make([][]float64, L)
	fc.base = make([][]float64, L)
	fc.out = make([][]float64, L)
	m.agg.ResetState()
	for t := 0; t < L; t++ {
		avg := make([]float64, cfg.Hidden)
		n := len(hPerStep[t])
		fc.nCells[t] = n
		if n > 0 {
			for _, h := range hPerStep[t] {
				for j, v := range h {
					avg[j] += v
				}
			}
			for j := range avg {
				avg[j] /= float64(n)
			}
		}
		fc.hAvg[t] = avg
		ha := m.agg.Step(avg)
		fc.base[t] = m.aggOut.Forward(ha)
	}

	// ResGen residual, autoregressive over the teacher series. The lags
	// are perturbed (noisy teacher forcing) so the learned autoregression
	// tolerates the generated history it will see at generation time.
	if m.res != nil {
		fc.resOuts = make([]*ResOut, L)
		for t := 0; t < L; t++ {
			lags := BuildLags(teacher, lo+t, cfg.Lags, nch)
			if cfg.LagNoise > 0 {
				for i := range lags {
					lags[i] += cfg.LagNoise * m.rng.NormFloat64()
				}
			}
			ro := m.res.Forward(seq.Env[lo+t], lags)
			fc.resOuts[t] = ro
			out := make([]float64, nch)
			for c := 0; c < nch; c++ {
				out[c] = fc.base[t][c] + ro.Sample[c]
			}
			fc.out[t] = out
		}
	} else {
		for t := 0; t < L; t++ {
			fc.out[t] = append([]float64(nil), fc.base[t]...)
		}
	}
	return fc
}

// backward pushes dOut (gradient on fc.out, [L][nch]) through the
// generator, accumulating parameter gradients.
func (m *Model) backward(fc *forwardCache, dOut [][]float64) {
	cfg := m.Cfg
	// Residual path (reverse order of Forward calls for cache discipline).
	if m.res != nil {
		for t := fc.L - 1; t >= 0; t-- {
			m.res.Backward(fc.resOuts[t], dOut[t])
		}
	}
	// Base path: linear head -> aggregation LSTM -> node LSTMs.
	dHa := make([][]float64, fc.L)
	for t := fc.L - 1; t >= 0; t-- {
		dHa[t] = m.aggOut.Backward(dOut[t])
	}
	dAvg := m.agg.BackwardSeq(dHa)
	// Distribute the mean-aggregation gradient to each slot.
	for slot := len(fc.nodeSeq) - 1; slot >= 0; slot-- {
		dH := make([][]float64, fc.L)
		for t := 0; t < fc.L; t++ {
			g := make([]float64, cfg.Hidden)
			if slot < fc.nCells[t] && fc.nCells[t] > 0 {
				inv := 1 / float64(fc.nCells[t])
				for j := range g {
					g[j] = dAvg[t][j] * inv
				}
			}
			dH[t] = g
		}
		m.node.BackwardSteps(fc.nodeSeq[slot], dH)
	}
}

// discriminate runs the discriminator over a window, returning the logit.
// x is the (real or generated) normalized KPI series; hAvg the context
// embedding per step (detached).
func (m *Model) discriminate(x, hAvg [][]float64) float64 {
	m.disc.ResetState()
	var last []float64
	for t := range x {
		in := make([]float64, 0, len(x[t])+len(hAvg[t]))
		in = append(in, x[t]...)
		in = append(in, hAvg[t]...)
		last = m.disc.Step(in)
	}
	return m.discOut.Forward(last)[0]
}

// discBackward backpropagates dLogit through the discriminator's cached
// pass, returning the gradient on the x-portion of each step input.
func (m *Model) discBackward(dLogit float64, L, nch int) [][]float64 {
	dLast := m.discOut.Backward([]float64{dLogit})
	dH := make([][]float64, L)
	for t := 0; t < L-1; t++ {
		dH[t] = make([]float64, m.Cfg.Hidden)
	}
	dH[L-1] = dLast
	dIn := m.disc.BackwardSeq(dH)
	dx := make([][]float64, L)
	for t := 0; t < L; t++ {
		dx[t] = dIn[t][:nch]
	}
	return dx
}

// TrainResult summarizes a training run.
type TrainResult struct {
	Windows    int
	FinalMSE   float64
	FinalDLoss float64
}

// Train fits the model on the prepared sequences for Cfg.Epochs passes.
// Progress can be observed via the optional logf (may be nil).
func (m *Model) Train(seqs []*Sequence, logf func(format string, args ...any)) TrainResult {
	cfg := m.Cfg
	nch := len(cfg.Channels)
	wins := m.windows(seqs)
	if len(wins) == 0 {
		return TrainResult{}
	}
	m.SetNoise(true)
	if m.res != nil {
		m.res.Dropout.Active = true
	}
	var res TrainResult
	res.Windows = len(wins)
	order := make([]int, len(wins))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var mseSum, dSum float64
		for _, wi := range order {
			w := wins[wi]
			L := cfg.BatchLen
			real := w.seq.KPIs
			fc := m.forward(w.seq, w.lo, L, real)

			// --- Discriminator update (skipped under NoGANLoss). ---
			if !cfg.NoGANLoss {
				logitReal := m.discriminate(realWindow(real, w.lo, L), fc.hAvg)
				lossR, gR := nn.BCEWithLogitsLoss(logitReal, 1)
				m.discBackward(gR, L, nch)
				logitFake := m.discriminate(fc.out, fc.hAvg)
				lossF, gF := nn.BCEWithLogitsLoss(logitFake, 0)
				m.discBackward(gF, L, nch)
				nn.ClipGrads(m.discParams(), cfg.ClipNorm)
				m.discOpt.Step(m.discParams())
				dSum += lossR + lossF
			}

			// --- Generator update: L = L_M + λ L_JS. ---
			dOut := make([][]float64, L)
			mse := 0.0
			for t := 0; t < L; t++ {
				lossT, gT := nn.MSELoss(fc.out[t], real[w.lo+t])
				mse += lossT
				// Scale per-step MSE gradient by 1/L for a window mean.
				for c := range gT {
					gT[c] /= float64(L)
				}
				dOut[t] = gT
			}
			mse /= float64(L)
			mseSum += mse
			if !cfg.NoGANLoss {
				// Non-saturating generator loss: maximize log R(x').
				logitFake := m.discriminate(fc.out, fc.hAvg)
				_, gAdv := nn.BCEWithLogitsLoss(logitFake, 1)
				dxAdv := m.discBackward(gAdv, L, nch)
				// The adversarial pass accumulated discriminator grads we
				// must not apply.
				for _, p := range m.discParams() {
					p.ZeroGrad()
				}
				for t := 0; t < L; t++ {
					for c := 0; c < nch; c++ {
						dOut[t][c] += cfg.Lambda * dxAdv[t][c] / float64(L)
					}
				}
			}
			m.backward(fc, dOut)
			nn.ClipGrads(m.genParams(), cfg.ClipNorm)
			m.genOpt.Step(m.genParams())
		}
		res.FinalMSE = mseSum / float64(len(wins))
		res.FinalDLoss = dSum / float64(len(wins))
		if logf != nil {
			logf("epoch %d/%d: mse=%.5f dloss=%.4f", epoch+1, cfg.Epochs, res.FinalMSE, res.FinalDLoss)
		}
	}
	return res
}

func realWindow(series [][]float64, lo, L int) [][]float64 {
	return series[lo : lo+L]
}

// String describes the model briefly.
func (m *Model) String() string {
	return fmt.Sprintf("GenDT(nch=%d, H=%d, L=%d, Δt=%d, λ=%g, params=%d)",
		len(m.Cfg.Channels), m.Cfg.Hidden, m.Cfg.BatchLen, m.Cfg.StepLen, m.Cfg.Lambda, m.ParamCount())
}
