package core

import (
	"testing"

	"gendt/internal/dataset"
)

// truncSeq returns a prefix view of seq (shared backing — read-only use).
func truncSeq(seq *Sequence, n int) *Sequence {
	if n > seq.Len() {
		n = seq.Len()
	}
	return &Sequence{
		KPIs: seq.KPIs[:n], Cells: seq.Cells[:n], Env: seq.Env[:n],
		Interval: seq.Interval,
	}
}

// TestBatchedGenerateJobsBitIdentical is the lockstep engine's contract:
// GenerateJobs with batching on (the default), batching off
// (WithBatch(false)), and per-job direct GenerateSeeded must all be
// byte-equal, per precision, across mixed sequence lengths (ragged lane
// retirement), chunk boundaries (more jobs than batchLanes), and worker
// fan-out widths.
func TestBatchedGenerateJobsBitIdentical(t *testing.T) {
	m, seq := freezeFixture(t)
	// Mixed lengths exercise window-level retirement (length differences
	// spanning BatchLen windows) and per-timestep prefix shrink.
	L := m.Cfg.BatchLen
	seqs := []*Sequence{
		seq,
		truncSeq(seq, seq.Len()-1),
		truncSeq(seq, L+1),
		truncSeq(seq, L),
		truncSeq(seq, L-1),
		truncSeq(seq, 1),
	}
	var jobs []GenJob
	for i := 0; i < 11; i++ { // > batchLanes, non-multiple: ragged chunk
		jobs = append(jobs, GenJob{Seq: seqs[i%len(seqs)], Seed: DeriveSeed(99, i)})
	}
	for _, p := range []Precision{PrecisionF32, PrecisionInt8} {
		im, err := m.Freeze(p)
		if err != nil {
			t.Fatal(err)
		}
		batched := im.WithWorkers(1).GenerateJobs(jobs)
		for i, job := range jobs {
			direct := im.DenormalizeSeries(im.GenerateSeeded(job.Seq, job.Seed))
			if !series2Equal(batched[i], direct) {
				t.Fatalf("%s: job %d (T=%d): batched vs direct GenerateSeeded differ", p, i, job.Seq.Len())
			}
		}
		unbatched := im.WithBatch(false).WithWorkers(1).GenerateJobs(jobs)
		parallel := im.WithWorkers(3).GenerateJobs(jobs)
		for i := range jobs {
			if !series2Equal(batched[i], unbatched[i]) {
				t.Fatalf("%s: job %d: batch-on vs batch-off differ", p, i)
			}
			if !series2Equal(batched[i], parallel[i]) {
				t.Fatalf("%s: job %d: Workers=1 vs Workers=3 differ", p, i)
			}
		}
		// Repeat on the same engine pool: state reuse must not leak.
		again := im.WithWorkers(1).GenerateJobs(jobs)
		for i := range jobs {
			if !series2Equal(batched[i], again[i]) {
				t.Fatalf("%s: job %d: repeat on pooled engine differs", p, i)
			}
		}
	}
}

// TestBatchedGenerateJobsAblations covers the engine under the NoSRNN
// (no stochastic modulation) and NoResGen (no residual head) ablations,
// whose code paths skip whole draw phases.
func TestBatchedGenerateJobsAblations(t *testing.T) {
	for _, ablate := range []string{"nosrnn", "noresgen"} {
		t.Run(ablate, func(t *testing.T) {
			d := dataset.NewDatasetA(tinyData)
			chans := RSRPRSRQChannels()
			cfg := tinyConfig(chans)
			switch ablate {
			case "nosrnn":
				cfg.NoSRNN = true
			case "noresgen":
				cfg.NoResGen = true
			}
			m := NewModel(cfg)
			train := PrepareAll(d.TrainRuns(), chans, m.Cfg.MaxCells)
			m.Train(train, nil)
			seq := PrepareAll(d.TestRuns(), chans, m.Cfg.MaxCells)[0]
			im, err := m.Freeze(PrecisionF32)
			if err != nil {
				t.Fatal(err)
			}
			jobs := []GenJob{
				{Seq: seq, Seed: 3},
				{Seq: truncSeq(seq, seq.Len()/2), Seed: 4},
				{Seq: seq, Seed: 5},
			}
			batched := im.WithWorkers(1).GenerateJobs(jobs)
			for i, job := range jobs {
				direct := im.DenormalizeSeries(im.GenerateSeeded(job.Seq, job.Seed))
				if !series2Equal(batched[i], direct) {
					t.Fatalf("%s: job %d: batched vs direct differ", ablate, i)
				}
			}
		})
	}
}
