package core

import (
	"bytes"
	"math"
	"testing"

	"gendt/internal/dataset"
)

// freezeFixture trains a tiny model and prepares one held-out sequence.
func freezeFixture(t *testing.T) (*Model, *Sequence) {
	t.Helper()
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	m := NewModel(tinyConfig(chans))
	train := PrepareAll(d.TrainRuns(), chans, m.Cfg.MaxCells)
	m.Train(train, nil)
	seq := PrepareAll(d.TestRuns(), chans, m.Cfg.MaxCells)[0]
	return m, seq
}

func TestParsePrecision(t *testing.T) {
	for in, want := range map[string]Precision{
		"": PrecisionF64, "f64": PrecisionF64, "f32": PrecisionF32, "int8": PrecisionInt8,
	} {
		got, err := ParsePrecision(in)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Error("ParsePrecision must reject unknown precisions")
	}
}

func TestFreezeRejectsF64(t *testing.T) {
	m, _ := freezeFixture(t)
	if _, err := m.Freeze(PrecisionF64); err == nil {
		t.Error("Freeze(f64) must fail: f64 is the live model")
	}
	if _, err := m.Freeze(Precision("x")); err == nil {
		t.Error("Freeze must reject unknown precisions")
	}
}

// TestFrozenDeterministicPerPrecision is the per-precision seed-determinism
// contract: repeated generations with the same (seq, seed) are bit-exact
// on the same frozen backend, including across pooled-state reuse and
// GenerateJobs concurrency.
func TestFrozenDeterministicPerPrecision(t *testing.T) {
	m, seq := freezeFixture(t)
	for _, p := range []Precision{PrecisionF32, PrecisionInt8} {
		im, err := m.Freeze(p)
		if err != nil {
			t.Fatal(err)
		}
		a := im.GenerateSeeded(seq, 42)
		b := im.GenerateSeeded(seq, 42)
		if !series2Equal(a, b) {
			t.Fatalf("%s: repeated GenerateSeeded not bit-exact", p)
		}
		jobs := []GenJob{{Seq: seq, Seed: 42}, {Seq: seq, Seed: 7}, {Seq: seq, Seed: 42}}
		serial := im.WithWorkers(1).GenerateJobs(jobs)
		par := im.WithWorkers(3).GenerateJobs(jobs)
		for i := range jobs {
			if !series2Equal(serial[i], par[i]) {
				t.Fatalf("%s: job %d differs between Workers=1 and Workers=3", p, i)
			}
		}
		if !series2Equal(serial[0], serial[2]) {
			t.Fatalf("%s: same-seed jobs differ", p)
		}
		direct := im.DenormalizeSeries(im.GenerateSeeded(seq, 42))
		if !series2Equal(serial[0], direct) {
			t.Fatalf("%s: GenerateJobs vs direct GenerateSeeded differ", p)
		}
	}
}

// TestFrozenCloseToF64 bounds the frozen backends' drift from the live
// model. The paths draw identical RNG schedules, so with the same seed the
// series differ only by arithmetic precision: f32 stays within a few ulps
// compounded over the recurrence, int8 within the quantization budget.
// These are sanity bounds — the real faithfulness gate is gendt-validate's
// distributional suite, which CI runs against both frozen backends.
func TestFrozenCloseToF64(t *testing.T) {
	m, seq := freezeFixture(t)
	ref := m.GenerateSeeded(seq, 9)
	for _, tc := range []struct {
		p   Precision
		tol float64
	}{
		// The recurrent nets are chaotic-ish: tiny rounding differences
		// compound across steps, so the bounds are loose but still far
		// tighter than the [0,1] output range.
		{PrecisionF32, 0.15},
		{PrecisionInt8, 0.35},
	} {
		im, err := m.Freeze(tc.p)
		if err != nil {
			t.Fatal(err)
		}
		got := im.GenerateSeeded(seq, 9)
		if len(got) != len(ref) {
			t.Fatalf("%s: length %d vs %d", tc.p, len(got), len(ref))
		}
		var sum float64
		var n int
		for t2 := range ref {
			for c := range ref[t2] {
				sum += math.Abs(got[t2][c] - ref[t2][c])
				n++
			}
		}
		if mean := sum / float64(n); mean > tc.tol {
			t.Errorf("%s: mean |frozen - f64| = %.4f, want <= %.3f", tc.p, mean, tc.tol)
		}
	}
}

// TestFrozenMatchesConfigShape checks the frozen metadata mirrors the
// source model.
func TestFrozenMatchesConfigShape(t *testing.T) {
	m, _ := freezeFixture(t)
	im, err := m.Freeze(PrecisionF32)
	if err != nil {
		t.Fatal(err)
	}
	if im.Precision() != PrecisionF32 {
		t.Errorf("Precision() = %v", im.Precision())
	}
	if im.ParamCount() != m.ParamCount() {
		t.Errorf("ParamCount %d vs %d", im.ParamCount(), m.ParamCount())
	}
	if im.Fingerprint() != m.Fingerprint() {
		t.Errorf("Fingerprint mismatch")
	}
	if im.ModelConfig().Precision != PrecisionF32 {
		t.Errorf("frozen config precision = %q", im.ModelConfig().Precision)
	}
	if got := im.ModelConfig().Channels; len(got) != len(m.Cfg.Channels) {
		t.Errorf("channels %d vs %d", len(got), len(m.Cfg.Channels))
	}
}

// TestPrecisionPersistRoundTrip: a model saved with a preferred serving
// precision loads with it intact, and corrupt values are rejected.
func TestPrecisionPersistRoundTrip(t *testing.T) {
	m, _ := freezeFixture(t)
	m.Cfg.Precision = PrecisionInt8
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg.Precision != PrecisionInt8 {
		t.Errorf("loaded precision = %q, want int8", loaded.Cfg.Precision)
	}

	data := bytes.ReplaceAll(saved, []byte(`"precision":"int8"`), []byte(`"precision":"zzz"`))
	if bytes.Equal(data, saved) {
		t.Fatal("snapshot layout changed; precision field not found")
	}
	// The checksum trailer covers the payload, so recompute via a fresh
	// save path: corrupting the field invalidates the checksum anyway,
	// which is itself a pass (the file is rejected).
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("corrupt precision must not load")
	}
}

// series2Equal is bit-exact equality for [T][nch] or [nch][T] series.
func series2Equal(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}
