package core

import (
	"reflect"
	"testing"

	"gendt/internal/dataset"
)

// TestGenerateJobsBatchInvariant is the serving-layer contract: a job's
// output depends only on the model parameters and its own (Seq, Seed),
// never on batch composition or worker count.
func TestGenerateJobsBatchInvariant(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	m := NewModel(tinyConfig(chans))
	seqA := PrepareSequence(d.TestRuns()[0], chans, 6)
	seqB := PrepareSequence(d.TestRuns()[1], chans, 6)

	solo := m.GenerateJobs([]GenJob{{Seq: seqA, Seed: 42}})[0]

	// Same job inside a larger, reordered batch.
	batch := m.GenerateJobs([]GenJob{
		{Seq: seqB, Seed: 7},
		{Seq: seqA, Seed: 42},
		{Seq: seqA, Seed: 43},
	})
	if !reflect.DeepEqual(solo, batch[1]) {
		t.Fatal("job output changed with batch composition")
	}
	if reflect.DeepEqual(batch[1], batch[2]) {
		t.Fatal("different seeds must give different samples")
	}

	// Same batch at a different worker width.
	m.Cfg.Workers = 4
	wide := m.GenerateJobs([]GenJob{
		{Seq: seqB, Seed: 7},
		{Seq: seqA, Seed: 42},
		{Seq: seqA, Seed: 43},
	})
	for i := range batch {
		if !reflect.DeepEqual(batch[i], wide[i]) {
			t.Fatalf("job %d changed with worker count", i)
		}
	}

	// Output shape: [samples][channel][t] in physical units.
	if len(solo) != len(chans) || len(solo[0]) != seqA.Len() {
		t.Fatalf("shape %dx%d, want %dx%d", len(solo), len(solo[0]), len(chans), seqA.Len())
	}
}

// TestGenerateJobsDoesNotMutateModel: serving calls GenerateJobs on a
// shared model from many goroutines; the receiver must stay untouched.
func TestGenerateJobsDoesNotMutateModel(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	m := NewModel(tinyConfig(chans))
	seq := PrepareSequence(d.TestRuns()[0], chans, 6)

	// Reference behaviour of the model's own RNG stream.
	ref := NewModel(tinyConfig(chans)).Generate(seq)

	m.GenerateJobs([]GenJob{{Seq: seq, Seed: 1}, {Seq: seq, Seed: 2}})
	got := m.Generate(seq)
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("GenerateJobs disturbed the receiver's RNG stream")
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("not deterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := DeriveSeed(12345, i)
		if seen[s] {
			t.Fatalf("collision at %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("base seed ignored")
	}
}
