package core

import (
	"math/rand"
	"runtime"

	"gendt/internal/nn"
)

// Config sizes the GenDT model. The paper uses hidden dimension 100, batch
// length 50, step 5, λ=0.1, noise intensities a_h=a_c=2 (§A.3); the zero
// value of each field falls back to scaled-down defaults suitable for CPU
// training.
type Config struct {
	Channels []ChannelSpec // target KPIs (N_ch = len(Channels))

	Hidden   int     // GNN-node and aggregation LSTM hidden size H
	NoiseDim int     // N_z0: noise appended to each cell's node input
	ResNoise int     // N_z1: noise into ResGen
	Lags     int     // autoregressive KPI lags fed to ResGen
	BatchLen int     // L: batch (window) length
	StepLen  int     // Δt: training window stride (Δt < L => overlapping)
	MaxCells int     // cap on visible cells per step (0 = no cap)
	Lambda   float64 // adversarial loss weight λ
	LR       float64 // generator learning rate
	DiscLR   float64 // discriminator learning rate
	Epochs   int     // passes over the training windows
	AH, AC   float64 // stochastic-layer intensities (paper §A.2)
	DropoutP float64 // ResGen dropout probability
	ClipNorm float64 // gradient clipping
	LagNoise float64 // noise added to teacher-forced ResGen lags in training
	Seed     int64

	// Workers sets the data-parallel width of training and of the
	// embarrassingly parallel inference paths (GenerateAll, GenerateN,
	// ModelUncertainty). 0 defaults to runtime.NumCPU(). Workers=1
	// reproduces the original serial training loop bit-for-bit; Workers=N
	// trains with worker-replica gradient accumulation over mini-batches
	// of N windows (deterministic for a fixed Seed and N — see DESIGN.md,
	// "Parallel training engine").
	Workers int

	// LoadAware extends the per-cell context with the instantaneous cell
	// load (closed-loop extension, paper §7.2). Sequences must then be
	// prepared with PrepareOptions.LoadAware.
	LoadAware bool

	// Precision records the preferred serving backend for this model
	// (empty means f64, the live model). It does not change training —
	// training is always float64 — but Save/Load round-trip it so a model
	// file can declare "serve me quantized" and the serving registry
	// freezes it accordingly unless overridden by -precision.
	Precision Precision

	// Ablation switches (paper §C.1). All false for full GenDT.
	NoResGen  bool // drop the residual generator
	NoSRNN    bool // disable the stochastic h/c layers
	NoGANLoss bool // train with MSE only
	NoBatch   bool // no overlapping batches: stride = L during training
}

// CellDim returns the per-cell context dimensionality the model expects.
func (c Config) CellDim() int {
	if c.LoadAware {
		return NumCellAttrs + 1
	}
	return NumCellAttrs
}

// withDefaults fills in zero fields.
func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.NoiseDim == 0 {
		c.NoiseDim = 2
	}
	if c.ResNoise == 0 {
		c.ResNoise = 4
	}
	if c.Lags == 0 {
		c.Lags = 3
	}
	if c.BatchLen == 0 {
		c.BatchLen = 40
	}
	if c.StepLen == 0 {
		c.StepLen = 10
	}
	if c.MaxCells == 0 {
		c.MaxCells = 16
	}
	if c.Lambda == 0 {
		c.Lambda = 0.1
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.DiscLR == 0 {
		c.DiscLR = 1e-3
	}
	if c.Epochs == 0 {
		c.Epochs = 8
	}
	// The paper tunes a_h = a_c in [1, 3] against the histogram fit; with
	// this implementation's centred-uniform noise the equivalent sweet spot
	// sits at 0.6 (see the Table 12 ablation bench).
	if c.AH == 0 {
		c.AH = 0.6
	}
	if c.AC == 0 {
		c.AC = 0.6
	}
	if c.DropoutP == 0 {
		c.DropoutP = 0.2
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	if c.LagNoise == 0 {
		// Teacher-forced lags are perturbed during training so ResGen stays
		// robust to the imperfect generated history it sees at generation
		// time (mitigates autoregressive exposure bias).
		c.LagNoise = 0.05
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.NoBatch {
		c.StepLen = c.BatchLen
	}
	if c.NoSRNN {
		c.AH, c.AC = 0, 0
	}
	return c
}

// Model is a GenDT generator plus its discriminator.
type Model struct {
	Cfg Config

	// Generator components (paper Figure 6).
	node   *nn.LSTM   // G^n_θ: shared GNN-node network over cell contexts
	agg    *nn.LSTM   // G^a_θ: aggregation network over mean node embeddings
	aggOut *nn.Linear // projects aggregation hidden state to N_ch channels
	res    *ResGen    // G^r_θ: environment-conditioned Gaussian residual

	// Discriminator R_θ: single-layer LSTM over [x_t ++ h_avg_t] plus a
	// readout producing one logit per window.
	disc    *nn.LSTM
	discOut *nn.Linear

	genOpt  *nn.Adam
	discOpt *nn.Adam

	rng    *rand.Rand
	rngSrc *trackedSource // rng's source; checkpointing snapshots/restores it

	// Reusable per-window scratch. A Model is not safe for concurrent use;
	// the data-parallel paths give each worker its own Clone instead of
	// locking.
	fc        forwardCache
	hAvgArena []float64   // backing storage for fc.hAvg rows
	outArena  []float64   // backing storage for fc.out rows (training only)
	zeroCell  []float64   // absent-cell attribute vector
	inBuf     []float64   // node/discriminator step input assembly
	lagBuf    []float64   // ResGen lag assembly
	dNodeH    [][]float64 // per-slot node gradient rows
	dNodeAren []float64   // backing storage for dNodeH
	dHaRows   [][]float64 // aggregation-head gradient row headers
	dHdisc    [][]float64 // discriminator BPTT gradient row headers
	zeroH     []float64   // shared all-zero hidden gradient row
	dLogit    []float64   // 1-element discriminator logit gradient
	dxRows    [][]float64 // discBackward x-gradient headers
}

// NewModel constructs a GenDT model from the config.
func NewModel(cfg Config) *Model {
	cfg = cfg.withDefaults()
	src := newTrackedSource(cfg.Seed)
	rng := rand.New(src)
	nch := len(cfg.Channels)
	if nch == 0 {
		panic("core: Config.Channels must be non-empty")
	}
	m := &Model{Cfg: cfg, rng: rng, rngSrc: src}
	m.node = nn.NewLSTM(cfg.CellDim()+cfg.NoiseDim, cfg.Hidden, rng)
	m.agg = nn.NewLSTM(cfg.Hidden, cfg.Hidden, rng)
	m.aggOut = nn.NewLinear(cfg.Hidden, nch, rng)
	if !cfg.NoSRNN {
		m.node.AH, m.node.AC = cfg.AH, cfg.AC
		m.agg.AH, m.agg.AC = cfg.AH, cfg.AC
	}
	if !cfg.NoResGen {
		m.res = NewResGen(cfg, rng)
	}
	m.disc = nn.NewLSTM(nch+cfg.Hidden, cfg.Hidden, rng)
	m.discOut = nn.NewLinear(cfg.Hidden, 1, rng)
	m.genOpt = nn.NewAdam(cfg.LR)
	m.discOpt = nn.NewAdam(cfg.DiscLR)
	return m
}

// Clone returns a deep copy of the model — parameters, optimizer state,
// and configuration — with fresh caches and an independent RNG seeded by
// seed. Clones share no mutable state with the original, so they can run
// forward/backward passes concurrently; the data-parallel trainer and the
// parallel generation/uncertainty paths are built on this.
func (m *Model) Clone(seed int64) *Model {
	src := newTrackedSource(seed)
	rng := rand.New(src)
	c := &Model{Cfg: m.Cfg, rng: rng, rngSrc: src}
	c.node = m.node.Clone(rng)
	c.agg = m.agg.Clone(rng)
	c.aggOut = m.aggOut.Clone()
	if m.res != nil {
		c.res = m.res.Clone(rng)
	}
	c.disc = m.disc.Clone(rng)
	c.discOut = m.discOut.Clone()
	c.genOpt = m.genOpt.Clone()
	c.discOpt = m.discOpt.Clone()
	return c
}

// PerturbWeights adds deterministic Gaussian noise of the given standard
// deviation to every weight (generator and discriminator). It exists as a
// negative-control hook for the statistical validation gate: a gate that
// cannot fail a noise-corrupted model has no teeth, so CI corrupts a
// freshly trained model with this and asserts gendt-validate rejects it.
func (m *Model) PerturbWeights(sigma float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.allParams() {
		for i := range p.W {
			p.W[i] += sigma * rng.NormFloat64()
		}
	}
}

// workerSeed derives a deterministic, well-separated RNG seed for worker w
// from the model seed (splitmix64 finalizer over the worker index).
func workerSeed(seed int64, w int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(w+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// genParams returns all generator parameters.
func (m *Model) genParams() []*nn.Param {
	ps := append(m.node.Params(), m.agg.Params()...)
	ps = append(ps, m.aggOut.Params()...)
	if m.res != nil {
		ps = append(ps, m.res.Params()...)
	}
	return ps
}

// discParams returns all discriminator parameters.
func (m *Model) discParams() []*nn.Param {
	return append(m.disc.Params(), m.discOut.Params()...)
}

// SetNoise toggles the generator's stochastic behaviour (SRNN noise and
// input noise). Distinct from MC dropout, which is controlled on ResGen.
func (m *Model) SetNoise(active bool) {
	if m.Cfg.NoSRNN {
		active = false
	}
	m.node.NoiseActive = active
	m.agg.NoiseActive = active
}

// ParamCount reports the total number of generator weights (for docs/tests).
func (m *Model) ParamCount() int {
	total := 0
	for _, p := range m.genParams() {
		total += len(p.W)
	}
	return total
}
