// Package core implements GenDT (paper §4): a conditional deep generative
// model that synthesizes multivariate radio-KPI time series for a
// drive-test trajectory, conditioned on dynamic network context (the
// visible-cell set) and environment context. The generator has three
// components — a GNN-node LSTM shared across visible cells, an aggregation
// LSTM over the mean node embedding, and the autoregressive ResGen Gaussian
// residual network — trained with an MSE plus adversarial loss against a
// single-layer LSTM discriminator, at the level of (optionally overlapping)
// batches of a fixed length L.
package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"gendt/internal/dataset"
	"gendt/internal/env"
	"gendt/internal/radio"
	"gendt/internal/sim"
)

// ChannelSpec defines one generated KPI channel: how to extract its
// physical value from a measurement and the range used to normalize it to
// [0, 1] for the networks.
type ChannelSpec struct {
	Name    string
	Extract func(m *sim.Measurement) float64
	Lo, Hi  float64
}

// Normalize maps a physical value to [0,1].
func (c ChannelSpec) Normalize(v float64) float64 {
	x := (v - c.Lo) / (c.Hi - c.Lo)
	return math.Max(0, math.Min(1, x))
}

// Denormalize maps a [0,1] network value back to physical units.
func (c ChannelSpec) Denormalize(v float64) float64 {
	return c.Lo + math.Max(0, math.Min(1, v))*(c.Hi-c.Lo)
}

// KPIChannel returns the ChannelSpec for one of the core radio KPIs.
func KPIChannel(kpi int) ChannelSpec {
	lo, hi := radio.KPIRange(kpi)
	k := kpi
	return ChannelSpec{
		Name:    radio.KPINames[kpi],
		Extract: func(m *sim.Measurement) float64 { return m.KPI(k) },
		Lo:      lo, Hi: hi,
	}
}

// StandardChannels returns the paper's four target KPIs
// (RSRP, RSRQ, SINR, CQI) for Dataset A.
func StandardChannels() []ChannelSpec {
	return []ChannelSpec{
		KPIChannel(radio.KPIRSRP),
		KPIChannel(radio.KPIRSRQ),
		KPIChannel(radio.KPISINR),
		KPIChannel(radio.KPICQI),
	}
}

// RSRPRSRQChannels returns the two KPIs available in Dataset B.
func RSRPRSRQChannels() []ChannelSpec {
	return []ChannelSpec{
		KPIChannel(radio.KPIRSRP),
		KPIChannel(radio.KPIRSRQ),
	}
}

// MaxServingRank is the highest distance-rank the serving-cell channel can
// express; visible cells beyond this rank are clamped. Measured serving
// ranks fall at or below 16 about 97% of the time (sectorization, per-cell
// power diversity, and shadowing frequently make a non-nearest cell the
// serving one — the paper's §3 observation).
const MaxServingRank = 16

// ServingRankChannel encodes the serving cell as its rank in the
// distance-sorted visible-cell list — the additional channel used for the
// handover use case (paper §6.3.2). Rank encoding keeps the channel
// bounded and location-independent; generated ranks are snapped back to
// cell ids against the trajectory's visible sets.
func ServingRankChannel() ChannelSpec {
	return ChannelSpec{
		Name: "ServingRank",
		Extract: func(m *sim.Measurement) float64 {
			for i, v := range m.Visible {
				if v.Cell.ID == m.ServingCell {
					if i > MaxServingRank {
						return MaxServingRank
					}
					return float64(i)
				}
			}
			return 0
		},
		Lo: 0, Hi: MaxServingRank,
	}
}

// NumCellAttrs is N_c: attributes per visible cell in the network context
// (paper §4.2: [lat, lon, p_max, direction, distance_t], expressed here as
// device-relative offsets so the model generalizes across regions).
const NumCellAttrs = 5

// Sequence is a prepared training/generation sequence: per timestep the
// normalized target KPIs, the per-visible-cell network-context vectors, and
// the environment context.
type Sequence struct {
	KPIs     [][]float64   // [T][Nch] normalized targets
	Cells    [][][]float64 // [T][nVisible][NumCellAttrs]
	Env      [][]float64   // [T][env.NumAttributes] normalized
	Raw      []sim.Measurement
	Interval float64
}

// Len returns the sequence length T.
func (s *Sequence) Len() int { return len(s.KPIs) }

// normalization scales for cell attributes.
const cellOffsetScaleM = 5000 // device-to-cell offsets normalized by 5 km

// PrepareOptions controls sequence preparation.
type PrepareOptions struct {
	// MaxCells caps the visible-cell set at the nearest MaxCells cells
	// (the paper caps compute by choosing d_s conservatively; we
	// additionally bound the node count). 0 means no cap.
	MaxCells int
	// LoadAware appends each visible cell's instantaneous traffic load as
	// a sixth context attribute — the closed-loop extension of §7.2, for
	// operators who can feed network-side load into the model.
	LoadAware bool
}

// PrepareSequence converts a measurement run into model-ready tensors with
// the nearest maxCells visible cells per step.
func PrepareSequence(run dataset.Run, chans []ChannelSpec, maxCells int) *Sequence {
	return PrepareSequenceWith(run, chans, PrepareOptions{MaxCells: maxCells})
}

// PrepareSequenceWith converts a measurement run into model-ready tensors.
func PrepareSequenceWith(run dataset.Run, chans []ChannelSpec, opt PrepareOptions) *Sequence {
	T := len(run.Meas)
	s := &Sequence{
		KPIs:     make([][]float64, T),
		Cells:    make([][][]float64, T),
		Env:      make([][]float64, T),
		Raw:      run.Meas,
		Interval: run.Traj.TimeGranularity(),
	}
	for t := 0; t < T; t++ {
		m := &run.Meas[t]
		k := make([]float64, len(chans))
		for ci, ch := range chans {
			k[ci] = ch.Normalize(ch.Extract(m))
		}
		s.KPIs[t] = k

		n := len(m.Visible)
		if opt.MaxCells > 0 && n > opt.MaxCells {
			n = opt.MaxCells // Visible is distance-sorted; keep the nearest
		}
		cc := make([][]float64, n)
		for i := 0; i < n; i++ {
			attrs := CellAttrs(m, i)
			if opt.LoadAware {
				load := 0.0
				if i < len(m.VisibleLoad) {
					load = m.VisibleLoad[i]
				}
				attrs = append(attrs, load)
			}
			cc[i] = attrs
		}
		s.Cells[t] = cc
		s.Env[t] = NormalizeEnv(m.EnvCtx)
	}
	return s
}

// CellAttrs builds the normalized N_c-vector for the i-th visible cell of a
// measurement. The paper's raw attributes are [lat, lon, p_max, direction,
// distance_t]; we apply the "customized data processing" the paper alludes
// to (§4.2) and express them in a physically aligned form the networks can
// exploit: device-relative offsets (≈lat/lon), normalized power, the
// cosine of the angle between the sector boresight and the device bearing
// (≈direction, and linear in antenna-gain dB), and log-distance (linear in
// pathloss dB).
func CellAttrs(m *sim.Measurement, i int) []float64 {
	v := m.Visible[i]
	// The model sees the *reported* (CellMapper-style, possibly inexact)
	// site location and power — true positions drive only the physics.
	site := v.Cell.ReportedSite()
	// Planar offsets from device to cell site via small-angle approximation.
	dNorth := (site.Lat - m.Loc.Lat) * 111320
	dEast := (site.Lon - m.Loc.Lon) * 111320 * math.Cos(m.Loc.Lat*math.Pi/180)
	// Bearing from the cell toward the device, relative to the sector
	// boresight: cos(Δ)=1 on boresight, -1 directly behind.
	brgToDevice := math.Atan2(-dEast, -dNorth) * 180 / math.Pi // cell->device, deg from north
	delta := (brgToDevice - v.Cell.Azimuth) * math.Pi / 180
	// Log-distance (from the reported position): 0 at 10 m, ~1 at 10 km.
	d := math.Max(math.Hypot(dNorth, dEast), 10)
	logDist := math.Log10(d/10) / 3
	return []float64{
		dNorth / cellOffsetScaleM,
		dEast / cellOffsetScaleM,
		(v.Cell.ReportedPower() - 30) / 20,
		math.Cos(delta),
		logDist,
	}
}

// NormalizeEnv scales the raw 26-attribute environment context: land-use
// shares are already in [0,1]; PoI counts are squashed by count/(count+10).
func NormalizeEnv(raw []float64) []float64 {
	out := make([]float64, len(raw))
	for i, v := range raw {
		if i < env.NumLandUse {
			out[i] = v
		} else {
			out[i] = v / (v + 10)
		}
	}
	return out
}

// PrepareAll prepares several runs at once. Preparation is pure per-run
// work, so the runs are distributed over up to runtime.NumCPU() goroutines;
// the result order matches the input order.
func PrepareAll(runs []dataset.Run, chans []ChannelSpec, maxCells int) []*Sequence {
	out := make([]*Sequence, len(runs))
	W := runtime.NumCPU()
	if W > len(runs) {
		W = len(runs)
	}
	if W <= 1 {
		for i, r := range runs {
			out[i] = PrepareSequence(r, chans, maxCells)
		}
		return out
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(runs) {
					return
				}
				out[i] = PrepareSequence(runs[i], chans, maxCells)
			}
		}()
	}
	wg.Wait()
	return out
}

// RawCellAttrs builds the un-engineered N_c-vector for the i-th visible
// cell: [north offset, east offset, p_max, azimuth/360, linear distance] —
// the paper's raw context attributes as a baseline without GenDT's
// customized data processing would consume them (§4.2 lists the tailored
// processing as part of the GenDT approach, so the baselines of §5.2 get
// the raw form).
func RawCellAttrs(m *sim.Measurement, i int) []float64 {
	v := m.Visible[i]
	site := v.Cell.ReportedSite()
	dNorth := (site.Lat - m.Loc.Lat) * 111320
	dEast := (site.Lon - m.Loc.Lon) * 111320 * math.Cos(m.Loc.Lat*math.Pi/180)
	return []float64{
		dNorth / cellOffsetScaleM,
		dEast / cellOffsetScaleM,
		(v.Cell.ReportedPower() - 30) / 20,
		v.Cell.Azimuth / 360,
		math.Hypot(dNorth, dEast) / 4000,
	}
}
