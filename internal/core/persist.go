package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gendt/internal/nn"
	"gendt/internal/radio"
)

// ChannelByName reconstructs a ChannelSpec from its name. Supported names
// are the four radio KPIs plus "ServingRank". It is used when loading a
// persisted model, whose channel extractors cannot be serialized.
func ChannelByName(name string) (ChannelSpec, error) {
	for i, n := range radio.KPINames {
		if n == name {
			return KPIChannel(i), nil
		}
	}
	if name == "ServingRank" {
		return ServingRankChannel(), nil
	}
	return ChannelSpec{}, fmt.Errorf("core: unknown channel %q", name)
}

// snapshot is the serialized model format.
type snapshot struct {
	Version  int         `json:"version"`
	Channels []string    `json:"channels"`
	Cfg      cfgSnap     `json:"config"`
	Params   [][]float64 `json:"params"`
}

// cfgSnap persists the architecture-relevant config fields.
type cfgSnap struct {
	Hidden    int     `json:"hidden"`
	NoiseDim  int     `json:"noise_dim"`
	ResNoise  int     `json:"res_noise"`
	Lags      int     `json:"lags"`
	BatchLen  int     `json:"batch_len"`
	StepLen   int     `json:"step_len"`
	MaxCells  int     `json:"max_cells"`
	Lambda    float64 `json:"lambda"`
	AH        float64 `json:"ah"`
	AC        float64 `json:"ac"`
	DropoutP  float64 `json:"dropout_p"`
	LoadAware bool    `json:"load_aware"`
	NoResGen  bool    `json:"no_resgen"`
	NoSRNN    bool    `json:"no_srnn"`
	Seed      int64   `json:"seed"`
	Workers   int     `json:"workers,omitempty"`
}

// allParams returns generator plus discriminator parameters in a stable
// order.
func (m *Model) allParams() []*nn.Param {
	return append(m.genParams(), m.discParams()...)
}

// Save writes the model (config + weights) as JSON to w.
func (m *Model) Save(w io.Writer) error {
	snap := snapshot{
		Version: 1,
		Cfg: cfgSnap{
			Hidden: m.Cfg.Hidden, NoiseDim: m.Cfg.NoiseDim, ResNoise: m.Cfg.ResNoise,
			Lags: m.Cfg.Lags, BatchLen: m.Cfg.BatchLen, StepLen: m.Cfg.StepLen,
			MaxCells: m.Cfg.MaxCells, Lambda: m.Cfg.Lambda,
			AH: m.Cfg.AH, AC: m.Cfg.AC, DropoutP: m.Cfg.DropoutP,
			LoadAware: m.Cfg.LoadAware,
			NoResGen:  m.Cfg.NoResGen, NoSRNN: m.Cfg.NoSRNN, Seed: m.Cfg.Seed,
			Workers: m.Cfg.Workers,
		},
	}
	for _, ch := range m.Cfg.Channels {
		snap.Channels = append(snap.Channels, ch.Name)
	}
	for _, p := range m.allParams() {
		snap.Params = append(snap.Params, p.W)
	}
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a model saved with Save, reconstructing the architecture from
// the embedded config and restoring all weights.
func Load(r io.Reader) (*Model, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("core: load: unsupported version %d", snap.Version)
	}
	var chans []ChannelSpec
	for _, name := range snap.Channels {
		ch, err := ChannelByName(name)
		if err != nil {
			return nil, err
		}
		chans = append(chans, ch)
	}
	c := snap.Cfg
	m := NewModel(Config{
		Channels: chans,
		Hidden:   c.Hidden, NoiseDim: c.NoiseDim, ResNoise: c.ResNoise,
		Lags: c.Lags, BatchLen: c.BatchLen, StepLen: c.StepLen,
		MaxCells: c.MaxCells, Lambda: c.Lambda,
		AH: c.AH, AC: c.AC, DropoutP: c.DropoutP,
		LoadAware: c.LoadAware,
		NoResGen:  c.NoResGen, NoSRNN: c.NoSRNN, Seed: c.Seed,
		Workers: c.Workers,
	})
	params := m.allParams()
	if len(params) != len(snap.Params) {
		return nil, fmt.Errorf("core: load: parameter count mismatch (%d vs %d)",
			len(params), len(snap.Params))
	}
	for i, p := range params {
		if len(p.W) != len(snap.Params[i]) {
			return nil, fmt.Errorf("core: load: parameter %d size mismatch (%d vs %d)",
				i, len(p.W), len(snap.Params[i]))
		}
		copy(p.W, snap.Params[i])
	}
	return m, nil
}

// LoadFile reads a model from a file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	defer f.Close()
	return Load(f)
}
