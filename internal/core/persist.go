package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"gendt/internal/ckpt"
	"gendt/internal/nn"
	"gendt/internal/radio"
)

// ChannelByName reconstructs a ChannelSpec from its name. Supported names
// are the four radio KPIs plus "ServingRank". It is used when loading a
// persisted model, whose channel extractors cannot be serialized.
func ChannelByName(name string) (ChannelSpec, error) {
	for i, n := range radio.KPINames {
		if n == name {
			return KPIChannel(i), nil
		}
	}
	if name == "ServingRank" {
		return ServingRankChannel(), nil
	}
	return ChannelSpec{}, fmt.Errorf("core: unknown channel %q", name)
}

// snapshot is the serialized model format.
type snapshot struct {
	Version  int         `json:"version"`
	Channels []string    `json:"channels"`
	Cfg      cfgSnap     `json:"config"`
	Params   [][]float64 `json:"params"`
}

// cfgSnap persists the architecture-relevant config fields.
type cfgSnap struct {
	Hidden    int     `json:"hidden"`
	NoiseDim  int     `json:"noise_dim"`
	ResNoise  int     `json:"res_noise"`
	Lags      int     `json:"lags"`
	BatchLen  int     `json:"batch_len"`
	StepLen   int     `json:"step_len"`
	MaxCells  int     `json:"max_cells"`
	Lambda    float64 `json:"lambda"`
	AH        float64 `json:"ah"`
	AC        float64 `json:"ac"`
	DropoutP  float64 `json:"dropout_p"`
	LoadAware bool    `json:"load_aware"`
	NoResGen  bool    `json:"no_resgen"`
	NoSRNN    bool    `json:"no_srnn"`
	Seed      int64   `json:"seed"`
	Workers   int     `json:"workers,omitempty"`
	Precision string  `json:"precision,omitempty"`
}

// maxDim bounds every persisted size field. NewModel allocates O(dim²)
// memory from these, so a corrupt or hostile file must not be able to
// demand an absurd architecture (found by fuzzing: a negative or huge
// dimension panicked or OOMed the loader).
const maxDim = 1 << 16

// maxChannels bounds the channel list (there are only 5 nameable channels,
// but duplicates are legal).
const maxChannels = 64

// validate rejects config snapshots no real model could have produced.
func (c cfgSnap) validate(nChannels int) error {
	if nChannels < 1 || nChannels > maxChannels {
		return fmt.Errorf("core: load: %d channels (want 1..%d)", nChannels, maxChannels)
	}
	for _, d := range []struct {
		name string
		v    int
	}{
		{"hidden", c.Hidden}, {"noise_dim", c.NoiseDim}, {"res_noise", c.ResNoise},
		{"lags", c.Lags}, {"batch_len", c.BatchLen}, {"step_len", c.StepLen},
		{"max_cells", c.MaxCells}, {"workers", c.Workers},
	} {
		if d.v < 0 || d.v > maxDim {
			return fmt.Errorf("core: load: %s = %d out of range [0, %d]", d.name, d.v, maxDim)
		}
	}
	if c.DropoutP < 0 || c.DropoutP >= 1 {
		return fmt.Errorf("core: load: dropout_p = %v out of range [0, 1)", c.DropoutP)
	}
	if _, err := ParsePrecision(c.Precision); err != nil {
		return fmt.Errorf("core: load: %w", err)
	}
	return nil
}

// allParams returns generator plus discriminator parameters in a stable
// order.
func (m *Model) allParams() []*nn.Param {
	return append(m.genParams(), m.discParams()...)
}

// checksumTrailer is the integrity record appended after the payload line:
// a second JSON line carrying the CRC32 (IEEE) of the payload line's exact
// bytes (newline included). Readers verify it when present; files written
// before the trailer existed still load.
type checksumTrailer struct {
	CRC32 uint32 `json:"crc32"`
}

// appendChecksum appends the trailer line to a newline-terminated payload.
func appendChecksum(payload []byte) []byte {
	t, _ := json.Marshal(checksumTrailer{CRC32: crc32.ChecksumIEEE(payload)})
	out := make([]byte, 0, len(payload)+len(t)+1)
	out = append(out, payload...)
	out = append(out, t...)
	return append(out, '\n')
}

// splitChecksum separates a payload from its optional trailer and verifies
// the CRC when a trailer is present.
func splitChecksum(data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || nl == len(data)-1 {
		return data, nil // single line: no trailer (pre-checksum format)
	}
	payload, rest := data[:nl+1], data[nl+1:]
	var t checksumTrailer
	if err := json.Unmarshal(bytes.TrimSpace(rest), &t); err != nil {
		return nil, fmt.Errorf("core: load: malformed checksum trailer: %w", err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != t.CRC32 {
		return nil, fmt.Errorf("core: load: checksum mismatch (file %08x, computed %08x): truncated or corrupt model file", t.CRC32, crc)
	}
	return payload, nil
}

// Save writes the model (config + weights) as checksummed JSON to w: one
// payload line followed by a CRC32 trailer line that Load verifies.
func (m *Model) Save(w io.Writer) error {
	data, err := m.encodeSnapshot()
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// encodeSnapshot serializes the model to its on-disk byte format.
func (m *Model) encodeSnapshot() ([]byte, error) {
	snap := snapshot{
		Version: 1,
		Cfg: cfgSnap{
			Hidden: m.Cfg.Hidden, NoiseDim: m.Cfg.NoiseDim, ResNoise: m.Cfg.ResNoise,
			Lags: m.Cfg.Lags, BatchLen: m.Cfg.BatchLen, StepLen: m.Cfg.StepLen,
			MaxCells: m.Cfg.MaxCells, Lambda: m.Cfg.Lambda,
			AH: m.Cfg.AH, AC: m.Cfg.AC, DropoutP: m.Cfg.DropoutP,
			LoadAware: m.Cfg.LoadAware,
			NoResGen:  m.Cfg.NoResGen, NoSRNN: m.Cfg.NoSRNN, Seed: m.Cfg.Seed,
			Workers: m.Cfg.Workers, Precision: string(m.Cfg.Precision),
		},
	}
	for _, ch := range m.Cfg.Channels {
		snap.Channels = append(snap.Channels, ch.Name)
	}
	for _, p := range m.allParams() {
		snap.Params = append(snap.Params, p.W)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("core: save: %w", err)
	}
	return appendChecksum(append(payload, '\n')), nil
}

// SaveFile writes the model to a file atomically (temp file + fsync +
// rename), so a crash mid-save can never leave a torn model file at path —
// the file either keeps its previous content or holds the complete new
// model.
func (m *Model) SaveFile(path string) error {
	data, err := m.encodeSnapshot()
	if err != nil {
		return err
	}
	if err := ckpt.WriteFileAtomic(ckpt.OSFS{}, path, data); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// EncodeTrainState serializes a training checkpoint to the same
// checksummed line format as Save, so checkpoint payloads are
// self-verifying even outside a ckpt.Store manifest.
func EncodeTrainState(ts *TrainState) ([]byte, error) {
	payload, err := json.Marshal(ts)
	if err != nil {
		return nil, fmt.Errorf("core: encode train state: %w", err)
	}
	return appendChecksum(append(payload, '\n')), nil
}

// DecodeTrainState parses and validates a checkpoint written by
// EncodeTrainState.
func DecodeTrainState(data []byte) (*TrainState, error) {
	payload, err := splitChecksum(data)
	if err != nil {
		return nil, err
	}
	var ts TrainState
	if err := json.Unmarshal(payload, &ts); err != nil {
		return nil, fmt.Errorf("core: decode train state: %w", err)
	}
	if err := ts.validate(); err != nil {
		return nil, err
	}
	return &ts, nil
}

// formatProbe sniffs which on-disk format a payload line carries.
type formatProbe struct {
	Kind string `json:"kind"`
}

// Load reads a model saved with Save — or a training checkpoint written by
// EncodeTrainState, from which it reconstructs the model with the
// checkpointed weights. The optional CRC32 trailer is verified, and the
// embedded config is validated, so a truncated, bit-flipped, or hostile
// file returns an error rather than a broken model.
func Load(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	payload, err := splitChecksum(data)
	if err != nil {
		return nil, err
	}
	var probe formatProbe
	if err := json.Unmarshal(payload, &probe); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if probe.Kind == TrainStateKind {
		var ts TrainState
		if err := json.Unmarshal(payload, &ts); err != nil {
			return nil, fmt.Errorf("core: load: %w", err)
		}
		return NewModelFromTrainState(&ts)
	}

	var snap snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("core: load: unsupported version %d", snap.Version)
	}
	if err := snap.Cfg.validate(len(snap.Channels)); err != nil {
		return nil, err
	}
	var chans []ChannelSpec
	for _, name := range snap.Channels {
		ch, err := ChannelByName(name)
		if err != nil {
			return nil, err
		}
		chans = append(chans, ch)
	}
	c := snap.Cfg
	m := NewModel(Config{
		Channels: chans,
		Hidden:   c.Hidden, NoiseDim: c.NoiseDim, ResNoise: c.ResNoise,
		Lags: c.Lags, BatchLen: c.BatchLen, StepLen: c.StepLen,
		MaxCells: c.MaxCells, Lambda: c.Lambda,
		AH: c.AH, AC: c.AC, DropoutP: c.DropoutP,
		LoadAware: c.LoadAware,
		NoResGen:  c.NoResGen, NoSRNN: c.NoSRNN, Seed: c.Seed,
		Workers: c.Workers, Precision: Precision(c.Precision),
	})
	params := m.allParams()
	if len(params) != len(snap.Params) {
		return nil, fmt.Errorf("core: load: parameter count mismatch (%d vs %d)",
			len(params), len(snap.Params))
	}
	for i, p := range params {
		if len(p.W) != len(snap.Params[i]) {
			return nil, fmt.Errorf("core: load: parameter %d size mismatch (%d vs %d)",
				i, len(p.W), len(snap.Params[i]))
		}
		copy(p.W, snap.Params[i])
	}
	return m, nil
}

// LoadFile reads a model (or training checkpoint) from a file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	defer f.Close()
	return Load(f)
}
