package core

import (
	"fmt"
	"math/rand"
	"sync"

	"gendt/internal/nn"
)

// Precision identifies a generation backend: the live float64 model or a
// frozen float32 / int8 snapshot of it.
type Precision string

// The supported generation precisions.
const (
	PrecisionF64  Precision = "f64"
	PrecisionF32  Precision = "f32"
	PrecisionInt8 Precision = "int8"
)

// ParsePrecision parses a -precision flag value. The empty string means
// the default, f64.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", string(PrecisionF64):
		return PrecisionF64, nil
	case string(PrecisionF32):
		return PrecisionF32, nil
	case string(PrecisionInt8):
		return PrecisionInt8, nil
	}
	return "", fmt.Errorf("core: unknown precision %q (want f64, f32, or int8)", s)
}

// Generator is the read-only generation surface the serving and validation
// layers run against. Both *Model (the live f64 network) and *InferModel
// (a frozen f32/int8 snapshot) implement it. Every method is safe for
// concurrent use, and each generated series is a pure function of
// (weights, Seq, Seed) at the implementation's own precision — seed
// determinism is bit-exact per precision, never across precisions.
type Generator interface {
	// GenerateSeeded produces the normalized [T][nch] series for the
	// sequence, deterministically from the seed.
	GenerateSeeded(seq *Sequence, seed int64) [][]float64
	// GenerateJobs generates the denormalized [channel][t] series per job,
	// fanning out over the configured worker width.
	GenerateJobs(jobs []GenJob) [][][]float64
	// DenormalizeSeries converts a normalized [T][nch] series to physical
	// per-channel series, indexed [channel][t].
	DenormalizeSeries(norm [][]float64) [][]float64
	// ModelConfig returns the model configuration (channels, batch length,
	// preparation options, worker width).
	ModelConfig() Config
	// ParamCount reports the generator parameter count.
	ParamCount() int
	// Precision identifies the backend.
	Precision() Precision
	// Fingerprint hashes the (source) model weights; a frozen snapshot
	// reports its source model's fingerprint, pinning provenance.
	Fingerprint() uint64
	// WithWorkers returns a view of the same weights with the generation
	// fan-out width overridden (n <= 0 keeps the current width). The
	// returned Generator is only for the Generator interface paths; it
	// shares weights (and, for frozen models, state pools) with the
	// receiver.
	WithWorkers(n int) Generator
}

// GenerateSeeded implements Generator on the live model: a fresh clone
// seeded with seed, so the call is concurrency-safe and deterministic.
func (m *Model) GenerateSeeded(seq *Sequence, seed int64) [][]float64 {
	return m.Clone(seed).Generate(seq)
}

// ModelConfig implements Generator.
func (m *Model) ModelConfig() Config { return m.Cfg }

// Precision implements Generator: a live model is always float64.
func (m *Model) Precision() Precision { return PrecisionF64 }

// WithWorkers implements Generator. The shallow copy shares parameters and
// scratch with the receiver, which is safe for the clone-per-job Generator
// paths (GenerateSeeded, GenerateJobs) but NOT for receiver-mutating calls
// like Generate or Train — use only through the Generator interface.
func (m *Model) WithWorkers(n int) Generator {
	if n <= 0 || n == m.Cfg.Workers {
		return m
	}
	c := *m
	c.Cfg.Workers = n
	return &c
}

// Freeze snapshots the trained generator into an immutable InferModel
// running on the blocked inference kernels at the requested precision
// (f32 or int8 — f64 is the live model itself). The snapshot shares
// nothing mutable with the model: training can continue on the source
// while the frozen copy serves.
func (m *Model) Freeze(p Precision) (*InferModel, error) {
	switch p {
	case PrecisionF32, PrecisionInt8:
	case PrecisionF64:
		return nil, fmt.Errorf("core: Freeze: f64 is the live model; freeze to f32 or int8")
	default:
		return nil, fmt.Errorf("core: Freeze: unknown precision %q", p)
	}
	quant := p == PrecisionInt8
	im := &InferModel{
		Cfg:     m.Cfg,
		prec:    p,
		nch:     len(m.Cfg.Channels),
		nParams: m.ParamCount(),
		fp:      m.Fingerprint(),
		node:    nn.FreezeLSTM(m.node, quant),
		agg:     nn.FreezeLSTM(m.agg, quant),
		aggOut:  nn.FreezeLinear(m.aggOut, quant),
	}
	im.Cfg.Precision = p
	// Generation always runs with the stochastic layers active (Generate
	// calls SetNoise(true)); bake that in, honoring the NoSRNN ablation.
	im.node.Noise = !m.Cfg.NoSRNN
	im.agg.Noise = !m.Cfg.NoSRNN
	if m.res != nil {
		r, err := freezeRes(m.res, quant)
		if err != nil {
			return nil, err
		}
		im.res = r
	}
	im.scratchCols = im.maxCols()
	im.states = &sync.Pool{New: func() any { return im.newState() }}
	im.batches = &sync.Pool{New: func() any { return im.newBatch() }}
	return im, nil
}

// InferModel is a frozen, immutable inference snapshot of a trained model.
// Weights are shared by every generation; per-job recurrent state and
// scratch live in pooled inferStates, so the steady-state hot path
// allocates only the output rows (same allocation profile as the f64
// path). All methods are safe for concurrent use.
type InferModel struct {
	Cfg Config

	prec    Precision
	nch     int
	nParams int
	fp      uint64

	node   *nn.InferLSTM
	agg    *nn.InferLSTM
	aggOut *nn.FrozenDense
	res    *inferRes // nil under the NoResGen ablation

	scratchCols int
	// states pools inferState by pointer so WithWorkers' shallow copies
	// share one pool (sync.Pool must not be copied by value).
	states *sync.Pool
	// batches pools the lockstep micro-batch engines (batch.go); shared
	// across shallow copies for the same reason.
	batches *sync.Pool
	// noBatch forces GenerateJobs down the job-at-a-time path (the
	// -batch-gemm=false escape hatch). Outputs are bit-identical either
	// way; only the execution schedule differs.
	noBatch bool
}

// inferRes is the frozen ResGen: the body denses with their activation
// slopes, MC dropout, and the Gaussian head.
type inferRes struct {
	in, hidden, nch, lags, noiseDim int
	dropP                           float64
	stages                          []inferStage
	head                            *nn.FrozenDense
}

// inferStage is one body dense plus the LeakyReLU slope applied after it
// (0 = no activation).
type inferStage struct {
	d     *nn.FrozenDense
	alpha float32
}

// freezeRes snapshots a ResGen. The body walk is structural, so an
// architecture drift between ResGen and the freezer fails loudly here
// instead of silently generating garbage.
func freezeRes(r *ResGen, quant bool) (*inferRes, error) {
	fr := &inferRes{
		nch: r.nch, lags: r.lags, noiseDim: r.noiseDim,
		dropP: r.Dropout.P,
		head:  nn.FreezeLinear(r.head, quant),
	}
	for _, layer := range r.body.Layers {
		switch t := layer.(type) {
		case *nn.Linear:
			fr.stages = append(fr.stages, inferStage{d: nn.FreezeLinear(t, quant)})
		case *nn.LeakyReLU:
			if len(fr.stages) == 0 {
				return nil, fmt.Errorf("core: Freeze: ResGen body starts with an activation")
			}
			fr.stages[len(fr.stages)-1].alpha = float32(t.Alpha)
		default:
			return nil, fmt.Errorf("core: Freeze: unsupported ResGen body layer %T", layer)
		}
	}
	if len(fr.stages) == 0 {
		return nil, fmt.Errorf("core: Freeze: ResGen body has no dense layers")
	}
	fr.in = fr.stages[0].d.Cols
	fr.hidden = fr.head.Cols
	return fr, nil
}

// maxCols is the widest dense input among the non-LSTM frozen blocks (the
// LSTM states carry their own quantization scratch).
func (im *InferModel) maxCols() int {
	max := im.aggOut.Cols
	if im.res != nil {
		for _, sg := range im.res.stages {
			if sg.d.Cols > max {
				max = sg.d.Cols
			}
		}
		if im.res.head.Cols > max {
			max = im.res.head.Cols
		}
	}
	return max
}

// inferState is one generation job's recurrent state and scratch. States
// are pooled on the InferModel and fully re-initialized per job (RNG
// reseeded, LSTM states reset per batch), so reuse never leaks one job's
// randomness into another.
type inferState struct {
	src rand.Source64
	rng *rand.Rand

	node *nn.InferLSTMState
	agg  *nn.InferLSTMState

	hAvg   []float32 // [BatchLen*Hidden] arena of per-step node sums
	nCells []int
	row    []float32 // [nch] current output row (base + residual)
	head   []float32 // [2*nch] aggOut / res head output
	bufA   []float32 // res ping-pong buffers, width max(resIn, hidden)
	bufB   []float32
	lags   []float32 // [Lags*nch] res lag assembly
	xq     []int8    // int8 activation scratch for the non-LSTM denses
}

func (im *InferModel) newState() *inferState {
	cfg := im.Cfg
	src := newSource64(0)
	// Dense outputs land in kernel-width-padded buffers (pad8) so Apply
	// can always take the blocked column-major fast path; callers only
	// ever read the logical prefix.
	pad8 := func(n int) int { return (n + 7) &^ 7 }
	headW := pad8(2 * im.nch)
	if p := im.aggOut.PadRows; p > headW {
		headW = p
	}
	st := &inferState{
		src:    src,
		rng:    rand.New(src),
		node:   im.node.NewState(),
		agg:    im.agg.NewState(),
		hAvg:   make([]float32, cfg.BatchLen*cfg.Hidden),
		nCells: make([]int, cfg.BatchLen),
		row:    make([]float32, im.nch),
		head:   make([]float32, headW),
		xq:     make([]int8, im.scratchCols),
	}
	if im.res != nil {
		w := im.res.in
		if im.res.hidden > w {
			w = im.res.hidden
		}
		for _, sg := range im.res.stages {
			if sg.d.PadRows > w {
				w = sg.d.PadRows
			}
		}
		if p := im.res.head.PadRows; p > headW {
			// res head (2·nch rows) shares st.head with aggOut.
			headW = p
			st.head = make([]float32, headW)
		}
		st.bufA = make([]float32, w)
		st.bufB = make([]float32, w)
		st.lags = make([]float32, cfg.Lags*im.nch)
	}
	return st
}

// GenerateSeeded implements Generator: the frozen mirror of
// Model.GenerateSeeded, batch for batch. The output is bit-exact across
// repeated calls for the same (seq, seed) regardless of pooling or
// concurrency.
func (im *InferModel) GenerateSeeded(seq *Sequence, seed int64) [][]float64 {
	st := im.states.Get().(*inferState)
	st.src.Seed(seed)
	T := seq.Len()
	out := make([][]float64, 0, T)
	for lo := 0; lo < T; lo += im.Cfg.BatchLen {
		L := im.Cfg.BatchLen
		if lo+L > T {
			L = T - lo
		}
		out = append(out, im.forwardGen(st, seq, lo, L, out)...)
	}
	im.states.Put(st)
	return out
}

// forwardGen mirrors Model.forwardGen on the frozen kernels: per-slot node
// LSTM over the visible cells, mean-pooled into the aggregation LSTM and
// output head, plus the autoregressive Gaussian residual, with the same
// RNG draw schedule as the f64 path (noise dims, modulation, dropout,
// residual eps — in that order).
func (im *InferModel) forwardGen(st *inferState, seq *Sequence, lo, L int, teacher [][]float64) [][]float64 {
	cfg := im.Cfg
	nch := im.nch
	H := cfg.Hidden
	cellDim := cfg.CellDim()

	maxSlots := 0
	for t := 0; t < L; t++ {
		if n := len(seq.Cells[lo+t]); n > maxSlots {
			maxSlots = n
		}
	}
	if maxSlots == 0 {
		maxSlots = 1
	}
	hAvg := st.hAvg[:L*H]
	for i := range hAvg {
		hAvg[i] = 0
	}
	nCells := st.nCells[:L]
	for t := range nCells {
		nCells[t] = 0
	}
	for slot := 0; slot < maxSlots; slot++ {
		im.node.Reset(st.node)
		for t := 0; t < L; t++ {
			cellsAtT := seq.Cells[lo+t]
			in := st.node.Input(im.node.In)
			if slot < len(cellsAtT) {
				for k, v := range cellsAtT[slot] {
					in[k] = float32(v)
				}
			} else {
				for k := 0; k < cellDim; k++ {
					in[k] = 0
				}
			}
			for z := 0; z < cfg.NoiseDim; z++ {
				in[cellDim+z] = float32(0.1 * st.rng.NormFloat64())
			}
			h := im.node.Step(st.node, st.rng)
			if slot < len(cellsAtT) || (len(cellsAtT) == 0 && slot == 0) {
				sum := hAvg[t*H : (t+1)*H]
				for j, v := range h {
					sum[j] += v
				}
				nCells[t]++
			}
		}
	}

	// Output rows escape to the caller: one fresh backing block per batch.
	backing := make([]float64, L*nch)
	out := make([][]float64, L)
	im.agg.Reset(st.agg)
	for t := 0; t < L; t++ {
		avg := hAvg[t*H : (t+1)*H]
		if n := nCells[t]; n > 0 {
			for j := range avg {
				avg[j] /= float32(n)
			}
		}
		copy(st.agg.Input(H), avg)
		ha := im.agg.Step(st.agg, st.rng)
		im.aggOut.Apply(ha, st.head, st.xq)
		row := st.row
		copy(row, st.head[:nch])
		if im.res != nil {
			// Lags over the combined (teacher ++ out[:t]) history, exactly
			// as the f64 path assembles them; the stored values are
			// float32-rounded so the widen/narrow round-trip is lossless.
			lags := st.lags
			for i := range lags {
				lags[i] = 0
			}
			for l := 0; l < cfg.Lags; l++ {
				src := lo + t - cfg.Lags + l
				if src < 0 {
					continue
				}
				dst := lags[l*nch : (l+1)*nch]
				var from []float64
				if src < lo {
					if teacher == nil {
						continue
					}
					from = teacher[src]
				} else {
					from = out[src-lo]
				}
				for c := 0; c < nch; c++ {
					dst[c] = float32(from[c])
				}
			}
			im.res.forward(st, seq.Env[lo+t], row)
		}
		o := backing[t*nch : (t+1)*nch]
		for c := range row {
			o[c] = float64(clamp01f32(row[c]))
		}
		out[t] = o
	}
	return out
}

// forward computes one timestep's residual on the frozen kernels and adds
// the sampled, soft-bounded residual into row. It consumes the same RNG
// draws as ResGen.Forward: noiseDim normals, one uniform per dropout
// element, one normal per channel.
func (r *inferRes) forward(st *inferState, envCtx []float64, row []float32) {
	r.forwardLane(st.rng, st.bufA, st.bufB, st.lags, st.head, st.xq, envCtx, row)
}

// forwardLane is forward with the state unbundled, so the batched engine
// can run it per lane against its own buffers; one implementation serves
// both execution paths, which is what keeps them bit-identical by
// construction.
func (r *inferRes) forwardLane(rng *rand.Rand, bufA, bufB, lags, head []float32, xq []int8, envCtx []float64, row []float32) {
	x := bufA
	k := 0
	for _, v := range envCtx {
		x[k] = float32(v)
		k++
	}
	for i := 0; i < r.noiseDim; i++ {
		x[k] = float32(rng.NormFloat64())
		k++
	}
	copy(x[k:r.in], lags)
	cur, nxt := bufA, bufB
	for _, sg := range r.stages {
		sg.d.Apply(cur, nxt, xq)
		if sg.alpha != 0 {
			for i := 0; i < sg.d.Rows; i++ {
				if nxt[i] < 0 {
					nxt[i] *= sg.alpha
				}
			}
		}
		cur, nxt = nxt, cur
	}
	h := cur[:r.hidden]
	if r.dropP > 0 {
		// MC dropout stays active at generation time (paper §6.2.1).
		keep := 1 - r.dropP
		keep32 := float32(keep)
		for i := range h {
			if rng.Float64() < keep {
				h[i] /= keep32
			} else {
				h[i] = 0
			}
		}
	}
	r.head.Apply(h, head, xq)
	for c := 0; c < r.nch; c++ {
		mu := head[c]
		ls := head[r.nch+c]
		if ls < -6 {
			ls = -6
		} else if ls > 3 {
			ls = 3
		}
		eps := float32(rng.NormFloat64())
		raw := mu + nn.ExpF32(ls)*eps
		th := nn.TanhF32(raw / ResBound)
		row[c] += ResBound * th
	}
}

func clamp01f32(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// GenerateJobs implements Generator: no cloning — every job runs straight
// on the frozen weights, fanned out over Cfg.Workers. By default jobs run
// on the lockstep micro-batch engine (batch.go) in chunks of up to
// batchLanes, which amortizes weight bandwidth across the chunk; the
// noBatch escape hatch (WithBatch(false)) and singleton chunks take the
// job-at-a-time path. Both schedules produce bit-identical output per
// (seq, seed).
func (im *InferModel) GenerateJobs(jobs []GenJob) [][][]float64 {
	out := make([][][]float64, len(jobs))
	runOne := func(i int) {
		out[i] = im.DenormalizeSeries(im.GenerateSeeded(jobs[i].Seq, jobs[i].Seed))
	}
	if im.noBatch {
		W := im.Cfg.Workers
		if W > len(jobs) {
			W = len(jobs)
		}
		if W <= 1 {
			for i := range jobs {
				runOne(i)
			}
			return out
		}
		var wg sync.WaitGroup
		for w := 0; w < W; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(jobs); i += W {
					runOne(i)
				}
			}(w)
		}
		wg.Wait()
		return out
	}
	nChunks := (len(jobs) + batchLanes - 1) / batchLanes
	runChunk := func(ci int) {
		lo := ci * batchLanes
		hi := lo + batchLanes
		if hi > len(jobs) {
			hi = len(jobs)
		}
		if hi-lo == 1 {
			runOne(lo)
			return
		}
		im.generateBatch(jobs[lo:hi], out[lo:hi])
	}
	W := im.Cfg.Workers
	if W > nChunks {
		W = nChunks
	}
	if W <= 1 {
		for ci := 0; ci < nChunks; ci++ {
			runChunk(ci)
		}
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ci := w; ci < nChunks; ci += W {
				runChunk(ci)
			}
		}(w)
	}
	wg.Wait()
	return out
}

// DenormalizeSeries implements Generator.
func (im *InferModel) DenormalizeSeries(norm [][]float64) [][]float64 {
	return denormalizeSeries(im.Cfg.Channels, norm)
}

// ModelConfig implements Generator.
func (im *InferModel) ModelConfig() Config { return im.Cfg }

// ParamCount implements Generator (the source model's generator count).
func (im *InferModel) ParamCount() int { return im.nParams }

// Precision implements Generator.
func (im *InferModel) Precision() Precision { return im.prec }

// Fingerprint implements Generator: the source model's weight fingerprint.
func (im *InferModel) Fingerprint() uint64 { return im.fp }

// WithWorkers implements Generator; the copy shares weights and the state
// pool.
func (im *InferModel) WithWorkers(n int) Generator {
	if n <= 0 || n == im.Cfg.Workers {
		return im
	}
	c := *im
	c.Cfg.Workers = n
	return &c
}

// WithBatch returns a view of the same weights with the lockstep batched
// GenerateJobs engine enabled (the default) or disabled. The view shares
// weights and pools with the receiver; per-seed outputs are bit-identical
// on both settings.
func (im *InferModel) WithBatch(on bool) *InferModel {
	if im.noBatch == !on {
		return im
	}
	c := *im
	c.noBatch = !on
	return &c
}
