package core

import (
	"math/rand"
	"sort"

	"gendt/internal/nn"
)

// Batched lockstep generation: up to batchLanes same-model jobs step
// their frozen LSTMs together, so each layer-step runs ONE batched matmul
// (nn.GemmColF32 / MatVecInt8Batch) that streams the weights once for the
// whole micro-batch instead of once per sequence, and each gate
// activation runs as one vector call over the multi-lane plane.
//
// The per-seed bit-exactness contract survives batching because nothing
// that affects a lane's arithmetic changes:
//   - the batched kernels preserve the single-lane kernels' per-row
//     accumulation order exactly (see GemmColF32), so every matmul output
//     is bit-identical to the sequential call;
//   - every lane owns its RNG, so interleaving lanes cannot perturb a
//     lane's draw sequence, and the engine's phase order (node slots
//     outer / timesteps inner, then per-timestep agg + residual) walks
//     each lane's draws in exactly GenerateSeeded's order;
//   - retired lanes are frozen via active masks — their state is not
//     touched and their RNG draws nothing — rather than padded with work.
//
// Lanes are sorted by descending sequence length, which makes window- and
// timestep-level retirement a prefix shrink: the per-step batched matmul
// covers only still-live lanes, with masks needed only in the node phase
// (a lane's visible-cell slot count is not monotonic in lane order).

// batchLanes is the micro-batch width of the lockstep engine. Eight lanes
// amortize the weight stream well past the point of diminishing returns
// for the model sizes in play while keeping the per-engine scratch small;
// larger request batches run as consecutive chunks.
const batchLanes = 8

// batchLane is one job's private half of the engine: its RNG, its
// sequence, its accumulated output rows (also the lag history), and the
// per-lane scratch that has no batched equivalent.
type batchLane struct {
	src rand.Source64
	rng *rand.Rand
	seq *Sequence
	T   int

	out     [][]float64 // normalized rows generated so far
	backing []float64   // current window's output backing

	hAvg   []float32 // [BatchLen*Hidden] per-step node-state sums
	nCells []int
	row    []float32 // [nch] current output row
	bufA   []float32 // residual ping-pong buffers
	bufB   []float32
	lags   []float32 // [Lags*nch] residual lag assembly
	xq     []int8    // int8 activation scratch for per-lane denses
}

// inferBatch is a pooled lockstep engine: the shared batched LSTM states,
// the shared output-head plane, and batchLanes lanes.
type inferBatch struct {
	node *nn.InferLSTMBatchState
	agg  *nn.InferLSTMBatchState

	headW int
	head  []float32 // [batchLanes][headW] aggOut / residual-head plane
	sc    nn.BatchScratch

	lanes    [batchLanes]*batchLane
	order    []int  // job index per lane, descending by sequence length
	act      []bool // node-phase per-(slot,t) active mask
	maxSlots []int  // per-lane visible-cell slot count, current window
	winL     []int  // per-lane window length
	rngs     []*rand.Rand
}

func (im *InferModel) newBatch() *inferBatch {
	cfg := im.Cfg
	pad8 := func(n int) int { return (n + 7) &^ 7 }
	headW := pad8(2 * im.nch)
	if p := im.aggOut.PadRows; p > headW {
		headW = p
	}
	if im.res != nil {
		if p := im.res.head.PadRows; p > headW {
			headW = p
		}
	}
	eng := &inferBatch{
		node:     im.node.NewBatchState(batchLanes),
		agg:      im.agg.NewBatchState(batchLanes),
		headW:    headW,
		head:     make([]float32, batchLanes*headW),
		order:    make([]int, 0, batchLanes),
		act:      make([]bool, batchLanes),
		maxSlots: make([]int, batchLanes),
		winL:     make([]int, batchLanes),
		rngs:     make([]*rand.Rand, batchLanes),
	}
	for b := range eng.lanes {
		src := newSource64(0)
		ln := &batchLane{
			src:    src,
			rng:    rand.New(src),
			hAvg:   make([]float32, cfg.BatchLen*cfg.Hidden),
			nCells: make([]int, cfg.BatchLen),
			row:    make([]float32, im.nch),
			xq:     make([]int8, im.scratchCols),
		}
		if im.res != nil {
			w := im.res.in
			if im.res.hidden > w {
				w = im.res.hidden
			}
			for _, sg := range im.res.stages {
				if sg.d.PadRows > w {
					w = sg.d.PadRows
				}
			}
			ln.bufA = make([]float32, w)
			ln.bufB = make([]float32, w)
			ln.lags = make([]float32, cfg.Lags*im.nch)
		}
		eng.lanes[b] = ln
		eng.rngs[b] = ln.rng
	}
	return eng
}

// generateBatch runs len(jobs) (2..batchLanes) jobs in lockstep and
// writes each job's denormalized series into out at its own index. Every
// series is bit-identical to the sequential
// DenormalizeSeries(GenerateSeeded(seq, seed)) for that job.
func (im *InferModel) generateBatch(jobs []GenJob, out [][][]float64) {
	eng := im.batches.Get().(*inferBatch)
	nb := len(jobs)
	eng.order = eng.order[:0]
	for i := range jobs {
		eng.order = append(eng.order, i)
	}
	// Longest sequences first: lane retirement then only ever shrinks the
	// live prefix, so the per-step matmuls shrink with it.
	sort.SliceStable(eng.order, func(a, b int) bool {
		return jobs[eng.order[a]].Seq.Len() > jobs[eng.order[b]].Seq.Len()
	})
	Tmax := 0
	for b := 0; b < nb; b++ {
		j := jobs[eng.order[b]]
		ln := eng.lanes[b]
		ln.seq = j.Seq
		ln.T = j.Seq.Len()
		ln.src.Seed(j.Seed)
		ln.out = make([][]float64, 0, ln.T)
		if ln.T > Tmax {
			Tmax = ln.T
		}
	}
	for lo := 0; lo < Tmax; lo += im.Cfg.BatchLen {
		nbw := 0
		for nbw < nb && eng.lanes[nbw].T > lo {
			nbw++
		}
		if nbw == 0 {
			break
		}
		im.batchWindow(eng, nbw, lo)
	}
	for b, ji := range eng.order {
		ln := eng.lanes[b]
		out[ji] = im.DenormalizeSeries(ln.out)
		ln.seq, ln.out, ln.backing = nil, nil, nil
	}
	im.batches.Put(eng)
}

// batchWindow mirrors forwardGen for one BatchLen window across the nbw
// still-live lanes (a descending-length prefix, so per-lane window
// lengths are non-increasing in lane order).
func (im *InferModel) batchWindow(eng *inferBatch, nbw, lo int) {
	cfg := im.Cfg
	nch := im.nch
	H := cfg.Hidden
	cellDim := cfg.CellDim()

	Lw, slotsMax := 0, 0
	for b := 0; b < nbw; b++ {
		ln := eng.lanes[b]
		L := cfg.BatchLen
		if lo+L > ln.T {
			L = ln.T - lo
		}
		eng.winL[b] = L
		if L > Lw {
			Lw = L
		}
		ms := 0
		for t := 0; t < L; t++ {
			if n := len(ln.seq.Cells[lo+t]); n > ms {
				ms = n
			}
		}
		if ms == 0 {
			ms = 1
		}
		eng.maxSlots[b] = ms
		if ms > slotsMax {
			slotsMax = ms
		}
		hAvg := ln.hAvg[:L*H]
		for i := range hAvg {
			hAvg[i] = 0
		}
		nC := ln.nCells[:L]
		for t := range nC {
			nC[t] = 0
		}
	}

	// Node phase. Slot membership is NOT monotonic in lane order (a short
	// sequence can see more cells), so this is the one phase that needs
	// the per-(slot,t) active mask: masked lanes keep their state and
	// draw nothing — the batched matmul computes their (ignored) gates as
	// the price of staying dense.
	for slot := 0; slot < slotsMax; slot++ {
		last := -1
		for b := 0; b < nbw; b++ {
			if slot < eng.maxSlots[b] {
				eng.node.ResetLane(b)
				last = b
			}
		}
		for t := 0; t < Lw; t++ {
			hi := -1
			for b := 0; b <= last; b++ {
				a := slot < eng.maxSlots[b] && t < eng.winL[b]
				eng.act[b] = a
				if a {
					hi = b
				}
			}
			if hi < 0 {
				break // live set only shrinks with t within a slot
			}
			for b := 0; b <= hi; b++ {
				if !eng.act[b] {
					continue
				}
				ln := eng.lanes[b]
				cellsAtT := ln.seq.Cells[lo+t]
				in := eng.node.Input(b)
				if slot < len(cellsAtT) {
					for k, v := range cellsAtT[slot] {
						in[k] = float32(v)
					}
				} else {
					for k := 0; k < cellDim; k++ {
						in[k] = 0
					}
				}
				for z := 0; z < cfg.NoiseDim; z++ {
					in[cellDim+z] = float32(0.1 * ln.rng.NormFloat64())
				}
			}
			im.node.StepBatch(eng.node, hi+1, eng.act, eng.rngs)
			for b := 0; b <= hi; b++ {
				if !eng.act[b] {
					continue
				}
				ln := eng.lanes[b]
				cellsAtT := ln.seq.Cells[lo+t]
				if slot < len(cellsAtT) || (len(cellsAtT) == 0 && slot == 0) {
					sum := ln.hAvg[t*H : (t+1)*H]
					for j, v := range eng.node.H(b) {
						sum[j] += v
					}
					ln.nCells[t]++
				}
			}
		}
	}

	// Aggregation + residual phase. Retirement here is a pure prefix
	// shrink (window lengths are sorted), so no masks: each timestep's
	// batched agg step and output-head matmul cover exactly the live
	// lanes.
	for b := 0; b < nbw; b++ {
		eng.agg.ResetLane(b)
		eng.lanes[b].backing = make([]float64, eng.winL[b]*nch)
	}
	aggH, aggStride := eng.agg.HPlane()
	for t := 0; t < Lw; t++ {
		nbt := 0
		for nbt < nbw && eng.winL[nbt] > t {
			nbt++
		}
		if nbt == 0 {
			break
		}
		for b := 0; b < nbt; b++ {
			ln := eng.lanes[b]
			avg := ln.hAvg[t*H : (t+1)*H]
			if n := ln.nCells[t]; n > 0 {
				for j := range avg {
					avg[j] /= float32(n)
				}
			}
			copy(eng.agg.Input(b), avg)
		}
		im.agg.StepBatch(eng.agg, nbt, nil, eng.rngs)
		im.aggOut.ApplyBatch(aggH, aggStride, eng.head, eng.headW, nbt, &eng.sc)
		for b := 0; b < nbt; b++ {
			ln := eng.lanes[b]
			head := eng.head[b*eng.headW : (b+1)*eng.headW]
			row := ln.row
			copy(row, head[:nch])
			if im.res != nil {
				// ln.out already holds every row before lo+t, so the
				// teacher/window split of the sequential lag assembly
				// collapses to one absolute index.
				lags := ln.lags
				for i := range lags {
					lags[i] = 0
				}
				for l := 0; l < cfg.Lags; l++ {
					src := lo + t - cfg.Lags + l
					if src < 0 {
						continue
					}
					from := ln.out[src]
					dst := lags[l*nch : (l+1)*nch]
					for c := 0; c < nch; c++ {
						dst[c] = float32(from[c])
					}
				}
				im.res.forwardLane(ln.rng, ln.bufA, ln.bufB, lags, head, ln.xq, ln.seq.Env[lo+t], row)
			}
			o := ln.backing[t*nch : (t+1)*nch]
			for c := range row {
				o[c] = float64(clamp01f32(row[c]))
			}
			ln.out = append(ln.out, o)
		}
	}
}
