package core

import (
	"bytes"
	"testing"
)

// fuzzSeedModel builds small serialized fixtures (a model snapshot and a
// training checkpoint) for the Load fuzz corpus.
func fuzzSeedModel(f *testing.F) (snapshot, checkpoint []byte) {
	f.Helper()
	cfg := tinyConfig(StandardChannels())
	m := NewModel(cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	snapshot = buf.Bytes()
	ts := m.captureTrainState(0, 0, 0, nil, nil)
	var err error
	checkpoint, err = EncodeTrainState(ts)
	if err != nil {
		f.Fatal(err)
	}
	return snapshot, checkpoint
}

// FuzzLoad feeds Load arbitrary byte soup — truncations, bit flips, and
// hostile JSON included. The invariant under test: Load either succeeds or
// returns an error; it must never panic or allocate absurdly (the dimension
// caps in cfgSnap.validate are what the mutated-valid-file seeds probe).
func FuzzLoad(f *testing.F) {
	snapshot, checkpoint := fuzzSeedModel(f)
	f.Add(snapshot)
	f.Add(checkpoint)
	// Truncations of valid files (torn writes without the checksum layer).
	for _, src := range [][]byte{snapshot, checkpoint} {
		for _, frac := range []int{4, 2, 1} {
			n := len(src) * frac / 5
			f.Add(append([]byte(nil), src[:n]...))
		}
	}
	// Single-bit flips at a few offsets (silent corruption).
	for _, off := range []int{0, len(snapshot) / 3, len(snapshot) - 2} {
		flipped := append([]byte(nil), snapshot...)
		flipped[off] ^= 0x10
		f.Add(flipped)
	}
	// Structurally valid JSON with hostile values.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"train-state"}`))
	f.Add([]byte(`{"kind":"train-state","version":1,"channels":[],"config":{}}`))
	f.Add([]byte(`{"version":1,"channels":["RSRP"],"config":{"hidden":-1}}`))
	f.Add([]byte(`{"version":1,"channels":["RSRP"],"config":{"hidden":999999999}}`))
	f.Add([]byte(`{"crc32":0}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("Load returned nil model with nil error")
		}
	})
}

// TestLoadRejectsCorruption pins the concrete corruption modes the fuzz
// seeds exercise: every one must fail cleanly, and bit flips specifically
// must be caught by the checksum trailer.
func TestLoadRejectsCorruption(t *testing.T) {
	cfg := tinyConfig(StandardChannels())
	m := NewModel(cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid snapshot: %v", err)
	}
	// Note len(valid)-1 is excluded: it only drops the trailing newline,
	// leaving payload and trailer intact, so Load correctly accepts it.
	for _, n := range []int{0, 1, len(valid) / 2, len(valid) - 2} {
		if _, err := Load(bytes.NewReader(valid[:n])); err == nil {
			t.Errorf("truncation to %d bytes: want error", n)
		}
	}
	for off := 0; off < len(valid); off += len(valid)/17 + 1 {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x01
		if _, err := Load(bytes.NewReader(flipped)); err == nil {
			t.Errorf("bit flip at offset %d: want error", off)
		}
	}
}
