package core

import "math/rand"

// RNGState pins one model RNG stream for checkpointing: the seed it was
// created from and how many values have been drawn since. Restoring
// replays the stream from the seed, which is exact — the underlying
// math/rand source is a pure step function of (seed, draw count) — and
// cheap (a few ns per draw), so resume reproduces the stream position
// bit-for-bit without serializing private generator internals.
type RNGState struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// trackedSource wraps the stock math/rand source with a draw counter. It
// forwards every call unchanged, so the produced stream is bit-identical
// to rand.NewSource(seed) — the golden training fingerprints are
// unaffected — while making the stream position observable and
// restorable. One call to Int63 or Uint64 advances the underlying source
// by exactly one step, so a single counter covers both.
//
// Only source-driven draws are tracked: rand.Rand methods that buffer
// internally (Read) must not be used on a tracked stream. The model uses
// Float64/NormFloat64/Shuffle/Int63n only, all of which are stateless
// above the source.
type trackedSource struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// newTrackedSource seeds a fresh tracked stream.
func newTrackedSource(seed int64) *trackedSource {
	return &trackedSource{seed: seed, src: newSource64(seed)}
}

// newSource64 returns the stock source, asserting the Source64 fast path
// (rand.NewSource has returned a Source64 since Go 1.8; the assertion
// keeps rand.Rand on the same internal code path as before tracking).
func newSource64(seed int64) rand.Source64 {
	return rand.NewSource(seed).(rand.Source64)
}

func (t *trackedSource) Int63() int64 {
	t.draws++
	return t.src.Int63()
}

func (t *trackedSource) Uint64() uint64 {
	t.draws++
	return t.src.Uint64()
}

func (t *trackedSource) Seed(seed int64) {
	t.seed, t.draws = seed, 0
	t.src.Seed(seed)
}

// state snapshots the stream position.
func (t *trackedSource) state() RNGState {
	return RNGState{Seed: t.seed, Draws: t.draws}
}

// restore repositions the stream at s by replaying from the seed.
func (t *trackedSource) restore(s RNGState) {
	t.seed = s.Seed
	t.src = newSource64(s.Seed)
	for i := uint64(0); i < s.Draws; i++ {
		t.src.Uint64()
	}
	t.draws = s.Draws
}
