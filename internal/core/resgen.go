package core

import (
	"math"
	"math/rand"

	"gendt/internal/env"
	"gendt/internal/nn"
)

// ResGen is GenDT's residual generator G^r_θ (paper §4.3.2, Figure 7): a
// fully connected network conditioned on the environment context, input
// noise z_1, and the recent KPI values (making it autoregressive), ending
// in a dropout layer and a Gaussian head that parameterizes the residual
// distribution N(μ_θ,t, σ_θ,t) per channel. Keeping dropout active at
// generation time (MC dropout) exposes the variability of [μ_θ, σ_θ] as
// the model-uncertainty measure of §6.2.1.
type ResGen struct {
	nch, lags, noiseDim int

	body    *nn.MLP
	Dropout *nn.Dropout
	head    *nn.Linear // 2*nch outputs: per-channel (mu, logSigma)

	rng *rand.Rand

	// Pools for the per-timestep hot path. Input rows are recycled by
	// Backward/ClearCache; ResOut records only when explicitly recycled
	// (training Backward and the generation loop), because uncertainty
	// callers retain Mu/LogSigma past ClearCache.
	inFree, inUsed [][]float64
	roFree         []*ResOut
	dOutBuf        []float64
}

// NewResGen builds a ResGen for the config.
func NewResGen(cfg Config, rng *rand.Rand) *ResGen {
	nch := len(cfg.Channels)
	in := env.NumAttributes + cfg.ResNoise + cfg.Lags*nch
	hidden := cfg.Hidden
	r := &ResGen{
		nch: nch, lags: cfg.Lags, noiseDim: cfg.ResNoise,
		body: &nn.MLP{Layers: []nn.Layer{
			nn.NewLinear(in, hidden, rng),
			nn.NewLeakyReLU(0.1),
			nn.NewLinear(hidden, hidden, rng),
			nn.NewLeakyReLU(0.1),
			nn.NewLinear(hidden, hidden, rng),
			nn.NewLeakyReLU(0.1),
		}},
		Dropout: nn.NewDropout(cfg.DropoutP, rng),
		head:    nn.NewLinear(hidden, 2*nch, rng),
		rng:     rng,
	}
	// Bias the logSigma outputs low so early training is near-deterministic.
	for c := 0; c < nch; c++ {
		r.head.B.W[nch+c] = -2
	}
	return r
}

// Clone returns a ResGen with deep-copied parameters and empty caches,
// drawing its noise and dropout masks from rng.
func (r *ResGen) Clone(rng *rand.Rand) *ResGen {
	return &ResGen{
		nch: r.nch, lags: r.lags, noiseDim: r.noiseDim,
		body:    r.body.Clone(rng),
		Dropout: r.Dropout.Clone(rng),
		head:    r.head.Clone(),
		rng:     rng,
	}
}

// ResBound soft-limits the residual magnitude (normalized units): the
// residual models stochastic variation around the context-driven base
// series, not the trend itself, and an unbounded autoregressive residual
// compounds its own errors over long generated series (exposure bias).
const ResBound = 0.25

// ResOut is one timestep's residual sample with the cached quantities
// needed to backpropagate through the reparameterization.
type ResOut struct {
	Sample   []float64 // residual per channel (soft-bounded)
	Mu       []float64
	LogSigma []float64
	eps      []float64
	dBound   []float64 // derivative of the soft bound at the raw sample
}

// Forward computes the residual for one timestep. envCtx is the normalized
// environment context; lags are the most recent lags*nch KPI values
// (real during training — teacher forcing — and generated during
// generation), most recent last; missing history should be zero-padded by
// the caller.
func (r *ResGen) Forward(envCtx, lags []float64) *ResOut {
	var in []float64
	if n := len(r.inFree); n > 0 {
		in = r.inFree[n-1][:0]
		r.inFree = r.inFree[:n-1]
	} else {
		in = make([]float64, 0, len(envCtx)+r.noiseDim+len(lags))
	}
	in = append(in, envCtx...)
	for i := 0; i < r.noiseDim; i++ {
		in = append(in, r.rng.NormFloat64())
	}
	in = append(in, lags...)
	r.inUsed = append(r.inUsed, in)
	h := r.body.Forward(in)
	h = r.Dropout.Forward(h)
	out := r.head.Forward(h)
	ro := r.getOut()
	for c := 0; c < r.nch; c++ {
		ro.Mu[c] = out[c]
		ro.LogSigma[c] = out[r.nch+c]
		ro.eps[c] = r.rng.NormFloat64()
		raw := nn.GaussianSample(ro.Mu[c], ro.LogSigma[c], ro.eps[c])
		th := math.Tanh(raw / ResBound)
		ro.Sample[c] = ResBound * th
		ro.dBound[c] = 1 - th*th
	}
	return ro
}

// Backward backpropagates dSample (gradient on the residual sample, one
// per channel) for the most recent un-consumed Forward call, accumulating
// parameter gradients. Input gradients (env/noise/lags) are discarded:
// the lags are treated as constants (teacher forcing detaches them).
func (r *ResGen) Backward(ro *ResOut, dSample []float64) {
	if r.dOutBuf == nil {
		r.dOutBuf = make([]float64, 2*r.nch)
	}
	dOut := r.dOutBuf
	for c := 0; c < r.nch; c++ {
		dRaw := dSample[c] * ro.dBound[c]
		dMu, dLS := nn.GaussianSampleGrad(dRaw, ro.LogSigma[c], ro.eps[c])
		dOut[c] = dMu
		dOut[r.nch+c] = dLS
	}
	dh := r.head.Backward(dOut)
	dh = r.Dropout.Backward(dh)
	r.body.Backward(dh)
	// The input row cached for this Forward (LIFO) and the consumed output
	// record are both dead now.
	if n := len(r.inUsed); n > 0 {
		r.inFree = append(r.inFree, r.inUsed[n-1])
		r.inUsed = r.inUsed[:n-1]
	}
	r.recycle(ro)
}

// getOut pops a pooled output record or allocates one. Every field is
// overwritten by Forward, so no zeroing is needed.
func (r *ResGen) getOut() *ResOut {
	if n := len(r.roFree); n > 0 {
		ro := r.roFree[n-1]
		r.roFree = r.roFree[:n-1]
		return ro
	}
	return &ResOut{
		Sample:   make([]float64, r.nch),
		Mu:       make([]float64, r.nch),
		LogSigma: make([]float64, r.nch),
		eps:      make([]float64, r.nch),
		dBound:   make([]float64, r.nch),
	}
}

// recycle returns an output record to the pool. Callers that retain
// Mu/LogSigma (the uncertainty measures) simply never recycle.
func (r *ResGen) recycle(ro *ResOut) { r.roFree = append(r.roFree, ro) }

// Params returns the learnable parameters.
func (r *ResGen) Params() []*nn.Param {
	ps := r.body.Params()
	ps = append(ps, r.head.Params()...)
	return ps
}

// ClearCache drops cached activations (generation mode).
func (r *ResGen) ClearCache() {
	r.body.ClearCache()
	r.Dropout.ClearCache()
	r.head.ClearCache()
	r.inFree = append(r.inFree, r.inUsed...)
	r.inUsed = r.inUsed[:0]
}

// BuildLags assembles the lag vector for timestep t from a [T][nch] series,
// zero-padding before the sequence start.
func BuildLags(series [][]float64, t, lags, nch int) []float64 {
	return BuildLagsInto(make([]float64, lags*nch), series, t, lags, nch)
}

// BuildLagsInto is BuildLags writing into a caller-provided buffer of
// length lags*nch (the hot paths reuse one buffer across timesteps).
func BuildLagsInto(out []float64, series [][]float64, t, lags, nch int) []float64 {
	for i := range out {
		out[i] = 0
	}
	for l := 0; l < lags; l++ {
		src := t - lags + l
		if src < 0 {
			continue
		}
		copy(out[l*nch:(l+1)*nch], series[src])
	}
	return out
}
