package core

import (
	"bytes"
	"strings"
	"testing"

	"gendt/internal/dataset"
	"gendt/internal/radio"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := dataset.NewDatasetA(dataset.Spec{Seed: 91, Scale: 0.015})
	chans := RSRPRSRQChannels()
	seqs := PrepareAll(d.TrainRuns(), chans, 6)
	m := NewModel(tinyConfig(chans))
	m.Train(seqs, nil)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// All weights must match exactly.
	a, b := m.allParams(), m2.allParams()
	if len(a) != len(b) {
		t.Fatalf("param groups %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i].W {
			if a[i].W[j] != b[i].W[j] {
				t.Fatalf("weight mismatch at %d/%d", i, j)
			}
		}
	}
	// Loaded model generates with the same shapes and physical ranges.
	test := PrepareSequence(d.TestRuns()[0], chans, 6)
	gen := m2.Generate(test)
	if len(gen) != test.Len() {
		t.Fatalf("loaded model generated %d steps", len(gen))
	}
}

func TestSaveLoadFile(t *testing.T) {
	chans := []ChannelSpec{KPIChannel(radio.KPIRSRP), ServingRankChannel()}
	m := NewModel(tinyConfig(chans))
	path := t.TempDir() + "/model.json"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Cfg.Channels) != 2 || m2.Cfg.Channels[1].Name != "ServingRank" {
		t.Errorf("channels not restored: %+v", m2.Cfg.Channels)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":9,"channels":["RSRP"]}`)); err == nil {
		t.Error("unknown version should fail")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"channels":["Nope"],"config":{"hidden":4},"params":[]}`)); err == nil {
		t.Error("unknown channel should fail")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestChannelByName(t *testing.T) {
	for _, name := range []string{"RSRP", "RSRQ", "SINR", "CQI", "ServingRank"} {
		ch, err := ChannelByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ch.Name != name {
			t.Errorf("name %s -> %s", name, ch.Name)
		}
	}
	if _, err := ChannelByName("bogus"); err == nil {
		t.Error("bogus channel should error")
	}
}

func TestSaveLoadLoadAwareModel(t *testing.T) {
	chans := RSRPRSRQChannels()
	cfg := tinyConfig(chans)
	cfg.LoadAware = true
	m := NewModel(cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Cfg.LoadAware {
		t.Fatal("LoadAware flag not persisted")
	}
	if m2.Cfg.CellDim() != NumCellAttrs+1 {
		t.Fatalf("loaded CellDim = %d", m2.Cfg.CellDim())
	}
}
