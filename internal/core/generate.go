package core

import "sync"

// Generate synthesizes the normalized KPI series for a prepared (unseen)
// trajectory sequence. Generation runs in non-overlapping batches of
// length L (Δt = L, paper §4.3.3); within a batch the LSTMs capture the
// short-term temporal correlations, while long-term correlation across
// batch boundaries is carried by ResGen's autoregressive lags over the
// generated history — the paper's two-subtask decomposition of long-series
// generation. The returned series has the sequence's full length and is in
// normalized [0,1] units; use DenormalizeSeries for physical units.
func (m *Model) Generate(seq *Sequence) [][]float64 {
	return m.generate(seq, true)
}

// GenerateIndependent generates each batch independently (autoregressive
// lags cleared at every batch boundary, so nothing crosses it) — the
// "stitching independently generated short trajectories" strawman of the
// paper's Table 8/Figure 10. batchLen overrides the model's batch length
// when positive.
func (m *Model) GenerateIndependent(seq *Sequence, batchLen int) [][]float64 {
	saved := m.Cfg.BatchLen
	// Restore via defer: a panic mid-generation must not leave the model
	// with a mutated batch length.
	defer func() { m.Cfg.BatchLen = saved }()
	if batchLen > 0 {
		m.Cfg.BatchLen = batchLen
	}
	return m.generate(seq, false)
}

func (m *Model) generate(seq *Sequence, carryLags bool) [][]float64 {
	cfg := m.Cfg
	T := seq.Len()
	m.SetNoise(true)
	if m.res != nil {
		// Statistical variation at generation time comes from the noise
		// inputs and the sampled Gaussian residual; MC dropout stays on as
		// in training (paper §6.2.1 uses generation-time dropout).
		m.res.Dropout.Active = true
	}
	out := make([][]float64, 0, T)

	for lo := 0; lo < T; lo += cfg.BatchLen {
		L := cfg.BatchLen
		if lo+L > T {
			L = T - lo
		}
		teacher := out
		if !carryLags {
			// Independent batches: no history crosses the boundary.
			teacher = nil
		}
		out = append(out, m.forwardGen(seq, lo, L, teacher)...)
	}
	return out
}

// forwardGen mirrors forward but discards backward caches and returns
// freshly allocated output rows (they escape into the generated series).
// LSTM state is reset at each batch, matching the training regime (windows
// always start from zero state). teacher is the generated history before
// lo used for ResGen lags; nil means independent batches (zero history).
func (m *Model) forwardGen(seq *Sequence, lo, L int, teacher [][]float64) [][]float64 {
	cfg := m.Cfg
	nch := len(cfg.Channels)

	maxSlots := 0
	for t := 0; t < L; t++ {
		if n := len(seq.Cells[lo+t]); n > maxSlots {
			maxSlots = n
		}
	}
	if maxSlots == 0 {
		maxSlots = 1
	}
	// Per-step mean node embedding, accumulated in slot order. The sums
	// must fold in during the slot loop: Step outputs are pooled buffers
	// that ClearCache recycles at the end of each slot pass.
	hAvg := rows(m.fc.hAvg, &m.hAvgArena, L, cfg.Hidden)
	m.fc.hAvg = hAvg
	nCells := m.fc.nCells
	if cap(nCells) < L {
		nCells = make([]int, L)
	}
	nCells = nCells[:L]
	m.fc.nCells = nCells
	for t := range nCells {
		nCells[t] = 0
	}
	if m.zeroCell == nil {
		m.zeroCell = make([]float64, cfg.CellDim())
	}
	for slot := 0; slot < maxSlots; slot++ {
		m.node.ResetState()
		for t := 0; t < L; t++ {
			cellsAtT := seq.Cells[lo+t]
			attrs := m.zeroCell
			if slot < len(cellsAtT) {
				attrs = cellsAtT[slot]
			}
			in := append(m.inBuf[:0], attrs...)
			for z := 0; z < cfg.NoiseDim; z++ {
				in = append(in, 0.1*m.rng.NormFloat64())
			}
			m.inBuf = in
			h := m.node.Step(in)
			if slot < len(cellsAtT) || (len(cellsAtT) == 0 && slot == 0) {
				sum := hAvg[t]
				for j, v := range h {
					sum[j] += v
				}
				nCells[t]++
			}
		}
		m.node.ClearCache()
	}

	// Output rows escape to the caller: one fresh backing block per batch.
	backing := make([]float64, L*nch)
	out := make([][]float64, L)
	if len(m.lagBuf) != cfg.Lags*nch {
		m.lagBuf = make([]float64, cfg.Lags*nch)
	}
	m.agg.ResetState()
	for t := 0; t < L; t++ {
		avg := hAvg[t]
		if n := nCells[t]; n > 0 {
			for j := range avg {
				avg[j] /= float64(n)
			}
		}
		ha := m.agg.Step(avg)
		base := m.aggOut.Forward(ha)
		o := backing[t*nch : (t+1)*nch]
		copy(o, base)
		if m.res != nil {
			// Lags over the combined (teacher ++ out[:t]) history, read in
			// place: absolute source index src < lo comes from the teacher
			// series, src >= lo from this batch's own output.
			lags := m.lagBuf
			for i := range lags {
				lags[i] = 0
			}
			for l := 0; l < cfg.Lags; l++ {
				src := lo + t - cfg.Lags + l
				if src < 0 {
					continue
				}
				dst := lags[l*nch : (l+1)*nch]
				if src < lo {
					if teacher != nil {
						copy(dst, teacher[src])
					}
				} else {
					copy(dst, out[src-lo])
				}
			}
			ro := m.res.Forward(seq.Env[lo+t], lags)
			for c := 0; c < nch; c++ {
				o[c] += ro.Sample[c]
			}
			m.res.ClearCache()
			m.res.recycle(ro)
		}
		for c := range o {
			o[c] = clamp01(o[c])
		}
		out[t] = o
	}
	m.agg.ClearCache()
	m.aggOut.ClearCache()
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// DenormalizeSeries converts a generated normalized [T][nch] series to
// physical per-channel series, indexed [channel][t].
func (m *Model) DenormalizeSeries(norm [][]float64) [][]float64 {
	return denormalizeSeries(m.Cfg.Channels, norm)
}

// denormalizeSeries is DenormalizeSeries shared between the live model and
// the frozen InferModel.
func denormalizeSeries(channels []ChannelSpec, norm [][]float64) [][]float64 {
	nch := len(channels)
	out := make([][]float64, nch)
	for c := 0; c < nch; c++ {
		out[c] = make([]float64, len(norm))
		for t := range norm {
			out[c][t] = channels[c].Denormalize(norm[t][c])
		}
	}
	return out
}

// fanOut runs n independent generation-side work items across the model's
// worker pool. Each item gets a deterministic seed drawn upfront from the
// primary RNG and a fresh model clone, so the set of outputs depends only
// on the model state and seed — not on Workers or goroutine scheduling.
// With Workers <= 1 (or a single item) the items instead run serially on
// the model itself, preserving the original single-RNG-stream behaviour.
func (m *Model) fanOut(n int, serial func(i int), parallelItem func(rep *Model, i int)) {
	W := m.Cfg.Workers
	if W > n {
		W = n
	}
	if W <= 1 {
		for i := 0; i < n; i++ {
			serial(i)
		}
		return
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = m.rng.Int63()
	}
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += W {
				rep := m.Clone(seeds[i])
				parallelItem(rep, i)
			}
		}(w)
	}
	wg.Wait()
}

// DeriveSeed deterministically derives the i-th child seed from a base
// seed (the same splitmix64 separation the worker pool uses). Serving-side
// sample fan-out uses it so that a request's i-th sample is a pure function
// of (request seed, i).
func DeriveSeed(seed int64, i int) int64 { return workerSeed(seed, i) }

// GenJob is one seeded generation work item for GenerateJobs: a prepared
// sequence plus the RNG seed its sample is drawn with.
type GenJob struct {
	Seq  *Sequence
	Seed int64
}

// GenerateJobs generates the denormalized [channel][t] series for each job
// on a fresh model clone seeded with the job's own seed, running up to
// Cfg.Workers jobs concurrently. Each output depends only on the model
// parameters and the job's (Seq, Seed) — not on the batch composition, the
// worker count, or goroutine scheduling — so a serving layer can coalesce
// arbitrary concurrent requests into one call and still return bit-identical
// results per request. Unlike Generate, it does not mutate the receiver:
// as long as the model's parameters are not concurrently written (e.g. by
// Train), GenerateJobs is safe to call from multiple goroutines at once.
func (m *Model) GenerateJobs(jobs []GenJob) [][][]float64 {
	out := make([][][]float64, len(jobs))
	run := func(i int) {
		rep := m.Clone(jobs[i].Seed)
		out[i] = rep.DenormalizeSeries(rep.Generate(jobs[i].Seq))
	}
	W := m.Cfg.Workers
	if W > len(jobs) {
		W = len(jobs)
	}
	if W <= 1 {
		for i := range jobs {
			run(i)
		}
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(jobs); i += W {
				run(i)
			}
		}(w)
	}
	wg.Wait()
	return out
}

// GenerateAll generates the normalized series for every sequence, fanning
// the sequences out across Cfg.Workers parallel model clones. With
// Workers <= 1 it is equivalent to calling Generate on each sequence in
// order.
func (m *Model) GenerateAll(seqs []*Sequence) [][][]float64 {
	out := make([][][]float64, len(seqs))
	m.fanOut(len(seqs),
		func(i int) { out[i] = m.Generate(seqs[i]) },
		func(rep *Model, i int) { out[i] = rep.Generate(seqs[i]) })
	return out
}

// GenerateN draws n independent generation samples for the sequence and
// returns them denormalized as [n][channel][t] — the basis for the
// min/max envelopes of the paper's Figure 9. The samples are drawn across
// Cfg.Workers parallel model clones.
func (m *Model) GenerateN(seq *Sequence, n int) [][][]float64 {
	out := make([][][]float64, n)
	m.fanOut(n,
		func(i int) { out[i] = m.DenormalizeSeries(m.Generate(seq)) },
		func(rep *Model, i int) { out[i] = rep.DenormalizeSeries(rep.Generate(seq)) })
	return out
}

// Envelope reduces GenerateN samples to per-channel (min, max, mean)
// series.
func Envelope(samples [][][]float64) (min, max, mean [][]float64) {
	if len(samples) == 0 {
		return nil, nil, nil
	}
	nch := len(samples[0])
	T := len(samples[0][0])
	min = alloc2(nch, T)
	max = alloc2(nch, T)
	mean = alloc2(nch, T)
	for c := 0; c < nch; c++ {
		for t := 0; t < T; t++ {
			lo, hi, sum := samples[0][c][t], samples[0][c][t], 0.0
			for _, s := range samples {
				v := s[c][t]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				sum += v
			}
			min[c][t], max[c][t], mean[c][t] = lo, hi, sum/float64(len(samples))
		}
	}
	return min, max, mean
}

func alloc2(a, b int) [][]float64 {
	out := make([][]float64, a)
	for i := range out {
		out[i] = make([]float64, b)
	}
	return out
}
