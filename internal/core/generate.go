package core

// Generate synthesizes the normalized KPI series for a prepared (unseen)
// trajectory sequence. Generation runs in non-overlapping batches of
// length L (Δt = L, paper §4.3.3); within a batch the LSTMs capture the
// short-term temporal correlations, while long-term correlation across
// batch boundaries is carried by ResGen's autoregressive lags over the
// generated history — the paper's two-subtask decomposition of long-series
// generation. The returned series has the sequence's full length and is in
// normalized [0,1] units; use DenormalizeSeries for physical units.
func (m *Model) Generate(seq *Sequence) [][]float64 {
	return m.generate(seq, true)
}

// GenerateIndependent generates each batch independently (autoregressive
// lags cleared at every batch boundary, so nothing crosses it) — the
// "stitching independently generated short trajectories" strawman of the
// paper's Table 8/Figure 10. batchLen overrides the model's batch length
// when positive.
func (m *Model) GenerateIndependent(seq *Sequence, batchLen int) [][]float64 {
	saved := m.Cfg.BatchLen
	if batchLen > 0 {
		m.Cfg.BatchLen = batchLen
	}
	out := m.generate(seq, false)
	m.Cfg.BatchLen = saved
	return out
}

func (m *Model) generate(seq *Sequence, carryLags bool) [][]float64 {
	cfg := m.Cfg
	nch := len(cfg.Channels)
	T := seq.Len()
	m.SetNoise(true)
	if m.res != nil {
		// Statistical variation at generation time comes from the noise
		// inputs and the sampled Gaussian residual; MC dropout stays on as
		// in training (paper §6.2.1 uses generation-time dropout).
		m.res.Dropout.Active = true
	}
	out := make([][]float64, 0, T)
	gen := make([][]float64, 0, T) // autoregressive history for lags

	for lo := 0; lo < T; lo += cfg.BatchLen {
		L := cfg.BatchLen
		if lo+L > T {
			L = T - lo
		}
		teacher := gen
		if !carryLags {
			// Independent batches: no history crosses the boundary.
			teacher = padHistory(gen, nch)
		}
		fc := m.forwardGen(seq, lo, L, teacher)
		for t := 0; t < L; t++ {
			out = append(out, fc.out[t])
			gen = append(gen, fc.out[t])
		}
	}
	return out
}

// padHistory returns a zeroed history of the same length, so independent
// batches see no cross-boundary lags.
func padHistory(gen [][]float64, nch int) [][]float64 {
	out := make([][]float64, len(gen))
	for i := range out {
		out[i] = make([]float64, nch)
	}
	return out
}

// forwardGen mirrors forward but discards backward caches. LSTM state is
// reset at each batch, matching the training regime (windows always start
// from zero state).
func (m *Model) forwardGen(seq *Sequence, lo, L int, teacher [][]float64) *forwardCache {
	cfg := m.Cfg
	nch := len(cfg.Channels)
	fc := &forwardCache{L: L, nch: nch}

	maxSlots := 0
	for t := 0; t < L; t++ {
		if n := len(seq.Cells[lo+t]); n > maxSlots {
			maxSlots = n
		}
	}
	if maxSlots == 0 {
		maxSlots = 1
	}
	hPerStep := make([][][]float64, L)
	fc.nCells = make([]int, L)
	for slot := 0; slot < maxSlots; slot++ {
		m.node.ResetState()
		for t := 0; t < L; t++ {
			cellsAtT := seq.Cells[lo+t]
			var attrs []float64
			if slot < len(cellsAtT) {
				attrs = cellsAtT[slot]
			} else {
				attrs = make([]float64, cfg.CellDim())
			}
			in := make([]float64, 0, cfg.CellDim()+cfg.NoiseDim)
			in = append(in, attrs...)
			for z := 0; z < cfg.NoiseDim; z++ {
				in = append(in, 0.1*m.rng.NormFloat64())
			}
			h := m.node.Step(in)
			if slot < len(cellsAtT) || (len(cellsAtT) == 0 && slot == 0) {
				hPerStep[t] = append(hPerStep[t], h)
			}
		}
		m.node.ClearCache()
	}

	fc.hAvg = make([][]float64, L)
	fc.base = make([][]float64, L)
	fc.out = make([][]float64, L)
	m.agg.ResetState()
	for t := 0; t < L; t++ {
		avg := make([]float64, cfg.Hidden)
		n := len(hPerStep[t])
		fc.nCells[t] = n
		if n > 0 {
			for _, h := range hPerStep[t] {
				for j, v := range h {
					avg[j] += v
				}
			}
			for j := range avg {
				avg[j] /= float64(n)
			}
		}
		fc.hAvg[t] = avg
		ha := m.agg.Step(avg)
		fc.base[t] = m.aggOut.Forward(ha)
		out := append([]float64(nil), fc.base[t]...)
		if m.res != nil {
			history := make([][]float64, 0, lo+t)
			history = append(history, teacher...)
			history = append(history, fc.out[:t]...)
			lags := BuildLags(history, lo+t, cfg.Lags, nch)
			ro := m.res.Forward(seq.Env[lo+t], lags)
			for c := 0; c < nch; c++ {
				out[c] += ro.Sample[c]
			}
			m.res.ClearCache()
		}
		for c := range out {
			out[c] = clamp01(out[c])
		}
		fc.out[t] = out
	}
	m.agg.ClearCache()
	m.aggOut.ClearCache()
	return fc
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// DenormalizeSeries converts a generated normalized [T][nch] series to
// physical per-channel series, indexed [channel][t].
func (m *Model) DenormalizeSeries(norm [][]float64) [][]float64 {
	nch := len(m.Cfg.Channels)
	out := make([][]float64, nch)
	for c := 0; c < nch; c++ {
		out[c] = make([]float64, len(norm))
		for t := range norm {
			out[c][t] = m.Cfg.Channels[c].Denormalize(norm[t][c])
		}
	}
	return out
}

// GenerateN draws n independent generation samples for the sequence and
// returns them denormalized as [n][channel][t] — the basis for the
// min/max envelopes of the paper's Figure 9.
func (m *Model) GenerateN(seq *Sequence, n int) [][][]float64 {
	out := make([][][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.DenormalizeSeries(m.Generate(seq))
	}
	return out
}

// Envelope reduces GenerateN samples to per-channel (min, max, mean)
// series.
func Envelope(samples [][][]float64) (min, max, mean [][]float64) {
	if len(samples) == 0 {
		return nil, nil, nil
	}
	nch := len(samples[0])
	T := len(samples[0][0])
	min = alloc2(nch, T)
	max = alloc2(nch, T)
	mean = alloc2(nch, T)
	for c := 0; c < nch; c++ {
		for t := 0; t < T; t++ {
			lo, hi, sum := samples[0][c][t], samples[0][c][t], 0.0
			for _, s := range samples {
				v := s[c][t]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				sum += v
			}
			min[c][t], max[c][t], mean[c][t] = lo, hi, sum/float64(len(samples))
		}
	}
	return min, max, mean
}

func alloc2(a, b int) [][]float64 {
	out := make([][]float64, a)
	for i := range out {
		out[i] = make([]float64, b)
	}
	return out
}
