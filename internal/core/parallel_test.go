package core

import (
	"hash/fnv"
	"math"
	"testing"

	"gendt/internal/dataset"
)

// paramFingerprint hashes every trained weight (FNV-64a over the IEEE-754
// bits, in the stable allParams order), so two models compare bit-for-bit.
func paramFingerprint(m *Model) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range m.allParams() {
		for _, w := range p.W {
			bits := math.Float64bits(w)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func trainTiny(t *testing.T, workers int) (*Model, TrainResult, []*Sequence) {
	t.Helper()
	d := dataset.NewDatasetA(tinyData)
	chans := StandardChannels()
	cfg := tinyConfig(chans)
	cfg.Workers = workers
	seqs := PrepareAll(d.TrainRuns(), chans, cfg.MaxCells)
	m := NewModel(cfg)
	res := m.Train(seqs, nil)
	return m, res, seqs
}

// TestSerialTrainGolden pins the Workers=1 training loop to the exact
// result of the original (pre-data-parallel) serial implementation. The
// constants below were captured from that implementation on this test
// fixture; any drift means the serial path is no longer bit-identical.
func TestSerialTrainGolden(t *testing.T) {
	m, res, _ := trainTiny(t, 1)
	const (
		wantFP      = uint64(0x3b8bee12abd514f)
		wantWindows = 45
		wantMSE     = 0.06277261227316246
		wantDLoss   = 1.3729425336730128
	)
	if res.Windows != wantWindows {
		t.Errorf("windows = %d, want %d", res.Windows, wantWindows)
	}
	if res.FinalMSE != wantMSE {
		t.Errorf("FinalMSE = %v, want %v (must be bit-identical)", res.FinalMSE, wantMSE)
	}
	if res.FinalDLoss != wantDLoss {
		t.Errorf("FinalDLoss = %v, want %v (must be bit-identical)", res.FinalDLoss, wantDLoss)
	}
	if fp := paramFingerprint(m); fp != wantFP {
		t.Errorf("param fingerprint = %#x, want %#x (must be bit-identical)", fp, wantFP)
	}
}

// TestParallelTrainReproducible checks that the data-parallel engine is
// deterministic: two independent Workers=3 runs from the same seed agree
// bit-for-bit on weights and losses.
func TestParallelTrainReproducible(t *testing.T) {
	m1, r1, _ := trainTiny(t, 3)
	m2, r2, _ := trainTiny(t, 3)
	if r1 != r2 {
		t.Errorf("TrainResult differs across runs: %+v vs %+v", r1, r2)
	}
	fp1, fp2 := paramFingerprint(m1), paramFingerprint(m2)
	if fp1 != fp2 {
		t.Errorf("param fingerprint differs across runs: %#x vs %#x", fp1, fp2)
	}
	if r1.FinalMSE <= 0 || math.IsNaN(r1.FinalMSE) {
		t.Errorf("parallel FinalMSE = %v, want finite positive", r1.FinalMSE)
	}
}

// TestParallelTrainLearns checks the parallel engine actually optimizes:
// final training MSE should land in the same ballpark as the serial loop
// (it differs numerically — mini-batch of W vs per-window steps — but a
// broken reduction would blow this bound immediately).
func TestParallelTrainLearns(t *testing.T) {
	_, rs, _ := trainTiny(t, 1)
	_, rp, _ := trainTiny(t, 3)
	if rp.FinalMSE > 4*rs.FinalMSE {
		t.Errorf("parallel FinalMSE %v far worse than serial %v", rp.FinalMSE, rs.FinalMSE)
	}
}

// TestCloneIndependence checks Clone is a deep copy: mutating the clone's
// weights or stepping its optimizer must not affect the original.
func TestCloneIndependence(t *testing.T) {
	m, _, seqs := trainTiny(t, 1)
	fp := paramFingerprint(m)
	c := m.Clone(123)
	if paramFingerprint(c) != fp {
		t.Fatal("clone does not start with identical weights")
	}
	for _, p := range c.allParams() {
		for i := range p.W {
			p.W[i] += 1
		}
	}
	if paramFingerprint(m) != fp {
		t.Error("mutating clone weights changed the original")
	}
	// The clone must be usable standalone (fresh caches, own RNG).
	out := c.Generate(seqs[0])
	if len(out) != seqs[0].Len() {
		t.Errorf("clone Generate length = %d, want %d", len(out), seqs[0].Len())
	}
}

// TestGenerateAllDeterministicAcrossWorkers checks the parallel inference
// fan-out: for any Workers >= 2 the outputs depend only on the model state
// (seeds are pre-drawn per item), so Workers=2 and Workers=3 must produce
// identical series, and both must be reproducible run-to-run.
func TestGenerateAllDeterministicAcrossWorkers(t *testing.T) {
	gen := func(workers int) [][][]float64 {
		m, _, seqs := trainTiny(t, 1)
		m.Cfg.Workers = workers
		return m.GenerateAll(seqs)
	}
	a, b, c := gen(2), gen(2), gen(3)
	if len(a) == 0 {
		t.Fatal("no sequences generated")
	}
	for i := range a {
		for tt := range a[i] {
			for ch := range a[i][tt] {
				if a[i][tt][ch] != b[i][tt][ch] {
					t.Fatalf("run-to-run mismatch at seq %d t %d ch %d", i, tt, ch)
				}
				if a[i][tt][ch] != c[i][tt][ch] {
					t.Fatalf("Workers=2 vs Workers=3 mismatch at seq %d t %d ch %d", i, tt, ch)
				}
			}
		}
	}
}

// TestPrepareAllParallelMatchesSerial checks the parallel PrepareAll
// produces the same sequences as serial per-run preparation.
func TestPrepareAllParallelMatchesSerial(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := StandardChannels()
	runs := d.TrainRuns()
	got := PrepareAll(runs, chans, 6)
	for i, r := range runs {
		want := PrepareSequence(r, chans, 6)
		if got[i].Len() != want.Len() {
			t.Fatalf("seq %d length %d != %d", i, got[i].Len(), want.Len())
		}
		for tt := 0; tt < want.Len(); tt++ {
			for ch := range want.KPIs[tt] {
				if got[i].KPIs[tt][ch] != want.KPIs[tt][ch] {
					t.Fatalf("seq %d KPI mismatch at t %d ch %d", i, tt, ch)
				}
			}
		}
	}
}

// TestParallelUncertaintySmoke checks the parallel MC-dropout fan-out
// yields a finite positive, run-to-run reproducible uncertainty.
func TestParallelUncertaintySmoke(t *testing.T) {
	u := func() float64 {
		m, _, seqs := trainTiny(t, 1)
		m.Cfg.Workers = 3
		return m.ModelUncertainty(seqs[0], 4)
	}
	u1, u2 := u(), u()
	if !(u1 > 0) || math.IsInf(u1, 0) || math.IsNaN(u1) {
		t.Fatalf("ModelUncertainty = %v, want finite positive", u1)
	}
	if u1 != u2 {
		t.Errorf("parallel ModelUncertainty not reproducible: %v vs %v", u1, u2)
	}
}
