package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gendt/internal/dataset"
)

func bytesReader(data []byte) io.Reader { return bytes.NewReader(data) }

// identityOrder builds a valid window permutation for direct
// captureTrainState calls in tests that never replay an epoch.
func identityOrder(m *Model, seqs []*Sequence) []int {
	ord := make([]int, len(m.windows(seqs)))
	for i := range ord {
		ord[i] = i
	}
	return ord
}

// trainStraight runs an uninterrupted training of `epochs` epochs and
// returns the model and result.
func trainStraight(t *testing.T, workers, epochs int) (*Model, TrainResult, []*Sequence) {
	t.Helper()
	d := dataset.NewDatasetA(tinyData)
	chans := StandardChannels()
	cfg := tinyConfig(chans)
	cfg.Workers = workers
	cfg.Epochs = epochs
	seqs := PrepareAll(d.TrainRuns(), chans, cfg.MaxCells)
	m := NewModel(cfg)
	res, err := m.TrainWithOptions(seqs, TrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return m, res, seqs
}

// interruptAt trains the same fixture but stops after `stop` epochs,
// returning the checkpoint captured there — round-tripped through the
// serialized byte format, so the test proves the *persisted* checkpoint
// carries everything resume needs.
func interruptAt(t *testing.T, workers, epochs, stop int) (*TrainState, []*Sequence) {
	t.Helper()
	d := dataset.NewDatasetA(tinyData)
	chans := StandardChannels()
	cfg := tinyConfig(chans)
	cfg.Workers = workers
	cfg.Epochs = epochs
	seqs := PrepareAll(d.TrainRuns(), chans, cfg.MaxCells)
	m := NewModel(cfg)
	var captured *TrainState
	_, err := m.TrainWithOptions(seqs, TrainOpts{
		AfterEpoch: func(ev EpochEvent) error {
			if ev.Epoch == stop {
				captured = ev.State()
				return ErrStopTraining
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatalf("hook never fired at epoch %d", stop)
	}
	data, err := EncodeTrainState(captured)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := DecodeTrainState(data)
	if err != nil {
		t.Fatal(err)
	}
	return ts, seqs
}

// resumeFingerprintTest is the golden bit-exactness check: interrupt at
// epoch `stop`, resume a fresh model from the serialized checkpoint, and
// require the final weights and losses to match the uninterrupted run
// bit-for-bit.
func resumeFingerprintTest(t *testing.T, workers int) {
	t.Helper()
	const epochs, stop = 4, 2
	straight, wantRes, _ := trainStraight(t, workers, epochs)
	wantFP := straight.Fingerprint()

	ts, seqs := interruptAt(t, workers, epochs, stop)
	if ts.Epoch != stop {
		t.Fatalf("checkpoint epoch = %d, want %d", ts.Epoch, stop)
	}
	cfg, err := ts.ModelConfig()
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewModel(cfg)
	res, err := resumed.TrainWithOptions(seqs, TrainOpts{Resume: ts})
	if err != nil {
		t.Fatal(err)
	}
	if fp := resumed.Fingerprint(); fp != wantFP {
		t.Errorf("resumed fingerprint = %#x, want %#x (must be bit-identical)", fp, wantFP)
	}
	if res.FinalMSE != wantRes.FinalMSE || res.FinalDLoss != wantRes.FinalDLoss {
		t.Errorf("resumed result = %+v, want %+v (must be bit-identical)", res, wantRes)
	}
}

func TestResumeBitIdenticalSerial(t *testing.T) { resumeFingerprintTest(t, 1) }

func TestResumeBitIdenticalWorkers4(t *testing.T) { resumeFingerprintTest(t, 4) }

// TestResumePastEndIsNoop resumes a checkpoint whose epoch equals the
// configured total: no epochs run, and the weights equal the checkpoint's.
func TestResumePastEndIsNoop(t *testing.T) {
	const epochs = 2
	straight, wantRes, seqs := trainStraight(t, 1, epochs)
	wantFP := straight.Fingerprint()
	ts := straight.captureTrainState(epochs, wantRes.FinalMSE, wantRes.FinalDLoss, nil, identityOrder(straight, seqs))

	cfg, err := ts.ModelConfig()
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewModel(cfg)
	res, err := resumed.TrainWithOptions(seqs, TrainOpts{Resume: ts})
	if err != nil {
		t.Fatal(err)
	}
	if fp := resumed.Fingerprint(); fp != wantFP {
		t.Errorf("fingerprint = %#x, want %#x", fp, wantFP)
	}
	if res.FinalMSE != wantRes.FinalMSE {
		t.Errorf("FinalMSE = %v, want checkpointed %v", res.FinalMSE, wantRes.FinalMSE)
	}
}

// TestResumeWorkerMismatchFails checks the guard rails: a parallel
// checkpoint cannot silently resume serial (or with a different worker
// count), and an architecture mismatch is rejected.
func TestResumeWorkerMismatchFails(t *testing.T) {
	ts, seqs := interruptAt(t, 3, 4, 1)
	cfg, err := ts.ModelConfig()
	if err != nil {
		t.Fatal(err)
	}

	cfgSerial := cfg
	cfgSerial.Workers = 1
	if _, err := NewModel(cfgSerial).TrainWithOptions(seqs, TrainOpts{Resume: ts}); err == nil {
		t.Error("serial resume of a 3-worker checkpoint should fail")
	}
	cfgTwo := cfg
	cfgTwo.Workers = 2
	if _, err := NewModel(cfgTwo).TrainWithOptions(seqs, TrainOpts{Resume: ts}); err == nil {
		t.Error("2-worker resume of a 3-worker checkpoint should fail")
	}

	cfgBig := cfg
	cfgBig.Hidden = cfg.Hidden + 2
	if _, err := NewModel(cfgBig).TrainWithOptions(seqs, TrainOpts{Resume: ts}); err == nil {
		t.Error("resume into a different architecture should fail")
	}
}

// TestAfterEpochHookErrorAborts checks a non-sentinel hook error surfaces.
func TestAfterEpochHookErrorAborts(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := StandardChannels()
	cfg := tinyConfig(chans)
	seqs := PrepareAll(d.TrainRuns(), chans, cfg.MaxCells)
	boom := errors.New("disk full")
	_, err := NewModel(cfg).TrainWithOptions(seqs, TrainOpts{
		AfterEpoch: func(EpochEvent) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the hook's error", err)
	}
}

// TestTrainStateLoadsAsModel checks a serialized checkpoint doubles as a
// servable model file: core.Load reconstructs a model whose weights equal
// the checkpointed ones.
func TestTrainStateLoadsAsModel(t *testing.T) {
	m, res, seqs := trainStraight(t, 1, 2)
	ts := m.captureTrainState(2, res.FinalMSE, res.FinalDLoss, nil, identityOrder(m, seqs))
	data, err := EncodeTrainState(ts)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytesReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != m.Fingerprint() {
		t.Error("checkpoint-loaded model weights differ from the trained model")
	}
}
