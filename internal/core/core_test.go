package core

import (
	"math"
	"testing"

	"gendt/internal/dataset"
	"gendt/internal/env"
	"gendt/internal/metrics"
	"gendt/internal/radio"
)

// tinyConfig is sized for fast unit tests.
func tinyConfig(chans []ChannelSpec) Config {
	return Config{
		Channels: chans,
		Hidden:   10, NoiseDim: 2, ResNoise: 2, Lags: 2,
		BatchLen: 12, StepLen: 6, MaxCells: 6,
		Epochs: 2, LR: 3e-3, Seed: 1,
		Workers: 1, // serial: unit tests assert exact serial-loop behaviour
	}
}

var tinyData = dataset.Spec{Seed: 11, Scale: 0.015}

func TestChannelSpecRoundTrip(t *testing.T) {
	ch := KPIChannel(radio.KPIRSRP)
	for _, v := range []float64{-140, -100, -44} {
		n := ch.Normalize(v)
		if n < 0 || n > 1 {
			t.Errorf("Normalize(%v) = %v", v, n)
		}
		if back := ch.Denormalize(n); math.Abs(back-v) > 1e-9 {
			t.Errorf("round trip %v -> %v", v, back)
		}
	}
	if ch.Normalize(-200) != 0 || ch.Normalize(0) != 1 {
		t.Error("out-of-range values must clamp")
	}
}

func TestStandardChannelSets(t *testing.T) {
	if got := len(StandardChannels()); got != 4 {
		t.Errorf("StandardChannels = %d, want 4", got)
	}
	if got := len(RSRPRSRQChannels()); got != 2 {
		t.Errorf("RSRPRSRQChannels = %d, want 2", got)
	}
}

func TestPrepareSequenceShapes(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	run := d.TrainRuns()[0]
	seq := PrepareSequence(run, StandardChannels(), 6)
	if seq.Len() != len(run.Meas) {
		t.Fatalf("sequence length %d != %d measurements", seq.Len(), len(run.Meas))
	}
	for t2 := 0; t2 < seq.Len(); t2++ {
		if len(seq.KPIs[t2]) != 4 {
			t.Fatalf("KPIs[%d] has %d channels", t2, len(seq.KPIs[t2]))
		}
		for _, v := range seq.KPIs[t2] {
			if v < 0 || v > 1 {
				t.Fatalf("normalized KPI %v out of [0,1]", v)
			}
		}
		if len(seq.Cells[t2]) > 6 {
			t.Fatalf("maxCells not applied: %d cells", len(seq.Cells[t2]))
		}
		for _, cc := range seq.Cells[t2] {
			if len(cc) != NumCellAttrs {
				t.Fatalf("cell attrs = %d, want %d", len(cc), NumCellAttrs)
			}
		}
		if len(seq.Env[t2]) != env.NumAttributes {
			t.Fatalf("env attrs = %d", len(seq.Env[t2]))
		}
	}
}

func TestServingRankChannel(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	run := d.TrainRuns()[0]
	ch := ServingRankChannel()
	for i := range run.Meas {
		v := ch.Extract(&run.Meas[i])
		if v < 0 || v > MaxServingRank {
			t.Fatalf("serving rank %v out of bounds", v)
		}
	}
}

func TestBuildLags(t *testing.T) {
	series := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	got := BuildLags(series, 2, 2, 2)
	want := []float64{1, 10, 2, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lags = %v, want %v", got, want)
		}
	}
	// At t=0 everything is padding.
	got = BuildLags(series, 0, 2, 2)
	for _, v := range got {
		if v != 0 {
			t.Fatalf("t=0 lags should be zero, got %v", got)
		}
	}
	// Partial padding at t=1.
	got = BuildLags(series, 1, 2, 2)
	if got[0] != 0 || got[1] != 0 || got[2] != 1 || got[3] != 10 {
		t.Fatalf("t=1 lags = %v", got)
	}
}

func TestNewModelDefaultsAndAblations(t *testing.T) {
	m := NewModel(Config{Channels: RSRPRSRQChannels()})
	if m.Cfg.Hidden == 0 || m.Cfg.BatchLen == 0 {
		t.Error("defaults not applied")
	}
	if m.res == nil {
		t.Error("full model must have ResGen")
	}
	ab := NewModel(Config{Channels: RSRPRSRQChannels(), NoResGen: true, NoSRNN: true, NoBatch: true})
	if ab.res != nil {
		t.Error("NoResGen model still has ResGen")
	}
	if ab.Cfg.AH != 0 || ab.Cfg.AC != 0 {
		t.Error("NoSRNN should zero noise intensities")
	}
	if ab.Cfg.StepLen != ab.Cfg.BatchLen {
		t.Error("NoBatch should force stride = L")
	}
	if m.ParamCount() == 0 {
		t.Error("ParamCount = 0")
	}
}

func TestModelPanicsWithoutChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty channels")
		}
	}()
	NewModel(Config{})
}

func TestTrainReducesMSE(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	seqs := PrepareAll(d.TrainRuns(), chans, 6)
	cfg := tinyConfig(chans)
	cfg.Epochs = 1
	m := NewModel(cfg)
	first := m.Train(seqs, nil)
	cfg2 := tinyConfig(chans)
	cfg2.Epochs = 6
	m2 := NewModel(cfg2)
	final := m2.Train(seqs, nil)
	if final.Windows == 0 {
		t.Fatal("no training windows")
	}
	if final.FinalMSE >= first.FinalMSE {
		t.Errorf("training did not reduce MSE: epoch1 %v -> epoch6 %v", first.FinalMSE, final.FinalMSE)
	}
	if math.IsNaN(final.FinalMSE) {
		t.Fatal("training diverged to NaN")
	}
}

func TestGenerateShapesAndBounds(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	seqs := PrepareAll(d.TrainRuns(), chans, 6)
	m := NewModel(tinyConfig(chans))
	m.Train(seqs, nil)
	test := PrepareSequence(d.TestRuns()[0], chans, 6)
	gen := m.Generate(test)
	if len(gen) != test.Len() {
		t.Fatalf("generated %d steps for %d-sample sequence", len(gen), test.Len())
	}
	for _, row := range gen {
		for _, v := range row {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("generated value %v out of bounds", v)
			}
		}
	}
	phys := m.DenormalizeSeries(gen)
	if len(phys) != 2 || len(phys[0]) != test.Len() {
		t.Fatalf("denormalized shape [%d][%d]", len(phys), len(phys[0]))
	}
	for _, v := range phys[0] {
		if v < radio.RSRPMin || v > radio.RSRPMax {
			t.Fatalf("denormalized RSRP %v out of physical range", v)
		}
	}
}

func TestGenerateIsStochastic(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	seqs := PrepareAll(d.TrainRuns(), chans, 6)
	m := NewModel(tinyConfig(chans))
	m.Train(seqs, nil)
	test := PrepareSequence(d.TestRuns()[0], chans, 6)
	a := m.Generate(test)
	b := m.Generate(test)
	diff := 0.0
	for t2 := range a {
		for c := range a[t2] {
			diff += math.Abs(a[t2][c] - b[t2][c])
		}
	}
	if diff == 0 {
		t.Error("two generations were identical; stochasticity missing")
	}
}

func TestGenerateTracksRealBetterThanConstant(t *testing.T) {
	// After training, generated RSRP should track unseen test series in the
	// ballpark of an oracle per-run constant-mean predictor (a strong
	// floor: it knows each test run's own mean). Averaged over all test
	// runs to damp per-route luck.
	d := dataset.NewDatasetA(dataset.Spec{Seed: 21, Scale: 0.04})
	chans := []ChannelSpec{KPIChannel(radio.KPIRSRP)}
	seqs := PrepareAll(d.TrainRuns(), chans, 8)
	cfg := tinyConfig(chans)
	cfg.Epochs = 30
	cfg.Hidden = 24
	cfg.StepLen = 4
	m := NewModel(cfg)
	m.Train(seqs, nil)
	var maeGen, maeConst float64
	for _, run := range d.TestRuns() {
		test := PrepareSequence(run, chans, 8)
		gen := m.DenormalizeSeries(m.Generate(test))[0]
		real := make([]float64, test.Len())
		for i := range real {
			real[i] = chans[0].Denormalize(test.KPIs[i][0])
		}
		mg, _ := metrics.MAE(real, gen)
		mean := metrics.Mean(real)
		constant := make([]float64, len(real))
		for i := range constant {
			constant[i] = mean
		}
		mc, _ := metrics.MAE(real, constant)
		maeGen += mg
		maeConst += mc
	}
	// The oracle knows each run's own mean, which no generator can; the
	// guard catches tracking collapse (historically ~2.8x when generation
	// state handling or ResGen autoregression were broken).
	n := float64(len(d.TestRuns()))
	if maeGen > 2.0*maeConst {
		t.Errorf("generated MAE %v far worse than oracle constant baseline %v", maeGen/n, maeConst/n)
	}
}

func TestGenerateIndependentDiffersFromCarried(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	seqs := PrepareAll(d.TrainRuns(), chans, 6)
	m := NewModel(tinyConfig(chans))
	m.Train(seqs, nil)
	test := PrepareSequence(d.TestRuns()[0], chans, 6)
	carried := m.Generate(test)
	indep := m.GenerateIndependent(test, 8)
	if len(carried) != len(indep) {
		t.Fatalf("length mismatch %d vs %d", len(carried), len(indep))
	}
	diff := 0.0
	for t2 := range carried {
		for c := range carried[t2] {
			diff += math.Abs(carried[t2][c] - indep[t2][c])
		}
	}
	if diff == 0 {
		t.Error("independent generation identical to carried-state generation")
	}
}

func TestModelUncertaintyPositiveAndFinite(t *testing.T) {
	// The §6.2.1 uncertainty measure must be positive (MC dropout produces
	// parameter variability) and finite; its *relative* ordering across
	// candidate subsets is exercised by the Figure 11 experiment, where it
	// is compared within a single trained model, which is how the paper
	// uses it.
	d := dataset.NewDatasetA(dataset.Spec{Seed: 31, Scale: 0.04})
	chans := []ChannelSpec{KPIChannel(radio.KPIRSRP)}
	all := PrepareAll(d.TrainRuns(), chans, 6)
	test := PrepareSequence(d.TestRuns()[0], chans, 6)

	cfg := tinyConfig(chans)
	cfg.Epochs = 3
	m := NewModel(cfg)
	m.Train(all, nil)
	u := m.ModelUncertainty(test, 4)
	if u <= 0 || math.IsNaN(u) || math.IsInf(u, 0) {
		t.Fatalf("model uncertainty = %v, want positive finite", u)
	}
	u2 := m.ModelUncertainty(test, 4)
	if u2 <= 0 {
		t.Fatalf("second evaluation = %v", u2)
	}
	// MC sampling: evaluations differ but stay on the same scale.
	if u2 > 10*u || u > 10*u2 {
		t.Errorf("uncertainty evaluations wildly inconsistent: %v vs %v", u, u2)
	}
}

func TestDataUncertaintyPositive(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	seqs := PrepareAll(d.TrainRuns(), chans, 6)
	m := NewModel(tinyConfig(chans))
	m.Train(seqs, nil)
	test := PrepareSequence(d.TestRuns()[0], chans, 6)
	if u := m.DataUncertainty(test); u <= 0 {
		t.Errorf("data uncertainty = %v, want > 0", u)
	}
}

func TestEnvelope(t *testing.T) {
	samples := [][][]float64{
		{{1, 2}, {10, 20}},
		{{3, 0}, {30, 10}},
	}
	min, max, mean := Envelope(samples)
	if min[0][0] != 1 || max[0][0] != 3 || mean[0][0] != 2 {
		t.Errorf("envelope ch0 t0: %v %v %v", min[0][0], max[0][0], mean[0][0])
	}
	if min[1][1] != 10 || max[1][1] != 20 || mean[1][1] != 15 {
		t.Errorf("envelope ch1 t1: %v %v %v", min[1][1], max[1][1], mean[1][1])
	}
	a, b, c := Envelope(nil)
	if a != nil || b != nil || c != nil {
		t.Error("empty envelope should be nil")
	}
}

func TestAblationModelsTrain(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := []ChannelSpec{KPIChannel(radio.KPIRSRP)}
	seqs := PrepareAll(d.TrainRuns(), chans, 6)
	test := PrepareSequence(d.TestRuns()[0], chans, 6)
	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"NoResGen", func(c *Config) { c.NoResGen = true }},
		{"NoSRNN", func(c *Config) { c.NoSRNN = true }},
		{"NoGANLoss", func(c *Config) { c.NoGANLoss = true }},
		{"NoBatch", func(c *Config) { c.NoBatch = true }},
	} {
		cfg := tinyConfig(chans)
		tc.mod(&cfg)
		m := NewModel(cfg)
		res := m.Train(seqs, nil)
		if math.IsNaN(res.FinalMSE) {
			t.Errorf("%s: training diverged", tc.name)
		}
		gen := m.Generate(test)
		if len(gen) != test.Len() {
			t.Errorf("%s: bad generation length", tc.name)
		}
	}
}

func TestNormalizeEnvBounded(t *testing.T) {
	raw := make([]float64, env.NumAttributes)
	for i := range raw {
		raw[i] = float64(i * 3)
	}
	out := NormalizeEnv(raw)
	for i, v := range out {
		if i >= env.NumLandUse && (v < 0 || v >= 1) {
			t.Errorf("PoI attr %d normalized to %v", i, v)
		}
	}
}

func TestLoadAwarePreparationAndModel(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	prep := PrepareOptions{MaxCells: 6, LoadAware: true}
	var train []*Sequence
	for _, r := range d.TrainRuns() {
		train = append(train, PrepareSequenceWith(r, chans, prep))
	}
	// Load-aware sequences carry a sixth attribute in [0,1].
	for _, s := range train[:1] {
		for t2 := 0; t2 < s.Len(); t2++ {
			for _, cc := range s.Cells[t2] {
				if len(cc) != NumCellAttrs+1 {
					t.Fatalf("load-aware cell attrs = %d, want %d", len(cc), NumCellAttrs+1)
				}
				load := cc[NumCellAttrs]
				if load < 0 || load > 1 {
					t.Fatalf("load attribute %v out of [0,1]", load)
				}
			}
		}
	}
	cfg := tinyConfig(chans)
	cfg.LoadAware = true
	m := NewModel(cfg)
	if m.Cfg.CellDim() != NumCellAttrs+1 {
		t.Fatalf("CellDim = %d", m.Cfg.CellDim())
	}
	res := m.Train(train, nil)
	if math.IsNaN(res.FinalMSE) {
		t.Fatal("load-aware training diverged")
	}
	test := PrepareSequenceWith(d.TestRuns()[0], chans, prep)
	gen := m.Generate(test)
	if len(gen) != test.Len() {
		t.Fatalf("generated %d steps", len(gen))
	}
}

func TestLoadAwareDimensionMismatchPanics(t *testing.T) {
	d := dataset.NewDatasetA(tinyData)
	chans := RSRPRSRQChannels()
	// Load-aware model fed open-loop sequences must fail loudly, not
	// silently misbehave.
	cfg := tinyConfig(chans)
	cfg.LoadAware = true
	m := NewModel(cfg)
	seqs := PrepareAll(d.TrainRuns(), chans, 6)
	defer func() {
		if recover() == nil {
			t.Error("expected dimension-mismatch panic")
		}
	}()
	m.Train(seqs, nil)
}
