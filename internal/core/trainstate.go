package core

import (
	"fmt"
	"hash/fnv"
	"math"
)

// TrainStateKind tags serialized TrainState JSON so core.Load can tell a
// checkpoint from a plain model snapshot.
const TrainStateKind = "train-state"

// trainCfgSnap extends the persisted architecture config with every field
// the training loop itself consumes, so a resumed run reconstructs the
// exact optimization problem (loss weights, schedule, parallelism) the
// checkpoint was taken under.
type trainCfgSnap struct {
	cfgSnap
	Epochs    int     `json:"epochs"`
	LR        float64 `json:"lr"`
	DiscLR    float64 `json:"disc_lr"`
	ClipNorm  float64 `json:"clip_norm"`
	LagNoise  float64 `json:"lag_noise"`
	NoGANLoss bool    `json:"no_gan_loss,omitempty"`
	NoBatch   bool    `json:"no_batch,omitempty"`
}

// TrainState is a complete, resumable snapshot of a training run at an
// epoch boundary: weights, Adam moments and step counters, and the exact
// position of every RNG stream (the primary model's plus one per worker
// replica when training data-parallel). Resuming from it is bit-identical
// to never having stopped — see DESIGN.md, "Crash-safe checkpointing".
type TrainState struct {
	Kind     string       `json:"kind"` // TrainStateKind
	Version  int          `json:"version"`
	Epoch    int          `json:"epoch"` // completed epochs
	Channels []string     `json:"channels"`
	Cfg      trainCfgSnap `json:"config"`

	Params [][]float64 `json:"params"` // weights, allParams order
	AdamM  [][]float64 `json:"adam_m"` // first moments, same order
	AdamV  [][]float64 `json:"adam_v"` // second moments, same order

	GenSteps  int `json:"gen_steps"`  // generator Adam step counter
	DiscSteps int `json:"disc_steps"` // discriminator Adam step counter

	RNG        RNGState   `json:"rng"`
	WorkerRNGs []RNGState `json:"worker_rngs,omitempty"` // one per replica (Workers>1)

	// WindowOrder is the training-window permutation at the epoch
	// boundary. Each epoch shuffles the previous epoch's order in place,
	// so the permutation itself is training state: resuming from the
	// identity order would diverge from the uninterrupted run even with
	// the RNG stream correctly positioned.
	WindowOrder []int `json:"window_order,omitempty"`

	FinalMSE   float64 `json:"final_mse"`
	FinalDLoss float64 `json:"final_dloss"`
}

// trainStateVersion is the current TrainState schema version.
const trainStateVersion = 1

// captureTrainState deep-copies the model's resumable training state at an
// epoch boundary. replicas carries the data-parallel worker models (nil
// for serial training); only their RNG positions are recorded — their
// weights are broadcast copies of the primary's.
func (m *Model) captureTrainState(epoch int, mse, dloss float64, replicas []*Model, order []int) *TrainState {
	cfg := m.Cfg
	ts := &TrainState{
		Kind:    TrainStateKind,
		Version: trainStateVersion,
		Epoch:   epoch,
		Cfg: trainCfgSnap{
			cfgSnap: cfgSnap{
				Hidden: cfg.Hidden, NoiseDim: cfg.NoiseDim, ResNoise: cfg.ResNoise,
				Lags: cfg.Lags, BatchLen: cfg.BatchLen, StepLen: cfg.StepLen,
				MaxCells: cfg.MaxCells, Lambda: cfg.Lambda,
				AH: cfg.AH, AC: cfg.AC, DropoutP: cfg.DropoutP,
				LoadAware: cfg.LoadAware,
				NoResGen:  cfg.NoResGen, NoSRNN: cfg.NoSRNN, Seed: cfg.Seed,
				Workers: cfg.Workers,
			},
			Epochs: cfg.Epochs, LR: cfg.LR, DiscLR: cfg.DiscLR,
			ClipNorm: cfg.ClipNorm, LagNoise: cfg.LagNoise,
			NoGANLoss: cfg.NoGANLoss, NoBatch: cfg.NoBatch,
		},
		GenSteps:   m.genOpt.StepCount(),
		DiscSteps:  m.discOpt.StepCount(),
		RNG:        m.rngSrc.state(),
		FinalMSE:   mse,
		FinalDLoss: dloss,
	}
	for _, ch := range cfg.Channels {
		ts.Channels = append(ts.Channels, ch.Name)
	}
	for _, p := range m.allParams() {
		ts.Params = append(ts.Params, append([]float64(nil), p.W...))
		ts.AdamM = append(ts.AdamM, append([]float64(nil), p.M...))
		ts.AdamV = append(ts.AdamV, append([]float64(nil), p.V...))
	}
	for _, rep := range replicas {
		ts.WorkerRNGs = append(ts.WorkerRNGs, rep.rngSrc.state())
	}
	ts.WindowOrder = append([]int(nil), order...)
	return ts
}

// restoreWindowOrder validates the checkpointed permutation against this
// run's window count and copies it into order.
func restoreWindowOrder(order []int, ts *TrainState) error {
	if len(ts.WindowOrder) != len(order) {
		return fmt.Errorf("core: resume: checkpoint has %d training windows, this run has %d: different training set",
			len(ts.WindowOrder), len(order))
	}
	seen := make([]bool, len(order))
	for _, v := range ts.WindowOrder {
		if v < 0 || v >= len(order) || seen[v] {
			return fmt.Errorf("core: resume: window order is not a permutation")
		}
		seen[v] = true
	}
	copy(order, ts.WindowOrder)
	return nil
}

// ModelConfig reconstructs the full training Config the checkpoint was
// taken under, including channels.
func (ts *TrainState) ModelConfig() (Config, error) {
	var chans []ChannelSpec
	for _, name := range ts.Channels {
		ch, err := ChannelByName(name)
		if err != nil {
			return Config{}, err
		}
		chans = append(chans, ch)
	}
	c := ts.Cfg
	return Config{
		Channels: chans,
		Hidden:   c.Hidden, NoiseDim: c.NoiseDim, ResNoise: c.ResNoise,
		Lags: c.Lags, BatchLen: c.BatchLen, StepLen: c.StepLen,
		MaxCells: c.MaxCells, Lambda: c.Lambda,
		AH: c.AH, AC: c.AC, DropoutP: c.DropoutP,
		LoadAware: c.LoadAware,
		NoResGen:  c.NoResGen, NoSRNN: c.NoSRNN, Seed: c.Seed,
		Workers: c.Workers,
		Epochs:  c.Epochs, LR: c.LR, DiscLR: c.DiscLR,
		ClipNorm: c.ClipNorm, LagNoise: c.LagNoise,
		NoGANLoss: c.NoGANLoss, NoBatch: c.NoBatch,
	}, nil
}

// validate rejects checkpoints whose structure cannot belong to a model
// this package can build (defense against corrupt or hostile files; real
// torn files are already caught by the checksum layers).
func (ts *TrainState) validate() error {
	if ts.Kind != TrainStateKind {
		return fmt.Errorf("core: train state: kind %q", ts.Kind)
	}
	if ts.Version != trainStateVersion {
		return fmt.Errorf("core: train state: unsupported version %d", ts.Version)
	}
	if ts.Epoch < 0 {
		return fmt.Errorf("core: train state: negative epoch %d", ts.Epoch)
	}
	if ts.GenSteps < 0 || ts.DiscSteps < 0 {
		return fmt.Errorf("core: train state: negative optimizer step count")
	}
	if len(ts.Params) != len(ts.AdamM) || len(ts.Params) != len(ts.AdamV) {
		return fmt.Errorf("core: train state: params/moments group counts differ (%d/%d/%d)",
			len(ts.Params), len(ts.AdamM), len(ts.AdamV))
	}
	for i := range ts.Params {
		if len(ts.AdamM[i]) != len(ts.Params[i]) || len(ts.AdamV[i]) != len(ts.Params[i]) {
			return fmt.Errorf("core: train state: group %d params/moments sizes differ", i)
		}
	}
	return ts.Cfg.cfgSnap.validate(len(ts.Channels))
}

// NewModelFromTrainState builds a model with the checkpoint's architecture
// and weights. Optimizer moments and RNG position are NOT applied — use
// TrainOpts.Resume for bit-exact training continuation; this constructor
// serves inference paths (e.g. serving a checkpoint file directly).
func NewModelFromTrainState(ts *TrainState) (*Model, error) {
	if err := ts.validate(); err != nil {
		return nil, err
	}
	cfg, err := ts.ModelConfig()
	if err != nil {
		return nil, err
	}
	if len(cfg.Channels) == 0 {
		return nil, fmt.Errorf("core: train state: no channels")
	}
	m := NewModel(cfg)
	params := m.allParams()
	if len(params) != len(ts.Params) {
		return nil, fmt.Errorf("core: train state: parameter count mismatch (%d vs %d)",
			len(params), len(ts.Params))
	}
	for i, p := range params {
		if len(p.W) != len(ts.Params[i]) {
			return nil, fmt.Errorf("core: train state: parameter %d size mismatch (%d vs %d)",
				i, len(p.W), len(ts.Params[i]))
		}
		copy(p.W, ts.Params[i])
	}
	return m, nil
}

// restoreTrainState loads a checkpoint into m for training continuation:
// weights, Adam moments and step counters, zeroed gradients, and the
// primary RNG stream position. Worker RNG streams are restored by the
// parallel trainer once its replicas exist.
func (m *Model) restoreTrainState(ts *TrainState) error {
	if err := ts.validate(); err != nil {
		return err
	}
	params := m.allParams()
	if len(params) != len(ts.Params) {
		return fmt.Errorf("core: resume: parameter count mismatch (%d vs %d): checkpoint is for a different architecture",
			len(params), len(ts.Params))
	}
	for i, p := range params {
		if len(p.W) != len(ts.Params[i]) {
			return fmt.Errorf("core: resume: parameter %d size mismatch (%d vs %d): checkpoint is for a different architecture",
				i, len(p.W), len(ts.Params[i]))
		}
	}
	for i, p := range params {
		copy(p.W, ts.Params[i])
		copy(p.M, ts.AdamM[i])
		copy(p.V, ts.AdamV[i])
		p.ZeroGrad()
	}
	m.genOpt.SetStepCount(ts.GenSteps)
	m.discOpt.SetStepCount(ts.DiscSteps)
	m.rngSrc.restore(ts.RNG)
	return nil
}

// Fingerprint hashes every weight (FNV-64a over the IEEE-754 bits, in the
// stable allParams order), so two models can be compared bit-for-bit —
// the equality check behind the resume-is-bit-identical guarantee.
func (m *Model) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range m.allParams() {
		for _, w := range p.W {
			bits := math.Float64bits(w)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}
