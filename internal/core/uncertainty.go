package core

import (
	"math"

	"gendt/internal/metrics"
)

// ModelUncertainty computes the paper's §6.2.1 uncertainty measure
//
//	U(G_θ) = (1/T) Σ_t [ std(σ_θ)_t + std(μ_θ)_t ]
//
// where the standard deviations are taken over k MC-dropout forward passes
// of ResGen over the sequence. High U indicates model (reducible)
// uncertainty — the cue the uncertainty-driven measurement selection of
// §6.2.2 uses to pick the next training subset. A stable-but-large σ_θ with
// small U indicates irreducible data uncertainty instead.
//
// The k passes are independent and run across Cfg.Workers parallel model
// clones (serially on the model itself when Workers <= 1).
//
// Models built with NoResGen fall back to the variability of repeated full
// generations, preserving a usable (if cruder) signal.
func (m *Model) ModelUncertainty(seq *Sequence, k int) float64 {
	if k < 2 {
		k = 2
	}
	nch := len(m.Cfg.Channels)
	T := seq.Len()
	if T == 0 {
		return 0
	}
	if m.res == nil {
		return m.fallbackUncertainty(seq, k)
	}
	m.res.Dropout.Active = true // MC dropout on during the passes

	// For each pass, generate once (to obtain autoregressive lags from the
	// model itself) and record ResGen's (mu, sigma) trajectories.
	mus := make([][][]float64, k)    // [k][T][nch]
	sigmas := make([][][]float64, k) // [k][T][nch]
	pass := func(mm *Model, i int) {
		mm.res.Dropout.Active = true
		gen := mm.Generate(seq)
		mu := alloc2(T, nch)
		sg := alloc2(T, nch)
		lagBuf := make([]float64, mm.Cfg.Lags*nch)
		for t := 0; t < T; t++ {
			lags := BuildLagsInto(lagBuf, gen, t, mm.Cfg.Lags, nch)
			ro := mm.res.Forward(seq.Env[t], lags)
			mm.res.ClearCache()
			copy(mu[t], ro.Mu)
			for c := 0; c < nch; c++ {
				sg[t][c] = math.Exp(clampLS(ro.LogSigma[c]))
			}
			mm.res.recycle(ro)
		}
		mus[i] = mu
		sigmas[i] = sg
	}
	m.fanOut(k,
		func(i int) { pass(m, i) },
		func(rep *Model, i int) { pass(rep, i) })

	// U = mean over t (and channels) of std across passes.
	total := 0.0
	mvals := make([]float64, k)
	svals := make([]float64, k)
	for t := 0; t < T; t++ {
		for c := 0; c < nch; c++ {
			for i := 0; i < k; i++ {
				mvals[i] = mus[i][t][c]
				svals[i] = sigmas[i][t][c]
			}
			total += metrics.Std(mvals) + metrics.Std(svals)
		}
	}
	return total / float64(T*nch)
}

// DataUncertainty reports the mean learned residual sigma over the
// sequence — the irreducible data-noise estimate (paper §6.2.1).
func (m *Model) DataUncertainty(seq *Sequence) float64 {
	if m.res == nil {
		return 0
	}
	nch := len(m.Cfg.Channels)
	T := seq.Len()
	if T == 0 {
		return 0
	}
	gen := m.Generate(seq)
	total := 0.0
	lagBuf := make([]float64, m.Cfg.Lags*nch)
	for t := 0; t < T; t++ {
		lags := BuildLagsInto(lagBuf, gen, t, m.Cfg.Lags, nch)
		ro := m.res.Forward(seq.Env[t], lags)
		m.res.ClearCache()
		for c := 0; c < nch; c++ {
			total += math.Exp(clampLS(ro.LogSigma[c]))
		}
		m.res.recycle(ro)
	}
	return total / float64(T*nch)
}

func (m *Model) fallbackUncertainty(seq *Sequence, k int) float64 {
	nch := len(m.Cfg.Channels)
	T := seq.Len()
	gens := make([][][]float64, k)
	for i := range gens {
		gens[i] = m.Generate(seq)
	}
	total := 0.0
	vals := make([]float64, k)
	for t := 0; t < T; t++ {
		for c := 0; c < nch; c++ {
			for i := 0; i < k; i++ {
				vals[i] = gens[i][t][c]
			}
			total += metrics.Std(vals)
		}
	}
	return total / float64(T*nch)
}

func clampLS(ls float64) float64 {
	if ls < -6 {
		return -6
	}
	if ls > 3 {
		return 3
	}
	return ls
}
