package validate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ChannelStats holds the five distributional statistics the gate computes
// per KPI channel, in normalized [0,1] KPI units. The same shape serves
// both as observed values (Report.Observed) and as tolerance bounds
// (Golden.Channels).
type ChannelStats struct {
	Channel string `json:"channel"`
	// KS is the two-sample Kolmogorov–Smirnov distance between generated
	// and ground-truth values pooled over the held-out routes.
	KS float64 `json:"ks"`
	// HWD is the histogram Wasserstein distance over the same pools.
	HWD float64 `json:"hwd"`
	// MeanAbs / StdAbs are |mean(gen)-mean(truth)| and |std(gen)-std(truth)|.
	MeanAbs float64 `json:"mean_abs"`
	StdAbs  float64 `json:"std_abs"`
	// Autocorr is the mean absolute lag-k autocorrelation error over
	// AutocorrLags, averaged across routes and samples.
	Autocorr float64 `json:"autocorr"`
}

// AutocorrLags are the lags the autocorrelation gate averages over: the
// short-range temporal structure that separates a sequence model from
// i.i.d. distribution sampling (the paper's FDaS baseline nails every
// marginal and fails exactly here).
var AutocorrLags = []int{1, 2, 5, 10}

// Golden is a committed tolerance file: the upper bounds the
// distributional gates compare against. Files are regenerated with
// `gendt-validate -update-golden`, which derives each bound from the
// observed statistics of a known-good fixed-seed model.
type Golden struct {
	Version int    `json:"version"`
	Dataset string `json:"dataset"`
	// Routes/SamplesPerRoute/Seed record the options the tolerances were
	// derived under; a validation run compares like with like by using the
	// same values.
	Routes          int            `json:"routes"`
	SamplesPerRoute int            `json:"samples_per_route"`
	Seed            int64          `json:"seed"`
	Channels        []ChannelStats `json:"channels"`
}

// GoldenVersion is the current tolerance-file format version.
const GoldenVersion = 1

// Tolerance derivation: bound = observed*GoldenMargin + floor. The margin
// absorbs run-to-run noise (different machines retrain the fixed-seed
// model bit-identically on amd64, but the floor and margin keep the gate
// robust to tiny numeric drift), while staying far below the blowup a
// corrupted or regressed model produces.
const GoldenMargin = 1.6

// goldenFloor is the per-metric additive floor (normalized units).
var goldenFloor = ChannelStats{KS: 0.04, HWD: 0.01, MeanAbs: 0.02, StdAbs: 0.02, Autocorr: 0.05}

// DeriveGolden turns a report's observed statistics into a tolerance file
// for the options the report was produced under. The derivation is
// deterministic: the same model, dataset, and options always yield the
// same file bytes.
func (r *Report) DeriveGolden(opts Options) *Golden {
	opts = opts.withDefaults()
	g := &Golden{
		Version: GoldenVersion, Dataset: r.Dataset,
		Routes: opts.Routes, SamplesPerRoute: opts.SamplesPerRoute, Seed: opts.Seed,
	}
	for _, obs := range r.Observed {
		g.Channels = append(g.Channels, ChannelStats{
			Channel:  obs.Channel,
			KS:       obs.KS*GoldenMargin + goldenFloor.KS,
			HWD:      obs.HWD*GoldenMargin + goldenFloor.HWD,
			MeanAbs:  obs.MeanAbs*GoldenMargin + goldenFloor.MeanAbs,
			StdAbs:   obs.StdAbs*GoldenMargin + goldenFloor.StdAbs,
			Autocorr: obs.Autocorr*GoldenMargin + goldenFloor.Autocorr,
		})
	}
	return g
}

// channel returns the tolerance entry for a channel name.
func (g *Golden) channel(name string) (ChannelStats, bool) {
	for _, c := range g.Channels {
		if c.Channel == name {
			return c, true
		}
	}
	return ChannelStats{}, false
}

// LoadGolden reads a tolerance file.
func LoadGolden(path string) (*Golden, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("validate: golden: %w", err)
	}
	var g Golden
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("validate: golden %s: %w", path, err)
	}
	if g.Version != GoldenVersion {
		return nil, fmt.Errorf("validate: golden %s: unsupported version %d", path, g.Version)
	}
	if len(g.Channels) == 0 {
		return nil, fmt.Errorf("validate: golden %s: no channel tolerances", path)
	}
	return &g, nil
}

// Save writes the tolerance file with stable formatting (field order is
// the struct order, so identical content yields identical bytes).
func (g *Golden) Save(path string) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return fmt.Errorf("validate: golden: %w", err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("validate: golden: %w", err)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("validate: golden: %w", err)
	}
	return nil
}
