package validate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gendt/internal/core"
	"gendt/internal/dataset"
)

// fixture: one tiny trained model over a small Dataset A world, built once
// per test binary (training even a tiny model dominates test time).
var fix struct {
	once sync.Once
	ds   *dataset.Dataset
	m    *core.Model
}

var fixSpec = dataset.Spec{Seed: 11, Scale: 0.015}

func fixCfg() core.Config {
	return core.Config{
		Channels: core.RSRPRSRQChannels(),
		Hidden:   10, NoiseDim: 2, ResNoise: 2, Lags: 2,
		BatchLen: 12, StepLen: 6, MaxCells: 6,
		Epochs: 1, Seed: 1, Workers: 1,
	}
}

func setup(t *testing.T) (*dataset.Dataset, *core.Model) {
	t.Helper()
	fix.once.Do(func() {
		fix.ds = dataset.NewDatasetA(fixSpec)
		train := core.PrepareAll(fix.ds.TrainRuns(), core.RSRPRSRQChannels(), 6)
		fix.m = core.NewModel(fixCfg())
		fix.m.Train(train, nil)
	})
	return fix.ds, fix.m
}

// fixOpts keeps runs small: two short routes, one sample each.
func fixOpts(ds *dataset.Dataset) Options {
	return Options{Dataset: ds, Routes: 2, SamplesPerRoute: 1, MaxRouteLen: 60, Seed: 3, Workers: 2}
}

// TestObserveDeriveGate is the golden lifecycle: an observe-only run
// derives tolerances, and a gated run against those tolerances passes with
// every check accounted for.
func TestObserveDeriveGate(t *testing.T) {
	ds, m := setup(t)
	opts := fixOpts(ds)

	observe, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !observe.OK() {
		t.Fatalf("observe-only run failed:\n%s", observe)
	}
	if len(observe.Observed) != len(m.Cfg.Channels) {
		t.Fatalf("observed stats for %d channels, want %d", len(observe.Observed), len(m.Cfg.Channels))
	}

	opts.Golden = observe.DeriveGolden(opts)
	rep, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("gated run failed:\n%s", rep)
	}
	// Every distributional gate must have actually run (not skipped) and
	// every metamorphic invariant must be present.
	want := []string{
		"dist/RSRP/ks", "dist/RSRP/hwd", "dist/RSRP/mean", "dist/RSRP/std", "dist/RSRP/autocorr",
		"dist/RSRQ/ks", "dist/RSRQ/hwd", "dist/RSRQ/mean", "dist/RSRQ/std", "dist/RSRQ/autocorr",
		"meta/seed-determinism-serial", "meta/seed-determinism-workers", "meta/seed-determinism-http",
		"meta/permutation-invariance", "meta/truncation-consistency", "meta/monotonic-rsrp-distance",
	}
	got := map[string]CheckResult{}
	for _, c := range rep.Checks {
		got[c.Name] = c
	}
	for _, name := range want {
		c, ok := got[name]
		if !ok {
			t.Errorf("check %s missing from report", name)
			continue
		}
		if c.Skipped {
			t.Errorf("check %s skipped: %s", name, c.Detail)
		}
	}
	// No SINR channel on this model: the load check must be skipped, not
	// silently absent.
	if c, ok := got["meta/monotonic-sinr-load"]; !ok || !c.Skipped {
		t.Errorf("meta/monotonic-sinr-load: want skipped, got %+v", c)
	}
}

// TestRunDeterministic: the whole suite is a pure function of
// (model, dataset, options) — two runs render identical reports.
func TestRunDeterministic(t *testing.T) {
	ds, m := setup(t)
	opts := fixOpts(ds)
	a, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("reports differ:\n%s\nvs\n%s", ja, jb)
	}
}

// TestCorruptedModelFails is the gate-has-teeth property: noise-corrupted
// weights must trip at least one named distributional check against
// tolerances derived from the healthy model.
func TestCorruptedModelFails(t *testing.T) {
	ds, m := setup(t)
	opts := fixOpts(ds)
	opts.SkipHTTP = true // determinism holds for deterministic garbage; skip the slow path

	observe, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Golden = observe.DeriveGolden(opts)

	bad := m.Clone(1)
	bad.PerturbWeights(0.5, 99)
	rep, err := Run(bad, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("corrupted model passed the gate:\n%s", rep)
	}
	var distFail bool
	for _, c := range rep.Failures() {
		if strings.HasPrefix(c.Name, "dist/") {
			distFail = true
		}
	}
	if !distFail {
		t.Fatalf("no dist/ check failed for corrupted model:\n%s", rep)
	}
}

// TestGoldenRoundTrip: Save/Load preserves the tolerances and repeated
// derivation is byte-stable.
func TestGoldenRoundTrip(t *testing.T) {
	ds, m := setup(t)
	opts := fixOpts(ds)
	opts.SkipHTTP = true
	rep, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := rep.DeriveGolden(opts)
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(g)
	jb, _ := json.Marshal(loaded)
	if string(ja) != string(jb) {
		t.Fatalf("golden round-trip changed content:\n%s\nvs\n%s", ja, jb)
	}

	// Re-deriving from a fresh identical run yields identical bytes.
	rep2, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), "golden2.json")
	if err := rep2.DeriveGolden(opts).Save(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatalf("golden derivation not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
}

// TestGoldenDatasetMismatch: tolerances derived on one dataset must not
// silently gate another.
func TestGoldenDatasetMismatch(t *testing.T) {
	ds, m := setup(t)
	opts := fixOpts(ds)
	opts.SkipHTTP = true
	rep, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := rep.DeriveGolden(opts)
	g.Dataset = "B"
	opts.Golden = g
	rep, err = Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, c := range rep.Failures() {
		if c.Name == "dist/golden-config" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dataset mismatch not flagged:\n%s", rep)
	}
}

// TestLoadAwareSINRCheck trains a minimal load-aware model with a SINR
// channel and asserts the load-monotonicity invariant actually runs (and
// holds) for it.
func TestLoadAwareSINRCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an extra model")
	}
	ds, _ := setup(t)
	cfg := fixCfg()
	cfg.Channels = core.StandardChannels()
	cfg.LoadAware = true
	var train []*core.Sequence
	for _, run := range ds.TrainRuns() {
		train = append(train, core.PrepareSequenceWith(run, cfg.Channels, core.PrepareOptions{
			MaxCells: cfg.MaxCells, LoadAware: true,
		}))
	}
	m := core.NewModel(cfg)
	m.Train(train, nil)

	opts := fixOpts(ds)
	opts.SkipHTTP = true
	rep, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	var c CheckResult
	var ok bool
	for _, ch := range rep.Checks {
		if ch.Name == "meta/monotonic-sinr-load" {
			c, ok = ch, true
		}
	}
	if !ok {
		t.Fatalf("meta/monotonic-sinr-load missing:\n%s", rep)
	}
	if c.Skipped {
		t.Fatalf("meta/monotonic-sinr-load skipped for load-aware model: %s", c.Detail)
	}
	if !c.Passed {
		t.Fatalf("meta/monotonic-sinr-load failed: %s", c)
	}
}

// TestBatchedEngineIdentityCheck: the batched-engine invariant must run
// (not skip) for frozen backends and pass, and must skip for the live f64
// model, which has no batched engine.
func TestBatchedEngineIdentityCheck(t *testing.T) {
	ds, m := setup(t)
	find := func(rep *Report) (CheckResult, bool) {
		for _, c := range rep.Checks {
			if c.Name == "meta/batched-engine-identity" {
				return c, true
			}
		}
		return CheckResult{}, false
	}
	for _, p := range []core.Precision{core.PrecisionF32, core.PrecisionInt8} {
		opts := fixOpts(ds)
		opts.SkipHTTP = true
		opts.Precision = p
		rep, err := Run(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		c, ok := find(rep)
		if !ok {
			t.Fatalf("%s: meta/batched-engine-identity missing:\n%s", p, rep)
		}
		if c.Skipped {
			t.Fatalf("%s: skipped for frozen backend: %s", p, c.Detail)
		}
		if !c.Passed {
			t.Fatalf("%s: failed: %s", p, c)
		}
	}
	opts := fixOpts(ds)
	opts.SkipHTTP = true
	rep, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := find(rep); !ok || !c.Skipped {
		t.Fatalf("f64: want skipped check, got %+v", c)
	}
}
