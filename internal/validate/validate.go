// Package validate is the statistical model-quality gate between "trains
// without crashing" and "safe to serve". The repo's other tests check that
// code runs; this subsystem checks that a trained model is statistically
// right, in two complementary families:
//
//   - Distributional gates compare generated KPI series against simulator
//     ground truth on held-out routes — per-channel KS distance, histogram
//     Wasserstein distance, mean/std deltas, and lag-k autocorrelation
//     error — versus a committed golden tolerance file (validate/golden/).
//
//   - Metamorphic invariants need no ground truth at all: seed determinism
//     across the serial, Workers=N, and HTTP /v1/generate paths,
//     sample-permutation invariance, truncation consistency, and physical
//     monotonicity (closer to the serving cell must not lower mean RSRP;
//     more load must not raise SINR).
//
// cmd/gendt-validate drives the suite from the command line, and the
// statistical-gate CI job proves it has teeth by also running it against a
// deliberately noise-corrupted model and asserting it fails.
package validate

import (
	"fmt"
	"strings"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/serve"
)

// Options configures a validation run. Zero fields take the defaults
// below; Dataset is required.
type Options struct {
	// Dataset supplies the held-out routes, the simulator ground truth,
	// and the resident world the HTTP check serves against.
	Dataset *dataset.Dataset

	// Routes caps how many held-out (test-split) routes the distributional
	// pass generates. Default 4.
	Routes int
	// SamplesPerRoute is how many independent generation samples per route
	// are pooled into the generated distribution. Default 2.
	SamplesPerRoute int
	// MaxRouteLen truncates each held-out route to this many samples so the
	// gate stays fast on large datasets. Default 150; negative disables.
	MaxRouteLen int
	// Seed drives every generation in the suite; the whole run is a pure
	// function of (model, dataset, options). Default 1.
	Seed int64
	// Workers is the parallel width the Workers=N determinism check runs
	// at. Default 4.
	Workers int
	// SkipHTTP disables the HTTP /v1/generate determinism check (it starts
	// a loopback server).
	SkipHTTP bool

	// Precision selects the backend under validation: f64 (default) runs
	// the live model, f32/int8 freeze it into the corresponding inference
	// backend first, so the statistical gate certifies exactly what the
	// serving layer would run. Determinism checks are per-precision — a
	// frozen backend must be bit-exact against itself across execution
	// paths, not against the float64 model.
	Precision core.Precision

	// Golden holds the distributional tolerances. Nil runs the
	// distributional pass observe-only (checks report as skipped), which is
	// how -update-golden bootstraps a tolerance file.
	Golden *Golden

	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Routes <= 0 {
		o.Routes = 4
	}
	if o.SamplesPerRoute <= 0 {
		o.SamplesPerRoute = 2
	}
	if o.MaxRouteLen == 0 {
		o.MaxRouteLen = 150
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// CheckResult is the outcome of one named check.
type CheckResult struct {
	// Name identifies the check, e.g. "dist/RSRP/ks" or
	// "meta/seed-determinism-http".
	Name    string `json:"name"`
	Passed  bool   `json:"passed"`
	Skipped bool   `json:"skipped,omitempty"`
	// Observed and Limit are set for threshold checks (observed must be at
	// or below the limit).
	Observed float64 `json:"observed,omitempty"`
	Limit    float64 `json:"limit,omitempty"`
	Detail   string  `json:"detail,omitempty"`
}

// String renders one report line.
func (c CheckResult) String() string {
	status := "ok  "
	switch {
	case c.Skipped:
		status = "skip"
	case !c.Passed:
		status = "FAIL"
	}
	s := fmt.Sprintf("%s %-34s", status, c.Name)
	if c.Limit != 0 || c.Observed != 0 {
		s += fmt.Sprintf(" observed=%.4f limit=%.4f", c.Observed, c.Limit)
	}
	if c.Detail != "" {
		s += " (" + c.Detail + ")"
	}
	return s
}

// Report is the result of a full validation run.
type Report struct {
	Dataset  string        `json:"dataset"`
	Channels []string      `json:"channels"`
	Checks   []CheckResult `json:"checks"`
	// Observed carries the raw distributional statistics per channel (the
	// same shape as the golden tolerances), from which DeriveGolden builds
	// a tolerance file.
	Observed []ChannelStats `json:"observed"`
}

// OK reports whether every non-skipped check passed.
func (r *Report) OK() bool {
	for _, c := range r.Checks {
		if !c.Skipped && !c.Passed {
			return false
		}
	}
	return true
}

// Failures returns the failed checks.
func (r *Report) Failures() []CheckResult {
	var out []CheckResult
	for _, c := range r.Checks {
		if !c.Skipped && !c.Passed {
			out = append(out, c)
		}
	}
	return out
}

// String renders the full report, one line per check.
func (r *Report) String() string {
	var b strings.Builder
	for _, c := range r.Checks {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) add(c CheckResult) { r.Checks = append(r.Checks, c) }

func (r *Report) skip(name, why string) {
	r.add(CheckResult{Name: name, Skipped: true, Detail: why})
}

// Run executes the full validation suite against the model — frozen first
// to Options.Precision when it is not f64. The returned error covers only
// setup problems (nil dataset, no held-out routes, a precision the model
// cannot freeze to); everything else — including HTTP-path trouble — is
// reported through the Report's checks so a single run always yields a
// full picture.
func Run(m *core.Model, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Dataset == nil {
		return nil, fmt.Errorf("validate: Options.Dataset is required")
	}
	var g core.Generator = m
	if opts.Precision != "" && opts.Precision != core.PrecisionF64 {
		im, err := m.Freeze(opts.Precision)
		if err != nil {
			return nil, fmt.Errorf("validate: %w", err)
		}
		g = im
	}
	cfg := g.ModelConfig()
	rep := &Report{Dataset: opts.Dataset.Name}
	for _, ch := range cfg.Channels {
		rep.Channels = append(rep.Channels, ch.Name)
	}

	routes, seqs, err := heldOutSequences(cfg, opts)
	if err != nil {
		return nil, err
	}
	minLen, maxLen := seqs[0].Len(), seqs[0].Len()
	for _, s := range seqs[1:] {
		if s.Len() < minLen {
			minLen = s.Len()
		}
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	opts.Logf("validate: %d held-out routes (%d..%d samples), %d samples/route",
		len(seqs), minLen, maxLen, opts.SamplesPerRoute)

	// The distributional pass generates from serving-path sequences — the
	// held-out trajectories annotated by the resident world, exactly as a
	// replica prepares an HTTP request — so the same golden file gates the
	// in-process run and RunRemote's over-the-wire run. Ground truth stays
	// the recorded held-out KPIs either way.
	genSeqs := servingPathSequences(routes, g, opts)
	distributionChecks(localGen(g, genSeqs, opts.Seed), cfg.Channels, seqs, opts, rep)
	metamorphicChecks(g, routes, seqs, opts, rep)
	return rep, nil
}

// servingPathSequences prepares the held-out trajectories the way the
// serving layer would: world annotation of the bare route, no recorded
// measurement context.
func servingPathSequences(routes []dataset.Run, g core.Generator, opts Options) []*core.Sequence {
	world := serve.NewWorldFrom(opts.Dataset)
	out := make([]*core.Sequence, len(routes))
	for i, run := range routes {
		out[i], _ = world.Prepare(run.Traj, g)
	}
	return out
}

// heldOutSequences prepares up to opts.Routes test-split runs, truncated
// to opts.MaxRouteLen samples each.
func heldOutSequences(cfg core.Config, opts Options) ([]dataset.Run, []*core.Sequence, error) {
	runs := opts.Dataset.TestRuns()
	if len(runs) == 0 {
		return nil, nil, fmt.Errorf("validate: dataset %q has no held-out (test-split) runs", opts.Dataset.Name)
	}
	if len(runs) > opts.Routes {
		runs = runs[:opts.Routes]
	}
	out := make([]dataset.Run, 0, len(runs))
	seqs := make([]*core.Sequence, 0, len(runs))
	for _, run := range runs {
		if opts.MaxRouteLen > 0 && len(run.Meas) > opts.MaxRouteLen {
			run.Traj = run.Traj[:opts.MaxRouteLen]
			run.Meas = run.Meas[:opts.MaxRouteLen]
		}
		if len(run.Meas) < 2 {
			continue
		}
		seq := core.PrepareSequenceWith(run, cfg.Channels, core.PrepareOptions{
			MaxCells: cfg.MaxCells, LoadAware: cfg.LoadAware,
		})
		out = append(out, run)
		seqs = append(seqs, seq)
	}
	if len(seqs) == 0 {
		return nil, nil, fmt.Errorf("validate: no usable held-out routes after truncation")
	}
	return out, seqs, nil
}
