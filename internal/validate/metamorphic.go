package validate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/geo"
	"gendt/internal/metrics"
	"gendt/internal/serve"
)

// monotonicSlack is the fixed tolerance (normalized KPI units) the physical
// monotonicity checks allow: a weakly trained model may show a small
// inversion from sampling noise, but a model that has learned no physics at
// all — or a corrupted one — violates the ordering by much more. The slack
// is deliberately not golden-driven: these invariants hold for any sane
// model regardless of how it was trained.
const monotonicSlack = 0.05

// monotonicSamples is how many independent generations each monotonicity
// arm averages over before comparing means.
const monotonicSamples = 3

// metamorphicChecks runs the ground-truth-free invariants: seed
// determinism across execution paths, permutation invariance, truncation
// consistency, and physical monotonicity.
func metamorphicChecks(g core.Generator, routes []dataset.Run, seqs []*core.Sequence, opts Options, rep *Report) {
	checkSeedDeterminismSerial(g, seqs[0], opts, rep)
	checkSeedDeterminismWorkers(g, seqs, opts, rep)
	if opts.SkipHTTP {
		rep.skip("meta/seed-determinism-http", "disabled (SkipHTTP)")
	} else {
		checkSeedDeterminismHTTP(g, routes[0].Traj, opts, rep)
	}
	checkPermutationInvariance(g, seqs, opts, rep)
	checkBatchedEngineIdentity(g, seqs, opts, rep)
	checkTruncationConsistency(g, seqs[0], opts, rep)
	checkMonotonicRSRPDistance(g, routes[0].Traj, opts, rep)
	checkMonotonicSINRLoad(g, seqs[0], opts, rep)
}

// checkSeedDeterminismSerial: two independent generations from the same
// backend must produce bit-identical series for the same (sequence, seed).
func checkSeedDeterminismSerial(g core.Generator, seq *core.Sequence, opts Options, rep *Report) {
	a := g.GenerateSeeded(seq, opts.Seed)
	b := g.GenerateSeeded(seq, opts.Seed)
	ok, detail := seriesEqual(a, b)
	rep.add(CheckResult{Name: "meta/seed-determinism-serial", Passed: ok, Detail: detail})
}

// checkSeedDeterminismWorkers: GenerateJobs must be bit-identical across
// Workers=1, Workers=N, and the direct per-job path. This is the contract
// the serving layer's reproducibility guarantee stands on.
func checkSeedDeterminismWorkers(g core.Generator, seqs []*core.Sequence, opts Options, rep *Report) {
	jobs := make([]core.GenJob, len(seqs))
	for i, seq := range seqs {
		jobs[i] = core.GenJob{Seq: seq, Seed: core.DeriveSeed(opts.Seed, i)}
	}
	outSerial := g.WithWorkers(1).GenerateJobs(jobs)
	outParallel := g.WithWorkers(opts.Workers).GenerateJobs(jobs)
	for i, job := range jobs {
		direct := g.DenormalizeSeries(g.GenerateSeeded(job.Seq, job.Seed))
		if ok, detail := seriesEqual(outSerial[i], direct); !ok {
			rep.add(CheckResult{
				Name: "meta/seed-determinism-workers", Passed: false,
				Detail: fmt.Sprintf("job %d: serial vs direct: %s", i, detail),
			})
			return
		}
		if ok, detail := seriesEqual(outSerial[i], outParallel[i]); !ok {
			rep.add(CheckResult{
				Name: "meta/seed-determinism-workers", Passed: false,
				Detail: fmt.Sprintf("job %d: Workers=1 vs Workers=%d: %s", i, opts.Workers, detail),
			})
			return
		}
	}
	rep.add(CheckResult{
		Name: "meta/seed-determinism-workers", Passed: true,
		Detail: fmt.Sprintf("%d jobs, Workers 1 vs %d vs direct", len(jobs), opts.Workers),
	})
}

// checkSeedDeterminismHTTP: a response from the real /v1/generate pipeline
// (route annotation, prep cache, micro-batcher, JSON round-trip) must be
// bit-identical to calling GenerateJobs directly with the same derived
// seeds. Go's encoding/json emits float64s in shortest round-trip form, so
// the comparison is exact, not approximate.
func checkSeedDeterminismHTTP(g core.Generator, tr geo.Trajectory, opts Options, rep *Report) {
	fail := func(detail string) {
		rep.add(CheckResult{Name: "meta/seed-determinism-http", Passed: false, Detail: detail})
	}
	world := serve.NewWorldFrom(opts.Dataset)
	srv := serve.New(serve.Options{
		Registry: serve.NewStaticRegistry("validate", g),
		World:    world,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	if len(tr) > 64 {
		tr = tr[:64] // the invariant is path-identity, not route length
	}
	req := serve.GenerateRequest{Seed: opts.Seed, Samples: 2}
	for _, p := range tr {
		req.Route = append(req.Route, serve.RoutePoint{T: p.T, Lat: p.Lat, Lon: p.Lon})
	}
	body, _ := json.Marshal(req)
	httpResp, err := http.Post(ts.URL+serve.EndpointGenerate, "application/json", bytes.NewReader(body))
	if err != nil {
		fail("POST /v1/generate: " + err.Error())
		return
	}
	defer httpResp.Body.Close()
	raw, _ := io.ReadAll(httpResp.Body)
	if httpResp.StatusCode != http.StatusOK {
		fail(fmt.Sprintf("/v1/generate status %d: %s", httpResp.StatusCode, raw))
		return
	}
	var resp serve.GenerateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		fail("decode response: " + err.Error())
		return
	}

	// Reference: the same route prepared through the same world, generated
	// directly with the request's derived seeds.
	seq, _ := world.Prepare(tr, g)
	expect := g.GenerateJobs([]core.GenJob{
		{Seq: seq, Seed: core.DeriveSeed(opts.Seed, 0)},
		{Seq: seq, Seed: core.DeriveSeed(opts.Seed, 1)},
	})
	if ok, detail := seriesEqual(resp.Series, expect[0]); !ok {
		fail("HTTP series vs direct GenerateJobs: " + detail)
		return
	}
	if resp.Envelope == nil {
		fail("response missing envelope for samples=2")
		return
	}
	min, max, _ := core.Envelope(expect)
	if ok, detail := seriesEqual(resp.Envelope.Min, min); !ok {
		fail("HTTP envelope min vs direct: " + detail)
		return
	}
	if ok, detail := seriesEqual(resp.Envelope.Max, max); !ok {
		fail("HTTP envelope max vs direct: " + detail)
		return
	}
	rep.add(CheckResult{
		Name: "meta/seed-determinism-http", Passed: true,
		Detail: fmt.Sprintf("%d steps, 2 samples, bit-identical through JSON", len(tr)),
	})
}

// checkPermutationInvariance: each job's output must not depend on where
// it sits in the batch — reversing the job list must reverse the outputs
// bit-identically.
func checkPermutationInvariance(g core.Generator, seqs []*core.Sequence, opts Options, rep *Report) {
	jobs := make([]core.GenJob, len(seqs))
	for i, seq := range seqs {
		jobs[i] = core.GenJob{Seq: seq, Seed: core.DeriveSeed(opts.Seed, i)}
	}
	rev := make([]core.GenJob, len(jobs))
	for i := range jobs {
		rev[i] = jobs[len(jobs)-1-i]
	}
	gg := g.WithWorkers(opts.Workers)
	fwd := gg.GenerateJobs(jobs)
	bwd := gg.GenerateJobs(rev)
	for i := range jobs {
		if ok, detail := seriesEqual(fwd[i], bwd[len(jobs)-1-i]); !ok {
			rep.add(CheckResult{
				Name: "meta/permutation-invariance", Passed: false,
				Detail: fmt.Sprintf("job %d: %s", i, detail),
			})
			return
		}
	}
	rep.add(CheckResult{
		Name: "meta/permutation-invariance", Passed: true,
		Detail: fmt.Sprintf("%d jobs forward vs reversed", len(jobs)),
	})
}

// checkBatchedEngineIdentity: the frozen backends' lockstep batched-GEMM
// engine must be a pure execution-schedule change — GenerateJobs with
// batching on (the default) and off (the -batch-gemm escape hatch) must be
// bit-identical, over a job mix whose uneven lengths force ragged lane
// retirement inside the micro-batch. Live f64 models have no batched
// engine, so the check skips there.
func checkBatchedEngineIdentity(g core.Generator, seqs []*core.Sequence, opts Options, rep *Report) {
	const name = "meta/batched-engine-identity"
	im, ok := g.(*core.InferModel)
	if !ok {
		rep.skip(name, "live f64 backend has no batched engine")
		return
	}
	var jobs []core.GenJob
	for i := 0; i < 10; i++ { // > one micro-batch, non-multiple of its width
		seq := seqs[i%len(seqs)]
		if cut := seq.Len() - i; i%2 == 1 && cut > 0 {
			seq = &core.Sequence{
				KPIs: seq.KPIs[:cut], Cells: seq.Cells[:cut], Env: seq.Env[:cut],
				Raw: seq.Raw[:cut], Interval: seq.Interval,
			}
		}
		jobs = append(jobs, core.GenJob{Seq: seq, Seed: core.DeriveSeed(opts.Seed, 100+i)})
	}
	batched := im.WithWorkers(opts.Workers).GenerateJobs(jobs)
	unbatched := im.WithBatch(false).WithWorkers(opts.Workers).GenerateJobs(jobs)
	for i := range jobs {
		if ok, detail := seriesEqual(batched[i], unbatched[i]); !ok {
			rep.add(CheckResult{
				Name: name, Passed: false,
				Detail: fmt.Sprintf("job %d (T=%d): batch-on vs batch-off: %s", i, jobs[i].Seq.Len(), detail),
			})
			return
		}
	}
	rep.add(CheckResult{
		Name: name, Passed: true,
		Detail: fmt.Sprintf("%d mixed-length jobs, batched engine vs job-at-a-time", len(jobs)),
	})
}

// checkTruncationConsistency: generating a prefix route must reproduce the
// prefix of the full route's generation bit-for-bit, provided the cut
// falls on a batch boundary (generation runs in non-overlapping batches of
// BatchLen; within a batch the RNG draws depend on the batch's own cell
// visibility, so a mid-batch cut is allowed to differ).
func checkTruncationConsistency(g core.Generator, seq *core.Sequence, opts Options, rep *Report) {
	L := g.ModelConfig().BatchLen
	P := (seq.Len() / 2 / L) * L
	if P == 0 && seq.Len() > L {
		P = L
	}
	if P == 0 {
		rep.skip("meta/truncation-consistency", fmt.Sprintf("route too short (%d steps, batch %d)", seq.Len(), L))
		return
	}
	prefix := &core.Sequence{
		KPIs: seq.KPIs[:P], Cells: seq.Cells[:P], Env: seq.Env[:P],
		Raw: seq.Raw[:P], Interval: seq.Interval,
	}
	full := g.GenerateSeeded(seq, opts.Seed)
	part := g.GenerateSeeded(prefix, opts.Seed)
	ok, detail := seriesEqual(full[:P], part)
	if ok {
		detail = fmt.Sprintf("prefix %d of %d steps", P, seq.Len())
	}
	rep.add(CheckResult{Name: "meta/truncation-consistency", Passed: ok, Detail: detail})
}

// checkMonotonicRSRPDistance: a route hugging a cell site must not get a
// lower mean RSRP than the same-shaped route far from it. The two probe
// routes circle a real cell of the dataset's deployment at ~150 m and
// ~1500 m, annotated by the resident world, so the model sees genuine
// context — only the distance differs.
func checkMonotonicRSRPDistance(g core.Generator, tr geo.Trajectory, opts Options, rep *Report) {
	const name = "meta/monotonic-rsrp-distance"
	ci := channelIndex(g, "RSRP")
	if ci < 0 {
		rep.skip(name, "model has no RSRP channel")
		return
	}
	centroid := trajCentroid(tr)
	vis := opts.Dataset.World.Deployment.Visible(centroid, opts.Dataset.World.VisibleRange)
	if len(vis) == 0 {
		rep.skip(name, "no cell visible near held-out route")
		return
	}
	site := vis[0].Cell.Site
	near := meanChannelOnCircle(g, opts, site, 150, ci)
	far := meanChannelOnCircle(g, opts, site, 1500, ci)
	rep.add(CheckResult{
		Name: name, Passed: far-near <= monotonicSlack,
		Observed: far - near, Limit: monotonicSlack,
		Detail: fmt.Sprintf("mean norm RSRP near=%.3f far=%.3f", near, far),
	})
}

// meanChannelOnCircle generates monotonicSamples samples on a 40-step
// circle of the given radius around site and returns the mean normalized
// value of channel ci.
func meanChannelOnCircle(g core.Generator, opts Options, site geo.Point, radius float64, ci int) float64 {
	const steps = 40
	tr := make(geo.Trajectory, steps)
	for i := 0; i < steps; i++ {
		p := geo.Offset(site, float64(i)*360/steps, radius)
		tr[i] = geo.Sample{Point: p, T: float64(i)}
	}
	cfg := g.ModelConfig()
	run := dataset.Run{Scenario: "validate-probe", Traj: tr, Meas: opts.Dataset.World.Annotate(tr)}
	seq := core.PrepareSequenceWith(run, cfg.Channels, core.PrepareOptions{
		MaxCells: cfg.MaxCells, LoadAware: cfg.LoadAware,
	})
	var vals []float64
	for s := 0; s < monotonicSamples; s++ {
		gen := g.GenerateSeeded(seq, core.DeriveSeed(opts.Seed, 1000+s))
		for t := range gen {
			vals = append(vals, gen[t][ci])
		}
	}
	return metrics.Mean(vals)
}

// checkMonotonicSINRLoad: raising every visible cell's load must not raise
// the generated SINR. Only meaningful for load-aware models (others never
// see the load attribute).
func checkMonotonicSINRLoad(g core.Generator, seq *core.Sequence, opts Options, rep *Report) {
	const name = "meta/monotonic-sinr-load"
	ci := channelIndex(g, "SINR")
	if ci < 0 {
		rep.skip(name, "model has no SINR channel")
		return
	}
	if !g.ModelConfig().LoadAware {
		rep.skip(name, "model is not load-aware")
		return
	}
	mean := func(load float64) float64 {
		loaded := seqWithLoad(seq, load)
		var vals []float64
		for s := 0; s < monotonicSamples; s++ {
			gen := g.GenerateSeeded(loaded, core.DeriveSeed(opts.Seed, 2000+s))
			for t := range gen {
				vals = append(vals, gen[t][ci])
			}
		}
		return metrics.Mean(vals)
	}
	low := mean(0.1)
	high := mean(0.9)
	rep.add(CheckResult{
		Name: name, Passed: high-low <= monotonicSlack,
		Observed: high - low, Limit: monotonicSlack,
		Detail: fmt.Sprintf("mean norm SINR load=0.1:%.3f load=0.9:%.3f", low, high),
	})
}

// seqWithLoad deep-copies the sequence's cell contexts with every cell's
// load attribute overridden. KPIs/Env/Raw are shared (read-only on the
// generation path).
func seqWithLoad(seq *core.Sequence, load float64) *core.Sequence {
	out := &core.Sequence{
		KPIs: seq.KPIs, Env: seq.Env, Raw: seq.Raw, Interval: seq.Interval,
		Cells: make([][][]float64, len(seq.Cells)),
	}
	for t, cellsAtT := range seq.Cells {
		cp := make([][]float64, len(cellsAtT))
		for i, attrs := range cellsAtT {
			a := append([]float64(nil), attrs...)
			if len(a) > core.NumCellAttrs {
				a[core.NumCellAttrs] = load
			}
			cp[i] = a
		}
		out.Cells[t] = cp
	}
	return out
}

// channelIndex finds a channel by name, -1 if absent.
func channelIndex(g core.Generator, name string) int {
	for i, ch := range g.ModelConfig().Channels {
		if ch.Name == name {
			return i
		}
	}
	return -1
}

// trajCentroid returns the mean location of a trajectory.
func trajCentroid(tr geo.Trajectory) geo.Point {
	var lat, lon float64
	for _, p := range tr {
		lat += p.Lat
		lon += p.Lon
	}
	n := float64(len(tr))
	return geo.Point{Lat: lat / n, Lon: lon / n}
}

// seriesEqual reports bit-exact equality of two series (any consistent
// orientation) and describes the first difference.
func seriesEqual(a, b [][]float64) (bool, string) {
	if len(a) != len(b) {
		return false, fmt.Sprintf("row count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false, fmt.Sprintf("row %d length %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false, fmt.Sprintf("row %d col %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	return true, ""
}
