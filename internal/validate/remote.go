package validate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/geo"
	"gendt/internal/metrics"
	"gendt/internal/serve"
)

// RemoteOptions configures a remote validation run on top of the shared
// Options.
type RemoteOptions struct {
	// Target is the replica's base URL, e.g. http://127.0.0.1:18081. The
	// gate drives its real /v1/generate path — prep cache, batcher, JSON
	// round-trip and all.
	Target string
	// Model is the registered model name to validate; empty uses the
	// replica's single-model default.
	Model string
	// Client issues the requests; nil uses a 30s-timeout default.
	Client *http.Client
}

// RunRemote executes the validation suite against what a live replica
// actually serves. The distributional pass pools values fetched over HTTP
// (same seeds as Run, so the same golden file gates both paths), and the
// metamorphic pass checks the invariants that make a remote gate
// trustworthy: the replica is deterministic across repeated requests, it
// serves bit-identically to the local reference model m (the candidate a
// rollout just pushed), and its outputs honor truncation consistency and
// RSRP-distance monotonicity end to end. The local reference model is also
// validated in-process first — a rollout gate must fail if the candidate
// file itself is bad, whether or not the replica faithfully serves it.
func RunRemote(m *core.Model, ropts RemoteOptions, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Dataset == nil {
		return nil, fmt.Errorf("validate: Options.Dataset is required")
	}
	if ropts.Target == "" {
		return nil, fmt.Errorf("validate: RemoteOptions.Target is required")
	}
	if ropts.Client == nil {
		ropts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	var g core.Generator = m
	if opts.Precision != "" && opts.Precision != core.PrecisionF64 {
		im, err := m.Freeze(opts.Precision)
		if err != nil {
			return nil, fmt.Errorf("validate: %w", err)
		}
		g = im
	}
	cfg := g.ModelConfig()
	rep := &Report{Dataset: opts.Dataset.Name}
	for _, ch := range cfg.Channels {
		rep.Channels = append(rep.Channels, ch.Name)
	}
	routes, seqs, err := heldOutSequences(cfg, opts)
	if err != nil {
		return nil, err
	}
	opts.Logf("validate: remote gate against %s (%d held-out routes)", ropts.Target, len(routes))

	// Distribution over the wire: the replica generates, we renormalize and
	// gate against the same golden as the local pass.
	distributionChecks(remoteGen(ropts, routes, cfg.Channels, opts.Seed), cfg.Channels, seqs, opts, rep)

	// Remote metamorphic invariants.
	checkRemoteDeterminism(ropts, routes[0].Traj, opts, rep)
	checkRemoteServesCandidate(g, ropts, routes[0].Traj, opts, rep)
	checkRemoteTruncation(g, ropts, routes[0].Traj, opts, rep)
	checkRemoteMonotonicRSRP(g, ropts, opts, rep)

	// Local metamorphic suite on the candidate model itself (HTTP variant
	// skipped: the remote checks above exercise the real network path).
	localOpts := opts
	localOpts.SkipHTTP = true
	metamorphicChecks(g, routes, seqs, localOpts, rep)
	return rep, nil
}

// remoteCall POSTs one generate request and decodes the response.
func remoteCall(ropts RemoteOptions, req serve.GenerateRequest) (*serve.GenerateResponse, []byte, error) {
	req.Model = ropts.Model
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	httpResp, err := ropts.Client.Post(ropts.Target+serve.EndpointGenerate, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("%s status %d: %s", serve.EndpointGenerate, httpResp.StatusCode, raw)
	}
	var resp serve.GenerateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, fmt.Errorf("decode response: %w", err)
	}
	return &resp, raw, nil
}

// routePoints converts a trajectory to request points.
func routePoints(tr geo.Trajectory) []serve.RoutePoint {
	out := make([]serve.RoutePoint, len(tr))
	for i, p := range tr {
		out[i] = serve.RoutePoint{T: p.T, Lat: p.Lat, Lon: p.Lon}
	}
	return out
}

// remoteGen fetches sample (ri, s) from the replica — one samples=1
// request per sample, seeded with RequestSeed so the replica's derived
// seed equals the local pass's — and renormalizes the physical-unit
// response into [0,1] columns.
func remoteGen(ropts RemoteOptions, routes []dataset.Run, channels []core.ChannelSpec, seed int64) genFunc {
	return func(ri, s int) ([][]float64, error) {
		resp, _, err := remoteCall(ropts, serve.GenerateRequest{
			Seed:  RequestSeed(seed, ri, s),
			Route: routePoints(routes[ri].Traj),
		})
		if err != nil {
			return nil, err
		}
		if len(resp.Series) != len(channels) {
			return nil, fmt.Errorf("route %d: response has %d channels, want %d",
				ri, len(resp.Series), len(channels))
		}
		cols := make([][]float64, len(channels))
		for c := range channels {
			cols[c] = make([]float64, len(resp.Series[c]))
			for t, v := range resp.Series[c] {
				cols[c][t] = channels[c].Normalize(v)
			}
		}
		return cols, nil
	}
}

// checkRemoteDeterminism: the same request twice must produce byte-wise
// identical series and envelope — a replica that is warm vs cold, batched
// vs unbatched, must not leak that into the payload.
func checkRemoteDeterminism(ropts RemoteOptions, tr geo.Trajectory, opts Options, rep *Report) {
	const name = "meta/remote-seed-determinism"
	if len(tr) > 64 {
		tr = tr[:64]
	}
	req := serve.GenerateRequest{Seed: opts.Seed, Samples: 2, Route: routePoints(tr)}
	a, _, err := remoteCall(ropts, req)
	if err != nil {
		rep.add(CheckResult{Name: name, Passed: false, Detail: err.Error()})
		return
	}
	b, _, err := remoteCall(ropts, req)
	if err != nil {
		rep.add(CheckResult{Name: name, Passed: false, Detail: err.Error()})
		return
	}
	if ok, detail := seriesEqual(a.Series, b.Series); !ok {
		rep.add(CheckResult{Name: name, Passed: false, Detail: "series: " + detail})
		return
	}
	if a.Envelope == nil || b.Envelope == nil {
		rep.add(CheckResult{Name: name, Passed: false, Detail: "missing envelope for samples=2"})
		return
	}
	if ok, detail := seriesEqual(a.Envelope.Min, b.Envelope.Min); !ok {
		rep.add(CheckResult{Name: name, Passed: false, Detail: "envelope min: " + detail})
		return
	}
	rep.add(CheckResult{Name: name, Passed: true,
		Detail: fmt.Sprintf("%d steps, 2 samples, repeated request bit-identical", len(tr))})
}

// checkRemoteServesCandidate: the replica's output must be bit-identical
// to the local candidate generating the same request — the proof that a
// reload actually took effect and the fleet serves the model the rollout
// pushed, not a stale or corrupted one.
func checkRemoteServesCandidate(g core.Generator, ropts RemoteOptions, tr geo.Trajectory, opts Options, rep *Report) {
	const name = "meta/remote-serves-candidate"
	if len(tr) > 64 {
		tr = tr[:64]
	}
	resp, _, err := remoteCall(ropts, serve.GenerateRequest{Seed: opts.Seed, Route: routePoints(tr)})
	if err != nil {
		rep.add(CheckResult{Name: name, Passed: false, Detail: err.Error()})
		return
	}
	world := serve.NewWorldFrom(opts.Dataset)
	seq, _ := world.Prepare(tr, g)
	expect := g.GenerateJobs([]core.GenJob{{Seq: seq, Seed: core.DeriveSeed(opts.Seed, 0)}})
	if ok, detail := seriesEqual(resp.Series, expect[0]); !ok {
		rep.add(CheckResult{Name: name, Passed: false,
			Detail: "replica output differs from candidate model: " + detail})
		return
	}
	rep.add(CheckResult{Name: name, Passed: true,
		Detail: fmt.Sprintf("%d steps bit-identical to local candidate", len(tr))})
}

// checkRemoteTruncation: generating a batch-aligned prefix of a route must
// reproduce the prefix of the full route's generation — over the wire,
// through prep cache and JSON. Denormalization is elementwise, so the
// invariant carries from normalized to physical units exactly.
func checkRemoteTruncation(g core.Generator, ropts RemoteOptions, tr geo.Trajectory, opts Options, rep *Report) {
	const name = "meta/remote-truncation-consistency"
	L := g.ModelConfig().BatchLen
	P := (len(tr) / 2 / L) * L
	if P == 0 && len(tr) > L {
		P = L
	}
	if P < 2 {
		rep.skip(name, fmt.Sprintf("route too short (%d steps, batch %d)", len(tr), L))
		return
	}
	full, _, err := remoteCall(ropts, serve.GenerateRequest{Seed: opts.Seed, Route: routePoints(tr)})
	if err != nil {
		rep.add(CheckResult{Name: name, Passed: false, Detail: err.Error()})
		return
	}
	part, _, err := remoteCall(ropts, serve.GenerateRequest{Seed: opts.Seed, Route: routePoints(tr[:P])})
	if err != nil {
		rep.add(CheckResult{Name: name, Passed: false, Detail: err.Error()})
		return
	}
	// Series are [channel][t]: compare the prefix per channel.
	if len(full.Series) != len(part.Series) {
		rep.add(CheckResult{Name: name, Passed: false,
			Detail: fmt.Sprintf("channel count %d vs %d", len(full.Series), len(part.Series))})
		return
	}
	prefix := make([][]float64, len(full.Series))
	for c := range full.Series {
		if len(full.Series[c]) < P {
			rep.add(CheckResult{Name: name, Passed: false,
				Detail: fmt.Sprintf("full series shorter (%d) than prefix %d", len(full.Series[c]), P)})
			return
		}
		prefix[c] = full.Series[c][:P]
	}
	ok, detail := seriesEqual(prefix, part.Series)
	if ok {
		detail = fmt.Sprintf("prefix %d of %d steps", P, len(tr))
	}
	rep.add(CheckResult{Name: name, Passed: ok, Detail: detail})
}

// checkRemoteMonotonicRSRP: the physical sanity check, end to end — a
// route hugging a live cell must not get lower mean RSRP from the replica
// than the same-shaped route 10× farther out.
func checkRemoteMonotonicRSRP(g core.Generator, ropts RemoteOptions, opts Options, rep *Report) {
	const name = "meta/remote-monotonic-rsrp-distance"
	ci := channelIndex(g, "RSRP")
	if ci < 0 {
		rep.skip(name, "model has no RSRP channel")
		return
	}
	dep := opts.Dataset.World.Deployment
	if len(dep.Cells) == 0 {
		rep.skip(name, "dataset world has no cells")
		return
	}
	site := dep.Cells[0].Site
	mean := func(radius float64) (float64, error) {
		const steps = 40
		tr := make(geo.Trajectory, steps)
		for i := 0; i < steps; i++ {
			p := geo.Offset(site, float64(i)*360/steps, radius)
			tr[i] = geo.Sample{Point: p, T: float64(i)}
		}
		ch := g.ModelConfig().Channels[ci]
		var vals []float64
		for s := 0; s < monotonicSamples; s++ {
			resp, _, err := remoteCall(ropts, serve.GenerateRequest{
				Seed: core.DeriveSeed(opts.Seed, 1000+s), Route: routePoints(tr),
			})
			if err != nil {
				return 0, err
			}
			if len(resp.Series) <= ci {
				return 0, fmt.Errorf("response has %d channels, want > %d", len(resp.Series), ci)
			}
			for _, v := range resp.Series[ci] {
				vals = append(vals, ch.Normalize(v))
			}
		}
		return metrics.Mean(vals), nil
	}
	near, err := mean(150)
	if err != nil {
		rep.add(CheckResult{Name: name, Passed: false, Detail: err.Error()})
		return
	}
	far, err := mean(1500)
	if err != nil {
		rep.add(CheckResult{Name: name, Passed: false, Detail: err.Error()})
		return
	}
	rep.add(CheckResult{
		Name: name, Passed: far-near <= monotonicSlack,
		Observed: far - near, Limit: monotonicSlack,
		Detail: fmt.Sprintf("mean norm RSRP near=%.3f far=%.3f", near, far),
	})
}
