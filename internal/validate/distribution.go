package validate

import (
	"fmt"
	"math"

	"gendt/internal/core"
	"gendt/internal/metrics"
)

// hwdBins is the histogram resolution of the HWD gate, matching the
// paper's 50-bin evaluation scaled down for the short held-out routes the
// gate generates.
const hwdBins = 40

// genFunc produces the generated series for held-out route ri, sample s,
// as normalized per-channel columns [nch][T]. Run backs it with the
// in-process generator; RunRemote backs it with a replica's HTTP path —
// both draw the same seeds, so one golden file gates either source.
type genFunc func(ri, s int) ([][]float64, error)

// RequestSeed is the request seed a validation client sends for sample s
// of held-out route ri: two DeriveSeed levels over the run seed. A serving
// replica fans a request out as DeriveSeed(reqSeed, i), so the value it
// generates for a samples=1 request is DeriveSeed(RequestSeed(...), 0) —
// and the local pass draws exactly that, which is what makes the local and
// remote distribution pools bit-comparable.
func RequestSeed(seed int64, ri, s int) int64 {
	return core.DeriveSeed(core.DeriveSeed(seed, ri), s)
}

// localGen generates sample (ri, s) from the in-process generator using
// the serving-path sequences and the serving-path seed schedule.
func localGen(g core.Generator, genSeqs []*core.Sequence, seed int64) genFunc {
	nch := len(g.ModelConfig().Channels)
	return func(ri, s int) ([][]float64, error) {
		gen := g.GenerateSeeded(genSeqs[ri], core.DeriveSeed(RequestSeed(seed, ri, s), 0))
		return columns(gen, nch), nil
	}
}

// distributionChecks pulls SamplesPerRoute independent samples per
// held-out route from gen, pools generated and ground-truth values per
// channel, and gates the five distributional statistics against the golden
// tolerances. All statistics are computed in normalized [0,1] units so one
// tolerance scale covers channels with very different physical ranges.
func distributionChecks(gen genFunc, channels []core.ChannelSpec, seqs []*core.Sequence, opts Options, rep *Report) {
	nch := len(channels)
	genPool := make([][]float64, nch) // generated values pooled over routes×samples
	gtPool := make([][]float64, nch)  // ground truth pooled over routes (once each)
	acfErr := make([]float64, nch)    // per-channel |Δautocorr| sums
	acfN := make([]float64, nch)

	for ri, seq := range seqs {
		gtCols := columns(seq.KPIs, nch)
		for c := 0; c < nch; c++ {
			gtPool[c] = append(gtPool[c], gtCols[c]...)
		}
		for s := 0; s < opts.SamplesPerRoute; s++ {
			genCols, err := gen(ri, s)
			if err != nil {
				rep.add(CheckResult{
					Name: "dist/generate", Passed: false,
					Detail: fmt.Sprintf("route %d sample %d: %v", ri, s, err),
				})
				return
			}
			for c := 0; c < nch; c++ {
				genPool[c] = append(genPool[c], genCols[c]...)
				// Autocorrelation compares per route (never across route
				// seams) so it measures temporal structure, not pooling
				// artifacts.
				for _, lag := range AutocorrLags {
					if len(genCols[c]) <= lag {
						continue
					}
					d := math.Abs(metrics.Autocorr(genCols[c], lag) - metrics.Autocorr(gtCols[c], lag))
					acfErr[c] += d
					acfN[c]++
				}
			}
		}
	}

	for c := 0; c < nch; c++ {
		name := channels[c].Name
		obs := ChannelStats{Channel: name}
		ks, err := metrics.KS(genPool[c], gtPool[c])
		if err != nil {
			rep.add(CheckResult{Name: "dist/" + name + "/ks", Passed: false, Detail: err.Error()})
			continue
		}
		obs.KS = ks
		hwd, err := metrics.HWD(genPool[c], gtPool[c], hwdBins)
		if err != nil {
			rep.add(CheckResult{Name: "dist/" + name + "/hwd", Passed: false, Detail: err.Error()})
			continue
		}
		obs.HWD = hwd
		obs.MeanAbs = math.Abs(metrics.Mean(genPool[c]) - metrics.Mean(gtPool[c]))
		obs.StdAbs = math.Abs(metrics.Std(genPool[c]) - metrics.Std(gtPool[c]))
		if acfN[c] > 0 {
			obs.Autocorr = acfErr[c] / acfN[c]
		}
		rep.Observed = append(rep.Observed, obs)

		if opts.Golden == nil {
			for _, metric := range []string{"ks", "hwd", "mean", "std", "autocorr"} {
				rep.skip("dist/"+name+"/"+metric, "no golden tolerances (observe-only)")
			}
			continue
		}
		tol, ok := opts.Golden.channel(name)
		if !ok {
			rep.add(CheckResult{
				Name: "dist/" + name + "/golden", Passed: false,
				Detail: fmt.Sprintf("golden file has no tolerances for channel %s", name),
			})
			continue
		}
		gate := func(metric string, observed, limit float64) {
			rep.add(CheckResult{
				Name: "dist/" + name + "/" + metric, Passed: observed <= limit,
				Observed: observed, Limit: limit,
			})
		}
		gate("ks", obs.KS, tol.KS)
		gate("hwd", obs.HWD, tol.HWD)
		gate("mean", obs.MeanAbs, tol.MeanAbs)
		gate("std", obs.StdAbs, tol.StdAbs)
		gate("autocorr", obs.Autocorr, tol.Autocorr)
	}

	if opts.Golden != nil && opts.Golden.Dataset != rep.Dataset {
		rep.add(CheckResult{
			Name: "dist/golden-config", Passed: false,
			Detail: fmt.Sprintf("golden derived on dataset %q, validating dataset %q",
				opts.Golden.Dataset, rep.Dataset),
		})
	}
}

// columns transposes a [T][nch] series into per-channel columns.
func columns(series [][]float64, nch int) [][]float64 {
	out := make([][]float64, nch)
	for c := 0; c < nch; c++ {
		col := make([]float64, len(series))
		for t := range series {
			col[t] = series[t][c]
		}
		out[c] = col
	}
	return out
}
