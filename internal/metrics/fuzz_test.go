package metrics

import (
	"math"
	"testing"
)

// FuzzDTW exercises the DTW dynamic program with arbitrary series shapes
// and band widths: it must never panic and must stay symmetric and
// non-negative.
func FuzzDTW(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1}, 2)
	f.Add([]byte{0}, []byte{0, 0, 0, 0, 0, 0, 0, 0}, 1)
	f.Add([]byte{255, 0, 255}, []byte{128}, 0)
	f.Add([]byte{7, 7, 7, 7, 7, 7}, []byte{7, 7, 7}, -3)
	f.Add([]byte{0, 255, 0, 255, 0, 255}, []byte{255, 0, 255, 0}, 64)
	f.Add([]byte{1}, []byte{1}, 1)
	f.Fuzz(func(t *testing.T, a, b []byte, window int) {
		if len(a) == 0 || len(b) == 0 || len(a) > 64 || len(b) > 64 {
			return
		}
		if window < -10 || window > 128 {
			return
		}
		x := make([]float64, len(a))
		y := make([]float64, len(b))
		for i, v := range a {
			x[i] = float64(v)
		}
		for i, v := range b {
			y[i] = float64(v)
		}
		d1, err1 := DTW(x, y, window)
		d2, err2 := DTW(y, x, window)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("asymmetric errors: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if d1 < 0 || math.IsNaN(d1) {
			t.Fatalf("DTW = %v", d1)
		}
		if math.Abs(d1-d2) > 1e-9*(1+d1) {
			t.Fatalf("DTW not symmetric: %v vs %v", d1, d2)
		}
	})
}

// FuzzHWD checks the histogram Wasserstein distance never panics, is
// non-negative, and is symmetric.
func FuzzHWD(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{4, 3, 2, 1}, 10)
	f.Add([]byte{0, 0}, []byte{255}, 1)
	f.Add([]byte{128, 128, 128}, []byte{128, 128}, 500)
	f.Add([]byte{0, 255}, []byte{0, 255}, -1)
	f.Fuzz(func(t *testing.T, a, b []byte, bins int) {
		if len(a) == 0 || len(b) == 0 || len(a) > 128 || len(b) > 128 {
			return
		}
		if bins < -5 || bins > 500 {
			return
		}
		x := make([]float64, len(a))
		y := make([]float64, len(b))
		for i, v := range a {
			x[i] = float64(v)
		}
		for i, v := range b {
			y[i] = float64(v)
		}
		d1, err := HWD(x, y, bins)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		d2, _ := HWD(y, x, bins)
		if d1 < 0 || math.IsNaN(d1) {
			t.Fatalf("HWD = %v", d1)
		}
		if math.Abs(d1-d2) > 1e-9*(1+d1) {
			t.Fatalf("HWD not symmetric: %v vs %v", d1, d2)
		}
	})
}

// FuzzKS checks the two-sample KS distance never panics and always lands
// in [0, 1], symmetrically.
func FuzzKS(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{4, 3, 2, 1})
	f.Add([]byte{0}, []byte{255})
	f.Add([]byte{9, 9, 9, 9}, []byte{9, 9})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, []byte{7})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) == 0 || len(b) == 0 || len(a) > 256 || len(b) > 256 {
			return
		}
		x := make([]float64, len(a))
		y := make([]float64, len(b))
		for i, v := range a {
			x[i] = float64(v)
		}
		for i, v := range b {
			y[i] = float64(v)
		}
		d1, err := KS(x, y)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		d2, _ := KS(y, x)
		if d1 < 0 || d1 > 1 || math.IsNaN(d1) {
			t.Fatalf("KS = %v, want in [0,1]", d1)
		}
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("KS not symmetric: %v vs %v", d1, d2)
		}
	})
}
