// Package metrics implements the fidelity metrics of the paper's §5.1:
// mean absolute error (MAE), dynamic time warping distance (DTW), and the
// histogram Wasserstein distance (HWD), plus the histogram/CDF helpers the
// experiments use.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// MAE returns the mean absolute error between two equal-length series.
func MAE(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("metrics: MAE requires equal-length series")
	}
	if len(x) == 0 {
		return 0, errors.New("metrics: MAE of empty series")
	}
	sum := 0.0
	for i := range x {
		sum += math.Abs(x[i] - y[i])
	}
	return sum / float64(len(x)), nil
}

// DTW returns the dynamic-time-warping distance between two series, with
// per-step cost |x_i - y_j|, normalized by the warping path length so that
// values are comparable across series lengths. A non-positive window
// disables the Sakoe–Chiba band constraint.
func DTW(x, y []float64, window int) (float64, error) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 0, errors.New("metrics: DTW of empty series")
	}
	if window <= 0 {
		window = max(n, m)
	}
	window = max(window, abs(n-m)) // band must cover the diagonal shift
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	steps := make([][]int32, n+1) // path length tracker
	for i := range steps {
		steps[i] = make([]int32, m+1)
	}
	for j := 0; j <= m; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := 0; j <= m; j++ {
			cur[j] = inf
		}
		lo := max(1, i-window)
		hi := min(m, i+window)
		for j := lo; j <= hi; j++ {
			cost := math.Abs(x[i-1] - y[j-1])
			// min of (i-1,j), (i,j-1), (i-1,j-1)
			best := prev[j]
			bs := steps[i-1][j]
			if cur[j-1] < best {
				best = cur[j-1]
				bs = steps[i][j-1]
			}
			if prev[j-1] < best {
				best = prev[j-1]
				bs = steps[i-1][j-1]
			}
			if best == inf {
				continue
			}
			cur[j] = cost + best
			steps[i][j] = bs + 1
		}
		prev, cur = cur, prev
	}
	total := prev[m]
	if total == inf {
		return 0, errors.New("metrics: DTW band excluded all paths")
	}
	return total / float64(steps[n][m]), nil
}

// Histogram bins values into nBins equal-width bins over [lo, hi],
// returning normalized bin masses (summing to 1). Values outside the range
// clamp to the edge bins.
func Histogram(xs []float64, lo, hi float64, nBins int) []float64 {
	h := make([]float64, nBins)
	if len(xs) == 0 || nBins <= 0 || hi <= lo {
		return h
	}
	w := (hi - lo) / float64(nBins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		h[b]++
	}
	for i := range h {
		h[i] /= float64(len(xs))
	}
	return h
}

// HWD computes the histogram Wasserstein distance (paper §5.1): the
// 1-Wasserstein (earth mover's) distance between the empirical histograms
// of the two samples over their pooled range, expressed in the data's
// units. For 1-D distributions W1 is the L1 distance between CDFs times
// the bin width.
func HWD(x, y []float64, nBins int) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, errors.New("metrics: HWD of empty sample")
	}
	if nBins <= 0 {
		nBins = 50
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	for _, v := range y {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi == lo {
		return 0, nil
	}
	hx := Histogram(x, lo, hi, nBins)
	hy := Histogram(y, lo, hi, nBins)
	w := (hi - lo) / float64(nBins)
	// W1 = sum over bins of |CDFx - CDFy| * binWidth.
	var cx, cy, d float64
	for i := 0; i < nBins; i++ {
		cx += hx[i]
		cy += hy[i]
		d += math.Abs(cx-cy) * w
	}
	return d, nil
}

// WassersteinExact computes the exact 1-D 1-Wasserstein distance between
// two samples via sorted quantile matching (no binning). Useful as a
// cross-check of HWD in tests.
func WassersteinExact(x, y []float64) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, errors.New("metrics: Wasserstein of empty sample")
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	// Integrate |F_x^{-1}(q) - F_y^{-1}(q)| dq over q in (0,1).
	n := lcmCap(len(xs), len(ys), 4096)
	sum := 0.0
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / float64(n)
		sum += math.Abs(quantileSorted(xs, q) - quantileSorted(ys, q))
	}
	return sum / float64(n), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	idx := q * float64(len(sorted))
	i := int(idx)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func lcmCap(a, b, cap int) int {
	n := a
	if b > n {
		n = b
	}
	n *= 2
	if n > cap {
		n = cap
	}
	return n
}

// KS returns the two-sample Kolmogorov–Smirnov statistic: the supremum of
// the absolute difference between the empirical CDFs of x and y. It lies in
// [0, 1], is symmetric, and is zero iff the two samples induce identical
// empirical distributions — the scale-free distributional gate the
// validation subsystem pairs with HWD (which is in data units).
func KS(x, y []float64) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, errors.New("metrics: KS of empty sample")
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	// Sweep the merged order of distinct sample values; the CDF gap can only
	// attain its supremum just after a sample point. Both indices must step
	// past ALL copies of the current value before the gap is measured —
	// comparing mid-tie would report a spurious gap for tied samples (and
	// break symmetry).
	var d float64
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		// NaNs sort to the front and compare unequal to everything, which
		// would stall the tie-skipping below; consume them as if they were
		// the smallest values.
		for i < len(xs) && math.IsNaN(xs[i]) {
			i++
		}
		for j < len(ys) && math.IsNaN(ys[j]) {
			j++
		}
		if i >= len(xs) || j >= len(ys) {
			break
		}
		v := math.Min(xs[i], ys[j])
		for i < len(xs) && xs[i] == v {
			i++
		}
		for j < len(ys) && ys[j] == v {
			j++
		}
		gap := math.Abs(float64(i)/float64(len(xs)) - float64(j)/float64(len(ys)))
		if gap > d {
			d = gap
		}
	}
	return d, nil
}

// Autocorr returns the lag-k sample autocorrelation of xs (the normalized
// autocovariance at lag k). A constant or too-short series returns 0. The
// paper's KPI series are strongly autocorrelated at short lags; preserving
// that structure is what separates a temporal generator from i.i.d.
// distribution sampling, so the validation gate compares generated and
// measured autocorrelation per channel.
func Autocorr(xs []float64, lag int) float64 {
	if lag <= 0 || len(xs) <= lag {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := lag; i < len(xs); i++ {
		num += (xs[i] - m) * (xs[i-lag] - m)
	}
	for _, x := range xs {
		den += (x - m) * (x - m)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// CDF returns (sorted values, cumulative probabilities) for plotting
// empirical CDFs (paper Figures 13, 16).
func CDF(xs []float64) (vals, probs []float64) {
	vals = append([]float64(nil), xs...)
	sort.Float64s(vals)
	probs = make([]float64, len(vals))
	for i := range vals {
		probs[i] = float64(i+1) / float64(len(vals))
	}
	return vals, probs
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// RateOfChange returns the mean absolute first-order difference of a
// series — the "ROC" statistic of the paper's Table 2.
func RateOfChange(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := 0.0
	for i := 1; i < len(xs); i++ {
		s += math.Abs(xs[i] - xs[i-1])
	}
	return s / float64(len(xs)-1)
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
