package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// propSeries builds deterministic pseudo-random series pairs of assorted
// lengths for the metric-property tests.
func propSeries(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

var propPairs = []struct {
	name   string
	nx, ny int
}{
	{"short", 8, 8},
	{"medium", 64, 64},
	{"long", 300, 300},
	{"uneven", 50, 90},
	{"tiny-vs-long", 2, 200},
}

// TestMetricNonNegativity: every distance is >= 0 and finite on arbitrary
// input.
func TestMetricNonNegativity(t *testing.T) {
	for i, p := range propPairs {
		x := propSeries(int64(100+i), p.nx)
		y := propSeries(int64(200+i), p.ny)
		check := func(name string, d float64, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s/%s: %v", p.name, name, err)
			}
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				t.Errorf("%s/%s = %v, want finite non-negative", p.name, name, d)
			}
		}
		if p.nx == p.ny {
			d, err := MAE(x, y)
			check("MAE", d, err)
		}
		d, err := DTW(x, y, 0)
		check("DTW", d, err)
		d, err = HWD(x, y, 50)
		check("HWD", d, err)
		d, err = KS(x, y)
		check("KS", d, err)
		if d > 1 {
			t.Errorf("%s/KS = %v, want <= 1", p.name, d)
		}
		d, err = WassersteinExact(x, y)
		check("Wasserstein", d, err)
	}
}

// TestMetricSymmetry: d(x,y) == d(y,x) for every symmetric metric.
func TestMetricSymmetry(t *testing.T) {
	for i, p := range propPairs {
		x := propSeries(int64(300+i), p.nx)
		y := propSeries(int64(400+i), p.ny)
		check := func(name string, a, b float64) {
			t.Helper()
			if math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
				t.Errorf("%s/%s not symmetric: %v vs %v", p.name, name, a, b)
			}
		}
		if p.nx == p.ny {
			a, _ := MAE(x, y)
			b, _ := MAE(y, x)
			check("MAE", a, b)
		}
		a, _ := DTW(x, y, 0)
		b, _ := DTW(y, x, 0)
		check("DTW", a, b)
		a, _ = HWD(x, y, 50)
		b, _ = HWD(y, x, 50)
		check("HWD", a, b)
		a, _ = KS(x, y)
		b, _ = KS(y, x)
		check("KS", a, b)
	}
}

// TestMetricIdentity: d(x,x) == 0 (identity of indiscernibles, one
// direction).
func TestMetricIdentity(t *testing.T) {
	for i, n := range []int{1, 5, 128} {
		x := propSeries(int64(500+i), n)
		if d, _ := MAE(x, x); d != 0 {
			t.Errorf("MAE(x,x) = %v", d)
		}
		if d, _ := DTW(x, x, 0); d != 0 {
			t.Errorf("DTW(x,x) = %v", d)
		}
		if d, _ := HWD(x, x, 50); d != 0 {
			t.Errorf("HWD(x,x) = %v", d)
		}
		if d, _ := KS(x, x); d != 0 {
			t.Errorf("KS(x,x) = %v", d)
		}
	}
}

// TestDTWBoundedByMAE: for equal-length series the normalized DTW with an
// unconstrained band never exceeds the MAE — the diagonal path is always
// admissible, its total cost is n*MAE, and the optimal path is at least as
// cheap over at least as many steps.
func TestDTWBoundedByMAE(t *testing.T) {
	for i := 0; i < 20; i++ {
		n := 5 + i*7
		x := propSeries(int64(600+i), n)
		y := propSeries(int64(700+i), n)
		dtw, err := DTW(x, y, 0)
		if err != nil {
			t.Fatal(err)
		}
		mae, err := MAE(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if dtw > mae+1e-12 {
			t.Errorf("n=%d: DTW %v > MAE %v", n, dtw, mae)
		}
	}
}

// TestKSSeparatesDistributions: KS must be ~0 for two samples of the same
// distribution and large for disjoint supports.
func TestKSSeparatesDistributions(t *testing.T) {
	x := propSeries(800, 2000)
	y := propSeries(801, 2000)
	same, err := KS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if same > 0.1 {
		t.Errorf("KS of same-distribution samples = %v, want small", same)
	}
	far := make([]float64, len(y))
	for i, v := range y {
		far[i] = v + 10
	}
	apart, err := KS(x, far)
	if err != nil {
		t.Fatal(err)
	}
	if apart != 1 {
		t.Errorf("KS of disjoint supports = %v, want 1", apart)
	}
}

// TestAutocorrProperties: lag-k autocorrelation is bounded by ~1, is 1-ish
// for a constant-increment structure, near zero for white noise, and 0 on
// degenerate input.
func TestAutocorrProperties(t *testing.T) {
	noise := propSeries(900, 4000)
	if ac := Autocorr(noise, 1); math.Abs(ac) > 0.1 {
		t.Errorf("white-noise autocorr = %v, want ~0", ac)
	}
	// A slow sine is strongly autocorrelated at small lags.
	wave := make([]float64, 500)
	for i := range wave {
		wave[i] = math.Sin(float64(i) / 30)
	}
	if ac := Autocorr(wave, 1); ac < 0.9 {
		t.Errorf("sine autocorr = %v, want near 1", ac)
	}
	for _, lag := range []int{1, 5, 10} {
		if ac := Autocorr(noise, lag); math.Abs(ac) > 1+1e-9 {
			t.Errorf("lag %d: |autocorr| = %v > 1", lag, ac)
		}
	}
	constant := []float64{3, 3, 3, 3}
	if ac := Autocorr(constant, 1); ac != 0 {
		t.Errorf("constant-series autocorr = %v, want 0", ac)
	}
	if ac := Autocorr(noise, 0); ac != 0 {
		t.Errorf("lag-0 autocorr = %v, want 0 (invalid lag)", ac)
	}
	if ac := Autocorr([]float64{1, 2}, 5); ac != 0 {
		t.Errorf("lag > len autocorr = %v, want 0", ac)
	}
}

// TestEmptyInputErrors: the two-sample metrics reject empty samples
// instead of returning a silent zero.
func TestEmptyInputErrors(t *testing.T) {
	x := []float64{1, 2}
	if _, err := KS(nil, x); err == nil {
		t.Error("KS(nil, x): want error")
	}
	if _, err := KS(x, nil); err == nil {
		t.Error("KS(x, nil): want error")
	}
}
