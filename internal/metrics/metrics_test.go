package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMAEBasic(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("MAE = %v, want 1", got)
	}
}

func TestMAEErrors(t *testing.T) {
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Error("empty input should error")
	}
}

func TestMAEIdentityIsZero(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		m, err := MAE(xs, xs)
		return err == nil && m == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDTWIdenticalIsZero(t *testing.T) {
	x := []float64{1, 3, 2, 5, 4}
	d, err := DTW(x, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("DTW(x,x) = %v, want 0", d)
	}
}

func TestDTWShiftInvariance(t *testing.T) {
	// DTW should forgive a small temporal shift that MAE punishes.
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = math.Sin(float64(i) * 0.2)
		y[i] = math.Sin(float64(i-3) * 0.2) // shifted by 3 samples
	}
	mae, _ := MAE(x, y)
	dtw, err := DTW(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dtw >= mae {
		t.Errorf("DTW %v should be below MAE %v for a shifted signal", dtw, mae)
	}
}

func TestDTWDifferentLengths(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}
	d, err := DTW(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.01 {
		t.Errorf("DTW of time-stretched copy = %v, want ~0", d)
	}
}

func TestDTWBandCoversDiagonal(t *testing.T) {
	x := make([]float64, 50)
	y := make([]float64, 120)
	for i := range y {
		y[i] = 1
	}
	if _, err := DTW(x, y, 1); err != nil {
		t.Fatalf("narrow band with length mismatch should still work: %v", err)
	}
}

func TestDTWEmptyErrors(t *testing.T) {
	if _, err := DTW(nil, []float64{1}, 0); err == nil {
		t.Error("empty series should error")
	}
}

func TestDTWSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 40)
	y := make([]float64, 55)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	a, _ := DTW(x, y, 0)
	b, _ := DTW(y, x, 0)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("DTW not symmetric: %v vs %v", a, b)
	}
}

func TestHistogramMassSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h := Histogram(xs, -4, 4, 40)
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram mass = %v, want 1", sum)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := Histogram([]float64{-100, 100}, 0, 1, 4)
	if h[0] != 0.5 || h[3] != 0.5 {
		t.Errorf("outliers not clamped to edge bins: %v", h)
	}
}

func TestHWDIdenticalIsZero(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	d, err := HWD(x, x, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("HWD(x,x) = %v, want 0", d)
	}
}

func TestHWDDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 2000)
	y := make([]float64, 2000)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 2 // shifted distribution
	}
	d, err := HWD(x, y, 50)
	if err != nil {
		t.Fatal(err)
	}
	// W1 between N(0,1) and N(2,1) is exactly 2.
	if math.Abs(d-2) > 0.3 {
		t.Errorf("HWD = %v, want ~2", d)
	}
}

func TestHWDMatchesExactWasserstein(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 3000)
	y := make([]float64, 3000)
	for i := range x {
		x[i] = rng.NormFloat64() * 2
		y[i] = rng.NormFloat64() + 1
	}
	hwd, err := HWD(x, y, 200)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := WassersteinExact(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hwd-exact) > 0.15*exact+0.05 {
		t.Errorf("HWD %v vs exact W1 %v diverge", hwd, exact)
	}
}

func TestHWDConstantSeries(t *testing.T) {
	d, err := HWD([]float64{5, 5, 5}, []float64{5, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("HWD of equal constants = %v, want 0", d)
	}
}

func TestCDFMonotone(t *testing.T) {
	vals, probs := CDF([]float64{3, 1, 2})
	if vals[0] != 1 || vals[2] != 3 {
		t.Errorf("CDF values not sorted: %v", vals)
	}
	if probs[len(probs)-1] != 1 {
		t.Errorf("CDF must end at 1, got %v", probs[len(probs)-1])
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] <= probs[i-1] {
			t.Errorf("CDF probs not increasing")
		}
	}
}

func TestMeanStdRoc(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	if s := Std(xs); math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Std = %v", s)
	}
	if r := RateOfChange(xs); r != 1 {
		t.Errorf("ROC = %v, want 1", r)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || RateOfChange(nil) != 0 {
		t.Error("empty-input statistics should be 0")
	}
}

func TestHWDErrors(t *testing.T) {
	if _, err := HWD(nil, []float64{1}, 10); err == nil {
		t.Error("empty sample should error")
	}
	if _, err := WassersteinExact(nil, []float64{1}); err == nil {
		t.Error("empty sample should error")
	}
}
