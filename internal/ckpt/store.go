package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Manifest describes one checkpoint on disk. The payload lives in a
// sibling file; the manifest records its identity and a CRC32 (IEEE) over
// its exact bytes, so recovery can tell a complete checkpoint from a torn
// or bit-rotted one without parsing the payload.
type Manifest struct {
	Version int     `json:"version"`
	Epoch   int     `json:"epoch"`
	Payload string  `json:"payload"` // payload file name, relative to the dir
	Size    int64   `json:"size"`    // payload byte length
	CRC32   uint32  `json:"crc32"`   // IEEE CRC of the payload bytes
	Score   float64 `json:"score"`   // retention score (training MSE; lower is better)
}

// manifestVersion is the current manifest schema version.
const manifestVersion = 1

// ErrNoCheckpoint is returned by Latest when the directory holds no valid
// checkpoint.
var ErrNoCheckpoint = errors.New("ckpt: no valid checkpoint")

// Store reads and writes checkpoints in one directory through an
// injectable filesystem. Not safe for concurrent use by multiple writers;
// one training process owns a checkpoint directory.
type Store struct {
	fs   FS
	dir  string
	keep int // retain the newest `keep` checkpoints (plus the best-scoring one)
}

// DefaultKeep is the retention depth when NewStore is given keep <= 0.
const DefaultKeep = 3

// NewStore opens (creating if needed) a checkpoint directory on fsys.
// keep <= 0 selects DefaultKeep. Pass OSFS{} for the real filesystem.
func NewStore(fsys FS, dir string, keep int) (*Store, error) {
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: mkdir %s: %w", dir, err)
	}
	return &Store{fs: fsys, dir: dir, keep: keep}, nil
}

func payloadName(epoch int) string  { return fmt.Sprintf("ckpt-%08d.json", epoch) }
func manifestName(epoch int) string { return fmt.Sprintf("ckpt-%08d.manifest.json", epoch) }

const manifestSuffix = ".manifest.json"

// Save durably writes one checkpoint: the payload first (atomically), then
// its manifest (atomically). Ordering matters — a manifest only ever
// describes a payload that is already durable, so a crash between the two
// leaves an orphan payload that recovery ignores, never a manifest without
// its payload bytes. After a successful write, retention prunes old
// checkpoints.
func (s *Store) Save(epoch int, score float64, payload []byte) error {
	if err := WriteFileAtomic(s.fs, filepath.Join(s.dir, payloadName(epoch)), payload); err != nil {
		return err
	}
	man := Manifest{
		Version: manifestVersion,
		Epoch:   epoch,
		Payload: payloadName(epoch),
		Size:    int64(len(payload)),
		CRC32:   crc32.ChecksumIEEE(payload),
		Score:   score,
	}
	mb, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("ckpt: marshal manifest: %w", err)
	}
	if err := WriteFileAtomic(s.fs, filepath.Join(s.dir, manifestName(epoch)), mb); err != nil {
		return err
	}
	return s.prune()
}

// List returns every *valid-looking* manifest in the directory, newest
// epoch first. Manifests that fail to parse are skipped (a torn manifest
// is equivalent to no manifest); payload validation happens at load time.
func (s *Store) List() []Manifest {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []Manifest
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, manifestSuffix) || strings.HasSuffix(name, tmpSuffix) {
			continue
		}
		data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil || m.Version != manifestVersion || m.Payload == "" {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch > out[j].Epoch })
	return out
}

// verify loads and checks one manifest's payload bytes.
func (s *Store) verify(m Manifest) ([]byte, error) {
	data, err := s.fs.ReadFile(filepath.Join(s.dir, m.Payload))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != m.Size {
		return nil, fmt.Errorf("ckpt: %s: size %d, manifest says %d", m.Payload, len(data), m.Size)
	}
	if crc := crc32.ChecksumIEEE(data); crc != m.CRC32 {
		return nil, fmt.Errorf("ckpt: %s: crc %08x, manifest says %08x", m.Payload, crc, m.CRC32)
	}
	return data, nil
}

// Latest returns the newest checkpoint whose payload verifies against its
// manifest, falling back through older checkpoints past any torn or
// corrupt one. ErrNoCheckpoint means the directory holds nothing usable.
func (s *Store) Latest() (Manifest, []byte, error) {
	for _, m := range s.List() {
		data, err := s.verify(m)
		if err != nil {
			continue
		}
		return m, data, nil
	}
	return Manifest{}, nil, ErrNoCheckpoint
}

// Load returns the verified payload of one specific epoch.
func (s *Store) Load(epoch int) (Manifest, []byte, error) {
	for _, m := range s.List() {
		if m.Epoch != epoch {
			continue
		}
		data, err := s.verify(m)
		if err != nil {
			return Manifest{}, nil, err
		}
		return m, data, nil
	}
	return Manifest{}, nil, ErrNoCheckpoint
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// prune applies retention: keep the newest s.keep checkpoints plus the
// best-scoring (lowest Score) one, delete the rest. Orphan payloads and
// stale .tmp files from crashed writes are also swept. Prune errors are
// non-fatal to Save — the checkpoint itself is already durable — but the
// first one is reported so operators notice a dirty directory.
func (s *Store) prune() error {
	mans := s.List()
	if len(mans) == 0 {
		return nil
	}
	keep := make(map[int]bool, s.keep+1)
	for i := 0; i < len(mans) && i < s.keep; i++ {
		keep[mans[i].Epoch] = true
	}
	best := mans[0]
	for _, m := range mans[1:] {
		if m.Score < best.Score {
			best = m
		}
	}
	keep[best.Epoch] = true

	keepFile := make(map[string]bool, 2*len(keep))
	for _, m := range mans {
		if keep[m.Epoch] {
			keepFile[manifestName(m.Epoch)] = true
			keepFile[m.Payload] = true
		}
	}
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || keepFile[name] || !strings.HasPrefix(name, "ckpt-") {
			continue
		}
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && firstErr == nil && !os.IsNotExist(err) {
			firstErr = err
		}
	}
	return firstErr
}
