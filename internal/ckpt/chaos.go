package ckpt

import (
	"errors"
	"os"
	"sync"
)

// ErrInjected is the error returned by every injected fault.
var ErrInjected = errors.New("ckpt: injected fault")

// ChaosOpts selects which operations fail. Counts are 1-based and global
// per ChaosFS: FailWrite=3 fails the third Write call made through the
// filesystem, and every write after it (a crashed process does not come
// back). Zero disables that fault.
type ChaosOpts struct {
	FailWrite  int // fail the n-th (and subsequent) Write
	FailSync   int // fail the n-th (and subsequent) file Sync
	FailRename int // fail the n-th (and subsequent) Rename
	FailCreate int // fail the n-th (and subsequent) Create

	// Torn makes a failing Write first land a prefix of the buffer (half,
	// rounded down) before reporting the error — the classic torn write.
	Torn bool

	// TruncateFile silently truncates the n-th created file to half its
	// written size on Close while still reporting success: the model for a
	// file whose tail never reached disk even though the writer believed
	// it had (e.g. a lost page cache without the protocol's fsync). Used
	// to prove the CRC manifest catches corruption that atomic rename
	// alone cannot.
	TruncateFile int
}

// ChaosFS wraps a base FS and injects the configured faults. It is safe
// for concurrent use and counts operations process-wide, so a test can
// sweep "fail at operation k" across an entire checkpoint write.
type ChaosFS struct {
	Base FS
	Opts ChaosOpts

	mu      sync.Mutex
	writes  int
	syncs   int
	renames int
	creates int
}

// NewChaosFS wraps base with the given fault plan.
func NewChaosFS(base FS, opts ChaosOpts) *ChaosFS {
	return &ChaosFS{Base: base, Opts: opts}
}

// Counts reports how many writes, syncs, renames, and creates have been
// attempted, letting a sweep test size its fault schedule to the real
// operation count of one checkpoint write.
func (c *ChaosFS) Counts() (writes, syncs, renames, creates int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes, c.syncs, c.renames, c.creates
}

func (c *ChaosFS) MkdirAll(path string, perm os.FileMode) error {
	return c.Base.MkdirAll(path, perm)
}

func (c *ChaosFS) Create(name string) (File, error) {
	c.mu.Lock()
	c.creates++
	n := c.creates
	fail := c.Opts.FailCreate > 0 && n >= c.Opts.FailCreate
	trunc := c.Opts.TruncateFile > 0 && n == c.Opts.TruncateFile
	c.mu.Unlock()
	if fail {
		return nil, ErrInjected
	}
	f, err := c.Base.Create(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, f: f, truncate: trunc}, nil
}

func (c *ChaosFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	c.renames++
	fail := c.Opts.FailRename > 0 && c.renames >= c.Opts.FailRename
	c.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return c.Base.Rename(oldpath, newpath)
}

func (c *ChaosFS) Remove(name string) error { return c.Base.Remove(name) }

func (c *ChaosFS) ReadDir(name string) ([]os.DirEntry, error) { return c.Base.ReadDir(name) }

func (c *ChaosFS) ReadFile(name string) ([]byte, error) { return c.Base.ReadFile(name) }

func (c *ChaosFS) SyncDir(name string) error { return c.Base.SyncDir(name) }

// chaosFile applies write/sync faults and close-time truncation to one file.
type chaosFile struct {
	fs       *ChaosFS
	f        File
	truncate bool
	written  int64
}

func (cf *chaosFile) Write(p []byte) (int, error) {
	c := cf.fs
	c.mu.Lock()
	c.writes++
	fail := c.Opts.FailWrite > 0 && c.writes >= c.Opts.FailWrite
	torn := c.Opts.Torn
	c.mu.Unlock()
	if fail {
		if torn && len(p) > 1 {
			n, _ := cf.f.Write(p[:len(p)/2])
			cf.written += int64(n)
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	n, err := cf.f.Write(p)
	cf.written += int64(n)
	return n, err
}

func (cf *chaosFile) Sync() error {
	c := cf.fs
	c.mu.Lock()
	c.syncs++
	fail := c.Opts.FailSync > 0 && c.syncs >= c.Opts.FailSync
	c.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return cf.f.Sync()
}

func (cf *chaosFile) Truncate(size int64) error { return cf.f.Truncate(size) }

func (cf *chaosFile) Close() error {
	if cf.truncate && cf.written > 1 {
		if err := cf.f.Truncate(cf.written / 2); err != nil {
			cf.f.Close()
			return err
		}
	}
	return cf.f.Close()
}
