package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

// saveOpCount measures how many writes/syncs/renames one Store.Save of the
// given payload performs, so sweep tests can schedule a fault at every
// possible point.
func saveOpCount(t *testing.T, data []byte) (writes, syncs, renames int) {
	t.Helper()
	chaos := NewChaosFS(OSFS{}, ChaosOpts{})
	s, err := NewStore(chaos, t.TempDir()+"/probe", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(1, 0.5, data); err != nil {
		t.Fatal(err)
	}
	w, sy, r, _ := chaos.Counts()
	return w, sy, r
}

// TestRecoverySurvivesEveryWriteFault is the core fault-injection sweep:
// for every operation index k of a checkpoint write, fail writes (plain
// and torn), syncs, and renames starting at k, then prove that recovery
// still returns a fully valid checkpoint — the new one if the write got
// far enough, otherwise the previous one — and never a torn payload.
func TestRecoverySurvivesEveryWriteFault(t *testing.T) {
	oldData, newData := payload(1), payload(2)
	wN, sN, rN := saveOpCount(t, newData)
	if wN == 0 || sN == 0 || rN == 0 {
		t.Fatalf("probe found no ops (w=%d s=%d r=%d)", wN, sN, rN)
	}

	type plan struct {
		name string
		opts ChaosOpts
	}
	var plans []plan
	for k := 1; k <= wN; k++ {
		plans = append(plans,
			plan{name: "write", opts: ChaosOpts{FailWrite: k}},
			plan{name: "torn-write", opts: ChaosOpts{FailWrite: k, Torn: true}},
		)
	}
	for k := 1; k <= sN; k++ {
		plans = append(plans, plan{name: "sync", opts: ChaosOpts{FailSync: k}})
	}
	for k := 1; k <= rN; k++ {
		plans = append(plans, plan{name: "rename", opts: ChaosOpts{FailRename: k}})
	}

	for _, p := range plans {
		// Epoch 1 lands cleanly; epoch 2's write runs under injected faults.
		dir := t.TempDir() + "/ckpts"
		clean, err := NewStore(OSFS{}, dir, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := clean.Save(1, 0.9, oldData); err != nil {
			t.Fatal(err)
		}
		chaos := NewChaosFS(OSFS{}, p.opts)
		faulty, err := NewStore(chaos, dir, 3)
		if err != nil {
			t.Fatal(err)
		}
		saveErr := faulty.Save(2, 0.5, newData)
		if saveErr != nil && !errors.Is(saveErr, ErrInjected) {
			t.Fatalf("%s %+v: save failed with non-injected error %v", p.name, p.opts, saveErr)
		}

		// Recovery runs on the pristine filesystem (the process restarted).
		man, got, err := clean.Latest()
		if err != nil {
			t.Fatalf("%s %+v: no checkpoint recovered: %v", p.name, p.opts, err)
		}
		switch man.Epoch {
		case 1:
			if !bytes.Equal(got, oldData) {
				t.Fatalf("%s %+v: epoch 1 payload corrupted", p.name, p.opts)
			}
			if saveErr == nil {
				t.Fatalf("%s %+v: save reported success but recovery sees only epoch 1", p.name, p.opts)
			}
		case 2:
			if !bytes.Equal(got, newData) {
				t.Fatalf("%s %+v: recovered torn epoch-2 payload", p.name, p.opts)
			}
		default:
			t.Fatalf("%s %+v: recovered unexpected epoch %d", p.name, p.opts, man.Epoch)
		}
	}
}

// TestRecoverySkipsSilentTruncation models a filesystem that loses a
// file's tail despite the writer believing the write completed: the CRC
// manifest must catch it and recovery must fall back to the previous
// checkpoint.
func TestRecoverySkipsSilentTruncation(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	clean, err := NewStore(OSFS{}, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Save(1, 0.9, payload(1)); err != nil {
		t.Fatal(err)
	}
	// File #1 of the faulty save is epoch 2's payload tmp: it is silently
	// truncated at Close, then renamed into place; the manifest (file #2)
	// lands intact, describing bytes that are no longer all there.
	chaos := NewChaosFS(OSFS{}, ChaosOpts{TruncateFile: 1})
	faulty, err := NewStore(chaos, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty.Save(2, 0.5, payload(2)); err != nil {
		t.Fatalf("silent truncation must not surface at save time: %v", err)
	}
	man, got, err := clean.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 1 || !bytes.Equal(got, payload(1)) {
		t.Fatalf("Latest = epoch %d, want fallback to epoch 1", man.Epoch)
	}
}

// TestChaosCreateFault checks a failed Create surfaces as an injected
// error and leaves the directory recoverable.
func TestChaosCreateFault(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	clean, err := NewStore(OSFS{}, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Save(1, 0.9, payload(1)); err != nil {
		t.Fatal(err)
	}
	chaos := NewChaosFS(OSFS{}, ChaosOpts{FailCreate: 1})
	faulty, err := NewStore(chaos, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty.Save(2, 0.5, payload(2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("save err = %v, want injected", err)
	}
	if man, _, err := clean.Latest(); err != nil || man.Epoch != 1 {
		t.Fatalf("Latest = %v epoch %d, want epoch 1", err, man.Epoch)
	}
}

// TestWriteFileAtomicNeverLeavesTornTarget checks the primitive directly:
// under a torn write the destination path either keeps its old content or
// does not exist; the torn bytes stay in the ignored .tmp at worst.
func TestWriteFileAtomicNeverLeavesTornTarget(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/file.json"
	if err := WriteFileAtomic(OSFS{}, path, []byte("old-content")); err != nil {
		t.Fatal(err)
	}
	chaos := NewChaosFS(OSFS{}, ChaosOpts{FailWrite: 1, Torn: true})
	err := WriteFileAtomic(chaos, path, []byte("new-content-that-tears"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	got, err := OSFS{}.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old-content" {
		t.Fatalf("target holds %q after torn write, want old content", got)
	}
}
