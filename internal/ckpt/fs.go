// Package ckpt provides crash-safe checkpoint persistence: atomic file
// writes (temp file + fsync + rename + directory sync), CRC32-checksummed
// per-checkpoint manifests, a retention policy (keep the last K plus the
// best-scoring checkpoint), and recovery that always selects the newest
// *valid* checkpoint — a torn or bit-rotted file is skipped, never loaded.
//
// All filesystem access goes through the FS interface so tests can inject
// faults (see ChaosFS): failed writes, failed fsyncs, failed renames, torn
// writes, and silent truncation at chosen operation counts.
package ckpt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the writable-file surface the checkpoint writer needs. Truncate
// exists so fault injection can model post-crash data loss; the real
// implementation is os.File.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS abstracts the filesystem operations of the atomicity protocol.
// Implementations must be safe for concurrent use.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory so a completed rename survives power loss.
	// Implementations may degrade to a no-op on platforms where directory
	// fsync is unsupported.
	SyncDir(name string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems (and some OSes) reject fsync on directories; the
	// rename itself is still atomic there, so degrade silently.
	if err := d.Sync(); err != nil {
		return nil
	}
	return nil
}

// tmpSuffix marks in-flight writes. Recovery ignores files carrying it.
const tmpSuffix = ".tmp"

// WriteFileAtomic writes data to path with crash safety: the bytes land in
// path+".tmp" first, are fsynced, and only then renamed over path, followed
// by a directory sync so the rename itself is durable. A crash (or an
// injected fault) at any point leaves either the old file intact or a stray
// .tmp that readers ignore — never a torn file at path.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	tmp := path + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("ckpt: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("ckpt: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("ckpt: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("ckpt: rename %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("ckpt: sync dir %s: %w", filepath.Dir(path), err)
	}
	return nil
}
