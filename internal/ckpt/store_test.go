package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func payload(epoch int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("checkpoint-%d ", epoch)), 32)
}

func mustSave(t *testing.T, s *Store, epoch int, score float64) {
	t.Helper()
	if err := s.Save(epoch, score, payload(epoch)); err != nil {
		t.Fatalf("save epoch %d: %v", epoch, err)
	}
}

func TestStoreSaveLatestRoundTrip(t *testing.T) {
	s, err := NewStore(OSFS{}, t.TempDir()+"/ckpts", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); err != ErrNoCheckpoint {
		t.Fatalf("empty dir Latest err = %v, want ErrNoCheckpoint", err)
	}
	mustSave(t, s, 1, 0.5)
	mustSave(t, s, 2, 0.4)
	man, data, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 2 || !bytes.Equal(data, payload(2)) {
		t.Fatalf("Latest = epoch %d (%d bytes), want epoch 2", man.Epoch, len(data))
	}
	if _, data, err := s.Load(1); err != nil || !bytes.Equal(data, payload(1)) {
		t.Fatalf("Load(1) = %v", err)
	}
}

func TestStoreRetentionKeepsLastKAndBest(t *testing.T) {
	s, err := NewStore(OSFS{}, t.TempDir()+"/ckpts", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 2 has the best score and must survive even when out of the
	// last-2 window.
	scores := map[int]float64{1: 0.9, 2: 0.1, 3: 0.8, 4: 0.7, 5: 0.6}
	for ep := 1; ep <= 5; ep++ {
		mustSave(t, s, ep, scores[ep])
	}
	mans := s.List()
	got := map[int]bool{}
	for _, m := range mans {
		got[m.Epoch] = true
	}
	want := map[int]bool{5: true, 4: true, 2: true}
	if len(got) != len(want) {
		t.Fatalf("retained epochs %v, want %v", got, want)
	}
	for ep := range want {
		if !got[ep] {
			t.Errorf("epoch %d missing after prune", ep)
		}
		if _, _, err := s.Load(ep); err != nil {
			t.Errorf("retained epoch %d unreadable: %v", ep, err)
		}
	}
}

func TestStorePruneSweepsTmpAndOrphans(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	s, err := NewStore(OSFS{}, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A stale tmp from a crashed write and an orphan payload without a
	// manifest must both be swept by the next successful save.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-00000009.json.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-00000007.json"), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 10, 0.5)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != payloadName(10) && e.Name() != manifestName(10) {
			t.Errorf("unexpected survivor %s", e.Name())
		}
	}
}

func TestStoreSkipsBitFlippedPayload(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	s, err := NewStore(OSFS{}, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 1, 0.5)
	mustSave(t, s, 2, 0.4)
	// Flip one bit in the newest payload behind the store's back.
	p := filepath.Join(dir, payloadName(2))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	man, got, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 1 || !bytes.Equal(got, payload(1)) {
		t.Fatalf("Latest after bit flip = epoch %d, want fallback to epoch 1", man.Epoch)
	}
	if _, _, err := s.Load(2); err == nil {
		t.Fatal("Load(2) of corrupt payload should fail")
	}
}

func TestStoreSkipsTruncatedPayload(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	s, err := NewStore(OSFS{}, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 1, 0.5)
	mustSave(t, s, 2, 0.4)
	p := filepath.Join(dir, payloadName(2))
	if err := os.Truncate(p, int64(len(payload(2))/2)); err != nil {
		t.Fatal(err)
	}
	man, _, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 1 {
		t.Fatalf("Latest after truncation = epoch %d, want 1", man.Epoch)
	}
}

func TestStoreSkipsTornManifest(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	s, err := NewStore(OSFS{}, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 1, 0.5)
	// A half-written manifest (no atomic rename protecting it in this
	// simulated scenario) must read as "no checkpoint 2".
	if err := os.WriteFile(filepath.Join(dir, manifestName(2)), []byte(`{"version":1,"epo`), 0o644); err != nil {
		t.Fatal(err)
	}
	man, _, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 1 {
		t.Fatalf("Latest with torn manifest = epoch %d, want 1", man.Epoch)
	}
}
