package nn

import "math"

// Inference kernels: cache-blocked float32 and int8 matrix-vector products
// plus fast float32 activations. These back the frozen inference path
// (core.Model.Freeze); training stays on the float64 layers. The kernels
// are deterministic — no data-dependent branching, no parallel reduction —
// so a frozen model's output is a pure function of (weights, input) and
// the per-precision bit-exactness contract holds.

// MatVecF32 computes y = A·x for a row-major rows×cols matrix, blocked
// over 4 output rows so each pass streams four weight rows against one
// load of x, with the inner column loop unrolled 4×. y must have at least
// rows elements; only y[:rows] is written.
func MatVecF32(a []float32, rows, cols int, x, y []float32) {
	if len(a) < rows*cols || len(x) < cols || len(y) < rows {
		panic("nn: MatVecF32 dimension mismatch")
	}
	x = x[:cols]
	r := 0
	for ; r+4 <= rows; r += 4 {
		r0 := a[(r+0)*cols : (r+1)*cols]
		r1 := a[(r+1)*cols : (r+2)*cols]
		r2 := a[(r+2)*cols : (r+3)*cols]
		r3 := a[(r+3)*cols : (r+4)*cols]
		var s0, s1, s2, s3 float32
		c := 0
		for ; c+4 <= cols; c += 4 {
			x0, x1, x2, x3 := x[c], x[c+1], x[c+2], x[c+3]
			s0 += r0[c]*x0 + r0[c+1]*x1 + r0[c+2]*x2 + r0[c+3]*x3
			s1 += r1[c]*x0 + r1[c+1]*x1 + r1[c+2]*x2 + r1[c+3]*x3
			s2 += r2[c]*x0 + r2[c+1]*x1 + r2[c+2]*x2 + r2[c+3]*x3
			s3 += r3[c]*x0 + r3[c+1]*x1 + r3[c+2]*x2 + r3[c+3]*x3
		}
		for ; c < cols; c++ {
			xv := x[c]
			s0 += r0[c] * xv
			s1 += r1[c] * xv
			s2 += r2[c] * xv
			s3 += r3[c] * xv
		}
		y[r], y[r+1], y[r+2], y[r+3] = s0, s1, s2, s3
	}
	for ; r < rows; r++ {
		row := a[r*cols : (r+1)*cols]
		var s float32
		for c, xv := range x {
			s += row[c] * xv
		}
		y[r] = s
	}
}

// pad8 rounds n up to the kernel lane width (8 float32s = one YMM
// register).
func pad8(n int) int { return (n + 7) &^ 7 }

// GemvColF32 computes y[0:rows8] = bias[0:rows8] + W·x over a
// column-major weight mirror: wt holds cols consecutive blocks of rows8
// float32s, block c being column c of W padded with zero rows to
// rows8 (a multiple of 8). On AVX2+FMA machines this runs in the
// assembly kernel — broadcast one x element, FMA it against a register
// tile of weight rows, no horizontal reductions — which is the layout
// that makes the short, wide layers of a small LSTM fast; elsewhere the
// equivalent Go loop below runs. Unlike MatVecF32 the bias is fused into
// the accumulator initialization, so callers never make a second pass.
func GemvColF32(wt []float32, rows8, cols int, x, bias, y []float32) {
	if rows8%8 != 0 || len(wt) < rows8*cols || len(x) < cols || len(bias) < rows8 || len(y) < rows8 {
		panic("nn: GemvColF32 dimension mismatch")
	}
	if useAVX && rows8 > 0 && cols > 0 {
		gemvColAsm(&wt[0], &x[0], &bias[0], &y[0], int64(rows8*4), int64(cols))
		return
	}
	copy(y[:rows8], bias[:rows8])
	for c := 0; c < cols; c++ {
		xv := x[c]
		col := wt[c*rows8 : (c+1)*rows8]
		for r, w := range col {
			y[r] += w * xv
		}
	}
}

// GemmColF32 is the batched form of GemvColF32: it computes
// y_b[0:rows8] = bias[0:rows8] + W·x_b for nb independent input lanes over
// the same column-major weight mirror, traversing the weights once per
// four lanes instead of once per lane. Lane b's input starts at
// x[b*xStride] (xStride >= cols) and its output at y[b*yStride]
// (yStride >= rows8), so callers hand in whole activation planes without
// copying. Per lane the accumulation is exactly GemvColF32's — bias-
// initialized accumulators, one fused multiply-add per ascending column —
// so the result is bit-identical to nb independent GemvColF32 calls on
// both the assembly and the portable path. That equality is what lets the
// lockstep batched generation engine keep the per-seed bit-exactness
// contract while amortizing weight bandwidth across the micro-batch.
func GemmColF32(wt []float32, rows8, cols int, x []float32, xStride int, bias, y []float32, yStride, nb int) {
	if rows8%8 != 0 || len(wt) < rows8*cols || xStride < cols || yStride < rows8 {
		panic("nn: GemmColF32 dimension mismatch")
	}
	if nb <= 0 || rows8 == 0 || cols == 0 {
		return
	}
	if len(x) < (nb-1)*xStride+cols || len(bias) < rows8 || len(y) < (nb-1)*yStride+rows8 {
		panic("nn: GemmColF32 dimension mismatch")
	}
	if useAVX {
		b := 0
		for ; b+4 <= nb; b += 4 {
			gemmCol4Asm(&wt[0], &x[b*xStride], &bias[0], &y[b*yStride],
				int64(rows8*4), int64(cols), int64(xStride*4), int64(yStride*4))
		}
		// Remainder lanes take the single-lane kernel, which shares the
		// same per-element FMA order.
		for ; b < nb; b++ {
			gemvColAsm(&wt[0], &x[b*xStride], &bias[0], &y[b*yStride], int64(rows8*4), int64(cols))
		}
		return
	}
	for b := 0; b < nb; b++ {
		copy(y[b*yStride:b*yStride+rows8], bias[:rows8])
	}
	for c := 0; c < cols; c++ {
		col := wt[c*rows8 : (c+1)*rows8]
		for b := 0; b < nb; b++ {
			xv := x[b*xStride+c]
			yb := y[b*yStride : b*yStride+rows8]
			for r, w := range col {
				yb[r] += w * xv
			}
		}
	}
}

// MatVecInt8Batch is the batched MatVecInt8: nb quantized input lanes
// against one weight block, each weight row streamed once per batch
// instead of once per lane. Lane b reads xq[b*xqStride:] with its own
// activation scale xScales[b]. Accumulation is exact in int32 and the
// dequantization expression matches MatVecInt8's, so each lane's output
// is bit-identical to a standalone MatVecInt8 call.
func MatVecInt8Batch(q []int8, rows, cols int, xq []int8, xqStride int, rowScale []float32, xScales []float32, y []float32, yStride, nb int) {
	if len(q) < rows*cols || xqStride < cols || yStride < rows || len(rowScale) < rows {
		panic("nn: MatVecInt8Batch dimension mismatch")
	}
	if nb <= 0 || rows == 0 || cols == 0 {
		return
	}
	if len(xq) < (nb-1)*xqStride+cols || len(xScales) < nb || len(y) < (nb-1)*yStride+rows {
		panic("nn: MatVecInt8Batch dimension mismatch")
	}
	// Same 4-row blocking as MatVecInt8 (4 independent accumulators per
	// lane), lane-mid so each 4-row weight tile is reused across the whole
	// batch from cache. Exact int32 accumulation makes the op order free.
	r := 0
	for ; r+4 <= rows; r += 4 {
		r0 := q[(r+0)*cols : (r+1)*cols]
		r1 := q[(r+1)*cols : (r+2)*cols]
		r2 := q[(r+2)*cols : (r+3)*cols]
		r3 := q[(r+3)*cols : (r+4)*cols]
		for b := 0; b < nb; b++ {
			xb := xq[b*xqStride : b*xqStride+cols]
			var s0, s1, s2, s3 int32
			c := 0
			for ; c+4 <= cols; c += 4 {
				x0 := int32(xb[c])
				x1 := int32(xb[c+1])
				x2 := int32(xb[c+2])
				x3 := int32(xb[c+3])
				s0 += int32(r0[c])*x0 + int32(r0[c+1])*x1 + int32(r0[c+2])*x2 + int32(r0[c+3])*x3
				s1 += int32(r1[c])*x0 + int32(r1[c+1])*x1 + int32(r1[c+2])*x2 + int32(r1[c+3])*x3
				s2 += int32(r2[c])*x0 + int32(r2[c+1])*x1 + int32(r2[c+2])*x2 + int32(r2[c+3])*x3
				s3 += int32(r3[c])*x0 + int32(r3[c+1])*x1 + int32(r3[c+2])*x2 + int32(r3[c+3])*x3
			}
			for ; c < cols; c++ {
				xv := int32(xb[c])
				s0 += int32(r0[c]) * xv
				s1 += int32(r1[c]) * xv
				s2 += int32(r2[c]) * xv
				s3 += int32(r3[c]) * xv
			}
			xs := xScales[b]
			yb := y[b*yStride:]
			yb[r+0] = float32(s0) * rowScale[r+0] * xs
			yb[r+1] = float32(s1) * rowScale[r+1] * xs
			yb[r+2] = float32(s2) * rowScale[r+2] * xs
			yb[r+3] = float32(s3) * rowScale[r+3] * xs
		}
	}
	for ; r < rows; r++ {
		row := q[r*cols : (r+1)*cols]
		rs := rowScale[r]
		for b := 0; b < nb; b++ {
			xb := xq[b*xqStride : b*xqStride+cols]
			var s int32
			for c, xv := range xb {
				s += int32(row[c]) * int32(xv)
			}
			y[b*yStride+r] = float32(s) * rs * xScales[b]
		}
	}
}

// PackColMajor builds the column-major, row-padded mirror GemvColF32
// wants from a row-major rows×cols matrix.
func PackColMajor(a []float32, rows, cols int) []float32 {
	rows8 := pad8(rows)
	wt := make([]float32, rows8*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			wt[c*rows8+r] = a[r*cols+c]
		}
	}
	return wt
}

// sigTransF32 is the scalar reference for the vectorized logistic
// kernel: a·σ(-negScale·x)+b computed exactly as the assembly does,
// through the single-sided clamped exponential.
func sigTransF32(x, negScale, a, b float32) float32 {
	t := negScale * x
	if t > 87 {
		t = 87
	} else if t < -87 {
		t = -87
	}
	return a/(1+ExpF32(t)) + b
}

// SigmoidVecF32 applies the logistic function elementwise in place,
// eight lanes at a time on AVX2+FMA machines.
func SigmoidVecF32(v []float32) { sigVec(v, v, -1, 1, 0) }

// TanhVecF32 writes tanh(src) into dst (which may alias src), via
// tanh(x) = 2σ(2x) - 1 on the same vector kernel.
func TanhVecF32(dst, src []float32) { sigVec(dst, src, -2, 2, -1) }

func sigVec(dst, src []float32, negScale, a, b float32) {
	if len(dst) < len(src) {
		panic("nn: sigVec destination too short")
	}
	n := len(src)
	n8 := n &^ 7
	if useAVX && n8 > 0 {
		vsigAsm(&dst[0], &src[0], int64(n8), negScale, a, b)
	} else {
		n8 = 0
	}
	for i := n8; i < n; i++ {
		dst[i] = sigTransF32(src[i], negScale, a, b)
	}
}

// MatVecInt8 computes y[r] = (Σ_c q[r][c]·xq[c]) · rowScale[r] · xScale
// for a row-major rows×cols int8 matrix against an int8-quantized input.
// Accumulation is exact in int32 (127·127·cols stays far below overflow
// for any realistic layer width), so the only rounding is the final
// two-scale dequantization. Blocked like MatVecF32.
func MatVecInt8(q []int8, rows, cols int, xq []int8, rowScale []float32, xScale float32, y []float32) {
	if len(q) < rows*cols || len(xq) < cols || len(rowScale) < rows || len(y) < rows {
		panic("nn: MatVecInt8 dimension mismatch")
	}
	xq = xq[:cols]
	r := 0
	for ; r+4 <= rows; r += 4 {
		r0 := q[(r+0)*cols : (r+1)*cols]
		r1 := q[(r+1)*cols : (r+2)*cols]
		r2 := q[(r+2)*cols : (r+3)*cols]
		r3 := q[(r+3)*cols : (r+4)*cols]
		var s0, s1, s2, s3 int32
		c := 0
		for ; c+4 <= cols; c += 4 {
			x0 := int32(xq[c])
			x1 := int32(xq[c+1])
			x2 := int32(xq[c+2])
			x3 := int32(xq[c+3])
			s0 += int32(r0[c])*x0 + int32(r0[c+1])*x1 + int32(r0[c+2])*x2 + int32(r0[c+3])*x3
			s1 += int32(r1[c])*x0 + int32(r1[c+1])*x1 + int32(r1[c+2])*x2 + int32(r1[c+3])*x3
			s2 += int32(r2[c])*x0 + int32(r2[c+1])*x1 + int32(r2[c+2])*x2 + int32(r2[c+3])*x3
			s3 += int32(r3[c])*x0 + int32(r3[c+1])*x1 + int32(r3[c+2])*x2 + int32(r3[c+3])*x3
		}
		for ; c < cols; c++ {
			xv := int32(xq[c])
			s0 += int32(r0[c]) * xv
			s1 += int32(r1[c]) * xv
			s2 += int32(r2[c]) * xv
			s3 += int32(r3[c]) * xv
		}
		y[r+0] = float32(s0) * rowScale[r+0] * xScale
		y[r+1] = float32(s1) * rowScale[r+1] * xScale
		y[r+2] = float32(s2) * rowScale[r+2] * xScale
		y[r+3] = float32(s3) * rowScale[r+3] * xScale
	}
	for ; r < rows; r++ {
		row := q[r*cols : (r+1)*cols]
		var s int32
		for c, xv := range xq {
			s += int32(row[c]) * int32(xv)
		}
		y[r] = float32(s) * rowScale[r] * xScale
	}
}

// Fast float32 activations. ExpF32 range-reduces by ln2 with a hi/lo
// split and evaluates a degree-6 Taylor polynomial on the reduced
// argument (|f| ≤ ln2/2), giving ~3 ulp accuracy — far inside the frozen
// path's 1e-5 parity budget — at a fraction of math.Exp's cost, because
// everything stays in float32 and 2^k is assembled directly from exponent
// bits.
const (
	log2eF32 = float32(1.4426950408889634)
	ln2HiF32 = float32(6.93359375e-01)
	ln2LoF32 = float32(-2.12194440e-04)
)

// ExpF32 approximates e^x in float32. Out-of-range inputs saturate
// (x > 88 → +Inf, x < -87 → 0, both already past float32's normal range);
// NaN propagates.
func ExpF32(x float32) float32 {
	switch {
	case x != x:
		return x
	case x > 88:
		return float32(math.Inf(1))
	case x < -87:
		return 0
	}
	kf := x * log2eF32
	var k int32
	if kf >= 0 {
		k = int32(kf + 0.5)
	} else {
		k = int32(kf - 0.5)
	}
	fk := float32(k)
	f := x - fk*ln2HiF32 - fk*ln2LoF32
	// Horner over 1 + f + f²/2 + … + f⁶/720.
	p := 1 + f*(1+f*(0.5+f*(1.0/6+f*(1.0/24+f*(1.0/120+f*(1.0/720))))))
	// 2^k via the exponent field: k ∈ [-126, 127] after the range clamps.
	return p * math.Float32frombits(uint32(k+127)<<23)
}

// SigmoidF32 is 1/(1+e^-x) stabilized the same way as Sigmoid: the
// exponential only ever sees a non-positive argument.
func SigmoidF32(x float32) float32 {
	if x >= 0 {
		z := ExpF32(-x)
		return 1 / (1 + z)
	}
	z := ExpF32(x)
	return z / (1 + z)
}

// TanhF32 computes tanh via the negative-argument exponential,
// saturating where float32 tanh is exactly ±1 anyway.
func TanhF32(x float32) float32 {
	switch {
	case x != x:
		return x
	case x > 9:
		return 1
	case x < -9:
		return -1
	}
	neg := x < 0
	if neg {
		x = -x
	}
	e := ExpF32(-2 * x)
	t := (1 - e) / (1 + e)
	if neg {
		return -t
	}
	return t
}
