package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestParamCloneDeep checks Param.Clone copies weights, gradients, and
// Adam moments without sharing backing arrays.
func TestParamCloneDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParam(8, 0.5, rng)
	p.G[0] = 3
	p.M = make([]float64, 8)
	p.V = make([]float64, 8)
	p.M[1], p.V[2] = 0.25, 0.125
	c := p.Clone()
	for i := range p.W {
		if c.W[i] != p.W[i] || c.G[i] != p.G[i] || c.M[i] != p.M[i] || c.V[i] != p.V[i] {
			t.Fatalf("clone field mismatch at %d", i)
		}
	}
	c.W[0] += 1
	c.G[0] += 1
	c.M[0] += 1
	c.V[0] += 1
	if p.W[0] == c.W[0] || p.G[0] == c.G[0] || p.M[0] == c.M[0] || p.V[0] == c.V[0] {
		t.Error("clone shares backing arrays with the original")
	}
}

// TestLSTMCloneMatchesWithoutNoise checks a cloned LSTM computes the same
// deterministic forward pass as the original.
func TestLSTMCloneMatchesWithoutNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM(3, 5, rng)
	c := l.Clone(rand.New(rand.NewSource(99)))
	x := []float64{0.3, -0.2, 0.9}
	h1 := append([]float64(nil), l.Step(x)...)
	h2 := append([]float64(nil), c.Step(x)...)
	l.ClearCache()
	c.ClearCache()
	for j := range h1 {
		if h1[j] != h2[j] {
			t.Fatalf("clone output differs at %d: %v vs %v", j, h1[j], h2[j])
		}
	}
	// Deep copy: training the clone must not move the original's weights.
	w0 := l.W.W[0]
	c.W.W[0] += 42
	if l.W.W[0] != w0 {
		t.Error("LSTM clone shares weight storage")
	}
}

// TestPooledBuffersGradEquality runs two identical backward passes through
// the same layers and checks the second (which reuses pooled buffers from
// the first) produces bit-identical gradients — i.e. recycled buffers are
// properly re-initialized.
func TestPooledBuffersGradEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mlp := NewMLP([]int{4, 6, 2}, 0.1, rng)
	lstm := NewLSTM(2, 3, rng)
	x := []float64{0.1, -0.4, 0.7, 0.2}
	dy := []float64{0.5, -0.3}
	dh := [][]float64{{0.2, -0.1, 0.4}, {-0.3, 0.6, 0.1}}

	run := func() ([]float64, [][]float64) {
		for _, p := range mlp.Params() {
			p.ZeroGrad()
		}
		lstm.W.ZeroGrad()
		y := mlp.Forward(x)
		dx := append([]float64(nil), mlp.Backward(dy)...)
		lstm.ResetState()
		lstm.Step(y)
		lstm.Step(y)
		dX := lstm.BackwardSeq(dh)
		out := make([][]float64, len(dX))
		for i, r := range dX {
			out[i] = append([]float64(nil), r...)
		}
		return dx, out
	}
	dx1, dX1 := run()
	dx2, dX2 := run() // second pass runs entirely on recycled buffers
	for i := range dx1 {
		if dx1[i] != dx2[i] {
			t.Fatalf("MLP dx differs on pooled rerun at %d: %v vs %v", i, dx1[i], dx2[i])
		}
	}
	for ti := range dX1 {
		for j := range dX1[ti] {
			if dX1[ti][j] != dX2[ti][j] {
				t.Fatalf("LSTM dX differs on pooled rerun at %d,%d", ti, j)
			}
		}
	}
	for _, r := range dX1 {
		for _, v := range r {
			if math.IsNaN(v) {
				t.Fatal("NaN gradient")
			}
		}
	}
}

// TestAdamCloneIndependentState checks optimizer clones step independently:
// advancing the clone's step counter must not change the bias correction
// the original applies.
func TestAdamCloneIndependentState(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pa := NewParam(2, 1, rng)
	pc := pa.Clone()

	// Reference: a fresh optimizer taking the same two steps, uninterrupted.
	c := NewAdam(0.1)
	pc.G[0], pc.G[1] = 1, -1
	c.Step([]*Param{pc})
	pc.G[0], pc.G[1] = 0.5, 0.5
	c.Step([]*Param{pc})

	// Same two steps on a, but with a clone advanced in between. If the
	// clone shared the step counter, a's second bias correction would use
	// t=4 instead of t=2 and the weights would diverge from the reference.
	a := NewAdam(0.1)
	pa.G[0], pa.G[1] = 1, -1
	a.Step([]*Param{pa})
	b := a.Clone()
	for i := 0; i < 2; i++ {
		pb := pa.Clone()
		pb.G[0], pb.G[1] = 1, -1
		b.Step([]*Param{pb})
	}
	pa.G[0], pa.G[1] = 0.5, 0.5
	a.Step([]*Param{pa})

	for i := range pa.W {
		if pa.W[i] != pc.W[i] {
			t.Errorf("original optimizer perturbed by clone steps: W[%d]=%v want %v", i, pa.W[i], pc.W[i])
		}
	}
}
