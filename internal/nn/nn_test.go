package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad perturbs each weight of p and returns d(loss)/d(w) computed
// by central differences of lossFn.
func numericalGrad(p *Param, lossFn func() float64) []float64 {
	const h = 1e-5
	out := make([]float64, len(p.W))
	for i := range p.W {
		orig := p.W[i]
		p.W[i] = orig + h
		lp := lossFn()
		p.W[i] = orig - h
		lm := lossFn()
		p.W[i] = orig
		out[i] = (lp - lm) / (2 * h)
	}
	return out
}

func maxRelErr(analytic, numeric []float64) float64 {
	worst := 0.0
	for i := range analytic {
		denom := math.Max(1e-6, math.Abs(analytic[i])+math.Abs(numeric[i]))
		re := math.Abs(analytic[i]-numeric[i]) / denom
		if re > worst {
			worst = re
		}
	}
	return worst
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(4, 3, rng)
	x := []float64{0.3, -0.2, 0.7, 0.1}
	target := []float64{0.5, -0.5, 0.2}
	lossFn := func() float64 {
		l.ClearCache()
		y := l.Forward(x)
		loss, _ := MSELoss(y, target)
		return loss
	}
	l.ClearCache()
	y := l.Forward(x)
	_, g := MSELoss(y, target)
	l.Backward(g)
	for _, p := range l.Params() {
		num := numericalGrad(p, lossFn)
		if re := maxRelErr(p.G, num); re > 1e-4 {
			t.Errorf("Linear grad check failed: max rel err %v", re)
		}
		p.ZeroGrad()
	}
}

func TestLinearInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(3, 2, rng)
	x := []float64{0.1, 0.4, -0.3}
	target := []float64{1, -1}
	l.ClearCache()
	y := l.Forward(x)
	_, g := MSELoss(y, target)
	dx := l.Backward(g)
	const h = 1e-5
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		l.ClearCache()
		lp, _ := MSELoss(l.Forward(x), target)
		x[i] = orig - h
		l.ClearCache()
		lm, _ := MSELoss(l.Forward(x), target)
		x[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-dx[i]) > 1e-6 {
			t.Errorf("input grad %d: analytic %v numeric %v", i, dx[i], num)
		}
	}
}

func TestLeakyReLU(t *testing.T) {
	l := NewLeakyReLU(0.1)
	y := l.Forward([]float64{2, -2})
	if y[0] != 2 || math.Abs(y[1]+0.2) > 1e-12 {
		t.Fatalf("forward = %v", y)
	}
	dx := l.Backward([]float64{1, 1})
	if dx[0] != 1 || dx[1] != 0.1 {
		t.Fatalf("backward = %v", dx)
	}
}

func TestDropoutInactiveIsIdentity(t *testing.T) {
	d := NewDropout(0.5, rand.New(rand.NewSource(3)))
	d.Active = false
	x := []float64{1, 2, 3}
	y := d.Forward(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("inactive dropout changed input: %v", y)
		}
	}
	dx := d.Backward([]float64{1, 1, 1})
	for _, v := range dx {
		if v != 1 {
			t.Fatalf("inactive dropout changed gradient: %v", dx)
		}
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	d := NewDropout(0.3, rand.New(rand.NewSource(4)))
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		y := d.Forward([]float64{1})
		sum += y[0]
		d.ClearCache()
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.05 {
		t.Errorf("dropout expectation = %v, want ~1", mean)
	}
}

func TestDropoutMCVariability(t *testing.T) {
	d := NewDropout(0.5, rand.New(rand.NewSource(5)))
	// Outputs are pooled (valid only until ClearCache), so copy before reuse.
	a := append([]float64(nil), d.Forward([]float64{1, 1, 1, 1, 1, 1, 1, 1})...)
	d.ClearCache()
	b := d.Forward([]float64{1, 1, 1, 1, 1, 1, 1, 1})
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("MC dropout produced identical masks twice (improbable)")
	}
}

func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP([]int{3, 5, 2}, 0.1, rng)
	x := []float64{0.2, -0.4, 0.9}
	target := []float64{0.3, -0.8}
	lossFn := func() float64 {
		m.ClearCache()
		loss, _ := MSELoss(m.Forward(x), target)
		return loss
	}
	m.ClearCache()
	_, g := MSELoss(m.Forward(x), target)
	m.Backward(g)
	for pi, p := range m.Params() {
		num := numericalGrad(p, lossFn)
		if re := maxRelErr(p.G, num); re > 1e-4 {
			t.Errorf("MLP param %d grad check failed: %v", pi, re)
		}
		p.ZeroGrad()
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLSTM(2, 3, rng)
	seq := [][]float64{{0.5, -0.2}, {0.1, 0.9}, {-0.6, 0.3}}
	targets := [][]float64{{0.1, 0, -0.1}, {0.2, -0.2, 0}, {0, 0.3, 0.1}}
	lossFn := func() float64 {
		l.ClearCache()
		l.ResetState()
		total := 0.0
		for t := range seq {
			h := l.Step(seq[t])
			lo, _ := MSELoss(h, targets[t])
			total += lo
		}
		return total
	}
	l.ClearCache()
	l.ResetState()
	dH := make([][]float64, len(seq))
	for t := range seq {
		h := l.Step(seq[t])
		_, g := MSELoss(h, targets[t])
		dH[t] = g
	}
	l.BackwardSeq(dH)
	num := numericalGrad(l.W, lossFn)
	if re := maxRelErr(l.W.G, num); re > 1e-3 {
		t.Errorf("LSTM BPTT grad check failed: max rel err %v", re)
	}
}

func TestLSTMInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLSTM(2, 3, rng)
	seq := [][]float64{{0.5, -0.2}, {0.1, 0.9}}
	target := []float64{0.1, -0.1, 0.2}
	run := func() ([]float64, [][]float64) {
		l.ClearCache()
		l.ResetState()
		var h []float64
		for t := range seq {
			h = l.Step(seq[t])
		}
		_, g := MSELoss(h, target)
		dH := [][]float64{make([]float64, 3), g}
		return h, dH
	}
	_, dH := run()
	dX := l.BackwardSeq(dH)
	const h = 1e-5
	for ts := range seq {
		for i := range seq[ts] {
			orig := seq[ts][i]
			seq[ts][i] = orig + h
			l.ClearCache()
			l.ResetState()
			var hv []float64
			for tt := range seq {
				hv = l.Step(seq[tt])
			}
			lp, _ := MSELoss(hv, target)
			seq[ts][i] = orig - h
			l.ClearCache()
			l.ResetState()
			for tt := range seq {
				hv = l.Step(seq[tt])
			}
			lm, _ := MSELoss(hv, target)
			seq[ts][i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-dX[ts][i]) > 1e-5 {
				t.Errorf("input grad t=%d i=%d: analytic %v numeric %v", ts, i, dX[ts][i], num)
			}
		}
	}
}

func TestLSTMStateCarryAndReset(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLSTM(1, 4, rng)
	l.Step([]float64{1})
	h1, c1 := l.State()
	l.ResetState()
	h2, _ := l.State()
	for i := range h2 {
		if h2[i] != 0 {
			t.Fatal("ResetState did not zero hidden state")
		}
	}
	l.SetState(h1, c1)
	h3, c3 := l.State()
	for i := range h1 {
		if h3[i] != h1[i] || c3[i] != c1[i] {
			t.Fatal("SetState round trip failed")
		}
	}
	l.ClearCache()
}

func TestLSTMStochasticLayersChangeOutput(t *testing.T) {
	mk := func(noise bool, seed int64) []float64 {
		rng := rand.New(rand.NewSource(10))
		l := NewLSTM(1, 8, rng)
		l.rng = rand.New(rand.NewSource(seed))
		l.AH, l.AC = 2, 2
		l.NoiseActive = noise
		var h []float64
		for i := 0; i < 5; i++ {
			h = l.Step([]float64{0.5})
		}
		return h
	}
	quiet := mk(false, 1)
	noisy1 := mk(true, 2)
	noisy2 := mk(true, 3)
	d01, d12 := 0.0, 0.0
	for i := range quiet {
		d01 += math.Abs(quiet[i] - noisy1[i])
		d12 += math.Abs(noisy1[i] - noisy2[i])
	}
	if d01 == 0 {
		t.Error("stochastic layer had no effect")
	}
	if d12 == 0 {
		t.Error("different noise seeds produced identical outputs")
	}
}

func TestLSTMModulatePreservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLSTM(1, 6, rng)
	v := []float64{0.5, -0.2, 0.3, 0.1, -0.4, 0.6}
	mass := 0.0
	for _, x := range v {
		mass += math.Abs(x)
	}
	for trial := 0; trial < 50; trial++ {
		out := append([]float64(nil), v...)
		scale := l.modulate(out, 2)
		outMass := 0.0
		for _, x := range out {
			outMass += math.Abs(x)
		}
		// Mass is preserved up to the scale cap; it must never explode.
		if outMass > 2.5*mass || outMass < mass/2.5 {
			t.Fatalf("modulate mass %v vs original %v (scale %v)", outMass, mass, scale)
		}
		if scale < 0.5 || scale > 2 {
			t.Fatalf("scale %v outside cap", scale)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := NewParam(3, 1, rng)
	opt := NewAdam(0.05)
	target := []float64{1, -2, 0.5}
	for step := 0; step < 2000; step++ {
		for i := range p.W {
			p.G[i] = 2 * (p.W[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i := range p.W {
		if math.Abs(p.W[i]-target[i]) > 1e-3 {
			t.Errorf("Adam did not converge: w[%d]=%v want %v", i, p.W[i], target[i])
		}
	}
}

func TestClipGrads(t *testing.T) {
	p := &Param{W: make([]float64, 2), G: []float64{3, 4}, M: make([]float64, 2), V: make([]float64, 2)}
	norm := ClipGrads([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v, want 5", norm)
	}
	if math.Abs(p.G[0]-0.6) > 1e-12 || math.Abs(p.G[1]-0.8) > 1e-12 {
		t.Errorf("clipped grads = %v", p.G)
	}
	// Below the cap: untouched.
	p.G = []float64{0.1, 0.1}
	ClipGrads([]*Param{p}, 1)
	if p.G[0] != 0.1 {
		t.Error("grads below cap were modified")
	}
}

func TestBCEWithLogits(t *testing.T) {
	// Large positive logit with target 1: near-zero loss.
	loss, grad := BCEWithLogitsLoss(10, 1)
	if loss > 0.001 || math.Abs(grad) > 0.001 {
		t.Errorf("confident correct: loss=%v grad=%v", loss, grad)
	}
	// Wrong prediction: loss ~ |logit|.
	loss, grad = BCEWithLogitsLoss(10, 0)
	if loss < 9 || grad < 0.99 {
		t.Errorf("confident wrong: loss=%v grad=%v", loss, grad)
	}
	// Gradient via central differences.
	const h = 1e-6
	lp, _ := BCEWithLogitsLoss(0.3+h, 1)
	lm, _ := BCEWithLogitsLoss(0.3-h, 1)
	_, g := BCEWithLogitsLoss(0.3, 1)
	if math.Abs((lp-lm)/(2*h)-g) > 1e-5 {
		t.Error("BCE gradient mismatch with numeric")
	}
}

func TestGaussianSampleReparam(t *testing.T) {
	eps := 0.7
	s := GaussianSample(2, math.Log(3), eps)
	if math.Abs(s-(2+3*0.7)) > 1e-9 {
		t.Errorf("sample = %v", s)
	}
	dMu, dLS := GaussianSampleGrad(1, math.Log(3), eps)
	if dMu != 1 || math.Abs(dLS-3*0.7) > 1e-9 {
		t.Errorf("grads = %v, %v", dMu, dLS)
	}
}

func TestGaussianNLLGradients(t *testing.T) {
	const h = 1e-6
	x, mu, ls := 1.3, 0.4, -0.2
	_, dMu, dLS := GaussianNLL(x, mu, ls)
	np, _, _ := GaussianNLL(x, mu+h, ls)
	nm, _, _ := GaussianNLL(x, mu-h, ls)
	if math.Abs((np-nm)/(2*h)-dMu) > 1e-4 {
		t.Error("dMu mismatch")
	}
	np, _, _ = GaussianNLL(x, mu, ls+h)
	nm, _, _ = GaussianNLL(x, mu, ls-h)
	if math.Abs((np-nm)/(2*h)-dLS) > 1e-4 {
		t.Error("dLogSigma mismatch")
	}
}

func TestLSTMLearnsToRemember(t *testing.T) {
	// Task: output at each step the first input of the sequence. Tests that
	// BPTT propagates useful long-range gradient.
	rng := rand.New(rand.NewSource(13))
	l := NewLSTM(1, 12, rng)
	out := NewLinear(12, 1, rng)
	params := append(l.Params(), out.Params()...)
	opt := NewAdam(0.01)
	seqLen := 6
	var lastLoss float64
	for epoch := 0; epoch < 300; epoch++ {
		first := rng.Float64()*2 - 1
		l.ResetState()
		l.ClearCache()
		out.ClearCache()
		dH := make([][]float64, seqLen)
		total := 0.0
		var outGrads [][]float64
		for t := 0; t < seqLen; t++ {
			x := 0.0
			if t == 0 {
				x = first
			}
			h := l.Step([]float64{x})
			y := out.Forward(h)
			loss, g := MSELoss(y, []float64{first})
			total += loss
			outGrads = append(outGrads, g)
		}
		for t := seqLen - 1; t >= 0; t-- {
			dH[t] = out.Backward(outGrads[t])
		}
		l.BackwardSeq(dH)
		ClipGrads(params, 5)
		opt.Step(params)
		lastLoss = total / float64(seqLen)
	}
	if lastLoss > 0.05 {
		t.Errorf("LSTM failed to learn memory task: final loss %v", lastLoss)
	}
}

func TestMismatchedDimsPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := NewLinear(2, 2, rng)
	assertPanics(t, func() { l.Forward([]float64{1}) }, "Linear dim mismatch")
	lstm := NewLSTM(2, 2, rng)
	assertPanics(t, func() { lstm.Step([]float64{1, 2, 3}) }, "LSTM dim mismatch")
	assertPanics(t, func() { l.Backward([]float64{1, 1}) }, "Backward without Forward")
}

func assertPanics(t *testing.T, f func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestLSTMTakeStepsSharedSequences(t *testing.T) {
	// Two independent sequences through one shared LSTM must produce the
	// same gradients as two separate passes summed.
	rng := rand.New(rand.NewSource(15))
	l := NewLSTM(1, 3, rng)
	seqA := [][]float64{{0.2}, {0.5}}
	seqB := [][]float64{{-0.3}, {0.7}}
	target := []float64{0.1, 0.1, 0.1}

	run := func(seq [][]float64) ([][]float64, []*lstmStep) {
		l.ResetState()
		dH := make([][]float64, len(seq))
		for i := range seq {
			h := l.Step(seq[i])
			_, g := MSELoss(h, target)
			dH[i] = g
		}
		return dH, l.TakeSteps()
	}

	// Shared pass: forward both, then backward both.
	dHA, stepsA := run(seqA)
	dHB, stepsB := run(seqB)
	l.BackwardSteps(stepsA, dHA)
	l.BackwardSteps(stepsB, dHB)
	shared := append([]float64(nil), l.W.G...)
	l.W.ZeroGrad()

	// Separate passes summed.
	dHA2, stepsA2 := run(seqA)
	l.BackwardSteps(stepsA2, dHA2)
	dHB2, stepsB2 := run(seqB)
	l.BackwardSteps(stepsB2, dHB2)
	for i := range shared {
		if math.Abs(shared[i]-l.W.G[i]) > 1e-12 {
			t.Fatalf("shared-sequence gradient mismatch at %d: %v vs %v", i, shared[i], l.W.G[i])
		}
	}
	l.W.ZeroGrad()
}
