package nn

import "math"

// MSELoss returns the mean squared error between pred and target and the
// gradient w.r.t. pred.
func MSELoss(pred, target []float64) (loss float64, grad []float64) {
	grad = make([]float64, len(pred))
	n := float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d / n
	}
	return loss / n, grad
}

// BCEWithLogitsLoss returns the binary cross-entropy between a logit and a
// {0,1} target, and the gradient w.r.t. the logit. This is the standard
// GAN discriminator loss in numerically stable form.
func BCEWithLogitsLoss(logit, target float64) (loss, grad float64) {
	// loss = max(z,0) - z*t + log(1 + exp(-|z|))
	z := logit
	loss = math.Max(z, 0) - z*target + math.Log1p(math.Exp(-math.Abs(z)))
	grad = Sigmoid(z) - target
	return loss, grad
}

// GaussianSample draws mu + exp(logSigma)*eps with the provided standard
// normal eps, returning the sample. With the reparameterization trick,
// d(sample)/d(mu) = 1 and d(sample)/d(logSigma) = exp(logSigma)*eps.
func GaussianSample(mu, logSigma, eps float64) float64 {
	return mu + math.Exp(clampLogSigma(logSigma))*eps
}

// GaussianSampleGrad backpropagates dSample into (dMu, dLogSigma) for the
// reparameterized sample above.
func GaussianSampleGrad(dSample, logSigma, eps float64) (dMu, dLogSigma float64) {
	return dSample, dSample * math.Exp(clampLogSigma(logSigma)) * eps
}

// GaussianNLL returns the negative log-likelihood of x under
// N(mu, exp(logSigma)^2) plus its gradients w.r.t. mu and logSigma. GenDT's
// ResGen head can be trained with this likelihood term.
func GaussianNLL(x, mu, logSigma float64) (nll, dMu, dLogSigma float64) {
	ls := clampLogSigma(logSigma)
	sigma := math.Exp(ls)
	z := (x - mu) / sigma
	nll = 0.5*z*z + ls + 0.5*math.Log(2*math.Pi)
	dMu = -z / sigma
	dLogSigma = 1 - z*z
	return nll, dMu, dLogSigma
}

// clampLogSigma bounds log-sigma to keep exponentials sane during early
// training.
func clampLogSigma(ls float64) float64 {
	if ls < -6 {
		return -6
	}
	if ls > 3 {
		return 3
	}
	return ls
}
