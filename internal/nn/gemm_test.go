package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The batched kernels' contract is EXACT equality with the single-lane
// kernels, not closeness: the batched generation engine relies on it to
// keep per-seed outputs byte-identical whether a job runs alone or in a
// micro-batch. These tests therefore compare with ==, on both the asm
// and the portable paths.

func fillNorm(v []float32, rng *rand.Rand) {
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
}

func TestGemmColF32MatchesGemv(t *testing.T) {
	withKernelFallback(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for _, rows := range []int{1, 5, 8, 12, 16, 31, 48, 70} {
			rows8 := pad8(rows)
			for _, cols := range []int{1, 2, 7, 19, 40} {
				// nb spans below, at, and past the asm chunk width (4),
				// including every ragged remainder 1..3.
				for _, nb := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9} {
					// Strides larger than the minimum mimic the batch
					// state's planes (lane data separated by padding).
					xStride := cols + 3
					yStride := rows8 + 8
					a := make([]float32, rows*cols)
					x := make([]float32, nb*xStride)
					bias := make([]float32, rows8)
					fillNorm(a, rng)
					fillNorm(x, rng)
					fillNorm(bias[:rows], rng)
					wt := PackColMajor(a, rows, cols)

					y := make([]float32, nb*yStride)
					GemmColF32(wt, rows8, cols, x, xStride, bias, y, yStride, nb)

					yRef := make([]float32, rows8)
					for b := 0; b < nb; b++ {
						GemvColF32(wt, rows8, cols, x[b*xStride:b*xStride+cols], bias, yRef)
						for r := 0; r < rows8; r++ {
							if y[b*yStride+r] != yRef[r] {
								t.Fatalf("%dx%d nb=%d lane %d row %d: GEMM %v != GEMV %v",
									rows, cols, nb, b, r, y[b*yStride+r], yRef[r])
							}
						}
						// The gap between lanes must stay untouched.
						for r := rows8; r < yStride && b*yStride+r < len(y); r++ {
							if y[b*yStride+r] != 0 {
								t.Fatalf("%dx%d nb=%d lane %d: wrote past PadRows at %d", rows, cols, nb, b, r)
							}
						}
					}
				}
			}
		}
	})
}

func TestGemmColF32Naive(t *testing.T) {
	withKernelFallback(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(12))
		rows, cols, nb := 23, 17, 5
		rows8 := pad8(rows)
		a := make([]float32, rows*cols)
		x := make([]float32, nb*cols)
		bias := make([]float32, rows8)
		fillNorm(a, rng)
		fillNorm(x, rng)
		fillNorm(bias[:rows], rng)
		wt := PackColMajor(a, rows, cols)
		y := make([]float32, nb*rows8)
		GemmColF32(wt, rows8, cols, x, cols, bias, y, rows8, nb)
		for b := 0; b < nb; b++ {
			want := naiveMatVec(a, rows, cols, x[b*cols:(b+1)*cols])
			for r := 0; r < rows; r++ {
				ref := want[r] + bias[r]
				diff := math.Abs(float64(y[b*rows8+r] - ref))
				if diff > 1e-5*(1+math.Abs(float64(ref))) {
					t.Fatalf("lane %d row %d: GEMM %v vs naive %v", b, r, y[b*rows8+r], ref)
				}
			}
		}
	})
}

func TestGemmColF32PanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for xStride < cols")
		}
	}()
	GemmColF32(make([]float32, 8*3), 8, 3, make([]float32, 4), 2, make([]float32, 8), make([]float32, 16), 8, 2)
}

func TestMatVecInt8BatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, rows := range []int{1, 3, 9, 24} {
		for _, cols := range []int{1, 4, 6, 21} {
			for _, nb := range []int{1, 3, 5, 8} {
				w := make([]float32, rows*cols)
				fillNorm(w, rng)
				q, rowScale := QuantizeRowsInt8(w, rows, cols)
				xqStride := cols + 2
				xq := make([]int8, nb*xqStride)
				for i := range xq {
					xq[i] = int8(rng.Intn(255) - 127)
				}
				scales := make([]float32, nb)
				fillNorm(scales, rng)
				yStride := rows + 3
				y := make([]float32, nb*yStride)
				MatVecInt8Batch(q, rows, cols, xq, xqStride, rowScale, scales, y, yStride, nb)
				yRef := make([]float32, rows)
				for b := 0; b < nb; b++ {
					MatVecInt8(q, rows, cols, xq[b*xqStride:b*xqStride+cols], rowScale, scales[b], yRef)
					for r := 0; r < rows; r++ {
						if y[b*yStride+r] != yRef[r] {
							t.Fatalf("%dx%d nb=%d lane %d row %d: batch %v != single %v",
								rows, cols, nb, b, r, y[b*yStride+r], yRef[r])
						}
					}
				}
			}
		}
	}
}

func TestApplyBatchMatchesApply(t *testing.T) {
	withKernelFallback(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(14))
		l := NewLinear(13, 11, rng)
		defer l.ClearCache()
		for _, quant := range []bool{false, true} {
			d := FreezeLinear(l, quant)
			nb := 6
			xStride := 13 + 2
			yStride := d.PadRows + 4
			x := make([]float32, nb*xStride)
			fillNorm(x, rng)
			y := make([]float32, nb*yStride)
			var sc BatchScratch
			d.ApplyBatch(x, xStride, y, yStride, nb, &sc)
			yRef := make([]float32, d.PadRows)
			xq := make([]int8, 13)
			for b := 0; b < nb; b++ {
				d.Apply(x[b*xStride:b*xStride+13], yRef, xq)
				for r := 0; r < d.Rows; r++ {
					if y[b*yStride+r] != yRef[r] {
						t.Fatalf("quant=%v lane %d row %d: ApplyBatch %v != Apply %v",
							quant, b, r, y[b*yStride+r], yRef[r])
					}
				}
			}
		}
	})
}

// TestStepBatchMatchesStep drives nb lockstep lanes and nb independent
// sequential states with identical per-lane inputs and RNG seeds (noise
// modulation on), asserting bit-identical H and C every step for both
// precisions — the property the batched generation engine is built on.
func TestStepBatchMatchesStep(t *testing.T) {
	withKernelFallback(t, func(t *testing.T) {
		setup := rand.New(rand.NewSource(15))
		l := NewLSTM(5, 9, setup)
		l.NoiseActive = true
		defer l.ClearCache()
		for _, quant := range []bool{false, true} {
			fr := FreezeLSTM(l, quant)
			const nb = 5
			bst := fr.NewBatchState(nb)
			rngs := make([]*rand.Rand, nb)
			seqSt := make([]*InferLSTMState, nb)
			seqRngs := make([]*rand.Rand, nb)
			for b := 0; b < nb; b++ {
				bst.ResetLane(b)
				rngs[b] = rand.New(rand.NewSource(int64(100 + b)))
				seqSt[b] = fr.NewState()
				fr.Reset(seqSt[b])
				seqRngs[b] = rand.New(rand.NewSource(int64(100 + b)))
			}
			inRng := rand.New(rand.NewSource(16))
			for step := 0; step < 8; step++ {
				// Lanes at and past their sequence end go inactive; the
				// sequential twin simply stops stepping them.
				active := make([]bool, nb)
				for b := 0; b < nb; b++ {
					active[b] = step < 4+b // lane b retires after 4+b steps
				}
				for b := 0; b < nb; b++ {
					in := make([]float32, 5)
					fillNorm(in, inRng)
					if !active[b] {
						continue
					}
					copy(bst.Input(b), in)
					copy(seqSt[b].Input(5), in)
				}
				fr.StepBatch(bst, nb, active, rngs)
				for b := 0; b < nb; b++ {
					if !active[b] {
						continue
					}
					fr.Step(seqSt[b], seqRngs[b])
				}
				for b := 0; b < nb; b++ {
					h, c := bst.H(b), bst.C(b)
					for j := 0; j < 9; j++ {
						if h[j] != seqSt[b].H[j] {
							t.Fatalf("quant=%v step %d lane %d h[%d]: batch %v != seq %v",
								quant, step, b, j, h[j], seqSt[b].H[j])
						}
						if c[j] != seqSt[b].C[j] {
							t.Fatalf("quant=%v step %d lane %d c[%d]: batch %v != seq %v",
								quant, step, b, j, c[j], seqSt[b].C[j])
						}
					}
				}
			}
			// Retired lanes drew nothing extra: the streams still agree.
			for b := 0; b < nb; b++ {
				if rngs[b].Int63() != seqRngs[b].Int63() {
					t.Fatalf("quant=%v lane %d: batched RNG stream diverged", quant, b)
				}
			}
		}
	})
}

// FuzzGemmShapes hammers GemmColF32 with arbitrary shapes, strides, and
// lane counts, asserting exact equality with per-lane GemvColF32 on both
// kernel paths. Mirrors FuzzQuantize's wiring into the CI fuzz smoke.
func FuzzGemmShapes(f *testing.F) {
	f.Add(int8(3), int8(5), int8(4), int8(2), int8(1), int64(1))
	f.Add(int8(16), int8(1), int8(9), int8(0), int8(0), int64(2))
	f.Add(int8(1), int8(40), int8(7), int8(5), int8(3), int64(3))
	f.Fuzz(func(t *testing.T, rowsIn, colsIn, nbIn, xPad, yPad int8, seed int64) {
		rows := int(rowsIn)&63 + 1
		cols := int(colsIn)&63 + 1
		nb := int(nbIn)&15 + 1
		rows8 := pad8(rows)
		xStride := cols + int(xPad)&7
		yStride := rows8 + (int(yPad)&7)*8
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, rows*cols)
		x := make([]float32, nb*xStride)
		bias := make([]float32, rows8)
		fillNorm(a, rng)
		fillNorm(x, rng)
		fillNorm(bias[:rows], rng)
		wt := PackColMajor(a, rows, cols)

		check := func(t *testing.T) {
			y := make([]float32, nb*yStride)
			GemmColF32(wt, rows8, cols, x, xStride, bias, y, yStride, nb)
			yRef := make([]float32, rows8)
			for b := 0; b < nb; b++ {
				GemvColF32(wt, rows8, cols, x[b*xStride:b*xStride+cols], bias, yRef)
				for r := 0; r < rows8; r++ {
					if y[b*yStride+r] != yRef[r] {
						t.Fatalf("rows=%d cols=%d nb=%d lane %d row %d: GEMM %v != GEMV %v",
							rows, cols, nb, b, r, y[b*yStride+r], yRef[r])
					}
				}
			}
		}
		check(t)
		saved := useAVX
		useAVX = false
		check(t)
		useAVX = saved
	})
}
