// AVX2+FMA inference kernels. Only reached when kernels_amd64.go's
// feature detection succeeds; the portable Go kernels are the reference
// implementations these are tested against.

#include "textflag.h"

// func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (lo, hi uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, lo+0(FP)
	MOVL DX, hi+4(FP)
	RET

// func gemvColAsm(wt, x, bias, y *float32, rowsBytes, cols int64)
//
// y = bias + W·x over the column-major mirror wt (cols blocks of
// rowsBytes bytes, one block per input column). The row dimension is
// walked in 32-float tiles held in four YMM accumulators — initialized
// from bias, so the bias add costs nothing — with 8-float tiles for the
// remainder. Per column the kernel broadcasts one x element and FMAs it
// against the tile's weight rows: no horizontal reductions anywhere,
// which is what makes the short, wide layers of a small LSTM fast.
TEXT ·gemvColAsm(SB), NOSPLIT, $0-48
	MOVQ wt+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ bias+16(FP), R15
	MOVQ y+24(FP), DX
	MOVQ rowsBytes+32(FP), CX
	MOVQ cols+40(FP), BX
	XORQ R8, R8                // byte offset into the row dimension

tile32:
	MOVQ CX, AX
	SUBQ R8, AX
	CMPQ AX, $128
	JLT  tile8
	VMOVUPS 0(R15)(R8*1), Y0   // accumulators start at the bias
	VMOVUPS 32(R15)(R8*1), Y1
	VMOVUPS 64(R15)(R8*1), Y2
	VMOVUPS 96(R15)(R8*1), Y3
	LEAQ (DI)(R8*1), R9        // this tile's rows in column 0
	MOVQ SI, R10               // x cursor
	MOVQ BX, R11               // columns remaining

col32:
	VBROADCASTSS (R10), Y4
	VFMADD231PS 0(R9), Y4, Y0
	VFMADD231PS 32(R9), Y4, Y1
	VFMADD231PS 64(R9), Y4, Y2
	VFMADD231PS 96(R9), Y4, Y3
	ADDQ CX, R9
	ADDQ $4, R10
	DECQ R11
	JNE  col32
	VMOVUPS Y0, 0(DX)(R8*1)
	VMOVUPS Y1, 32(DX)(R8*1)
	VMOVUPS Y2, 64(DX)(R8*1)
	VMOVUPS Y3, 96(DX)(R8*1)
	ADDQ $128, R8
	JMP  tile32

tile8:
	CMPQ R8, CX
	JGE  done
	VMOVUPS (R15)(R8*1), Y0
	LEAQ (DI)(R8*1), R9
	MOVQ SI, R10
	MOVQ BX, R11

col8:
	VBROADCASTSS (R10), Y4
	VFMADD231PS (R9), Y4, Y0
	ADDQ CX, R9
	ADDQ $4, R10
	DECQ R11
	JNE  col8
	VMOVUPS Y0, (DX)(R8*1)
	ADDQ $32, R8
	JMP  tile8

done:
	VZEROUPPER
	RET

// func gemmCol4Asm(wt, x, bias, y *float32, rowsBytes, cols, xStrideBytes, yStrideBytes int64)
//
// Four-lane batched gemvColAsm: y_b = bias + W·x_b for b in 0..3 with
// lane b's x at x + b*xStrideBytes and its y at y + b*yStrideBytes. The
// row dimension is walked in 16-float tiles: eight YMM accumulators (two
// row halves × four lanes, initialized from bias), two weight registers
// loaded once per column and FMAed against four broadcast x elements —
// so each weight byte is streamed from memory once per four sequences
// instead of once per sequence, which is the whole point of the batched
// path. Per lane the per-element schedule (bias init, one FMA per
// ascending column) matches gemvColAsm exactly, keeping the two kernels
// bit-identical per lane.
TEXT ·gemmCol4Asm(SB), NOSPLIT, $0-64
	MOVQ wt+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ bias+16(FP), R15
	MOVQ y+24(FP), DX
	MOVQ rowsBytes+32(FP), CX
	MOVQ cols+40(FP), BX
	MOVQ xStrideBytes+48(FP), R12
	MOVQ yStrideBytes+56(FP), R13
	XORQ R8, R8                // byte offset into the row dimension

gtile16:
	MOVQ CX, AX
	SUBQ R8, AX
	CMPQ AX, $64
	JLT  gtile8
	VMOVUPS 0(R15)(R8*1), Y0   // accumulators start at the bias
	VMOVUPS 32(R15)(R8*1), Y1
	VMOVAPS Y0, Y2             // lanes 1..3 start from the same bias
	VMOVAPS Y1, Y3
	VMOVAPS Y0, Y4
	VMOVAPS Y1, Y5
	VMOVAPS Y0, Y6
	VMOVAPS Y1, Y7
	LEAQ (DI)(R8*1), R9        // this tile's rows in column 0
	MOVQ SI, R10               // lane-0 x cursor
	LEAQ (SI)(R12*2), R14
	ADDQ R12, R14              // lane-3 x cursor
	MOVQ BX, R11               // columns remaining

gcol16:
	VMOVUPS 0(R9), Y8          // weight tile, shared by all four lanes
	VMOVUPS 32(R9), Y9
	VBROADCASTSS (R10), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS (R10)(R12*1), Y10
	VFMADD231PS Y8, Y10, Y2
	VFMADD231PS Y9, Y10, Y3
	VBROADCASTSS (R10)(R12*2), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS (R14), Y10
	VFMADD231PS Y8, Y10, Y6
	VFMADD231PS Y9, Y10, Y7
	ADDQ CX, R9
	ADDQ $4, R10
	ADDQ $4, R14
	DECQ R11
	JNE  gcol16
	LEAQ (DX)(R8*1), AX        // store the tile into each lane's y
	VMOVUPS Y0, 0(AX)
	VMOVUPS Y1, 32(AX)
	ADDQ R13, AX
	VMOVUPS Y2, 0(AX)
	VMOVUPS Y3, 32(AX)
	ADDQ R13, AX
	VMOVUPS Y4, 0(AX)
	VMOVUPS Y5, 32(AX)
	ADDQ R13, AX
	VMOVUPS Y6, 0(AX)
	VMOVUPS Y7, 32(AX)
	ADDQ $64, R8
	JMP  gtile16

gtile8:
	CMPQ R8, CX
	JGE  gdone
	VMOVUPS (R15)(R8*1), Y0
	VMOVAPS Y0, Y2
	VMOVAPS Y0, Y4
	VMOVAPS Y0, Y6
	LEAQ (DI)(R8*1), R9
	MOVQ SI, R10
	LEAQ (SI)(R12*2), R14
	ADDQ R12, R14
	MOVQ BX, R11

gcol8:
	VMOVUPS (R9), Y8
	VBROADCASTSS (R10), Y10
	VFMADD231PS Y8, Y10, Y0
	VBROADCASTSS (R10)(R12*1), Y10
	VFMADD231PS Y8, Y10, Y2
	VBROADCASTSS (R10)(R12*2), Y10
	VFMADD231PS Y8, Y10, Y4
	VBROADCASTSS (R14), Y10
	VFMADD231PS Y8, Y10, Y6
	ADDQ CX, R9
	ADDQ $4, R10
	ADDQ $4, R14
	DECQ R11
	JNE  gcol8
	LEAQ (DX)(R8*1), AX
	VMOVUPS Y0, (AX)
	ADDQ R13, AX
	VMOVUPS Y2, (AX)
	ADDQ R13, AX
	VMOVUPS Y4, (AX)
	ADDQ R13, AX
	VMOVUPS Y6, (AX)
	ADDQ $32, R8
	JMP  gtile8

gdone:
	VZEROUPPER
	RET

// Broadcast scalars for vsigAsm (loaded with VBROADCASTSS).
DATA vsigHi<>+0(SB)/4, $0x42ae0000     // +87.0
GLOBL vsigHi<>(SB), RODATA|NOPTR, $4
DATA vsigLo<>+0(SB)/4, $0xc2ae0000     // -87.0
GLOBL vsigLo<>(SB), RODATA|NOPTR, $4
DATA vsigInvLn2<>+0(SB)/4, $0x3fb8aa3b // log2(e)
GLOBL vsigInvLn2<>(SB), RODATA|NOPTR, $4
DATA vsigLn2Hi<>+0(SB)/4, $0x3f318000  // ln2 hi split
GLOBL vsigLn2Hi<>(SB), RODATA|NOPTR, $4
DATA vsigLn2Lo<>+0(SB)/4, $0xb95e8083  // ln2 lo split
GLOBL vsigLn2Lo<>(SB), RODATA|NOPTR, $4
DATA vsigOne<>+0(SB)/4, $0x3f800000    // 1.0
GLOBL vsigOne<>(SB), RODATA|NOPTR, $4
DATA vsigC6<>+0(SB)/4, $0x3ab60b61     // 1/720
GLOBL vsigC6<>(SB), RODATA|NOPTR, $4
DATA vsigExpBias<>+0(SB)/4, $127       // float32 exponent bias (int32)
GLOBL vsigExpBias<>(SB), RODATA|NOPTR, $4

// Full-width Horner addends (memory operands of VFMADD213PS).
DATA vsigC5x8<>+0(SB)/4, $0x3c088889 // 1/120
DATA vsigC5x8<>+4(SB)/4, $0x3c088889
DATA vsigC5x8<>+8(SB)/4, $0x3c088889
DATA vsigC5x8<>+12(SB)/4, $0x3c088889
DATA vsigC5x8<>+16(SB)/4, $0x3c088889
DATA vsigC5x8<>+20(SB)/4, $0x3c088889
DATA vsigC5x8<>+24(SB)/4, $0x3c088889
DATA vsigC5x8<>+28(SB)/4, $0x3c088889
GLOBL vsigC5x8<>(SB), RODATA|NOPTR, $32
DATA vsigC4x8<>+0(SB)/4, $0x3d2aaaab // 1/24
DATA vsigC4x8<>+4(SB)/4, $0x3d2aaaab
DATA vsigC4x8<>+8(SB)/4, $0x3d2aaaab
DATA vsigC4x8<>+12(SB)/4, $0x3d2aaaab
DATA vsigC4x8<>+16(SB)/4, $0x3d2aaaab
DATA vsigC4x8<>+20(SB)/4, $0x3d2aaaab
DATA vsigC4x8<>+24(SB)/4, $0x3d2aaaab
DATA vsigC4x8<>+28(SB)/4, $0x3d2aaaab
GLOBL vsigC4x8<>(SB), RODATA|NOPTR, $32
DATA vsigC3x8<>+0(SB)/4, $0x3e2aaaab // 1/6
DATA vsigC3x8<>+4(SB)/4, $0x3e2aaaab
DATA vsigC3x8<>+8(SB)/4, $0x3e2aaaab
DATA vsigC3x8<>+12(SB)/4, $0x3e2aaaab
DATA vsigC3x8<>+16(SB)/4, $0x3e2aaaab
DATA vsigC3x8<>+20(SB)/4, $0x3e2aaaab
DATA vsigC3x8<>+24(SB)/4, $0x3e2aaaab
DATA vsigC3x8<>+28(SB)/4, $0x3e2aaaab
GLOBL vsigC3x8<>(SB), RODATA|NOPTR, $32
DATA vsigC2x8<>+0(SB)/4, $0x3f000000 // 1/2
DATA vsigC2x8<>+4(SB)/4, $0x3f000000
DATA vsigC2x8<>+8(SB)/4, $0x3f000000
DATA vsigC2x8<>+12(SB)/4, $0x3f000000
DATA vsigC2x8<>+16(SB)/4, $0x3f000000
DATA vsigC2x8<>+20(SB)/4, $0x3f000000
DATA vsigC2x8<>+24(SB)/4, $0x3f000000
DATA vsigC2x8<>+28(SB)/4, $0x3f000000
GLOBL vsigC2x8<>(SB), RODATA|NOPTR, $32
DATA vsigC1x8<>+0(SB)/4, $0x3f800000 // 1
DATA vsigC1x8<>+4(SB)/4, $0x3f800000
DATA vsigC1x8<>+8(SB)/4, $0x3f800000
DATA vsigC1x8<>+12(SB)/4, $0x3f800000
DATA vsigC1x8<>+16(SB)/4, $0x3f800000
DATA vsigC1x8<>+20(SB)/4, $0x3f800000
DATA vsigC1x8<>+24(SB)/4, $0x3f800000
DATA vsigC1x8<>+28(SB)/4, $0x3f800000
GLOBL vsigC1x8<>(SB), RODATA|NOPTR, $32

// func vsigAsm(dst, src *float32, n int64, negScale, a, b float32)
//
// dst[i] = a/(1+e^t)+b, t = clamp(negScale*src[i], ±87), eight lanes per
// iteration. The exponential matches ExpF32's algorithm: range-reduce by
// ln2 with a hi/lo split, degree-6 polynomial on the residual, scale by
// 2^k built in the exponent field. Both sigmoid (-1,1,0) and tanh
// (-2,2,-1) ride on the single-sided exponential, whose argument the
// clamp keeps inside float32's normal range, so no lane ever needs a
// special case.
TEXT ·vsigAsm(SB), NOSPLIT, $0-36
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS negScale+24(FP), Y8
	VBROADCASTSS a+28(FP), Y9
	VBROADCASTSS b+32(FP), Y10
	VBROADCASTSS vsigHi<>(SB), Y11
	VBROADCASTSS vsigLo<>(SB), Y12
	VBROADCASTSS vsigInvLn2<>(SB), Y13
	VBROADCASTSS vsigLn2Hi<>(SB), Y14
	VBROADCASTSS vsigLn2Lo<>(SB), Y15
	VBROADCASTSS vsigOne<>(SB), Y7
	VPBROADCASTD vsigExpBias<>(SB), Y6

loop:
	VMOVUPS (SI), Y0
	VMULPS  Y0, Y8, Y0         // t = negScale*x
	VMINPS  Y11, Y0, Y0        // t = min(t, 87)
	VMAXPS  Y12, Y0, Y0        // t = max(t, -87)
	VMULPS  Y0, Y13, Y1        // t/ln2
	VCVTPS2DQ Y1, Y2           // k (round to nearest)
	VCVTDQ2PS Y2, Y1           // float(k)
	VFNMADD231PS Y14, Y1, Y0   // f = t - k*ln2hi
	VFNMADD231PS Y15, Y1, Y0   //       - k*ln2lo
	VBROADCASTSS vsigC6<>(SB), Y3
	VFMADD213PS vsigC5x8<>(SB), Y0, Y3 // Horner: p = p*f + c
	VFMADD213PS vsigC4x8<>(SB), Y0, Y3
	VFMADD213PS vsigC3x8<>(SB), Y0, Y3
	VFMADD213PS vsigC2x8<>(SB), Y0, Y3
	VFMADD213PS vsigC1x8<>(SB), Y0, Y3
	VFMADD213PS vsigC1x8<>(SB), Y0, Y3
	VPADDD  Y6, Y2, Y2         // biased exponent k+127 ∈ [1, 253]
	VPSLLD  $23, Y2, Y2        // 2^k
	VMULPS  Y2, Y3, Y3         // e = p * 2^k
	VADDPS  Y7, Y3, Y3         // 1 + e
	VDIVPS  Y3, Y9, Y4         // a / (1+e)
	VADDPS  Y10, Y4, Y4        // + b
	VMOVUPS Y4, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNE  loop
	VZEROUPPER
	RET
