package nn

import "math"

// Post-training int8 weight quantization for the frozen inference path:
// symmetric (zero-point-free), with an independent scale per output row.
// Activations are quantized dynamically per vector at apply time
// (QuantizeVecInt8 on the layer input), so the int8 backend needs no
// calibration data — the only approximation is the two rounding steps,
// which the kernel property tests bound per row.

// QuantizeVecInt8 symmetrically quantizes x into q (len(q) ≥ len(x)) and
// returns the scale such that x[i] ≈ float32(q[i])·scale. The scale is
// max|x|/127 computed over the finite entries, so it is always finite;
// NaN quantizes to 0 and ±Inf saturates to ±127. An all-zero (or
// all-non-finite) vector returns scale 0 with q zeroed.
func QuantizeVecInt8(x []float32, q []int8) float32 {
	if len(q) < len(x) {
		panic("nn: QuantizeVecInt8 output too short")
	}
	maxAbs := float32(0)
	for _, v := range x {
		a := v
		if a < 0 {
			a = -a
		}
		// NaN fails both comparisons; Inf is excluded explicitly so the
		// scale stays finite.
		if a > maxAbs && !isInf32(a) {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range x {
			q[i] = 0
		}
		return 0
	}
	inv := 127 / maxAbs
	for i, v := range x {
		q[i] = roundInt8(v * inv)
	}
	return maxAbs / 127
}

// roundInt8 rounds half away from zero with saturation; NaN maps to 0.
// The explicit guards matter: float-to-int conversion of NaN or
// out-of-range values is implementation-specific in Go.
func roundInt8(v float32) int8 {
	switch {
	case v != v:
		return 0
	case v >= 127:
		return 127
	case v <= -127:
		return -127
	case v >= 0:
		return int8(v + 0.5)
	}
	return int8(v - 0.5)
}

func isInf32(v float32) bool { return v > math.MaxFloat32 || v < -math.MaxFloat32 }

// QuantizeRowsInt8 quantizes a row-major rows×cols float32 matrix with an
// independent symmetric scale per output row (scale-per-output-row keeps
// one outlier weight from crushing the resolution of every other row).
func QuantizeRowsInt8(w []float32, rows, cols int) (q []int8, scales []float32) {
	q = make([]int8, rows*cols)
	scales = make([]float32, rows)
	for r := 0; r < rows; r++ {
		scales[r] = QuantizeVecInt8(w[r*cols:(r+1)*cols], q[r*cols:(r+1)*cols])
	}
	return q, scales
}
