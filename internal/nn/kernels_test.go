package nn

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatVec is the scalar reference the blocked kernel must match.
func naiveMatVec(a []float32, rows, cols int, x []float32) []float32 {
	y := make([]float32, rows)
	for r := 0; r < rows; r++ {
		var s float32
		for c := 0; c < cols; c++ {
			s += a[r*cols+c] * x[c]
		}
		y[r] = s
	}
	return y
}

// TestMatVecF32Parity checks the blocked, unrolled kernel against a naive
// scalar loop across shapes that exercise every row/column tail path
// (rows%4 and cols%4 in all combinations).
func TestMatVecF32Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 13, 48} {
		for _, cols := range []int{1, 2, 3, 4, 6, 9, 16, 33} {
			a := make([]float32, rows*cols)
			x := make([]float32, cols)
			for i := range a {
				a[i] = float32(rng.NormFloat64())
			}
			for i := range x {
				x[i] = float32(rng.NormFloat64())
			}
			y := make([]float32, rows)
			MatVecF32(a, rows, cols, x, y)
			want := naiveMatVec(a, rows, cols, x)
			for r := range y {
				diff := math.Abs(float64(y[r] - want[r]))
				tol := 1e-5 * (1 + math.Abs(float64(want[r])))
				if diff > tol {
					t.Fatalf("%dx%d row %d: blocked %v vs naive %v", rows, cols, r, y[r], want[r])
				}
			}
		}
	}
}

func TestMatVecF32PanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatVecF32 must panic on mismatched dimensions")
		}
	}()
	MatVecF32(make([]float32, 5), 2, 3, make([]float32, 3), make([]float32, 2))
}

// TestQuantizeRoundTrip bounds the per-element dequantization error:
// |x - q*scale| <= scale/2 (half a quantization step) for finite inputs.
func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64()) * float32(math.Pow(10, float64(rng.Intn(5)-2)))
		}
		q := make([]int8, n)
		scale := QuantizeVecInt8(x, q)
		if scale < 0 || math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) {
			t.Fatalf("bad scale %v", scale)
		}
		for i := range x {
			back := float32(q[i]) * scale
			if diff := math.Abs(float64(x[i] - back)); diff > float64(scale)/2+1e-12 {
				t.Fatalf("x[%d]=%v round-trips to %v (scale %v, err %v)", i, x[i], back, scale, diff)
			}
		}
	}
}

// TestMatVecInt8Parity: the int8 path with per-row weight scales and a
// shared activation scale must approximate the f32 product within the
// combined quantization budget.
func TestMatVecInt8Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, rows := range []int{1, 3, 4, 9, 32} {
		for _, cols := range []int{1, 5, 16, 40} {
			w := make([]float32, rows*cols)
			x := make([]float32, cols)
			for i := range w {
				w[i] = float32(rng.NormFloat64())
			}
			for i := range x {
				x[i] = float32(rng.NormFloat64())
			}
			q, rowScale := QuantizeRowsInt8(w, rows, cols)
			xq := make([]int8, cols)
			xScale := QuantizeVecInt8(x, xq)
			y := make([]float32, rows)
			MatVecInt8(q, rows, cols, xq, rowScale, xScale, y)
			want := naiveMatVec(w, rows, cols, x)
			for r := range y {
				// Error budget: each product has relative error ~1/127 per
				// operand; accumulate over cols with slack.
				tol := 0.05 * (1 + math.Sqrt(float64(cols)))
				if diff := math.Abs(float64(y[r] - want[r])); diff > tol {
					t.Fatalf("%dx%d row %d: int8 %v vs f32 %v (tol %v)", rows, cols, r, y[r], want[r], tol)
				}
			}
		}
	}
}

// TestQuantizeDegenerate: zero, NaN, and infinite inputs must not produce
// NaN scales or out-of-range codes.
func TestQuantizeDegenerate(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	for _, x := range [][]float32{
		{},
		{0, 0, 0},
		{nan, nan},
		{inf, -inf, 1},
		{nan, 0.5, -inf},
	} {
		q := make([]int8, len(x))
		scale := QuantizeVecInt8(x, q)
		if math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) || scale < 0 {
			t.Fatalf("QuantizeVecInt8(%v) scale = %v", x, scale)
		}
		for i, v := range q {
			if v < -127 || v > 127 {
				t.Fatalf("QuantizeVecInt8(%v) q[%d] = %d", x, i, v)
			}
		}
	}
}

// FuzzQuantize: quantization must never panic and always yield a finite,
// non-negative scale with codes in [-127, 127], whatever bit patterns the
// input holds.
func FuzzQuantize(f *testing.F) {
	f.Add(uint32(0), uint32(0x3f800000), uint32(0x7f800000), uint32(0x7fc00000))
	f.Add(uint32(0xff7fffff), uint32(0x00000001), uint32(0x80000000), uint32(0x42f70000))
	f.Fuzz(func(t *testing.T, a, b, c, d uint32) {
		x := []float32{
			math.Float32frombits(a), math.Float32frombits(b),
			math.Float32frombits(c), math.Float32frombits(d),
		}
		q := make([]int8, len(x))
		scale := QuantizeVecInt8(x, q)
		if math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) || scale < 0 {
			t.Fatalf("scale = %v for %v", scale, x)
		}
		for i, v := range q {
			if v < -127 || v > 127 {
				t.Fatalf("q[%d] = %d for %v", i, v, x)
			}
		}
	})
}

// TestExpF32Accuracy compares the polynomial exp against math.Exp over the
// range the model actually uses (clamped log-sigma is in [-6, 3]; gate
// pre-activations rarely exceed ±30).
func TestExpF32Accuracy(t *testing.T) {
	for x := -87.0; x <= 88.0; x += 0.37 {
		got := float64(ExpF32(float32(x)))
		want := math.Exp(x)
		rel := math.Abs(got-want) / want
		if rel > 1e-5 {
			t.Fatalf("ExpF32(%v) = %v, want %v (rel %v)", x, got, want, rel)
		}
	}
	if v := ExpF32(100); !math.IsInf(float64(v), 1) {
		t.Errorf("ExpF32(100) = %v, want +Inf", v)
	}
	if v := ExpF32(-100); v != 0 {
		t.Errorf("ExpF32(-100) = %v, want 0", v)
	}
	if v := ExpF32(float32(math.NaN())); !math.IsNaN(float64(v)) {
		t.Errorf("ExpF32(NaN) = %v, want NaN", v)
	}
}

func TestSigmoidTanhAccuracy(t *testing.T) {
	for x := -20.0; x <= 20.0; x += 0.13 {
		if got, want := float64(SigmoidF32(float32(x))), 1/(1+math.Exp(-x)); math.Abs(got-want) > 2e-6 {
			t.Fatalf("SigmoidF32(%v) = %v, want %v", x, got, want)
		}
		if got, want := float64(TanhF32(float32(x))), math.Tanh(x); math.Abs(got-want) > 4e-6 {
			t.Fatalf("TanhF32(%v) = %v, want %v", x, got, want)
		}
	}
	// Saturation must be exact at the rails: downstream clamping relies on it.
	if v := TanhF32(50); v != 1 {
		t.Errorf("TanhF32(50) = %v, want 1", v)
	}
	if v := TanhF32(-50); v != -1 {
		t.Errorf("TanhF32(-50) = %v, want -1", v)
	}
	if v := SigmoidF32(80); v != 1 {
		t.Errorf("SigmoidF32(80) = %v, want 1", v)
	}
}

// TestModulateF32MatchesF64 checks the frozen stochastic layer against the
// float64 LSTM modulate: same RNG draw count and near-identical output, so
// the frozen path keeps the exact RNG schedule of the live model.
func TestModulateF32MatchesF64(t *testing.T) {
	const n = 16
	v64 := make([]float64, n)
	v32 := make([]float32, n)
	rng := rand.New(rand.NewSource(5))
	for i := range v64 {
		v64[i] = rng.NormFloat64()
		v32[i] = float32(v64[i])
	}

	r64 := rand.New(rand.NewSource(99))
	l := &LSTM{rng: r64}
	l.modulate(v64, 0.6)
	r32 := rand.New(rand.NewSource(99))
	ModulateF32(v32, 0.6, r32)

	// Same draw count: both RNGs must now be in the same state.
	if a, b := r64.Int63(), r32.Int63(); a != b {
		t.Fatalf("RNG streams diverged after modulate: %d vs %d", a, b)
	}
	for i := range v64 {
		if diff := math.Abs(v64[i] - float64(v32[i])); diff > 1e-5 {
			t.Fatalf("element %d: f64 %v vs f32 %v", i, v64[i], v32[i])
		}
	}

	// a=0 is a draw-free no-op on both paths.
	before := append([]float32(nil), v32...)
	r0 := rand.New(rand.NewSource(7))
	ModulateF32(v32, 0, r0)
	for i := range v32 {
		if v32[i] != before[i] {
			t.Fatalf("ModulateF32 with a=0 changed element %d", i)
		}
	}
}

// TestFrozenDenseMatchesLinear: freezing a Linear and applying it must
// reproduce Forward within f32 tolerance (f32) and quantization budget
// (int8), biases exact in both.
func TestFrozenDenseMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLinear(13, 7, rng)
	x64 := make([]float64, 13)
	x32 := make([]float32, 13)
	for i := range x64 {
		x64[i] = rng.NormFloat64()
		x32[i] = float32(x64[i])
	}
	want := l.Forward(x64)

	for _, quant := range []bool{false, true} {
		d := FreezeLinear(l, quant)
		y := make([]float32, 7)
		xq := make([]int8, 13)
		d.Apply(x32, y, xq)
		tol := 1e-5
		if quant {
			tol = 0.2
		}
		for i := range want {
			if diff := math.Abs(want[i] - float64(y[i])); diff > tol {
				t.Fatalf("quant=%v out[%d]: frozen %v vs linear %v", quant, i, y[i], want[i])
			}
		}
	}
	l.ClearCache()
}

// TestFreezeLSTMStepMatchesF64: one frozen step must track the float64
// LSTM step closely with noise off (bit-exact is not expected — f32).
func TestFreezeLSTMStepMatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLSTM(5, 9, rng)
	l.NoiseActive = false
	fr := FreezeLSTM(l, false)
	st := fr.NewState()
	fr.Reset(st)
	l.ResetState()

	for step := 0; step < 6; step++ {
		x64 := make([]float64, 5)
		in := st.Input(5)
		for i := range x64 {
			x64[i] = rng.NormFloat64()
			in[i] = float32(x64[i])
		}
		h64 := l.Step(x64)
		h32 := fr.Step(st, nil)
		for j := range h64 {
			if diff := math.Abs(h64[j] - float64(h32[j])); diff > 1e-4 {
				t.Fatalf("step %d hidden %d: f64 %v vs frozen %v", step, j, h64[j], h32[j])
			}
		}
	}
	l.ClearCache()
}

// withKernelFallback runs fn twice, once on the platform's fast path and
// once with the AVX kernels disabled, so every parity test covers both
// the assembly and the portable Go implementations.
func withKernelFallback(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	fn(t)
	saved := useAVX
	useAVX = false
	defer func() { useAVX = saved }()
	t.Run("fallback", fn)
}

func TestGemvColF32Parity(t *testing.T) {
	withKernelFallback(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		for _, rows := range []int{1, 2, 4, 5, 8, 12, 31, 48, 70, 128} {
			for _, cols := range []int{1, 2, 3, 7, 19, 24, 40} {
				a := make([]float32, rows*cols)
				x := make([]float32, cols)
				bias := make([]float32, pad8(rows))
				for i := range a {
					a[i] = float32(rng.NormFloat64())
				}
				for i := range x {
					x[i] = float32(rng.NormFloat64())
				}
				for i := 0; i < rows; i++ {
					bias[i] = float32(rng.NormFloat64())
				}
				wt := PackColMajor(a, rows, cols)
				y := make([]float32, pad8(rows))
				GemvColF32(wt, pad8(rows), cols, x, bias, y)
				want := naiveMatVec(a, rows, cols, x)
				for r := 0; r < rows; r++ {
					ref := want[r] + bias[r]
					diff := math.Abs(float64(y[r] - ref))
					tol := 1e-5 * (1 + math.Abs(float64(ref)))
					if diff > tol {
						t.Fatalf("%dx%d row %d: GemvColF32 %v vs naive %v", rows, cols, r, y[r], ref)
					}
				}
				// Padded rows have zero weights and zero bias.
				for r := rows; r < pad8(rows); r++ {
					if y[r] != 0 {
						t.Fatalf("%dx%d pad row %d: got %v, want 0", rows, cols, r, y[r])
					}
				}
			}
		}
	})
}

func TestGemvColF32PanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rows8 not a multiple of 8")
		}
	}()
	GemvColF32(make([]float32, 12), 12, 1, make([]float32, 1), make([]float32, 12), make([]float32, 12))
}

func TestSigmoidTanhVecParity(t *testing.T) {
	withKernelFallback(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		for _, n := range []int{1, 4, 7, 8, 9, 16, 40, 100} {
			src := make([]float32, n)
			for i := range src {
				src[i] = float32(rng.NormFloat64() * 8)
			}
			// Out-of-range and saturation inputs in every size that fits.
			if n >= 4 {
				src[0], src[1], src[2], src[3] = 120, -120, 50, -50
			}
			sv := append([]float32(nil), src...)
			SigmoidVecF32(sv)
			tv := make([]float32, n)
			TanhVecF32(tv, src)
			for i := range src {
				x := float64(src[i])
				wantS := 1 / (1 + math.Exp(-x))
				wantT := math.Tanh(x)
				if d := math.Abs(float64(sv[i]) - wantS); d > 2e-6 {
					t.Fatalf("n=%d SigmoidVecF32(%v) = %v, want %v (diff %g)", n, src[i], sv[i], wantS, d)
				}
				if d := math.Abs(float64(tv[i]) - wantT); d > 4e-6 {
					t.Fatalf("n=%d TanhVecF32(%v) = %v, want %v (diff %g)", n, src[i], tv[i], wantT, d)
				}
			}
		}
		// Exact saturation rails, matching the scalar kernels.
		one := []float32{80}
		SigmoidVecF32(one)
		if one[0] != 1 {
			t.Fatalf("SigmoidVecF32(80) = %v, want exactly 1", one[0])
		}
		rails := make([]float32, 2)
		TanhVecF32(rails, []float32{50, -50})
		if rails[0] != 1 || rails[1] != -1 {
			t.Fatalf("TanhVecF32(±50) = %v, want exactly ±1", rails)
		}
	})
}

func TestTanhVecF32InPlace(t *testing.T) {
	withKernelFallback(t, func(t *testing.T) {
		v := []float32{-3, -1, 0, 0.5, 1, 2, 4, 8, -0.25, 9}
		want := make([]float32, len(v))
		TanhVecF32(want, v)
		TanhVecF32(v, v)
		for i := range v {
			if v[i] != want[i] {
				t.Fatalf("in-place tanh diverged at %d: %v vs %v", i, v[i], want[i])
			}
		}
	})
}
