package nn

import (
	"math"
	"math/rand"
)

// Frozen inference layers: immutable float32 (or int8) snapshots of the
// trained float64 layers, shaped for the blocked kernels in kernels.go.
// Freezing separates weights from state — a FrozenDense/InferLSTM holds
// only weights and is safe to share across any number of goroutines, while
// every generation job owns an InferLSTMState — which is what lets the
// serving path run on one frozen snapshot with zero cloning.

// FrozenDense is an immutable dense weight block with either a float32 or
// an int8 backend. Exactly one of W and Q is set; Bias (optional) is kept
// in float32 for both backends — quantizing a bias saves nothing and
// costs accuracy, since it is added once per output, not multiplied
// per column.
//
// The f32 backend additionally carries a column-major mirror (WT) with
// rows zero-padded to the 8-lane kernel width, plus the bias pre-padded
// to match (BiasPad): that is the layout GemvColF32's AVX kernel wants,
// and the zero padding means the kernel can always write full register
// tiles into a y of at least PadRows entries — the pad rows compute
// 0·x+0 and land beyond y[:Rows], where callers never look.
type FrozenDense struct {
	Rows, Cols int
	PadRows    int       // Rows rounded up to the 8-lane kernel width
	W          []float32 // row-major f32 weights (nil when quantized)
	WT         []float32 // column-major [Cols][PadRows] mirror (f32 only)
	BiasPad    []float32 // [PadRows] bias, zeros where absent (f32 only)
	Q          []int8    // int8 backend (nil when f32)
	RowScale   []float32 // per-output-row dequantization scales (int8 only)
	Bias       []float32 // len Rows, or nil
}

// Apply computes y = W·x (+ bias). xq is caller scratch of at least Cols
// for the int8 backend's dynamically quantized activations; the f32
// backend ignores it. The f32 backend takes the blocked column-major
// kernel whenever the caller's y has room for the padded rows, which
// every hot-path scratch buffer does; a short y falls back to the
// row-major kernel and stays correct.
func (d *FrozenDense) Apply(x, y []float32, xq []int8) {
	if d.W != nil {
		if len(y) >= d.PadRows {
			GemvColF32(d.WT, d.PadRows, d.Cols, x, d.BiasPad, y)
			return
		}
		MatVecF32(d.W, d.Rows, d.Cols, x, y)
	} else {
		xScale := QuantizeVecInt8(x[:d.Cols], xq)
		MatVecInt8(d.Q, d.Rows, d.Cols, xq, d.RowScale, xScale, y)
	}
	if d.Bias != nil {
		for i, b := range d.Bias[:d.Rows] {
			y[i] += b
		}
	}
}

// BatchScratch is reusable scratch for ApplyBatch's int8 backend: the
// per-lane dynamically quantized activations and their scales. The f32
// backend never touches it. One scratch per batch state is enough — the
// contents are dead once the matmul returns.
type BatchScratch struct {
	XQ     []int8
	Scales []float32
}

// ApplyBatch is the batched Apply: y_b = W·x_b (+ bias) for nb lanes,
// lane b's input at x[b*xStride:] and output at y[b*yStride:]. The f32
// backend requires yStride >= PadRows (every batched caller sizes its
// planes that way); each lane's result is bit-identical to a standalone
// Apply on the same input, for both backends — the f32 GEMM preserves
// GemvColF32's per-row accumulation order, and the int8 matmul is exact
// in int32 with the same dequantization expression and bias loop.
func (d *FrozenDense) ApplyBatch(x []float32, xStride int, y []float32, yStride, nb int, sc *BatchScratch) {
	if d.W != nil {
		if yStride < d.PadRows {
			panic("nn: ApplyBatch yStride below PadRows")
		}
		GemmColF32(d.WT, d.PadRows, d.Cols, x, xStride, d.BiasPad, y, yStride, nb)
		return
	}
	need := nb * d.Cols
	if cap(sc.XQ) < need {
		sc.XQ = make([]int8, need)
	}
	sc.XQ = sc.XQ[:need]
	if cap(sc.Scales) < nb {
		sc.Scales = make([]float32, nb)
	}
	sc.Scales = sc.Scales[:nb]
	for b := 0; b < nb; b++ {
		sc.Scales[b] = QuantizeVecInt8(x[b*xStride:b*xStride+d.Cols], sc.XQ[b*d.Cols:])
	}
	MatVecInt8Batch(d.Q, d.Rows, d.Cols, sc.XQ, d.Cols, d.RowScale, sc.Scales, y, yStride, nb)
	if d.Bias != nil {
		for b := 0; b < nb; b++ {
			yb := y[b*yStride:]
			for i, bv := range d.Bias[:d.Rows] {
				yb[i] += bv
			}
		}
	}
}

// newFrozenDense builds a FrozenDense from float64 row-major weights,
// quantizing to int8 when quant is set.
func newFrozenDense(w64 []float64, rows, cols int, bias64 []float64, quant bool) *FrozenDense {
	if len(w64) < rows*cols {
		panic("nn: newFrozenDense weight size mismatch")
	}
	d := &FrozenDense{Rows: rows, Cols: cols, PadRows: pad8(rows)}
	w := make([]float32, rows*cols)
	for i := range w {
		w[i] = float32(w64[i])
	}
	if bias64 != nil {
		d.Bias = make([]float32, rows)
		for i := range d.Bias {
			d.Bias[i] = float32(bias64[i])
		}
	}
	if quant {
		d.Q, d.RowScale = QuantizeRowsInt8(w, rows, cols)
	} else {
		d.W = w
		d.WT = PackColMajor(w, rows, cols)
		d.BiasPad = make([]float32, d.PadRows)
		copy(d.BiasPad, d.Bias)
	}
	return d
}

// FreezeLinear snapshots a Linear layer for inference.
func FreezeLinear(l *Linear, quant bool) *FrozenDense {
	return newFrozenDense(l.W.W, l.Out, l.In, l.B.W, quant)
}

// InferLSTM is the frozen counterpart of LSTM. The four gate matmuls of a
// step are fused into one packed [4H × (In+H)] GEMV over xh = [x; h], so
// the whole weight block streams through cache exactly once per step. The
// per-row bias column of the trained layout is split out into the dense's
// float32 Bias (biases must not be quantized away with the weights).
// Gate rows are restacked [i; f; o; g] — sigmoid gates first — so the
// step applies the vectorized sigmoid to one contiguous 3H block and the
// vectorized tanh to the last H.
type InferLSTM struct {
	In, Hidden int
	AH, AC     float32
	Noise      bool
	Gates      *FrozenDense // rows = 4H stacked [i; f; o; g], cols = In+H

	// GatesSig/GatesG are row-slices of the same stacked gate matrix —
	// the sigmoid block [i; f; o] (3H rows) and the tanh block g (H
	// rows) — frozen separately so the batched path can run each
	// activation as ONE vector call over a contiguous multi-lane plane.
	// Per-row f32 packing and per-row int8 quantization are both
	// row-independent, so these produce bit-identical outputs to the
	// corresponding rows of the fused 4H matmul.
	GatesSig *FrozenDense
	GatesG   *FrozenDense
}

// FreezeLSTM repacks a trained LSTM's gate weights for the fused kernel.
func FreezeLSTM(l *LSTM, quant bool) *InferLSTM {
	H := l.Hidden
	srcCols := l.In + H + 1
	dstCols := l.In + H
	w64 := make([]float64, 4*H*dstCols)
	bias64 := make([]float64, 4*H)
	// Trained gate order is [i; f; g; o]; the frozen stack wants
	// [i; f; o; g].
	for dstGate, srcGate := range [4]int{0, 1, 3, 2} {
		for j := 0; j < H; j++ {
			dst := dstGate*H + j
			src := l.W.W[(srcGate*H+j)*srcCols:]
			copy(w64[dst*dstCols:(dst+1)*dstCols], src[:dstCols])
			bias64[dst] = src[dstCols]
		}
	}
	return &InferLSTM{
		In: l.In, Hidden: H,
		AH: float32(l.AH), AC: float32(l.AC), Noise: l.NoiseActive,
		Gates:    newFrozenDense(w64, 4*H, dstCols, bias64, quant),
		GatesSig: newFrozenDense(w64[:3*H*dstCols], 3*H, dstCols, bias64[:3*H], quant),
		GatesG:   newFrozenDense(w64[3*H*dstCols:], H, dstCols, bias64[3*H:], quant),
	}
}

// InferLSTMState is one job's recurrent state plus step scratch for an
// InferLSTM. The weights stay in the shared InferLSTM; states are cheap
// and pooled by the caller. H aliases the tail of xh, so the recurrent
// input needs no copy per step: Step reads [x; h] directly. C and the
// activation scratch carry zero padding out to the kernel lane width,
// which is what lets every activation pass in Step run as a full-width
// vector call with no scalar tail.
type InferLSTMState struct {
	H, C []float32
	cp   []float32 // C's padded backing (cp[:Hidden] == C, rest zero)
	tc   []float32 // tanh(C) scratch, padded
	gt   []float32 // tanh(g-gate) scratch, padded
	xh   []float32 // packed [x; h] GEMV input; callers write x into Input()
	z    []float32 // gate pre-activations, padded (see Step's layout note)
	xq   []int8    // int8 backend activation scratch
}

// NewState allocates a zeroed state sized for this LSTM.
func (l *InferLSTM) NewState() *InferLSTMState {
	H := l.Hidden
	xh := make([]float32, l.In+H)
	cp := make([]float32, pad8(H))
	// z holds the [i; f; o] block rounded up to full lanes, then the g
	// block with its own lane padding: the sigmoid pass may scribble on
	// [3H : pad8(3H)) and the g-gate read may run to 3H+pad8(H), so the
	// two regions must not share lanes with anything live.
	return &InferLSTMState{
		H:  xh[l.In : l.In+H : l.In+H],
		C:  cp[:H:H],
		cp: cp,
		tc: make([]float32, pad8(H)),
		gt: make([]float32, pad8(H)),
		xh: xh,
		z:  make([]float32, pad8(3*H)+pad8(H)),
		xq: make([]int8, l.In+H),
	}
}

// Reset zeroes the recurrent state (start of a new batch).
func (l *InferLSTM) Reset(st *InferLSTMState) {
	for i := range st.H {
		st.H[i] = 0
		st.C[i] = 0
	}
}

// Input returns the slice the caller fills with the step input before
// Step — writing in place avoids a copy per step.
func (st *InferLSTMState) Input(in int) []float32 { return st.xh[:in] }

// Step advances one timestep: one fused GEMV for all four gates, the
// vectorized gate activations (one sigmoid pass over [i; f; o], one tanh
// pass over g, one over the updated cell), the cell update, and (when
// enabled) the stochastic h/c modulation, mirroring LSTM.Step's float64
// semantics in float32. The returned slice aliases st.H and is valid
// until the next Step or Reset on the same state.
func (l *InferLSTM) Step(st *InferLSTMState, rng *rand.Rand) []float32 {
	l.Gates.Apply(st.xh, st.z, st.xq) // st.H aliases xh[In:], so xh is [x; h]
	H := l.Hidden
	zi, zf, zo := st.z[:H], st.z[H:2*H], st.z[2*H:3*H]
	// Every activation pass below runs on full 8-lane blocks — the
	// padded regions of z, cp, tc, and gt absorb the overhang, so no
	// scalar tail runs even when H is not a multiple of 8. Order
	// matters: tanh consumes the g block before the sigmoid pass
	// scribbles on [3H : pad8(3H)).
	TanhVecF32(st.gt, st.z[3*H:3*H+len(st.gt)])
	SigmoidVecF32(st.z[:pad8(3*H)])
	C := st.C
	for j := 0; j < H; j++ {
		C[j] = zf[j]*C[j] + zi[j]*st.gt[j]
	}
	TanhVecF32(st.tc, st.cp)
	for j := 0; j < H; j++ {
		st.H[j] = zo[j] * st.tc[j]
	}
	if l.Noise && (l.AH > 0 || l.AC > 0) {
		ModulateF32(st.H, l.AH, rng)
		ModulateF32(st.C, l.AC, rng)
	}
	return st.H
}

// InferLSTMBatchState holds the recurrent state and step scratch for nb
// lockstep generation lanes over one shared InferLSTM. Every per-lane
// buffer of InferLSTMState becomes a strided plane here — lane b's slice
// starts at b×stride — so StepBatch can hand whole planes to the batched
// matmul and run each gate activation as a single vector call across all
// lanes, instead of nb short calls that each pay the kernel's setup cost.
type InferLSTMBatchState struct {
	nb, in, hid int
	sx, ph, ps  int       // lane strides: xh, pad8(H), pad8(3H)
	xh          []float32 // [nb][In+H] packed [x; h]; H(b) aliases the tail
	cp          []float32 // [nb][pad8(H)] cell state, pad rows stay zero
	tc          []float32 // [nb][pad8(H)] tanh(C) scratch
	gt          []float32 // [nb][pad8(H)] tanh(g) scratch
	zsig        []float32 // [nb][pad8(3H)] [i; f; o] pre-activations
	zg          []float32 // [nb][pad8(H)] g pre-activations
	sc          BatchScratch
}

// NewBatchState allocates a zeroed nb-lane batch state for this LSTM.
func (l *InferLSTM) NewBatchState(nb int) *InferLSTMBatchState {
	H := l.Hidden
	st := &InferLSTMBatchState{
		nb: nb, in: l.In, hid: H,
		sx: l.In + H, ph: pad8(H), ps: pad8(3 * H),
	}
	st.xh = make([]float32, nb*st.sx)
	st.cp = make([]float32, nb*st.ph)
	st.tc = make([]float32, nb*st.ph)
	st.gt = make([]float32, nb*st.ph)
	st.zsig = make([]float32, nb*st.ps)
	st.zg = make([]float32, nb*st.ph)
	return st
}

// Lanes reports the state's capacity in lanes.
func (st *InferLSTMBatchState) Lanes() int { return st.nb }

// Input returns lane b's step-input slice (written in place, like
// InferLSTMState.Input).
func (st *InferLSTMBatchState) Input(b int) []float32 {
	return st.xh[b*st.sx : b*st.sx+st.in]
}

// H returns lane b's hidden state (aliases the tail of the lane's xh).
func (st *InferLSTMBatchState) H(b int) []float32 {
	o := b*st.sx + st.in
	return st.xh[o : o+st.hid : o+st.hid]
}

// HPlane returns the packed hidden-state plane and its lane stride (lane
// b's H starts at b*stride), shaped for feeding a downstream
// FrozenDense.ApplyBatch without copying.
func (st *InferLSTMBatchState) HPlane() ([]float32, int) {
	return st.xh[st.in:], st.sx
}

// C returns lane b's cell state.
func (st *InferLSTMBatchState) C(b int) []float32 {
	o := b * st.ph
	return st.cp[o : o+st.hid : o+st.hid]
}

// ResetLane zeroes one lane's recurrent state for reuse by a new job.
func (st *InferLSTMBatchState) ResetLane(b int) {
	h, c := st.H(b), st.C(b)
	for i := range h {
		h[i] = 0
		c[i] = 0
	}
}

// StepBatch advances nb lanes one timestep in lockstep: two batched
// matmuls (the [i; f; o] sigmoid block and the g tanh block, each
// streaming the weights once for the whole batch), one vectorized tanh /
// sigmoid pass per activation over the full multi-lane plane, then the
// per-lane cell/hidden updates and stochastic modulation. active[b]
// false freezes lane b: its gate pre-activations are still computed (the
// GEMM is cheaper run dense than masked, and the results are simply
// never read) but its C/H stay untouched and its rng draws nothing, so a
// retired lane's state and RNG schedule are exactly as its last real
// step left them. active == nil means all lanes live. Each live lane's
// H/C after the call are bit-identical to a sequential Step with the
// same inputs, state, and rng.
func (l *InferLSTM) StepBatch(st *InferLSTMBatchState, nb int, active []bool, rngs []*rand.Rand) {
	if nb > st.nb {
		panic("nn: StepBatch lane count exceeds state capacity")
	}
	H := l.Hidden
	l.GatesSig.ApplyBatch(st.xh, st.sx, st.zsig, st.ps, nb, &st.sc)
	l.GatesG.ApplyBatch(st.xh, st.sx, st.zg, st.ph, nb, &st.sc)
	// One activation call per plane. Pad lanes hold matmul zeros (f32) or
	// stale scratch; the activations write dead values there that nothing
	// reads — same contract as the sequential path's padded z regions.
	TanhVecF32(st.gt[:nb*st.ph], st.zg[:nb*st.ph])
	SigmoidVecF32(st.zsig[:nb*st.ps])
	for b := 0; b < nb; b++ {
		if active != nil && !active[b] {
			continue
		}
		z := st.zsig[b*st.ps:]
		zi, zf := z[:H], z[H:2*H]
		gt := st.gt[b*st.ph:]
		C := st.C(b)
		for j := 0; j < H; j++ {
			C[j] = zf[j]*C[j] + zi[j]*gt[j]
		}
	}
	TanhVecF32(st.tc[:nb*st.ph], st.cp[:nb*st.ph])
	for b := 0; b < nb; b++ {
		if active != nil && !active[b] {
			continue
		}
		zo := st.zsig[b*st.ps+2*H : b*st.ps+3*H]
		tc := st.tc[b*st.ph:]
		h := st.H(b)
		for j := 0; j < H; j++ {
			h[j] = zo[j] * tc[j]
		}
		if l.Noise && (l.AH > 0 || l.AC > 0) {
			ModulateF32(h, l.AH, rngs[b])
			ModulateF32(st.C(b), l.AC, rngs[b])
		}
	}
}

// ModulateF32 is the float32 mirror of LSTM.modulate (paper §A.2): add
// centred uniform noise scaled by the vector's mean |v|, then renormalize
// by the absolute-mass ratio clamped to [0.5, 2]. It consumes exactly
// len(v) rng.Float64 draws, matching the float64 path's RNG schedule —
// the per-precision determinism contract cares about draw counts, not
// arithmetic width.
func ModulateF32(v []float32, a float32, rng *rand.Rand) {
	if a <= 0 {
		return
	}
	// The mean pass and the old sumBefore accumulation were the same
	// operand sequence, so one pass serves both. abs32 feeds the adds the
	// bit-identical operand the old sign branches did (sum + (-x) for
	// x < 0, x unchanged otherwise, -0.0 included), keeping this function
	// byte-for-byte equal to its branchy predecessor.
	sumBefore := float32(0)
	for _, x := range v {
		sumBefore += abs32(x)
	}
	mean := sumBefore / float32(len(v))
	sumAfter := float32(0)
	for i, x := range v {
		n := float32(rng.Float64()-0.5) * mean
		nv := x + a*n
		v[i] = nv
		sumAfter += abs32(nv)
	}
	scale := float32(1)
	if sumAfter > 1e-12 {
		scale = sumBefore / sumAfter
	}
	if scale < 0.5 {
		scale = 0.5
	} else if scale > 2 {
		scale = 2
	}
	for i := range v {
		v[i] *= scale
	}
}

// abs32 clears the sign bit: |x| without a branch, exact for -0.0.
func abs32(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}
