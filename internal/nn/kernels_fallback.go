//go:build !amd64

package nn

// Non-amd64 builds always take the portable Go kernels; the stubs below
// are never reached (every call site is guarded by useAVX).

var useAVX = false

func gemvColAsm(wt, x, bias, y *float32, rowsBytes, cols int64) {
	panic("nn: gemvColAsm without AVX support")
}

func gemmCol4Asm(wt, x, bias, y *float32, rowsBytes, cols, xStrideBytes, yStrideBytes int64) {
	panic("nn: gemmCol4Asm without AVX support")
}

func vsigAsm(dst, src *float32, n int64, negScale, a, b float32) {
	panic("nn: vsigAsm without AVX support")
}
