package nn

import (
	"math"
	"math/rand"
)

// Buffer ownership for the pooled layers below: Forward returns a pooled
// output vector that stays valid until the matching Backward (or
// ClearCache) consumes it; Backward returns a pooled gradient vector that
// stays valid until the next Forward on the same layer reclaims it. Inputs
// passed to Forward are cached by reference and must stay unchanged until
// the matching Backward. Layers are not safe for concurrent use — the
// data-parallel trainer clones the whole model per worker instead.

// slicePool recycles fixed-length rows through a grab/release cycle. Every
// pooled layer shares this one discipline: grab hands out a row (recycled
// when one of the right length is free, freshly allocated otherwise) and
// records it as outstanding; releaseLast recycles the most recently
// grabbed row (the layer caches are LIFO, so the matching consumer is
// always the latest row); releaseAll recycles everything outstanding.
// Rows of a stale length are dropped on the floor for the GC.
type slicePool[E any] struct {
	free, used [][]E
}

// grab returns a row of length n and records it as outstanding.
func (p *slicePool[E]) grab(n int) []E {
	for m := len(p.free); m > 0; m = len(p.free) {
		buf := p.free[m-1]
		p.free = p.free[:m-1]
		if len(buf) == n {
			p.used = append(p.used, buf)
			return buf
		}
	}
	buf := make([]E, n)
	p.used = append(p.used, buf)
	return buf
}

// releaseLast recycles the most recently grabbed outstanding row.
func (p *slicePool[E]) releaseLast() {
	if m := len(p.used); m > 0 {
		p.free = append(p.free, p.used[m-1])
		p.used = p.used[:m-1]
	}
}

// releaseAll recycles every outstanding row.
func (p *slicePool[E]) releaseAll() {
	p.free = append(p.free, p.used...)
	p.used = p.used[:0]
}

// Linear is a fully connected layer y = W x + b.
type Linear struct {
	In, Out int
	W, B    *Param

	cache [][]float64 // stack of cached inputs

	out slicePool[float64] // pooled forward outputs
	dx  slicePool[float64] // pooled backward input-gradients
}

// NewLinear allocates a Glorot-initialized fully connected layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		In: in, Out: out,
		W: NewParam(in*out, XavierScale(in, out), rng),
		B: NewParam(out, 0, rng),
	}
}

// Clone returns a Linear with deep-copied parameters and empty caches.
func (l *Linear) Clone() *Linear {
	return &Linear{In: l.In, Out: l.Out, W: l.W.Clone(), B: l.B.Clone()}
}

// Forward implements Layer.
func (l *Linear) Forward(x []float64) []float64 {
	if len(x) != l.In {
		panic("nn: Linear input dimension mismatch")
	}
	// Gradient rows issued by the previous backward pass are dead now.
	l.dx.releaseAll()
	y := l.out.grab(l.Out)
	for o := 0; o < l.Out; o++ {
		s := l.B.W[o]
		row := l.W.W[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	l.cache = append(l.cache, x)
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(dy []float64) []float64 {
	x := l.pop()
	dx := l.dx.grab(l.In)
	for i := range dx {
		dx[i] = 0
	}
	for o := 0; o < l.Out; o++ {
		g := dy[o]
		l.B.G[o] += g
		row := l.W.W[o*l.In : (o+1)*l.In]
		grow := l.W.G[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			grow[i] += g * xi
			dx[i] += g * row[i]
		}
	}
	return dx
}

func (l *Linear) pop() []float64 {
	n := len(l.cache)
	if n == 0 {
		panic("nn: Backward without matching Forward")
	}
	x := l.cache[n-1]
	l.cache = l.cache[:n-1]
	// The pooled output for this Forward is consumed; recycle it.
	l.out.releaseLast()
	return x
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ClearCache implements Layer.
func (l *Linear) ClearCache() {
	l.cache = l.cache[:0]
	l.out.releaseAll()
	l.dx.releaseAll()
}

// LeakyReLU is the elementwise activation max(x, alpha*x).
type LeakyReLU struct {
	Alpha float64
	cache [][]float64

	out slicePool[float64]
	dx  slicePool[float64]
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Clone returns a LeakyReLU with the same slope and empty caches.
func (l *LeakyReLU) Clone() *LeakyReLU { return NewLeakyReLU(l.Alpha) }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x []float64) []float64 {
	l.dx.releaseAll()
	y := l.out.grab(len(x))
	for i, v := range x {
		if v >= 0 {
			y[i] = v
		} else {
			y[i] = l.Alpha * v
		}
	}
	l.cache = append(l.cache, x)
	return y
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(dy []float64) []float64 {
	n := len(l.cache)
	x := l.cache[n-1]
	l.cache = l.cache[:n-1]
	l.out.releaseLast()
	dx := l.dx.grab(len(dy))
	for i, v := range x {
		if v >= 0 {
			dx[i] = dy[i]
		} else {
			dx[i] = l.Alpha * dy[i]
		}
	}
	return dx
}

// Params implements Layer.
func (l *LeakyReLU) Params() []*Param { return nil }

// ClearCache implements Layer.
func (l *LeakyReLU) ClearCache() {
	l.cache = l.cache[:0]
	l.out.releaseAll()
	l.dx.releaseAll()
}

// Dropout zeroes each input with probability P during training, scaling
// survivors by 1/(1-P). With Active=false it is the identity. Keeping it
// active at generation time implements MC dropout, which GenDT uses for
// its model-uncertainty measure (paper §6.2.1).
type Dropout struct {
	P      float64
	Active bool
	rng    *rand.Rand
	cache  [][]bool // grabbed masks, LIFO (aliases mask.used)

	mask slicePool[bool]
	out  slicePool[float64]
	dx   slicePool[float64]
}

// NewDropout returns an active dropout layer with its own RNG stream.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, Active: true, rng: rng}
}

// Clone returns a Dropout with the same rate and activity, drawing masks
// from rng.
func (d *Dropout) Clone(rng *rand.Rand) *Dropout {
	return &Dropout{P: d.P, Active: d.Active, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x []float64) []float64 {
	d.dx.releaseAll()
	y := d.out.grab(len(x))
	mask := d.mask.grab(len(x))
	if !d.Active || d.P <= 0 {
		copy(y, x)
		for i := range mask {
			mask[i] = true
		}
		d.cache = append(d.cache, mask)
		return y
	}
	keep := 1 - d.P
	for i, v := range x {
		if d.rng.Float64() < keep {
			mask[i] = true
			y[i] = v / keep
		} else {
			mask[i] = false
			y[i] = 0
		}
	}
	d.cache = append(d.cache, mask)
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(dy []float64) []float64 {
	n := len(d.cache)
	mask := d.cache[n-1]
	d.cache = d.cache[:n-1]
	d.mask.releaseLast()
	d.out.releaseLast()
	dx := d.dx.grab(len(dy))
	keep := 1 - d.P
	for i := range dy {
		if mask[i] {
			if d.Active && d.P > 0 {
				dx[i] = dy[i] / keep
			} else {
				dx[i] = dy[i]
			}
		} else {
			dx[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// ClearCache implements Layer.
func (d *Dropout) ClearCache() {
	d.cache = d.cache[:0]
	d.mask.releaseAll()
	d.out.releaseAll()
	d.dx.releaseAll()
}

// MLP is a sequential stack of layers sharing the Layer cache discipline.
type MLP struct {
	Layers []Layer
}

// NewMLP builds a fully connected net with LeakyReLU activations between
// the given layer sizes, e.g. sizes=[26, 64, 64, 4].
func NewMLP(sizes []int, alpha float64, rng *rand.Rand) *MLP {
	m := &MLP{}
	for i := 0; i < len(sizes)-1; i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
		if i < len(sizes)-2 {
			m.Layers = append(m.Layers, NewLeakyReLU(alpha))
		}
	}
	return m
}

// Clone returns an MLP whose layers are deep copies; stochastic layers
// draw from rng. It panics on layer types it does not know how to copy.
func (m *MLP) Clone(rng *rand.Rand) *MLP {
	c := &MLP{Layers: make([]Layer, len(m.Layers))}
	for i, l := range m.Layers {
		switch t := l.(type) {
		case *Linear:
			c.Layers[i] = t.Clone()
		case *LeakyReLU:
			c.Layers[i] = t.Clone()
		case *Dropout:
			c.Layers[i] = t.Clone(rng)
		case *MLP:
			c.Layers[i] = t.Clone(rng)
		default:
			panic("nn: MLP.Clone: unsupported layer type")
		}
	}
	return c
}

// Forward implements Layer.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (m *MLP) Backward(dy []float64) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
	return dy
}

// Params implements Layer.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ClearCache implements Layer.
func (m *MLP) ClearCache() {
	for _, l := range m.Layers {
		l.ClearCache()
	}
}

// Sigmoid returns 1/(1+e^-x), numerically stabilized.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Tanh is math.Tanh, re-exported for symmetry.
func Tanh(x float64) float64 { return math.Tanh(x) }
