package nn

import (
	"math"
	"math/rand"
)

// LSTM is a single-layer LSTM with full backpropagation through time and
// optional stochastic h/c noise layers per the paper's §A.2. The usage
// pattern is:
//
//	lstm.ResetState()
//	for t := range seq { h[t] = lstm.Step(seq[t]) }
//	dX := lstm.BackwardSeq(dH) // dH[t] is the gradient on h[t]
//
// Step caches everything BackwardSeq needs; BackwardSeq consumes the whole
// cached sequence and clears it. Hidden state persists across Step calls
// until ResetState, which lets callers carry long-term state across
// batches (GenDT's batch generation).
//
// Buffer ownership: all step caches and returned vectors come from
// per-instance free lists, so steady-state training does no per-step
// allocation. The vector returned by Step is valid until the steps that
// produced it are consumed (BackwardSeq/BackwardSteps on them, or
// ClearCache); the rows returned by BackwardSeq are valid until the next
// BackwardSeq/BackwardSteps call on the same instance. Callers that need
// longer lifetimes must copy. An LSTM is not safe for concurrent use; the
// data-parallel trainer gives each worker its own Clone.
type LSTM struct {
	In, Hidden int

	// Gate parameters, stacked [input; forget; cell; output]:
	// each gate has Hidden rows of (In + Hidden + 1) columns (x, h, bias).
	W *Param

	// Stochastic layer intensities (paper §A.2): 0 disables. Noise is
	// uniform in [0, mean(h_t)] (resp. mean(c_t)) scaled by AH (AC) and
	// renormalized to preserve the total hidden mass.
	AH, AC float64
	// NoiseActive toggles the stochastic layers (on for GenDT training and
	// generation, off for deterministic baselines).
	NoiseActive bool

	rng *rand.Rand

	h, c  []float64
	steps []*lstmStep

	free []*lstmStep // recycled step caches

	// BackwardSeq scratch: two (dh, dc) buffer pairs swapped per timestep,
	// plus pooled dx rows handed to the caller.
	sDh, sDc         []float64
	sDhPrev, sDcPrev []float64
	dx               slicePool[float64]
}

type lstmStep struct {
	x          []float64 // copy of the step input
	hPrev      []float64 // post-noise h from previous step (input to gates)
	cPrev      []float64
	i, f, g, o []float64
	c, h       []float64 // pre-noise outputs of this step
	hOut, cOut []float64 // post-noise outputs (returned to the caller)
	hScale     float64   // stochastic renormalization factors (1 when off)
	cScale     float64
}

// NewLSTM allocates an LSTM. rng drives both weight init and the
// stochastic layers.
func NewLSTM(in, hidden int, rng *rand.Rand) *LSTM {
	cols := in + hidden + 1
	l := &LSTM{
		In: in, Hidden: hidden,
		W:   NewParam(4*hidden*cols, XavierScale(in+hidden, hidden), rng),
		rng: rng,
	}
	// Initialize forget-gate biases positive so memories persist early in
	// training (standard practice).
	for j := 0; j < hidden; j++ {
		l.W.W[l.bIdx(1, j)] = 1
	}
	l.ResetState()
	return l
}

// Clone returns an LSTM with deep-copied parameters and zeroed recurrent
// state, drawing its stochastic noise from rng. Caches and free lists are
// not shared, so the clone can run concurrently with the original.
func (l *LSTM) Clone(rng *rand.Rand) *LSTM {
	c := &LSTM{
		In: l.In, Hidden: l.Hidden,
		W:  l.W.Clone(),
		AH: l.AH, AC: l.AC, NoiseActive: l.NoiseActive,
		rng: rng,
	}
	c.ResetState()
	return c
}

// index helpers: gate in {0:i, 1:f, 2:g, 3:o}.
func (l *LSTM) rowBase(gate, j int) int { return ((gate * l.Hidden) + j) * (l.In + l.Hidden + 1) }
func (l *LSTM) bIdx(gate, j int) int    { return l.rowBase(gate, j) + l.In + l.Hidden }

// ResetState zeroes the recurrent state (start of a new sequence).
func (l *LSTM) ResetState() {
	if l.h == nil {
		l.h = make([]float64, l.Hidden)
		l.c = make([]float64, l.Hidden)
		return
	}
	for i := range l.h {
		l.h[i] = 0
		l.c[i] = 0
	}
}

// State returns copies of the current hidden state and memory.
func (l *LSTM) State() (h, c []float64) {
	return append([]float64(nil), l.h...), append([]float64(nil), l.c...)
}

// SetState overwrites the recurrent state (e.g. to carry state across
// generation batches).
func (l *LSTM) SetState(h, c []float64) {
	copy(l.h, h)
	copy(l.c, c)
}

// getStep pops a recycled step cache or allocates a fresh one.
func (l *LSTM) getStep() *lstmStep {
	if n := len(l.free); n > 0 {
		st := l.free[n-1]
		l.free = l.free[:n-1]
		return st
	}
	H := l.Hidden
	return &lstmStep{
		x:     make([]float64, l.In),
		hPrev: make([]float64, H), cPrev: make([]float64, H),
		i: make([]float64, H), f: make([]float64, H),
		g: make([]float64, H), o: make([]float64, H),
		c: make([]float64, H), h: make([]float64, H),
		hOut: make([]float64, H), cOut: make([]float64, H),
	}
}

// recycleSteps returns the cached steps to the free list.
func (l *LSTM) recycleSteps() {
	l.free = append(l.free, l.steps...)
	l.steps = l.steps[:0]
}

// Step advances one timestep and returns the (possibly noise-modulated)
// hidden state. The input is copied; the returned vector stays valid until
// the step cache is consumed (see the type docs).
func (l *LSTM) Step(x []float64) []float64 {
	if len(x) != l.In {
		panic("nn: LSTM input dimension mismatch")
	}
	st := l.getStep()
	copy(st.x, x)
	copy(st.hPrev, l.h)
	copy(st.cPrev, l.c)
	st.hScale, st.cScale = 1, 1
	cols := l.In + l.Hidden + 1
	for j := 0; j < l.Hidden; j++ {
		var z [4]float64
		for gate := 0; gate < 4; gate++ {
			base := ((gate * l.Hidden) + j) * cols
			s := l.W.W[base+l.In+l.Hidden] // bias
			row := l.W.W[base : base+l.In+l.Hidden]
			for k, xv := range x {
				s += row[k] * xv
			}
			for k, hv := range st.hPrev {
				s += row[l.In+k] * hv
			}
			z[gate] = s
		}
		st.i[j] = Sigmoid(z[0])
		st.f[j] = Sigmoid(z[1])
		st.g[j] = math.Tanh(z[2])
		st.o[j] = Sigmoid(z[3])
		st.c[j] = st.f[j]*st.cPrev[j] + st.i[j]*st.g[j]
		st.h[j] = st.o[j] * math.Tanh(st.c[j])
	}

	copy(st.hOut, st.h)
	copy(st.cOut, st.c)
	if l.NoiseActive && (l.AH > 0 || l.AC > 0) {
		st.hScale = l.modulate(st.hOut, l.AH)
		st.cScale = l.modulate(st.cOut, l.AC)
	}
	copy(l.h, st.hOut)
	copy(l.c, st.cOut)
	l.steps = append(l.steps, st)
	return st.hOut
}

// modulate applies the paper's §A.2 noise in place: v' = (v + a*n) *
// S(v)/S(v+a*n) with n_i ~ U[0, mean(|v|)], renormalizing so the vector's
// total mass is preserved. The paper normalizes by the signed sum; with
// tanh-activated hidden states the signed sum can cancel to near zero and
// make the scale explode, so we normalize by the absolute mass and cap the
// scale to [0.5, 2] — same intent (mass-preserving noise), numerically
// stable. The zero-mean noise is achieved by centring n around mean/2. It
// returns the effective linear scale used for the (approximate) backward
// pass.
func (l *LSTM) modulate(v []float64, a float64) float64 {
	if a <= 0 {
		return 1
	}
	mean := 0.0
	for _, x := range v {
		mean += math.Abs(x)
	}
	mean /= float64(len(v))
	sumBefore, sumAfter := 0.0, 0.0
	for i, x := range v {
		n := (l.rng.Float64() - 0.5) * mean // centred U[-mean/2, mean/2]
		nv := x + a*n
		v[i] = nv
		sumBefore += math.Abs(x)
		sumAfter += math.Abs(nv)
	}
	scale := 1.0
	if sumAfter > 1e-12 {
		scale = sumBefore / sumAfter
	}
	if scale < 0.5 {
		scale = 0.5
	} else if scale > 2 {
		scale = 2
	}
	for i := range v {
		v[i] *= scale
	}
	return scale
}

// StepCache is an opaque detached sequence of cached LSTM steps, produced
// by TakeSteps and consumed by BackwardSteps.
type StepCache []*lstmStep

// Len returns the number of steps in the cache.
func (s StepCache) Len() int { return len(s) }

// TakeSteps detaches and returns the cached steps of the sequence that was
// just run, leaving the cache empty. This supports weight sharing across
// multiple independent sequences (e.g. the GNN-node network applied to each
// visible cell): run each sequence, TakeSteps after each, then call
// BackwardSteps once per detached sequence; gradients accumulate.
func (l *LSTM) TakeSteps() StepCache {
	s := l.steps
	l.steps = nil
	return s
}

// BackwardSteps backpropagates through a detached step sequence from
// TakeSteps, recycling its caches. See BackwardSeq for the gradient
// conventions.
func (l *LSTM) BackwardSteps(steps StepCache, dH [][]float64) [][]float64 {
	saved := l.steps
	l.steps = steps
	dX := l.BackwardSeq(dH)
	l.steps = saved
	return dX
}

// getDx pops a recycled input-gradient row (zeroed) or allocates one, and
// records it as issued to the caller.
func (l *LSTM) getDx() []float64 {
	dx := l.dx.grab(l.In)
	for i := range dx {
		dx[i] = 0
	}
	return dx
}

// BackwardSeq backpropagates through all cached steps. dH[t] is the
// gradient w.r.t. the hidden output of step t (len(dH) must equal the
// number of cached steps). It returns gradients w.r.t. the step inputs and
// clears the cache. The returned rows are pooled: they stay valid until the
// next BackwardSeq/BackwardSteps call on this instance. The stochastic
// layers are treated as a fixed linear scaling during the backward pass
// (noise and renormalization factor held constant), the same
// straight-through approximation used when training with injected noise.
func (l *LSTM) BackwardSeq(dH [][]float64) [][]float64 {
	n := len(l.steps)
	if len(dH) != n {
		panic("nn: BackwardSeq gradient count mismatch")
	}
	// Rows issued by the previous backward pass are dead now; reclaim them.
	l.dx.releaseAll()
	if l.sDh == nil {
		l.sDh = make([]float64, l.Hidden)
		l.sDc = make([]float64, l.Hidden)
		l.sDhPrev = make([]float64, l.Hidden)
		l.sDcPrev = make([]float64, l.Hidden)
	}
	cols := l.In + l.Hidden + 1
	dX := make([][]float64, n)
	dhNext, dcNext := l.sDh, l.sDc // gradient flowing into h_t from t+1
	dhPrev, dcPrev := l.sDhPrev, l.sDcPrev
	for j := range dhNext {
		dhNext[j] = 0
		dcNext[j] = 0
	}
	for t := n - 1; t >= 0; t-- {
		st := l.steps[t]
		for j := 0; j < l.Hidden; j++ {
			// Output gradient plus recurrent gradient; both arrived at the
			// post-noise h, so scale back through the modulation.
			dhNext[j] = (dH[t][j] + dhNext[j]) * st.hScale
			dcNext[j] = dcNext[j] * st.cScale
			dhPrev[j] = 0
			dcPrev[j] = 0
		}
		dx := l.getDx()
		for j := 0; j < l.Hidden; j++ {
			tanhC := math.Tanh(st.c[j])
			do := dhNext[j] * tanhC
			dcTotal := dcNext[j] + dhNext[j]*st.o[j]*(1-tanhC*tanhC)
			di := dcTotal * st.g[j]
			dg := dcTotal * st.i[j]
			df := dcTotal * st.cPrev[j]
			dcPrev[j] = dcTotal * st.f[j]

			dzi := di * st.i[j] * (1 - st.i[j])
			dzf := df * st.f[j] * (1 - st.f[j])
			dzg := dg * (1 - st.g[j]*st.g[j])
			dzo := do * st.o[j] * (1 - st.o[j])
			dz := [4]float64{dzi, dzf, dzg, dzo}
			for gate := 0; gate < 4; gate++ {
				base := ((gate * l.Hidden) + j) * cols
				row := l.W.W[base : base+l.In+l.Hidden]
				grow := l.W.G[base : base+l.In+l.Hidden]
				gz := dz[gate]
				for k, xv := range st.x {
					grow[k] += gz * xv
					dx[k] += gz * row[k]
				}
				for k, hv := range st.hPrev {
					grow[l.In+k] += gz * hv
					dhPrev[k] += gz * row[l.In+k]
				}
				l.W.G[base+l.In+l.Hidden] += gz
			}
		}
		dX[t] = dx
		dhNext, dhPrev = dhPrev, dhNext
		dcNext, dcPrev = dcPrev, dcNext
	}
	l.sDh, l.sDhPrev = dhNext, dhPrev
	l.sDc, l.sDcPrev = dcNext, dcPrev
	l.recycleSteps()
	return dX
}

// StepCount returns the number of cached (un-backpropagated) steps.
func (l *LSTM) StepCount() int { return len(l.steps) }

// Params implements the parameter-holder convention.
func (l *LSTM) Params() []*Param { return []*Param{l.W} }

// ClearCache recycles cached steps without backpropagating (generation
// mode). Vectors previously returned by Step become invalid.
func (l *LSTM) ClearCache() { l.recycleSteps() }
