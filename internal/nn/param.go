// Package nn is a small, dependency-free neural-network library sufficient
// to implement GenDT and its baselines: fully connected layers, LeakyReLU,
// dropout (with MC-dropout support), an LSTM with full backpropagation
// through time, the paper's stochastic h/c noise layers (§A.2), Gaussian
// reparameterized sampling, MSE and GAN losses, and the Adam optimizer.
//
// Layers cache their forward activations on an internal stack; Backward
// calls must mirror Forward calls in reverse order (last-in, first-out),
// which supports weight sharing across timesteps and graph nodes (the
// GNN-node network applies one network to every cell at every timestep).
package nn

import (
	"math"
	"math/rand"
)

// Param is one learnable tensor with its gradient and Adam moments.
type Param struct {
	W []float64 // weights
	G []float64 // accumulated gradient
	M []float64 // Adam first moment
	V []float64 // Adam second moment
}

// NewParam allocates a parameter of n weights initialized uniformly in
// [-scale, scale].
func NewParam(n int, scale float64, rng *rand.Rand) *Param {
	p := &Param{
		W: make([]float64, n),
		G: make([]float64, n),
		M: make([]float64, n),
		V: make([]float64, n),
	}
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * scale
	}
	return p
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Clone returns a deep copy of the parameter (weights, gradient, and Adam
// moments), sharing no storage with the original. It is the building block
// of model replication for data-parallel training.
func (p *Param) Clone() *Param {
	return &Param{
		W: append([]float64(nil), p.W...),
		G: append([]float64(nil), p.G...),
		M: append([]float64(nil), p.M...),
		V: append([]float64(nil), p.V...),
	}
}

// XavierScale returns the Glorot-uniform initialization scale for a layer
// with the given fan-in and fan-out.
func XavierScale(fanIn, fanOut int) float64 {
	return math.Sqrt(6.0 / float64(fanIn+fanOut))
}

// Adam is the Adam optimizer.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Clone returns a copy of the optimizer, including its step counter.
// Per-parameter moments live on the Params themselves, so this is all the
// state an optimizer carries.
func (a *Adam) Clone() *Adam {
	cp := *a
	return &cp
}

// StepCount returns the number of Step calls applied so far. Together with
// the per-parameter moments it is the optimizer's entire state, so
// checkpointing persists it and SetStepCount restores it.
func (a *Adam) StepCount() int { return a.t }

// SetStepCount restores the step counter (bias-correction position) saved
// by a checkpoint.
func (a *Adam) SetStepCount(t int) { a.t = t }

// Step applies one Adam update to all params and zeroes their gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		for i := range p.W {
			g := p.G[i]
			p.M[i] = a.Beta1*p.M[i] + (1-a.Beta1)*g
			p.V[i] = a.Beta2*p.V[i] + (1-a.Beta2)*g*g
			mHat := p.M[i] / b1c
			vHat := p.V[i] / b2c
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
			p.G[i] = 0
		}
	}
}

// ClipGrads rescales the concatenated gradient of params to at most
// maxNorm (global norm clipping). It returns the pre-clip norm.
func ClipGrads(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.G {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		s := maxNorm / norm
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= s
			}
		}
	}
	return norm
}

// Layer is the interface shared by the trainable building blocks.
type Layer interface {
	// Forward consumes an input vector and returns the output, caching
	// whatever Backward will need.
	Forward(x []float64) []float64
	// Backward consumes the gradient w.r.t. the last un-consumed Forward
	// output and returns the gradient w.r.t. its input, accumulating
	// parameter gradients.
	Backward(dy []float64) []float64
	// Params returns the layer's learnable parameters.
	Params() []*Param
	// ClearCache drops any cached activations (e.g. between batches).
	ClearCache()
}
