package nn

// AVX2+FMA fast paths for the inference kernels. The assembly in
// kernels_amd64.s is only entered when the CPU (and the OS, via XCR0)
// supports AVX2, FMA, and YMM state; every other machine takes the
// portable Go kernels, which compute the same function. Within one
// process the dispatch decision is fixed at init, so the per-precision
// bit-exactness contract (same machine, same binary, same output) holds
// on both paths.

var useAVX = detectAVX()

// detectAVX mirrors the runtime's feature detection: AVX2 and FMA in
// CPUID, and OS-enabled XMM+YMM state via XGETBV (guarded by OSXSAVE,
// without which XGETBV would fault).
func detectAVX() bool {
	maxID, _, _, _ := cpuidRaw(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const need = 1<<27 | 1<<28 | 1<<12 // OSXSAVE | AVX | FMA
	if ecx1&need != need {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

//go:noescape
func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (lo, hi uint32)

// gemvColAsm computes y[0:rows] = bias[0:rows] + W·x on a column-major
// weight mirror: wt holds cols consecutive blocks of rowsBytes/4
// float32s (one block per input column), rowsBytes % 32 == 0, cols >= 1.
//
//go:noescape
func gemvColAsm(wt, x, bias, y *float32, rowsBytes, cols int64)

// gemmCol4Asm computes y_b = bias + W·x_b for exactly four input lanes
// over the same column-major weight mirror gemvColAsm uses, loading each
// weight tile once per column and FMAing it against four broadcast x
// elements. Lane b reads x + b·xStrideBytes and writes y + b·yStrideBytes.
// Per lane the per-element operation sequence (bias init, one FMA per
// ascending column) is identical to gemvColAsm, so the two kernels are
// bit-identical per lane.
//
//go:noescape
func gemmCol4Asm(wt, x, bias, y *float32, rowsBytes, cols, xStrideBytes, yStrideBytes int64)

// vsigAsm computes dst[i] = a/(1+e^t)+b with t = clamp(negScale·src[i],
// ±87) for i < n, n % 8 == 0, n >= 8 — the shared core of the
// vectorized sigmoid (negScale,a,b = -1,1,0) and tanh (-2,2,-1).
//
//go:noescape
func vsigAsm(dst, src *float32, n int64, negScale, a, b float32)
