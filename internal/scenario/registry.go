package scenario

import (
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"

	"gendt/scenarios"
)

var (
	regMu    sync.RWMutex
	registry = map[string]*Scenario{} // lower-cased name -> scenario
)

// Register adds a scenario to the global registry. Names are matched
// case-insensitively; registering a name twice is an error.
func Register(sc *Scenario) error {
	key := strings.ToLower(sc.Name)
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := registry[key]; ok {
		return fmt.Errorf("scenario: %q already registered (as %q)", sc.Name, prev.Name)
	}
	registry[key] = sc
	return nil
}

// Replace registers a scenario, overwriting any previous registration of
// the same name — the path -scenario-file flags use, so a user config may
// deliberately shadow a builtin.
func Replace(sc *Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[strings.ToLower(sc.Name)] = sc
}

// Lookup resolves a scenario by name, case-insensitively.
func Lookup(name string) (*Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sc, ok := registry[strings.ToLower(name)]
	return sc, ok
}

// Names returns the canonical names of all registered scenarios, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for _, sc := range registry {
		out = append(out, sc.Name)
	}
	sort.Strings(out)
	return out
}

// RegisterFile loads a scenario config from disk and registers it,
// replacing any same-named scenario. It returns the loaded scenario so
// callers can report the resolved name.
func RegisterFile(path string) (*Scenario, error) {
	sc, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	Replace(sc)
	return sc, nil
}

// The committed scenario files under scenarios/ are registered at package
// load. A malformed committed file is a programming error caught by every
// test run, so init panics rather than limping along with a partial
// registry.
func init() {
	err := fs.WalkDir(scenarios.FS, ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".toml") {
			return err
		}
		data, err := fs.ReadFile(scenarios.FS, path)
		if err != nil {
			return err
		}
		sc, err := Load(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		return Register(sc)
	})
	if err != nil {
		panic("scenario: builtin registry: " + err.Error())
	}
}
