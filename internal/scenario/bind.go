package scenario

import (
	"fmt"
	"os"

	"gendt/internal/env"
	"gendt/internal/geo"
)

// Scenario is a bound, schema-validated scenario description — the
// compiler's input. Optional knobs carry presence flags where "absent"
// and "zero" must compile differently (an absent nudge offset must not
// emit a geo.Offset call at all, or the floats drift from the historical
// constructors).
type Scenario struct {
	// Name is the registry key (matched case-insensitively by Lookup) and
	// becomes the built Dataset's Name.
	Name  string
	Title string // free-form description, unused by the compiler

	Origin geo.Point
	// SeedOffset seeds the deployment generator rng at Seed+SeedOffset;
	// WorldSeedOffset sets World.WorldSeed = Seed+WorldSeedOffset.
	SeedOffset      int64
	WorldSeedOffset int64
	// IndexCellM is the deployment spatial-index bucket edge.
	IndexCellM float64

	World    WorldSpec
	Pathloss *PathlossSpec // nil = radio.DefaultPathloss
	Env      EnvSpec
	Centers  []CenterSpec
	Layouts  []LayoutSpec
	Measures []MeasureSpec
}

// WorldSpec overrides sim.DefaultWorld fields; only fields whose Set flag
// is true are applied, so a minimal config inherits every default.
type WorldSpec struct {
	VisibleRangeM       optFloat
	EnvRadiusM          optFloat
	NoiseFloorDBm       optFloat
	StaticShadowSigmaDB optFloat
	StaticShadowCorrM   optFloat
	ShadowSigmaDB       optFloat
	ShadowDecorrM       optFloat
	FadingSigmaDB       optFloat
	HysteresisDB        optFloat
	TimeToTrigger       optInt
	L3Alpha             optFloat
	LoadMean            optFloat
	LoadAlpha           optFloat
	LoadStd             optFloat
}

type optFloat struct {
	Set bool
	V   float64
}

type optInt struct {
	Set bool
	V   int
}

// PathlossSpec overrides the propagation model: reference loss/distance,
// the default exponent, and per-land-use exponents keyed by the attribute
// names of env.AttributeNames (exp_continuous_urban = 3.9, ...).
type PathlossSpec struct {
	RefLossDB  float64 // 0 = keep default
	RefDistM   float64
	DefaultExp float64
	// Exponents maps land-use class -> exponent for explicitly configured
	// classes only.
	Exponents map[uint8]float64
}

// EnvSpec parameterizes the procedural environment map.
type EnvSpec struct {
	ExtentKm       float64
	CellM          float64 // 0 = env default (250 m)
	CoreKm         float64 // single-core radius (ignored with CentersAsCores)
	PoIPerKm2      float64
	SeedOffset     int64
	CentersAsCores bool    // use every [[center]] as a dense core
	CoreRadiusKm   float64 // per-center core radius with CentersAsCores
}

// CenterSpec is one named anchor point, given as an offset from the
// scenario origin. Layouts and measures reference centers by index.
type CenterSpec struct {
	Bearing   float64
	DistanceM float64
}

// LayoutSpec is one deployment layout: a jittered sectorized grid or a
// highway-style corridor. Layouts draw from one shared rng in declaration
// order and receive consecutive cell IDs.
type LayoutSpec struct {
	Kind   string // "grid" or "corridor"
	Center int    // anchor: -1 = origin, else center index

	// Grid fields (cells.DeploymentSpec).
	ExtentKm      float64
	SitesPerKm2   float64
	Sectors       int
	Jitter        float64
	PMaxDBm       float64
	PMaxJitterDB  float64
	HeightM       float64
	BeamWidthDeg  float64
	PeakGainDBi   float64
	FrontToBackDB float64
	ReportErrM    float64
	ReportErrDB   float64

	// Corridor fields.
	HasAnchorOffset bool // emit geo.Offset(anchor, AnchorBearing, AnchorDistanceM)
	AnchorBearing   float64
	AnchorDistanceM float64
	Bearing         float64 // explicit corridor bearing...
	FromCenter      int     // ...or computed: Bearing(centers[From], centers[To])
	ToCenter        int
	LengthKm        float64
	SpacingM        float64
}

// MeasureSpec is one measurement scenario: a mobility profile, a sampling
// granularity, and a placement rule that lays Runs routes out so the
// first half (train split) and second half (test split) stay
// geographically disjoint.
type MeasureSpec struct {
	Name     string
	Profile  string // walk|bus|tram|citydrive|highway|custom|mixed
	Profile2 string // second profile for "mixed" (odd run indices)
	// Custom profile parameters (Profile == "custom", or the custom side
	// of "mixed" via profile = "custom").
	SpeedMean, SpeedStd, SpeedMin, SpeedMax, SpeedAlpha float64

	DurationS     float64 // total scenario duration at Scale=1, split over Runs
	IntervalS     float64 // sampling granularity
	TurnEveryS    float64
	TurnJitterDeg float64
	GridSnap      bool
	Runs          int

	RouteSeedBase int64 // route rng = Seed + RouteSeedBase + runIndex
	DriveSeedBase int64 // measurement rng = Seed + DriveSeedBase + runIndex

	Placement string // "arc" or "line"
	Center    int    // -1 = origin

	// Arc placement: run ri starts at
	//   Offset(anchor, side, RadiusBaseM + RadiusStepM*(ri%RadiusMod))
	// with side = TrainBearing + BearingStep*ri (train half) or
	// TestBearing + BearingStep*(ri-Runs/2) (test half), then an optional
	// nudge Offset. The route heading is
	//   (RouteBearingBase + ri*RouteBearingStep) mod 360.
	TrainBearing     float64
	TestBearing      float64
	BearingStep      float64
	RadiusBaseM      float64
	RadiusStepM      float64
	RadiusMod        int
	HasNudge         bool
	NudgeBearing     float64
	NudgeDistanceM   float64
	RouteBearingBase int
	RouteBearingStep int

	// Line placement: runs start along a bearing (explicit LineBearing or
	// centers FromCenter->ToCenter) from an anchor at
	//   TrainOffsetM/TestOffsetM + OffsetStepM*(ri%OffsetMod)
	// and head down the line.
	HasLineAnchorOffset  bool
	LineAnchorBearing    float64
	LineAnchorDistanceM  float64
	LineBearing          float64
	FromCenter, ToCenter int
	TrainOffsetM         float64
	TestOffsetM          float64
	OffsetStepM          float64
	OffsetMod            int
}

// Load parses and binds a scenario config text.
func Load(text string) (*Scenario, error) {
	doc, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return Bind(doc)
}

// LoadFile loads a scenario config from disk.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Load(string(data))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	return sc, nil
}

// landUseKey maps "exp_<attribute>" config keys to land-use classes.
var landUseKey = func() map[string]uint8 {
	m := make(map[string]uint8, env.NumLandUse)
	for class := 0; class < env.NumLandUse; class++ {
		m["exp_"+env.AttributeNames[class]] = uint8(class)
	}
	return m
}()

// Bind validates a parsed Doc against the scenario schema.
func Bind(doc *Doc) (*Scenario, error) {
	sc := &Scenario{}
	var haveScenario, haveEnv bool
	for i := range doc.Sections {
		sec := &doc.Sections[i]
		var err error
		switch sec.Name {
		case "scenario":
			haveScenario = true
			err = bindScenario(sec, sc)
		case "world":
			err = bindWorld(sec, &sc.World)
		case "pathloss":
			err = bindPathloss(sec, sc)
		case "env":
			haveEnv = true
			err = bindEnv(sec, &sc.Env)
		case "center":
			err = bindCenter(sec, sc)
		case "layout":
			err = bindLayout(sec, sc)
		case "measure":
			err = bindMeasure(sec, sc)
		}
		if err != nil {
			return nil, err
		}
	}
	if !haveScenario {
		return nil, fmt.Errorf("%w: [scenario] section", ErrMissing)
	}
	if !haveEnv {
		return nil, fmt.Errorf("%w: [env] section", ErrMissing)
	}
	if len(sc.Layouts) == 0 {
		return nil, fmt.Errorf("%w: at least one [[layout]]", ErrMissing)
	}
	if len(sc.Measures) == 0 {
		return nil, fmt.Errorf("%w: at least one [[measure]]", ErrMissing)
	}
	if err := crossValidate(sc); err != nil {
		return nil, err
	}
	return sc, nil
}

func bindScenario(sec *Section, sc *Scenario) error {
	b := newBinder(sec)
	sc.Name = b.str("name", "")
	sc.Title = b.str("title", "")
	sc.Origin = geo.Point{Lat: b.num("origin_lat", 0), Lon: b.num("origin_lon", 0)}
	sc.SeedOffset = int64(b.integer("seed_offset", 0))
	sc.WorldSeedOffset = int64(b.integer("world_seed_offset", 0))
	sc.IndexCellM = b.num("index_cell_m", 1000)
	if err := b.finish(); err != nil {
		return err
	}
	if sc.Name == "" {
		return fmt.Errorf("%w: [scenario] name", ErrMissing)
	}
	if sc.Origin.Lat < -90 || sc.Origin.Lat > 90 || sc.Origin.Lon < -180 || sc.Origin.Lon > 180 {
		return fmt.Errorf("%w: [scenario] origin (%v)", ErrOutOfRange, sc.Origin)
	}
	if sc.IndexCellM <= 0 {
		return fmt.Errorf("%w: [scenario] index_cell_m must be positive", ErrOutOfRange)
	}
	return nil
}

func bindWorld(sec *Section, w *WorldSpec) error {
	b := newBinder(sec)
	opt := func(key string) optFloat {
		if b.has(key) {
			return optFloat{Set: true, V: b.num(key, 0)}
		}
		b.num(key, 0) // mark known
		return optFloat{}
	}
	w.VisibleRangeM = opt("visible_range_m")
	w.EnvRadiusM = opt("env_radius_m")
	w.NoiseFloorDBm = opt("noise_floor_dbm")
	w.StaticShadowSigmaDB = opt("static_shadow_sigma_db")
	w.StaticShadowCorrM = opt("static_shadow_corr_m")
	w.ShadowSigmaDB = opt("shadow_sigma_db")
	w.ShadowDecorrM = opt("shadow_decorr_m")
	w.FadingSigmaDB = opt("fading_sigma_db")
	w.HysteresisDB = opt("hysteresis_db")
	if b.has("time_to_trigger") {
		w.TimeToTrigger = optInt{Set: true, V: b.integer("time_to_trigger", 0)}
	} else {
		b.integer("time_to_trigger", 0)
	}
	w.L3Alpha = opt("l3_alpha")
	w.LoadMean = opt("load_mean")
	w.LoadAlpha = opt("load_alpha")
	w.LoadStd = opt("load_std")
	if err := b.finish(); err != nil {
		return err
	}
	for name, f := range map[string]optFloat{
		"visible_range_m": w.VisibleRangeM, "env_radius_m": w.EnvRadiusM,
		"static_shadow_sigma_db": w.StaticShadowSigmaDB, "shadow_sigma_db": w.ShadowSigmaDB,
		"fading_sigma_db": w.FadingSigmaDB, "hysteresis_db": w.HysteresisDB,
		"load_std": w.LoadStd,
	} {
		if f.Set && f.V < 0 {
			return fmt.Errorf("%w: [world] %s must be non-negative", ErrOutOfRange, name)
		}
	}
	if w.VisibleRangeM.Set && w.VisibleRangeM.V == 0 {
		return fmt.Errorf("%w: [world] visible_range_m must be positive", ErrOutOfRange)
	}
	if w.LoadMean.Set && (w.LoadMean.V < 0 || w.LoadMean.V > 1) {
		return fmt.Errorf("%w: [world] load_mean must be in [0,1]", ErrOutOfRange)
	}
	if w.LoadAlpha.Set && (w.LoadAlpha.V <= 0 || w.LoadAlpha.V >= 1) {
		return fmt.Errorf("%w: [world] load_alpha must be in (0,1)", ErrOutOfRange)
	}
	return nil
}

func bindPathloss(sec *Section, sc *Scenario) error {
	b := newBinder(sec)
	pl := &PathlossSpec{}
	pl.RefLossDB = b.num("ref_loss_db", 0)
	pl.RefDistM = b.num("ref_dist_m", 0)
	pl.DefaultExp = b.num("default_exp", 0)
	for _, kv := range sec.Keys {
		class, ok := landUseKey[kv.Key]
		if !ok {
			continue
		}
		v := b.num(kv.Key, 0)
		if v <= 0 {
			return fmt.Errorf("%w: [pathloss] %s: exponent must be positive", ErrOutOfRange, kv.Key)
		}
		if pl.Exponents == nil {
			pl.Exponents = make(map[uint8]float64)
		}
		pl.Exponents[class] = v
	}
	if err := b.finish(); err != nil {
		return err
	}
	if pl.RefLossDB < 0 || pl.RefDistM < 0 {
		return fmt.Errorf("%w: [pathloss] reference loss/distance must be non-negative", ErrOutOfRange)
	}
	if b.has("default_exp") && pl.DefaultExp <= 0 {
		return fmt.Errorf("%w: [pathloss] default_exp must be positive", ErrOutOfRange)
	}
	sc.Pathloss = pl
	return nil
}

func bindEnv(sec *Section, e *EnvSpec) error {
	b := newBinder(sec)
	e.ExtentKm = b.num("extent_km", 0)
	e.CellM = b.num("cell_m", 0)
	e.CoreKm = b.num("core_km", 0)
	e.PoIPerKm2 = b.num("poi_per_km2", 0)
	e.SeedOffset = int64(b.integer("seed_offset", 0))
	e.CentersAsCores = b.boolean("centers_as_cores", false)
	e.CoreRadiusKm = b.num("core_radius_km", 0)
	if err := b.finish(); err != nil {
		return err
	}
	if e.ExtentKm <= 0 {
		return fmt.Errorf("%w: [env] extent_km must be positive", ErrOutOfRange)
	}
	if e.CellM < 0 || e.CoreKm < 0 || e.PoIPerKm2 < 0 || e.CoreRadiusKm < 0 {
		return fmt.Errorf("%w: [env] negative dimension", ErrOutOfRange)
	}
	if e.CentersAsCores && e.CoreRadiusKm <= 0 {
		return fmt.Errorf("%w: [env] centers_as_cores requires core_radius_km", ErrMissing)
	}
	return nil
}

func bindCenter(sec *Section, sc *Scenario) error {
	b := newBinder(sec)
	c := CenterSpec{
		Bearing:   b.num("bearing", 0),
		DistanceM: b.num("distance_m", 0),
	}
	if err := b.finish(); err != nil {
		return err
	}
	if c.DistanceM < 0 {
		return fmt.Errorf("%w: [center] distance_m must be non-negative", ErrOutOfRange)
	}
	sc.Centers = append(sc.Centers, c)
	return nil
}

func bindLayout(sec *Section, sc *Scenario) error {
	b := newBinder(sec)
	l := LayoutSpec{
		Kind:       b.str("kind", ""),
		Center:     b.integer("center", -1),
		FromCenter: -1, ToCenter: -1,
	}
	switch l.Kind {
	case "grid":
		l.ExtentKm = b.num("extent_km", 0)
		l.SitesPerKm2 = b.num("sites_per_km2", 0)
		l.Sectors = b.integer("sectors", 0)
		l.Jitter = b.num("jitter", 0)
		l.PMaxDBm = b.num("pmax_dbm", 0)
		l.PMaxJitterDB = b.num("pmax_jitter_db", 0)
		l.HeightM = b.num("height_m", 0)
		l.BeamWidthDeg = b.num("beam_width_deg", 0)
		l.PeakGainDBi = b.num("peak_gain_dbi", 0)
		l.FrontToBackDB = b.num("front_to_back_db", 0)
		l.ReportErrM = b.num("report_err_m", 0)
		l.ReportErrDB = b.num("report_err_db", 0)
	case "corridor":
		l.HasAnchorOffset = b.has("anchor_distance_m") || b.has("anchor_bearing")
		l.AnchorBearing = b.num("anchor_bearing", 0)
		l.AnchorDistanceM = b.num("anchor_distance_m", 0)
		l.Bearing = b.num("bearing", 0)
		l.FromCenter = b.integer("from_center", -1)
		l.ToCenter = b.integer("to_center", -1)
		l.LengthKm = b.num("length_km", 0)
		l.SpacingM = b.num("spacing_m", 0)
		l.PMaxDBm = b.num("pmax_dbm", 0)
	default:
		return fmt.Errorf("%w: [layout] kind must be \"grid\" or \"corridor\" (got %q)", ErrBadValue, l.Kind)
	}
	if err := b.finish(); err != nil {
		return err
	}
	switch l.Kind {
	case "grid":
		if l.ExtentKm <= 0 || l.SitesPerKm2 <= 0 {
			return fmt.Errorf("%w: [layout] grid needs positive extent_km and sites_per_km2", ErrOutOfRange)
		}
		if l.BeamWidthDeg < 0 || l.BeamWidthDeg >= 360 {
			return fmt.Errorf("%w: [layout] beam_width_deg", ErrOutOfRange)
		}
	case "corridor":
		if l.LengthKm <= 0 || l.SpacingM <= 0 {
			return fmt.Errorf("%w: [layout] corridor needs positive length_km and spacing_m", ErrOutOfRange)
		}
		if (l.FromCenter >= 0) != (l.ToCenter >= 0) {
			return fmt.Errorf("%w: [layout] from_center and to_center come as a pair", ErrBadValue)
		}
	}
	sc.Layouts = append(sc.Layouts, l)
	return nil
}

func bindMeasure(sec *Section, sc *Scenario) error {
	b := newBinder(sec)
	m := MeasureSpec{
		Name:     b.str("name", ""),
		Profile:  b.str("profile", ""),
		Profile2: b.str("profile2", ""),

		SpeedMean:  b.num("speed_mean", 0),
		SpeedStd:   b.num("speed_std", 0),
		SpeedMin:   b.num("speed_min", 0),
		SpeedMax:   b.num("speed_max", 0),
		SpeedAlpha: b.num("speed_alpha", 0),

		DurationS:     b.num("duration_s", 0),
		IntervalS:     b.num("interval_s", 1),
		TurnEveryS:    b.num("turn_every_s", 0),
		TurnJitterDeg: b.num("turn_jitter_deg", 0),
		GridSnap:      b.boolean("grid_snap", false),
		Runs:          b.integer("runs", 6),

		RouteSeedBase: int64(b.integer("route_seed_base", 0)),
		DriveSeedBase: int64(b.integer("drive_seed_base", 0)),

		Placement: b.str("placement", ""),
		Center:    b.integer("center", -1),

		FromCenter: -1, ToCenter: -1,
	}
	switch m.Placement {
	case "arc":
		m.TrainBearing = b.num("train_bearing", 0)
		m.TestBearing = b.num("test_bearing", 0)
		m.BearingStep = b.num("bearing_step", 0)
		m.RadiusBaseM = b.num("radius_base_m", 0)
		m.RadiusStepM = b.num("radius_step_m", 0)
		m.RadiusMod = b.integer("radius_mod", 3)
		m.HasNudge = b.has("nudge_distance_m")
		m.NudgeBearing = b.num("nudge_bearing", 0)
		m.NudgeDistanceM = b.num("nudge_distance_m", 0)
		m.RouteBearingBase = b.integer("route_bearing_base", 0)
		m.RouteBearingStep = b.integer("route_bearing_step", 0)
	case "line":
		m.HasLineAnchorOffset = b.has("anchor_distance_m") || b.has("anchor_bearing")
		m.LineAnchorBearing = b.num("anchor_bearing", 0)
		m.LineAnchorDistanceM = b.num("anchor_distance_m", 0)
		m.LineBearing = b.num("bearing", 0)
		m.FromCenter = b.integer("from_center", -1)
		m.ToCenter = b.integer("to_center", -1)
		m.TrainOffsetM = b.num("train_offset_m", 0)
		m.TestOffsetM = b.num("test_offset_m", 0)
		m.OffsetStepM = b.num("offset_step_m", 0)
		m.OffsetMod = b.integer("offset_mod", 3)
	default:
		return fmt.Errorf("%w: [measure] placement must be \"arc\" or \"line\" (got %q)", ErrBadValue, m.Placement)
	}
	if err := b.finish(); err != nil {
		return err
	}
	if m.Name == "" {
		return fmt.Errorf("%w: [measure] name", ErrMissing)
	}
	if m.DurationS <= 0 {
		return fmt.Errorf("%w: [measure] %s: duration_s must be positive", ErrOutOfRange, m.Name)
	}
	if m.IntervalS <= 0 {
		return fmt.Errorf("%w: [measure] %s: interval_s must be positive", ErrOutOfRange, m.Name)
	}
	if m.Runs < 2 || m.Runs%2 != 0 {
		return fmt.Errorf("%w: [measure] %s: runs must be a positive even count (half train, half test)", ErrOutOfRange, m.Name)
	}
	if m.Placement == "arc" && m.RadiusMod <= 0 {
		return fmt.Errorf("%w: [measure] %s: radius_mod must be positive", ErrOutOfRange, m.Name)
	}
	if m.Placement == "line" {
		if m.OffsetMod <= 0 {
			return fmt.Errorf("%w: [measure] %s: offset_mod must be positive", ErrOutOfRange, m.Name)
		}
		if (m.FromCenter >= 0) != (m.ToCenter >= 0) {
			return fmt.Errorf("%w: [measure] %s: from_center and to_center come as a pair", ErrBadValue, m.Name)
		}
	}
	if _, err := m.profileFor(0); err != nil {
		return err
	}
	if _, err := m.profileFor(1); err != nil {
		return err
	}
	sc.Measures = append(sc.Measures, m)
	return nil
}

// crossValidate checks index references and name uniqueness across
// sections.
func crossValidate(sc *Scenario) error {
	checkCenter := func(where string, idx int) error {
		if idx < -1 || idx >= len(sc.Centers) {
			return fmt.Errorf("%w: %s references center %d (have %d)", ErrOutOfRange, where, idx, len(sc.Centers))
		}
		return nil
	}
	for i, l := range sc.Layouts {
		where := fmt.Sprintf("[[layout]] #%d", i+1)
		if err := checkCenter(where, l.Center); err != nil {
			return err
		}
		if l.FromCenter >= 0 {
			if err := checkCenter(where, l.FromCenter); err != nil {
				return err
			}
			if err := checkCenter(where, l.ToCenter); err != nil {
				return err
			}
		}
	}
	seen := map[string]bool{}
	for i, m := range sc.Measures {
		where := fmt.Sprintf("[[measure]] %q", m.Name)
		if seen[m.Name] {
			return fmt.Errorf("%w: duplicate measure name %q", ErrBadValue, m.Name)
		}
		seen[m.Name] = true
		if err := checkCenter(where, m.Center); err != nil {
			return err
		}
		if m.FromCenter >= 0 {
			if err := checkCenter(where, m.FromCenter); err != nil {
				return err
			}
			if err := checkCenter(where, m.ToCenter); err != nil {
				return err
			}
		}
		_ = i
	}
	return nil
}
