// Package scenario implements the declarative scenario DSL: a TOML-ish,
// zero-dependency config format describing a complete drive-test world —
// propagation and shadowing, cell/site layout, sector gain, mobility,
// load dynamics, and measurement granularity — compiled into the existing
// sim.World machinery so new measurement regimes need a config file, not
// Go code. Dataset A and Dataset B are themselves expressed in this DSL
// (scenarios/dataset-a.toml, scenarios/dataset-b.toml) and compile
// bit-identically to the historical hard-coded constructors; that
// equivalence is locked down by a golden fingerprint test in
// internal/dataset.
//
// The package splits parsing into two layers: Parse produces a raw Doc
// (sections of typed key/value pairs, syntax-validated only), and Bind
// checks the Doc against the scenario schema. Doc.Format writes the
// canonical serialization, so Parse∘Format∘Parse is the identity on Docs
// — the round-trip property FuzzScenarioParse enforces.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Named error categories. Every error returned by Parse or Bind wraps one
// of these, so callers can classify failures with errors.Is.
var (
	// ErrSyntax marks malformed lines: missing '=', unterminated strings,
	// bad section headers.
	ErrSyntax = errors.New("scenario: syntax error")
	// ErrNonFinite marks NaN or Inf numeric values; the DSL rejects them
	// everywhere (a non-finite exponent or duration can never be valid).
	ErrNonFinite = errors.New("scenario: non-finite number")
	// ErrUnknownKey marks a key no section of the schema defines — the
	// typo guard.
	ErrUnknownKey = errors.New("scenario: unknown key")
	// ErrUnknownSection marks a section header outside the schema.
	ErrUnknownSection = errors.New("scenario: unknown section")
	// ErrBadValue marks a value of the wrong type for its key.
	ErrBadValue = errors.New("scenario: bad value")
	// ErrOutOfRange marks a value outside its physical domain (negative
	// pathloss exponent, zero interval, out-of-range index, ...).
	ErrOutOfRange = errors.New("scenario: value out of range")
	// ErrMissing marks a required key or section that is absent.
	ErrMissing = errors.New("scenario: missing required field")
)

// Kind enumerates value types the DSL supports.
type Kind int

// Value kinds: numbers (float64), booleans, and quoted strings.
const (
	KindNumber Kind = iota
	KindBool
	KindString
)

// Value is one parsed scalar.
type Value struct {
	Kind Kind
	Num  float64
	Bool bool
	Str  string
}

// String renders the canonical form of the value.
func (v Value) String() string {
	switch v.Kind {
	case KindNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	default:
		return strconv.Quote(v.Str)
	}
}

// KV is one key/value pair inside a section.
type KV struct {
	Key string
	Val Value
}

// Section is one [name] or [[name]] block.
type Section struct {
	Name  string
	Array bool // declared with [[name]] — may repeat
	Keys  []KV
}

// get returns the value for key and whether it was present.
func (s *Section) get(key string) (Value, bool) {
	for _, kv := range s.Keys {
		if kv.Key == key {
			return kv.Val, true
		}
	}
	return Value{}, false
}

// Doc is a parsed scenario file before schema binding: an ordered list of
// sections. Key order inside a section is preserved from the source;
// Format writes sections and keys in parse order.
type Doc struct {
	Sections []Section
}

// sectionNames lists the legal section headers. scenario/world/pathloss/
// env are singular; center/layout/measure are arrays.
var sectionArity = map[string]bool{ // name -> is array
	"scenario": false,
	"world":    false,
	"pathloss": false,
	"env":      false,
	"center":   true,
	"layout":   true,
	"measure":  true,
}

// Parse reads the DSL text into a Doc. It validates syntax and value
// well-formedness (numbers must be finite, strings quoted, booleans
// true/false, sections known, keys unique within a section) but not the
// schema — Bind does that.
func Parse(text string) (*Doc, error) {
	d := &Doc{}
	var cur *Section
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 && !strings.Contains(line[:i], `"`) {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "[["):
			if !strings.HasSuffix(line, "]]") {
				return nil, fmt.Errorf("%w: line %d: unterminated [[section]]", ErrSyntax, lineNo)
			}
			name := strings.TrimSpace(line[2 : len(line)-2])
			arr, ok := sectionArity[name]
			if !ok {
				return nil, fmt.Errorf("%w: line %d: [[%s]]", ErrUnknownSection, lineNo, name)
			}
			if !arr {
				return nil, fmt.Errorf("%w: line %d: section [%s] is singular, use [%s]", ErrSyntax, lineNo, name, name)
			}
			d.Sections = append(d.Sections, Section{Name: name, Array: true})
			cur = &d.Sections[len(d.Sections)-1]
		case strings.HasPrefix(line, "["):
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("%w: line %d: unterminated [section]", ErrSyntax, lineNo)
			}
			name := strings.TrimSpace(line[1 : len(line)-1])
			arr, ok := sectionArity[name]
			if !ok {
				return nil, fmt.Errorf("%w: line %d: [%s]", ErrUnknownSection, lineNo, name)
			}
			if arr {
				return nil, fmt.Errorf("%w: line %d: section [[%s]] repeats, use [[%s]]", ErrSyntax, lineNo, name, name)
			}
			for _, s := range d.Sections {
				if s.Name == name {
					return nil, fmt.Errorf("%w: line %d: duplicate section [%s]", ErrSyntax, lineNo, name)
				}
			}
			d.Sections = append(d.Sections, Section{Name: name})
			cur = &d.Sections[len(d.Sections)-1]
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("%w: line %d: expected key = value", ErrSyntax, lineNo)
			}
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: key outside any section", ErrSyntax, lineNo)
			}
			key := strings.TrimSpace(line[:eq])
			if key == "" || strings.ContainsAny(key, " \t\"[]") {
				return nil, fmt.Errorf("%w: line %d: bad key %q", ErrSyntax, lineNo, key)
			}
			if _, dup := cur.get(key); dup {
				return nil, fmt.Errorf("%w: line %d: duplicate key %q in [%s]", ErrSyntax, lineNo, key, cur.Name)
			}
			val, err := parseValue(strings.TrimSpace(line[eq+1:]))
			if err != nil {
				return nil, fmt.Errorf("line %d, key %q: %w", lineNo, key, err)
			}
			cur.Keys = append(cur.Keys, KV{Key: key, Val: val})
		}
	}
	return d, nil
}

func parseValue(s string) (Value, error) {
	switch {
	case s == "":
		return Value{}, fmt.Errorf("%w: empty value", ErrSyntax)
	case s == "true":
		return Value{Kind: KindBool, Bool: true}, nil
	case s == "false":
		return Value{Kind: KindBool}, nil
	case s[0] == '"':
		str, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("%w: string %s", ErrSyntax, s)
		}
		return Value{Kind: KindString, Str: str}, nil
	default:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			if errors.Is(err, strconv.ErrRange) {
				return Value{}, fmt.Errorf("%w: %q overflows float64", ErrNonFinite, s)
			}
			return Value{}, fmt.Errorf("%w: %q is not a number, bool, or quoted string", ErrBadValue, s)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return Value{}, fmt.Errorf("%w: %q", ErrNonFinite, s)
		}
		return Value{Kind: KindNumber, Num: f}, nil
	}
}

// Format writes the canonical serialization of the Doc: sections in
// order, one "key = value" per line, numbers in shortest round-trip
// form. Parse(Format(d)) reproduces d exactly.
func (d *Doc) Format() string {
	var b strings.Builder
	for i, s := range d.Sections {
		if i > 0 {
			b.WriteByte('\n')
		}
		if s.Array {
			fmt.Fprintf(&b, "[[%s]]\n", s.Name)
		} else {
			fmt.Fprintf(&b, "[%s]\n", s.Name)
		}
		for _, kv := range s.Keys {
			fmt.Fprintf(&b, "%s = %s\n", kv.Key, kv.Val.String())
		}
	}
	return b.String()
}

// binder wraps a Section with consumption tracking so Bind can reject
// keys the schema does not define.
type binder struct {
	sec  *Section
	used map[string]bool
	err  error
}

func newBinder(sec *Section) *binder {
	return &binder{sec: sec, used: make(map[string]bool)}
}

func (b *binder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// num reads a float key with a default.
func (b *binder) num(key string, def float64) float64 {
	b.used[key] = true
	v, ok := b.sec.get(key)
	if !ok {
		return def
	}
	if v.Kind != KindNumber {
		b.fail(fmt.Errorf("%w: [%s] %s must be a number", ErrBadValue, b.sec.Name, key))
		return def
	}
	return v.Num
}

// has reports whether the key is present (and marks it known).
func (b *binder) has(key string) bool {
	_, ok := b.sec.get(key)
	return ok
}

// integer reads an int-valued key; non-integral numbers are rejected.
func (b *binder) integer(key string, def int) int {
	b.used[key] = true
	v, ok := b.sec.get(key)
	if !ok {
		return def
	}
	if v.Kind != KindNumber || v.Num != math.Trunc(v.Num) {
		b.fail(fmt.Errorf("%w: [%s] %s must be an integer", ErrBadValue, b.sec.Name, key))
		return def
	}
	return int(v.Num)
}

func (b *binder) boolean(key string, def bool) bool {
	b.used[key] = true
	v, ok := b.sec.get(key)
	if !ok {
		return def
	}
	if v.Kind != KindBool {
		b.fail(fmt.Errorf("%w: [%s] %s must be true or false", ErrBadValue, b.sec.Name, key))
		return def
	}
	return v.Bool
}

func (b *binder) str(key, def string) string {
	b.used[key] = true
	v, ok := b.sec.get(key)
	if !ok {
		return def
	}
	if v.Kind != KindString {
		b.fail(fmt.Errorf("%w: [%s] %s must be a quoted string", ErrBadValue, b.sec.Name, key))
		return def
	}
	return v.Str
}

// finish reports the first binding error, or an ErrUnknownKey for any key
// the schema never consumed.
func (b *binder) finish() error {
	if b.err != nil {
		return b.err
	}
	var unknown []string
	for _, kv := range b.sec.Keys {
		if !b.used[kv.Key] {
			unknown = append(unknown, kv.Key)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("%w: [%s] %s", ErrUnknownKey, b.sec.Name, strings.Join(unknown, ", "))
	}
	return nil
}
