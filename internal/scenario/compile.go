package scenario

import (
	"fmt"
	"math/rand"

	"gendt/internal/cells"
	"gendt/internal/env"
	"gendt/internal/geo"
	"gendt/internal/radio"
	"gendt/internal/sim"
)

// BuiltRun is one compiled measurement run. It mirrors dataset.Run but
// lives here so internal/dataset can depend on internal/scenario without a
// cycle; dataset.FromScenario converts.
type BuiltRun struct {
	Scenario string
	Train    bool
	Traj     geo.Trajectory
	Meas     []sim.Measurement
}

// Build compiles a bound scenario into a simulated world and its
// measurement runs.
//
// Determinism contract: Build is a pure function of (sc, seed, scale).
// All randomness flows from three seeded streams — one deployment rng at
// seed+SeedOffset consumed by the layouts in declaration order, one route
// rng per run at seed+RouteSeedBase+runIndex, and one measurement rng per
// run at seed+DriveSeedBase+runIndex — so runs are independent of each
// other and of layout count. The arithmetic below deliberately mirrors
// the historical NewDatasetA/NewDatasetB constructors operation for
// operation (same geo.Offset call sites, same multiply-then-add order) so
// that scenarios/dataset-a.toml and dataset-b.toml compile bit-identically
// to them; see TestScenarioGoldenBitIdentity.
func Build(sc *Scenario, seed int64, scale float64) (*sim.World, []BuiltRun, error) {
	if scale <= 0 {
		scale = 1
	}
	centers := resolveCenters(sc)
	anchorOf := func(idx int) geo.Point {
		if idx < 0 {
			return sc.Origin
		}
		return centers[idx]
	}

	// Deployment: every layout draws from one shared rng in declaration
	// order, with cell IDs chained across layouts.
	rng := rand.New(rand.NewSource(seed + sc.SeedOffset))
	var all []cells.Cell
	next := 0
	for i := range sc.Layouts {
		l := &sc.Layouts[i]
		var cs []cells.Cell
		switch l.Kind {
		case "grid":
			cs = cells.Generate(cells.DeploymentSpec{
				Origin: anchorOf(l.Center), ExtentKm: l.ExtentKm, SitesPerKm2: l.SitesPerKm2,
				Sectors: l.Sectors, PMaxDBm: l.PMaxDBm, PMaxJitter: l.PMaxJitterDB,
				Height: l.HeightM, Jitter: l.Jitter, FirstID: next,
				ReportErrM: l.ReportErrM, ReportErrDB: l.ReportErrDB,
				BeamWidth: l.BeamWidthDeg, PeakGainDBi: l.PeakGainDBi, FrontToBackDB: l.FrontToBackDB,
			}, rng)
		case "corridor":
			start := anchorOf(l.Center)
			if l.HasAnchorOffset {
				start = geo.Offset(start, l.AnchorBearing, l.AnchorDistanceM)
			}
			brg := l.Bearing
			if l.FromCenter >= 0 {
				brg = geo.Bearing(anchorOf(l.FromCenter), anchorOf(l.ToCenter))
			}
			cs = cells.GenerateCorridor(start, brg, l.LengthKm, l.SpacingM, l.PMaxDBm, next, rng)
		}
		all = append(all, cs...)
		next += len(cs)
	}
	dep := cells.NewDeployment(all, sc.Origin, sc.IndexCellM)

	// Environment map.
	var cores []env.Core
	if sc.Env.CentersAsCores {
		for _, c := range centers {
			cores = append(cores, env.Core{Center: c, RadiusKm: sc.Env.CoreRadiusKm})
		}
	}
	em := env.NewMap(env.MapSpec{
		Origin: sc.Origin, ExtentKm: sc.Env.ExtentKm, CellM: sc.Env.CellM,
		CoreKm: sc.Env.CoreKm, Cores: cores, PoIPerKm2: sc.Env.PoIPerKm2,
		Seed: seed + sc.Env.SeedOffset,
	})

	w := sim.DefaultWorld(dep, em)
	w.WorldSeed = seed + sc.WorldSeedOffset
	applyWorld(w, &sc.World)
	if sc.Pathloss != nil {
		w.Pathloss = sc.Pathloss.model()
	}

	// Measurement runs.
	var runs []BuiltRun
	for mi := range sc.Measures {
		m := &sc.Measures[mi]
		for ri := 0; ri < m.Runs; ri++ {
			train := ri < m.Runs/2
			routeRng := rand.New(rand.NewSource(seed + m.RouteSeedBase + int64(ri)))
			prof, err := m.profileFor(ri)
			if err != nil {
				return nil, nil, err
			}
			var start geo.Point
			var bearing float64
			switch m.Placement {
			case "arc":
				var side float64
				if train {
					side = m.TrainBearing + m.BearingStep*float64(ri)
				} else {
					side = m.TestBearing + m.BearingStep*float64(ri-m.Runs/2)
				}
				start = geo.Offset(anchorOf(m.Center), side, m.RadiusBaseM+m.RadiusStepM*float64(ri%m.RadiusMod))
				if m.HasNudge {
					start = geo.Offset(start, m.NudgeBearing, m.NudgeDistanceM)
				}
				bearing = float64((m.RouteBearingBase + ri*m.RouteBearingStep) % 360)
			case "line":
				anchor := anchorOf(m.Center)
				if m.HasLineAnchorOffset {
					anchor = geo.Offset(anchor, m.LineAnchorBearing, m.LineAnchorDistanceM)
				}
				bearing = m.LineBearing
				if m.FromCenter >= 0 {
					bearing = geo.Bearing(anchorOf(m.FromCenter), anchorOf(m.ToCenter))
				}
				base := m.TrainOffsetM
				if !train {
					base = m.TestOffsetM
				}
				start = geo.Offset(anchor, bearing, base+m.OffsetStepM*float64(ri%m.OffsetMod))
			}
			tr := geo.BuildRoute(geo.RouteSpec{
				Start: start, Bearing: bearing,
				Duration: m.DurationS * scale / float64(m.Runs), Interval: m.IntervalS,
				Profile: prof, TurnEvery: m.TurnEveryS,
				TurnJitter: m.TurnJitterDeg, GridSnap: m.GridSnap,
			}, routeRng)
			ms := w.DriveTest(tr, rand.New(rand.NewSource(seed+m.DriveSeedBase+int64(ri))))
			runs = append(runs, BuiltRun{Scenario: m.Name, Train: train, Traj: tr, Meas: ms})
		}
	}
	return w, runs, nil
}

// resolveCenters turns [[center]] offsets into points. A zero distance
// yields the origin verbatim (geo.Offset(p, b, 0) is not a bit-exact
// identity, and the historical constructors anchor their first city at the
// origin itself).
func resolveCenters(sc *Scenario) []geo.Point {
	out := make([]geo.Point, len(sc.Centers))
	for i, c := range sc.Centers {
		if c.DistanceM == 0 {
			out[i] = sc.Origin
			continue
		}
		out[i] = geo.Offset(sc.Origin, c.Bearing, c.DistanceM)
	}
	return out
}

// applyWorld overlays the presence-flagged overrides onto a default world.
func applyWorld(w *sim.World, ws *WorldSpec) {
	set := func(dst *float64, o optFloat) {
		if o.Set {
			*dst = o.V
		}
	}
	set(&w.VisibleRange, ws.VisibleRangeM)
	set(&w.EnvRadius, ws.EnvRadiusM)
	set(&w.NoiseFloorDBm, ws.NoiseFloorDBm)
	set(&w.StaticShadowSigmaDB, ws.StaticShadowSigmaDB)
	set(&w.StaticShadowCorrM, ws.StaticShadowCorrM)
	set(&w.ShadowSigmaDB, ws.ShadowSigmaDB)
	set(&w.ShadowDecorrM, ws.ShadowDecorrM)
	set(&w.FadingSigmaDB, ws.FadingSigmaDB)
	set(&w.HysteresisDB, ws.HysteresisDB)
	if ws.TimeToTrigger.Set {
		w.TimeToTrigger = ws.TimeToTrigger.V
	}
	set(&w.L3Alpha, ws.L3Alpha)
	set(&w.LoadMean, ws.LoadMean)
	set(&w.LoadAlpha, ws.LoadAlpha)
	set(&w.LoadStd, ws.LoadStd)
}

// model materializes the pathloss override: reference parameters replace
// the defaults when set, and per-class exponents overlay the default
// land-use table (unconfigured classes keep their 3GPP-flavoured values).
func (p *PathlossSpec) model() *radio.PathlossModel {
	m := radio.NewPathloss(p.RefLossDB, p.RefDistM, p.DefaultExp, nil)
	for class, exp := range p.Exponents {
		m.Exponents[class] = exp
	}
	return m
}

// profileFor resolves the mobility profile for run index ri: Profile2 (if
// set) takes the odd run indices, modelling mixed-mode measurement
// campaigns (e.g. alternating pedestrian and vehicle runs).
func (m *MeasureSpec) profileFor(ri int) (geo.SpeedProfile, error) {
	name := m.Profile
	if m.Profile2 != "" && ri%2 == 1 {
		name = m.Profile2
	}
	switch name {
	case "walk":
		return geo.WalkProfile, nil
	case "bus":
		return geo.BusProfile, nil
	case "tram":
		return geo.TramProfile, nil
	case "citydrive":
		return geo.CityDriveProfile, nil
	case "highway":
		return geo.HighwayProfile, nil
	case "custom":
		if m.SpeedMean <= 0 || m.SpeedMax < m.SpeedMean || m.SpeedMin < 0 || m.SpeedMin > m.SpeedMean {
			return geo.SpeedProfile{}, fmt.Errorf("%w: [measure] %s: custom profile needs 0 <= speed_min <= speed_mean <= speed_max", ErrOutOfRange, m.Name)
		}
		if m.SpeedStd < 0 || m.SpeedAlpha <= 0 || m.SpeedAlpha >= 1 {
			return geo.SpeedProfile{}, fmt.Errorf("%w: [measure] %s: custom profile needs speed_std >= 0 and speed_alpha in (0,1)", ErrOutOfRange, m.Name)
		}
		return geo.SpeedProfile{Mean: m.SpeedMean, Std: m.SpeedStd, Min: m.SpeedMin, Max: m.SpeedMax, Alpha: m.SpeedAlpha}, nil
	default:
		return geo.SpeedProfile{}, fmt.Errorf("%w: [measure] %s: unknown profile %q (want walk, bus, tram, citydrive, highway, or custom)", ErrBadValue, m.Name, name)
	}
}
