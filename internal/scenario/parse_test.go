package scenario

import (
	"errors"
	"io/fs"
	"reflect"
	"strings"
	"testing"

	"gendt/scenarios"
)

// namedErrors is the closed set every Parse/Bind failure must classify
// into via errors.Is.
var namedErrors = []error{
	ErrSyntax, ErrNonFinite, ErrUnknownKey, ErrUnknownSection,
	ErrBadValue, ErrOutOfRange, ErrMissing,
}

func isNamed(err error) bool {
	for _, n := range namedErrors {
		if errors.Is(err, n) {
			return true
		}
	}
	return false
}

// FuzzScenarioParse feeds arbitrary text through the whole DSL front end:
// Parse must never panic and must reject bad input with a named error;
// accepted input must survive the parse -> Format -> parse round trip
// exactly; and Bind over the resulting Doc must likewise never panic and
// must fail only with named errors.
func FuzzScenarioParse(f *testing.F) {
	// Seed with the committed scenario files plus targeted edge cases.
	entries, _ := fs.Glob(scenarios.FS, "*.toml")
	for _, name := range entries {
		data, err := fs.ReadFile(scenarios.FS, name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	for _, s := range []string{
		"", "[scenario]\nname = \"x\"", "[world]", "[[measure]]",
		"[scenario]\nseed_offset = 1.5", "x = 1", "[bogus]", "[[scenario]]",
		"[world]\nvisible_range_m = nan", "[world]\nvisible_range_m = +Inf",
		"[pathloss]\nexp_sea = -1", "[env]\nextent_km = 1e309",
		"[scenario]\nname = \"a\nb\"", "[scenario]\nname = \"a#b\" # trailing",
		"[scenario]\nname = true\nname = false", "[scenario", "[[measure]",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		doc, err := Parse(text)
		if err != nil {
			if !isNamed(err) {
				t.Fatalf("Parse error not in the named set: %v", err)
			}
			return
		}
		canon := doc.Format()
		doc2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form failed to reparse: %v\n%s", err, canon)
		}
		if !reflect.DeepEqual(doc, doc2) {
			t.Fatalf("parse -> Format -> parse not the identity\noriginal: %#v\nreparsed: %#v", doc, doc2)
		}
		if again := doc2.Format(); again != canon {
			t.Fatalf("Format is not a fixed point:\n%q\nvs\n%q", canon, again)
		}
		if _, err := Bind(doc); err != nil && !isNamed(err) {
			t.Fatalf("Bind error not in the named set: %v", err)
		}
	})
}

// TestParseRejectsNonFinite pins the named-error contract for the values
// the DSL must never accept anywhere: NaN and infinities.
func TestParseRejectsNonFinite(t *testing.T) {
	for _, v := range []string{"nan", "NaN", "inf", "+inf", "-Inf", "1e999"} {
		_, err := Parse("[world]\nvisible_range_m = " + v + "\n")
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("value %q: got %v, want ErrNonFinite", v, err)
		}
	}
}

// TestBindRejectsBadValues spot-checks the schema guard rails, each with
// its named error.
func TestBindRejectsBadValues(t *testing.T) {
	base := func(extra string) string {
		return `[scenario]
name = "t"
[env]
extent_km = 2
[[layout]]
kind = "grid"
extent_km = 1
sites_per_km2 = 1
[[measure]]
name = "m"
profile = "walk"
duration_s = 10
placement = "arc"
` + extra
	}
	cases := []struct {
		name string
		text string
		want error
	}{
		{"negative exponent", base("[pathloss]\nexp_continuous_urban = -2\n"), ErrOutOfRange},
		{"zero exponent", base("[pathloss]\nexp_sea = 0\n"), ErrOutOfRange},
		{"unknown key", base("[world]\nwarp_factor = 9\n"), ErrUnknownKey},
		{"non-integer seed", base("[world]\ntime_to_trigger = 2.5\n"), ErrBadValue},
		{"bad load alpha", base("[world]\nload_alpha = 1\n"), ErrOutOfRange},
		{"missing scenario section", "[env]\nextent_km = 2\n", ErrMissing},
		{"unknown profile", strings.Replace(base(""), `profile = "walk"`, `profile = "teleport"`, 1), ErrBadValue},
		{"odd run count", strings.Replace(base(""), `duration_s = 10`, "duration_s = 10\nruns = 5", 1), ErrOutOfRange},
		{"dangling center ref", strings.Replace(base(""), `placement = "arc"`, "placement = \"arc\"\ncenter = 3", 1), ErrOutOfRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(tc.text)
			if !errors.Is(err, tc.want) {
				t.Errorf("got %v, want %v", err, tc.want)
			}
		})
	}
	if _, err := Load(base("")); err != nil {
		t.Errorf("minimal valid config rejected: %v", err)
	}
}

// TestBuiltinRoundTrip proves every committed scenario file survives the
// canonicalization round trip at the Doc level and binds cleanly.
func TestBuiltinRoundTrip(t *testing.T) {
	entries, err := fs.Glob(scenarios.FS, "*.toml")
	if err != nil || len(entries) < 5 {
		t.Fatalf("expected >= 5 committed scenario files, got %v (err %v)", entries, err)
	}
	for _, name := range entries {
		t.Run(name, func(t *testing.T) {
			data, err := fs.ReadFile(scenarios.FS, name)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := Parse(string(data))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			doc2, err := Parse(doc.Format())
			if err != nil {
				t.Fatalf("reparse of canonical form: %v", err)
			}
			if !reflect.DeepEqual(doc, doc2) {
				t.Fatal("canonicalization round trip altered the Doc")
			}
			if _, err := Bind(doc); err != nil {
				t.Fatalf("Bind: %v", err)
			}
		})
	}
}
