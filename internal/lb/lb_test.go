package lb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gendt/internal/serve"
)

// fakeReplica is a controllable stand-in for a gendt-serve replica: its
// /v1/generate echoes the replica id, and /healthz and 503 behavior flip
// atomically from tests.
type fakeReplica struct {
	id        string
	srv       *httptest.Server
	healthy   atomic.Bool
	draining  atomic.Bool // /v1/generate answers 503 draining
	blockOn   atomic.Bool // /v1/generate waits for close(block)
	block     chan struct{}
	generates atomic.Int64
}

func newFakeReplica(t *testing.T, id string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{id: id, block: make(chan struct{})}
	f.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc(serve.EndpointHealth, func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			w.Header().Set("Retry-After", "1")
			w.Header().Set(serve.ReasonHeader, serve.ReasonDraining)
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, `{"status":"ok"}`)
	})
	mux.HandleFunc(serve.EndpointGenerate, func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if f.draining.Load() {
			w.Header().Set("Retry-After", "1")
			w.Header().Set(serve.ReasonHeader, serve.ReasonDraining)
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"draining"}`)
			return
		}
		if f.blockOn.Load() {
			<-f.block
		}
		f.generates.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"backend":%q}`, f.id)
	})
	mux.HandleFunc(serve.EndpointModels, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"models":[{"name":%q}]}`, f.id)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// newLB builds a balancer over the fakes (plus any extra URLs).
func newLB(t *testing.T, opt Options, fakes ...*fakeReplica) *LB {
	t.Helper()
	for _, f := range fakes {
		opt.Replicas = append(opt.Replicas, f.srv.URL)
	}
	balancer, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(balancer.Close)
	return balancer
}

// routeBody builds a generate body with geometry g (distinct g = distinct
// ring key).
func routeBody(g int) []byte {
	req := serve.GenerateRequest{Seed: 7, Route: []serve.RoutePoint{
		{T: 0, Lat: 48 + float64(g)*0.001, Lon: 16},
		{T: 1, Lat: 48 + float64(g)*0.001, Lon: 16.001},
	}}
	b, _ := json.Marshal(req)
	return b
}

// routeBodyOwnedBy searches for a body whose ring primary is the given
// replica URL — the ring is deterministic, so tests can aim traffic.
func routeBodyOwnedBy(t *testing.T, ring *Ring, owner string) []byte {
	t.Helper()
	for g := 0; g < 10000; g++ {
		var req serve.GenerateRequest
		body := routeBody(g)
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatal(err)
		}
		if ring.Lookup(RouteKey(req.Model, req.Route, req.RouteCSV)) == owner {
			return body
		}
	}
	t.Fatal("no route found mapping to owner")
	return nil
}

func post(t *testing.T, lbSrv *httptest.Server, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(lbSrv.URL+serve.EndpointGenerate, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(raw)
}

func TestRoutingIsConsistentAndSpreads(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	balancer := newLB(t, Options{}, a, b, c)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	// Same route always lands on the same backend.
	var first string
	for i := 0; i < 10; i++ {
		resp, body := post(t, lbSrv, routeBody(1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if first == "" {
			first = body
		} else if body != first {
			t.Fatalf("same route split across backends: %q vs %q", body, first)
		}
	}

	// Distinct routes spread across the fleet.
	hit := make(map[string]bool)
	for g := 0; g < 48; g++ {
		_, body := post(t, lbSrv, routeBody(g))
		hit[body] = true
	}
	if len(hit) < 2 {
		t.Fatalf("48 distinct routes all landed on one backend: %v", hit)
	}
}

func TestRetryOn503DrainingFailsOver(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	balancer := newLB(t, Options{Retries: 1}, a, b)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	a.draining.Store(true)
	body := routeBodyOwnedBy(t, balancer.Ring(), a.srv.URL)
	resp, got := post(t, lbSrv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if got != `{"backend":"b"}` {
		t.Fatalf("expected failover to b, got %s", got)
	}
	snap := balancer.Snapshot()
	if snap.Retries == 0 {
		t.Fatal("retry not counted")
	}
	// Retry-After from the draining 503 must keep a out of routing: the
	// same route now goes straight to b without another retry.
	before := snap.Replicas[a.srv.URL].Requests
	resp, _ = post(t, lbSrv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if after := balancer.Snapshot().Replicas[a.srv.URL].Requests; after != before {
		t.Fatalf("draining replica hit again during its Retry-After backoff (%d -> %d)", before, after)
	}
}

func TestConnectErrorFailsOverAndEjects(t *testing.T) {
	alive := newFakeReplica(t, "alive")
	dead := newFakeReplica(t, "dead")
	deadURL := dead.srv.URL
	dead.srv.Close() // connection refused from now on

	balancer := newLB(t, Options{Retries: 2, FailAfter: 1, Replicas: []string{deadURL}}, alive)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	body := routeBodyOwnedBy(t, balancer.Ring(), deadURL)
	resp, got := post(t, lbSrv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if got != `{"backend":"alive"}` {
		t.Fatalf("expected failover to alive, got %s", got)
	}
	healthy, ejections, ok := balancer.Replica(deadURL)
	if !ok || healthy || ejections != 1 {
		t.Fatalf("dead replica state: healthy=%v ejections=%d ok=%v; want ejected once", healthy, ejections, ok)
	}
}

func TestAllReplicasDownIsUpstreamFailure(t *testing.T) {
	dead := newFakeReplica(t, "dead")
	deadURL := dead.srv.URL
	dead.srv.Close()

	balancer := newLB(t, Options{Retries: 1, FailAfter: 1, Replicas: []string{deadURL}})
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	resp, _ := post(t, lbSrv, routeBody(0))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if r := resp.Header.Get(serve.ReasonHeader); r != serve.ReasonUpstream {
		t.Fatalf("reason %q, want %q", r, serve.ReasonUpstream)
	}
}

func TestShedAtInFlightCap(t *testing.T) {
	f := newFakeReplica(t, "a")
	f.blockOn.Store(true)
	balancer := newLB(t, Options{MaxInFlight: 1, Retries: 1}, f)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Holds the only slot until the block channel is released.
		resp, err := http.Post(lbSrv.URL+serve.EndpointGenerate, "application/json",
			bytes.NewReader(routeBody(0)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Wait until the slot is actually held.
	deadline := time.Now().Add(2 * time.Second)
	for balancer.replica(f.srv.URL).inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := post(t, lbSrv, routeBody(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed", resp.StatusCode)
	}
	if r := resp.Header.Get(serve.ReasonHeader); r != serve.ReasonShed {
		t.Fatalf("reason %q, want %q", r, serve.ReasonShed)
	}
	close(f.block)
	wg.Wait()
	if balancer.Snapshot().Sheds == 0 {
		t.Fatal("shed not counted")
	}
}

func TestProbeEjectsAndReadmits(t *testing.T) {
	f := newFakeReplica(t, "a")
	balancer := newLB(t, Options{
		ProbeInterval: 10 * time.Millisecond,
		FailAfter:     2, OKAfter: 2,
	}, f)
	balancer.Start()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if h, _, _ := balancer.Replica(f.srv.URL); h == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitFor(true, "initial health")
	f.healthy.Store(false)
	waitFor(false, "ejection after failed probes")
	if _, ej, _ := balancer.Replica(f.srv.URL); ej != 1 {
		t.Fatalf("ejections = %d, want 1", ej)
	}
	f.healthy.Store(true)
	waitFor(true, "readmission after healthy probes")
}

// Concurrent routing vs probe updates: run with -race. Probes flip health
// while clients route; every response must be a well-formed 200 or 503.
func TestConcurrentRoutingDuringProbeChurn(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	balancer := newLB(t, Options{
		ProbeInterval: 2 * time.Millisecond,
		FailAfter:     1, OKAfter: 1, Retries: 2,
	}, a, b)
	balancer.Start()
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a.healthy.Store(i%2 == 0)
			b.draining.Store(i%3 == 0)
			time.Sleep(3 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for g := 0; g < 30; g++ {
				resp, err := http.Post(lbSrv.URL+serve.EndpointGenerate, "application/json",
					bytes.NewReader(routeBody(w*100+g)))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
}

func TestHealthzAndVars(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	balancer := newLB(t, Options{}, a, b)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	post(t, lbSrv, routeBody(0))

	resp, err := http.Get(lbSrv.URL + serve.EndpointHealth)
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Healthy != 2 || len(health.Replicas) != 2 {
		t.Fatalf("health = %+v", health)
	}

	resp, err = http.Get(lbSrv.URL + serve.EndpointVars)
	if err != nil {
		t.Fatal(err)
	}
	var vars VarsSnap
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vars.Requests != 1 || len(vars.Replicas) != 2 {
		t.Fatalf("vars = %+v", vars)
	}
	total := int64(0)
	for _, r := range vars.Replicas {
		total += r.Requests
	}
	if total != 1 {
		t.Fatalf("per-replica requests sum to %d, want 1", total)
	}
}

func TestModelsForwarded(t *testing.T) {
	a := newFakeReplica(t, "a")
	balancer := newLB(t, Options{}, a)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	resp, err := http.Get(lbSrv.URL + serve.EndpointModels)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(raw) != `{"models":[{"name":"a"}]}` {
		t.Fatalf("status %d body %s", resp.StatusCode, raw)
	}
}

func TestBadRequestsRejectedLocally(t *testing.T) {
	a := newFakeReplica(t, "a")
	balancer := newLB(t, Options{MaxBody: 256}, a)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	resp, _ := post(t, lbSrv, []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid JSON: status %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, lbSrv, bytes.Repeat([]byte("x"), 1024))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if a.generates.Load() != 0 {
		t.Fatal("bad requests reached the backend")
	}
}
