package lb

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gendt/internal/serve"
)

// Probe defaults. The intervals are deliberately short: a front tier that
// takes seconds to notice a dead replica converts every one of those
// seconds into client-visible retries.
const (
	DefaultProbeInterval = 500 * time.Millisecond
	DefaultProbeTimeout  = 2 * time.Second
	DefaultFailAfter     = 2 // consecutive failures before ejection
	DefaultOKAfter       = 2 // consecutive successes before readmission
)

// replica is the balancer's per-backend state: health (probe-driven
// ejection/readmission), Retry-After backoff, the in-flight gauge the shed
// cap reads, and metrics. All fields are atomics or guarded by mu, so
// routing reads race-free against concurrent probe updates.
type replica struct {
	name string // base URL, e.g. http://127.0.0.1:8081

	healthy     atomic.Bool
	hold        atomic.Bool // admin drain: held out of routing regardless of health
	inFlight    atomic.Int64
	availableAt atomic.Int64 // unixnano; Retry-After backoff gate

	stopProbe context.CancelFunc // cancels this replica's probe loop; set by startProbe

	mu         sync.Mutex // guards the consecutive-outcome counters
	consecFail int
	consecOK   int

	requests    atomic.Int64
	errors      atomic.Int64 // 5xx relayed from this replica
	retries     atomic.Int64 // attempts against this replica that forced a retry
	sheds       atomic.Int64 // times this replica was skipped at its in-flight cap
	ejections   atomic.Int64
	readmits    atomic.Int64
	probeFails  atomic.Int64
	latency     serve.Histogram
	lastProbeMs atomic.Int64
}

// routable reports whether the replica should receive traffic now: healthy
// per the prober, not admin-drained, and past any Retry-After backoff
// window.
func (r *replica) routable(now time.Time) bool {
	return r.healthy.Load() && !r.hold.Load() && now.UnixNano() >= r.availableAt.Load()
}

// backoff takes the replica out of routing for d without ejecting it —
// the honoring of an upstream Retry-After hint.
func (r *replica) backoff(now time.Time, d time.Duration) {
	r.availableAt.Store(now.Add(d).UnixNano())
}

// noteOK records one probe (or forward) success; okAfter consecutive
// successes readmit an ejected replica.
func (r *replica) noteOK(okAfter int) {
	r.mu.Lock()
	r.consecFail = 0
	r.consecOK++
	readmit := !r.healthy.Load() && r.consecOK >= okAfter
	if readmit {
		r.healthy.Store(true)
		r.readmits.Add(1)
	}
	r.mu.Unlock()
}

// noteFail records one probe or connect failure; failAfter consecutive
// failures eject the replica. Forward-path connect errors feed this too, so
// a SIGKILLed replica is ejected within failAfter requests even between
// probe ticks.
func (r *replica) noteFail(failAfter int) {
	r.probeFails.Add(1)
	r.mu.Lock()
	r.consecOK = 0
	r.consecFail++
	eject := r.healthy.Load() && r.consecFail >= failAfter
	if eject {
		r.healthy.Store(false)
		r.ejections.Add(1)
	}
	r.mu.Unlock()
}

// probeLoop polls the replica's /healthz until ctx is cancelled. A 200
// counts as success; any other status (a draining replica 503s the probe)
// or transport error counts as failure.
func (lb *LB) probeLoop(ctx context.Context, r *replica) {
	t := time.NewTicker(lb.opt.ProbeInterval)
	defer t.Stop()
	for {
		lb.probeOnce(ctx, r)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// probeOnce issues one health probe and feeds the ejection state machine.
func (lb *LB) probeOnce(ctx context.Context, r *replica) {
	pctx, cancel := context.WithTimeout(ctx, lb.opt.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, r.name+serve.EndpointHealth, nil)
	if err != nil {
		r.noteFail(lb.opt.FailAfter)
		return
	}
	start := time.Now()
	resp, err := lb.probeClient.Do(req)
	r.lastProbeMs.Store(int64(time.Since(start) / time.Millisecond))
	if err != nil {
		r.noteFail(lb.opt.FailAfter)
		return
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		r.noteOK(lb.opt.OKAfter)
		return
	}
	// A draining replica advertises when to re-probe; honor it as backoff
	// on top of the ejection bookkeeping.
	if ra := retryAfter(resp.Header); ra > 0 {
		r.backoff(time.Now(), ra)
	}
	r.noteFail(lb.opt.FailAfter)
}

// retryAfter parses a Retry-After header as delay seconds (the only form
// gendt-serve emits); 0 means absent or unparseable.
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
