// Package lb implements gendt-lb: the horizontal front tier that spreads
// /v1/generate traffic across a fleet of gendt-serve replicas. Requests are
// consistent-hashed by (model, route) so every distinct route lands on the
// same shard run after run — which is what keeps each replica's FNV-keyed
// prepared-sequence cache hot — while replica loss only remaps the keys the
// lost replica owned. The balancer actively probes /healthz, ejects and
// readmits replicas, retries 503s and connect errors against ring
// successors, and sheds with an explicit reason when every shard is
// saturated.
package lb

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"

	"gendt/internal/serve"
)

// DefaultVNodes is the virtual-node count per replica. 128 points per
// replica keeps the ownership imbalance of a small fleet within a few
// percent while the ring stays tiny (N*128 points, binary-searched).
const DefaultVNodes = 128

// ringPoint is one virtual node: a position on the hash circle owned by a
// replica.
type ringPoint struct {
	hash    uint64
	replica int // index into Ring.members
}

// Ring is an immutable consistent-hash ring over replica names. Lookup maps
// a key to the replica owning the first point clockwise of it; Sequence
// extends that to the distinct successor replicas, which is the retry and
// failover order. Because each replica contributes its own independent
// points, removing one replica only removes its points: every key it did
// not own keeps its owner, so membership changes move the minimal key set.
type Ring struct {
	members []string
	points  []ringPoint
}

// NewRing builds a ring over the given replica names with vnodes virtual
// nodes each (vnodes <= 0 takes DefaultVNodes). Construction is
// deterministic in the member set: the same names produce the same ring
// regardless of input order.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	r := &Ring{members: sorted, points: make([]ringPoint, 0, len(sorted)*vnodes)}
	for i, name := range sorted {
		h := fnv.New64a()
		h.Write([]byte(name))
		h.Write([]byte{'#'})
		base := h.Sum64()
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(base, uint64(v)), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// pointHash mixes a replica's base hash with a vnode index (splitmix64
// finalizer) so each virtual node lands independently on the circle.
func pointHash(base, v uint64) uint64 {
	z := base + v*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Members returns the replica names on the ring, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Len returns the number of replicas on the ring.
func (r *Ring) Len() int { return len(r.members) }

// With returns a new ring over this ring's members plus name (vnodes
// preserved per point density). Because each replica's points are
// independent, every key not claimed by the newcomer keeps its owner.
func (r *Ring) With(name string, vnodes int) *Ring {
	return NewRing(append(r.Members(), name), vnodes)
}

// Without returns a new ring over this ring's members minus name. Only the
// keys the removed replica owned change owner.
func (r *Ring) Without(name string, vnodes int) *Ring {
	members := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != name {
			members = append(members, m)
		}
	}
	return NewRing(members, vnodes)
}

// Lookup returns the replica owning key, or "" on an empty ring.
func (r *Ring) Lookup(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.at(key)].replica]
}

// at finds the index of the first ring point clockwise of key (wrapping).
func (r *Ring) at(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Sequence returns up to n distinct replicas in ring order starting at the
// key's owner. Index 0 is the primary; the rest are the failover order a
// retry should walk, so retried keys concentrate on the primary's
// successors instead of reshuffling the whole fleet.
func (r *Ring) Sequence(key uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, walked := r.at(key), 0; walked < len(r.points) && len(out) < n; walked++ {
		p := r.points[i]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.members[p.replica])
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// RouteKey hashes the request coordinates that determine a prepared
// sequence — the model name and the route geometry — into a ring key. It
// deliberately ignores seed and sample count: those vary per request
// without changing which replica's prep cache holds the route. The float
// hashing matches serve's prepared-sequence cache key construction
// (bit-pattern of each coordinate), so equal routes collide exactly and
// nearly-equal routes do not.
func RouteKey(model string, route []serve.RoutePoint, routeCSV string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	var b [8]byte
	u64 := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, p := range route {
		u64(math.Float64bits(p.T))
		u64(math.Float64bits(p.Lat))
		u64(math.Float64bits(p.Lon))
	}
	if routeCSV != "" {
		h.Write([]byte{1})
		h.Write([]byte(routeCSV))
	}
	return h.Sum64()
}

// String renders ring size for debug output.
func (r *Ring) String() string {
	return "ring[" + strconv.Itoa(len(r.members)) + " replicas, " +
		strconv.Itoa(len(r.points)) + " points]"
}
