package lb

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Admin endpoints. Mutations require Options.AdminToken (bearer auth);
// reads are open like the rest of /debug.
const (
	EndpointAdminReplicas = "/admin/replicas"
	EndpointAdminRollout  = "/admin/rollout"
)

// Rollout phases and steps exported in /debug/vars. The LB does not run
// the rollout itself — gendt-rollout drives it and posts state here so
// operators (and CI assertions) have one place to look.
const (
	RolloutIdle       = "idle"
	RolloutRolling    = "rolling"
	RolloutDone       = "done"
	RolloutRolledBack = "rolled_back"
)

// RolloutState is the fleet's last-known rollout position: which model is
// being promoted, how far it got, and — after a halt — why it rolled back.
type RolloutState struct {
	Phase       string `json:"phase"` // idle | rolling | done | rolled_back
	Step        string `json:"step,omitempty"`
	Model       string `json:"model,omitempty"`  // candidate being promoted
	Target      string `json:"target,omitempty"` // replica currently in hand
	Promoted    int    `json:"promoted"`
	Total       int    `json:"total"`
	Reason      string `json:"reason,omitempty"` // last halt/rollback reason
	UpdatedUnix int64  `json:"updated_unix,omitempty"`
}

// RolloutState returns the current rollout position.
func (lb *LB) RolloutState() RolloutState {
	lb.rollMu.Lock()
	defer lb.rollMu.Unlock()
	return lb.rollout
}

// SetRolloutState replaces the rollout position (stamped now).
func (lb *LB) SetRolloutState(s RolloutState) {
	lb.rollMu.Lock()
	s.UpdatedUnix = time.Now().Unix()
	lb.rollout = s
	lb.rollMu.Unlock()
}

// authorized checks the bearer token on a mutating admin request. An empty
// configured token disables the admin API entirely — a fleet should not be
// mutable by whoever can reach the port.
func (lb *LB) authorized(w http.ResponseWriter, r *http.Request) bool {
	if lb.opt.AdminToken == "" {
		lbError(w, http.StatusForbidden, "admin API disabled: start gendt-lb with -admin-token")
		return false
	}
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(auth, prefix) ||
		subtle.ConstantTimeCompare([]byte(strings.TrimPrefix(auth, prefix)), []byte(lb.opt.AdminToken)) != 1 {
		lbError(w, http.StatusUnauthorized, "invalid or missing bearer token")
		return false
	}
	return true
}

// AdminReplicaRequest is the POST /admin/replicas body.
type AdminReplicaRequest struct {
	// Action is one of add | remove | drain | readmit.
	Action string `json:"action"`
	// Replica is the backend base URL, e.g. http://127.0.0.1:8081.
	Replica string `json:"replica"`
}

// AdminReplicaResponse acknowledges a membership change.
type AdminReplicaResponse struct {
	Action  string   `json:"action"`
	Replica string   `json:"replica"`
	Members []string `json:"members"` // ring membership after the change
}

func (lb *LB) handleAdminReplicas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		lbJSON(w, http.StatusOK, map[string]any{"members": lb.Ring().Members()})
		return
	case http.MethodPost:
	default:
		w.Header().Set("Allow", "GET, POST")
		lbError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if !lb.authorized(w, r) {
		return
	}
	var req AdminReplicaRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		lbError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Replica == "" {
		lbError(w, http.StatusBadRequest, "replica is required")
		return
	}
	var err error
	switch req.Action {
	case "add":
		err = lb.AddReplica(req.Replica)
	case "remove":
		ctx, cancel := context.WithTimeout(r.Context(), lb.opt.DrainTimeout)
		err = lb.RemoveReplica(ctx, req.Replica)
		cancel()
	case "drain":
		err = lb.DrainReplica(req.Replica)
	case "readmit":
		err = lb.ReadmitReplica(req.Replica)
	default:
		lbError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown action %q (want add|remove|drain|readmit)", req.Action))
		return
	}
	if err != nil {
		lbError(w, http.StatusConflict, err.Error())
		return
	}
	lbJSON(w, http.StatusOK, AdminReplicaResponse{
		Action: req.Action, Replica: req.Replica, Members: lb.Ring().Members(),
	})
}

func (lb *LB) handleAdminRollout(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		lbJSON(w, http.StatusOK, lb.RolloutState())
		return
	case http.MethodPost:
	default:
		w.Header().Set("Allow", "GET, POST")
		lbError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if !lb.authorized(w, r) {
		return
	}
	var s RolloutState
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&s); err != nil {
		lbError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	switch s.Phase {
	case RolloutIdle, RolloutRolling, RolloutDone, RolloutRolledBack:
	default:
		lbError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown phase %q (want idle|rolling|done|rolled_back)", s.Phase))
		return
	}
	lb.SetRolloutState(s)
	lbJSON(w, http.StatusOK, lb.RolloutState())
}

// AddReplica admits a new backend: it joins the replica map and the ring
// atomically (from a router's perspective: the new ring is one pointer
// swap), starts healthy, and gets a probe loop if probing is running. Only
// keys the newcomer's vnodes claim move to it.
func (lb *LB) AddReplica(name string) error {
	lb.memberMu.Lock()
	defer lb.memberMu.Unlock()
	lb.repMu.Lock()
	if _, dup := lb.replicas[name]; dup {
		lb.repMu.Unlock()
		return fmt.Errorf("replica %q already a member", name)
	}
	r := &replica{name: name}
	r.healthy.Store(true)
	lb.replicas[name] = r
	lb.repMu.Unlock()
	lb.ringp.Store(lb.Ring().With(name, lb.opt.VNodes))
	if lb.started.Load() {
		lb.startProbe(r)
	}
	return nil
}

// DrainReplica holds a member out of routing without removing it from the
// ring: new requests skip it, in-flight ones finish, and its keys fail
// over to ring successors for the duration. Reversible via readmit.
func (lb *LB) DrainReplica(name string) error {
	r := lb.replica(name)
	if r == nil {
		return fmt.Errorf("unknown replica %q", name)
	}
	r.hold.Store(true)
	return nil
}

// ReadmitReplica lifts an admin drain and clears any Retry-After backoff
// so the replica takes traffic immediately (the health state machine is
// untouched — an ejected replica still needs OKAfter probe successes).
func (lb *LB) ReadmitReplica(name string) error {
	r := lb.replica(name)
	if r == nil {
		return fmt.Errorf("unknown replica %q", name)
	}
	r.hold.Store(false)
	r.availableAt.Store(0)
	return nil
}

// WaitDrained blocks until the replica's in-flight gauge reads zero on two
// consecutive polls (the double read closes the gap where a router already
// past the ring swap is between acquire and forward) or ctx expires.
func (lb *LB) WaitDrained(ctx context.Context, name string) error {
	r := lb.replica(name)
	if r == nil {
		return fmt.Errorf("unknown replica %q", name)
	}
	zeros := 0
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		if r.inFlight.Load() == 0 {
			zeros++
			if zeros >= 2 {
				return nil
			}
		} else {
			zeros = 0
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain of %q timed out with %d in flight: %w",
				name, r.inFlight.Load(), ctx.Err())
		case <-t.C:
		}
	}
}

// RemoveReplica takes a member out of service without dropping requests:
// the replica is held (new arrivals skip it), its keys move to ring
// successors via a ring rebuild, in-flight requests drain to zero, and
// only then does it leave the state map and lose its probe loop. If the
// drain outruns ctx the replica stays a drained member so the operator can
// retry or readmit — nothing is dropped either way.
func (lb *LB) RemoveReplica(ctx context.Context, name string) error {
	lb.memberMu.Lock()
	defer lb.memberMu.Unlock()
	r := lb.replica(name)
	if r == nil {
		return fmt.Errorf("unknown replica %q", name)
	}
	if lb.Ring().Len() <= 1 {
		return fmt.Errorf("cannot remove %q: it is the last replica", name)
	}
	r.hold.Store(true)
	lb.ringp.Store(lb.Ring().Without(name, lb.opt.VNodes))
	if err := lb.WaitDrained(ctx, name); err != nil {
		return err
	}
	lb.repMu.Lock()
	delete(lb.replicas, name)
	lb.repMu.Unlock()
	if r.stopProbe != nil {
		r.stopProbe()
	}
	return nil
}
