package lb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gendt/internal/serve"
)

// Options configures the front tier. Zero fields take the defaults below.
type Options struct {
	// Replicas are the gendt-serve base URLs the ring spans. Required.
	Replicas []string
	// VNodes is the virtual-node count per replica on the hash ring.
	VNodes int
	// Retries bounds the extra attempts after the first (against distinct
	// ring successors) on 503 or connect error.
	Retries int
	// MaxInFlight caps concurrently forwarded requests per replica; at the
	// cap the balancer walks to the next successor, and sheds with an
	// explicit reason when every routable replica is capped.
	MaxInFlight int
	// Timeout bounds one forwarded attempt end to end.
	Timeout time.Duration
	// MaxBody bounds the buffered request body (it must be buffered to be
	// replayable across retries).
	MaxBody int64

	// AdminToken enables the mutating /admin/* endpoints (replica
	// membership, rollout state) for requests bearing
	// "Authorization: Bearer <token>". Empty disables the admin API.
	AdminToken string
	// DrainTimeout bounds how long a remove waits for a replica's in-flight
	// requests to finish before giving up (the replica stays drained but
	// remains a member so the operator can retry or readmit).
	DrainTimeout time.Duration

	// Probe knobs; see the defaults in probe.go.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailAfter     int
	OKAfter       int
}

// Front-tier defaults.
const (
	DefaultRetries      = 2
	DefaultMaxInFlight  = 64
	DefaultLBTimeout    = 60 * time.Second
	DefaultDrainTimeout = 30 * time.Second
)

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = DefaultRetries
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultLBTimeout
	}
	if o.MaxBody <= 0 {
		o.MaxBody = serve.DefaultMaxBody
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	if o.FailAfter <= 0 {
		o.FailAfter = DefaultFailAfter
	}
	if o.OKAfter <= 0 {
		o.OKAfter = DefaultOKAfter
	}
	return o
}

// LB is the consistent-hashing front tier over a fleet of gendt-serve
// replicas. Membership is dynamic: the ring is an immutable value behind an
// atomic pointer (readers never lock), and the replica state map is guarded
// by a read-write mutex. Membership mutations are serialized by memberMu
// and swap in a freshly built ring, so the minimal-redistribution property
// of the immutable ring holds across live add/remove.
type LB struct {
	opt Options

	ringp atomic.Pointer[Ring]

	repMu    sync.RWMutex
	replicas map[string]*replica // keyed by base URL

	memberMu sync.Mutex // serializes membership changes and Start

	client      *http.Client // forwarding
	probeClient *http.Client

	start    time.Time
	mux      *http.ServeMux
	draining atomic.Bool

	// Front-tier counters.
	requests atomic.Int64
	errors   atomic.Int64 // responses >= 400 returned to clients
	retries  atomic.Int64
	sheds    atomic.Int64
	upstream atomic.Int64 // requests failed after exhausting candidates
	canceled atomic.Int64 // forwards abandoned because the client went away
	latency  serve.Histogram

	rollMu  sync.Mutex
	rollout RolloutState

	started  atomic.Bool
	probeCtx context.Context
	stopOnce sync.Once
	stop     context.CancelFunc
	probes   sync.WaitGroup
}

// New builds the balancer; at least one replica URL is required. Call
// Start to begin health probing (replicas start healthy, so a balancer
// without probes still routes).
func New(opt Options) (*LB, error) {
	opt = opt.withDefaults()
	if len(opt.Replicas) == 0 {
		return nil, errors.New("lb: at least one replica is required")
	}
	lb := &LB{
		opt:      opt,
		replicas: make(map[string]*replica, len(opt.Replicas)),
		start:    time.Now(),
		rollout:  RolloutState{Phase: RolloutIdle},
	}
	lb.ringp.Store(NewRing(opt.Replicas, opt.VNodes))
	for _, name := range lb.Ring().Members() {
		if _, dup := lb.replicas[name]; dup {
			return nil, fmt.Errorf("lb: duplicate replica %q", name)
		}
		r := &replica{name: name}
		r.healthy.Store(true)
		lb.replicas[name] = r
	}
	tr := &http.Transport{
		MaxIdleConns:        4 * len(opt.Replicas) * opt.MaxInFlight,
		MaxIdleConnsPerHost: 2 * opt.MaxInFlight,
		IdleConnTimeout:     90 * time.Second,
	}
	lb.client = &http.Client{Transport: tr, Timeout: opt.Timeout}
	lb.probeClient = &http.Client{Timeout: opt.ProbeTimeout}

	lb.mux = http.NewServeMux()
	lb.mux.HandleFunc(serve.EndpointGenerate, lb.handleGenerate)
	lb.mux.HandleFunc(serve.EndpointModels, lb.handleModels)
	lb.mux.HandleFunc(serve.EndpointHealth, lb.handleHealth)
	lb.mux.HandleFunc(serve.EndpointVars, lb.handleVars)
	lb.mux.HandleFunc(EndpointAdminReplicas, lb.handleAdminReplicas)
	lb.mux.HandleFunc(EndpointAdminRollout, lb.handleAdminRollout)
	return lb, nil
}

// Handler returns the root handler.
func (lb *LB) Handler() http.Handler { return lb.mux }

// Ring returns the current (immutable) hash ring.
func (lb *LB) Ring() *Ring { return lb.ringp.Load() }

// replica resolves a member's state, nil if unknown.
func (lb *LB) replica(name string) *replica {
	lb.repMu.RLock()
	defer lb.repMu.RUnlock()
	return lb.replicas[name]
}

// replicaSnapshot copies the current replica state map.
func (lb *LB) replicaSnapshot() map[string]*replica {
	lb.repMu.RLock()
	defer lb.repMu.RUnlock()
	out := make(map[string]*replica, len(lb.replicas))
	for k, v := range lb.replicas {
		out[k] = v
	}
	return out
}

// Start launches one probe loop per replica. Close stops them. Replicas
// added later get their probe loop on admission.
func (lb *LB) Start() {
	lb.memberMu.Lock()
	defer lb.memberMu.Unlock()
	if lb.started.Load() {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	lb.probeCtx = ctx
	lb.stop = cancel
	lb.started.Store(true)
	for _, r := range lb.replicaSnapshot() {
		lb.startProbe(r)
	}
}

// startProbe launches r's probe loop (caller holds memberMu; Start must
// have run).
func (lb *LB) startProbe(r *replica) {
	pctx, cancel := context.WithCancel(lb.probeCtx)
	r.stopProbe = cancel
	lb.probes.Add(1)
	go func() {
		defer lb.probes.Done()
		lb.probeLoop(pctx, r)
	}()
}

// StartDrain flips the front tier's own /healthz to failing so an outer
// balancer or orchestrator routes away during shutdown.
func (lb *LB) StartDrain() { lb.draining.Store(true) }

// Close stops the probe loops (idempotent).
func (lb *LB) Close() {
	lb.stopOnce.Do(func() {
		if lb.stop != nil {
			lb.stop()
		}
		lb.probes.Wait()
	})
}

// Replica exposes one replica's state for tests and the smoke harness.
func (lb *LB) Replica(name string) (healthy bool, ejections int64, ok bool) {
	r := lb.replica(name)
	if r == nil {
		return false, 0, false
	}
	return r.healthy.Load(), r.ejections.Load(), true
}

// lbRequest is the subset of the generate request the balancer decodes to
// compute the routing key; everything else passes through opaquely.
type lbRequest struct {
	Model    string             `json:"model"`
	Route    []serve.RoutePoint `json:"route"`
	RouteCSV string             `json:"route_csv"`
}

func (lb *LB) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		lbError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	lb.requests.Add(1)
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	lb.routeGenerate(sw, r)
	lb.latency.Observe(time.Since(start))
	if sw.code >= 400 {
		lb.errors.Add(1)
	}
}

// routeGenerate buffers the body, hashes (model, route) onto the ring, and
// walks the successor sequence until an attempt produces a relayable
// response.
func (lb *LB) routeGenerate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, lb.opt.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			lbError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		lbError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var req lbRequest
	if err := json.Unmarshal(body, &req); err != nil {
		lbError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}

	key := RouteKey(req.Model, req.Route, req.RouteCSV)
	ring := lb.Ring()
	seq := ring.Sequence(key, ring.Len())
	attempts := 0
	maxAttempts := lb.opt.Retries + 1
	sawCapFull := false
	var lastErr string

	for _, name := range seq {
		if attempts >= maxAttempts {
			break
		}
		rep := lb.replica(name)
		if rep == nil || !rep.routable(time.Now()) {
			continue
		}
		if !acquire(&rep.inFlight, int64(lb.opt.MaxInFlight)) {
			rep.sheds.Add(1)
			sawCapFull = true
			continue
		}
		attempts++
		done, reason := lb.forward(r.Context(), w, rep, body)
		rep.inFlight.Add(-1)
		if done {
			return
		}
		rep.retries.Add(1)
		lb.retries.Add(1)
		lastErr = reason
	}

	// Nothing produced a response. Saturation (every routable replica at
	// its cap, nothing attempted) is a shed; anything else — no healthy
	// replica, or retries exhausted against failing ones — is an upstream
	// failure. The distinction is what lets clients back off correctly.
	if attempts == 0 && sawCapFull {
		lb.sheds.Add(1)
		w.Header().Set("Retry-After", "1")
		w.Header().Set(serve.ReasonHeader, serve.ReasonShed)
		lbError(w, http.StatusServiceUnavailable, "all replicas at in-flight cap")
		return
	}
	lb.upstream.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(serve.DrainRetryAfter))
	w.Header().Set(serve.ReasonHeader, serve.ReasonUpstream)
	msg := "no healthy replica"
	if attempts > 0 {
		msg = fmt.Sprintf("retries exhausted after %d attempt(s)", attempts)
		if lastErr != "" {
			msg += ": " + lastErr
		}
	}
	lbError(w, http.StatusServiceUnavailable, msg)
}

// forward sends one attempt to rep. It returns done=true when a response
// was relayed to the client (any status except a retriable 503); otherwise
// the caller should walk to the next candidate, with reason describing this
// attempt's failure for the terminal error message.
func (lb *LB) forward(ctx context.Context, w http.ResponseWriter, rep *replica, body []byte) (done bool, reason string) {
	rep.requests.Add(1)
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		rep.name+serve.EndpointGenerate, bytes.NewReader(body))
	if err != nil {
		return false, err.Error()
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := lb.client.Do(req)
	if err != nil {
		// A dead request context means the CLIENT went away (closed the
		// connection or canceled) — the replica did nothing wrong, so a slow
		// client must not feed the ejection state machine. Only a transport
		// failure with a live client context (connection refused/reset, or
		// lb.client's own per-attempt Timeout firing — an upstream timeout)
		// counts against the replica.
		if ctx.Err() != nil {
			lb.canceled.Add(1)
			lbError(w, http.StatusGatewayTimeout, "client context done: "+ctx.Err().Error())
			return true, ""
		}
		rep.noteFail(lb.opt.FailAfter)
		return false, err.Error()
	}
	defer resp.Body.Close()
	rep.latency.Observe(time.Since(start))

	if resp.StatusCode == http.StatusServiceUnavailable {
		// Draining or overloaded replica: honor its Retry-After as a
		// routing backoff and try the next ring successor.
		if ra := retryAfter(resp.Header); ra > 0 {
			rep.backoff(time.Now(), ra)
		}
		why := resp.Header.Get(serve.ReasonHeader)
		if why == "" {
			why = "503"
		}
		io.Copy(io.Discard, resp.Body)
		return false, "replica 503 (" + why + ")"
	}

	if resp.StatusCode >= 500 {
		rep.errors.Add(1)
	}
	relay(w, resp)
	return true, ""
}

// relay copies an upstream response through to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After", serve.ReasonHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// acquire increments the gauge iff it is below cap.
func acquire(g *atomic.Int64, cap int64) bool {
	for {
		cur := g.Load()
		if cur >= cap {
			return false
		}
		if g.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// handleModels forwards the model listing to the first routable replica —
// every replica serves the same registry in a homogeneous fleet.
func (lb *LB) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		lbError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	now := time.Now()
	for _, name := range lb.Ring().Members() {
		rep := lb.replica(name)
		if rep == nil || !rep.routable(now) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, name+serve.EndpointModels, nil)
		if err != nil {
			continue
		}
		resp, err := lb.client.Do(req)
		if err != nil {
			if r.Context().Err() == nil {
				rep.noteFail(lb.opt.FailAfter)
			}
			continue
		}
		relay(w, resp)
		resp.Body.Close()
		return
	}
	w.Header().Set(serve.ReasonHeader, serve.ReasonUpstream)
	lbError(w, http.StatusServiceUnavailable, "no healthy replica")
}

// ReplicaHealth is one replica's state in the /healthz response.
type ReplicaHealth struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"` // admin-held out of routing
}

// HealthResponse is the front tier's /healthz body.
type HealthResponse struct {
	Status   string          `json:"status"`
	Healthy  int             `json:"healthy"`
	Replicas []ReplicaHealth `json:"replicas"`
	UptimeS  float64         `json:"uptime_s"`
}

func (lb *LB) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Status: "ok", UptimeS: time.Since(lb.start).Seconds()}
	for _, name := range lb.Ring().Members() {
		rep := lb.replica(name)
		if rep == nil {
			continue
		}
		h := rep.healthy.Load()
		if h {
			resp.Healthy++
		}
		resp.Replicas = append(resp.Replicas, ReplicaHealth{
			Name: name, Healthy: h, Draining: rep.hold.Load(),
		})
	}
	code := http.StatusOK
	switch {
	case lb.draining.Load():
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(serve.DrainRetryAfter))
		w.Header().Set(serve.ReasonHeader, serve.ReasonDraining)
	case resp.Healthy == 0:
		resp.Status = "no-healthy-replicas"
		code = http.StatusServiceUnavailable
	}
	lbJSON(w, code, resp)
}

// ReplicaSnap is one replica's /debug/vars entry.
type ReplicaSnap struct {
	Healthy    bool                `json:"healthy"`
	Draining   bool                `json:"draining,omitempty"`
	Member     bool                `json:"member"` // still on the ring
	InFlight   int64               `json:"in_flight"`
	Requests   int64               `json:"requests"`
	Errors     int64               `json:"errors"`
	Retries    int64               `json:"retries"`
	Sheds      int64               `json:"sheds"`
	Ejections  int64               `json:"ejections"`
	Readmits   int64               `json:"readmissions"`
	ProbeFails int64               `json:"probe_failures"`
	ProbeMs    int64               `json:"last_probe_ms"`
	Latency    serve.HistogramSnap `json:"latency"`
}

// VarsSnap is the front tier's /debug/vars document.
type VarsSnap struct {
	UptimeS  float64                `json:"uptime_s"`
	Requests int64                  `json:"requests"`
	Errors   int64                  `json:"errors"`
	Retries  int64                  `json:"retries"`
	Sheds    int64                  `json:"sheds"`
	Upstream int64                  `json:"upstream_failures"`
	Canceled int64                  `json:"client_cancels"`
	Latency  serve.HistogramSnap    `json:"latency"`
	Rollout  RolloutState           `json:"rollout"`
	Replicas map[string]ReplicaSnap `json:"replicas"`
}

// Snapshot renders the balancer's metrics (the /debug/vars handler, the
// smoke harness, and the rollout error-budget watcher read it).
func (lb *LB) Snapshot() VarsSnap {
	s := VarsSnap{
		UptimeS:  time.Since(lb.start).Seconds(),
		Requests: lb.requests.Load(),
		Errors:   lb.errors.Load(),
		Retries:  lb.retries.Load(),
		Sheds:    lb.sheds.Load(),
		Upstream: lb.upstream.Load(),
		Canceled: lb.canceled.Load(),
		Latency:  lb.latency.Snapshot(),
		Rollout:  lb.RolloutState(),
	}
	members := make(map[string]bool)
	for _, m := range lb.Ring().Members() {
		members[m] = true
	}
	reps := lb.replicaSnapshot()
	s.Replicas = make(map[string]ReplicaSnap, len(reps))
	for name, r := range reps {
		s.Replicas[name] = ReplicaSnap{
			Healthy:    r.healthy.Load(),
			Draining:   r.hold.Load(),
			Member:     members[name],
			InFlight:   r.inFlight.Load(),
			Requests:   r.requests.Load(),
			Errors:     r.errors.Load(),
			Retries:    r.retries.Load(),
			Sheds:      r.sheds.Load(),
			Ejections:  r.ejections.Load(),
			Readmits:   r.readmits.Load(),
			ProbeFails: r.probeFails.Load(),
			ProbeMs:    r.lastProbeMs.Load(),
			Latency:    r.latency.Snapshot(),
		}
	}
	return s
}

func (lb *LB) handleVars(w http.ResponseWriter, _ *http.Request) {
	lbJSON(w, http.StatusOK, lb.Snapshot())
}

// statusWriter records the relayed status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func lbJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func lbError(w http.ResponseWriter, code int, msg string) {
	lbJSON(w, code, map[string]string{"error": msg})
}
