package lb

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gendt/internal/serve"
)

// adminPost issues an authenticated admin request and returns status + body.
func adminPost(t *testing.T, lbSrv *httptest.Server, path, token string, body any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, lbSrv.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(got)
}

func TestAdminAuthRequired(t *testing.T) {
	a := newFakeReplica(t, "a")
	req := AdminReplicaRequest{Action: "drain", Replica: a.srv.URL}

	// No token configured: mutations are hard-disabled.
	balancer := newLB(t, Options{}, a)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()
	if code, body := adminPost(t, lbSrv, EndpointAdminReplicas, "whatever", req); code != http.StatusForbidden {
		t.Fatalf("no-token LB accepted mutation: %d %s", code, body)
	}

	// Token configured: wrong or missing bearer is rejected, right one works.
	secured := newLB(t, Options{AdminToken: "s3cret"}, a)
	secSrv := httptest.NewServer(secured.Handler())
	defer secSrv.Close()
	if code, _ := adminPost(t, secSrv, EndpointAdminReplicas, "", req); code != http.StatusUnauthorized {
		t.Fatalf("missing token accepted: %d", code)
	}
	if code, _ := adminPost(t, secSrv, EndpointAdminReplicas, "wrong", req); code != http.StatusUnauthorized {
		t.Fatalf("wrong token accepted: %d", code)
	}
	if code, body := adminPost(t, secSrv, EndpointAdminReplicas, "s3cret", req); code != http.StatusOK {
		t.Fatalf("valid token rejected: %d %s", code, body)
	}
	// GET membership stays open.
	resp, err := http.Get(secSrv.URL + EndpointAdminReplicas)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET membership: %d", resp.StatusCode)
	}
}

func TestAddReplicaRoutesAndMinimallyRedistributes(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	balancer := newLB(t, Options{AdminToken: "t"}, a, b)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	before := balancer.Ring()
	keys := make([]uint64, 4096)
	owners := make([]string, len(keys))
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15
		owners[i] = before.Lookup(keys[i])
	}

	if code, body := adminPost(t, lbSrv, EndpointAdminReplicas, "t",
		AdminReplicaRequest{Action: "add", Replica: c.srv.URL}); code != http.StatusOK {
		t.Fatalf("add: %d %s", code, body)
	}
	after := balancer.Ring()
	if after.Len() != 3 {
		t.Fatalf("ring size %d after add, want 3", after.Len())
	}
	// Minimal redistribution: every moved key must have moved TO the
	// newcomer, never between the incumbents.
	moved := 0
	for i, k := range keys {
		now := after.Lookup(k)
		if now != owners[i] {
			moved++
			if now != c.srv.URL {
				t.Fatalf("key %d moved %s -> %s, not to the added replica", k, owners[i], now)
			}
		}
	}
	if moved == 0 {
		t.Fatal("added replica owns no keys")
	}

	// The newcomer actually takes traffic.
	body := routeBodyOwnedBy(t, after, c.srv.URL)
	resp, got := post(t, lbSrv, body)
	if resp.StatusCode != http.StatusOK || got != `{"backend":"c"}` {
		t.Fatalf("routed to added replica: %d %s", resp.StatusCode, got)
	}

	// Duplicate add conflicts.
	if code, _ := adminPost(t, lbSrv, EndpointAdminReplicas, "t",
		AdminReplicaRequest{Action: "add", Replica: c.srv.URL}); code != http.StatusConflict {
		t.Fatalf("duplicate add: %d, want 409", code)
	}
}

func TestDrainReadmitCycle(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	balancer := newLB(t, Options{AdminToken: "t", Retries: 1}, a, b)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	body := routeBodyOwnedBy(t, balancer.Ring(), a.srv.URL)
	if resp, got := post(t, lbSrv, body); resp.StatusCode != http.StatusOK || got != `{"backend":"a"}` {
		t.Fatalf("pre-drain: %d %s", resp.StatusCode, got)
	}

	if code, _ := adminPost(t, lbSrv, EndpointAdminReplicas, "t",
		AdminReplicaRequest{Action: "drain", Replica: a.srv.URL}); code != http.StatusOK {
		t.Fatalf("drain: %d", code)
	}
	// a is held: its traffic fails over to b, but a is still a ring member.
	if resp, got := post(t, lbSrv, body); resp.StatusCode != http.StatusOK || got != `{"backend":"b"}` {
		t.Fatalf("during drain: %d %s, want failover to b", resp.StatusCode, got)
	}
	if balancer.Ring().Len() != 2 {
		t.Fatal("drain changed ring membership")
	}
	snap := balancer.Snapshot()
	if !snap.Replicas[a.srv.URL].Draining {
		t.Fatal("drained replica not reported draining in /debug/vars")
	}

	if code, _ := adminPost(t, lbSrv, EndpointAdminReplicas, "t",
		AdminReplicaRequest{Action: "readmit", Replica: a.srv.URL}); code != http.StatusOK {
		t.Fatalf("readmit: %d", code)
	}
	if resp, got := post(t, lbSrv, body); resp.StatusCode != http.StatusOK || got != `{"backend":"a"}` {
		t.Fatalf("post-readmit: %d %s, want a again", resp.StatusCode, got)
	}
}

// TestRemoveDrainsInFlight is the zero-drop property: a remove issued while
// the replica holds an in-flight request must wait for it, the request must
// complete successfully, and only then does the replica leave the fleet.
func TestRemoveDrainsInFlight(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	a.blockOn.Store(true)
	balancer := newLB(t, Options{AdminToken: "t"}, a, b)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	body := routeBodyOwnedBy(t, balancer.Ring(), a.srv.URL)
	type result struct {
		code int
		body string
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Post(lbSrv.URL+serve.EndpointGenerate, "application/json", bytes.NewReader(body))
		if err != nil {
			inFlight <- result{0, err.Error()}
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inFlight <- result{resp.StatusCode, string(raw)}
	}()

	// Wait for the request to be parked inside a.
	deadline := time.Now().Add(2 * time.Second)
	for balancer.replica(a.srv.URL).inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached replica a")
		}
		time.Sleep(time.Millisecond)
	}

	removed := make(chan struct{})
	go func() {
		defer close(removed)
		if err := balancer.RemoveReplica(context.Background(), a.srv.URL); err != nil {
			t.Errorf("remove: %v", err)
		}
	}()

	// The remove must not complete while the request is parked.
	select {
	case <-removed:
		t.Fatal("remove returned with a request still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(a.block) // let the parked request finish
	select {
	case r := <-inFlight:
		if r.code != http.StatusOK || r.body != `{"backend":"a"}` {
			t.Fatalf("in-flight request dropped during remove: %d %s", r.code, r.body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case <-removed:
	case <-time.After(2 * time.Second):
		t.Fatal("remove never completed after drain")
	}

	if balancer.Ring().Len() != 1 {
		t.Fatalf("ring size %d after remove, want 1", balancer.Ring().Len())
	}
	if balancer.replica(a.srv.URL) != nil {
		t.Fatal("removed replica still in state map")
	}
	// Its traffic now lands on b.
	if resp, got := post(t, lbSrv, body); resp.StatusCode != http.StatusOK || got != `{"backend":"b"}` {
		t.Fatalf("post-remove: %d %s", resp.StatusCode, got)
	}
}

func TestRemoveLastReplicaRefused(t *testing.T) {
	a := newFakeReplica(t, "a")
	balancer := newLB(t, Options{AdminToken: "t"}, a)
	if err := balancer.RemoveReplica(context.Background(), a.srv.URL); err == nil {
		t.Fatal("removing the last replica succeeded")
	}
}

func TestRemoveTimeoutKeepsMember(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	a.blockOn.Store(true)
	balancer := newLB(t, Options{AdminToken: "t"}, a, b)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	body := routeBodyOwnedBy(t, balancer.Ring(), a.srv.URL)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(lbSrv.URL+serve.EndpointGenerate, "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for balancer.replica(a.srv.URL).inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached replica a")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := balancer.RemoveReplica(ctx, a.srv.URL); err == nil {
		t.Fatal("remove succeeded despite a parked in-flight request")
	}
	// The replica stays a drained member: state intact, off the ring, so
	// the operator can readmit (which must also rejoin it to the ring... it
	// never left the map, but the ring was already rebuilt without it —
	// that is the documented drained-but-member state).
	if balancer.replica(a.srv.URL) == nil {
		t.Fatal("timed-out remove deleted the replica state")
	}
	close(a.block)
	<-done
}

// TestConcurrentMembershipChurn hammers add/remove/drain/readmit from
// several goroutines while client traffic flows, under -race. Throughout,
// every response must be a 200 from a current member, and at the end the
// ring must equal the surviving member set with the minimal-redistribution
// property still holding for a fresh add.
func TestConcurrentMembershipChurn(t *testing.T) {
	// a core fleet that never leaves, plus churners that come and go.
	core := []*fakeReplica{newFakeReplica(t, "core0"), newFakeReplica(t, "core1")}
	churn := []*fakeReplica{newFakeReplica(t, "ch0"), newFakeReplica(t, "ch1"), newFakeReplica(t, "ch2")}
	balancer := newLB(t, Options{AdminToken: "t", Retries: 2}, core...)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var fails atomic.Int64

	// Churners: each goroutine cycles its own replica through
	// add → drain → readmit → remove.
	for _, f := range churn {
		wg.Add(1)
		go func(f *fakeReplica) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := balancer.AddReplica(f.srv.URL); err != nil {
					t.Errorf("add %s: %v", f.id, err)
					return
				}
				if i%2 == 0 {
					if err := balancer.DrainReplica(f.srv.URL); err != nil {
						t.Errorf("drain %s: %v", f.id, err)
						return
					}
					if err := balancer.ReadmitReplica(f.srv.URL); err != nil {
						t.Errorf("readmit %s: %v", f.id, err)
						return
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := balancer.RemoveReplica(ctx, f.srv.URL)
				cancel()
				if err != nil {
					t.Errorf("remove %s: %v", f.id, err)
					return
				}
			}
		}(f)
	}

	// Clients: distinct routes against the moving fleet.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(lbSrv.URL+serve.EndpointGenerate, "application/json",
					bytes.NewReader(routeBody(c*1000+i%64)))
				if err != nil {
					fails.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fails.Add(1)
				}
			}
		}(c)
	}

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := fails.Load(); n > 0 {
		t.Fatalf("%d client requests failed during membership churn", n)
	}
	// The fleet converged back to the core: every churner is gone.
	members := balancer.Ring().Members()
	if len(members) != len(core) {
		t.Fatalf("ring has %d members after churn, want %d (%v)", len(members), len(core), members)
	}
	// And the minimal-redistribution property still holds live.
	before := balancer.Ring()
	ownersBefore := make(map[uint64]string)
	for i := 0; i < 2048; i++ {
		k := uint64(i) * 0x9e3779b97f4a7c15
		ownersBefore[k] = before.Lookup(k)
	}
	extra := newFakeReplica(t, "extra")
	if err := balancer.AddReplica(extra.srv.URL); err != nil {
		t.Fatal(err)
	}
	after := balancer.Ring()
	for k, owner := range ownersBefore {
		if now := after.Lookup(k); now != owner && now != extra.srv.URL {
			t.Fatalf("key %d moved between incumbents (%s -> %s) on post-churn add", k, owner, now)
		}
	}
}

// TestClientCancelDoesNotEject is the regression test for the forward-path
// ctx fix: a client that gives up mid-request must not count as a replica
// failure — with FailAfter=1 a single miscounted cancel would eject.
func TestClientCancelDoesNotEject(t *testing.T) {
	f := newFakeReplica(t, "a")
	f.blockOn.Store(true)
	defer close(f.block)
	balancer := newLB(t, Options{FailAfter: 1}, f)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		lbSrv.URL+serve.EndpointGenerate, bytes.NewReader(routeBody(0)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the request is parked in the replica, then walk away.
	deadline := time.Now().Add(2 * time.Second)
	for balancer.replica(f.srv.URL).inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the replica")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request reported success")
	}

	// Give the forward path a moment to unwind, then assert the replica
	// was NOT penalized: still healthy, zero ejections, cancel counted.
	deadline = time.Now().Add(2 * time.Second)
	for balancer.Snapshot().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client cancel never accounted")
		}
		time.Sleep(time.Millisecond)
	}
	healthy, ejections, ok := balancer.Replica(f.srv.URL)
	if !ok || !healthy || ejections != 0 {
		t.Fatalf("client cancel penalized the replica: healthy=%v ejections=%d", healthy, ejections)
	}
}

func TestRolloutStateRoundTrip(t *testing.T) {
	a := newFakeReplica(t, "a")
	balancer := newLB(t, Options{AdminToken: "t"}, a)
	lbSrv := httptest.NewServer(balancer.Handler())
	defer lbSrv.Close()

	if s := balancer.RolloutState(); s.Phase != RolloutIdle {
		t.Fatalf("initial rollout phase %q, want idle", s.Phase)
	}
	want := RolloutState{
		Phase: RolloutRolledBack, Step: "gate", Model: "cand.gob",
		Target: a.srv.URL, Promoted: 1, Total: 3, Reason: "gate failed: dist/ks",
	}
	if code, body := adminPost(t, lbSrv, EndpointAdminRollout, "t", want); code != http.StatusOK {
		t.Fatalf("post rollout state: %d %s", code, body)
	}
	if code, _ := adminPost(t, lbSrv, EndpointAdminRollout, "t",
		RolloutState{Phase: "bogus"}); code != http.StatusBadRequest {
		t.Fatal("bogus phase accepted")
	}

	// Readable via GET /admin/rollout and /debug/vars.
	resp, err := http.Get(lbSrv.URL + serve.EndpointVars)
	if err != nil {
		t.Fatal(err)
	}
	var vars VarsSnap
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := vars.Rollout
	if got.Phase != want.Phase || got.Reason != want.Reason || got.Promoted != want.Promoted || got.UpdatedUnix == 0 {
		t.Fatalf("rollout state in /debug/vars = %+v, want %+v", got, want)
	}
}
