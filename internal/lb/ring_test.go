package lb

import (
	"fmt"
	"math/rand"
	"testing"

	"gendt/internal/serve"
)

func testMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func testKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

// Placement must be a pure function of the member set: input order and
// reconstruction cannot change where any key lands.
func TestRingDeterministicPlacement(t *testing.T) {
	members := testMembers(5)
	shuffled := append([]string(nil), members...)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a := NewRing(members, 64)
	b := NewRing(shuffled, 64)
	for _, k := range testKeys(5000, 1) {
		if ga, gb := a.Lookup(k), b.Lookup(k); ga != gb {
			t.Fatalf("key %x: placement depends on input order: %q vs %q", k, ga, gb)
		}
	}
}

// Ownership must be roughly uniform: with 128 vnodes each of 5 replicas
// should own near 1/5 of the key space.
func TestRingBalance(t *testing.T) {
	members := testMembers(5)
	r := NewRing(members, DefaultVNodes)
	counts := make(map[string]int)
	keys := testKeys(20000, 2)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / float64(len(keys))
		if frac < 0.10 || frac > 0.35 {
			t.Errorf("replica %s owns %.1f%% of keys; want near 20%%", m, 100*frac)
		}
	}
}

// Removing a replica must move exactly the keys it owned: every other
// key keeps its owner (the property that makes ejection cheap for the
// prepared-sequence caches), and the moved fraction is near 1/N.
func TestRingMinimalRedistributionOnRemove(t *testing.T) {
	members := testMembers(6)
	removed := members[2]
	full := NewRing(members, DefaultVNodes)
	reduced := NewRing(append(append([]string(nil), members[:2]...), members[3:]...), DefaultVNodes)

	keys := testKeys(20000, 4)
	moved, owned := 0, 0
	for _, k := range keys {
		before := full.Lookup(k)
		after := reduced.Lookup(k)
		if before == removed {
			owned++
			if after == removed {
				t.Fatalf("key %x still maps to removed replica", k)
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed replica changed owner; want 0", moved)
	}
	n := float64(len(members))
	frac := float64(owned) / float64(len(keys))
	if frac < 0.5/n || frac > 2.5/n {
		t.Errorf("removed replica owned %.1f%% of keys; want near %.1f%%", 100*frac, 100/n)
	}
}

// Adding a replica must only move keys onto the newcomer.
func TestRingMinimalRedistributionOnAdd(t *testing.T) {
	members := testMembers(5)
	added := "http://10.0.0.99:8080"
	before := NewRing(members, DefaultVNodes)
	after := NewRing(append(append([]string(nil), members...), added), DefaultVNodes)

	keys := testKeys(20000, 5)
	gained := 0
	for _, k := range keys {
		a, b := before.Lookup(k), after.Lookup(k)
		if a == b {
			continue
		}
		if b != added {
			t.Fatalf("key %x moved %q -> %q, not to the added replica", k, a, b)
		}
		gained++
	}
	n := float64(len(members) + 1)
	frac := float64(gained) / float64(len(keys))
	if frac < 0.5/n || frac > 2.5/n {
		t.Errorf("added replica gained %.1f%% of keys; want near %.1f%%", 100*frac, 100/n)
	}
}

func TestRingSequence(t *testing.T) {
	members := testMembers(4)
	r := NewRing(members, 32)
	for _, k := range testKeys(200, 6) {
		seq := r.Sequence(k, len(members))
		if len(seq) != len(members) {
			t.Fatalf("sequence has %d entries, want %d", len(seq), len(members))
		}
		if seq[0] != r.Lookup(k) {
			t.Fatalf("sequence[0] %q != Lookup %q", seq[0], r.Lookup(k))
		}
		seen := make(map[string]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("duplicate member %q in sequence", m)
			}
			seen[m] = true
		}
	}
	if got := r.Sequence(42, 2); len(got) != 2 {
		t.Fatalf("bounded sequence length %d, want 2", len(got))
	}
	var empty Ring
	if got := empty.Sequence(42, 3); got != nil {
		t.Fatalf("empty ring sequence = %v, want nil", got)
	}
}

func TestRouteKey(t *testing.T) {
	route := []serve.RoutePoint{{T: 0, Lat: 48.2, Lon: 16.4}, {T: 1, Lat: 48.3, Lon: 16.5}}
	k1 := RouteKey("m", route, "")
	if k2 := RouteKey("m", route, ""); k2 != k1 {
		t.Fatal("RouteKey not deterministic")
	}
	if RouteKey("other", route, "") == k1 {
		t.Fatal("model name should affect the key")
	}
	shifted := []serve.RoutePoint{{T: 0, Lat: 48.2, Lon: 16.4}, {T: 1, Lat: 48.3, Lon: 16.5000001}}
	if RouteKey("m", shifted, "") == k1 {
		t.Fatal("route geometry should affect the key")
	}
	if RouteKey("m", nil, "0,48.2,16.4\n1,48.3,16.5\n") == RouteKey("m", nil, "0,48.2,16.4\n1,48.3,16.6\n") {
		t.Fatal("route_csv should affect the key")
	}
}
