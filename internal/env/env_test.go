package env

import (
	"math"
	"testing"

	"gendt/internal/geo"
)

var origin = geo.Point{Lat: 51.5, Lon: 7.46}

func newTestMap() *Map {
	return NewMap(MapSpec{Origin: origin, ExtentKm: 12, CoreKm: 2, PoIPerKm2: 60, Seed: 11})
}

func TestAttributeNamesCount(t *testing.T) {
	if len(AttributeNames) != NumAttributes {
		t.Fatalf("AttributeNames has %d entries, want %d", len(AttributeNames), NumAttributes)
	}
	if NumAttributes != 26 {
		t.Fatalf("NumAttributes = %d, paper specifies 26", NumAttributes)
	}
}

func TestContextDimension(t *testing.T) {
	m := newTestMap()
	ctx := m.ContextAt(origin, 500)
	if len(ctx) != 26 {
		t.Fatalf("context vector has %d entries, want 26", len(ctx))
	}
}

func TestLandUseSharesSumToOne(t *testing.T) {
	m := newTestMap()
	pts := []geo.Point{
		origin,
		geo.Offset(origin, 45, 3000),
		geo.Offset(origin, 200, 5000),
	}
	for _, p := range pts {
		ctx := m.ContextAt(p, 500)
		sum := 0.0
		for i := 0; i < NumLandUse; i++ {
			if ctx[i] < 0 {
				t.Errorf("negative land-use share %v at %v", ctx[i], p)
			}
			sum += ctx[i]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("land-use shares sum to %v at %v, want 1", sum, p)
		}
	}
}

func TestPoICountsNonNegativeIntegers(t *testing.T) {
	m := newTestMap()
	ctx := m.ContextAt(origin, 500)
	for i := NumLandUse; i < NumAttributes; i++ {
		if ctx[i] < 0 || ctx[i] != math.Trunc(ctx[i]) {
			t.Errorf("PoI count %s = %v, want non-negative integer", AttributeNames[i], ctx[i])
		}
	}
}

func TestCoreIsUrbanPeripheryIsNot(t *testing.T) {
	m := newTestMap()
	core := m.ContextAt(origin, 500)
	// Urban share near the core should dominate.
	urban := core[LUContinuousUrban] + core[LUHighDenseUrban]
	if urban < 0.5 {
		t.Errorf("core urban share = %v, want > 0.5", urban)
	}
	edge := m.ContextAt(geo.Offset(origin, 0, 11000), 500)
	edgeUrban := edge[LUContinuousUrban] + edge[LUHighDenseUrban]
	if edgeUrban > urban {
		t.Errorf("edge urban share %v exceeds core %v", edgeUrban, urban)
	}
}

func TestPoIDensityDecaysOutward(t *testing.T) {
	m := newTestMap()
	countAll := func(ctx []float64) float64 {
		s := 0.0
		for i := NumLandUse; i < NumAttributes; i++ {
			s += ctx[i]
		}
		return s
	}
	core := countAll(m.ContextAt(origin, 1000))
	far := countAll(m.ContextAt(geo.Offset(origin, 90, 9000), 1000))
	if core <= far {
		t.Errorf("core PoI count %v not above periphery %v", core, far)
	}
}

func TestContextVariesAcrossSpace(t *testing.T) {
	m := newTestMap()
	a := m.ContextAt(origin, 500)
	b := m.ContextAt(geo.Offset(origin, 135, 6000), 500)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("environment context identical at core and 6 km out")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	m1 := NewMap(MapSpec{Origin: origin, ExtentKm: 8, Seed: 5})
	m2 := NewMap(MapSpec{Origin: origin, ExtentKm: 8, Seed: 5})
	a := m1.ContextAt(geo.Offset(origin, 30, 2000), 500)
	b := m2.ContextAt(geo.Offset(origin, 30, 2000), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("maps with same seed differ at attribute %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestOutsideRegionDefaults(t *testing.T) {
	m := newTestMap()
	far := geo.Offset(origin, 0, 100000)
	if lu := m.LandUseAt(far); lu != LUIsolatedStructures {
		t.Errorf("land use far outside region = %d, want isolated structures", lu)
	}
}

func TestOriginAccessor(t *testing.T) {
	m := newTestMap()
	if m.Origin() != origin {
		t.Errorf("Origin() = %v, want %v", m.Origin(), origin)
	}
}

func TestMultiCoreMap(t *testing.T) {
	city2 := geo.Offset(origin, 90, 15000)
	m := NewMap(MapSpec{
		Origin: origin, ExtentKm: 40, CellM: 400, PoIPerKm2: 10, Seed: 8,
		Cores: []Core{
			{Center: origin, RadiusKm: 2},
			{Center: city2, RadiusKm: 1.5},
		},
	})
	urbanShare := func(p geo.Point) float64 {
		c := m.ContextAt(p, 500)
		return c[LUContinuousUrban] + c[LUHighDenseUrban] + c[LUMediumDenseUrban]
	}
	u1, u2 := urbanShare(origin), urbanShare(city2)
	mid := urbanShare(geo.Offset(origin, 90, 7500))
	if u1 < 0.5 || u2 < 0.5 {
		t.Errorf("city cores not urban: %v, %v", u1, u2)
	}
	if mid >= u1 || mid >= u2 {
		t.Errorf("midpoint between cities (%v) should be less urban than cores (%v, %v)", mid, u1, u2)
	}
}
