// Package env models the GenDT environment context (paper §2.3.4 and
// Table 11): 26 attributes around a device location — land-use type shares
// from an urban-atlas-style raster, plus point-of-interest counts from an
// OSM-style point set. Because neither data source is available offline,
// the package procedurally synthesizes a coherent land-use map and PoI
// layout whose spatial statistics vary from dense city core to highway
// countryside, which is what drives the ResGen residual in GenDT.
package env

import (
	"math"
	"math/rand"

	"gendt/internal/geo"
)

// Land-use attribute indices (12 attributes, paper Table 11 left column).
const (
	LUContinuousUrban = iota
	LUHighDenseUrban
	LUMediumDenseUrban
	LULowDenseUrban
	LUVeryLowDenseUrban
	LUIsolatedStructures
	LUGreenUrban
	LUIndustrialCommercial
	LUAirSeaPorts
	LULeisureFacilities
	LUBarrenLands
	LUSea
	NumLandUse // 12
)

// PoI attribute indices (14 attributes, paper Table 11 right column),
// offset by NumLandUse within the full context vector.
const (
	PoITourism = iota
	PoICafe
	PoIParking
	PoIRestaurant
	PoIPostPolice
	PoITrafficSignal
	PoIOffice
	PoIPublicTransport
	PoIShop
	PoIPrimaryRoads
	PoISecondaryRoads
	PoIMotorways
	PoIRailwayStations
	PoITramStops
	NumPoI // 14
)

// NumAttributes is the full environment-context dimensionality N_g = 26.
const NumAttributes = NumLandUse + NumPoI

// AttributeNames lists the 26 attribute names in vector order.
var AttributeNames = []string{
	"continuous_urban", "high_dense_urban", "medium_dense_urban",
	"low_dense_urban", "very_low_dense_urban", "isolated_structures",
	"green_urban", "industrial_commercial", "air_sea_ports",
	"leisure_facilities", "barren_lands", "sea",
	"tourism", "cafe", "parking", "restaurant", "post_police",
	"traffic_signal", "office", "public_transport", "shop",
	"primary_roads", "secondary_roads", "motorways",
	"railway_stations", "tram_stops",
}

// Map is a procedural environment: a land-use class raster plus PoI points,
// centred on an origin. The zero value is not usable; construct with NewMap.
type Map struct {
	origin   geo.Point
	proj     *geo.Projection
	extentM  float64 // half-edge of the covered square, metres
	cellM    float64 // raster cell edge, metres
	n        int     // raster is n x n
	landUse  []uint8 // class per raster cell
	pois     [NumPoI][]pointXY
	poiGrid  map[[2]int][]poiRef // spatial hash over all PoIs
	poiCellM float64
}

type pointXY struct{ x, y float64 }

type poiRef struct {
	kind int
	idx  int
}

// Core is one dense urban centre within a map. Maps may have several —
// Dataset B spans multiple cities connected by highways.
type Core struct {
	Center   geo.Point
	RadiusKm float64
}

// MapSpec parameterizes map synthesis.
type MapSpec struct {
	Origin    geo.Point
	ExtentKm  float64 // edge of covered square region, km
	CellM     float64 // raster resolution (default 250 m)
	CoreKm    float64 // radius of the dense city core, km (single-core maps)
	Cores     []Core  // optional multiple city cores; overrides CoreKm
	PoIPerKm2 float64 // overall PoI density in the core (falls off outward)
	Seed      int64
}

// NewMap synthesizes an environment map. Land use transitions from
// continuous-urban core through decreasing densities to countryside; green
// areas, industrial zones, and water are splattered as coherent blobs.
// PoIs cluster in the core with density decaying with distance.
func NewMap(spec MapSpec) *Map {
	if spec.CellM <= 0 {
		spec.CellM = 250
	}
	if spec.CoreKm <= 0 {
		spec.CoreKm = 2
	}
	if spec.PoIPerKm2 <= 0 {
		spec.PoIPerKm2 = 40
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	half := spec.ExtentKm * 500
	n := int(math.Ceil(2 * half / spec.CellM))
	m := &Map{
		origin:   spec.Origin,
		proj:     geo.NewProjection(spec.Origin),
		extentM:  half,
		cellM:    spec.CellM,
		n:        n,
		landUse:  make([]uint8, n*n),
		poiGrid:  make(map[[2]int][]poiRef),
		poiCellM: 500,
	}
	coreM := spec.CoreKm * 1000

	// Resolve the core set: explicit multi-core spec, or a single core at
	// the origin. Cores are stored in planar coordinates.
	type coreXY struct{ x, y, radM float64 }
	var coresXY []coreXY
	if len(spec.Cores) > 0 {
		for _, c := range spec.Cores {
			x, y := m.proj.ToXY(c.Center)
			coresXY = append(coresXY, coreXY{x, y, c.RadiusKm * 1000})
		}
	} else {
		coresXY = []coreXY{{0, 0, coreM}}
	}
	// qDist returns the normalized distance to the nearest core (1.0 = one
	// core radius out).
	qDist := func(x, y float64) float64 {
		best := math.Inf(1)
		for _, c := range coresXY {
			q := math.Hypot(x-c.x, y-c.y) / c.radM
			if q < best {
				best = q
			}
		}
		return best
	}

	// Base land use by normalized distance to the nearest core, with
	// positional noise so class boundaries are irregular.
	for gy := 0; gy < n; gy++ {
		for gx := 0; gx < n; gx++ {
			x := -half + (float64(gx)+0.5)*spec.CellM
			y := -half + (float64(gy)+0.5)*spec.CellM
			q := qDist(x, y) + 0.25*wobble(x, y, spec.Seed)
			var class uint8
			switch {
			case q < 0.5:
				class = LUContinuousUrban
			case q < 1.0:
				class = LUHighDenseUrban
			case q < 1.8:
				class = LUMediumDenseUrban
			case q < 2.8:
				class = LULowDenseUrban
			case q < 4.0:
				class = LUVeryLowDenseUrban
			default:
				class = LUIsolatedStructures
			}
			m.landUse[gy*n+gx] = class
		}
	}
	// Coherent blobs of special classes.
	blob := func(class uint8, count int, radiusM float64) {
		for b := 0; b < count; b++ {
			// Keep special-class blobs out of the dense city cores so the
			// cores remain urban, as in real urban atlases.
			var cx, cy float64
			for tries := 0; tries < 64; tries++ {
				cx = (rng.Float64()*2 - 1) * half
				cy = (rng.Float64()*2 - 1) * half
				if qDist(cx, cy) > 1.2 {
					break
				}
			}
			rad := radiusM * (0.5 + rng.Float64())
			g0x := int((cx - rad + half) / spec.CellM)
			g1x := int((cx + rad + half) / spec.CellM)
			g0y := int((cy - rad + half) / spec.CellM)
			g1y := int((cy + rad + half) / spec.CellM)
			for gy := max(0, g0y); gy <= min(n-1, g1y); gy++ {
				for gx := max(0, g0x); gx <= min(n-1, g1x); gx++ {
					x := -half + (float64(gx)+0.5)*spec.CellM
					y := -half + (float64(gy)+0.5)*spec.CellM
					if math.Hypot(x-cx, y-cy) < rad {
						m.landUse[gy*n+gx] = class
					}
				}
			}
		}
	}
	blob(LUGreenUrban, 2+n/20, 600)
	blob(LUIndustrialCommercial, 1+n/30, 800)
	blob(LULeisureFacilities, 1+n/40, 400)
	blob(LUBarrenLands, n/40, 700)
	if rng.Float64() < 0.3 {
		blob(LUSea, 1, 2500)
	}
	if rng.Float64() < 0.2 {
		blob(LUAirSeaPorts, 1, 1200)
	}

	// PoIs: density decays with distance from the core; different kinds have
	// different core affinity (cafes cluster centrally, motorways don't).
	affinity := [NumPoI]float64{
		PoITourism: 2.5, PoICafe: 3, PoIParking: 1.2, PoIRestaurant: 2.5,
		PoIPostPolice: 1.5, PoITrafficSignal: 1.8, PoIOffice: 2.2,
		PoIPublicTransport: 1.6, PoIShop: 2.8, PoIPrimaryRoads: 1.0,
		PoISecondaryRoads: 0.8, PoIMotorways: 0.3, PoIRailwayStations: 1.4,
		PoITramStops: 2.0,
	}
	share := [NumPoI]float64{
		PoITourism: 0.04, PoICafe: 0.10, PoIParking: 0.10, PoIRestaurant: 0.12,
		PoIPostPolice: 0.03, PoITrafficSignal: 0.12, PoIOffice: 0.10,
		PoIPublicTransport: 0.10, PoIShop: 0.14, PoIPrimaryRoads: 0.05,
		PoISecondaryRoads: 0.05, PoIMotorways: 0.02, PoIRailwayStations: 0.03,
		PoITramStops: 0.10,
	}
	areaKm2 := spec.ExtentKm * spec.ExtentKm
	total := int(spec.PoIPerKm2 * areaKm2)
	for i := 0; i < total; i++ {
		kind := samplePoIKind(share, rng)
		// Rejection-sample a location biased toward the nearest core per
		// the kind's core affinity.
		var x, y float64
		for tries := 0; tries < 16; tries++ {
			x = (rng.Float64()*2 - 1) * half
			y = (rng.Float64()*2 - 1) * half
			p := math.Exp(-affinity[kind] * qDist(x, y) / 2)
			if rng.Float64() < p {
				break
			}
		}
		idx := len(m.pois[kind])
		m.pois[kind] = append(m.pois[kind], pointXY{x, y})
		k := [2]int{int(math.Floor(x / m.poiCellM)), int(math.Floor(y / m.poiCellM))}
		m.poiGrid[k] = append(m.poiGrid[k], poiRef{kind, idx})
	}
	return m
}

// wobble is a cheap deterministic pseudo-noise in [-1, 1] based on position.
func wobble(x, y float64, seed int64) float64 {
	s := math.Sin(x*0.0013+float64(seed%97)) * math.Cos(y*0.0011+float64(seed%89))
	return s
}

func samplePoIKind(share [NumPoI]float64, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for k, s := range share {
		acc += s
		if u < acc {
			return k
		}
	}
	return NumPoI - 1
}

// LandUseAt returns the land-use class at a location, or LUIsolatedStructures
// outside the covered region.
func (m *Map) LandUseAt(p geo.Point) uint8 {
	x, y := m.proj.ToXY(p)
	gx := int((x + m.extentM) / m.cellM)
	gy := int((y + m.extentM) / m.cellM)
	if gx < 0 || gy < 0 || gx >= m.n || gy >= m.n {
		return LUIsolatedStructures
	}
	return m.landUse[gy*m.n+gx]
}

// ContextAt computes the 26-dimensional environment context vector at a
// location: the first NumLandUse entries are the fractional share of each
// land-use class within the radius (metres); the remaining NumPoI entries
// are the counts of each PoI kind within the radius. The paper uses a
// 500 m radius.
func (m *Map) ContextAt(p geo.Point, radius float64) []float64 {
	out := make([]float64, NumAttributes)
	x0, y0 := m.proj.ToXY(p)

	// Land-use shares: sample raster cells within the radius.
	g0x := int((x0 - radius + m.extentM) / m.cellM)
	g1x := int((x0 + radius + m.extentM) / m.cellM)
	g0y := int((y0 - radius + m.extentM) / m.cellM)
	g1y := int((y0 + radius + m.extentM) / m.cellM)
	count := 0
	for gy := max(0, g0y); gy <= min(m.n-1, g1y); gy++ {
		for gx := max(0, g0x); gx <= min(m.n-1, g1x); gx++ {
			cx := -m.extentM + (float64(gx)+0.5)*m.cellM
			cy := -m.extentM + (float64(gy)+0.5)*m.cellM
			if math.Hypot(cx-x0, cy-y0) <= radius {
				out[m.landUse[gy*m.n+gx]]++
				count++
			}
		}
	}
	if count > 0 {
		for i := 0; i < NumLandUse; i++ {
			out[i] /= float64(count)
		}
	}

	// PoI counts via the spatial hash.
	r := int(math.Ceil(radius/m.poiCellM)) + 1
	k0 := [2]int{int(math.Floor(x0 / m.poiCellM)), int(math.Floor(y0 / m.poiCellM))}
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for _, ref := range m.poiGrid[[2]int{k0[0] + dx, k0[1] + dy}] {
				pt := m.pois[ref.kind][ref.idx]
				if math.Hypot(pt.x-x0, pt.y-y0) <= radius {
					out[NumLandUse+ref.kind]++
				}
			}
		}
	}
	return out
}

// Origin returns the map's anchor point.
func (m *Map) Origin() geo.Point { return m.origin }
