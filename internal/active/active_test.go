package active

import (
	"math"
	"testing"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/radio"
)

func setup(t *testing.T) (subsets [][]*core.Sequence, eval *core.Sequence, cfg Config) {
	t.Helper()
	spec := dataset.Spec{Seed: 61, Scale: 0.02}
	d := dataset.NewDatasetA(spec)
	chans := []core.ChannelSpec{core.KPIChannel(radio.KPIRSRP)}
	parts := dataset.Partition(d.TrainRuns(), 4)
	for _, p := range parts {
		subsets = append(subsets, core.PrepareAll(p, chans, 6))
	}
	eval = core.PrepareSequence(d.TestRuns()[0], chans, 6)
	cfg = Config{
		Model: core.Config{
			Channels: chans,
			Hidden:   8, BatchLen: 10, StepLen: 5, MaxCells: 6,
			Epochs: 2, Seed: 3,
		},
		Steps: 2, MCK: 2, Seed: 7,
	}
	return subsets, eval, cfg
}

func TestRunUncertaintyProducesSteps(t *testing.T) {
	subsets, eval, cfg := setup(t)
	steps := Run(Uncertainty, subsets, eval, 0, cfg)
	if len(steps) != cfg.Steps+1 {
		t.Fatalf("got %d steps, want %d", len(steps), cfg.Steps+1)
	}
	for i, s := range steps {
		if s.SubsetsUsed != i+1 {
			t.Errorf("step %d uses %d subsets", i, s.SubsetsUsed)
		}
		if s.FracUsed <= 0 || s.FracUsed > 1 {
			t.Errorf("step %d frac %v", i, s.FracUsed)
		}
		if math.IsNaN(s.MAE) || math.IsNaN(s.DTW) || math.IsNaN(s.HWD) {
			t.Errorf("step %d has NaN metrics", i)
		}
		if s.MAE < 0 || s.DTW < 0 || s.HWD < 0 {
			t.Errorf("step %d has negative metrics", i)
		}
	}
}

func TestRunRandomProducesSteps(t *testing.T) {
	subsets, eval, cfg := setup(t)
	steps := Run(Random, subsets, eval, 0, cfg)
	if len(steps) != cfg.Steps+1 {
		t.Fatalf("got %d steps, want %d", len(steps), cfg.Steps+1)
	}
}

func TestRunStopsWhenSubsetsExhausted(t *testing.T) {
	subsets, eval, cfg := setup(t)
	cfg.Steps = 99
	steps := Run(Random, subsets, eval, 0, cfg)
	if len(steps) != len(subsets) {
		t.Fatalf("got %d steps for %d subsets", len(steps), len(subsets))
	}
	if last := steps[len(steps)-1]; last.FracUsed != 1 {
		t.Errorf("final frac = %v, want 1", last.FracUsed)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	subsets, eval, cfg := setup(t)
	a := Run(Random, subsets, eval, 0, cfg)
	b := Run(Random, subsets, eval, 0, cfg)
	for i := range a {
		if a[i].MAE != b[i].MAE || a[i].SubsetsUsed != b[i].SubsetsUsed {
			t.Fatalf("same-seed runs diverged at step %d", i)
		}
	}
}
