// Package active implements the paper's §6.2.2 measurement-efficiency
// experiment: an active-learning loop that, starting from one training
// subset, repeatedly trains GenDT and adds the remaining subset on which
// the model's §6.2.1 uncertainty measure is highest — compared against
// adding subsets uniformly at random. The paper finds the uncertainty
// policy reaches peak fidelity with ~10% of the data (90% measurement
// efficiency) while random selection needs ~20%.
package active

import (
	"math/rand"

	"gendt/internal/core"
	"gendt/internal/metrics"
)

// Step records one round of the selection loop.
type Step struct {
	SubsetsUsed int
	FracUsed    float64 // fraction of available subsets in the training set
	MAE         float64
	DTW         float64
	HWD         float64
}

// Policy selects which remaining subset to add next.
type Policy int

// Selection policies.
const (
	Uncertainty Policy = iota // pick the subset with highest model uncertainty
	Random                    // pick uniformly at random
)

// Config parameterizes a selection run.
type Config struct {
	Model   core.Config // model configuration (retrained from scratch each step)
	Steps   int         // number of subsets to add (rounds)
	MCK     int         // MC-dropout passes for the uncertainty measure
	Seed    int64
	Channel int // evaluated channel index within Model.Channels
}

// Run executes the selection loop. subsets are the candidate training
// subsets (each a slice of prepared sequences); eval is the held-out
// evaluation sequence (the paper's long trajectory S_L). The loop starts
// from subsets[start] and performs cfg.Steps additions, returning the
// fidelity trajectory.
func Run(policy Policy, subsets [][]*core.Sequence, eval *core.Sequence, start int, cfg Config) []Step {
	rng := rand.New(rand.NewSource(cfg.Seed))
	selected := map[int]bool{start: true}
	var out []Step

	evalModel := func() (*core.Model, Step) {
		var train []*core.Sequence
		for i := range subsets {
			if selected[i] {
				train = append(train, subsets[i]...)
			}
		}
		mc := cfg.Model
		mc.Seed = cfg.Seed + int64(len(selected))
		m := core.NewModel(mc)
		m.Train(train, nil)
		gen := m.Generate(eval)
		ch := cfg.Channel
		spec := mc.Channels[ch]
		genP := make([]float64, len(gen))
		realP := make([]float64, eval.Len())
		for t := range gen {
			genP[t] = spec.Denormalize(gen[t][ch])
			realP[t] = spec.Denormalize(eval.KPIs[t][ch])
		}
		mae, _ := metrics.MAE(realP, genP)
		dtw, _ := metrics.DTW(realP, genP, 50)
		hwd, _ := metrics.HWD(realP, genP, 40)
		return m, Step{
			SubsetsUsed: len(selected),
			FracUsed:    float64(len(selected)) / float64(len(subsets)),
			MAE:         mae, DTW: dtw, HWD: hwd,
		}
	}

	m, st := evalModel()
	out = append(out, st)
	for round := 0; round < cfg.Steps && len(selected) < len(subsets); round++ {
		next := -1
		switch policy {
		case Uncertainty:
			// Evaluate model uncertainty on each remaining subset and take
			// the most uncertain one — the most informative data to
			// measure next.
			best := -1.0
			for i := range subsets {
				if selected[i] || len(subsets[i]) == 0 {
					continue
				}
				u := 0.0
				for _, s := range subsets[i] {
					u += m.ModelUncertainty(s, cfg.MCK)
				}
				u /= float64(len(subsets[i]))
				if u > best {
					best = u
					next = i
				}
			}
		case Random:
			var remaining []int
			for i := range subsets {
				if !selected[i] {
					remaining = append(remaining, i)
				}
			}
			if len(remaining) > 0 {
				next = remaining[rng.Intn(len(remaining))]
			}
		}
		if next < 0 {
			break
		}
		selected[next] = true
		m, st = evalModel()
		out = append(out, st)
	}
	return out
}
