package serve

import (
	"runtime"
	"strconv"
	"sync/atomic"
	"time"
)

// latencyBucketsMs are the upper bounds (milliseconds) of the fixed
// logarithmic latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMs = [...]float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// Histogram is a fixed-bucket latency histogram with atomic counters; safe
// for concurrent observation without locks. The zero value is ready to use.
// It is exported so sibling serving-tier packages (the gendt-lb front tier)
// report latency in the same buckets and JSON shape as gendt-serve.
type Histogram struct {
	counts  [len(latencyBucketsMs) + 1]atomic.Int64
	sumNs   atomic.Int64
	observe atomic.Int64
}

func (h *Histogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.observe.Add(1)
}

// HistogramSnap is the JSON rendering of a Histogram.
type HistogramSnap struct {
	Count   int64            `json:"count"`
	MeanMs  float64          `json:"mean_ms"`
	Buckets map[string]int64 `json:"buckets_le_ms"`
}

// Snapshot renders the histogram's current counts.
func (h *Histogram) Snapshot() HistogramSnap {
	s := HistogramSnap{Buckets: make(map[string]int64, len(latencyBucketsMs)+1)}
	s.Count = h.observe.Load()
	if s.Count > 0 {
		s.MeanMs = float64(h.sumNs.Load()) / float64(s.Count) / float64(time.Millisecond)
	}
	for i := range latencyBucketsMs {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets[fmtMs(latencyBucketsMs[i])] = n
		}
	}
	if n := h.counts[len(latencyBucketsMs)].Load(); n > 0 {
		s.Buckets["+Inf"] = n
	}
	return s
}

// Bucket bounds are integral milliseconds.
func fmtMs(v float64) string { return strconv.Itoa(int(v)) }

// sizeBuckets are the upper bounds of the realized-batch-size histogram
// (requests coalesced per GenerateJobs call); the final implicit bucket
// is +Inf. Powers of two up to DefaultMaxBatch — a batch of 1 means no
// coalescing happened, the top buckets mean the window is doing its job.
var sizeBuckets = [...]int64{1, 2, 4, 8, 16, 32, 64}

// SizeHistogram counts integer observations in fixed power-of-two
// buckets; safe for concurrent use. The zero value is ready to use.
type SizeHistogram struct {
	counts [len(sizeBuckets) + 1]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

func (h *SizeHistogram) Observe(v int) {
	i := 0
	for i < len(sizeBuckets) && int64(v) > sizeBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(v))
	h.n.Add(1)
}

// SizeHistogramSnap is the JSON rendering of a SizeHistogram.
type SizeHistogramSnap struct {
	Count   int64            `json:"count"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets_le"`
}

// Snapshot renders the histogram's current counts.
func (h *SizeHistogram) Snapshot() SizeHistogramSnap {
	s := SizeHistogramSnap{Buckets: make(map[string]int64, len(sizeBuckets)+1)}
	s.Count = h.n.Load()
	if s.Count > 0 {
		s.Mean = float64(h.sum.Load()) / float64(s.Count)
	}
	for i, b := range sizeBuckets {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets[strconv.FormatInt(b, 10)] = n
		}
	}
	if n := h.counts[len(sizeBuckets)].Load(); n > 0 {
		s.Buckets["+Inf"] = n
	}
	return s
}

// endpointStats tracks one endpoint's request count, error count, in-flight
// gauge, and latency histogram.
type endpointStats struct {
	Requests atomic.Int64
	Errors   atomic.Int64
	InFlight atomic.Int64
	Latency  Histogram
}

type endpointSnap struct {
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"`
	InFlight int64         `json:"in_flight"`
	Latency  HistogramSnap `json:"latency"`
}

// Metrics aggregates the server's observability state, exposed as JSON at
// /debug/vars. All counters are atomics: observation never contends with
// request handling.
type Metrics struct {
	start     time.Time
	endpoints map[string]*endpointStats // fixed key set, created upfront

	// Generation-specific counters.
	GenerateNs      atomic.Int64  // cumulative ns spent inside GenerateJobs
	GenerateSamples atomic.Int64  // samples generated (jobs executed)
	Batches         atomic.Int64  // GenerateJobs calls issued by the batcher
	BatchedRequests atomic.Int64  // requests that shared a batch with >=1 other
	MaxBatch        atomic.Int64  // largest coalesced batch observed (requests)
	BatchSize       SizeHistogram // realized batch sizes (requests per batch)
	PrepHits        atomic.Int64  // prepared-sequence cache hits
	PrepMisses      atomic.Int64  // prepared-sequence cache misses
}

// NewMetrics creates the metrics state for the given endpoint names.
func NewMetrics(endpoints ...string) *Metrics {
	m := &Metrics{start: time.Now(), endpoints: make(map[string]*endpointStats, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointStats{}
	}
	return m
}

// Endpoint returns the stats for a registered endpoint name, or nil.
func (m *Metrics) Endpoint(name string) *endpointStats { return m.endpoints[name] }

// ObserveBatch records one executed batch of n coalesced requests covering
// samples generation jobs that took d.
func (m *Metrics) ObserveBatch(n, samples int, d time.Duration) {
	m.Batches.Add(1)
	m.GenerateSamples.Add(int64(samples))
	m.GenerateNs.Add(int64(d))
	if n > 1 {
		m.BatchedRequests.Add(int64(n))
	}
	m.BatchSize.Observe(n)
	for {
		cur := m.MaxBatch.Load()
		if int64(n) <= cur || m.MaxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// varsSnap is the /debug/vars JSON document.
type varsSnap struct {
	UptimeS   float64                 `json:"uptime_s"`
	Endpoints map[string]endpointSnap `json:"endpoints"`

	Generate struct {
		Samples         int64             `json:"samples"`
		NsPerSample     float64           `json:"ns_per_sample"`
		Batches         int64             `json:"batches"`
		BatchedRequests int64             `json:"batched_requests"`
		MaxBatch        int64             `json:"max_batch"`
		BatchSizeHist   SizeHistogramSnap `json:"batch_size_hist"`
		PrepCacheHits   int64             `json:"prep_cache_hits"`
		PrepCacheMisses int64             `json:"prep_cache_misses"`
	} `json:"generate"`

	Runtime struct {
		Goroutines  int    `json:"goroutines"`
		AllocBytes  uint64 `json:"alloc_bytes"`
		TotalAlloc  uint64 `json:"total_alloc_bytes"`
		SysBytes    uint64 `json:"sys_bytes"`
		HeapObjects uint64 `json:"heap_objects"`
		NumGC       uint32 `json:"num_gc"`
	} `json:"runtime"`
}

// Snapshot renders the current metrics, sampling runtime.MemStats.
func (m *Metrics) Snapshot() varsSnap {
	var s varsSnap
	s.UptimeS = time.Since(m.start).Seconds()
	s.Endpoints = make(map[string]endpointSnap, len(m.endpoints))
	for name, e := range m.endpoints {
		s.Endpoints[name] = endpointSnap{
			Requests: e.Requests.Load(),
			Errors:   e.Errors.Load(),
			InFlight: e.InFlight.Load(),
			Latency:  e.Latency.Snapshot(),
		}
	}
	s.Generate.Samples = m.GenerateSamples.Load()
	if s.Generate.Samples > 0 {
		s.Generate.NsPerSample = float64(m.GenerateNs.Load()) / float64(s.Generate.Samples)
	}
	s.Generate.Batches = m.Batches.Load()
	s.Generate.BatchedRequests = m.BatchedRequests.Load()
	s.Generate.MaxBatch = m.MaxBatch.Load()
	s.Generate.BatchSizeHist = m.BatchSize.Snapshot()
	s.Generate.PrepCacheHits = m.PrepHits.Load()
	s.Generate.PrepCacheMisses = m.PrepMisses.Load()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.Runtime.Goroutines = runtime.NumGoroutine()
	s.Runtime.AllocBytes = ms.Alloc
	s.Runtime.TotalAlloc = ms.TotalAlloc
	s.Runtime.SysBytes = ms.Sys
	s.Runtime.HeapObjects = ms.HeapObjects
	s.Runtime.NumGC = ms.NumGC
	return s
}
