package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"gendt/internal/core"
)

// ErrDraining is returned to requests that arrive while the batcher shuts
// down.
var ErrDraining = errors.New("serve: server draining")

// batchItem is one admitted request: its generation jobs (one per sample)
// and the channel its results come back on. done is buffered so the run
// loop never blocks on a caller that gave up (context timeout).
type batchItem struct {
	jobs []core.GenJob
	done chan [][][]float64
}

// Batcher is the micro-batching admission layer for one model. Concurrent
// /v1/generate requests that land within the batching window are coalesced
// into a single GenerateJobs call, amortizing the clone/fan-out cost of
// the parallel generation engine across requests. Because every job is
// generated from a clone seeded with the job's own seed, coalescing never
// changes results: a request's output is bit-identical whether it ran
// alone or shared a batch (see core.GenerateJobs).
type Batcher struct {
	model  func() core.Generator // resolved per batch so hot reload takes effect
	window time.Duration
	max    int // max coalesced jobs per GenerateJobs call
	met    *Metrics

	ch chan *batchItem
	wg sync.WaitGroup

	// drain guards ch against send-after-close: Generate holds the read
	// side while admitting, Close takes the write side to flip closed.
	drain  sync.RWMutex
	closed bool

	// batchBuf/jobsBuf are the run loop's reusable batch assembly buffers
	// (only the single run goroutine touches them): steady-state batching
	// allocates nothing per batch beyond the results themselves.
	batchBuf []*batchItem
	jobsBuf  []core.GenJob
}

// DefaultMaxBatch bounds the jobs coalesced into one GenerateJobs call.
const DefaultMaxBatch = 64

// NewBatcher starts the admission loop. window <= 0 disables waiting: a
// batch still absorbs whatever is already queued, but never delays the
// first request (the correct setting for latency-sensitive single-client
// use).
func NewBatcher(model func() core.Generator, window time.Duration, maxBatch int, met *Metrics) *Batcher {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	b := &Batcher{
		model:  model,
		window: window,
		max:    maxBatch,
		met:    met,
		ch:     make(chan *batchItem, 4*maxBatch),
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// Generate admits one request of len(jobs) samples and blocks until the
// batch executes or ctx expires. On ctx expiry the work may still execute
// (a batch in flight cannot be cancelled) but the result is discarded.
func (b *Batcher) Generate(ctx context.Context, jobs []core.GenJob) ([][][]float64, error) {
	item := &batchItem{jobs: jobs, done: make(chan [][][]float64, 1)}
	b.drain.RLock()
	if b.closed {
		b.drain.RUnlock()
		return nil, ErrDraining
	}
	select {
	case b.ch <- item:
		b.drain.RUnlock()
	case <-ctx.Done():
		b.drain.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case out := <-item.done:
		return out, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops admission and drains: items already accepted are executed
// before the run loop exits. Safe to call more than once.
func (b *Batcher) Close() {
	b.drain.Lock()
	if !b.closed {
		b.closed = true
		close(b.ch)
	}
	b.drain.Unlock()
	b.wg.Wait()
}

func (b *Batcher) run() {
	defer b.wg.Done()
	for {
		item, ok := <-b.ch
		if !ok {
			return
		}
		batch := b.collect(item)
		b.execute(batch)
	}
}

// collect gathers the current batch: the triggering item plus whatever
// else arrives within the window, up to the job cap.
func (b *Batcher) collect(first *batchItem) []*batchItem {
	batch := append(b.batchBuf[:0], first)
	defer func() { b.batchBuf = batch }()
	jobs := len(first.jobs)
	if b.window <= 0 {
		for jobs < b.max {
			select {
			case it, ok := <-b.ch:
				if !ok {
					return batch
				}
				batch = append(batch, it)
				jobs += len(it.jobs)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(b.window)
	defer timer.Stop()
	for jobs < b.max {
		select {
		case it, ok := <-b.ch:
			if !ok {
				return batch
			}
			batch = append(batch, it)
			jobs += len(it.jobs)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

func (b *Batcher) execute(batch []*batchItem) {
	jobs := b.jobsBuf[:0]
	for _, it := range batch {
		jobs = append(jobs, it.jobs...)
	}
	b.jobsBuf = jobs
	start := time.Now()
	outs := b.model().GenerateJobs(jobs)
	if b.met != nil {
		b.met.ObserveBatch(len(batch), len(jobs), time.Since(start))
	}
	off := 0
	for i, it := range batch {
		it.done <- outs[off : off+len(it.jobs)]
		off += len(it.jobs)
		batch[i] = nil // don't retain delivered items across batches
	}
}
