package serve

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"gendt/internal/core"
)

// stubGen is a trivial core.Generator whose GenerateJobs returns a shared
// preallocated result per job: batcher benchmarks measure the admission
// layer's own overhead, not model time.
type stubGen struct {
	out [][]float64
}

func newStubGen() *stubGen {
	out := make([][]float64, 2)
	for c := range out {
		out[c] = make([]float64, 8)
	}
	return &stubGen{out: out}
}

func (g *stubGen) GenerateSeeded(seq *core.Sequence, seed int64) [][]float64 { return nil }
func (g *stubGen) GenerateJobs(jobs []core.GenJob) [][][]float64 {
	outs := make([][][]float64, len(jobs))
	for i := range outs {
		outs[i] = g.out
	}
	return outs
}
func (g *stubGen) DenormalizeSeries(norm [][]float64) [][]float64 { return norm }
func (g *stubGen) ModelConfig() core.Config                       { return core.Config{} }
func (g *stubGen) ParamCount() int                                { return 0 }
func (g *stubGen) Precision() core.Precision                      { return core.PrecisionF32 }
func (g *stubGen) Fingerprint() uint64                            { return 0 }
func (g *stubGen) WithWorkers(n int) core.Generator               { return g }

// BenchmarkBatcherGenerate measures the admission layer's steady-state
// per-request cost over a no-op generator, and asserts the run loop's
// buffer pooling holds: a request round-trip must stay within a small
// constant allocation budget (the request-side item/channel plus the
// per-batch result slice), with no per-batch batch/jobs slice growth.
func BenchmarkBatcherGenerate(b *testing.B) {
	gen := newStubGen()
	bt := NewBatcher(func() core.Generator { return gen }, 0, DefaultMaxBatch, nil)
	defer bt.Close()
	jobs := []core.GenJob{{Seed: 1}}
	ctx := context.Background()
	// Warm the pooled buffers before measuring.
	if _, err := bt.Generate(ctx, jobs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Generate(ctx, jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	perOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	// Unpooled assembly cost ~2 extra allocs per single-request batch and
	// grows with batch size; 8 leaves room for the irreducible per-request
	// allocations (item, done channel, outs, stub result header) plus noise.
	if perOp > 8 {
		b.Fatalf("batcher steady state allocates %.1f objects/op, want <= 8 (buffer pooling regressed?)", perOp)
	}
}

func TestSizeHistogram(t *testing.T) {
	var h SizeHistogram
	for _, v := range []int{1, 1, 2, 3, 8, 9, 64, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	wantMean := (1.0 + 1 + 2 + 3 + 8 + 9 + 64 + 100) / 8.0
	if s.Mean != wantMean {
		t.Fatalf("mean = %g, want %g", s.Mean, wantMean)
	}
	want := map[string]int64{"1": 2, "2": 1, "4": 1, "8": 1, "16": 1, "64": 1, "+Inf": 1}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
}
