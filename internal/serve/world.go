package serve

import (
	"hash/fnv"
	"math"
	"sync"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/geo"
)

// World wraps the resident simulated world a serve process annotates
// routes against, plus a bounded cache of prepared sequences so repeated
// requests for the same (model shape, route) skip annotation and tensor
// preparation entirely. The underlying world is read-only after
// construction, so annotation can run for many requests concurrently; the
// cache is the only synchronized state.
type World struct {
	ds   *dataset.Dataset
	name string

	mu    sync.Mutex
	cache map[uint64]*core.Sequence
	order []uint64 // insertion order for FIFO eviction
	limit int
}

// DefaultPrepCache bounds the prepared-sequence cache (sequences for long
// routes hold per-step cell/env tensors, so the cap is deliberately small).
const DefaultPrepCache = 64

// NewWorld builds the dataset world once; name is "A" or "B".
func NewWorld(name string, spec dataset.Spec) (*World, error) {
	ds, err := dataset.NewByName(name, spec)
	if err != nil {
		return nil, err
	}
	return NewWorldFrom(ds), nil
}

// NewWorldFrom wraps an already-built dataset. Callers that need both the
// raw dataset (held-out runs, simulator ground truth) and a serving world —
// the statistical validation gate is one — construct the dataset once and
// share it instead of paying for world synthesis twice.
func NewWorldFrom(ds *dataset.Dataset) *World {
	return &World{ds: ds, name: ds.Name, cache: make(map[uint64]*core.Sequence), limit: DefaultPrepCache}
}

// Name reports which dataset world is resident ("A" or "B").
func (w *World) Name() string { return w.name }

// Dataset exposes the resident dataset (tests pull known routes from it).
func (w *World) Dataset() *dataset.Dataset { return w.ds }

// Prepare annotates the route with the world's network and environment
// context and converts it to the model-ready sequence, memoizing the
// result. Prepared sequences are read-only on the generation path, so a
// cached sequence can back any number of concurrent requests.
func (w *World) Prepare(tr geo.Trajectory, g core.Generator) (*core.Sequence, bool) {
	cfg := g.ModelConfig()
	key := prepKey(tr, cfg)
	w.mu.Lock()
	if seq, ok := w.cache[key]; ok {
		w.mu.Unlock()
		return seq, true
	}
	w.mu.Unlock()

	// Annotation runs unlocked: it is the expensive part and is safe to
	// race (worst case two requests prepare the same route and one result
	// wins the cache slot).
	run := dataset.Run{Scenario: "serve", Traj: tr, Meas: w.ds.World.Annotate(tr)}
	seq := core.PrepareSequenceWith(run, cfg.Channels, core.PrepareOptions{
		MaxCells: cfg.MaxCells, LoadAware: cfg.LoadAware,
	})

	w.mu.Lock()
	if _, ok := w.cache[key]; !ok {
		w.cache[key] = seq
		w.order = append(w.order, key)
		for len(w.order) > w.limit {
			delete(w.cache, w.order[0])
			w.order = w.order[1:]
		}
	}
	w.mu.Unlock()
	return seq, false
}

// prepKey hashes the route and the model properties that shape a prepared
// sequence (channel set, cell cap, load awareness). Two models trained with
// the same channels and preparation options share cache entries.
func prepKey(tr geo.Trajectory, cfg core.Config) uint64 {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	for _, ch := range cfg.Channels {
		h.Write([]byte(ch.Name))
		h.Write([]byte{0})
	}
	u64(uint64(cfg.MaxCells))
	if cfg.LoadAware {
		u64(1)
	} else {
		u64(0)
	}
	for _, p := range tr {
		f64(p.T)
		f64(p.Lat)
		f64(p.Lon)
	}
	return h.Sum64()
}
