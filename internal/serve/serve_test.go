package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/geo"
)

// fixture state shared by all tests: one tiny trained model saved to disk,
// one resident world, one short unseen route. Built once per test binary.
var fix struct {
	once      sync.Once
	err       error
	dir       string
	modelPath string
	world     *World
	route     geo.Trajectory
}

var fixSpec = dataset.Spec{Seed: 11, Scale: 0.015}

func fixCfg() core.Config {
	return core.Config{
		Channels: core.RSRPRSRQChannels(),
		Hidden:   10, NoiseDim: 2, ResNoise: 2, Lags: 2,
		BatchLen: 12, StepLen: 6, MaxCells: 6,
		Epochs: 1, Seed: 1, Workers: 1,
	}
}

func setup(t *testing.T) {
	t.Helper()
	fix.once.Do(func() {
		dir, err := os.MkdirTemp("", "gendt-serve-test")
		if err != nil {
			fix.err = err
			return
		}
		fix.dir = dir
		d := dataset.NewDatasetA(fixSpec)
		chans := core.RSRPRSRQChannels()
		train := core.PrepareAll(d.TrainRuns(), chans, 6)
		m := core.NewModel(fixCfg())
		m.Train(train, nil)
		fix.modelPath = filepath.Join(dir, "model.json")
		if err := m.SaveFile(fix.modelPath); err != nil {
			fix.err = err
			return
		}
		fix.world, fix.err = NewWorld("A", fixSpec)
		if fix.err != nil {
			return
		}
		tr := d.TestRuns()[0].Traj
		if len(tr) > 40 {
			tr = tr[:40]
		}
		fix.route = tr
	})
	if fix.err != nil {
		t.Fatalf("fixture: %v", fix.err)
	}
}

// newServer builds a Server over the fixture model with the given options
// (Registry/World filled in) and wraps it in an httptest server.
func newServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	setup(t)
	if opt.Registry == nil {
		reg, err := NewRegistry([]ModelSource{{Name: "gendt", Path: fix.modelPath}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt.Registry = reg
	}
	if opt.World == nil {
		opt.World = fix.world
	}
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func routePoints() []RoutePoint {
	out := make([]RoutePoint, len(fix.route))
	for i, p := range fix.route {
		out[i] = RoutePoint{T: p.T, Lat: p.Lat, Lon: p.Lon}
	}
	return out
}

func postGenerate(t *testing.T, url string, req GenerateRequest) (int, GenerateResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+EndpointGenerate, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out GenerateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decode: %v\n%s", err, buf.String())
		}
	}
	return resp.StatusCode, out, buf.String()
}

func TestHealthz(t *testing.T) {
	_, ts := newServer(t, Options{})
	resp, err := http.Get(ts.URL + EndpointHealth)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Models != 1 || h.World != "A" {
		t.Fatalf("health = %+v", h)
	}
}

func TestModels(t *testing.T) {
	_, ts := newServer(t, Options{})
	resp, err := http.Get(ts.URL + EndpointModels)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Models) != 1 {
		t.Fatalf("models = %+v", mr.Models)
	}
	m := mr.Models[0]
	if m.Name != "gendt" || m.Params == 0 {
		t.Fatalf("model info = %+v", m)
	}
	if !reflect.DeepEqual(m.Channels, []string{"RSRP", "RSRQ"}) {
		t.Fatalf("channels = %v", m.Channels)
	}
}

func TestGenerateDeterministicForFixedSeed(t *testing.T) {
	_, ts := newServer(t, Options{})
	req := GenerateRequest{Seed: 7, Route: routePoints()}
	code1, r1, raw1 := postGenerate(t, ts.URL, req)
	code2, r2, _ := postGenerate(t, ts.URL, req)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status %d / %d: %s", code1, code2, raw1)
	}
	if r1.Steps != len(fix.route) || len(r1.Series) != 2 || len(r1.Series[0]) != r1.Steps {
		t.Fatalf("shape: steps=%d series=%dx%d", r1.Steps, len(r1.Series), len(r1.Series[0]))
	}
	if !reflect.DeepEqual(r1.Series, r2.Series) {
		t.Fatal("same (model, route, seed) must be bit-identical")
	}
	if r1.Seed != 7 || r1.Model != "gendt" {
		t.Fatalf("echo fields: %+v", r1)
	}
	// RSRP must come back in physical units (dBm range).
	for _, v := range r1.Series[0] {
		if v > -20 || v < -160 {
			t.Fatalf("RSRP %v outside physical range", v)
		}
	}
	// Omitted seed draws a fresh one and must differ across calls.
	_, r3, _ := postGenerate(t, ts.URL, GenerateRequest{Route: routePoints()})
	_, r4, _ := postGenerate(t, ts.URL, GenerateRequest{Route: routePoints()})
	if r3.Seed == 0 || r4.Seed == 0 || r3.Seed == r4.Seed {
		t.Fatalf("auto seeds: %d, %d", r3.Seed, r4.Seed)
	}
}

func TestGenerateSamplesEnvelope(t *testing.T) {
	_, ts := newServer(t, Options{})
	code, r, raw := postGenerate(t, ts.URL, GenerateRequest{Seed: 3, Samples: 4, Route: routePoints()})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if r.Envelope == nil {
		t.Fatal("samples=4 must return an envelope")
	}
	for c := 0; c < 2; c++ {
		for i := range r.Envelope.Min[c] {
			lo, hi, mean := r.Envelope.Min[c][i], r.Envelope.Max[c][i], r.Envelope.Mean[c][i]
			if lo > hi || mean < lo || mean > hi {
				t.Fatalf("envelope order at [%d][%d]: min=%v mean=%v max=%v", c, i, lo, mean, hi)
			}
		}
	}
	// Sample i is a pure function of (seed, i): the first sample of a
	// samples=4 request matches the single sample of a samples=1 request.
	_, r1, _ := postGenerate(t, ts.URL, GenerateRequest{Seed: 3, Samples: 1, Route: routePoints()})
	if !reflect.DeepEqual(r.Series, r1.Series) {
		t.Fatal("sample 0 must not depend on the sample count")
	}
}

func TestRouteCSVMatchesJSON(t *testing.T) {
	_, ts := newServer(t, Options{})
	var sb strings.Builder
	sb.WriteString("t,lat,lon\n")
	for _, p := range fix.route {
		fmt.Fprintf(&sb, "%s,%s,%s\n",
			strconv.FormatFloat(p.T, 'g', -1, 64),
			strconv.FormatFloat(p.Lat, 'g', -1, 64),
			strconv.FormatFloat(p.Lon, 'g', -1, 64))
	}
	_, rJSON, _ := postGenerate(t, ts.URL, GenerateRequest{Seed: 5, Route: routePoints()})
	code, rCSV, raw := postGenerate(t, ts.URL, GenerateRequest{Seed: 5, RouteCSV: sb.String()})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if !reflect.DeepEqual(rJSON.Series, rCSV.Series) {
		t.Fatal("CSV and JSON routes must generate identically")
	}
}

// TestBatchingBitIdentical is the core serving guarantee: the same
// (model, route, seed) returns bit-identical series whether the request
// ran alone with batching disabled or was coalesced with 7 others.
func TestBatchingBitIdentical(t *testing.T) {
	_, tsSolo := newServer(t, Options{BatchWindow: 0})
	_, tsBatch := newServer(t, Options{BatchWindow: 50 * time.Millisecond})

	const n = 8
	solo := make([]GenerateResponse, n)
	for i := 0; i < n; i++ {
		code, r, raw := postGenerate(t, tsSolo.URL, GenerateRequest{Seed: int64(100 + i), Route: routePoints()})
		if code != http.StatusOK {
			t.Fatalf("solo status %d: %s", code, raw)
		}
		solo[i] = r
	}

	batch := make([]GenerateResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, r, raw := postGenerate(t, tsBatch.URL, GenerateRequest{Seed: int64(100 + i), Route: routePoints()})
			if code != http.StatusOK {
				t.Errorf("batch status %d: %s", code, raw)
				return
			}
			batch[i] = r
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(solo[i].Series, batch[i].Series) {
			t.Fatalf("request %d: batched series differs from unbatched", i)
		}
	}
}

// TestBatcherCoalesces drives concurrent requests through a wide batching
// window and asserts they actually shared GenerateJobs calls.
func TestBatcherCoalesces(t *testing.T) {
	s, ts := newServer(t, Options{BatchWindow: 100 * time.Millisecond})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, raw := postGenerate(t, ts.URL, GenerateRequest{Seed: int64(1 + i), Route: routePoints()})
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, raw)
			}
		}(i)
	}
	wg.Wait()
	met := s.Metrics()
	if got := met.Batches.Load(); got >= n {
		t.Fatalf("no coalescing: %d batches for %d requests", got, n)
	}
	if met.MaxBatch.Load() < 2 || met.BatchedRequests.Load() < 2 {
		t.Fatalf("coalescing not observed: max=%d batched=%d",
			met.MaxBatch.Load(), met.BatchedRequests.Load())
	}
}

// TestConcurrentClients hammers the server with 32 parallel clients (the
// acceptance bar; run under -race).
func TestConcurrentClients(t *testing.T) {
	s, ts := newServer(t, Options{BatchWindow: 2 * time.Millisecond})
	const clients = 32
	const perClient = 2
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				req := GenerateRequest{Seed: int64(1 + c), Route: routePoints()}
				if c%4 == 0 {
					req.Samples = 2
				}
				code, r, raw := postGenerate(t, ts.URL, req)
				if code != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, code, raw)
					return
				}
				if r.Steps != len(fix.route) {
					t.Errorf("client %d: steps %d", c, r.Steps)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := s.Metrics().Endpoint(EndpointGenerate)
	if got := st.Requests.Load(); got != clients*perClient {
		t.Fatalf("request count %d, want %d", got, clients*perClient)
	}
	if got := st.InFlight.Load(); got != 0 {
		t.Fatalf("in-flight gauge %d after drain", got)
	}
	if st.Latency.observe.Load() != clients*perClient {
		t.Fatal("latency histogram missed observations")
	}
	// The prep cache must absorb the repeated route rather than
	// re-annotating per request (the shared fixture world may already hold
	// the route from earlier tests, so only hits are asserted).
	if s.Metrics().PrepHits.Load() == 0 {
		t.Fatalf("prep cache unused: hits=0 misses=%d", s.Metrics().PrepMisses.Load())
	}
}

func TestReloadSwapsModel(t *testing.T) {
	setup(t)
	// Two architecturally identical but differently initialized models.
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	cfgA := fixCfg()
	cfgA.Epochs = 0
	if err := core.NewModel(cfgA).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry([]ModelSource{{Name: "m", Path: path}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newServer(t, Options{Registry: reg})

	req := GenerateRequest{Model: "m", Seed: 9, Route: routePoints()}
	_, r1, _ := postGenerate(t, ts.URL, req)

	cfgB := cfgA
	cfgB.Seed = 99 // different random init -> different weights
	if err := core.NewModel(cfgB).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+EndpointReload, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	var rr ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Failures != 0 || len(rr.Models) != 1 {
		t.Fatalf("reload = %+v", rr)
	}

	_, r2, _ := postGenerate(t, ts.URL, req)
	if reflect.DeepEqual(r1.Series, r2.Series) {
		t.Fatal("reload did not swap the model")
	}

	// A corrupt file on disk must fail the reload but keep serving the
	// previously loaded model.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+EndpointReload, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload status %d", resp2.StatusCode)
	}
	code, r3, raw := postGenerate(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("serving after failed reload: %d %s", code, raw)
	}
	if !reflect.DeepEqual(r2.Series, r3.Series) {
		t.Fatal("failed reload must keep the old model")
	}
}

func TestGenerateValidation(t *testing.T) {
	_, ts := newServer(t, Options{MaxSamples: 4, MaxBody: 64 << 10})
	cases := []struct {
		name string
		req  GenerateRequest
		want int
	}{
		{"missing route", GenerateRequest{Seed: 1}, http.StatusBadRequest},
		{"both routes", GenerateRequest{Seed: 1, Route: routePoints(), RouteCSV: "t,lat,lon\n0,0,0\n1,0,0"}, http.StatusBadRequest},
		{"short route", GenerateRequest{Seed: 1, Route: routePoints()[:1]}, http.StatusBadRequest},
		{"unknown model", GenerateRequest{Model: "nope", Seed: 1, Route: routePoints()}, http.StatusNotFound},
		{"too many samples", GenerateRequest{Seed: 1, Samples: 5, Route: routePoints()}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _, raw := postGenerate(t, ts.URL, tc.req); code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.want, raw)
		}
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + EndpointGenerate)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET generate: %d", resp.StatusCode)
	}

	// Oversized body (valid JSON, so the byte limit trips before a syntax
	// error can).
	big := []byte(`{"route_csv":"` + strings.Repeat("a", 128<<10) + `"}`)
	resp2, err := http.Post(ts.URL+EndpointGenerate, "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d", resp2.StatusCode)
	}
}

func TestDrainingReturns503(t *testing.T) {
	s, ts := newServer(t, Options{})
	// Prime the batcher so Close has something to drain.
	if code, _, raw := postGenerate(t, ts.URL, GenerateRequest{Seed: 1, Route: routePoints()}); code != http.StatusOK {
		t.Fatalf("prime: %d %s", code, raw)
	}
	s.Close()
	body, err := json.Marshal(GenerateRequest{Seed: 1, Route: routePoints()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+EndpointGenerate, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("after drain: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != strconv.Itoa(DrainRetryAfter) {
		t.Errorf("Retry-After = %q, want %q", got, strconv.Itoa(DrainRetryAfter))
	}
	if got := resp.Header.Get(ReasonHeader); got != ReasonDraining {
		t.Errorf("%s = %q, want %q (clients must distinguish draining from front-tier sheds)",
			ReasonHeader, got, ReasonDraining)
	}
}

// TestHealthzDraining checks a draining server fails its health probe with
// status "draining" so orchestrators route away during shutdown.
func TestHealthzDraining(t *testing.T) {
	s, ts := newServer(t, Options{})
	s.StartDrain()
	resp, err := http.Get(ts.URL + EndpointHealth)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("healthz while draining: missing Retry-After header")
	}
	if got := resp.Header.Get(ReasonHeader); got != ReasonDraining {
		t.Errorf("healthz while draining: %s = %q, want %q", ReasonHeader, got, ReasonDraining)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "draining" {
		t.Errorf("status = %q, want %q", hr.Status, "draining")
	}
}

func TestDebugVars(t *testing.T) {
	_, ts := newServer(t, Options{})
	if code, _, raw := postGenerate(t, ts.URL, GenerateRequest{Seed: 2, Route: routePoints()}); code != http.StatusOK {
		t.Fatalf("generate: %d %s", code, raw)
	}
	resp, err := http.Get(ts.URL + EndpointVars)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		UptimeS   float64 `json:"uptime_s"`
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
			Latency  struct {
				Count   int64            `json:"count"`
				Buckets map[string]int64 `json:"buckets_le_ms"`
			} `json:"latency"`
		} `json:"endpoints"`
		Generate struct {
			Samples     int64   `json:"samples"`
			NsPerSample float64 `json:"ns_per_sample"`
			Batches     int64   `json:"batches"`
		} `json:"generate"`
		Runtime struct {
			AllocBytes uint64 `json:"alloc_bytes"`
			Goroutines int    `json:"goroutines"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	gen := vars.Endpoints[EndpointGenerate]
	if gen.Requests < 1 || gen.Latency.Count < 1 || len(gen.Latency.Buckets) == 0 {
		t.Fatalf("generate endpoint vars = %+v", gen)
	}
	if vars.Generate.Samples < 1 || vars.Generate.NsPerSample <= 0 || vars.Generate.Batches < 1 {
		t.Fatalf("generate vars = %+v", vars.Generate)
	}
	if vars.Runtime.AllocBytes == 0 || vars.Runtime.Goroutines == 0 {
		t.Fatalf("runtime vars = %+v", vars.Runtime)
	}
}

func TestPrepCacheReuse(t *testing.T) {
	setup(t)
	w, err := NewWorld("A", fixSpec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadFile(fix.modelPath)
	if err != nil {
		t.Fatal(err)
	}
	s1, hit1 := w.Prepare(fix.route, m)
	s2, hit2 := w.Prepare(fix.route, m)
	if hit1 || !hit2 {
		t.Fatalf("cache hits = %v, %v", hit1, hit2)
	}
	if s1 != s2 {
		t.Fatal("cache must return the same prepared sequence")
	}
	if s1.Len() != len(fix.route) {
		t.Fatalf("prepared length %d, want %d", s1.Len(), len(fix.route))
	}
}

// trainCheckpointBytes trains the fixture model for `epochs` epochs and
// returns the serialized training checkpoint captured at the final epoch —
// the same byte format gendt-train's -checkpoint-dir writes.
func trainCheckpointBytes(t *testing.T, epochs int) ([]byte, uint64) {
	t.Helper()
	d := dataset.NewDatasetA(fixSpec)
	chans := core.RSRPRSRQChannels()
	train := core.PrepareAll(d.TrainRuns(), chans, 6)
	cfg := fixCfg()
	cfg.Epochs = epochs
	m := core.NewModel(cfg)
	var data []byte
	_, err := m.TrainWithOptions(train, core.TrainOpts{
		AfterEpoch: func(ev core.EpochEvent) error {
			if ev.Epoch != ev.Epochs {
				return nil
			}
			var encErr error
			data, encErr = core.EncodeTrainState(ev.State())
			return encErr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if data == nil {
		t.Fatal("no checkpoint captured")
	}
	return data, m.Fingerprint()
}

// TestCheckpointHotReloadSIGHUP proves a training-checkpoint file is a
// first-class servable model: the registry loads it, and — mirroring
// gendt-serve's SIGHUP handler — a SIGHUP-triggered Reload picks up a new
// checkpoint written over the same path.
func TestCheckpointHotReloadSIGHUP(t *testing.T) {
	ck1, fp1 := trainCheckpointBytes(t, 1)
	ck2, fp2 := trainCheckpointBytes(t, 2)
	if fp1 == fp2 {
		t.Fatal("fixture checkpoints have identical weights; test needs distinct ones")
	}

	path := filepath.Join(t.TempDir(), "ckpt-model.json")
	if err := os.WriteFile(path, ck1, 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry([]ModelSource{{Name: "ck", Path: path}}, 0)
	if err != nil {
		t.Fatalf("registry rejected checkpoint-format model: %v", err)
	}
	m, ok := reg.Get("ck")
	if !ok {
		t.Fatal("checkpoint model not registered")
	}
	if got := m.Fingerprint(); got != fp1 {
		t.Fatalf("loaded fingerprint %#x, want %#x", got, fp1)
	}
	s, ts := newServer(t, Options{Registry: reg})
	if code, _, raw := postGenerate(t, ts.URL, GenerateRequest{Seed: 3, Route: routePoints()}); code != http.StatusOK {
		t.Fatalf("generate against checkpoint model: %d %s", code, raw)
	}

	// Swap the file on disk, then deliver a real SIGHUP to this process;
	// the handler mirrors cmd/gendt-serve's reload goroutine.
	if err := os.WriteFile(path, ck2, 0o644); err != nil {
		t.Fatal(err)
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	reloaded := make(chan int, 1)
	go func() {
		<-hup
		_, failures := s.Reload()
		reloaded <- failures
	}()
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	select {
	case failures := <-reloaded:
		if failures != 0 {
			t.Fatalf("reload failures: %d", failures)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SIGHUP never delivered")
	}
	m2, _ := reg.Get("ck")
	if got := m2.Fingerprint(); got != fp2 {
		t.Fatalf("post-SIGHUP fingerprint %#x, want new checkpoint's %#x", got, fp2)
	}
}
