package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gendt/internal/core"
)

// ModelSource names one model file the registry serves. Precision, when
// non-empty, overrides the model file's own preferred serving precision
// (Config.Precision): "f64" serves the live float64 model, "f32"/"int8"
// freeze it into the corresponding inference backend at load time.
type ModelSource struct {
	Name      string
	Path      string
	Precision core.Precision
}

// ModelInfo is the /v1/models description of one registered model.
type ModelInfo struct {
	Name      string   `json:"name"`
	Path      string   `json:"path"`
	Channels  []string `json:"channels"`
	Hidden    int      `json:"hidden"`
	BatchLen  int      `json:"batch_len"`
	MaxCells  int      `json:"max_cells"`
	Params    int      `json:"params"`
	Precision string   `json:"precision"`
	// Fingerprint is the hex weight fingerprint of the loaded generator —
	// the cheap way for a rollout to confirm a reload actually swapped the
	// served weights before paying for a full statistical gate.
	Fingerprint string `json:"fingerprint"`
	LoadedAt    string `json:"loaded_at"`
}

type modelEntry struct {
	gen      core.Generator
	source   ModelSource
	loadedAt time.Time
}

// Registry maps model names to loaded GenDT generators — live float64
// models or frozen f32/int8 inference snapshots, per the resolved
// precision. Loaded generators are treated as immutable (the serving path
// never mutates them), so lookups hand out the shared value under a read
// lock and Reload swaps entries atomically without quiescing in-flight
// work: requests that already resolved a generator finish against the
// snapshot they got.
type Registry struct {
	mu      sync.RWMutex
	sources []ModelSource
	workers int  // generation fan-out override; 0 keeps each model's own
	noBatch bool // disable the frozen backends' lockstep batched engine
	models  map[string]modelEntry
}

// NewRegistry loads every source eagerly and fails fast on the first
// unloadable model — a serve process should not start half-configured.
// workers > 0 overrides each loaded generator's worker count (the
// generation fan-out width); 0 keeps whatever the model was trained with.
func NewRegistry(sources []ModelSource, workers int) (*Registry, error) {
	r := &Registry{sources: sources, workers: workers, models: make(map[string]modelEntry, len(sources))}
	for _, s := range sources {
		if _, dup := r.models[s.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate model name %q", s.Name)
		}
		e, err := r.load(s)
		if err != nil {
			return nil, fmt.Errorf("serve: model %q: %w", s.Name, err)
		}
		r.models[s.Name] = e
	}
	if len(r.models) == 0 {
		return nil, fmt.Errorf("serve: no models configured")
	}
	return r, nil
}

// NewStaticRegistry wraps one already-loaded, in-memory generator. It backs
// callers that must serve a model that has no faithful on-disk source —
// the validation gate's noise-corrupted negative control, for example —
// through the exact /v1/generate pipeline. Reload is a no-op (there are no
// sources to re-read); the generator is treated as immutable like any other
// registry entry.
func NewStaticRegistry(name string, g core.Generator) *Registry {
	return &Registry{
		models: map[string]modelEntry{
			name: {gen: g, source: ModelSource{Name: name, Path: "(in-memory)"}, loadedAt: time.Now()},
		},
	}
}

// load reads one source, resolves its serving precision, and applies the
// worker override. Precision resolution order: the source's explicit
// Precision (the -precision flag), then the model file's own
// Config.Precision, then f64. The generator is finalized here, before it
// becomes visible to any request.
func (r *Registry) load(s ModelSource) (modelEntry, error) {
	m, err := core.LoadFile(s.Path)
	if err != nil {
		return modelEntry{}, err
	}
	prec := s.Precision
	if prec == "" {
		prec = m.Cfg.Precision
	}
	if prec == "" {
		prec = core.PrecisionF64
	}
	var g core.Generator = m
	if prec != core.PrecisionF64 {
		im, err := m.Freeze(prec)
		if err != nil {
			return modelEntry{}, err
		}
		g = im
	}
	if r.workers > 0 {
		g = g.WithWorkers(r.workers)
	}
	if r.noBatch {
		if im, ok := g.(*core.InferModel); ok {
			g = im.WithBatch(false)
		}
	}
	return modelEntry{gen: g, source: s, loadedAt: time.Now()}, nil
}

// SetBatchGemm toggles the frozen backends' lockstep batched GenerateJobs
// engine for every current and future entry — the -batch-gemm escape
// hatch. Outputs are bit-identical either way (core's batched-identity
// contract); only the execution schedule changes. Live f64 models are
// unaffected. Call before serving traffic; reloads keep the setting.
func (r *Registry) SetBatchGemm(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noBatch = !on
	for name, e := range r.models {
		if im, ok := e.gen.(*core.InferModel); ok {
			e.gen = im.WithBatch(on)
			r.models[name] = e
		}
	}
}

// Get resolves a generator by name. The empty name resolves iff exactly one
// model is registered (the single-model default).
func (r *Registry) Get(name string) (core.Generator, bool) {
	_, g, ok := r.Resolve(name)
	return g, ok
}

// Resolve is Get plus the canonical registered name — the batcher map is
// keyed by it so the empty-name default shares the single model's batcher.
func (r *Registry) Resolve(name string) (string, core.Generator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" && len(r.models) == 1 {
		for n, e := range r.models {
			return n, e.gen, true
		}
	}
	e, ok := r.models[name]
	if !ok {
		return "", nil, false
	}
	return name, e.gen, true
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.models))
	for n := range r.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// List describes every registered model, sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for _, e := range r.models {
		cfg := e.gen.ModelConfig()
		info := ModelInfo{
			Name:        e.source.Name,
			Path:        e.source.Path,
			Hidden:      cfg.Hidden,
			BatchLen:    cfg.BatchLen,
			MaxCells:    cfg.MaxCells,
			Params:      e.gen.ParamCount(),
			Precision:   string(e.gen.Precision()),
			Fingerprint: fmt.Sprintf("%016x", e.gen.Fingerprint()),
			LoadedAt:    e.loadedAt.UTC().Format(time.RFC3339),
		}
		for _, ch := range cfg.Channels {
			info.Channels = append(info.Channels, ch.Name)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReloadStatus reports the outcome of reloading one source.
type ReloadStatus struct {
	Name  string `json:"name"`
	Error string `json:"error,omitempty"`
}

// Reload re-reads every source from disk (SIGHUP / POST /admin/reload).
// Sources that fail to load keep their previously loaded model, so a bad
// file on disk degrades to a warning instead of dropping the model from
// service. Returns one status per source and the count of failures.
func (r *Registry) Reload() ([]ReloadStatus, int) {
	r.mu.RLock()
	sources := r.sources
	r.mu.RUnlock()

	// Load outside the lock: model files can be large and requests should
	// keep resolving against the current entries meanwhile.
	statuses := make([]ReloadStatus, 0, len(sources))
	loaded := make(map[string]modelEntry, len(sources))
	failures := 0
	for _, s := range sources {
		e, err := r.load(s)
		st := ReloadStatus{Name: s.Name}
		if err != nil {
			st.Error = err.Error()
			failures++
		} else {
			loaded[s.Name] = e
		}
		statuses = append(statuses, st)
	}

	r.mu.Lock()
	for name, e := range loaded {
		r.models[name] = e
	}
	r.mu.Unlock()
	return statuses, failures
}
