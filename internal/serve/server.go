// Package serve implements gendt-serve: a long-lived HTTP JSON inference
// service over trained GenDT models. It holds the dataset world resident
// (route annotation without per-request world rebuilds), keeps a registry
// of hot-reloadable models, and admits concurrent /v1/generate requests
// through a micro-batching layer that coalesces them into single
// GenerateJobs calls against the parallel generation engine. Every sample
// is generated from a model clone seeded per (request seed, sample index),
// so responses are bit-identical for a fixed (model, route, seed)
// regardless of batching, concurrency, or worker count.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gendt/internal/core"
	"gendt/internal/export"
	"gendt/internal/geo"
)

// Options configures a Server. Zero fields take the defaults below.
type Options struct {
	Registry *Registry
	World    *World

	// BatchWindow is how long the admission layer waits to coalesce
	// concurrent requests into one batch; 0 batches only what is already
	// queued (no added latency).
	BatchWindow time.Duration
	// MaxBatch caps the generation jobs coalesced per batch.
	MaxBatch int
	// Timeout bounds each request's generation (queue wait included).
	Timeout time.Duration
	// MaxBody bounds the request body in bytes.
	MaxBody int64
	// MaxSamples caps the per-request sample fan-out.
	MaxSamples int
	// MaxSteps caps the route length in samples.
	MaxSteps int
}

// Serving defaults.
const (
	DefaultTimeout    = 30 * time.Second
	DefaultMaxBody    = 8 << 20 // 8 MiB of route JSON/CSV
	DefaultMaxSamples = 64
	DefaultMaxSteps   = 50000
)

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.MaxBody <= 0 {
		o.MaxBody = DefaultMaxBody
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = DefaultMaxSamples
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = DefaultMaxSteps
	}
	return o
}

// Server is the HTTP inference service.
type Server struct {
	opt Options
	met *Metrics
	mux *http.ServeMux

	draining atomic.Bool

	mu       sync.Mutex
	batchers map[string]*Batcher
	seedSeq  func() int64 // nondeterministic seeds for requests that omit one
}

// New builds a Server from loaded options; Registry and World must be set.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:      opt,
		met:      NewMetrics(EndpointGenerate, EndpointModels, EndpointHealth, EndpointVars, EndpointReload),
		batchers: make(map[string]*Batcher),
	}
	var seedMu sync.Mutex
	next := time.Now().UnixNano()
	s.seedSeq = func() int64 {
		seedMu.Lock()
		defer seedMu.Unlock()
		next++
		return next
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(EndpointGenerate, s.instrument(EndpointGenerate, http.MethodPost, s.handleGenerate))
	s.mux.HandleFunc(EndpointModels, s.instrument(EndpointModels, http.MethodGet, s.handleModels))
	s.mux.HandleFunc(EndpointHealth, s.instrument(EndpointHealth, http.MethodGet, s.handleHealth))
	s.mux.HandleFunc(EndpointVars, s.instrument(EndpointVars, http.MethodGet, s.handleVars))
	s.mux.HandleFunc(EndpointReload, s.instrument(EndpointReload, http.MethodPost, s.handleReload))
	return s
}

// Endpoint paths.
const (
	EndpointGenerate = "/v1/generate"
	EndpointModels   = "/v1/models"
	EndpointHealth   = "/healthz"
	EndpointVars     = "/debug/vars"
	EndpointReload   = "/admin/reload"
)

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's metrics state (tests and the /debug/vars
// handler read it).
func (s *Server) Metrics() *Metrics { return s.met }

// DrainRetryAfter is the Retry-After hint (seconds) on draining 503s: long
// enough for a restart or rollout to complete, short enough that balancers
// re-probe promptly.
const DrainRetryAfter = 5

// ReasonHeader distinguishes otherwise-identical 503s across the serving
// tier: a replica refusing work because it is shutting down, the front tier
// shedding because every shard is saturated, and the front tier relaying an
// upstream failure are different conditions that clients (and the
// gendt-bench error breakdown) must be able to tell apart.
const ReasonHeader = "X-Gendt-Reason"

// ReasonHeader values.
const (
	ReasonDraining = "draining" // replica is draining (shutdown/rollout)
	ReasonShed     = "shed"     // front tier shed: per-replica in-flight caps full
	ReasonUpstream = "upstream" // front tier exhausted retries against replicas
)

// StartDrain flips the server into draining mode: new /v1/generate
// requests get an immediate 503 with a Retry-After hint (so load
// balancers fail over instead of queueing behind a dying process) and
// /healthz starts failing with status "draining". Requests already
// admitted keep running; call Close to wait them out.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains every batcher: admitted requests finish, new ones get 503.
func (s *Server) Close() {
	s.StartDrain()
	s.mu.Lock()
	bs := make([]*Batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.mu.Unlock()
	for _, b := range bs {
		b.Close()
	}
}

// Reload re-reads every registered model from disk (SIGHUP handler and
// POST /admin/reload both land here).
func (s *Server) Reload() ([]ReloadStatus, int) { return s.opt.Registry.Reload() }

// batcher returns (creating if needed) the admission layer for a model.
func (s *Server) batcher(name string) *Batcher {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.batchers[name]; ok {
		return b
	}
	reg := s.opt.Registry
	b := NewBatcher(func() core.Generator {
		g, _ := reg.Get(name)
		return g
	}, s.opt.BatchWindow, s.opt.MaxBatch, s.met)
	s.batchers[name] = b
	return b
}

// instrument wraps a handler with method filtering, request counting,
// in-flight tracking, and latency observation.
func (s *Server) instrument(name, method string, h http.HandlerFunc) http.HandlerFunc {
	st := s.met.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("use %s", method))
			return
		}
		st.Requests.Add(1)
		st.InFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		st.InFlight.Add(-1)
		st.Latency.Observe(time.Since(start))
		if sw.code >= 400 {
			st.Errors.Add(1)
		}
	}
}

// statusWriter records the response code for error accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// RoutePoint is one JSON route sample.
type RoutePoint struct {
	T   float64 `json:"t"`
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// GenerateRequest is the /v1/generate request body. Exactly one of Route
// and RouteCSV must be set.
type GenerateRequest struct {
	// Model selects a registry entry; empty works when one model is loaded.
	Model string `json:"model,omitempty"`
	// Seed makes the response deterministic; 0 draws a fresh seed (echoed
	// back in the response so the result can be reproduced).
	Seed int64 `json:"seed,omitempty"`
	// Samples fans the request out into N independent generations; the
	// response then carries a min/max/mean envelope (paper Figure 9).
	Samples int `json:"samples,omitempty"`
	// Route is the trajectory as JSON points.
	Route []RoutePoint `json:"route,omitempty"`
	// RouteCSV is the trajectory as "t,lat,lon" CSV (gendt-route output).
	RouteCSV string `json:"route_csv,omitempty"`
}

// EnvelopeJSON is the per-channel min/max/mean over the request's samples.
type EnvelopeJSON struct {
	Min  [][]float64 `json:"min"`
	Max  [][]float64 `json:"max"`
	Mean [][]float64 `json:"mean"`
}

// GenerateResponse is the /v1/generate response body. Series holds the
// first sample in physical units, indexed [channel][t].
type GenerateResponse struct {
	Model      string        `json:"model"`
	Seed       int64         `json:"seed"`
	Samples    int           `json:"samples"`
	Channels   []string      `json:"channels"`
	IntervalS  float64       `json:"interval_s"`
	Steps      int           `json:"steps"`
	Series     [][]float64   `json:"series"`
	Envelope   *EnvelopeJSON `json:"envelope,omitempty"`
	PrepCached bool          `json:"prep_cached"`
	GenMs      float64       `json:"gen_ms"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeDraining(w, ErrDraining.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBody)
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}

	tr, err := req.trajectory(s.opt.MaxSteps)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	name, model, ok := s.opt.Registry.Resolve(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (have %s)",
			req.Model, strings.Join(s.opt.Registry.Names(), ", ")))
		return
	}
	samples := req.Samples
	if samples <= 0 {
		samples = 1
	}
	if samples > s.opt.MaxSamples {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("samples %d exceeds limit %d", samples, s.opt.MaxSamples))
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.seedSeq()
	}

	seq, cached := s.opt.World.Prepare(tr, model)
	if cached {
		s.met.PrepHits.Add(1)
	} else {
		s.met.PrepMisses.Add(1)
	}

	jobs := make([]core.GenJob, samples)
	for i := range jobs {
		jobs[i] = core.GenJob{Seq: seq, Seed: core.DeriveSeed(seed, i)}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opt.Timeout)
	defer cancel()
	start := time.Now()
	outs, err := s.batcher(name).Generate(ctx, jobs)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			writeDraining(w, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "generation timed out")
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}

	resp := GenerateResponse{
		Model:      name,
		Seed:       seed,
		Samples:    samples,
		IntervalS:  seq.Interval,
		Steps:      seq.Len(),
		Series:     outs[0],
		PrepCached: cached,
		GenMs:      float64(time.Since(start)) / float64(time.Millisecond),
	}
	for _, ch := range model.ModelConfig().Channels {
		resp.Channels = append(resp.Channels, ch.Name)
	}
	if samples > 1 {
		min, max, mean := core.Envelope(outs)
		resp.Envelope = &EnvelopeJSON{Min: min, Max: max, Mean: mean}
	}
	writeJSON(w, http.StatusOK, resp)
}

// trajectory converts the request's route into a geo.Trajectory.
func (req *GenerateRequest) trajectory(maxSteps int) (geo.Trajectory, error) {
	if len(req.Route) > 0 && req.RouteCSV != "" {
		return nil, errors.New("set route or route_csv, not both")
	}
	var tr geo.Trajectory
	switch {
	case len(req.Route) > 0:
		tr = make(geo.Trajectory, len(req.Route))
		for i, p := range req.Route {
			tr[i] = geo.Sample{Point: geo.Point{Lat: p.Lat, Lon: p.Lon}, T: p.T}
		}
	case req.RouteCSV != "":
		var err error
		tr, err = export.ReadTrajectoryCSV(strings.NewReader(req.RouteCSV))
		if err != nil {
			return nil, fmt.Errorf("route_csv: %w", err)
		}
	default:
		return nil, errors.New("missing route: set route (JSON points) or route_csv")
	}
	if len(tr) < 2 {
		return nil, fmt.Errorf("route needs at least 2 samples, got %d", len(tr))
	}
	if len(tr) > maxSteps {
		return nil, fmt.Errorf("route has %d samples, limit %d", len(tr), maxSteps)
	}
	return tr, nil
}

// ModelsResponse is the /v1/models response body.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ModelsResponse{Models: s.opt.Registry.List()})
}

// HealthResponse is the /healthz response body.
type HealthResponse struct {
	Status  string  `json:"status"`
	Models  int     `json:"models"`
	World   string  `json:"world"`
	UptimeS float64 `json:"uptime_s"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:  "ok",
		Models:  len(s.opt.Registry.Names()),
		World:   s.opt.World.Name(),
		UptimeS: time.Since(s.met.start).Seconds(),
	}
	code := http.StatusOK
	if s.Draining() {
		// Fail the probe during shutdown so orchestrators stop routing
		// here before the listener actually closes.
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(DrainRetryAfter))
		w.Header().Set(ReasonHeader, ReasonDraining)
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.met.Snapshot())
}

// ReloadResponse is the /admin/reload response body.
type ReloadResponse struct {
	Models   []ReloadStatus `json:"models"`
	Failures int            `json:"failures"`
}

func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	statuses, failures := s.Reload()
	code := http.StatusOK
	if failures > 0 {
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, ReloadResponse{Models: statuses, Failures: failures})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeDraining is the 503 every draining rejection goes through: the
// Retry-After header tells clients and balancers when to try again, and the
// reason header tells them why this 503 happened (vs a front-tier shed).
func writeDraining(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(DrainRetryAfter))
	w.Header().Set(ReasonHeader, ReasonDraining)
	writeError(w, http.StatusServiceUnavailable, msg)
}
