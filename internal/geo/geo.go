// Package geo provides geodesic primitives for drive-test trajectories:
// coordinates, distance/bearing math, local tangent-plane projection, and
// trajectory construction, resampling, and interpolation.
//
// All angles are degrees unless a name says otherwise; distances are metres;
// timestamps are seconds from an arbitrary epoch.
package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean Earth radius in metres used by the spherical
// distance formulas.
const EarthRadius = 6371008.8

// Point is a WGS-84-style geographic coordinate.
type Point struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// Distance returns the great-circle (haversine) distance in metres between
// two points.
func Distance(a, b Point) float64 {
	la1, la2 := deg2rad(a.Lat), deg2rad(b.Lat)
	dLat := la2 - la1
	dLon := deg2rad(b.Lon - a.Lon)
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// Bearing returns the initial great-circle bearing in degrees from a to b,
// normalized to [0, 360).
func Bearing(a, b Point) float64 {
	la1, la2 := deg2rad(a.Lat), deg2rad(b.Lat)
	dLon := deg2rad(b.Lon - a.Lon)
	y := math.Sin(dLon) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLon)
	brg := rad2deg(math.Atan2(y, x))
	return math.Mod(brg+360, 360)
}

// Offset returns the point reached by travelling dist metres from p along
// the given bearing (degrees).
func Offset(p Point, bearingDeg, dist float64) Point {
	la1 := deg2rad(p.Lat)
	lo1 := deg2rad(p.Lon)
	brg := deg2rad(bearingDeg)
	dr := dist / EarthRadius
	la2 := math.Asin(math.Sin(la1)*math.Cos(dr) + math.Cos(la1)*math.Sin(dr)*math.Cos(brg))
	lo2 := lo1 + math.Atan2(math.Sin(brg)*math.Sin(dr)*math.Cos(la1),
		math.Cos(dr)-math.Sin(la1)*math.Sin(la2))
	return Point{Lat: rad2deg(la2), Lon: rad2deg(lo2)}
}

// Projection is a local equirectangular tangent-plane projection anchored at
// an origin point. It maps geographic coordinates to planar (x east, y north)
// metre coordinates, accurate for extents of a few tens of kilometres —
// ample for drive-test regions.
type Projection struct {
	Origin Point
	cosLat float64
}

// NewProjection returns a projection anchored at origin.
func NewProjection(origin Point) *Projection {
	return &Projection{Origin: origin, cosLat: math.Cos(deg2rad(origin.Lat))}
}

// ToXY projects p to planar metres relative to the origin.
func (pr *Projection) ToXY(p Point) (x, y float64) {
	x = deg2rad(p.Lon-pr.Origin.Lon) * EarthRadius * pr.cosLat
	y = deg2rad(p.Lat-pr.Origin.Lat) * EarthRadius
	return x, y
}

// FromXY unprojects planar metre coordinates back to geographic coordinates.
func (pr *Projection) FromXY(x, y float64) Point {
	return Point{
		Lat: pr.Origin.Lat + rad2deg(y/EarthRadius),
		Lon: pr.Origin.Lon + rad2deg(x/(EarthRadius*pr.cosLat)),
	}
}

// PlanarDistance is the Euclidean distance between two points after
// projection through pr. It is cheaper than Distance and adequate for
// visibility queries within a region.
func (pr *Projection) PlanarDistance(a, b Point) float64 {
	ax, ay := pr.ToXY(a)
	bx, by := pr.ToXY(b)
	return math.Hypot(ax-bx, ay-by)
}
