package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	edinburgh = 55.9533
	edinLon   = -3.1883
)

func TestDistanceZero(t *testing.T) {
	p := Point{Lat: edinburgh, Lon: edinLon}
	if d := Distance(p, p); d != 0 {
		t.Fatalf("Distance(p,p) = %v, want 0", d)
	}
}

func TestDistanceKnown(t *testing.T) {
	// Edinburgh to Glasgow is roughly 67 km.
	edi := Point{Lat: 55.9533, Lon: -3.1883}
	gla := Point{Lat: 55.8642, Lon: -4.2518}
	d := Distance(edi, gla)
	if d < 65000 || d > 69000 {
		t.Fatalf("Edinburgh-Glasgow distance = %v m, want ~67 km", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: math.Mod(lat1, 89), Lon: math.Mod(lon1, 179)}
		b := Point{Lat: math.Mod(lat2, 89), Lon: math.Mod(lon2, 179)}
		d1, d2 := Distance(a, b), Distance(b, a)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := Point{Lat: edinburgh + rng.Float64()*0.1, Lon: edinLon + rng.Float64()*0.1}
		brg := rng.Float64() * 360
		dist := rng.Float64() * 5000
		q := Offset(p, brg, dist)
		got := Distance(p, q)
		if math.Abs(got-dist) > 0.5 {
			t.Fatalf("Offset distance = %v, want %v", got, dist)
		}
		gotBrg := Bearing(p, q)
		diff := math.Abs(math.Mod(gotBrg-brg+540, 360) - 180)
		if dist > 10 && diff > 0.5 {
			t.Fatalf("Offset bearing = %v, want %v", gotBrg, brg)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	p := Point{Lat: 55, Lon: -3}
	cases := []struct {
		to   Point
		want float64
	}{
		{Point{Lat: 56, Lon: -3}, 0},
		{Point{Lat: 54, Lon: -3}, 180},
		{Point{Lat: 55, Lon: -2}, 90},
		{Point{Lat: 55, Lon: -4}, 270},
	}
	for _, c := range cases {
		got := Bearing(p, c.to)
		diff := math.Abs(math.Mod(got-c.want+540, 360) - 180)
		if diff > 1.0 {
			t.Errorf("Bearing to %v = %v, want %v", c.to, got, c.want)
		}
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(Point{Lat: edinburgh, Lon: edinLon})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		p := Point{Lat: edinburgh + (rng.Float64()-0.5)*0.2, Lon: edinLon + (rng.Float64()-0.5)*0.2}
		x, y := pr.ToXY(p)
		q := pr.FromXY(x, y)
		if Distance(p, q) > 0.01 {
			t.Fatalf("projection round trip moved point by %v m", Distance(p, q))
		}
	}
}

func TestProjectionMatchesHaversineLocally(t *testing.T) {
	pr := NewProjection(Point{Lat: edinburgh, Lon: edinLon})
	a := Point{Lat: edinburgh, Lon: edinLon}
	b := Point{Lat: edinburgh + 0.01, Lon: edinLon + 0.01}
	hd := Distance(a, b)
	pd := pr.PlanarDistance(a, b)
	if math.Abs(hd-pd)/hd > 0.01 {
		t.Fatalf("planar %v vs haversine %v differ by more than 1%%", pd, hd)
	}
}

func TestTrajectoryBasics(t *testing.T) {
	tr := Trajectory{
		{Point{55, -3}, 0},
		{Point{55.001, -3}, 10},
		{Point{55.002, -3}, 20},
	}
	if d := tr.Duration(); d != 20 {
		t.Errorf("Duration = %v, want 20", d)
	}
	if g := tr.TimeGranularity(); g != 10 {
		t.Errorf("TimeGranularity = %v, want 10", g)
	}
	l := tr.Length()
	want := Distance(tr[0].Point, tr[2].Point)
	if math.Abs(l-want) > 1 {
		t.Errorf("Length = %v, want ~%v", l, want)
	}
	if s := tr.AvgSpeed(); math.Abs(s-l/20) > 1e-9 {
		t.Errorf("AvgSpeed = %v, want %v", s, l/20)
	}
}

func TestTrajectoryAtInterpolates(t *testing.T) {
	tr := Trajectory{
		{Point{55, -3}, 0},
		{Point{56, -3}, 10},
	}
	mid := tr.At(5)
	if math.Abs(mid.Lat-55.5) > 1e-9 {
		t.Errorf("At(5).Lat = %v, want 55.5", mid.Lat)
	}
	if p := tr.At(-5); p != tr[0].Point {
		t.Errorf("At before start = %v, want clamp to first", p)
	}
	if p := tr.At(100); p != tr[1].Point {
		t.Errorf("At after end = %v, want clamp to last", p)
	}
}

func TestResample(t *testing.T) {
	tr := Trajectory{
		{Point{55, -3}, 0},
		{Point{55.01, -3}, 30},
	}
	rs, err := tr.Resample(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 31 {
		t.Fatalf("Resample produced %d samples, want 31", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if math.Abs(rs[i].T-rs[i-1].T-1) > 1e-9 {
			t.Fatalf("irregular interval at %d", i)
		}
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("Resample(0) should error")
	}
	if _, err := (Trajectory{}).Resample(1); err == nil {
		t.Error("Resample of empty trajectory should error")
	}
}

func TestConcat(t *testing.T) {
	a := Trajectory{{Point{55, -3}, 100}, {Point{55.1, -3}, 110}}
	b := Trajectory{{Point{56, -3}, 7}, {Point{56.1, -3}, 17}}
	c := Concat(5, a, b)
	if len(c) != 4 {
		t.Fatalf("Concat length = %d, want 4", len(c))
	}
	if c[0].T != 0 || c[1].T != 10 {
		t.Errorf("first segment times = %v, %v", c[0].T, c[1].T)
	}
	if c[2].T != 15 || c[3].T != 25 {
		t.Errorf("second segment times = %v, %v, want 15, 25", c[2].T, c[3].T)
	}
}

func TestSlice(t *testing.T) {
	tr := Trajectory{{Point{55, -3}, 0}, {Point{55, -3}, 5}, {Point{55, -3}, 10}}
	s := tr.Slice(4, 10)
	if len(s) != 2 {
		t.Fatalf("Slice length = %d, want 2", len(s))
	}
}

func TestBuildRouteAdvances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := BuildRoute(RouteSpec{
		Start:    Point{Lat: edinburgh, Lon: edinLon},
		Bearing:  45,
		Duration: 300,
		Interval: 1,
		Profile:  CityDriveProfile,
	}, rng)
	if len(tr) != 301 {
		t.Fatalf("route has %d samples, want 301", len(tr))
	}
	speed := tr.AvgSpeed()
	if speed < 4 || speed > 18 {
		t.Errorf("city route avg speed = %v m/s, want within profile bounds", speed)
	}
}

func TestBuildRouteSpeedProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []struct {
		name    string
		profile SpeedProfile
		lo, hi  float64
	}{
		{"walk", WalkProfile, 0.8, 2.2},
		{"highway", HighwayProfile, 20, 38},
	}
	for _, c := range cases {
		tr := BuildRoute(RouteSpec{
			Start: Point{Lat: edinburgh, Lon: edinLon}, Bearing: 10,
			Duration: 600, Interval: 1, Profile: c.profile,
		}, rng)
		s := tr.AvgSpeed()
		if s < c.lo || s > c.hi {
			t.Errorf("%s avg speed = %v, want in [%v, %v]", c.name, s, c.lo, c.hi)
		}
	}
}

func TestLoopRouteReturnsToStart(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := LoopRoute(RouteSpec{
		Start: Point{Lat: edinburgh, Lon: edinLon}, Bearing: 90,
		Duration: 200, Interval: 1, Profile: TramProfile,
	}, rng)
	first, last := tr[0].Point, tr[len(tr)-1].Point
	if Distance(first, last) > 1 {
		t.Errorf("loop route ends %v m from start", Distance(first, last))
	}
	// Timestamps must be strictly increasing.
	for i := 1; i < len(tr); i++ {
		if tr[i].T <= tr[i-1].T {
			t.Fatalf("non-increasing time at %d", i)
		}
	}
}

func TestMinDistanceTo(t *testing.T) {
	a := Trajectory{{Point{55, -3}, 0}}
	b := Trajectory{{Point{55, -3.01}, 0}, {Point{55, -4}, 10}}
	got := a.MinDistanceTo(b)
	want := Distance(Point{55, -3}, Point{55, -3.01})
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("MinDistanceTo = %v, want %v", got, want)
	}
}

func TestBoundingBoxAndCentroid(t *testing.T) {
	tr := Trajectory{
		{Point{55, -3}, 0},
		{Point{56, -2}, 10},
	}
	min, max := tr.BoundingBox()
	if min.Lat != 55 || max.Lat != 56 || min.Lon != -3 || max.Lon != -2 {
		t.Errorf("BoundingBox = %v %v", min, max)
	}
	c := tr.Centroid()
	if math.Abs(c.Lat-55.5) > 1e-9 || math.Abs(c.Lon+2.5) > 1e-9 {
		t.Errorf("Centroid = %v", c)
	}
}

func TestRouteThroughVisitsWaypoints(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	wps := []Point{
		{Lat: edinburgh, Lon: edinLon},
		Offset(Point{Lat: edinburgh, Lon: edinLon}, 90, 800),
		Offset(Point{Lat: edinburgh, Lon: edinLon}, 45, 1500),
	}
	tr := RouteThrough(wps, CityDriveProfile, 1, rng)
	if len(tr) < 10 {
		t.Fatalf("route too short: %d samples", len(tr))
	}
	// Every waypoint must be approached within a couple of metres.
	for wi, wp := range wps {
		best := math.Inf(1)
		for _, s := range tr {
			if d := Distance(s.Point, wp); d < best {
				best = d
			}
		}
		if best > 2 {
			t.Errorf("waypoint %d missed by %v m", wi, best)
		}
	}
	// Constant interval, increasing time.
	for i := 1; i < len(tr); i++ {
		if math.Abs(tr[i].T-tr[i-1].T-1) > 1e-9 {
			t.Fatalf("irregular interval at %d", i)
		}
	}
}

func TestRouteThroughDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if tr := RouteThrough(nil, WalkProfile, 1, rng); tr != nil {
		t.Error("empty waypoints should give nil")
	}
	one := []Point{{Lat: 55, Lon: -3}}
	if tr := RouteThrough(one, WalkProfile, 1, rng); len(tr) != 1 {
		t.Errorf("single waypoint should give 1 sample, got %d", len(tr))
	}
}
