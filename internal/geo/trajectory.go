package geo

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sample is one timestamped position along a trajectory.
type Sample struct {
	Point
	T float64 // seconds
}

// Trajectory is a timestamped sequence of device locations — the paper's
// notion of a drive-test trajectory (a sequence of (location, timestamp)
// tuples; mobility is implicit in the spacing).
type Trajectory []Sample

// Duration returns the time span covered by the trajectory in seconds.
func (tr Trajectory) Duration() float64 {
	if len(tr) < 2 {
		return 0
	}
	return tr[len(tr)-1].T - tr[0].T
}

// Length returns the total path length in metres.
func (tr Trajectory) Length() float64 {
	total := 0.0
	for i := 1; i < len(tr); i++ {
		total += Distance(tr[i-1].Point, tr[i].Point)
	}
	return total
}

// AvgSpeed returns the mean speed in m/s, or 0 for degenerate trajectories.
func (tr Trajectory) AvgSpeed() float64 {
	d := tr.Duration()
	if d <= 0 {
		return 0
	}
	return tr.Length() / d
}

// TimeGranularity returns the median inter-sample interval in seconds.
func (tr Trajectory) TimeGranularity() float64 {
	if len(tr) < 2 {
		return 0
	}
	gaps := make([]float64, 0, len(tr)-1)
	for i := 1; i < len(tr); i++ {
		gaps = append(gaps, tr[i].T-tr[i-1].T)
	}
	sort.Float64s(gaps)
	return gaps[len(gaps)/2]
}

// At returns the interpolated position at time t, clamping to the endpoints
// outside the trajectory's span.
func (tr Trajectory) At(t float64) Point {
	if len(tr) == 0 {
		return Point{}
	}
	if t <= tr[0].T {
		return tr[0].Point
	}
	last := tr[len(tr)-1]
	if t >= last.T {
		return last.Point
	}
	i := sort.Search(len(tr), func(i int) bool { return tr[i].T >= t })
	a, b := tr[i-1], tr[i]
	if b.T == a.T {
		return a.Point
	}
	f := (t - a.T) / (b.T - a.T)
	return Point{
		Lat: a.Lat + f*(b.Lat-a.Lat),
		Lon: a.Lon + f*(b.Lon-a.Lon),
	}
}

// Resample returns a new trajectory sampled at a fixed interval (seconds)
// over the original time span, interpolating positions linearly.
func (tr Trajectory) Resample(interval float64) (Trajectory, error) {
	if interval <= 0 {
		return nil, errors.New("geo: resample interval must be positive")
	}
	if len(tr) < 2 {
		return nil, fmt.Errorf("geo: cannot resample trajectory of %d samples", len(tr))
	}
	out := Trajectory{}
	for t := tr[0].T; t <= tr[len(tr)-1].T+1e-9; t += interval {
		out = append(out, Sample{Point: tr.At(t), T: t})
	}
	return out, nil
}

// Slice returns the sub-trajectory covering [t0, t1] (inclusive of samples
// whose timestamps fall in that range).
func (tr Trajectory) Slice(t0, t1 float64) Trajectory {
	out := Trajectory{}
	for _, s := range tr {
		if s.T >= t0 && s.T <= t1 {
			out = append(out, s)
		}
	}
	return out
}

// Concat joins trajectories end to end, shifting each subsequent
// trajectory's timestamps so that it starts gap seconds after the previous
// one ends. Positions are not modified.
func Concat(gap float64, trs ...Trajectory) Trajectory {
	out := Trajectory{}
	offset := 0.0
	for _, tr := range trs {
		if len(tr) == 0 {
			continue
		}
		base := tr[0].T
		for _, s := range tr {
			out = append(out, Sample{Point: s.Point, T: offset + (s.T - base)})
		}
		offset = out[len(out)-1].T + gap
	}
	return out
}

// BoundingBox returns the min/max corners of the trajectory's extent.
func (tr Trajectory) BoundingBox() (min, max Point) {
	if len(tr) == 0 {
		return Point{}, Point{}
	}
	min = Point{Lat: math.Inf(1), Lon: math.Inf(1)}
	max = Point{Lat: math.Inf(-1), Lon: math.Inf(-1)}
	for _, s := range tr {
		min.Lat = math.Min(min.Lat, s.Lat)
		min.Lon = math.Min(min.Lon, s.Lon)
		max.Lat = math.Max(max.Lat, s.Lat)
		max.Lon = math.Max(max.Lon, s.Lon)
	}
	return min, max
}

// Centroid returns the arithmetic mean position of the trajectory samples.
func (tr Trajectory) Centroid() Point {
	if len(tr) == 0 {
		return Point{}
	}
	var lat, lon float64
	for _, s := range tr {
		lat += s.Lat
		lon += s.Lon
	}
	n := float64(len(tr))
	return Point{Lat: lat / n, Lon: lon / n}
}

// MinDistanceTo returns the minimum haversine distance in metres from any
// sample of tr to any sample of other. It is used to enforce geographic
// separation between train and test splits.
func (tr Trajectory) MinDistanceTo(other Trajectory) float64 {
	best := math.Inf(1)
	for _, a := range tr {
		for _, b := range other {
			if d := Distance(a.Point, b.Point); d < best {
				best = d
			}
		}
	}
	return best
}
