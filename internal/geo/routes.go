package geo

import (
	"math"
	"math/rand"
)

// SpeedProfile generates per-second speeds (m/s) for a mobility mode; it is
// fed by a seeded RNG so routes are reproducible.
type SpeedProfile struct {
	Mean  float64 // target mean speed, m/s
	Std   float64 // speed variability
	Min   float64 // floor
	Max   float64 // ceiling
	Alpha float64 // AR(1) smoothing in (0,1); higher = smoother speed changes
}

// Walk, Bus, Tram, CityDrive, and Highway are the mobility modes used by the
// paper's measurement scenarios (Tables 1 and 2).
var (
	WalkProfile      = SpeedProfile{Mean: 1.4, Std: 0.3, Min: 0.5, Max: 2.2, Alpha: 0.9}
	BusProfile       = SpeedProfile{Mean: 5.6, Std: 2.5, Min: 0, Max: 14, Alpha: 0.85}
	TramProfile      = SpeedProfile{Mean: 11.5, Std: 3.5, Min: 0, Max: 19, Alpha: 0.9}
	CityDriveProfile = SpeedProfile{Mean: 9.5, Std: 4.0, Min: 0, Max: 18, Alpha: 0.8}
	HighwayProfile   = SpeedProfile{Mean: 29, Std: 4.0, Min: 18, Max: 38, Alpha: 0.95}
)

// next returns the next speed given the previous one, evolving an AR(1)
// process around the profile mean.
func (sp SpeedProfile) next(prev float64, rng *rand.Rand) float64 {
	v := sp.Alpha*prev + (1-sp.Alpha)*sp.Mean + sp.Std*math.Sqrt(1-sp.Alpha*sp.Alpha)*rng.NormFloat64()
	return math.Max(sp.Min, math.Min(sp.Max, v))
}

// RouteSpec describes a synthetic route through a region.
type RouteSpec struct {
	Start      Point
	Bearing    float64 // initial heading, degrees
	Duration   float64 // seconds
	Interval   float64 // sampling interval, seconds
	Profile    SpeedProfile
	TurnEvery  float64 // mean seconds between heading changes (0 = never turn)
	TurnJitter float64 // stddev of heading change, degrees
	GridSnap   bool    // snap turns to 90-degree street-grid increments
}

// BuildRoute synthesizes a trajectory from the spec using the given RNG.
// The walker advances at the profile speed each interval and occasionally
// changes heading, mimicking street-grid or highway movement.
func BuildRoute(spec RouteSpec, rng *rand.Rand) Trajectory {
	if spec.Interval <= 0 {
		spec.Interval = 1
	}
	n := int(spec.Duration/spec.Interval) + 1
	tr := make(Trajectory, 0, n)
	pos := spec.Start
	heading := spec.Bearing
	speed := spec.Profile.Mean
	nextTurn := math.Inf(1)
	if spec.TurnEvery > 0 {
		nextTurn = spec.TurnEvery * (0.5 + rng.Float64())
	}
	t := 0.0
	for i := 0; i < n; i++ {
		tr = append(tr, Sample{Point: pos, T: t})
		speed = spec.Profile.next(speed, rng)
		pos = Offset(pos, heading, speed*spec.Interval)
		t += spec.Interval
		if t >= nextTurn {
			if spec.GridSnap {
				// Turn left or right by 90 degrees, as on a street grid.
				if rng.Intn(2) == 0 {
					heading += 90
				} else {
					heading -= 90
				}
			} else {
				heading += spec.TurnJitter * rng.NormFloat64()
			}
			heading = math.Mod(heading+360, 360)
			nextTurn = t + spec.TurnEvery*(0.5+rng.Float64())
		} else if !spec.GridSnap && spec.TurnJitter > 0 {
			// Gentle continuous drift for non-grid (highway) routes.
			heading += 0.1 * spec.TurnJitter * rng.NormFloat64()
			heading = math.Mod(heading+360, 360)
		}
	}
	return tr
}

// LoopRoute builds a closed loop (useful for the repeated-measurement
// experiment of Figures 1–2): the device goes out for half the duration and
// retraces its path back.
func LoopRoute(spec RouteSpec, rng *rand.Rand) Trajectory {
	half := spec
	half.Duration = spec.Duration / 2
	out := BuildRoute(half, rng)
	back := make(Trajectory, 0, len(out))
	t := out[len(out)-1].T
	for i := len(out) - 1; i >= 0; i-- {
		t += spec.Interval
		back = append(back, Sample{Point: out[i].Point, T: t})
	}
	return append(out, back...)
}

// RouteThrough builds a constant-interval trajectory that travels through
// the given waypoints in order at the profile's speed (with its natural
// variability). This is the practical entry point for virtual drive tests
// over user-chosen routes: operators typically have a handful of waypoints
// (street corners, exits), not a 1 Hz GPS trace.
func RouteThrough(waypoints []Point, profile SpeedProfile, interval float64, rng *rand.Rand) Trajectory {
	if len(waypoints) == 0 {
		return nil
	}
	if interval <= 0 {
		interval = 1
	}
	tr := Trajectory{{Point: waypoints[0], T: 0}}
	if len(waypoints) == 1 {
		return tr
	}
	t := 0.0
	pos := waypoints[0]
	speed := profile.Mean
	for _, wp := range waypoints[1:] {
		for {
			remaining := Distance(pos, wp)
			speed = profile.next(speed, rng)
			step := math.Max(speed, 0.1) * interval
			if step >= remaining {
				pos = wp
			} else {
				pos = Offset(pos, Bearing(pos, wp), step)
			}
			t += interval
			tr = append(tr, Sample{Point: pos, T: t})
			if pos == wp || Distance(pos, wp) < 0.5 {
				break
			}
		}
	}
	return tr
}
