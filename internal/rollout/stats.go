package rollout

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"gendt/internal/lb"
	"gendt/internal/serve"
)

// budgetBaseline is the pre-rollout health the post-readmit windows are
// judged against: the fleet's cumulative error rate and p99 latency at the
// moment the rollout started.
type budgetBaseline struct {
	requests int64
	errRate  float64
	p99ms    float64
}

// windowStats is one post-readmit observation window, computed from the
// delta between two /debug/vars snapshots.
type windowStats struct {
	requests int64
	errRate  float64
	p99ms    float64
}

func baselineFrom(v lb.VarsSnap) budgetBaseline {
	b := budgetBaseline{requests: v.Requests}
	if v.Requests > 0 {
		b.errRate = float64(v.Errors) / float64(v.Requests)
	}
	b.p99ms = histQuantile(v.Latency.Buckets, 0.99)
	return b
}

func windowFrom(pre, post lb.VarsSnap) windowStats {
	w := windowStats{requests: post.Requests - pre.Requests}
	if w.requests > 0 {
		w.errRate = float64(post.Errors-pre.Errors) / float64(w.requests)
	}
	w.p99ms = histQuantile(deltaBuckets(post.Latency, pre.Latency), 0.99)
	return w
}

// checkBudget decides whether a post-readmit window breached the error
// budget. Windows smaller than minRequests trivially pass — too little
// traffic to tell anything. The latency cap only applies when the baseline
// had traffic of its own; a cold fleet has no p99 to multiply.
func checkBudget(base budgetBaseline, w windowStats, errBudget, p99Factor float64, minRequests int64) error {
	if w.requests < minRequests {
		return nil
	}
	if limit := base.errRate + errBudget; w.errRate > limit {
		return fmt.Errorf("window error rate %.4f exceeds baseline %.4f + budget %.4f (%d requests)",
			w.errRate, base.errRate, errBudget, w.requests)
	}
	if base.requests > 0 && base.p99ms > 0 {
		if limit := base.p99ms * p99Factor; w.p99ms > limit {
			return fmt.Errorf("window p99 %.0fms exceeds baseline %.0fms x %.1f (%d requests)",
				w.p99ms, base.p99ms, p99Factor, w.requests)
		}
	}
	return nil
}

// deltaBuckets subtracts two cumulative histogram snapshots bucket-wise,
// yielding the counts observed between them. Buckets absent from a
// snapshot are zero (HistogramSnap omits empty buckets).
func deltaBuckets(post, pre serve.HistogramSnap) map[string]int64 {
	out := make(map[string]int64, len(post.Buckets))
	for k, n := range post.Buckets {
		if d := n - pre.Buckets[k]; d > 0 {
			out[k] = d
		}
	}
	return out
}

// histQuantile is the nearest-rank quantile over a bucketed latency
// histogram keyed by integral-millisecond upper bounds plus "+Inf". It
// returns the upper bound of the bucket the rank lands in (+Inf for the
// overflow bucket), or 0 for an empty histogram.
func histQuantile(buckets map[string]int64, q float64) float64 {
	type bucket struct {
		le float64
		n  int64
	}
	bs := make([]bucket, 0, len(buckets))
	var total int64
	for k, n := range buckets {
		if n <= 0 {
			continue
		}
		le := math.Inf(1)
		if k != "+Inf" {
			v, err := strconv.ParseFloat(k, 64)
			if err != nil {
				continue
			}
			le = v
		}
		bs = append(bs, bucket{le: le, n: n})
		total += n
	}
	if total == 0 {
		return 0
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range bs {
		cum += b.n
		if cum >= rank {
			return b.le
		}
	}
	return bs[len(bs)-1].le
}
