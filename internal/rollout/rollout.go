// Package rollout promotes a candidate model across a gendt fleet one
// replica at a time, gated by the statistical validation suite, with
// automatic rollback on any failure.
//
// The controller is external to both the balancer and the replicas: it
// drives the LB's /admin/replicas membership API to take each replica out
// of rotation, the replica's /admin/reload to swap weights, and the LB's
// /admin/rollout endpoint to publish progress so operators (and CI
// assertions) can watch the fleet's /debug/vars. The promotion step for one
// replica is:
//
//	drain → reload → fingerprint check → statistical gate → readmit →
//	error-budget window
//
// Any failure halts the rollout, restores the previous model file, reloads
// every replica that already picked up the candidate, readmits everything,
// and reports phase "rolled_back" with the halt reason.
package rollout

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gendt/internal/ckpt"
	"gendt/internal/lb"
	"gendt/internal/serve"
)

// Rollout defaults.
const (
	DefaultBudgetWindow      = 3 * time.Second
	DefaultErrBudget         = 0.02
	DefaultP99Factor         = 3.0
	DefaultMinWindowRequests = 10
	DefaultDrainTimeout      = 30 * time.Second
)

// Options configures one rollout. LB, AdminToken, Replicas, ModelPath and
// Candidate are required; zero values elsewhere take the defaults above.
type Options struct {
	// LB is the balancer's base URL (its admin API drives membership and
	// receives rollout state).
	LB string
	// AdminToken authenticates against the LB's mutating admin endpoints.
	AdminToken string
	// Replicas are the replica base URLs in promotion order. They must
	// match the names the LB knows them by (its /debug/vars keys).
	Replicas []string

	// ModelPath is the model file every replica serves from (the path in
	// its -model flag); the rollout atomically replaces it with Candidate
	// so a replica's /admin/reload picks the new weights up.
	ModelPath string
	// Candidate is the model file being promoted.
	Candidate string
	// Backup is where the pre-rollout ModelPath contents are saved for
	// rollback. Default ModelPath + ".prev".
	Backup string
	// Model is the registered model name on the replicas (empty = their
	// single-model default).
	Model string

	// WantFingerprint, when non-empty, is the hex weight fingerprint the
	// replica must report on /v1/models after reload — the cheap proof the
	// swap actually happened before the statistical gate runs.
	WantFingerprint string

	// Gate validates one freshly reloaded replica (gendt-rollout wires the
	// remote statistical suite here). Nil skips the gate.
	Gate func(ctx context.Context, replica string) error

	// BudgetWindow is how long a readmitted replica takes fleet traffic
	// before the error budget is checked. <0 disables the window.
	BudgetWindow time.Duration
	// ErrBudget is the absolute error-rate headroom over the pre-rollout
	// baseline the post-readmit window is allowed.
	ErrBudget float64
	// P99Factor caps the window's p99 latency at this multiple of the
	// pre-rollout baseline p99.
	P99Factor float64
	// MinWindowRequests is the smallest window sample that can breach the
	// budget; below it the window trivially passes (no traffic, no signal).
	MinWindowRequests int64
	// DrainTimeout bounds the wait for a draining replica's in-flight
	// count to reach zero.
	DrainTimeout time.Duration

	// Client is the HTTP client for every call. Nil uses a 30s-timeout
	// default.
	Client *http.Client
	// Sleep is the budget-window wait, injectable for tests. Nil sleeps.
	Sleep func(d time.Duration)
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Backup == "" {
		o.Backup = o.ModelPath + ".prev"
	}
	if o.BudgetWindow == 0 {
		o.BudgetWindow = DefaultBudgetWindow
	}
	if o.ErrBudget <= 0 {
		o.ErrBudget = DefaultErrBudget
	}
	if o.P99Factor <= 0 {
		o.P99Factor = DefaultP99Factor
	}
	if o.MinWindowRequests <= 0 {
		o.MinWindowRequests = DefaultMinWindowRequests
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Controller runs one rollout.
type Controller struct {
	opt      Options
	baseline budgetBaseline
}

// New validates the required options and returns a controller.
func New(opt Options) (*Controller, error) {
	switch {
	case opt.LB == "":
		return nil, fmt.Errorf("rollout: Options.LB is required")
	case opt.AdminToken == "":
		return nil, fmt.Errorf("rollout: Options.AdminToken is required")
	case len(opt.Replicas) == 0:
		return nil, fmt.Errorf("rollout: Options.Replicas is required")
	case opt.ModelPath == "":
		return nil, fmt.Errorf("rollout: Options.ModelPath is required")
	case opt.Candidate == "":
		return nil, fmt.Errorf("rollout: Options.Candidate is required")
	}
	return &Controller{opt: opt.withDefaults()}, nil
}

// Run executes the rollout. A nil error means every replica was promoted
// and the fleet serves the candidate; a non-nil error means the rollout
// halted, the previous model was restored fleet-wide, and the error carries
// the halt reason (the same reason published to the LB's rollout state).
func (c *Controller) Run(ctx context.Context) error {
	o := c.opt

	prev, err := os.ReadFile(o.ModelPath)
	if err != nil {
		return fmt.Errorf("rollout: read current model: %w", err)
	}
	cand, err := os.ReadFile(o.Candidate)
	if err != nil {
		return fmt.Errorf("rollout: read candidate: %w", err)
	}
	if err := ckpt.WriteFileAtomic(ckpt.OSFS{}, o.Backup, prev); err != nil {
		return fmt.Errorf("rollout: write backup: %w", err)
	}
	o.Logf("rollout: backed up %s (%d bytes) to %s", o.ModelPath, len(prev), o.Backup)

	base, err := c.lbVars(ctx)
	if err != nil {
		return fmt.Errorf("rollout: baseline /debug/vars: %w", err)
	}
	c.baseline = baselineFrom(base)
	o.Logf("rollout: baseline err-rate %.4f, p99 %.0fms over %d requests",
		c.baseline.errRate, c.baseline.p99ms, c.baseline.requests)

	if err := ckpt.WriteFileAtomic(ckpt.OSFS{}, o.ModelPath, cand); err != nil {
		return fmt.Errorf("rollout: stage candidate: %w", err)
	}
	o.Logf("rollout: staged candidate %s over %s", o.Candidate, o.ModelPath)

	for i, rep := range o.Replicas {
		if err := c.promote(ctx, i, rep); err != nil {
			c.rollback(ctx, i, prev, err)
			return fmt.Errorf("rollout: halted at %s: %w (previous model restored)", rep, err)
		}
		c.postState(ctx, lb.RolloutState{
			Phase: lb.RolloutRolling, Step: "promoted", Model: o.Candidate,
			Target: rep, Promoted: i + 1, Total: len(o.Replicas),
		})
		o.Logf("rollout: promoted %s (%d/%d)", rep, i+1, len(o.Replicas))
	}

	c.postState(ctx, lb.RolloutState{
		Phase: lb.RolloutDone, Model: o.Candidate,
		Promoted: len(o.Replicas), Total: len(o.Replicas),
	})
	o.Logf("rollout: done, %d replicas serving %s", len(o.Replicas), o.Candidate)
	return nil
}

// promote runs the per-replica state machine: drain → reload → fingerprint
// → gate → readmit → budget window.
func (c *Controller) promote(ctx context.Context, i int, rep string) error {
	o := c.opt
	step := func(s string) {
		c.postState(ctx, lb.RolloutState{
			Phase: lb.RolloutRolling, Step: s, Model: o.Candidate,
			Target: rep, Promoted: i, Total: len(o.Replicas),
		})
		o.Logf("rollout: %s: %s", rep, s)
	}

	step("drain")
	if err := c.adminReplica(ctx, "drain", rep); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := c.waitDrained(ctx, rep); err != nil {
		return fmt.Errorf("drain: %w", err)
	}

	step("reload")
	if err := c.reload(ctx, rep); err != nil {
		return fmt.Errorf("reload: %w", err)
	}

	if o.WantFingerprint != "" {
		step("fingerprint")
		if err := c.checkFingerprint(ctx, rep); err != nil {
			return fmt.Errorf("fingerprint: %w", err)
		}
	}

	if o.Gate != nil {
		step("gate")
		if err := o.Gate(ctx, rep); err != nil {
			return fmt.Errorf("gate: %w", err)
		}
	}

	step("readmit")
	if err := c.adminReplica(ctx, "readmit", rep); err != nil {
		return fmt.Errorf("readmit: %w", err)
	}

	if o.BudgetWindow > 0 {
		step("budget-window")
		pre, err := c.lbVars(ctx)
		if err != nil {
			return fmt.Errorf("budget window: %w", err)
		}
		o.Sleep(o.BudgetWindow)
		post, err := c.lbVars(ctx)
		if err != nil {
			return fmt.Errorf("budget window: %w", err)
		}
		w := windowFrom(pre, post)
		o.Logf("rollout: %s: window %d requests, err-rate %.4f, p99 %.0fms",
			rep, w.requests, w.errRate, w.p99ms)
		if err := checkBudget(c.baseline, w, o.ErrBudget, o.P99Factor, o.MinWindowRequests); err != nil {
			return fmt.Errorf("error budget: %w", err)
		}
	}
	return nil
}

// rollback restores the previous model file, reloads every replica that
// may have picked up the candidate (indexes 0..failed inclusive), readmits
// everything, and publishes the rolled_back state. Best-effort by design:
// a replica that cannot be reached still gets the restored file on its
// next reload, and readmit failures leave it drained (safe, visible).
func (c *Controller) rollback(ctx context.Context, failed int, prev []byte, cause error) {
	o := c.opt
	o.Logf("rollout: rolling back: %v", cause)
	if err := ckpt.WriteFileAtomic(ckpt.OSFS{}, o.ModelPath, prev); err != nil {
		o.Logf("rollout: ROLLBACK FAILED to restore %s: %v", o.ModelPath, err)
	}
	for j := 0; j <= failed && j < len(o.Replicas); j++ {
		rep := o.Replicas[j]
		if err := c.reload(ctx, rep); err != nil {
			o.Logf("rollout: rollback reload %s: %v", rep, err)
		}
		if err := c.adminReplica(ctx, "readmit", rep); err != nil {
			o.Logf("rollout: rollback readmit %s: %v", rep, err)
		}
	}
	c.postState(ctx, lb.RolloutState{
		Phase: lb.RolloutRolledBack, Model: o.Candidate,
		Target: o.Replicas[failed], Promoted: failed, Total: len(o.Replicas),
		Reason: cause.Error(),
	})
}

// adminReplica POSTs one membership action to the LB.
func (c *Controller) adminReplica(ctx context.Context, action, rep string) error {
	body, _ := json.Marshal(lb.AdminReplicaRequest{Action: action, Replica: rep})
	return c.postJSON(ctx, c.opt.LB+lb.EndpointAdminReplicas, body, nil)
}

// postState publishes rollout progress to the LB's /debug/vars. Failures
// are logged, not fatal: losing visibility must not halt (or un-halt) a
// rollout.
func (c *Controller) postState(ctx context.Context, s lb.RolloutState) {
	body, _ := json.Marshal(s)
	if err := c.postJSON(ctx, c.opt.LB+lb.EndpointAdminRollout, body, nil); err != nil {
		c.opt.Logf("rollout: post state: %v", err)
	}
}

// waitDrained polls the LB's /debug/vars until the replica's in-flight
// gauge reads zero twice in a row (mirroring the LB's own drain wait, but
// observed from outside).
func (c *Controller) waitDrained(ctx context.Context, rep string) error {
	deadline := time.Now().Add(c.opt.DrainTimeout)
	zeros := 0
	for {
		v, err := c.lbVars(ctx)
		if err != nil {
			return err
		}
		r, ok := v.Replicas[rep]
		if !ok {
			return fmt.Errorf("replica %q not in LB /debug/vars", rep)
		}
		if r.InFlight == 0 {
			zeros++
			if zeros >= 2 {
				return nil
			}
		} else {
			zeros = 0
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica %q still has %d in flight after %s", rep, r.InFlight, c.opt.DrainTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// reload drives the replica's /admin/reload and fails if any model source
// failed to load.
func (c *Controller) reload(ctx context.Context, rep string) error {
	var resp serve.ReloadResponse
	err := c.postJSON(ctx, rep+serve.EndpointReload, nil, &resp)
	if err != nil {
		// A reload that loaded nothing is a hard failure even though the
		// endpoint reports 500: surface the per-model errors.
		if len(resp.Models) == 0 {
			return err
		}
	}
	if resp.Failures > 0 {
		var errs []string
		for _, st := range resp.Models {
			if st.Error != "" {
				errs = append(errs, st.Name+": "+st.Error)
			}
		}
		return fmt.Errorf("%d model(s) failed to load: %s", resp.Failures, strings.Join(errs, "; "))
	}
	return nil
}

// checkFingerprint confirms the replica now serves weights with the
// expected fingerprint.
func (c *Controller) checkFingerprint(ctx context.Context, rep string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep+serve.EndpointModels, nil)
	if err != nil {
		return err
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var doc struct {
		Models []serve.ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decode /v1/models: %w", err)
	}
	for _, m := range doc.Models {
		if c.opt.Model != "" && m.Name != c.opt.Model {
			continue
		}
		if m.Fingerprint == c.opt.WantFingerprint {
			return nil
		}
		return fmt.Errorf("replica serves fingerprint %s, want %s", m.Fingerprint, c.opt.WantFingerprint)
	}
	return fmt.Errorf("model %q not registered on replica", c.opt.Model)
}

// lbVars fetches and decodes the LB's /debug/vars.
func (c *Controller) lbVars(ctx context.Context) (lb.VarsSnap, error) {
	var v lb.VarsSnap
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opt.LB+"/debug/vars", nil)
	if err != nil {
		return v, err
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("GET /debug/vars: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return v, fmt.Errorf("decode /debug/vars: %w", err)
	}
	return v, nil
}

// postJSON POSTs body (with the admin bearer token) and decodes the
// response into out when non-nil. Non-2xx responses become errors that
// carry the server's error message; the decoded body is still populated
// when possible so callers can inspect structured failures.
func (c *Controller) postJSON(ctx context.Context, url string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+c.opt.AdminToken)
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if out != nil {
		_ = json.Unmarshal(raw, out)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := strings.TrimSpace(string(raw))
		if len(msg) > 300 {
			msg = msg[:300]
		}
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, msg)
	}
	return nil
}
