package rollout

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gendt/internal/lb"
	"gendt/internal/serve"
)

const testToken = "test-admin-token"

// fakeReplica is a stand-in gendt-serve: it answers /healthz, /admin/reload
// (serving whatever the shared model file currently holds), and /v1/models
// with the "fingerprint" read from that file. The model files in these
// tests are plain strings — the rollout controller never parses them, it
// only moves bytes and trusts the replica's reload/fingerprint reporting.
type fakeReplica struct {
	srv        *httptest.Server
	modelPath  string
	reloads    atomic.Int64
	failReload atomic.Bool
	serving    atomic.Value // string: contents at last reload
}

func newFakeReplica(t *testing.T, modelPath string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{modelPath: modelPath}
	f.serving.Store(mustRead(t, modelPath))
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc(serve.EndpointReload, func(w http.ResponseWriter, _ *http.Request) {
		f.reloads.Add(1)
		if f.failReload.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(serve.ReloadResponse{
				Models:   []serve.ReloadStatus{{Name: "default", Error: "checksum mismatch"}},
				Failures: 1,
			})
			return
		}
		b, err := os.ReadFile(f.modelPath)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(serve.ReloadResponse{
				Models:   []serve.ReloadStatus{{Name: "default", Error: err.Error()}},
				Failures: 1,
			})
			return
		}
		f.serving.Store(string(b))
		json.NewEncoder(w).Encode(serve.ReloadResponse{Models: []serve.ReloadStatus{{Name: "default"}}})
	})
	mux.HandleFunc(serve.EndpointModels, func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"models": []serve.ModelInfo{{Name: "default", Fingerprint: f.serving.Load().(string)}},
		})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fixture wires N fake replicas behind a real LB and a shared model file.
type fixture struct {
	lbSrv    *httptest.Server
	balancer *lb.LB
	reps     []*fakeReplica
	model    string // shared serving path
	cand     string // candidate path
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	cand := filepath.Join(dir, "candidate.json")
	if err := os.WriteFile(model, []byte("old-model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cand, []byte("new-model"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := &fixture{model: model, cand: cand}
	var urls []string
	for i := 0; i < n; i++ {
		r := newFakeReplica(t, model)
		f.reps = append(f.reps, r)
		urls = append(urls, r.srv.URL)
	}
	balancer, err := lb.New(lb.Options{Replicas: urls, AdminToken: testToken})
	if err != nil {
		t.Fatal(err)
	}
	f.balancer = balancer
	f.lbSrv = httptest.NewServer(balancer.Handler())
	t.Cleanup(f.lbSrv.Close)
	return f
}

func (f *fixture) options() Options {
	var urls []string
	for _, r := range f.reps {
		urls = append(urls, r.srv.URL)
	}
	return Options{
		LB: f.lbSrv.URL, AdminToken: testToken, Replicas: urls,
		ModelPath: f.model, Candidate: f.cand,
		WantFingerprint: "new-model",
		BudgetWindow:    time.Millisecond,
		Sleep:           func(time.Duration) {},
	}
}

func run(t *testing.T, opt Options) error {
	t.Helper()
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return c.Run(ctx)
}

func TestRolloutPromotesAllReplicas(t *testing.T) {
	f := newFixture(t, 3)
	var gated []string
	opt := f.options()
	opt.Gate = func(_ context.Context, rep string) error {
		gated = append(gated, rep)
		return nil
	}
	if err := run(t, opt); err != nil {
		t.Fatalf("rollout failed: %v", err)
	}
	if got := mustRead(t, f.model); got != "new-model" {
		t.Fatalf("serving path holds %q, want candidate", got)
	}
	if got := mustRead(t, f.model+".prev"); got != "old-model" {
		t.Fatalf("backup holds %q, want previous model", got)
	}
	if len(gated) != 3 {
		t.Fatalf("gate ran %d times, want 3", len(gated))
	}
	for i, r := range f.reps {
		if n := r.reloads.Load(); n != 1 {
			t.Errorf("replica %d reloaded %d times, want 1", i, n)
		}
		if s := r.serving.Load().(string); s != "new-model" {
			t.Errorf("replica %d serving %q, want new-model", i, s)
		}
	}
	st := f.balancer.RolloutState()
	if st.Phase != lb.RolloutDone || st.Promoted != 3 {
		t.Fatalf("rollout state = %+v, want done 3/3", st)
	}
	// Every replica must be back in rotation.
	for name, rs := range f.balancer.Snapshot().Replicas {
		if rs.Draining || !rs.Member {
			t.Errorf("replica %s left draining=%v member=%v", name, rs.Draining, rs.Member)
		}
	}
}

func TestGateFailureRollsBack(t *testing.T) {
	f := newFixture(t, 3)
	opt := f.options()
	opt.Gate = func(_ context.Context, rep string) error {
		if rep == f.reps[1].srv.URL {
			return fmt.Errorf("dist/RSRP/ks observed above limit")
		}
		return nil
	}
	err := run(t, opt)
	if err == nil {
		t.Fatal("rollout passed, want halt on gate failure")
	}
	if !strings.Contains(err.Error(), "dist/RSRP/ks") {
		t.Fatalf("error %v does not carry the gate failure", err)
	}
	if got := mustRead(t, f.model); got != "old-model" {
		t.Fatalf("serving path holds %q after rollback, want old-model", got)
	}
	// Replica 0 was promoted then rolled back (2 reloads); replica 1
	// reloaded for promotion and again for rollback; replica 2 untouched.
	if n := f.reps[0].reloads.Load(); n != 2 {
		t.Errorf("replica 0 reloaded %d times, want 2 (promote + rollback)", n)
	}
	if n := f.reps[2].reloads.Load(); n != 0 {
		t.Errorf("replica 2 reloaded %d times, want 0", n)
	}
	for i := range f.reps {
		if s := f.reps[i].serving.Load().(string); s != "old-model" {
			t.Errorf("replica %d serving %q after rollback, want old-model", i, s)
		}
	}
	st := f.balancer.RolloutState()
	if st.Phase != lb.RolloutRolledBack {
		t.Fatalf("rollout phase %q, want rolled_back", st.Phase)
	}
	if !strings.Contains(st.Reason, "dist/RSRP/ks") {
		t.Fatalf("rollback reason %q does not carry the gate failure", st.Reason)
	}
	for name, rs := range f.balancer.Snapshot().Replicas {
		if rs.Draining {
			t.Errorf("replica %s left draining after rollback", name)
		}
	}
}

func TestReloadFailureRollsBack(t *testing.T) {
	f := newFixture(t, 2)
	f.reps[0].failReload.Store(true)
	err := run(t, f.options())
	if err == nil {
		t.Fatal("rollout passed, want halt on reload failure")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("error %v does not carry the reload failure", err)
	}
	if got := mustRead(t, f.model); got != "old-model" {
		t.Fatalf("serving path holds %q after rollback, want old-model", got)
	}
	if st := f.balancer.RolloutState(); st.Phase != lb.RolloutRolledBack {
		t.Fatalf("rollout phase %q, want rolled_back", st.Phase)
	}
}

func TestFingerprintMismatchRollsBack(t *testing.T) {
	f := newFixture(t, 2)
	opt := f.options()
	opt.WantFingerprint = "0000deadbeef0000"
	err := run(t, opt)
	if err == nil {
		t.Fatal("rollout passed, want halt on fingerprint mismatch")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error %v is not a fingerprint failure", err)
	}
	if got := mustRead(t, f.model); got != "old-model" {
		t.Fatalf("serving path holds %q after rollback, want old-model", got)
	}
}

func TestBadAdminTokenFailsBeforeTouchingModels(t *testing.T) {
	f := newFixture(t, 2)
	opt := f.options()
	opt.AdminToken = "wrong"
	err := run(t, opt)
	if err == nil {
		t.Fatal("rollout passed with a bad admin token")
	}
	// The candidate was staged and then restored by the rollback; no
	// replica may have picked it up.
	for i := range f.reps {
		if s := f.reps[i].serving.Load().(string); s != "old-model" {
			t.Errorf("replica %d serving %q, want old-model", i, s)
		}
	}
	if got := mustRead(t, f.model); got != "old-model" {
		t.Fatalf("serving path holds %q, want old-model restored", got)
	}
}

func TestCheckBudget(t *testing.T) {
	base := budgetBaseline{requests: 1000, errRate: 0.01, p99ms: 100}
	cases := []struct {
		name string
		w    windowStats
		ok   bool
	}{
		{"healthy", windowStats{requests: 100, errRate: 0.01, p99ms: 100}, true},
		{"err within budget", windowStats{requests: 100, errRate: 0.02, p99ms: 100}, true},
		{"err breach", windowStats{requests: 100, errRate: 0.5, p99ms: 100}, false},
		{"p99 within factor", windowStats{requests: 100, errRate: 0, p99ms: 250}, true},
		{"p99 breach", windowStats{requests: 100, errRate: 0, p99ms: 500}, false},
		{"tiny window trivially passes", windowStats{requests: 3, errRate: 1, p99ms: 5000}, true},
	}
	for _, tc := range cases {
		err := checkBudget(base, tc.w, 0.02, 3.0, 10)
		if (err == nil) != tc.ok {
			t.Errorf("%s: checkBudget = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// A cold baseline (no traffic) must not enforce a p99 cap.
	cold := budgetBaseline{}
	if err := checkBudget(cold, windowStats{requests: 100, errRate: 0, p99ms: 5000}, 0.02, 3.0, 10); err != nil {
		t.Errorf("cold baseline enforced p99 cap: %v", err)
	}
}

func TestHistQuantile(t *testing.T) {
	buckets := map[string]int64{"10": 90, "50": 9, "200": 1}
	if got := histQuantile(buckets, 0.99); got != 50 {
		t.Errorf("p99 = %v, want 50 (rank 99 of 100 lands in le=50)", got)
	}
	if got := histQuantile(buckets, 0.5); got != 10 {
		t.Errorf("p50 = %v, want 10", got)
	}
	if got := histQuantile(map[string]int64{"10": 1}, 0.99); got != 10 {
		t.Errorf("single bucket p99 = %v, want 10", got)
	}
	if got := histQuantile(nil, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
	inf := histQuantile(map[string]int64{"10": 1, "+Inf": 99}, 0.99)
	if !(inf > 1e308) {
		t.Errorf("overflow-dominated p99 = %v, want +Inf", inf)
	}
}

func TestWindowFromDeltas(t *testing.T) {
	pre := lb.VarsSnap{Requests: 100, Errors: 1,
		Latency: serve.HistogramSnap{Buckets: map[string]int64{"10": 99, "50": 1}}}
	post := lb.VarsSnap{Requests: 300, Errors: 5,
		Latency: serve.HistogramSnap{Buckets: map[string]int64{"10": 150, "50": 150}}}
	w := windowFrom(pre, post)
	if w.requests != 200 {
		t.Fatalf("window requests = %d, want 200", w.requests)
	}
	if w.errRate != 0.02 {
		t.Fatalf("window err rate = %v, want 0.02", w.errRate)
	}
	// Window histogram: 51 in le=10, 149 in le=50 → p99 lands in le=50.
	if w.p99ms != 50 {
		t.Fatalf("window p99 = %v, want 50", w.p99ms)
	}
}
