package baselines

import "gendt/internal/core"

// GenDT adapts a core.Model to the Generator interface so the experiment
// harnesses can treat it uniformly with the baselines.
type GenDT struct {
	Model *core.Model
	Label string
}

// NewGenDT wraps a freshly constructed GenDT model.
func NewGenDT(cfg core.Config) *GenDT {
	return &GenDT{Model: core.NewModel(cfg), Label: "GenDT"}
}

// Name implements Generator.
func (g *GenDT) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "GenDT"
}

// Fit implements Generator.
func (g *GenDT) Fit(seqs []*core.Sequence) { g.Model.Train(seqs, nil) }

// Generate implements Generator.
func (g *GenDT) Generate(seq *core.Sequence) [][]float64 { return g.Model.Generate(seq) }
