package baselines

import (
	"math"
	"testing"

	"gendt/internal/core"
)

// TestBaselinesSeedDeterminism: two independently constructed instances of
// the same baseline with the same seed, fit on the same data, must
// generate bit-identical series of the right shape with no NaN/Inf. This
// pins the reproducibility contract the evaluation tables rely on.
func TestBaselinesSeedDeterminism(t *testing.T) {
	train, test := prepared(t)
	cases := []struct {
		name string
		mk   func() Generator
	}{
		{"FDaS", func() Generator { return NewFDaS(2, 21) }},
		{"MLP", func() Generator { return NewMLP(2, 8, 2, 2e-3, 22) }},
		{"LSTM-GNN", func() Generator { return NewLSTMGNN(2, 8, 2, 3e-3, 23) }},
		{"Orig. DG", func() Generator { return NewDG(2, 8, 2, false, 24) }},
		{"Real Cont. DG", func() Generator { return NewDG(2, 8, 2, true, 25) }},
		{"GenDT", func() Generator {
			return NewGenDT(core.Config{
				Channels: core.RSRPRSRQChannels(),
				Hidden:   8, BatchLen: 12, StepLen: 6, MaxCells: 6,
				Epochs: 1, Seed: 26, Workers: 1,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.mk(), tc.mk()
			a.Fit(train)
			b.Fit(train)
			for si, seq := range test[:2] {
				outA := a.Generate(seq)
				outB := b.Generate(seq)
				if len(outA) != seq.Len() {
					t.Fatalf("seq %d: generated %d steps, want %d", si, len(outA), seq.Len())
				}
				if len(outA) != len(outB) {
					t.Fatalf("seq %d: lengths differ: %d vs %d", si, len(outA), len(outB))
				}
				for ti := range outA {
					if len(outA[ti]) != 2 {
						t.Fatalf("seq %d step %d: %d channels, want 2", si, ti, len(outA[ti]))
					}
					for c := range outA[ti] {
						va, vb := outA[ti][c], outB[ti][c]
						if math.IsNaN(va) || math.IsInf(va, 0) {
							t.Fatalf("seq %d step %d ch %d: non-finite %v", si, ti, c, va)
						}
						if math.Float64bits(va) != math.Float64bits(vb) {
							t.Fatalf("seq %d step %d ch %d: same seed diverged: %v vs %v",
								si, ti, c, va, vb)
						}
					}
				}
			}
		})
	}
}
