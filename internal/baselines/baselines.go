// Package baselines implements the comparison methods of the paper's §5.2:
// FDaS (fit-distribution-and-sample), an MLP regressor, the LSTM-GNN
// prediction model, and DoppelGANger in both its original form (generated
// context) and the optimized real-context variant. All baselines share the
// Generator interface and operate on the same prepared sequences as GenDT,
// producing normalized [T][Nch] series.
package baselines

import (
	"math/rand"
	"sort"

	"gendt/internal/core"
	"gendt/internal/env"
)

// Generator is the common train/generate contract shared by GenDT and the
// baselines in the experiment harnesses.
type Generator interface {
	Name() string
	// Fit trains the method on the prepared training sequences.
	Fit(seqs []*core.Sequence)
	// Generate synthesizes a normalized KPI series for an unseen sequence.
	Generate(seq *core.Sequence) [][]float64
}

// summaryCells is the number of nearest cells flattened into the fixed-size
// context vector used by the MLP and DG baselines (which, unlike GenDT's
// GNN, cannot consume a variable-size cell set — one of the limitations the
// paper calls out).
const summaryCells = 3

// summaryDim is the fixed context dimensionality for those baselines.
const summaryDim = summaryCells*core.NumCellAttrs + env.NumAttributes

// contextSummary flattens a step's context into a fixed-size vector:
// raw attributes of the nearest summaryCells cells (zero-padded) plus the
// environment context. Baselines consume the paper's raw context
// attributes; the physics-aligned encoding (log-distance, bearing cosine)
// is part of GenDT's customized data processing (§4.2) and stays with
// GenDT.
func contextSummary(seq *core.Sequence, t int) []float64 {
	out := make([]float64, 0, summaryDim)
	n := len(seq.Cells[t]) // respects the sequence's maxCells cap
	for i := 0; i < summaryCells; i++ {
		if i < n {
			out = append(out, core.RawCellAttrs(&seq.Raw[t], i)...)
		} else {
			out = append(out, make([]float64, core.NumCellAttrs)...)
		}
	}
	out = append(out, seq.Env[t]...)
	return out
}

// rawCellSet returns the raw attribute vectors for every capped visible
// cell at step t (used by the LSTM-GNN baseline's node encoder).
func rawCellSet(seq *core.Sequence, t int) [][]float64 {
	n := len(seq.Cells[t])
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = core.RawCellAttrs(&seq.Raw[t], i)
	}
	return out
}

// FDaS fits the empirical distribution of each KPI channel on the training
// data (ignoring time and context entirely) and samples i.i.d. from it —
// strong on HWD when train and test distributions agree, hopeless on
// MAE/DTW (paper §5.2).
type FDaS struct {
	nch    int
	sorted [][]float64 // per-channel sorted training values
	rng    *rand.Rand
}

// NewFDaS returns an FDaS baseline for nch channels.
func NewFDaS(nch int, seed int64) *FDaS {
	return &FDaS{nch: nch, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Generator.
func (f *FDaS) Name() string { return "FDaS" }

// Fit implements Generator: record the empirical per-channel distribution.
func (f *FDaS) Fit(seqs []*core.Sequence) {
	f.sorted = make([][]float64, f.nch)
	for _, s := range seqs {
		for t := 0; t < s.Len(); t++ {
			for c := 0; c < f.nch; c++ {
				f.sorted[c] = append(f.sorted[c], s.KPIs[t][c])
			}
		}
	}
	for c := range f.sorted {
		sort.Float64s(f.sorted[c])
	}
}

// Generate implements Generator: inverse-CDF sampling per step.
func (f *FDaS) Generate(seq *core.Sequence) [][]float64 {
	T := seq.Len()
	out := make([][]float64, T)
	for t := 0; t < T; t++ {
		row := make([]float64, f.nch)
		for c := 0; c < f.nch; c++ {
			vals := f.sorted[c]
			if len(vals) == 0 {
				continue
			}
			row[c] = vals[f.rng.Intn(len(vals))]
		}
		out[t] = row
	}
	return out
}
