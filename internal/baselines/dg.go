package baselines

import (
	"math/rand"

	"gendt/internal/core"
	"gendt/internal/nn"
)

// DG is the DoppelGANger-style baseline (paper §5.2, Appendix B): a
// two-stage generator where the first stage synthesizes the context from
// noise and the second stage generates the KPI series conditioned on that
// context. The original design (RealContext=false) generates its own
// context, so its output is uncorrelated with the test trajectory's actual
// context — which is exactly why the paper finds it weak on all metrics.
// The optimized "Real Context DG" variant (RealContext=true) bypasses the
// context generator and conditions the series generator on the true
// context summary, making it the strongest baseline — but it still lacks
// GenDT's dynamic cell-set handling, stochastic layers, and residual
// generator.
type DG struct {
	RealContext bool

	nch      int
	hidden   int
	noiseDim int
	batchLen int
	epochs   int

	ctxGen  *nn.MLP // stage 1: noise -> pseudo context summary
	series  *nn.LSTM
	out     *nn.Linear
	disc    *nn.LSTM
	discOut *nn.Linear
	genOpt  *nn.Adam
	discOpt *nn.Adam
	rng     *rand.Rand
}

// NewDG builds a DoppelGANger-style baseline.
func NewDG(nch, hidden, epochs int, realContext bool, seed int64) *DG {
	rng := rand.New(rand.NewSource(seed))
	noiseDim := 4
	d := &DG{
		RealContext: realContext,
		nch:         nch,
		hidden:      hidden,
		noiseDim:    noiseDim,
		batchLen:    40,
		epochs:      epochs,
		series:      nn.NewLSTM(summaryDim+noiseDim, hidden, rng),
		out:         nn.NewLinear(hidden, nch, rng),
		disc:        nn.NewLSTM(nch+summaryDim, hidden, rng),
		discOut:     nn.NewLinear(hidden, 1, rng),
		genOpt:      nn.NewAdam(2e-3),
		discOpt:     nn.NewAdam(1e-3),
		rng:         rng,
	}
	if !realContext {
		d.ctxGen = nn.NewMLP([]int{noiseDim, hidden, summaryDim}, 0.1, rng)
	}
	return d
}

// Name implements Generator.
func (d *DG) Name() string {
	if d.RealContext {
		return "Real Cont. DG"
	}
	return "Orig. DG"
}

func (d *DG) genParams() []*nn.Param {
	ps := append(d.series.Params(), d.out.Params()...)
	if d.ctxGen != nil {
		ps = append(ps, d.ctxGen.Params()...)
	}
	return ps
}

func (d *DG) discParams() []*nn.Param {
	return append(d.disc.Params(), d.discOut.Params()...)
}

// seriesForward rolls the series generator over L steps given per-step
// context vectors, returning outputs (caches retained for backward).
func (d *DG) seriesForward(ctx [][]float64) [][]float64 {
	L := len(ctx)
	d.series.ResetState()
	out := make([][]float64, L)
	for t := 0; t < L; t++ {
		in := make([]float64, 0, summaryDim+d.noiseDim)
		in = append(in, ctx[t]...)
		for z := 0; z < d.noiseDim; z++ {
			in = append(in, d.rng.NormFloat64())
		}
		h := d.series.Step(in)
		out[t] = d.out.Forward(h)
	}
	return out
}

// seriesBackward unwinds seriesForward with the given output gradients.
func (d *DG) seriesBackward(dOut [][]float64) {
	L := len(dOut)
	dH := make([][]float64, L)
	for t := L - 1; t >= 0; t-- {
		dH[t] = d.out.Backward(dOut[t])
	}
	d.series.BackwardSeq(dH)
}

// discriminate runs the discriminator over (series, context) and returns
// the logit.
func (d *DG) discriminate(x, ctx [][]float64) float64 {
	d.disc.ResetState()
	var last []float64
	for t := range x {
		in := make([]float64, 0, d.nch+summaryDim)
		in = append(in, x[t]...)
		in = append(in, ctx[t]...)
		last = d.disc.Step(in)
	}
	return d.discOut.Forward(last)[0]
}

func (d *DG) discBackward(dLogit float64, L int) [][]float64 {
	dLast := d.discOut.Backward([]float64{dLogit})
	dH := make([][]float64, L)
	for t := 0; t < L-1; t++ {
		dH[t] = make([]float64, d.hidden)
	}
	dH[L-1] = dLast
	dIn := d.disc.BackwardSeq(dH)
	dx := make([][]float64, L)
	for t := 0; t < L; t++ {
		dx[t] = dIn[t][:d.nch]
	}
	return dx
}

// contexts returns the conditioning context per step of a training window:
// the real summary for Real-Context DG, or a generated pseudo-context
// (one draw held constant over the window, as DG generates metadata once
// per series) for the original design.
func (d *DG) contexts(seq *core.Sequence, lo, L int) [][]float64 {
	out := make([][]float64, L)
	if d.RealContext {
		for t := 0; t < L; t++ {
			out[t] = contextSummary(seq, lo+t)
		}
		return out
	}
	noise := make([]float64, d.noiseDim)
	for i := range noise {
		noise[i] = d.rng.NormFloat64()
	}
	ctx := d.ctxGen.Forward(noise)
	for t := 0; t < L; t++ {
		out[t] = ctx
	}
	return out
}

// Fit implements Generator: adversarial training with an auxiliary MSE
// term (for the real-context variant, whose conditioning makes pointwise
// supervision meaningful; the original variant trains adversarially plus
// window moment matching, since its generated context has no alignment
// with any particular real window).
func (d *DG) Fit(seqs []*core.Sequence) {
	type win struct {
		seq *core.Sequence
		lo  int
	}
	var wins []win
	for _, s := range seqs {
		for lo := 0; lo+d.batchLen <= s.Len(); lo += d.batchLen {
			wins = append(wins, win{s, lo})
		}
	}
	if len(wins) == 0 {
		return
	}
	L := d.batchLen
	for e := 0; e < d.epochs; e++ {
		d.rng.Shuffle(len(wins), func(i, j int) { wins[i], wins[j] = wins[j], wins[i] })
		for _, w := range wins {
			real := w.seq.KPIs[w.lo : w.lo+L]
			ctx := d.contexts(w.seq, w.lo, L)
			if d.ctxGen != nil {
				d.ctxGen.ClearCache()
			}
			fake := d.seriesForward(ctx)

			// Discriminator update. For the original DG the discriminator
			// sees real pairs (real series, real context) vs fake pairs
			// (fake series, generated context).
			realCtx := ctx
			if !d.RealContext {
				realCtx = make([][]float64, L)
				for t := 0; t < L; t++ {
					realCtx[t] = contextSummary(w.seq, w.lo+t)
				}
			}
			logitR := d.discriminate(real, realCtx)
			_, gR := nn.BCEWithLogitsLoss(logitR, 1)
			d.discBackward(gR, L)
			logitF := d.discriminate(fake, ctx)
			_, gF := nn.BCEWithLogitsLoss(logitF, 0)
			d.discBackward(gF, L)
			nn.ClipGrads(d.discParams(), 5)
			d.discOpt.Step(d.discParams())

			// Generator update.
			dOut := make([][]float64, L)
			for t := 0; t < L; t++ {
				dOut[t] = make([]float64, d.nch)
			}
			if d.RealContext {
				for t := 0; t < L; t++ {
					_, g := nn.MSELoss(fake[t], real[t])
					for c := range g {
						dOut[t][c] += g[c] / float64(L)
					}
				}
			} else {
				// Window moment matching keeps the unconditional GAN from
				// collapsing at this scale: match per-channel window mean.
				for c := 0; c < d.nch; c++ {
					var mf, mr float64
					for t := 0; t < L; t++ {
						mf += fake[t][c]
						mr += real[t][c]
					}
					g := 2 * (mf - mr) / float64(L*L)
					for t := 0; t < L; t++ {
						dOut[t][c] += g
					}
				}
			}
			logitF2 := d.discriminate(fake, ctx)
			_, gAdv := nn.BCEWithLogitsLoss(logitF2, 1)
			dxAdv := d.discBackward(gAdv, L)
			for _, p := range d.discParams() {
				p.ZeroGrad()
			}
			const lambda = 0.1
			for t := 0; t < L; t++ {
				for c := 0; c < d.nch; c++ {
					dOut[t][c] += lambda * dxAdv[t][c] / float64(L)
				}
			}
			d.seriesBackward(dOut)
			if d.ctxGen != nil {
				// Context-generator gradients flow only through the
				// adversarial pass in full DG; at this scale we train it
				// with the same series gradient signal omitted for
				// simplicity (the paper's point — generated context does
				// not match real context — holds regardless).
				d.ctxGen.ClearCache()
			}
			nn.ClipGrads(d.genParams(), 5)
			d.genOpt.Step(d.genParams())
		}
	}
}

// Generate implements Generator: batch-wise generation (DG also generates
// in batches), conditioned on real context only for the real-context
// variant.
func (d *DG) Generate(seq *core.Sequence) [][]float64 {
	T := seq.Len()
	out := make([][]float64, 0, T)
	for lo := 0; lo < T; lo += d.batchLen {
		L := d.batchLen
		if lo+L > T {
			L = T - lo
		}
		ctx := d.contexts(seq, lo, L)
		if d.ctxGen != nil {
			d.ctxGen.ClearCache()
		}
		batch := d.seriesForward(ctx)
		d.series.ClearCache()
		d.out.ClearCache()
		for t := 0; t < L; t++ {
			row := make([]float64, d.nch)
			for c := 0; c < d.nch; c++ {
				row[c] = clamp01(batch[t][c])
			}
			out = append(out, row)
		}
	}
	return out
}
