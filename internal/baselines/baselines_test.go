package baselines

import (
	"math"
	"testing"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/metrics"
	"gendt/internal/radio"
)

var tinyData = dataset.Spec{Seed: 41, Scale: 0.02}

func prepared(t *testing.T) (train, test []*core.Sequence) {
	t.Helper()
	d := dataset.NewDatasetA(tinyData)
	chans := core.RSRPRSRQChannels()
	return core.PrepareAll(d.TrainRuns(), chans, 6), core.PrepareAll(d.TestRuns(), chans, 6)
}

func flat(series [][]float64, c int) []float64 {
	out := make([]float64, len(series))
	for i := range series {
		out[i] = series[i][c]
	}
	return out
}

func checkGenerator(t *testing.T, g Generator, train, test []*core.Sequence) {
	t.Helper()
	g.Fit(train)
	for _, seq := range test {
		out := g.Generate(seq)
		if len(out) != seq.Len() {
			t.Fatalf("%s: generated %d steps for %d-sample sequence", g.Name(), len(out), seq.Len())
		}
		for ti, row := range out {
			if len(row) != 2 {
				t.Fatalf("%s: row %d has %d channels", g.Name(), ti, len(row))
			}
			for _, v := range row {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("%s: value %v out of [0,1]", g.Name(), v)
				}
			}
		}
	}
}

func TestFDaSInterface(t *testing.T) {
	train, test := prepared(t)
	checkGenerator(t, NewFDaS(2, 1), train, test)
}

func TestFDaSMatchesTrainDistribution(t *testing.T) {
	train, test := prepared(t)
	f := NewFDaS(2, 2)
	f.Fit(train)
	var trainVals []float64
	for _, s := range train {
		trainVals = append(trainVals, flat(s.KPIs, 0)...)
	}
	gen := flat(f.Generate(test[0]), 0)
	hwd, err := metrics.HWD(trainVals, gen, 30)
	if err != nil {
		t.Fatal(err)
	}
	// FDaS by construction reproduces the training distribution.
	if hwd > 0.05 {
		t.Errorf("FDaS HWD vs train distribution = %v, want near 0", hwd)
	}
}

func TestFDaSIgnoresTemporalStructure(t *testing.T) {
	train, test := prepared(t)
	f := NewFDaS(2, 3)
	f.Fit(train)
	gen := flat(f.Generate(test[0]), 0)
	// i.i.d. samples: first-order autocorrelation near zero, unlike real
	// RSRP series which are strongly autocorrelated.
	if ac := autocorr(gen); math.Abs(ac) > 0.2 {
		t.Errorf("FDaS output autocorrelation = %v, want ~0", ac)
	}
	real := flat(test[0].KPIs, 0)
	if ac := autocorr(real); ac < 0.5 {
		t.Errorf("real series autocorrelation = %v, expected strong", ac)
	}
}

func autocorr(xs []float64) float64 {
	m := metrics.Mean(xs)
	var num, den float64
	for i := 1; i < len(xs); i++ {
		num += (xs[i] - m) * (xs[i-1] - m)
	}
	for _, x := range xs {
		den += (x - m) * (x - m)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func TestMLPInterfaceAndLearning(t *testing.T) {
	train, test := prepared(t)
	m := NewMLP(2, 16, 4, 2e-3, 4)
	checkGenerator(t, m, train, test)
	// MLP should beat FDaS on MAE for in-distribution data (it at least
	// uses context), evaluated on a training sequence.
	f := NewFDaS(2, 5)
	f.Fit(train)
	real := flat(train[0].KPIs, 0)
	mlpOut := flat(m.Generate(train[0]), 0)
	fdasOut := flat(f.Generate(train[0]), 0)
	maeM, _ := metrics.MAE(real, mlpOut)
	maeF, _ := metrics.MAE(real, fdasOut)
	if maeM >= maeF {
		t.Errorf("MLP train MAE %v not better than FDaS %v", maeM, maeF)
	}
}

func TestMLPDeterministic(t *testing.T) {
	train, test := prepared(t)
	m := NewMLP(2, 8, 2, 2e-3, 6)
	m.Fit(train)
	a := m.Generate(test[0])
	b := m.Generate(test[0])
	for i := range a {
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				t.Fatal("MLP baseline should be deterministic")
			}
		}
	}
}

func TestLSTMGNNInterface(t *testing.T) {
	train, test := prepared(t)
	g := NewLSTMGNN(2, 10, 2, 3e-3, 7)
	checkGenerator(t, g, train, test)
}

func TestLSTMGNNTrainsWithoutNaN(t *testing.T) {
	train, test := prepared(t)
	g := NewLSTMGNN(2, 10, 3, 3e-3, 8)
	g.Fit(train)
	out := g.Generate(test[0])
	for _, row := range out {
		for _, v := range row {
			if math.IsNaN(v) {
				t.Fatal("LSTM-GNN produced NaN")
			}
		}
	}
}

func TestDGVariantsInterface(t *testing.T) {
	train, test := prepared(t)
	checkGenerator(t, NewDG(2, 10, 2, false, 9), train, test)
	checkGenerator(t, NewDG(2, 10, 2, true, 10), train, test)
}

func TestDGNames(t *testing.T) {
	if NewDG(2, 8, 1, false, 1).Name() != "Orig. DG" {
		t.Error("original DG name")
	}
	if NewDG(2, 8, 1, true, 1).Name() != "Real Cont. DG" {
		t.Error("real context DG name")
	}
}

func TestRealContextDGBeatsOriginalOnMAE(t *testing.T) {
	// The paper's headline comparison: conditioning on real context should
	// track real series better than generated context.
	d := dataset.NewDatasetA(dataset.Spec{Seed: 43, Scale: 0.03})
	chans := []core.ChannelSpec{core.KPIChannel(radio.KPIRSRP)}
	train := core.PrepareAll(d.TrainRuns(), chans, 6)
	test := core.PrepareAll(d.TestRuns(), chans, 6)
	orig := NewDG(1, 12, 4, false, 11)
	realC := NewDG(1, 12, 4, true, 12)
	orig.Fit(train)
	realC.Fit(train)
	var maeO, maeR float64
	for _, s := range test {
		real := flat(s.KPIs, 0)
		o, _ := metrics.MAE(real, flat(orig.Generate(s), 0))
		r, _ := metrics.MAE(real, flat(realC.Generate(s), 0))
		maeO += o
		maeR += r
	}
	if maeR >= maeO {
		t.Errorf("real-context DG MAE %v not better than original DG %v", maeR, maeO)
	}
}

func TestGenDTAdapter(t *testing.T) {
	train, test := prepared(t)
	g := NewGenDT(core.Config{
		Channels: core.RSRPRSRQChannels(),
		Hidden:   10, BatchLen: 12, StepLen: 6, MaxCells: 6, Epochs: 2, Seed: 2,
	})
	if g.Name() != "GenDT" {
		t.Errorf("adapter name = %q", g.Name())
	}
	checkGenerator(t, g, train, test)
}

func TestContextSummaryShape(t *testing.T) {
	_, test := prepared(t)
	cs := contextSummary(test[0], 0)
	if len(cs) != summaryDim {
		t.Fatalf("context summary dim = %d, want %d", len(cs), summaryDim)
	}
}
