package baselines

import (
	"math/rand"

	"gendt/internal/core"
	"gendt/internal/nn"
)

// LSTMGNN is the GNN-based time-series *prediction* baseline (paper §5.2,
// after Tong et al.): a GNN-style cell encoder feeding an LSTM trained to
// predict x_t from the context and the previous KPI values. As a predictor
// it is teacher-forced on real history during training; when used for
// generation it must feed back its own outputs, and it has no batching
// mechanism, no stochastic layers, and no adversarial training — the
// combination the paper blames for its weak generation fidelity.
type LSTMGNN struct {
	nch    int
	node   *nn.MLP  // per-cell encoder ("GNN node")
	lstm   *nn.LSTM // temporal model over [mean embedding ++ prev KPIs]
	out    *nn.Linear
	opt    *nn.Adam
	epochs int
	hidden int
	rng    *rand.Rand
}

// NewLSTMGNN builds the LSTM-GNN baseline.
func NewLSTMGNN(nch, hidden, epochs int, lr float64, seed int64) *LSTMGNN {
	rng := rand.New(rand.NewSource(seed))
	return &LSTMGNN{
		nch:    nch,
		node:   nn.NewMLP([]int{core.NumCellAttrs, hidden, hidden}, 0.1, rng),
		lstm:   nn.NewLSTM(hidden+nch, hidden, rng),
		out:    nn.NewLinear(hidden, nch, rng),
		opt:    nn.NewAdam(lr),
		epochs: epochs,
		hidden: hidden,
		rng:    rng,
	}
}

// Name implements Generator.
func (l *LSTMGNN) Name() string { return "LSTM-GNN" }

func (l *LSTMGNN) params() []*nn.Param {
	ps := l.node.Params()
	ps = append(ps, l.lstm.Params()...)
	ps = append(ps, l.out.Params()...)
	return ps
}

// embed computes the mean cell embedding at step t. It caches node
// activations; callers must unwind them (training) or clear them
// (generation).
func (l *LSTMGNN) embed(seq *core.Sequence, t int) ([]float64, int) {
	cc := rawCellSet(seq, t)
	avg := make([]float64, l.hidden)
	if len(cc) == 0 {
		return avg, 0
	}
	for _, attrs := range cc {
		h := l.node.Forward(attrs)
		for j, v := range h {
			avg[j] += v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(cc))
	}
	return avg, len(cc)
}

// Fit implements Generator: teacher-forced next-step prediction over
// full sequences (no batching mechanism).
func (l *LSTMGNN) Fit(seqs []*core.Sequence) {
	for e := 0; e < l.epochs; e++ {
		for _, s := range seqs {
			T := s.Len()
			if T < 2 {
				continue
			}
			// Cap BPTT length for tractability; prediction models are
			// typically trained on truncated BPTT anyway.
			const maxT = 120
			start := 0
			if T > maxT {
				start = l.rng.Intn(T - maxT)
				T = start + maxT
			}
			l.lstm.ResetState()
			type stepCache struct {
				nCells int
				dOut   []float64
			}
			var caches []stepCache
			var outGrads [][]float64
			for t := start; t < T; t++ {
				emb, nCells := l.embed(s, t)
				var prev []float64
				if t == start {
					prev = make([]float64, l.nch)
				} else {
					prev = s.KPIs[t-1] // teacher forcing on real history
				}
				in := append(append([]float64{}, emb...), prev...)
				h := l.lstm.Step(in)
				pred := l.out.Forward(h)
				_, g := nn.MSELoss(pred, s.KPIs[t])
				caches = append(caches, stepCache{nCells: nCells})
				outGrads = append(outGrads, g)
			}
			// Backward: output layer per step (reverse), then BPTT, then
			// node encoder per cell (reverse).
			n := len(outGrads)
			dH := make([][]float64, n)
			for i := n - 1; i >= 0; i-- {
				dH[i] = l.out.Backward(outGrads[i])
			}
			dIn := l.lstm.BackwardSeq(dH)
			for i := n - 1; i >= 0; i-- {
				dEmb := dIn[i][:l.hidden]
				nc := caches[i].nCells
				for c := nc - 1; c >= 0; c-- {
					g := make([]float64, l.hidden)
					for j := range g {
						g[j] = dEmb[j] / float64(nc)
					}
					l.node.Backward(g)
				}
			}
			nn.ClipGrads(l.params(), 5)
			l.opt.Step(l.params())
		}
	}
}

// Generate implements Generator: closed-loop autoregressive rollout over
// the whole sequence in one shot.
func (l *LSTMGNN) Generate(seq *core.Sequence) [][]float64 {
	T := seq.Len()
	out := make([][]float64, T)
	l.lstm.ResetState()
	prev := make([]float64, l.nch)
	for t := 0; t < T; t++ {
		emb, _ := l.embed(seq, t)
		l.node.ClearCache()
		in := append(append([]float64{}, emb...), prev...)
		h := l.lstm.Step(in)
		pred := l.out.Forward(h)
		l.out.ClearCache()
		row := make([]float64, l.nch)
		for c := 0; c < l.nch; c++ {
			row[c] = clamp01(pred[c])
		}
		out[t] = row
		prev = row
	}
	l.lstm.ClearCache()
	return out
}
