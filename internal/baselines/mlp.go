package baselines

import (
	"math/rand"

	"gendt/internal/core"
	"gendt/internal/nn"
)

// MLP is the pointwise regression baseline (paper §5.2): it infers each
// KPI independently at each timestep from the context summary alone — no
// temporal model and no stochasticity, so it misses both the dynamics
// (poor DTW) and the distribution (poor HWD).
type MLP struct {
	nch    int
	net    *nn.MLP
	opt    *nn.Adam
	epochs int
	rng    *rand.Rand
}

// NewMLP builds the MLP baseline.
func NewMLP(nch, hidden, epochs int, lr float64, seed int64) *MLP {
	rng := rand.New(rand.NewSource(seed))
	return &MLP{
		nch:    nch,
		net:    nn.NewMLP([]int{summaryDim, hidden, hidden, nch}, 0.1, rng),
		opt:    nn.NewAdam(lr),
		epochs: epochs,
		rng:    rng,
	}
}

// Name implements Generator.
func (m *MLP) Name() string { return "MLP" }

// Fit implements Generator: plain supervised regression over all steps.
func (m *MLP) Fit(seqs []*core.Sequence) {
	type example struct{ x, y []float64 }
	var data []example
	for _, s := range seqs {
		for t := 0; t < s.Len(); t++ {
			data = append(data, example{contextSummary(s, t), s.KPIs[t]})
		}
	}
	if len(data) == 0 {
		return
	}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < m.epochs; e++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			pred := m.net.Forward(data[i].x)
			_, g := nn.MSELoss(pred, data[i].y)
			m.net.Backward(g)
			m.opt.Step(m.net.Params())
		}
	}
}

// Generate implements Generator: deterministic pointwise inference.
func (m *MLP) Generate(seq *core.Sequence) [][]float64 {
	T := seq.Len()
	out := make([][]float64, T)
	for t := 0; t < T; t++ {
		pred := m.net.Forward(contextSummary(seq, t))
		m.net.ClearCache()
		row := make([]float64, m.nch)
		for c := 0; c < m.nch; c++ {
			row[c] = clamp01(pred[c])
		}
		out[t] = row
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
