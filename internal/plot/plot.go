// Package plot renders the experiment figures as standalone SVG files
// using only the standard library, so the reproduction produces actual
// figure artifacts (line charts for time series and envelopes, step
// charts for CDFs, bar charts for densities).
package plot

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Y      []float64
	X      []float64 // optional; indices are used when nil
	Dashed bool
}

// Chart is a simple 2-D line/step chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	W, H   int // pixel dimensions (default 720x360)
	Step   bool
	Series []Series
}

// palette cycles through distinguishable stroke colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"}

// SVG renders the chart.
func (c Chart) SVG() string {
	w, h := c.W, c.H
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 360
	}
	const mL, mR, mT, mB = 60, 16, 28, 42
	plotW, plotH := float64(w-mL-mR), float64(h-mT-mB)

	// Data extents.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i, y := range s.Y {
			x := float64(i)
			if s.X != nil {
				x = s.X[i]
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	pad := (ymax - ymin) * 0.05
	ymin, ymax = ymin-pad, ymax+pad

	px := func(x float64) float64 { return float64(mL) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(mT) + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`+"\n", mL, esc(c.Title))

	// Axes and gridlines.
	for i := 0; i <= 4; i++ {
		y := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", mL, py(y), w-mR, py(y))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.4g</text>`+"\n", mL-6, py(y)+4, y)
	}
	for i := 0; i <= 4; i++ {
		x := xmin + (xmax-xmin)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%.4g</text>`+"\n", px(x), h-mB+16, x)
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`+"\n", mL, h-mB, w-mR, h-mB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`+"\n", mL, mT, mL, h-mB)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
		float64(mL)+plotW/2, h-6, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(mT)+plotH/2, float64(mT)+plotH/2, esc(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="5,3"`
		}
		var path strings.Builder
		for i, y := range s.Y {
			x := float64(i)
			if s.X != nil {
				x = s.X[i]
			}
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			if c.Step && i > 0 {
				prevY := s.Y[i-1]
				fmt.Fprintf(&path, "L%.1f,%.1f ", px(x), py(prevY))
			}
			fmt.Fprintf(&path, "%s%.1f,%.1f ", cmd, px(x), py(y))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"%s/>`+"\n",
			strings.TrimSpace(path.String()), color, dash)
		// Legend entry.
		lx, ly := w-mR-130, mT+14+si*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n",
			lx, ly-4, lx+18, ly-4, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+24, ly, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders labelled bars.
type BarChart struct {
	Title  string
	YLabel string
	W, H   int
	Bars   []Bar
}

// SVG renders the bar chart.
func (c BarChart) SVG() string {
	w, h := c.W, c.H
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 360
	}
	const mL, mR, mT, mB = 60, 16, 28, 80
	plotW, plotH := float64(w-mL-mR), float64(h-mT-mB)
	ymax := 0.0
	for _, bar := range c.Bars {
		ymax = math.Max(ymax, bar.Value)
	}
	if ymax == 0 {
		ymax = 1
	}
	ymax *= 1.08

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`+"\n", mL, esc(c.Title))
	for i := 0; i <= 4; i++ {
		y := ymax * float64(i) / 4
		yy := float64(mT) + (1-y/ymax)*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", mL, yy, w-mR, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.3g</text>`+"\n", mL-6, yy+4, y)
	}
	n := len(c.Bars)
	if n > 0 {
		slot := plotW / float64(n)
		bw := slot * 0.64
		for i, bar := range c.Bars {
			x := float64(mL) + slot*float64(i) + (slot-bw)/2
			bh := bar.Value / ymax * plotH
			y := float64(mT) + plotH - bh
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, bw, bh, palette[i%len(palette)])
			cx := x + bw/2
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`+"\n",
				cx, h-mB+14, cx, h-mB+14, esc(bar.Label))
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%.3g</text>`+"\n", cx, y-4, bar.Value)
		}
	}
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(mT)+plotH/2, float64(mT)+plotH/2, esc(c.YLabel))
	b.WriteString("</svg>\n")
	return b.String()
}

// WriteSVG writes any SVG string to a file.
func WriteSVG(path, svg string) error {
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	return nil
}

func esc(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
