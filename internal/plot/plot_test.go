package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestChartSVGStructure(t *testing.T) {
	c := Chart{
		Title: "Test <chart>", XLabel: "t (s)", YLabel: "RSRP (dBm)",
		Series: []Series{
			{Name: "real", Y: []float64{-80, -85, -82, -90}},
			{Name: "gen", Y: []float64{-81, -84, -83, -88}, Dashed: true},
		},
	}
	svg := c.SVG()
	for _, want := range []string{"<svg", "</svg>", "real", "gen", "RSRP (dBm)", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "<chart>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;chart&gt;") {
		t.Error("escaped title missing")
	}
}

func TestChartWithExplicitX(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "cdf", Y: []float64{0.25, 0.5, 1}, X: []float64{10, 20, 40}}},
		Step:   true,
	}
	svg := c.SVG()
	if !strings.Contains(svg, "<path") {
		t.Error("no path rendered")
	}
}

func TestChartEmptySeriesNoPanic(t *testing.T) {
	svg := Chart{Title: "empty"}.SVG()
	if !strings.Contains(svg, "</svg>") {
		t.Error("empty chart must still render")
	}
}

func TestChartConstantSeries(t *testing.T) {
	svg := Chart{Series: []Series{{Name: "c", Y: []float64{5, 5, 5}}}}.SVG()
	if !strings.Contains(svg, "<path") {
		t.Error("constant series must render without dividing by zero")
	}
}

func TestBarChart(t *testing.T) {
	c := BarChart{
		Title: "Density", YLabel: "cells/km2",
		Bars: []Bar{{"Walk", 20}, {"Highway", 3}},
	}
	svg := c.SVG()
	for _, want := range []string{"<rect", "Walk", "Highway", "cells/km2"} {
		if !strings.Contains(svg, want) {
			t.Errorf("bar SVG missing %q", want)
		}
	}
}

func TestBarChartEmpty(t *testing.T) {
	if svg := (BarChart{Title: "none"}).SVG(); !strings.Contains(svg, "</svg>") {
		t.Error("empty bar chart must render")
	}
}

func TestWriteSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig.svg")
	if err := WriteSVG(path, Chart{Title: "x"}.SVG()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("file does not start with <svg")
	}
}
