package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"gendt/internal/serve"
)

// varsGenerate is the slice of gendt-serve's /debug/vars document the load
// generator consumes. The Generate pointer distinguishes a tier that does
// not expose generation metrics (a gendt-lb front) from one reporting zero
// traffic.
type varsGenerate struct {
	Generate *struct {
		BatchSizeHist serve.SizeHistogramSnap `json:"batch_size_hist"`
	} `json:"generate"`
}

// fetchBatchHist reads the target's cumulative realized-batch-size
// histogram from /debug/vars. Returns nil (no error) when the target does
// not expose one.
func fetchBatchHist(client *http.Client, target string) (*serve.SizeHistogramSnap, error) {
	resp, err := client.Get(target + serve.EndpointVars)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s%s: status %d", target, serve.EndpointVars, resp.StatusCode)
	}
	var v varsGenerate
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	if v.Generate == nil {
		return nil, nil
	}
	return &v.Generate.BatchSizeHist, nil
}

// diffBatchHist subtracts two cumulative batch-size snapshots, isolating
// the batches executed between them (this replay window's coalescing
// behaviour). Returns nil when either side is missing or nothing ran.
func diffBatchHist(before, after *serve.SizeHistogramSnap) *serve.SizeHistogramSnap {
	if before == nil || after == nil {
		return nil
	}
	n := after.Count - before.Count
	if n <= 0 {
		return nil
	}
	d := &serve.SizeHistogramSnap{
		Count:   n,
		Mean:    (after.Mean*float64(after.Count) - before.Mean*float64(before.Count)) / float64(n),
		Buckets: make(map[string]int64),
	}
	for k, v := range after.Buckets {
		if dv := v - before.Buckets[k]; dv > 0 {
			d.Buckets[k] = dv
		}
	}
	return d
}
