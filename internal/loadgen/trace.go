// Package loadgen implements gendt-bench: deterministic trajectory-request
// trace synthesis and an open-loop load generator for the GenDT serving
// tier. Open-loop means arrivals are scheduled from a clock, not from
// completions: a saturated server keeps receiving offered load and its
// queues (and tail latencies) grow, which is what a capacity measurement
// must observe. A closed-loop client would slow its own arrival rate to
// match the server and report a flattering latency at whatever throughput
// the server chose — coordinated omission by construction.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"gendt/internal/dataset"
	"gendt/internal/serve"
)

// TraceSpec pins everything a request trace is derived from. Two equal
// specs synthesize byte-identical traces: routes come from the named
// dataset world (which the serving fleet must also be running) and all
// randomness flows from RNGSeed.
type TraceSpec struct {
	// Dataset/Scale/Seed identify the resident world; they must match the
	// -dataset/-scale/-seed the serving replicas were started with or the
	// generated KPIs are for a different city.
	Dataset string
	Scale   float64
	Seed    int64

	// Routes is the number of distinct trajectories in the trace. The
	// generator cycles through them, so this controls how concentrated the
	// fleet's prepared-sequence caches are.
	Routes int
	// Steps truncates each trajectory (0 keeps full length).
	Steps int
	// Model names the registry entry to generate from ("" = single-model
	// default).
	Model string
	// Samples is the per-request fan-out (response envelope size).
	Samples int
	// RNGSeed seeds route selection, request seeds, and Poisson arrivals.
	RNGSeed int64
}

func (s TraceSpec) withDefaults() TraceSpec {
	if s.Dataset == "" {
		s.Dataset = "A"
	}
	if s.Scale <= 0 {
		s.Scale = 0.05
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Routes <= 0 {
		s.Routes = 8
	}
	if s.Samples <= 0 {
		s.Samples = 1
	}
	if s.RNGSeed == 0 {
		s.RNGSeed = 1
	}
	return s
}

// Trace is a replayable request stream: a fixed set of route bodies plus a
// deterministic per-request seed schedule.
type Trace struct {
	spec   TraceSpec
	routes [][]serve.RoutePoint
	rng    *rand.Rand
}

// BuildTrace synthesizes the trace from the spec's resident world: it
// builds the dataset (the same construction the serving fleet ran at
// startup), pools its scenario trajectories, and picks Routes of them with
// the seeded RNG. Building the world is the expensive part — do it once and
// replay the trace many times.
func BuildTrace(spec TraceSpec) (*Trace, error) {
	spec = spec.withDefaults()
	d, err := dataset.NewByName(spec.Dataset, dataset.Spec{Seed: spec.Seed, Scale: spec.Scale})
	if err != nil {
		return nil, err
	}
	runs := append(d.TrainRuns(), d.TestRuns()...)
	if len(runs) == 0 {
		return nil, fmt.Errorf("loadgen: dataset %s has no runs", spec.Dataset)
	}
	rng := rand.New(rand.NewSource(spec.RNGSeed))
	routes := make([][]serve.RoutePoint, 0, spec.Routes)
	for len(routes) < spec.Routes {
		tr := runs[rng.Intn(len(runs))].Traj
		if spec.Steps > 1 && len(tr) > spec.Steps {
			// Offset into the trajectory so two picks of the same run still
			// yield distinct routes (and distinct ring keys).
			maxOff := len(tr) - spec.Steps
			off := rng.Intn(maxOff + 1)
			tr = tr[off : off+spec.Steps]
		}
		if len(tr) < 2 {
			continue
		}
		pts := make([]serve.RoutePoint, len(tr))
		for i, p := range tr {
			pts[i] = serve.RoutePoint{T: p.T, Lat: p.Lat, Lon: p.Lon}
		}
		routes = append(routes, pts)
	}
	return &Trace{spec: spec, routes: routes, rng: rng}, nil
}

// Routes reports the number of distinct routes in the trace.
func (t *Trace) Routes() int { return len(t.routes) }

// Request returns the i-th request of the replay: the body cycles through
// the route set while the seed is unique per request (DeriveSeed-style
// splitmix of the trace seed), so the fleet's prep caches stay hot but
// every generation is an independent draw.
func (t *Trace) Request(i int) ([]byte, error) {
	req := serve.GenerateRequest{
		Model:   t.spec.Model,
		Seed:    requestSeed(t.spec.RNGSeed, i),
		Samples: t.spec.Samples,
		Route:   t.routes[i%len(t.routes)],
	}
	return json.Marshal(req)
}

// RouteRequest returns a request pinned to route r with an explicit seed —
// the bit-identity verification path, where the same (route, seed) must
// reproduce exactly through any serving topology.
func (t *Trace) RouteRequest(r int, seed int64) ([]byte, error) {
	if r < 0 || r >= len(t.routes) {
		return nil, fmt.Errorf("loadgen: route %d out of range [0,%d)", r, len(t.routes))
	}
	req := serve.GenerateRequest{
		Model:   t.spec.Model,
		Seed:    seed,
		Samples: t.spec.Samples,
		Route:   t.routes[r],
	}
	return json.Marshal(req)
}

// requestSeed derives the i-th request seed from the trace seed with a
// splitmix64 step: deterministic, collision-free over the replay, and never
// 0 in practice (0 would make the server draw its own seed).
func requestSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		s = 1
	}
	return s
}
