package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gendt/internal/serve"
)

// Report is the machine-readable result of one replay window — the
// document gendt-bench emits and ci/benchcheck's -serve mode compares
// against BENCH_serve.json.
type Report struct {
	Name       string  `json:"name,omitempty"`
	Target     string  `json:"target"`
	Arrival    string  `json:"arrival"`
	OfferedRPS float64 `json:"offered_rps"`
	DurationS  float64 `json:"duration_s"`
	WarmupS    float64 `json:"warmup_s"`
	Routes     int     `json:"routes"`
	Samples    int     `json:"samples"`

	Sent         int `json:"sent"`
	Warmup       int `json:"warmup_requests"`
	WarmupErrors int `json:"warmup_errors"`
	Measured     int `json:"measured"`
	Succeeded    int `json:"succeeded"`
	Errors       int `json:"errors"`

	AchievedRPS float64 `json:"achieved_rps"`
	SuccessRate float64 `json:"success_rate"`
	ErrorRate   float64 `json:"error_rate"`

	// Status counts responses by HTTP code ("net" = transport error);
	// Reasons breaks 503s down by X-Gendt-Reason (draining/shed/upstream).
	Status  map[string]int `json:"status"`
	Reasons map[string]int `json:"reasons,omitempty"`

	LatencyMs LatencyStats `json:"latency_ms"`

	// BatchSizeHist is the delta of the target's realized-batch-size
	// histogram (/debug/vars generate.batch_size_hist) across the replay
	// window: how many requests each GenerateJobs call coalesced under this
	// offered load. Omitted when the target does not expose it (a gendt-lb
	// front) or no batch executed.
	BatchSizeHist *serve.SizeHistogramSnap `json:"batch_size_hist,omitempty"`
}

// Saturation describes the knee found by a sweep.
type Saturation struct {
	Found bool `json:"found"`
	// KneeRPS is the lowest offered rate that violated the sweep's
	// error-rate or achieved-throughput bounds.
	KneeRPS float64 `json:"knee_rps,omitempty"`
	Reason  string  `json:"reason,omitempty"`
	// MaxGoodRPS is the highest offered rate that stayed within bounds.
	MaxGoodRPS float64 `json:"max_good_rps"`
}

// SweepReport is the result of an RPS sweep: one report per offered rate
// plus the detected saturation knee.
type SweepReport struct {
	Reports    []Report   `json:"reports"`
	Saturation Saturation `json:"saturation"`
}

// Sweep bounds: a rate saturates the tier when more than KneeErrorRate of
// measured requests fail or achieved throughput falls below
// KneeAchievedFrac of offered.
const (
	KneeErrorRate    = 0.01
	KneeAchievedFrac = 0.9
)

// Sweep replays the trace at each offered rate in turn and locates the
// saturation knee. Rates after the first saturated one still run — the
// shape of the over-saturation region is part of the capacity trajectory.
func Sweep(cfg RunConfig, trace *Trace, rates []float64) (SweepReport, error) {
	var sweep SweepReport
	for _, rps := range rates {
		c := cfg
		c.RPS = rps
		if cfg.Name != "" {
			c.Name = fmt.Sprintf("%s-rps%g", cfg.Name, rps)
		}
		rep, err := Run(c, trace)
		if err != nil {
			return sweep, err
		}
		sweep.Reports = append(sweep.Reports, rep)
		saturated := rep.ErrorRate > KneeErrorRate || rep.AchievedRPS < KneeAchievedFrac*rps
		if saturated && !sweep.Saturation.Found {
			sweep.Saturation.Found = true
			sweep.Saturation.KneeRPS = rps
			if rep.ErrorRate > KneeErrorRate {
				sweep.Saturation.Reason = fmt.Sprintf("error rate %.3f > %.3f", rep.ErrorRate, KneeErrorRate)
			} else {
				sweep.Saturation.Reason = fmt.Sprintf("achieved %.1f rps < %.0f%% of offered %.1f",
					rep.AchievedRPS, KneeAchievedFrac*100, rps)
			}
		}
		if !saturated {
			sweep.Saturation.MaxGoodRPS = rps
		}
	}
	return sweep, nil
}

// Verify sends the same seeded requests to two serving endpoints (a
// gendt-lb and a direct replica, typically) and requires bit-identical
// generation results: same seed, channels, step count, and float-exact
// series/envelope. Timing fields (gen_ms, prep_cached) are excluded — they
// legitimately differ per hit. n bounds the verified routes.
func Verify(target, direct string, trace *Trace, n int, timeout time.Duration) error {
	if n <= 0 || n > trace.Routes() {
		n = trace.Routes()
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	client := newClient(timeout)
	defer client.CloseIdleConnections()
	for r := 0; r < n; r++ {
		seed := requestSeed(trace.spec.RNGSeed, 1_000_000+r)
		body, err := trace.RouteRequest(r, seed)
		if err != nil {
			return err
		}
		a, err := fetchGenerate(client, target, body)
		if err != nil {
			return fmt.Errorf("verify route %d via %s: %w", r, target, err)
		}
		b, err := fetchGenerate(client, direct, body)
		if err != nil {
			return fmt.Errorf("verify route %d via %s: %w", r, direct, err)
		}
		if err := sameGeneration(a, b); err != nil {
			return fmt.Errorf("route %d seed %d: %s vs %s: %w", r, seed, target, direct, err)
		}
	}
	return nil
}

func fetchGenerate(client *http.Client, base string, body []byte) (*serve.GenerateResponse, error) {
	resp, err := client.Post(base+serve.EndpointGenerate, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var out serve.GenerateResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// sameGeneration compares the deterministic fields of two generate
// responses for exact equality.
func sameGeneration(a, b *serve.GenerateResponse) error {
	if a.Seed != b.Seed {
		return fmt.Errorf("seed %d != %d", a.Seed, b.Seed)
	}
	if a.Steps != b.Steps {
		return fmt.Errorf("steps %d != %d", a.Steps, b.Steps)
	}
	if len(a.Channels) != len(b.Channels) {
		return fmt.Errorf("channel count %d != %d", len(a.Channels), len(b.Channels))
	}
	for i := range a.Channels {
		if a.Channels[i] != b.Channels[i] {
			return fmt.Errorf("channel %d: %q != %q", i, a.Channels[i], b.Channels[i])
		}
	}
	if err := sameSeries("series", a.Series, b.Series); err != nil {
		return err
	}
	switch {
	case a.Envelope == nil && b.Envelope == nil:
	case a.Envelope == nil || b.Envelope == nil:
		return fmt.Errorf("envelope present on one side only")
	default:
		if err := sameSeries("envelope.min", a.Envelope.Min, b.Envelope.Min); err != nil {
			return err
		}
		if err := sameSeries("envelope.max", a.Envelope.Max, b.Envelope.Max); err != nil {
			return err
		}
		if err := sameSeries("envelope.mean", a.Envelope.Mean, b.Envelope.Mean); err != nil {
			return err
		}
	}
	return nil
}

func sameSeries(what string, a, b [][]float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: %d channels != %d", what, len(a), len(b))
	}
	for c := range a {
		if len(a[c]) != len(b[c]) {
			return fmt.Errorf("%s[%d]: %d steps != %d", what, c, len(a[c]), len(b[c]))
		}
		for t := range a[c] {
			if a[c][t] != b[c][t] {
				return fmt.Errorf("%s[%d][%d]: %v != %v", what, c, t, a[c][t], b[c][t])
			}
		}
	}
	return nil
}
