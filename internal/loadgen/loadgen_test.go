package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gendt/internal/serve"
)

// syntheticTrace builds a trace without a dataset world — white-box tests
// exercise the replay machinery, not world synthesis.
func syntheticTrace(routes int) *Trace {
	spec := TraceSpec{Samples: 1, RNGSeed: 9}.withDefaults()
	t := &Trace{spec: spec}
	for r := 0; r < routes; r++ {
		t.routes = append(t.routes, []serve.RoutePoint{
			{T: 0, Lat: 48 + float64(r)*0.01, Lon: 16},
			{T: 1, Lat: 48 + float64(r)*0.01, Lon: 16.001},
		})
	}
	return t
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {90, 9}, {99, 10}, {99.9, 10}, {10, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("p%g = %g, want %g", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty sample p50 = %g, want 0", got)
	}
}

func TestLatencyStats(t *testing.T) {
	s := latencyStats([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.P50 != 2 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRequestSeedsDistinctAndDeterministic(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 10000; i++ {
		s := requestSeed(42, i)
		if s == 0 {
			t.Fatalf("request %d drew seed 0 (server would replace it)", i)
		}
		if seen[s] {
			t.Fatalf("request %d repeats seed %d", i, s)
		}
		seen[s] = true
		if s != requestSeed(42, i) {
			t.Fatalf("request %d seed not deterministic", i)
		}
	}
}

func TestTraceRequestsDeterministic(t *testing.T) {
	a, b := syntheticTrace(4), syntheticTrace(4)
	for i := 0; i < 12; i++ {
		ra, err := a.Request(i)
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := b.Request(i)
		if !bytes.Equal(ra, rb) {
			t.Fatalf("request %d differs between identical traces", i)
		}
		var req serve.GenerateRequest
		if err := json.Unmarshal(ra, &req); err != nil {
			t.Fatal(err)
		}
		if req.Seed == 0 || len(req.Route) != 2 {
			t.Fatalf("request %d malformed: %+v", i, req)
		}
	}
}

// BuildTrace must be a pure function of its spec, and its routes must come
// from the named world.
func TestBuildTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a dataset world")
	}
	spec := TraceSpec{Dataset: "A", Scale: 0.015, Seed: 11, Routes: 3, Steps: 20, RNGSeed: 5}
	a, err := BuildTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Routes() != 3 {
		t.Fatalf("routes = %d, want 3", a.Routes())
	}
	for i := 0; i < 6; i++ {
		ra, _ := a.Request(i)
		rb, _ := b.Request(i)
		if !bytes.Equal(ra, rb) {
			t.Fatalf("request %d differs across identical BuildTrace calls", i)
		}
	}
	var req serve.GenerateRequest
	raw, _ := a.Request(0)
	if err := json.Unmarshal(raw, &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Route) != 20 {
		t.Fatalf("route truncation: got %d points, want 20", len(req.Route))
	}
}

func TestRunOpenLoopAgainstHealthyServer(t *testing.T) {
	var served sync.Map
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req serve.GenerateRequest
		json.NewDecoder(r.Body).Decode(&req)
		served.Store(req.Seed, true)
		fmt.Fprint(w, `{"model":"m"}`)
	}))
	defer srv.Close()

	trace := syntheticTrace(4)
	rep, err := Run(RunConfig{
		Target: srv.URL, RPS: 100, Duration: 500 * time.Millisecond,
		Warmup: 100 * time.Millisecond, Arrival: ArrivalFixed, Name: "t",
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent < 40 || rep.Sent > 60 {
		t.Errorf("sent %d requests at fixed 100rps over 500ms; want ~51", rep.Sent)
	}
	if rep.Errors != 0 || rep.SuccessRate != 1 {
		t.Errorf("errors %d success rate %g; want clean run", rep.Errors, rep.SuccessRate)
	}
	if rep.Measured+rep.Warmup != rep.Sent {
		t.Errorf("measured %d + warmup %d != sent %d", rep.Measured, rep.Warmup, rep.Sent)
	}
	if rep.Warmup == 0 {
		t.Error("warmup window excluded no requests")
	}
	if rep.Status["200"] != rep.Measured {
		t.Errorf("status map %v inconsistent with measured %d", rep.Status, rep.Measured)
	}
	if rep.LatencyMs.Count != rep.Succeeded || rep.LatencyMs.P99 < rep.LatencyMs.P50 {
		t.Errorf("latency stats inconsistent: %+v", rep.LatencyMs)
	}
	if rep.AchievedRPS <= 0 {
		t.Error("achieved rps not computed")
	}
}

func TestRunBreaksDownReasons(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(serve.ReasonHeader, serve.ReasonShed)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	rep, err := Run(RunConfig{
		Target: srv.URL, RPS: 50, Duration: 300 * time.Millisecond, Arrival: ArrivalFixed,
	}, syntheticTrace(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrorRate != 1 {
		t.Fatalf("error rate %g, want 1", rep.ErrorRate)
	}
	if rep.Reasons[serve.ReasonShed] != rep.Measured {
		t.Fatalf("reasons %v inconsistent with measured %d", rep.Reasons, rep.Measured)
	}
	if rep.Status["503"] != rep.Measured {
		t.Fatalf("status %v, want all 503", rep.Status)
	}
}

func TestRunCountsTransportErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // all requests now fail to connect

	rep, err := Run(RunConfig{
		Target: srv.URL, RPS: 50, Duration: 200 * time.Millisecond, Arrival: ArrivalFixed,
	}, syntheticTrace(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status["net"] != rep.Measured || rep.ErrorRate != 1 {
		t.Fatalf("transport errors not counted: %+v", rep)
	}
}

func TestSweepFindsKnee(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{}`)
	}))
	defer healthy.Close()

	sw, err := Sweep(RunConfig{
		Target: healthy.URL, Duration: 200 * time.Millisecond, Arrival: ArrivalFixed, Name: "s",
	}, syntheticTrace(2), []float64{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Reports) != 2 || sw.Saturation.Found {
		t.Fatalf("healthy sweep: %+v", sw.Saturation)
	}
	if sw.Saturation.MaxGoodRPS != 40 {
		t.Fatalf("max good rps %g, want 40", sw.Saturation.MaxGoodRPS)
	}
	if sw.Reports[0].Name != "s-rps20" {
		t.Fatalf("report name %q", sw.Reports[0].Name)
	}

	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer failing.Close()
	sw, err = Sweep(RunConfig{
		Target: failing.URL, Duration: 200 * time.Millisecond, Arrival: ArrivalFixed,
	}, syntheticTrace(2), []float64{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if !sw.Saturation.Found || sw.Saturation.KneeRPS != 20 {
		t.Fatalf("failing sweep missed the knee: %+v", sw.Saturation)
	}
}

// cannedGenerate serves a fixed GenerateResponse, optionally perturbed.
func cannedGenerate(t *testing.T, perturb float64) *httptest.Server {
	t.Helper()
	resp := serve.GenerateResponse{
		Model: "m", Seed: 1, Samples: 1, Channels: []string{"rsrp"},
		Steps: 3, Series: [][]float64{{-80, -81 + perturb, -82}},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req serve.GenerateRequest
		json.NewDecoder(r.Body).Decode(&req)
		out := resp
		out.Seed = req.Seed // echo like the real server
		json.NewEncoder(w).Encode(out)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestVerifyBitIdentity(t *testing.T) {
	same1, same2 := cannedGenerate(t, 0), cannedGenerate(t, 0)
	trace := syntheticTrace(2)
	if err := Verify(same1.URL, same2.URL, trace, 2, time.Second); err != nil {
		t.Fatalf("identical servers failed verify: %v", err)
	}
	differs := cannedGenerate(t, 1e-12)
	if err := Verify(same1.URL, differs.URL, trace, 2, time.Second); err == nil {
		t.Fatal("verify accepted a 1e-12 series perturbation")
	}
}

func TestRunRejectsUnknownArrival(t *testing.T) {
	if _, err := Run(RunConfig{Target: "http://127.0.0.1:0", Arrival: "bursty"}, syntheticTrace(1)); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}
