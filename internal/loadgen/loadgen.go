package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"gendt/internal/serve"
)

// Arrival processes.
const (
	ArrivalPoisson = "poisson" // exponential inter-arrival gaps (memoryless)
	ArrivalFixed   = "fixed"   // constant 1/RPS gaps
)

// RunConfig parameterizes one open-loop replay window.
type RunConfig struct {
	// Target is the base URL under test (a gendt-lb or a bare gendt-serve).
	Target string
	// RPS is the offered arrival rate.
	RPS float64
	// Duration is the arrival window; requests fired near the end are still
	// awaited after it closes.
	Duration time.Duration
	// Warmup excludes the initial span from the measured statistics (cold
	// prep caches and TCP setup dominate it).
	Warmup time.Duration
	// Arrival selects the arrival process; default Poisson.
	Arrival string
	// Timeout bounds each request.
	Timeout time.Duration
	// Name labels the report (and the BENCH_serve.json entry it becomes).
	Name string
}

func (c RunConfig) withDefaults() RunConfig {
	if c.RPS <= 0 {
		c.RPS = 10
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// outcome is one completed request's measurement.
type outcome struct {
	offset  time.Duration // arrival offset from the window start
	latency time.Duration
	status  int    // 0 = transport error
	reason  string // X-Gendt-Reason value, or "net" on transport error
}

// Run replays the trace open-loop against cfg.Target: arrivals are
// scheduled by the configured process at cfg.RPS regardless of completions,
// each fired on its own goroutine. It returns the measured report.
func Run(cfg RunConfig, trace *Trace) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Arrival != ArrivalPoisson && cfg.Arrival != ArrivalFixed {
		return Report{}, fmt.Errorf("loadgen: unknown arrival process %q", cfg.Arrival)
	}
	client := newClient(cfg.Timeout)
	defer client.CloseIdleConnections()

	// Arrival gaps draw from their own deterministic stream so the offered
	// schedule is reproducible for a fixed trace seed.
	arrivalRNG := rand.New(rand.NewSource(trace.spec.RNGSeed ^ 0x5bf0_3635))
	nextGap := func() time.Duration {
		if cfg.Arrival == ArrivalFixed {
			return time.Duration(float64(time.Second) / cfg.RPS)
		}
		return time.Duration(arrivalRNG.ExpFloat64() / cfg.RPS * float64(time.Second))
	}

	// Snapshot the target's cumulative batch-size histogram around the
	// window so the report carries this run's coalescing behaviour.
	// Best-effort: a front tier without generation metrics yields nil.
	histBefore, _ := fetchBatchHist(client, cfg.Target)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []outcome
	)
	record := func(o outcome) {
		mu.Lock()
		results = append(results, o)
		mu.Unlock()
	}

	start := time.Now()
	offset := time.Duration(0)
	sent := 0
	for offset <= cfg.Duration {
		if d := time.Until(start.Add(offset)); d > 0 {
			time.Sleep(d)
		}
		body, err := trace.Request(sent)
		if err != nil {
			return Report{}, err
		}
		wg.Add(1)
		go func(off time.Duration, body []byte) {
			defer wg.Done()
			record(fire(client, cfg.Target, off, body))
		}(offset, body)
		sent++
		offset += nextGap()
	}
	wg.Wait()

	rep := summarize(cfg, trace, results)
	if histBefore != nil {
		histAfter, _ := fetchBatchHist(client, cfg.Target)
		rep.BatchSizeHist = diffBatchHist(histBefore, histAfter)
	}
	return rep, nil
}

// fire issues one request and measures it.
func fire(client *http.Client, target string, off time.Duration, body []byte) outcome {
	t0 := time.Now()
	resp, err := client.Post(target+serve.EndpointGenerate, "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{offset: off, latency: time.Since(t0), status: 0, reason: "net"}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	o := outcome{offset: off, latency: time.Since(t0), status: resp.StatusCode}
	o.reason = resp.Header.Get(serve.ReasonHeader)
	return o
}

// newClient builds the load-generation HTTP client: connection reuse is
// essential open-loop, or the generator measures TCP setup instead of the
// serving tier.
func newClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// summarize reduces the outcomes to the report, excluding arrivals inside
// the warmup span from every statistic except the warmup counters.
func summarize(cfg RunConfig, trace *Trace, results []outcome) Report {
	rep := Report{
		Name:       cfg.Name,
		Target:     cfg.Target,
		Arrival:    cfg.Arrival,
		OfferedRPS: cfg.RPS,
		DurationS:  cfg.Duration.Seconds(),
		WarmupS:    cfg.Warmup.Seconds(),
		Routes:     trace.Routes(),
		Samples:    trace.spec.Samples,
		Sent:       len(results),
		Status:     make(map[string]int),
		Reasons:    make(map[string]int),
	}
	var lats []float64
	for _, o := range results {
		if o.offset < cfg.Warmup {
			rep.Warmup++
			if o.status != http.StatusOK {
				rep.WarmupErrors++
			}
			continue
		}
		rep.Measured++
		key := "net"
		if o.status > 0 {
			key = strconv.Itoa(o.status)
		}
		rep.Status[key]++
		if o.reason != "" {
			rep.Reasons[o.reason]++
		}
		if o.status == http.StatusOK {
			rep.Succeeded++
			lats = append(lats, float64(o.latency)/float64(time.Millisecond))
		} else {
			rep.Errors++
		}
	}
	if rep.Measured > 0 {
		rep.SuccessRate = float64(rep.Succeeded) / float64(rep.Measured)
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Measured)
	}
	if win := cfg.Duration - cfg.Warmup; win > 0 {
		rep.AchievedRPS = float64(rep.Succeeded) / win.Seconds()
	}
	rep.LatencyMs = latencyStats(lats)
	return rep
}

// LatencyStats summarizes a latency sample in milliseconds.
type LatencyStats struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// latencyStats computes exact percentiles from the full sample (the
// generator keeps every measurement; no histogram approximation).
func latencyStats(ms []float64) LatencyStats {
	s := LatencyStats{Count: len(ms)}
	if len(ms) == 0 {
		return s
	}
	sort.Float64s(ms)
	sum := 0.0
	for _, v := range ms {
		sum += v
	}
	s.Mean = sum / float64(len(ms))
	s.Max = ms[len(ms)-1]
	s.P50 = percentile(ms, 50)
	s.P90 = percentile(ms, 90)
	s.P99 = percentile(ms, 99)
	s.P999 = percentile(ms, 99.9)
	return s
}

// percentile returns the p-th percentile of a sorted sample (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
