// Package radio implements the LTE radio-link substrate used to synthesize
// ground-truth drive-test measurements: log-distance pathloss, sector
// antenna gain, spatially correlated shadowing, fast fading, a hidden
// cell-load process, serving-cell selection with A3 hysteresis, and the
// RSRP/RSSI/RSRQ/SINR/CQI derivations of the paper's §2.2.
package radio

import (
	"math"
	"math/rand"

	"gendt/internal/cells"
	"gendt/internal/env"
	"gendt/internal/geo"
)

// PathlossModel is a log-distance pathloss model whose exponent depends on
// the local clutter (land-use class), so dense urban areas attenuate more
// steeply than open highway terrain.
type PathlossModel struct {
	// RefLossDB is the loss at RefDist metres in free-ish space.
	RefLossDB float64
	RefDist   float64
	// ExponentFor maps land-use class to pathloss exponent.
	Exponents map[uint8]float64
	// DefaultExp is used for classes absent from Exponents.
	DefaultExp float64
}

// DefaultPathloss returns a model with 3GPP-flavoured parameters.
func DefaultPathloss() *PathlossModel {
	return &PathlossModel{
		RefLossDB: 78, // ~2 GHz at 10 m with typical antenna heights
		RefDist:   10,
		Exponents: map[uint8]float64{
			env.LUContinuousUrban:      3.9,
			env.LUHighDenseUrban:       3.7,
			env.LUMediumDenseUrban:     3.5,
			env.LULowDenseUrban:        3.3,
			env.LUVeryLowDenseUrban:    3.1,
			env.LUIsolatedStructures:   2.9,
			env.LUGreenUrban:           3.0,
			env.LUIndustrialCommercial: 3.4,
			env.LUAirSeaPorts:          2.8,
			env.LULeisureFacilities:    3.1,
			env.LUBarrenLands:          2.8,
			env.LUSea:                  2.5,
		},
		DefaultExp: 3.2,
	}
}

// NewPathloss builds a pathloss model from explicit parameters — the
// constructor scenario configs compile through. byClass maps land-use
// classes to exponents; classes absent from it fall back to defaultExp.
// A nil byClass keeps DefaultPathloss's per-class table so configs can
// override just the reference loss or the default exponent.
func NewPathloss(refLossDB, refDistM, defaultExp float64, byClass map[uint8]float64) *PathlossModel {
	m := DefaultPathloss()
	if refLossDB != 0 {
		m.RefLossDB = refLossDB
	}
	if refDistM > 0 {
		m.RefDist = refDistM
	}
	if defaultExp > 0 {
		m.DefaultExp = defaultExp
	}
	if byClass != nil {
		m.Exponents = byClass
	}
	return m
}

// LossDB returns the pathloss in dB over distance metres in the given
// land-use clutter class.
func (m *PathlossModel) LossDB(distance float64, clutter uint8) float64 {
	if distance < m.RefDist {
		distance = m.RefDist
	}
	exp, ok := m.Exponents[clutter]
	if !ok {
		exp = m.DefaultExp
	}
	return m.RefLossDB + 10*exp*math.Log10(distance/m.RefDist)
}

// ShadowField produces spatially correlated log-normal shadowing per cell:
// a device moving through the field sees shadowing that decorrelates over
// DecorrM metres (Gudmundson model). Each (cell, run) pair gets an
// independent field so that repeated runs over the same route differ, as in
// the paper's Figure 1.
type ShadowField struct {
	SigmaDB float64 // shadowing standard deviation
	DecorrM float64 // decorrelation distance

	state map[int]*shadowState
	rng   *rand.Rand
}

type shadowState struct {
	value float64
	last  geo.Point
	init  bool
}

// NewShadowField creates a shadow field with its own RNG stream.
func NewShadowField(sigmaDB, decorrM float64, rng *rand.Rand) *ShadowField {
	return &ShadowField{
		SigmaDB: sigmaDB,
		DecorrM: decorrM,
		state:   make(map[int]*shadowState),
		rng:     rng,
	}
}

// Sample returns the shadowing in dB for the given cell as seen from loc,
// evolving the per-cell Gauss–Markov process by the distance moved since
// the previous call for that cell.
func (f *ShadowField) Sample(cellID int, loc geo.Point) float64 {
	st, ok := f.state[cellID]
	if !ok {
		st = &shadowState{}
		f.state[cellID] = st
	}
	if !st.init {
		st.value = f.SigmaDB * f.rng.NormFloat64()
		st.last = loc
		st.init = true
		return st.value
	}
	d := geo.Distance(st.last, loc)
	rho := math.Exp(-d / f.DecorrM)
	st.value = rho*st.value + f.SigmaDB*math.Sqrt(1-rho*rho)*f.rng.NormFloat64()
	st.last = loc
	return st.value
}

// FastFading returns a per-sample fast-fading term in dB. We use a
// Gaussian approximation of averaged Rayleigh fading (measurement tools
// report KPIs averaged over many resource elements, which Gaussianizes the
// per-sample fading).
func FastFading(sigmaDB float64, rng *rand.Rand) float64 {
	return sigmaDB * rng.NormFloat64()
}

// LoadProcess is the hidden per-cell load factor the paper cites as one of
// the unobserved factors the generator's noise must absorb. It evolves as a
// mean-reverting process in [0, 1].
type LoadProcess struct {
	Mean  float64
	Alpha float64 // AR(1) coefficient per step
	Std   float64

	load map[int]float64
	rng  *rand.Rand
}

// NewLoadProcess creates a load process with its own RNG stream.
func NewLoadProcess(mean, alpha, std float64, rng *rand.Rand) *LoadProcess {
	return &LoadProcess{Mean: mean, Alpha: alpha, Std: std, load: make(map[int]float64), rng: rng}
}

// Step advances and returns the load of a cell, clamped to [0.05, 0.95].
func (lp *LoadProcess) Step(cellID int) float64 {
	v, ok := lp.load[cellID]
	if !ok {
		v = lp.Mean + lp.Std*lp.rng.NormFloat64()
	}
	v = lp.Alpha*v + (1-lp.Alpha)*lp.Mean + lp.Std*math.Sqrt(1-lp.Alpha*lp.Alpha)*lp.rng.NormFloat64()
	v = math.Max(0.05, math.Min(0.95, v))
	lp.load[cellID] = v
	return v
}

// RxPowerDBm computes the received reference-signal power from a cell at a
// device location given pathloss, antenna gain, shadowing, and fading terms.
func RxPowerDBm(c *cells.Cell, loc geo.Point, dist float64, pl *PathlossModel, clutter uint8, shadowDB, fadingDB float64) float64 {
	// Use 3D distance including antenna height.
	d3 := math.Hypot(dist, c.Height)
	gain := cells.SectorGainDB(c, loc)
	// Reference signal power: total sector power spread over 12*N_RB
	// subcarriers; with N_RB=50 (10 MHz) RSRP per RE is PMax - 10log10(600).
	const refShareDB = 27.78 // 10*log10(12*50)
	return c.PMaxDBm - refShareDB + gain - pl.LossDB(d3, clutter) + shadowDB + fadingDB
}
