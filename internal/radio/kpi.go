package radio

import "math"

// KPI indices into a multi-channel KPI vector. The paper targets RSRP,
// RSRQ, SINR, and CQI (§2.2); ServingCell is the additional channel used
// for the handover use case (§6.3.2).
const (
	KPIRSRP = iota
	KPIRSRQ
	KPISINR
	KPICQI
	NumKPI // the 4 core KPIs

	KPIServingCell = NumKPI // optional extra channel
)

// KPINames lists the KPI channel names in order.
var KPINames = []string{"RSRP", "RSRQ", "SINR", "CQI"}

// NRB is the number of LTE resource blocks assumed throughout (10 MHz).
const NRB = 50

// Typical KPI bounds used for clamping and normalization.
const (
	RSRPMin, RSRPMax = -140.0, -44.0 // dBm
	RSRQMin, RSRQMax = -19.5, -3.0   // dB
	SINRMin, SINRMax = -10.0, 30.0   // dB
	CQIMin, CQIMax   = 1.0, 15.0     // index
)

// dbm2mw converts dBm to milliwatts.
func dbm2mw(dbm float64) float64 { return math.Pow(10, dbm/10) }

// mw2dbm converts milliwatts to dBm.
func mw2dbm(mw float64) float64 {
	if mw <= 0 {
		return -200
	}
	return 10 * math.Log10(mw)
}

// Link captures the instantaneous quantities of one candidate cell link.
type Link struct {
	CellID  int
	RSRPdBm float64 // reference-signal received power from this cell
	Load    float64 // cell's current traffic load in [0,1]
}

// DeriveKPIs computes RSSI, RSRQ, SINR, and CQI for the serving link among
// the candidates, following the paper's §2.2 relations:
//
//	RSSI aggregates serving power across occupied REs plus co-channel
//	interference (scaled by each interferer's load) plus noise;
//	RSRQ = N_RB * RSRP / RSSI (in linear terms; a dB subtraction);
//	SINR = serving power / (interference + noise);
//	CQI is a quantized monotone map of SINR to 1..15.
func DeriveKPIs(serving Link, others []Link, noiseDBm float64) (rssiDBm, rsrqDB, sinrDB, cqi float64) {
	servMW := dbm2mw(serving.RSRPdBm)
	noiseMW := dbm2mw(noiseDBm)
	intfMW := 0.0
	for _, o := range others {
		if o.CellID == serving.CellID {
			continue
		}
		// Interference proportional to the interferer's load: an empty cell
		// transmits only reference symbols.
		intfMW += dbm2mw(o.RSRPdBm) * (0.1 + 0.9*o.Load)
	}
	// RSSI measured over one OFDM symbol across 12*N_RB subcarriers: the
	// serving cell occupies them proportionally to its own load.
	occupied := 2.0 + 10.0*serving.Load // of 12 REs per RB, 2 are reference symbols
	rssiMW := servMW*occupied*NRB + (intfMW+noiseMW)*12*NRB
	rssiDBm = mw2dbm(rssiMW)

	// RSRQ(dB) = 10log10(N_RB) + RSRP(dBm) - RSSI(dBm).
	rsrqDB = 10*math.Log10(NRB) + serving.RSRPdBm - rssiDBm
	rsrqDB = clamp(rsrqDB, RSRQMin, RSRQMax)

	sinr := servMW * 12 * NRB / (intfMW*12*NRB + noiseMW*12*NRB)
	sinrDB = clamp(10*math.Log10(sinr), SINRMin, SINRMax)

	cqi = CQIFromSINR(sinrDB)
	return rssiDBm, rsrqDB, sinrDB, cqi
}

// CQIFromSINR maps SINR in dB to the 1..15 CQI index using a standard
// piecewise-linear approximation of the LTE CQI-SINR curve (~1.9 dB/CQI).
func CQIFromSINR(sinrDB float64) float64 {
	cqi := math.Round((sinrDB+6.7)/1.9) + 1
	return clamp(cqi, CQIMin, CQIMax)
}

// SINRFromCQI is the approximate inverse of CQIFromSINR (midpoint of the
// CQI bin), used by downstream models.
func SINRFromCQI(cqi float64) float64 {
	return (clamp(cqi, CQIMin, CQIMax)-1)*1.9 - 6.7
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampKPI clamps a value to the valid range of the given KPI channel.
func ClampKPI(kpi int, v float64) float64 {
	switch kpi {
	case KPIRSRP:
		return clamp(v, RSRPMin, RSRPMax)
	case KPIRSRQ:
		return clamp(v, RSRQMin, RSRQMax)
	case KPISINR:
		return clamp(v, SINRMin, SINRMax)
	case KPICQI:
		return clamp(math.Round(v), CQIMin, CQIMax)
	default:
		return v
	}
}

// KPIRange returns the (min, max) bounds of a KPI channel for
// normalization.
func KPIRange(kpi int) (lo, hi float64) {
	switch kpi {
	case KPIRSRP:
		return RSRPMin, RSRPMax
	case KPIRSRQ:
		return RSRQMin, RSRQMax
	case KPISINR:
		return SINRMin, SINRMax
	case KPICQI:
		return CQIMin, CQIMax
	default:
		return 0, 1
	}
}

// Normalize maps a KPI value to [0, 1] by its channel range.
func Normalize(kpi int, v float64) float64 {
	lo, hi := KPIRange(kpi)
	return (clamp(v, lo, hi) - lo) / (hi - lo)
}

// Denormalize maps a [0, 1] value back to the KPI's physical range.
func Denormalize(kpi int, v float64) float64 {
	lo, hi := KPIRange(kpi)
	return lo + clamp(v, 0, 1)*(hi-lo)
}
