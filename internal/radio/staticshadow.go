package radio

import (
	"math"

	"gendt/internal/geo"
)

// StaticShadow is the location-dependent (repeatable) component of
// log-normal shadowing: a smooth spatial Gaussian field per cell, produced
// by value noise over a lattice with the given correlation length. Two
// drive tests through the same spot against the same world see the same
// static shadowing — it is caused by buildings and terrain — while the
// per-run ShadowField adds the dynamic remainder. This split is what makes
// radio KPIs partially predictable from context, as the paper's
// measurements show (Figure 1: repeated runs differ, but share structure).
type StaticShadow struct {
	SigmaDB   float64
	CorrM     float64 // lattice pitch ≈ correlation length
	WorldSeed int64
	proj      *geo.Projection
}

// NewStaticShadow builds a static shadow field anchored at origin.
func NewStaticShadow(sigmaDB, corrM float64, worldSeed int64, origin geo.Point) *StaticShadow {
	return &StaticShadow{
		SigmaDB: sigmaDB, CorrM: corrM, WorldSeed: worldSeed,
		proj: geo.NewProjection(origin),
	}
}

// Sample returns the static shadowing in dB for the given cell at loc.
func (s *StaticShadow) Sample(cellID int, loc geo.Point) float64 {
	if s.SigmaDB <= 0 {
		return 0
	}
	x, y := s.proj.ToXY(loc)
	gx := math.Floor(x / s.CorrM)
	gy := math.Floor(y / s.CorrM)
	fx := x/s.CorrM - gx
	fy := y/s.CorrM - gy
	// Smoothstep weights for C1-continuous interpolation.
	wx := fx * fx * (3 - 2*fx)
	wy := fy * fy * (3 - 2*fy)
	v00 := s.lattice(cellID, int64(gx), int64(gy))
	v10 := s.lattice(cellID, int64(gx)+1, int64(gy))
	v01 := s.lattice(cellID, int64(gx), int64(gy)+1)
	v11 := s.lattice(cellID, int64(gx)+1, int64(gy)+1)
	v := v00*(1-wx)*(1-wy) + v10*wx*(1-wy) + v01*(1-wx)*wy + v11*wx*wy
	return s.SigmaDB * v
}

// lattice returns a deterministic ~N(0,1) value for a lattice corner,
// derived from a 64-bit mix of (seed, cell, ix, iy).
func (s *StaticShadow) lattice(cellID int, ix, iy int64) float64 {
	h := uint64(s.WorldSeed)*0x9E3779B97F4A7C15 ^
		uint64(cellID+1)*0xBF58476D1CE4E5B9 ^
		uint64(ix)*0x94D049BB133111EB ^
		uint64(iy)*0xD6E8FEB86659FD93
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	// Sum of 4 uniforms -> approximately Gaussian (CLT), variance 4/12.
	u1 := float64(h&0xFFFF) / 65536
	u2 := float64((h>>16)&0xFFFF) / 65536
	u3 := float64((h>>32)&0xFFFF) / 65536
	u4 := float64((h>>48)&0xFFFF) / 65536
	return (u1 + u2 + u3 + u4 - 2) / math.Sqrt(4.0/12.0)
}
