package radio

// ServingSelector implements A3-style serving-cell selection: a handover to
// a neighbour is triggered only after the neighbour's RSRP exceeds the
// serving cell's by HysteresisDB for TimeToTrigger consecutive samples.
// This produces the realistic serving-cell dwell times and churn the paper
// reports in Tables 1–2 and Figure 2.
type ServingSelector struct {
	HysteresisDB  float64
	TimeToTrigger int // consecutive samples the A3 condition must hold

	serving   int
	candidate int
	streak    int
	attached  bool
}

// NewServingSelector returns a selector with the given A3 parameters.
func NewServingSelector(hysteresisDB float64, ttt int) *ServingSelector {
	if ttt < 1 {
		ttt = 1
	}
	return &ServingSelector{HysteresisDB: hysteresisDB, TimeToTrigger: ttt, serving: -1, candidate: -1}
}

// Serving returns the current serving cell id, or -1 before first attach.
func (s *ServingSelector) Serving() int {
	if !s.attached {
		return -1
	}
	return s.serving
}

// Step feeds one sample of candidate links and returns the serving cell id
// after applying the handover logic, together with whether a handover
// occurred at this step. links must be non-empty for attachment; with no
// links the device stays on (or remains detached from) its previous cell.
func (s *ServingSelector) Step(links []Link) (servingID int, handover bool) {
	if len(links) == 0 {
		return s.Serving(), false
	}
	best := links[0]
	for _, l := range links[1:] {
		if l.RSRPdBm > best.RSRPdBm {
			best = l
		}
	}
	if !s.attached {
		s.serving = best.CellID
		s.attached = true
		s.candidate, s.streak = -1, 0
		return s.serving, false
	}
	var servRSRP float64
	found := false
	for _, l := range links {
		if l.CellID == s.serving {
			servRSRP = l.RSRPdBm
			found = true
			break
		}
	}
	if !found {
		// Serving cell dropped out of the visible set: radio-link failure,
		// immediate reattach to the strongest.
		s.serving = best.CellID
		s.candidate, s.streak = -1, 0
		return s.serving, true
	}
	if best.CellID != s.serving && best.RSRPdBm > servRSRP+s.HysteresisDB {
		if best.CellID == s.candidate {
			s.streak++
		} else {
			s.candidate = best.CellID
			s.streak = 1
		}
		if s.streak >= s.TimeToTrigger {
			s.serving = best.CellID
			s.candidate, s.streak = -1, 0
			return s.serving, true
		}
	} else {
		s.candidate, s.streak = -1, 0
	}
	return s.serving, false
}

// Reset detaches the selector so the next Step performs initial attachment.
func (s *ServingSelector) Reset() {
	s.serving, s.candidate, s.streak, s.attached = -1, -1, 0, false
}

// InterHandoverTimes extracts the durations (in samples multiplied by the
// given interval) between consecutive serving-cell changes in a serving-cell
// id series. The paper's Figure 13 plots the CDF of these times.
func InterHandoverTimes(servingIDs []float64, interval float64) []float64 {
	var out []float64
	last := 0
	for i := 1; i < len(servingIDs); i++ {
		if servingIDs[i] != servingIDs[i-1] {
			out = append(out, float64(i-last)*interval)
			last = i
		}
	}
	return out
}
