package radio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gendt/internal/cells"
	"gendt/internal/env"
	"gendt/internal/geo"
)

var origin = geo.Point{Lat: 51.5, Lon: 7.46}

func TestPathlossMonotoneInDistance(t *testing.T) {
	pl := DefaultPathloss()
	prev := -1.0
	for d := 10.0; d < 10000; d *= 1.5 {
		l := pl.LossDB(d, env.LUMediumDenseUrban)
		if l <= prev {
			t.Fatalf("pathloss not increasing at %v m: %v <= %v", d, l, prev)
		}
		prev = l
	}
}

func TestPathlossClutterOrdering(t *testing.T) {
	pl := DefaultPathloss()
	urban := pl.LossDB(2000, env.LUContinuousUrban)
	rural := pl.LossDB(2000, env.LUIsolatedStructures)
	if urban <= rural {
		t.Errorf("urban loss %v should exceed rural %v", urban, rural)
	}
}

func TestPathlossBelowRefDistClamps(t *testing.T) {
	pl := DefaultPathloss()
	if pl.LossDB(1, env.LUSea) != pl.LossDB(pl.RefDist, env.LUSea) {
		t.Error("loss below reference distance should clamp")
	}
}

func TestPathlossUnknownClutterUsesDefault(t *testing.T) {
	pl := DefaultPathloss()
	got := pl.LossDB(1000, 200)
	want := pl.RefLossDB + 10*pl.DefaultExp*math.Log10(1000/pl.RefDist)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("unknown clutter loss = %v, want %v", got, want)
	}
}

func TestShadowFieldCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewShadowField(8, 50, rng)
	// Tiny movement: shadowing should barely change.
	v0 := f.Sample(1, origin)
	v1 := f.Sample(1, geo.Offset(origin, 0, 1))
	if math.Abs(v1-v0) > 4 {
		t.Errorf("shadowing jumped %v dB over 1 m", math.Abs(v1-v0))
	}
	// Huge movement: decorrelates; over many trials variance approaches sigma^2.
	sum2 := 0.0
	n := 500
	for i := 0; i < n; i++ {
		v := f.Sample(1, geo.Offset(origin, rng.Float64()*360, 1e6*rng.Float64()+5000))
		sum2 += v * v
	}
	std := math.Sqrt(sum2 / float64(n))
	if std < 5 || std > 11 {
		t.Errorf("long-range shadowing std = %v, want ~8", std)
	}
}

func TestShadowFieldPerCellIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := NewShadowField(8, 50, rng)
	a := f.Sample(1, origin)
	b := f.Sample(2, origin)
	if a == b {
		t.Error("different cells produced identical shadowing")
	}
}

func TestLoadProcessBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lp := NewLoadProcess(0.5, 0.95, 0.3, rng)
	for i := 0; i < 2000; i++ {
		v := lp.Step(7)
		if v < 0.05 || v > 0.95 {
			t.Fatalf("load %v out of bounds at step %d", v, i)
		}
	}
}

func TestRxPowerDecreasesWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	_ = rng
	pl := DefaultPathloss()
	c := &cells.Cell{ID: 1, Site: origin, PMaxDBm: 43, Azimuth: 0, BeamWidth: 120, Height: 25}
	near := geo.Offset(origin, 0, 200)
	far := geo.Offset(origin, 0, 3000)
	pNear := RxPowerDBm(c, near, 200, pl, env.LUMediumDenseUrban, 0, 0)
	pFar := RxPowerDBm(c, far, 3000, pl, env.LUMediumDenseUrban, 0, 0)
	if pNear <= pFar {
		t.Errorf("rx power near %v <= far %v", pNear, pFar)
	}
	// Plausible RSRP magnitudes.
	if pNear > -40 || pFar < -140 {
		t.Errorf("implausible RSRP values near=%v far=%v", pNear, pFar)
	}
}

func TestDeriveKPIsRelations(t *testing.T) {
	serving := Link{CellID: 1, RSRPdBm: -85, Load: 0.5}
	others := []Link{{CellID: 2, RSRPdBm: -95, Load: 0.5}, {CellID: 3, RSRPdBm: -100, Load: 0.3}}
	rssi, rsrq, sinr, cqi := DeriveKPIs(serving, others, -120)
	// Paper relation: RSRQ(dB) = 10log10(NRB) + RSRP - RSSI.
	want := 10*math.Log10(NRB) + serving.RSRPdBm - rssi
	if math.Abs(rsrq-clamp(want, RSRQMin, RSRQMax)) > 1e-9 {
		t.Errorf("RSRQ = %v, want %v", rsrq, want)
	}
	if rsrq < RSRQMin || rsrq > RSRQMax {
		t.Errorf("RSRQ %v out of range", rsrq)
	}
	if sinr < SINRMin || sinr > SINRMax {
		t.Errorf("SINR %v out of range", sinr)
	}
	if cqi < 1 || cqi > 15 || cqi != math.Round(cqi) {
		t.Errorf("CQI %v not a valid index", cqi)
	}
}

func TestDeriveKPIsInterferenceLowersSINR(t *testing.T) {
	serving := Link{CellID: 1, RSRPdBm: -85, Load: 0.5}
	quiet := []Link{}
	noisy := []Link{{CellID: 2, RSRPdBm: -87, Load: 0.9}}
	_, _, sQuiet, _ := DeriveKPIs(serving, quiet, -120)
	_, _, sNoisy, _ := DeriveKPIs(serving, noisy, -120)
	if sNoisy >= sQuiet {
		t.Errorf("interference did not lower SINR: %v >= %v", sNoisy, sQuiet)
	}
}

func TestCQISINRRoundTrip(t *testing.T) {
	for cqi := 1.0; cqi <= 15; cqi++ {
		sinr := SINRFromCQI(cqi)
		back := CQIFromSINR(sinr)
		if back != cqi {
			t.Errorf("CQI %v -> SINR %v -> CQI %v", cqi, sinr, back)
		}
	}
}

func TestCQIMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := math.Mod(math.Abs(a), 40)-10, math.Mod(math.Abs(b), 40)-10
		if x > y {
			x, y = y, x
		}
		return CQIFromSINR(x) <= CQIFromSINR(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	for kpi := 0; kpi < NumKPI; kpi++ {
		lo, hi := KPIRange(kpi)
		for _, v := range []float64{lo, (lo + hi) / 2, hi} {
			n := Normalize(kpi, v)
			if n < 0 || n > 1 {
				t.Errorf("Normalize(%d, %v) = %v out of [0,1]", kpi, v, n)
			}
			back := Denormalize(kpi, n)
			if math.Abs(back-v) > 1e-9 {
				t.Errorf("round trip kpi %d: %v -> %v", kpi, v, back)
			}
		}
	}
}

func TestClampKPIRoundsCQI(t *testing.T) {
	if got := ClampKPI(KPICQI, 7.4); got != 7 {
		t.Errorf("ClampKPI CQI 7.4 = %v, want 7", got)
	}
	if got := ClampKPI(KPICQI, 99); got != 15 {
		t.Errorf("ClampKPI CQI 99 = %v, want 15", got)
	}
	if got := ClampKPI(KPIRSRP, -300); got != RSRPMin {
		t.Errorf("ClampKPI RSRP -300 = %v, want %v", got, RSRPMin)
	}
}

func TestServingSelectorAttachAndHysteresis(t *testing.T) {
	s := NewServingSelector(3, 2)
	if s.Serving() != -1 {
		t.Fatal("selector should start detached")
	}
	id, ho := s.Step([]Link{{CellID: 1, RSRPdBm: -80}, {CellID: 2, RSRPdBm: -85}})
	if id != 1 || ho {
		t.Fatalf("initial attach: got %d, ho=%v", id, ho)
	}
	// Neighbour better but within hysteresis: no handover.
	id, ho = s.Step([]Link{{CellID: 1, RSRPdBm: -80}, {CellID: 2, RSRPdBm: -78}})
	if id != 1 || ho {
		t.Fatalf("within hysteresis: got %d, ho=%v", id, ho)
	}
	// Exceeds hysteresis but TTT=2 requires two consecutive samples.
	id, ho = s.Step([]Link{{CellID: 1, RSRPdBm: -80}, {CellID: 2, RSRPdBm: -75}})
	if id != 1 || ho {
		t.Fatalf("first TTT sample should not hand over: got %d", id)
	}
	id, ho = s.Step([]Link{{CellID: 1, RSRPdBm: -80}, {CellID: 2, RSRPdBm: -75}})
	if id != 2 || !ho {
		t.Fatalf("second TTT sample should hand over: got %d, ho=%v", id, ho)
	}
}

func TestServingSelectorStreakResets(t *testing.T) {
	s := NewServingSelector(3, 3)
	s.Step([]Link{{CellID: 1, RSRPdBm: -80}})
	s.Step([]Link{{CellID: 1, RSRPdBm: -80}, {CellID: 2, RSRPdBm: -70}})
	s.Step([]Link{{CellID: 1, RSRPdBm: -80}, {CellID: 2, RSRPdBm: -70}})
	// Condition breaks: streak must reset.
	s.Step([]Link{{CellID: 1, RSRPdBm: -80}, {CellID: 2, RSRPdBm: -80}})
	id, ho := s.Step([]Link{{CellID: 1, RSRPdBm: -80}, {CellID: 2, RSRPdBm: -70}})
	if id != 1 || ho {
		t.Fatalf("streak should have reset; got %d ho=%v", id, ho)
	}
}

func TestServingSelectorRLFReattach(t *testing.T) {
	s := NewServingSelector(3, 2)
	s.Step([]Link{{CellID: 1, RSRPdBm: -80}})
	id, ho := s.Step([]Link{{CellID: 5, RSRPdBm: -90}})
	if id != 5 || !ho {
		t.Fatalf("serving vanished: got %d ho=%v, want reattach to 5", id, ho)
	}
}

func TestServingSelectorEmptyLinks(t *testing.T) {
	s := NewServingSelector(3, 2)
	if id, ho := s.Step(nil); id != -1 || ho {
		t.Fatalf("empty links before attach: got %d, %v", id, ho)
	}
	s.Step([]Link{{CellID: 9, RSRPdBm: -70}})
	if id, ho := s.Step(nil); id != 9 || ho {
		t.Fatalf("empty links after attach: got %d, %v", id, ho)
	}
}

func TestInterHandoverTimes(t *testing.T) {
	ids := []float64{1, 1, 1, 2, 2, 3, 3, 3, 3}
	got := InterHandoverTimes(ids, 1)
	want := []float64{3, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if res := InterHandoverTimes([]float64{1, 1, 1}, 1); len(res) != 0 {
		t.Errorf("no handovers should give empty, got %v", res)
	}
}

func TestStaticShadowRepeatable(t *testing.T) {
	s := NewStaticShadow(6, 80, 42, origin)
	loc := geo.Offset(origin, 45, 300)
	a := s.Sample(7, loc)
	b := s.Sample(7, loc)
	if a != b {
		t.Fatalf("static shadow not repeatable: %v vs %v", a, b)
	}
	s2 := NewStaticShadow(6, 80, 42, origin)
	if c := s2.Sample(7, loc); c != a {
		t.Fatalf("fresh field with same seed differs: %v vs %v", c, a)
	}
}

func TestStaticShadowSmooth(t *testing.T) {
	s := NewStaticShadow(6, 80, 1, origin)
	prev := s.Sample(3, origin)
	for d := 1.0; d <= 40; d++ {
		v := s.Sample(3, geo.Offset(origin, 90, d))
		if math.Abs(v-prev) > 2.0 {
			t.Fatalf("static shadow jumped %v dB over 1 m at d=%v", math.Abs(v-prev), d)
		}
		prev = v
	}
}

func TestStaticShadowVariance(t *testing.T) {
	s := NewStaticShadow(6, 80, 5, origin)
	sum2 := 0.0
	n := 0
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			v := s.Sample(9, geo.Offset(geo.Offset(origin, 0, float64(i)*160), 90, float64(j)*160))
			sum2 += v * v
			n++
		}
	}
	std := math.Sqrt(sum2 / float64(n))
	if std < 3.5 || std > 8.5 {
		t.Errorf("static shadow std = %v, want ~6", std)
	}
}

func TestStaticShadowDiffersAcrossCellsAndSeeds(t *testing.T) {
	s := NewStaticShadow(6, 80, 5, origin)
	loc := geo.Offset(origin, 10, 500)
	if s.Sample(1, loc) == s.Sample(2, loc) {
		t.Error("different cells share static shadowing")
	}
	s2 := NewStaticShadow(6, 80, 6, origin)
	if s.Sample(1, loc) == s2.Sample(1, loc) {
		t.Error("different world seeds share static shadowing")
	}
}

func TestStaticShadowZeroSigma(t *testing.T) {
	s := NewStaticShadow(0, 80, 5, origin)
	if v := s.Sample(1, origin); v != 0 {
		t.Errorf("zero-sigma field returned %v", v)
	}
}
