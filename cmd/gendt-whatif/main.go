// Command gendt-whatif performs the paper's §C.2 what-if analysis from the
// command line: train GenDT on the existing deployment, then predict the
// radio-KPI impact of a hypothetical new cell site along an unseen route —
// before deploying anything — and validate the prediction against the
// simulated reality.
//
// Usage:
//
//	gendt-whatif [-dataset NAME] [-scale F] [-seed N] [-epochs N]
//	             [-sectors N] [-pmax DBM] [-run N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/metrics"
)

func main() {
	which := flag.String("dataset", "A", "registered scenario name (A, B, NR5G, Tunnel, Suburb, ...)")
	scale := flag.Float64("scale", 0.04, "dataset scale")
	seed := flag.Int64("seed", 3, "random seed")
	epochs := flag.Int("epochs", 12, "training epochs")
	sectors := flag.Int("sectors", 3, "sectors of the hypothetical new site")
	pmax := flag.Float64("pmax", 43, "transmit power of the new site, dBm")
	runIdx := flag.Int("run", 0, "index into the test runs")
	flag.Parse()

	d, err := dataset.NewByName(*which, dataset.Spec{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-whatif:", err)
		os.Exit(2)
	}
	chans := []core.ChannelSpec{core.KPIChannel(0)}
	train := core.PrepareAll(d.TrainRuns(), chans, 10)
	m := core.NewModel(core.Config{
		Channels: chans, Hidden: 24, BatchLen: 24, StepLen: 6,
		MaxCells: 10, Epochs: *epochs, Seed: *seed,
	})
	fmt.Println("training", m, "on the existing deployment")
	m.Train(train, nil)

	tests := d.TestRuns()
	if *runIdx < 0 || *runIdx >= len(tests) {
		fmt.Fprintf(os.Stderr, "run index out of range (%d test runs)\n", len(tests))
		os.Exit(2)
	}
	run := tests[*runIdx]
	seq := core.PrepareSequence(run, chans, 10)
	base := m.DenormalizeSeries(m.Generate(seq))[0]
	worst, worstV := 0, base[0]
	for t, v := range base {
		if v < worstV {
			worst, worstV = t, v
		}
	}
	spot := run.Meas[worst].Loc
	fmt.Printf("weakest predicted RSRP %.1f dBm at (%.5f, %.5f)\n", worstV, spot.Lat, spot.Lon)

	maxID := 0
	for _, c := range d.World.Deployment.Cells {
		if c.ID > maxID {
			maxID = c.ID
		}
	}
	cellsToAdd := dataset.NewSiteAt(spot, maxID+1, *sectors, *pmax)
	augmented := d.WithExtraCells(cellsToAdd)
	augMeas := augmented.DriveTest(run.Traj, rand.New(rand.NewSource(*seed+99)))
	augRun := dataset.Run{Scenario: run.Scenario, Traj: run.Traj, Meas: augMeas}
	augSeq := core.PrepareSequence(augRun, chans, 10)
	what := m.DenormalizeSeries(m.Generate(augSeq))[0]

	fmt.Printf("\npredicted route-mean RSRP: %.1f -> %.1f dBm\n",
		metrics.Mean(base), metrics.Mean(what))
	realBase := make([]float64, len(run.Meas))
	realAug := make([]float64, len(augMeas))
	for i := range run.Meas {
		realBase[i] = run.Meas[i].RSRP
		realAug[i] = augMeas[i].RSRP
	}
	fmt.Printf("simulated  route-mean RSRP: %.1f -> %.1f dBm\n",
		metrics.Mean(realBase), metrics.Mean(realAug))
	predGain := metrics.Mean(what) - metrics.Mean(base)
	realGain := metrics.Mean(realAug) - metrics.Mean(realBase)
	fmt.Printf("\npredicted gain %.1f dB vs simulated gain %.1f dB\n", predGain, realGain)
}
