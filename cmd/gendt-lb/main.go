// Command gendt-lb runs the horizontal front tier for a fleet of
// gendt-serve replicas. Requests are consistent-hashed by (model, route) so
// each replica's prepared-sequence cache stays hot; replicas are health
// probed and ejected/readmitted; 503s and connect errors are retried
// against ring successors; saturated fleets shed with an explicit
// X-Gendt-Reason header.
//
// Endpoints:
//
//	POST /v1/generate     consistent-hash routed to a replica (+retry/shed)
//	GET  /v1/models       forwarded to the first healthy replica
//	GET  /healthz         front-tier + per-replica health
//	GET  /debug/vars      per-replica requests/retries/ejections/latency (JSON)
//	GET  /admin/replicas  current ring membership
//	POST /admin/replicas  add/remove/drain/readmit a replica (bearer auth)
//	GET  /admin/rollout   rollout state (phase/step/promoted/reason)
//	POST /admin/rollout   update rollout state (bearer auth; gendt-rollout)
//
// SIGINT/SIGTERM flip /healthz to draining, then shut down gracefully.
//
// Usage:
//
//	gendt-lb -replica http://127.0.0.1:8081 -replica http://127.0.0.1:8082
//	         [-addr :8080] [-vnodes 128] [-retries 2] [-max-inflight 64]
//	         [-timeout 60s] [-max-body 8388608]
//	         [-probe-interval 500ms] [-probe-timeout 2s]
//	         [-eject-after 2] [-readmit-after 2]
//	         [-admin-token secret] [-drain-timeout 30s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gendt/internal/lb"
)

// replicaFlags collects repeated -replica flags.
type replicaFlags []string

func (f *replicaFlags) String() string { return strings.Join(*f, ",") }

func (f *replicaFlags) Set(v string) error {
	v = strings.TrimRight(v, "/")
	if v == "" {
		return fmt.Errorf("empty replica URL")
	}
	if !strings.HasPrefix(v, "http://") && !strings.HasPrefix(v, "https://") {
		return fmt.Errorf("replica %q: want an http(s) base URL", v)
	}
	*f = append(*f, v)
	return nil
}

func main() {
	var replicas replicaFlags
	flag.Var(&replicas, "replica", "gendt-serve base URL (repeatable, required)")
	addr := flag.String("addr", ":8080", "listen address")
	vnodes := flag.Int("vnodes", lb.DefaultVNodes, "virtual nodes per replica on the hash ring")
	retries := flag.Int("retries", lb.DefaultRetries, "extra attempts against ring successors on 503/connect error")
	maxInFlight := flag.Int("max-inflight", lb.DefaultMaxInFlight, "per-replica in-flight cap before shedding")
	timeout := flag.Duration("timeout", lb.DefaultLBTimeout, "per-attempt forwarding timeout")
	maxBody := flag.Int64("max-body", 0, "max buffered request body bytes (0 = serve default)")
	probeInterval := flag.Duration("probe-interval", lb.DefaultProbeInterval, "health probe period per replica")
	probeTimeout := flag.Duration("probe-timeout", lb.DefaultProbeTimeout, "health probe timeout")
	ejectAfter := flag.Int("eject-after", lb.DefaultFailAfter, "consecutive probe/connect failures before ejection")
	readmitAfter := flag.Int("readmit-after", lb.DefaultOKAfter, "consecutive probe successes before readmission")
	adminToken := flag.String("admin-token", "", "bearer token for mutating /admin endpoints (empty disables them)")
	drainTimeout := flag.Duration("drain-timeout", lb.DefaultDrainTimeout, "max wait for in-flight requests when removing a replica")
	flag.Parse()

	logger := log.New(os.Stderr, "gendt-lb: ", log.LstdFlags)
	if len(replicas) == 0 {
		logger.Fatal("at least one -replica is required")
	}

	balancer, err := lb.New(lb.Options{
		Replicas:      replicas,
		VNodes:        *vnodes,
		Retries:       *retries,
		MaxInFlight:   *maxInFlight,
		Timeout:       *timeout,
		MaxBody:       *maxBody,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     *ejectAfter,
		OKAfter:       *readmitAfter,
		AdminToken:    *adminToken,
		DrainTimeout:  *drainTimeout,
	})
	if err != nil {
		logger.Fatal(err)
	}
	balancer.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           balancer.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Print("shutting down: draining")
		balancer.StartDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	logger.Printf("balancing %d replica(s) on %s (vnodes %d, retries %d, max in-flight %d/replica)",
		len(replicas), *addr, *vnodes, *retries, *maxInFlight)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	balancer.Close()
	logger.Print("bye")
}
