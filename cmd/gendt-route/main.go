// Command gendt-route builds a constant-interval trajectory CSV from a
// list of waypoints — the companion to `gendt-gen -route`, letting an
// operator sketch a virtual drive-test route from a few street corners.
//
// Usage:
//
//	gendt-route -out route.csv -profile drive lat1,lon1 lat2,lon2 ...
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"gendt/internal/export"
	"gendt/internal/geo"
)

func main() {
	out := flag.String("out", "route.csv", "output trajectory CSV path")
	profile := flag.String("profile", "drive", "speed profile: walk, bus, tram, drive, highway")
	interval := flag.Float64("interval", 1, "sampling interval, seconds")
	seed := flag.Int64("seed", 1, "speed-variability seed")
	flag.Parse()

	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "need at least two lat,lon waypoints")
		os.Exit(2)
	}
	var wps []geo.Point
	for _, arg := range flag.Args() {
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			fmt.Fprintf(os.Stderr, "bad waypoint %q (want lat,lon)\n", arg)
			os.Exit(2)
		}
		lat, err1 := strconv.ParseFloat(parts[0], 64)
		lon, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "bad waypoint %q\n", arg)
			os.Exit(2)
		}
		wps = append(wps, geo.Point{Lat: lat, Lon: lon})
	}
	var prof geo.SpeedProfile
	switch *profile {
	case "walk":
		prof = geo.WalkProfile
	case "bus":
		prof = geo.BusProfile
	case "tram":
		prof = geo.TramProfile
	case "drive":
		prof = geo.CityDriveProfile
	case "highway":
		prof = geo.HighwayProfile
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	tr := geo.RouteThrough(wps, prof, *interval, rand.New(rand.NewSource(*seed)))
	if err := export.WriteTrajectoryCSV(*out, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d samples, %.1f km over %.0f s\n",
		*out, len(tr), tr.Length()/1000, tr.Duration())
}
