// Command gendt-train trains a GenDT model on a synthesized dataset's
// training split and saves it to disk. With -checkpoint-dir it writes
// crash-safe checkpoints at epoch boundaries; -resume restarts from the
// newest valid checkpoint and is bit-identical to a run that never
// stopped.
//
// Usage:
//
//	gendt-train -out model.json [-dataset NAME] [-scenario-file F.toml]
//	            [-scale F] [-seed N]
//	            [-channels rsrp,rsrq,sinr,cqi] [-epochs N] [-hidden N]
//	            [-workers N] [-cpuprofile F] [-memprofile F]
//	            [-checkpoint-dir DIR] [-checkpoint-every N] [-checkpoint-keep K]
//	            [-resume] [-fingerprint]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"gendt/internal/ckpt"
	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/scenario"
)

func main() {
	out := flag.String("out", "gendt-model.json", "output model path")
	which := flag.String("dataset", "A", "registered scenario name (A, B, NR5G, Tunnel, Suburb, ...)")
	scenarioFile := flag.String("scenario-file", "", "load a scenario config file; it is registered under its [scenario] name and becomes the default -dataset")
	scale := flag.Float64("scale", 0.05, "dataset scale")
	seed := flag.Int64("seed", 1, "random seed")
	channels := flag.String("channels", "rsrp,rsrq,sinr,cqi", "comma-separated channels (rsrp,rsrq,sinr,cqi,servingrank)")
	epochs := flag.Int("epochs", 20, "training epochs")
	hidden := flag.Int("hidden", 32, "hidden dimension")
	batchLen := flag.Int("batch", 24, "batch (window) length L")
	stepLen := flag.Int("step", 6, "training window stride Δt")
	maxCells := flag.Int("maxcells", 10, "visible-cell cap per step")
	workers := flag.Int("workers", 0, "data-parallel training workers (0 = NumCPU, 1 = serial)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for crash-safe training checkpoints (empty = no checkpointing)")
	ckptEvery := flag.Int("checkpoint-every", 1, "write a checkpoint every N epochs")
	ckptKeep := flag.Int("checkpoint-keep", ckpt.DefaultKeep, "checkpoints to retain (newest K, plus the best-MSE one)")
	resume := flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir")
	fingerprint := flag.Bool("fingerprint", false, "print the trained model's weight fingerprint (bit-exactness checks)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	var chans []core.ChannelSpec
	for _, name := range strings.Split(*channels, ",") {
		ch, err := core.ChannelByName(canonical(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		chans = append(chans, ch)
	}

	dsName, err := resolveScenario(*which, *scenarioFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-train:", err)
		os.Exit(2)
	}
	d, err := dataset.NewByName(dsName, dataset.Spec{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-train:", err)
		os.Exit(2)
	}

	var store *ckpt.Store
	if *ckptDir != "" {
		var err error
		store, err = ckpt.NewStore(ckpt.OSFS{}, *ckptDir, *ckptKeep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *resume && store == nil {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint-dir")
		os.Exit(2)
	}

	cfg := core.Config{
		Channels: chans,
		Hidden:   *hidden, BatchLen: *batchLen, StepLen: *stepLen,
		MaxCells: *maxCells, Epochs: *epochs, Seed: *seed,
		Workers: *workers,
	}

	opts := core.TrainOpts{Logf: func(f string, a ...any) { fmt.Printf(f+"\n", a...) }}
	if *resume {
		man, payload, err := store.Latest()
		switch {
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			fmt.Println("resume: no checkpoint found, starting fresh")
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		default:
			ts, err := core.DecodeTrainState(payload)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// The checkpoint defines the run being continued; CLI
			// architecture/schedule flags are superseded by it. The
			// dataset flags (-dataset, -scale, -seed) must still match
			// the original run — a mismatch is caught by the trainer's
			// window-count/permutation validation.
			cfg, err = ts.ModelConfig()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			opts.Resume = ts
			fmt.Printf("resume: checkpoint epoch %d/%d (mse %.5f) from %s\n",
				ts.Epoch, cfg.Epochs, man.Score, *ckptDir)
		}
	}

	fmt.Printf("dataset %s: %d train runs\n", d.Name, len(d.TrainRuns()))
	seqs := core.PrepareAll(d.TrainRuns(), cfg.Channels, cfg.MaxCells)

	m := core.NewModel(cfg)
	if store != nil {
		every := *ckptEvery
		if every < 1 {
			every = 1
		}
		opts.AfterEpoch = func(ev core.EpochEvent) error {
			if ev.Epoch%every != 0 && ev.Epoch != ev.Epochs {
				return nil
			}
			data, err := core.EncodeTrainState(ev.State())
			if err != nil {
				return err
			}
			if err := store.Save(ev.Epoch, ev.MSE, data); err != nil {
				return err
			}
			fmt.Printf("checkpoint: epoch %d -> %s\n", ev.Epoch, *ckptDir)
			return nil
		}
	}

	fmt.Println("training", m.String())
	res, err := m.TrainWithOptions(seqs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trained on %d windows, final mse %.5f\n", res.Windows, res.FinalMSE)
	if err := m.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("saved", *out)
	if *fingerprint {
		fmt.Printf("fingerprint %016x\n", m.Fingerprint())
	}
}

// writeMemProfile records a post-GC heap profile (no-op when path is "").
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// resolveScenario registers -scenario-file (if given) and picks the
// dataset name: an explicit -dataset wins, otherwise the loaded file's
// [scenario] name is used.
func resolveScenario(name, file string) (string, error) {
	if file == "" {
		return name, nil
	}
	sc, err := scenario.RegisterFile(file)
	if err != nil {
		return "", err
	}
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dataset" {
			explicit = true
		}
	})
	if explicit {
		return name, nil
	}
	return sc.Name, nil
}

func canonical(name string) string {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "rsrp":
		return "RSRP"
	case "rsrq":
		return "RSRQ"
	case "sinr":
		return "SINR"
	case "cqi":
		return "CQI"
	case "servingrank", "serving":
		return "ServingRank"
	default:
		return name
	}
}
