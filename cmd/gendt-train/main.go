// Command gendt-train trains a GenDT model on a synthesized dataset's
// training split and saves it to disk.
//
// Usage:
//
//	gendt-train -out model.json [-dataset A|B] [-scale F] [-seed N]
//	            [-channels rsrp,rsrq,sinr,cqi] [-epochs N] [-hidden N]
//	            [-workers N] [-cpuprofile F] [-memprofile F]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"gendt/internal/core"
	"gendt/internal/dataset"
)

func main() {
	out := flag.String("out", "gendt-model.json", "output model path")
	which := flag.String("dataset", "A", "dataset: A or B")
	scale := flag.Float64("scale", 0.05, "dataset scale")
	seed := flag.Int64("seed", 1, "random seed")
	channels := flag.String("channels", "rsrp,rsrq,sinr,cqi", "comma-separated channels (rsrp,rsrq,sinr,cqi,servingrank)")
	epochs := flag.Int("epochs", 20, "training epochs")
	hidden := flag.Int("hidden", 32, "hidden dimension")
	batchLen := flag.Int("batch", 24, "batch (window) length L")
	stepLen := flag.Int("step", 6, "training window stride Δt")
	maxCells := flag.Int("maxcells", 10, "visible-cell cap per step")
	workers := flag.Int("workers", 0, "data-parallel training workers (0 = NumCPU, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	var chans []core.ChannelSpec
	for _, name := range strings.Split(*channels, ",") {
		ch, err := core.ChannelByName(canonical(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		chans = append(chans, ch)
	}

	spec := dataset.Spec{Seed: *seed, Scale: *scale}
	var d *dataset.Dataset
	switch strings.ToUpper(*which) {
	case "A":
		d = dataset.NewDatasetA(spec)
	case "B":
		d = dataset.NewDatasetB(spec)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *which)
		os.Exit(2)
	}

	fmt.Printf("dataset %s: %d train runs\n", d.Name, len(d.TrainRuns()))
	seqs := core.PrepareAll(d.TrainRuns(), chans, *maxCells)
	m := core.NewModel(core.Config{
		Channels: chans,
		Hidden:   *hidden, BatchLen: *batchLen, StepLen: *stepLen,
		MaxCells: *maxCells, Epochs: *epochs, Seed: *seed,
		Workers: *workers,
	})
	fmt.Println("training", m.String())
	res := m.Train(seqs, func(f string, a ...any) { fmt.Printf(f+"\n", a...) })
	fmt.Printf("trained on %d windows, final mse %.5f\n", res.Windows, res.FinalMSE)
	if err := m.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("saved", *out)
}

// writeMemProfile records a post-GC heap profile (no-op when path is "").
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func canonical(name string) string {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "rsrp":
		return "RSRP"
	case "rsrq":
		return "RSRQ"
	case "sinr":
		return "SINR"
	case "cqi":
		return "CQI"
	case "servingrank", "serving":
		return "ServingRank"
	default:
		return name
	}
}
