// Command gendt-validate runs the statistical model-quality gate over a
// trained model (or training checkpoint): distributional checks against
// simulator ground truth on held-out routes, gated by a committed golden
// tolerance file, plus metamorphic invariants (seed determinism across the
// serial/parallel/HTTP paths, permutation invariance, truncation
// consistency, physical monotonicity) that need no ground truth.
//
// Usage:
//
//	gendt-validate -model model.json -golden validate/golden/gate-a.json
//	               [-dataset NAME] [-scenario-file F.toml]
//	               [-scale F] [-seed N] [-routes N]
//	               [-samples N] [-max-route-len N] [-workers N]
//	               [-precision f64|f32|int8]
//	               [-update-golden] [-corrupt SIGMA] [-corrupt-out PATH]
//	               [-skip-http] [-json]
//	               [-target http://replica:8081] [-target-model NAME]
//
// With -target the suite validates what a live replica actually serves:
// the distributional pass fetches samples over the replica's /v1/generate
// (same seeds as the local pass, same golden tolerances) and the
// metamorphic pass adds remote determinism, remote truncation/monotonicity,
// and a bit-identity check that the replica serves exactly the -model
// candidate — the gate a rolling rollout runs per replica.
//
// Exit status: 0 all checks passed; 1 at least one check failed (each
// failure is printed as "FAIL <name>"); 2 usage or setup error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/scenario"
	"gendt/internal/validate"
)

func main() {
	model := flag.String("model", "", "trained model or training checkpoint to validate (required)")
	which := flag.String("dataset", "A", "registered scenario name (A, B, NR5G, Tunnel, Suburb, ...)")
	scenarioFile := flag.String("scenario-file", "", "load a scenario config file; it is registered under its [scenario] name and becomes the default -dataset")
	scale := flag.Float64("scale", 0.05, "dataset scale (must match training)")
	seed := flag.Int64("seed", 1, "validation seed (drives every generation in the suite)")
	routes := flag.Int("routes", 4, "held-out routes for the distributional pass")
	samples := flag.Int("samples", 2, "generation samples per route")
	maxRouteLen := flag.Int("max-route-len", 150, "truncate held-out routes to N samples (negative = full routes)")
	workers := flag.Int("workers", 4, "parallel width for the Workers=N determinism check")
	golden := flag.String("golden", "", "golden tolerance file for the distributional gates")
	updateGolden := flag.Bool("update-golden", false, "derive tolerances from this run and write them to -golden")
	corrupt := flag.Float64("corrupt", 0, "perturb every weight with Gaussian noise of this sigma before validating (negative-control hook)")
	corruptOut := flag.String("corrupt-out", "", "write the (possibly corrupted) in-memory model to this path and exit 0 — builds rollback-test candidates")
	target := flag.String("target", "", "validate a live replica at this base URL instead of the in-process model")
	targetModel := flag.String("target-model", "", "registered model name on the -target replica (empty = its single-model default)")
	precision := flag.String("precision", "", "backend to validate: f64 (live model, default), f32, or int8 (frozen inference kernels)")
	skipHTTP := flag.Bool("skip-http", false, "skip the HTTP /v1/generate determinism check")
	asJSON := flag.Bool("json", false, "print the full report as JSON instead of text")
	flag.Parse()

	if *model == "" {
		fmt.Fprintln(os.Stderr, "gendt-validate: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	if *updateGolden && *golden == "" {
		fmt.Fprintln(os.Stderr, "gendt-validate: -update-golden requires -golden (the path to write)")
		os.Exit(2)
	}
	if *updateGolden && *corrupt != 0 {
		fmt.Fprintln(os.Stderr, "gendt-validate: refusing to derive golden tolerances from a corrupted model")
		os.Exit(2)
	}

	// core.LoadFile sniffs the format: plain model snapshots and training
	// checkpoints both load (a checkpoint yields the model at that epoch).
	m, err := core.LoadFile(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-validate:", err)
		os.Exit(2)
	}
	if *corrupt != 0 {
		fmt.Printf("corrupting model: gaussian sigma=%g over %d weights\n", *corrupt, m.ParamCount())
		m.PerturbWeights(*corrupt, *seed+1)
	}
	if *corruptOut != "" {
		if err := m.SaveFile(*corruptOut); err != nil {
			fmt.Fprintln(os.Stderr, "gendt-validate:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote model (corrupt sigma=%g) to %s\n", *corrupt, *corruptOut)
		return
	}

	dsName, err := resolveScenario(*which, *scenarioFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-validate:", err)
		os.Exit(2)
	}
	ds, err := dataset.NewByName(dsName, dataset.Spec{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-validate:", err)
		os.Exit(2)
	}

	prec, err := core.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-validate:", err)
		os.Exit(2)
	}
	opts := validate.Options{
		Dataset: ds, Routes: *routes, SamplesPerRoute: *samples,
		MaxRouteLen: *maxRouteLen, Seed: *seed, Workers: *workers,
		SkipHTTP:  *skipHTTP,
		Precision: prec,
		Logf:      func(f string, a ...any) { fmt.Printf(f+"\n", a...) },
	}
	if *golden != "" && !*updateGolden {
		opts.Golden, err = validate.LoadGolden(*golden)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gendt-validate:", err)
			os.Exit(2)
		}
	}

	var rep *validate.Report
	if *target != "" {
		rep, err = validate.RunRemote(m, validate.RemoteOptions{
			Target: strings.TrimRight(*target, "/"), Model: *targetModel,
		}, opts)
	} else {
		rep, err = validate.Run(m, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-validate:", err)
		os.Exit(2)
	}

	if *updateGolden {
		g := rep.DeriveGolden(opts)
		if err := g.Save(*golden); err != nil {
			fmt.Fprintln(os.Stderr, "gendt-validate:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote golden tolerances for %d channels to %s\n", len(g.Channels), *golden)
	}

	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "gendt-validate:", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(rep)
	}

	if fails := rep.Failures(); len(fails) > 0 {
		for _, c := range fails {
			fmt.Printf("FAIL %s\n", c.Name)
		}
		fmt.Printf("gendt-validate: %d of %d checks failed\n", len(fails), len(rep.Checks))
		os.Exit(1)
	}
	fmt.Printf("gendt-validate: all %d checks passed\n", len(rep.Checks))
}

// resolveScenario registers -scenario-file (if given) and picks the
// dataset name: an explicit -dataset wins, otherwise the loaded file's
// [scenario] name is used.
func resolveScenario(name, file string) (string, error) {
	if file == "" {
		return name, nil
	}
	sc, err := scenario.RegisterFile(file)
	if err != nil {
		return "", err
	}
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dataset" {
			explicit = true
		}
	})
	if explicit {
		return name, nil
	}
	return sc.Name, nil
}
