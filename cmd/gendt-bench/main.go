// Command gendt-bench replays a deterministic trajectory-request trace
// open-loop against the GenDT serving tier (a gendt-lb front or a bare
// gendt-serve replica) and reports tail latency, error/shed breakdowns, and
// achieved-vs-offered throughput as machine-readable JSON. A sweep mode
// walks an RPS ladder to locate the saturation knee; a verify mode asserts
// per-seed responses are bit-identical through two endpoints (LB vs direct
// replica).
//
// The trace is synthesized from the resident dataset world with a seeded
// RNG, so -dataset/-scale/-seed must match the serving fleet's flags.
//
// Usage:
//
//	gendt-bench -target http://127.0.0.1:8080 [-dataset A] [-scale 0.05]
//	            [-seed 1] [-model NAME] [-routes 8] [-steps 120]
//	            [-samples 1] [-trace-seed 1]
//	            [-rps 20] [-duration 10s] [-warmup 2s]
//	            [-arrival poisson|fixed] [-timeout 30s]
//	            [-sweep 10,20,40,80] [-name lb-2x] [-out report.json]
//	            [-max-error-rate 0.01]
//	            [-verify-against http://127.0.0.1:8081 -verify-n 4]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"gendt/internal/loadgen"
)

func main() {
	target := flag.String("target", "", "base URL under test (required)")
	which := flag.String("dataset", "A", "dataset world: A or B (must match the serving fleet)")
	scale := flag.Float64("scale", 0.05, "dataset scale (must match the serving fleet)")
	seed := flag.Int64("seed", 1, "dataset seed (must match the serving fleet)")
	model := flag.String("model", "", "model name in the fleet registry (empty = single-model default)")
	routes := flag.Int("routes", 8, "distinct routes in the trace")
	steps := flag.Int("steps", 120, "samples per route (0 = full trajectories)")
	samples := flag.Int("samples", 1, "generation fan-out per request")
	traceSeed := flag.Int64("trace-seed", 1, "seed for route selection, request seeds, and Poisson arrivals")
	rps := flag.Float64("rps", 20, "offered request rate")
	duration := flag.Duration("duration", 10*time.Second, "arrival window per rate")
	warmup := flag.Duration("warmup", 2*time.Second, "initial span excluded from statistics")
	arrival := flag.String("arrival", loadgen.ArrivalPoisson, "arrival process: poisson or fixed")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	sweep := flag.String("sweep", "", "comma-separated RPS ladder (overrides -rps; locates the saturation knee)")
	name := flag.String("name", "", "report name (the BENCH_serve.json entry key)")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	maxErrorRate := flag.Float64("max-error-rate", -1, "exit non-zero when the measured error rate exceeds this (-1 disables)")
	verifyAgainst := flag.String("verify-against", "", "second endpoint: assert bit-identical per-seed responses vs -target, then exit")
	verifyN := flag.Int("verify-n", 4, "routes to verify in -verify-against mode")
	flag.Parse()

	logger := log.New(os.Stderr, "gendt-bench: ", log.LstdFlags)
	if *target == "" {
		logger.Fatal("-target is required")
	}

	spec := loadgen.TraceSpec{
		Dataset: *which, Scale: *scale, Seed: *seed,
		Routes: *routes, Steps: *steps, Model: *model,
		Samples: *samples, RNGSeed: *traceSeed,
	}
	logger.Printf("synthesizing trace: dataset %s scale %g seed %d, %d routes x %d steps",
		*which, *scale, *seed, *routes, *steps)
	trace, err := loadgen.BuildTrace(spec)
	if err != nil {
		logger.Fatal(err)
	}

	if *verifyAgainst != "" {
		logger.Printf("verifying bit-identity: %s vs %s (%d routes)", *target, *verifyAgainst, *verifyN)
		if err := loadgen.Verify(*target, *verifyAgainst, trace, *verifyN, *timeout); err != nil {
			logger.Fatal(err)
		}
		fmt.Println("verify: bit-identical")
		return
	}

	cfg := loadgen.RunConfig{
		Target: *target, RPS: *rps, Duration: *duration, Warmup: *warmup,
		Arrival: *arrival, Timeout: *timeout, Name: *name,
	}

	var doc any
	exitErr := false
	if *sweep != "" {
		rates, err := parseRates(*sweep)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("sweeping %v rps, %s per rate", rates, *duration)
		sw, err := loadgen.Sweep(cfg, trace, rates)
		if err != nil {
			logger.Fatal(err)
		}
		for _, rep := range sw.Reports {
			logReport(logger, rep)
		}
		if sw.Saturation.Found {
			logger.Printf("saturation knee at %g rps (%s); max good rate %g rps",
				sw.Saturation.KneeRPS, sw.Saturation.Reason, sw.Saturation.MaxGoodRPS)
		} else {
			logger.Printf("no saturation up to %g rps", rates[len(rates)-1])
		}
		doc = sw
	} else {
		logger.Printf("replaying %s for %s at %g rps (%s arrivals)", *target, *duration, *rps, *arrival)
		rep, err := loadgen.Run(cfg, trace)
		if err != nil {
			logger.Fatal(err)
		}
		logReport(logger, rep)
		if *maxErrorRate >= 0 && rep.ErrorRate > *maxErrorRate {
			logger.Printf("FAIL: error rate %.4f exceeds -max-error-rate %.4f", rep.ErrorRate, *maxErrorRate)
			exitErr = true
		}
		doc = rep
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		logger.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		logger.Fatal(err)
	}
	if exitErr {
		os.Exit(1)
	}
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad sweep rate %q", part)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("empty -sweep")
	}
	return rates, nil
}

func logReport(logger *log.Logger, rep loadgen.Report) {
	logger.Printf("rps %g: sent %d measured %d ok %d err %d (%.2f%%) achieved %.1f rps | p50 %.1fms p99 %.1fms p999 %.1fms | reasons %v",
		rep.OfferedRPS, rep.Sent, rep.Measured, rep.Succeeded, rep.Errors,
		100*rep.ErrorRate, rep.AchievedRPS,
		rep.LatencyMs.P50, rep.LatencyMs.P99, rep.LatencyMs.P999, rep.Reasons)
	if h := rep.BatchSizeHist; h != nil {
		logger.Printf("rps %g: batch sizes: %d batches, mean %.2f req/batch | le %s",
			rep.OfferedRPS, h.Count, h.Mean, fmtBuckets(h.Buckets))
	}
}

// fmtBuckets renders le-bucket counts in ascending bound order ("+Inf"
// last), e.g. "1:12 2:3 8:1".
func fmtBuckets(buckets map[string]int64) string {
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		vi, erri := strconv.ParseInt(keys[i], 10, 64)
		vj, errj := strconv.ParseInt(keys[j], 10, 64)
		if (erri == nil) != (errj == nil) {
			return erri == nil // numeric bounds before "+Inf"
		}
		if erri != nil {
			return keys[i] < keys[j]
		}
		return vi < vj
	})
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, buckets[k]))
	}
	return strings.Join(parts, " ")
}
