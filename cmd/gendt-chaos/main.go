// Command gendt-chaos runs seeded, deterministic fault proxies between
// gendt-lb and its replicas. Each -proxy flag maps a listen address to a
// backend; every proxy shares the scripted fault schedule and derives its
// per-request injection decisions from -seed, so a run is reproducible.
//
// The schedule is dormant until armed through the control server, which
// lets a harness verify clean behavior through the exact same network path
// first:
//
//	POST /arm     start the schedule clock on every proxy
//	POST /disarm  back to transparent
//	GET  /stats   per-proxy forward/injection counts (JSON)
//
// Fault script grammar (see internal/chaos): semicolon-separated
// "START-END:KIND[:PARAM][@PROB]" windows, offsets relative to arming.
// Kinds: latency:DUR, reset, http:CODE, truncate, slowloris, blackhole.
//
// Usage:
//
//	gendt-chaos -proxy 127.0.0.1:18091=http://127.0.0.1:18081 \
//	            -proxy 127.0.0.1:18092=http://127.0.0.1:18082 \
//	            -fault '0-10:reset@0.1;10-20:latency:200ms@0.3;20-30:http:503@0.2' \
//	            [-seed 1] [-ctl 127.0.0.1:18090]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gendt/internal/chaos"
)

// proxyFlags collects repeated -proxy listen=target mappings.
type proxyFlags []struct{ listen, target string }

func (f *proxyFlags) String() string {
	parts := make([]string, len(*f))
	for i, p := range *f {
		parts[i] = p.listen + "=" + p.target
	}
	return strings.Join(parts, ",")
}

func (f *proxyFlags) Set(v string) error {
	listen, target, ok := strings.Cut(v, "=")
	if !ok || listen == "" || target == "" {
		return fmt.Errorf("proxy %q: want LISTEN=TARGET_URL", v)
	}
	if !strings.HasPrefix(target, "http://") && !strings.HasPrefix(target, "https://") {
		return fmt.Errorf("proxy target %q: want an http(s) base URL", target)
	}
	*f = append(*f, struct{ listen, target string }{listen, target})
	return nil
}

func main() {
	var proxies proxyFlags
	flag.Var(&proxies, "proxy", "LISTEN=TARGET_URL mapping (repeatable, required)")
	fault := flag.String("fault", "", "fault script, e.g. '0-10:reset@0.1;10-20:http:503@0.3' (empty = transparent)")
	seed := flag.Uint64("seed", 1, "seed for deterministic per-request fault decisions")
	ctl := flag.String("ctl", "127.0.0.1:18090", "control server address (/arm, /disarm, /stats)")
	arm := flag.Bool("arm", false, "arm the schedule immediately instead of waiting for POST /arm")
	flag.Parse()

	logger := log.New(os.Stderr, "gendt-chaos: ", log.LstdFlags)
	if len(proxies) == 0 {
		logger.Fatal("at least one -proxy is required")
	}
	var rules []chaos.Rule
	if *fault != "" {
		var err error
		if rules, err = chaos.ParseScript(*fault); err != nil {
			logger.Fatalf("-fault: %v", err)
		}
	}

	fleet := &chaos.Fleet{}
	servers := make([]*http.Server, 0, len(proxies)+1)
	for _, pf := range proxies {
		p := chaos.NewProxy(pf.target, rules, *seed)
		if *arm {
			p.Arm()
		}
		fleet.Proxies = append(fleet.Proxies, p)
		srv := &http.Server{Addr: pf.listen, Handler: p, ReadHeaderTimeout: 10 * time.Second}
		servers = append(servers, srv)
		go func(pf struct{ listen, target string }, srv *http.Server) {
			logger.Printf("proxying %s -> %s", pf.listen, pf.target)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Fatal(err)
			}
		}(pf, srv)
	}
	ctlSrv := &http.Server{Addr: *ctl, Handler: fleet.ControlHandler(), ReadHeaderTimeout: 10 * time.Second}
	servers = append(servers, ctlSrv)
	go func() {
		logger.Printf("control on %s (%d rule(s), seed %d, armed=%v)", *ctl, len(rules), *seed, *arm)
		if err := ctlSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	for _, srv := range servers {
		srv.Close()
	}
	logger.Print("bye")
}
