// Command gendt-experiments regenerates the paper's tables and figures
// against the simulated drive-test substrate.
//
// Usage:
//
//	gendt-experiments [-scale quick|default] [-seed N] [-workers N]
//	                  [-dataset NAME] [-scenario-file F.toml]
//	                  [-cpuprofile F] [-memprofile F] [experiment ...]
//
// Experiments: table1 table2 fig1 fig4 fig16 table3 table4 table5 table6
// table7 table8 fig9 fig10 fig11 table9 table10 table12 fig18, or "all".
// The "scenario" experiment prints Table 1/2-style statistics for the
// scenario named by -dataset (or loaded via -scenario-file); passing
// -scenario-file with no experiment list runs exactly that.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"gendt/internal/dataset"
	"gendt/internal/experiments"
	"gendt/internal/plot"
	"gendt/internal/scenario"
)

func main() {
	scale := flag.String("scale", "default", "experiment scale: quick or default")
	seed := flag.Int64("seed", 1, "master random seed")
	which := flag.String("dataset", "A", "registered scenario name for the \"scenario\" experiment")
	scenarioFile := flag.String("scenario-file", "", "load a scenario config file; it is registered under its [scenario] name and becomes the default -dataset")
	svgDir := flag.String("svg", "", "directory to also write figure SVGs (optional)")
	epochs := flag.Int("epochs", 0, "override GenDT training epochs (0 = scale preset)")
	workers := flag.Int("workers", -1, "data-parallel workers (-1 = scale preset, 0 = NumCPU, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var opt experiments.Options
	switch *scale {
	case "quick":
		opt = experiments.QuickOptions()
	case "default":
		opt = experiments.DefaultOptions()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	opt.Seed = *seed
	if *epochs > 0 {
		opt.Epochs = *epochs
	}
	if *workers >= 0 {
		opt.Workers = *workers
	}

	scenName, err := resolveScenario(*which, *scenarioFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-experiments:", err)
		os.Exit(2)
	}

	ids := flag.Args()
	if len(ids) == 0 && *scenarioFile != "" {
		ids = []string{"scenario"}
	}
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		// table3/table5 print tables 4/6 too (shared training), so the
		// default list names each computation once.
		ids = []string{"table1", "table2", "fig1", "fig4", "fig16",
			"table3", "table5", "table7", "table8",
			"fig9", "fig10", "fig11", "table9", "table10", "table12", "fig18",
			"ext-mdt", "ext-closedloop"}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := run(id, opt, *svgDir, scenName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// writeMemProfile records a post-GC heap profile (no-op when path is "").
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// resolveScenario registers -scenario-file (if given) and picks the
// scenario name: an explicit -dataset wins, otherwise the loaded file's
// [scenario] name is used.
func resolveScenario(name, file string) (string, error) {
	if file == "" {
		return name, nil
	}
	sc, err := scenario.RegisterFile(file)
	if err != nil {
		return "", err
	}
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dataset" {
			explicit = true
		}
	})
	if explicit {
		return name, nil
	}
	return sc.Name, nil
}

// writeSVG writes a figure SVG when an output directory was requested.
func writeSVG(dir, name, svg string) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name)
	if err := plot.WriteSVG(path, svg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Println("wrote", path)
}

func run(id string, opt experiments.Options, svgDir, scenName string) (string, error) {
	switch strings.ToLower(id) {
	case "scenario":
		stats, err := experiments.ScenarioTable(opt, scenName)
		if err != nil {
			return "", err
		}
		return experiments.RenderStats(fmt.Sprintf("Scenario %s statistics", scenName), stats), nil
	case "table1":
		return experiments.RenderStats("Table 1: Dataset A statistics", experiments.Table1(opt)), nil
	case "table2":
		return experiments.RenderStats("Table 2: Dataset B statistics", experiments.Table2(opt)), nil
	case "fig1", "fig2":
		rr := experiments.Figures1And2(opt, 5)
		var b strings.Builder
		b.WriteString("== Figures 1-2: repeated runs over the same trajectory ==\n")
		var series []plot.Series
		for i, s := range rr.RSRP {
			b.WriteString(experiments.ASCIISeries(fmt.Sprintf("run %d", i), s, 60))
			series = append(series, plot.Series{Name: fmt.Sprintf("run %d", i), Y: s})
		}
		fmt.Fprintf(&b, "mean RSRP spread across runs: %.1f dB\n", rr.SpreadDB)
		fmt.Fprintf(&b, "serving-cell churn at high-spread locations: %.0f%%\n", rr.ChurnCorrelation*100)
		writeSVG(svgDir, "fig1_rsrp_repeats.svg", plot.Chart{
			Title:  "Figure 1: RSRP over the same trajectory (5 runs)",
			XLabel: "sample", YLabel: "RSRP (dBm)", Series: series,
		}.SVG())
		return b.String(), nil
	case "fig4":
		cases := experiments.Figure4(opt)
		var bars []plot.Bar
		for _, c := range cases {
			bars = append(bars, plot.Bar{Label: c.Case, Value: c.PerKm2})
		}
		writeSVG(svgDir, "fig4_cell_density.svg", plot.BarChart{
			Title: "Figure 4: cell density per case", YLabel: "cells/km2", Bars: bars,
		}.SVG())
		return experiments.RenderDensity(cases), nil
	case "fig16":
		a := dataset.NewDatasetA(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
		bd := dataset.NewDatasetB(dataset.Spec{Seed: opt.Seed, Scale: opt.Scale})
		cdfsA, cdfsB := experiments.Figure16(a), experiments.Figure16(bd)
		for _, pair := range []struct {
			name string
			cdfs []experiments.ServingDistanceCDF
		}{{"fig16a_dataset_a.svg", cdfsA}, {"fig16b_dataset_b.svg", cdfsB}} {
			var series []plot.Series
			for _, c := range pair.cdfs {
				series = append(series, plot.Series{Name: c.Scenario, X: c.Values, Y: c.Probs})
			}
			writeSVG(svgDir, pair.name, plot.Chart{
				Title:  "Figure 16: CDF of distance to serving cell",
				XLabel: "distance (m)", YLabel: "CDF", Step: true, Series: series,
			}.SVG())
		}
		return experiments.RenderCDFs("Figure 16a: distance to serving cell (Dataset A)", cdfsA) +
			experiments.RenderCDFs("Figure 16b: distance to serving cell (Dataset B)", cdfsB), nil
	case "table3", "table4":
		t3, t4 := experiments.Tables3And4(opt)
		return experiments.RenderFidelity("Table 3: RSRP fidelity per scenario (Dataset A)", t3) +
			experiments.RenderFidelity("Table 4: all-KPI average (Dataset A)", t4), nil
	case "table5", "table6":
		t5, t6 := experiments.Tables5And6(opt)
		return experiments.RenderFidelity("Table 5: RSRP fidelity per scenario (Dataset B)", t5) +
			experiments.RenderFidelity("Table 6: RSRP+RSRQ average (Dataset B)", t6), nil
	case "table7":
		return experiments.RenderFidelity("Table 7: long/complex trajectory (Dataset B)", experiments.Table7(opt)), nil
	case "table8":
		return experiments.RenderTable8(experiments.Table8(opt)), nil
	case "fig9":
		env := experiments.Figure9(opt, 8)
		var b strings.Builder
		b.WriteString("== Figure 9: long-trajectory envelope ==\n")
		b.WriteString(experiments.ASCIISeries("real", env.Real, 60))
		b.WriteString(experiments.ASCIISeries("min", env.Min, 60))
		b.WriteString(experiments.ASCIISeries("max", env.Max, 60))
		fmt.Fprintf(&b, "envelope coverage of real series: %.0f%%, pooled HWD %.2f\n",
			env.Coverage*100, env.HWD)
		writeSVG(svgDir, "fig9_long_envelope.svg", plot.Chart{
			Title:  "Figure 9: GenDT envelope over the long trajectory",
			XLabel: "sample", YLabel: "RSRP (dBm)",
			Series: []plot.Series{
				{Name: "real", Y: env.Real},
				{Name: "min", Y: env.Min, Dashed: true},
				{Name: "max", Y: env.Max, Dashed: true},
				{Name: "mean", Y: env.Mean},
			},
		}.SVG())
		return b.String(), nil
	case "fig10":
		f := experiments.Figure10(opt)
		var b strings.Builder
		b.WriteString("== Figure 10: GenDT vs stitched short generations ==\n")
		b.WriteString(experiments.ASCIISeries("real", f.Real, 60))
		b.WriteString(experiments.ASCIISeries("GenDT", f.GenDT, 60))
		b.WriteString(experiments.ASCIISeries(fmt.Sprintf("%ds", f.ShortLen), f.Short, 60))
		fmt.Fprintf(&b, "stitching boundary-jump excess: %.2f dB\n", f.BoundaryJumpExcess)
		writeSVG(svgDir, "fig10_stitching.svg", plot.Chart{
			Title:  "Figure 10: GenDT vs stitched short generations",
			XLabel: "sample", YLabel: "RSRP (dBm)",
			Series: []plot.Series{
				{Name: "real", Y: f.Real},
				{Name: "GenDT", Y: f.GenDT},
				{Name: fmt.Sprintf("%ds stitched", f.ShortLen), Y: f.Short, Dashed: true},
			},
		}.SVG())
		return b.String(), nil
	case "fig11":
		curves := experiments.Figure11(opt, 10, 5)
		var fu, fr, du, dr []float64
		for _, s := range curves.Uncertainty {
			fu = append(fu, s.FracUsed*100)
			du = append(du, s.DTW)
		}
		for _, s := range curves.Random {
			fr = append(fr, s.FracUsed*100)
			dr = append(dr, s.DTW)
		}
		writeSVG(svgDir, "fig11_measurement_efficiency.svg", plot.Chart{
			Title:  "Figure 11: uncertainty vs random data selection (DTW)",
			XLabel: "% of data used", YLabel: "DTW",
			Series: []plot.Series{
				{Name: "uncertainty", X: fu, Y: du},
				{Name: "random", X: fr, Y: dr, Dashed: true},
			},
		}.SVG())
		return experiments.RenderFigure11(curves), nil
	case "table9", "fig12":
		return experiments.RenderTable9(experiments.Table9(opt)), nil
	case "table10", "fig13":
		res := experiments.Table10(opt)
		if len(res.RealCDF.Values) > 0 && len(res.GenCDF.Values) > 0 {
			writeSVG(svgDir, "fig13_inter_handover_cdf.svg", plot.Chart{
				Title:  "Figure 13: inter-handover time CDF",
				XLabel: "inter-handover time (s)", YLabel: "CDF", Step: true,
				Series: []plot.Series{
					{Name: "real", X: res.RealCDF.Values, Y: res.RealCDF.Probs},
					{Name: "GenDT", X: res.GenCDF.Values, Y: res.GenCDF.Probs, Dashed: true},
				},
			}.SVG())
		}
		return experiments.RenderTable10(res), nil
	case "table12":
		return experiments.RenderTable12(experiments.Table12(opt)), nil
	case "fig18":
		s := experiments.Figure18(opt)
		var b strings.Builder
		b.WriteString("== Figure 18: sample generated RSRP series (Walk) ==\n")
		b.WriteString(experiments.ASCIISeries("real", s.Real, 60))
		b.WriteString(experiments.ASCIISeries("GenDT", s.GenDT, 60))
		b.WriteString(experiments.ASCIISeries("RC-DG", s.RealDG, 60))
		writeSVG(svgDir, "fig18_sample_series.svg", plot.Chart{
			Title:  "Figure 18: generated RSRP series (Walk)",
			XLabel: "sample", YLabel: "RSRP (dBm)",
			Series: []plot.Series{
				{Name: "real", Y: s.Real},
				{Name: "GenDT", Y: s.GenDT},
				{Name: "Real-Context DG", Y: s.RealDG, Dashed: true},
			},
		}.SVG())
		return b.String(), nil
	case "ext-mdt":
		return experiments.RenderMDT(experiments.ExtMDTComparison(opt)), nil
	case "ext-closedloop":
		return experiments.RenderClosedLoop(experiments.ExtClosedLoop(opt)), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", id)
	}
}
