// Command gendt-rollout promotes a candidate model across a gendt fleet
// one replica at a time, gated by the statistical validation suite, with
// automatic rollback on any failure.
//
// The fleet shares one serving path: every replica's -model flag points at
// -model-path, and the rollout atomically replaces that file with
// -candidate before walking the replicas. Per replica it drains it out of
// the LB's ring, drives /admin/reload, confirms the weight fingerprint on
// /v1/models, runs the remote statistical gate (distributional tolerances
// from -golden plus metamorphic invariants, over the replica's live
// /v1/generate path), readmits it, and watches an error-budget window
// against the LB's pre-rollout /debug/vars baseline. Any failure restores
// the previous file fleet-wide and exits non-zero; the LB's /debug/vars
// rollout block carries the progress and, after a halt, the reason.
//
// Usage:
//
//	gendt-rollout -lb http://127.0.0.1:18080 -admin-token SECRET \
//	    -replicas http://127.0.0.1:18081,http://127.0.0.1:18082 \
//	    -model-path /srv/model.json -candidate /srv/candidate.json \
//	    -golden validate/golden/gate-a.json \
//	    [-dataset A] [-scale F] [-seed N] [-routes N] [-samples N]
//	    [-max-route-len N] [-model NAME] [-backup PATH] [-skip-gate]
//	    [-budget-window D] [-err-budget F] [-p99-factor F]
//	    [-min-window-requests N] [-drain-timeout D]
//
// Exit status: 0 fleet promoted; 1 rollout halted and rolled back; 2 usage
// or setup error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/rollout"
	"gendt/internal/validate"
)

func main() {
	lbURL := flag.String("lb", "", "balancer base URL (required)")
	token := flag.String("admin-token", "", "LB admin bearer token (required)")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs in promotion order (required)")
	modelPath := flag.String("model-path", "", "shared serving path the replicas load from (required)")
	candidate := flag.String("candidate", "", "candidate model file to promote (required)")
	backup := flag.String("backup", "", "rollback copy of the current model (default <model-path>.prev)")
	modelName := flag.String("model", "", "registered model name on the replicas (empty = single-model default)")

	golden := flag.String("golden", "", "golden tolerance file for the statistical gate")
	which := flag.String("dataset", "A", "dataset: A or B (must match the fleet's world)")
	scale := flag.Float64("scale", 0.05, "dataset scale (must match the fleet's world)")
	seed := flag.Int64("seed", 1, "validation seed for the gate")
	routes := flag.Int("routes", 4, "held-out routes for the gate's distributional pass")
	samples := flag.Int("samples", 2, "generation samples per route")
	maxRouteLen := flag.Int("max-route-len", 150, "truncate held-out routes to N samples (negative = full)")
	skipGate := flag.Bool("skip-gate", false, "skip the per-replica statistical gate (fingerprint check still runs)")

	budgetWindow := flag.Duration("budget-window", rollout.DefaultBudgetWindow, "post-readmit observation window per replica (negative disables)")
	errBudget := flag.Float64("err-budget", rollout.DefaultErrBudget, "absolute error-rate headroom over the pre-rollout baseline")
	p99Factor := flag.Float64("p99-factor", rollout.DefaultP99Factor, "window p99 cap as a multiple of the baseline p99")
	minWindowReqs := flag.Int64("min-window-requests", rollout.DefaultMinWindowRequests, "windows smaller than this trivially pass")
	drainTimeout := flag.Duration("drain-timeout", rollout.DefaultDrainTimeout, "max wait for a replica's in-flight requests to drain")
	flag.Parse()

	fail := func(msg string) {
		fmt.Fprintln(os.Stderr, "gendt-rollout:", msg)
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *lbURL == "":
		fail("-lb is required")
	case *token == "":
		fail("-admin-token is required")
	case *replicas == "":
		fail("-replicas is required")
	case *modelPath == "":
		fail("-model-path is required")
	case *candidate == "":
		fail("-candidate is required")
	}

	var reps []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimRight(strings.TrimSpace(r), "/"); r != "" {
			reps = append(reps, r)
		}
	}
	if len(reps) == 0 {
		fail("-replicas named no replicas")
	}

	// The candidate must load before anything is touched: a corrupt file
	// that cannot even parse should fail here, not mid-fleet. Its
	// fingerprint becomes the post-reload check.
	m, err := core.LoadFile(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-rollout: candidate:", err)
		os.Exit(2)
	}

	opt := rollout.Options{
		LB:                strings.TrimRight(*lbURL, "/"),
		AdminToken:        *token,
		Replicas:          reps,
		ModelPath:         *modelPath,
		Candidate:         *candidate,
		Backup:            *backup,
		Model:             *modelName,
		WantFingerprint:   fmt.Sprintf("%016x", m.Fingerprint()),
		BudgetWindow:      *budgetWindow,
		ErrBudget:         *errBudget,
		P99Factor:         *p99Factor,
		MinWindowRequests: *minWindowReqs,
		DrainTimeout:      *drainTimeout,
		Logf:              func(f string, a ...any) { fmt.Printf(f+"\n", a...) },
	}

	if !*skipGate {
		ds, err := dataset.NewByName(strings.ToUpper(*which), dataset.Spec{Seed: *seed, Scale: *scale})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gendt-rollout:", err)
			os.Exit(2)
		}
		gateOpts := validate.Options{
			Dataset: ds, Routes: *routes, SamplesPerRoute: *samples,
			MaxRouteLen: *maxRouteLen, Seed: *seed,
		}
		if *golden != "" {
			gateOpts.Golden, err = validate.LoadGolden(*golden)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gendt-rollout:", err)
				os.Exit(2)
			}
		}
		opt.Gate = func(ctx context.Context, replica string) error {
			rep, err := validate.RunRemote(m, validate.RemoteOptions{
				Target: replica, Model: *modelName,
			}, gateOpts)
			if err != nil {
				return err
			}
			if fails := rep.Failures(); len(fails) > 0 {
				names := make([]string, len(fails))
				for i, c := range fails {
					names[i] = c.Name
				}
				return fmt.Errorf("%d checks failed: %s", len(fails), strings.Join(names, ", "))
			}
			return nil
		}
	}

	c, err := rollout.New(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-rollout:", err)
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	start := time.Now()
	if err := c.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "gendt-rollout:", err)
		os.Exit(1)
	}
	fmt.Printf("gendt-rollout: fleet promoted in %s\n", time.Since(start).Round(time.Millisecond))
}
