// Command gendt-dataset synthesizes a registered scenario (the Dataset
// A/B analogues or any other committed scenario config), prints its
// Table 1/2-style statistics, and optionally exports the measurement runs
// as CSV.
//
// Usage:
//
//	gendt-dataset [-dataset NAME] [-scenario-file F.toml] [-scale F]
//	              [-seed N] [-csv DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gendt/internal/dataset"
	"gendt/internal/export"
	"gendt/internal/scenario"
)

func main() {
	which := flag.String("dataset", "A", "registered scenario name (A, B, NR5G, Tunnel, Suburb, ...)")
	scenarioFile := flag.String("scenario-file", "", "load a scenario config file; it is registered under its [scenario] name and becomes the default -dataset")
	scale := flag.Float64("scale", 0.1, "scale relative to the paper's sample counts")
	seed := flag.Int64("seed", 1, "random seed")
	csvDir := flag.String("csv", "", "directory to export runs as CSV (optional)")
	flag.Parse()

	name, err := resolveScenario(*which, *scenarioFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-dataset:", err)
		os.Exit(2)
	}
	d, err := dataset.NewByName(name, dataset.Spec{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-dataset:", err)
		os.Exit(2)
	}

	fmt.Printf("Dataset %s (scale %.2f, seed %d): %d runs, %d cells\n",
		d.Name, *scale, *seed, len(d.Runs), len(d.World.Deployment.Cells))
	for _, s := range d.Scenarios() {
		fmt.Println("  " + d.ScenarioStats(s).String())
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i, r := range d.Runs {
			split := "test"
			if r.Train {
				split = "train"
			}
			name := fmt.Sprintf("run_%02d_%s_%s.csv", i, sanitize(r.Scenario), split)
			path := filepath.Join(*csvDir, name)
			if err := export.WriteRunCSV(path, r); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d samples)\n", path, len(r.Meas))
		}
	}
}

// resolveScenario registers -scenario-file (if given) and picks the
// dataset name: an explicit -dataset wins, otherwise the loaded file's
// [scenario] name is used.
func resolveScenario(name, file string) (string, error) {
	if file == "" {
		return name, nil
	}
	sc, err := scenario.RegisterFile(file)
	if err != nil {
		return "", err
	}
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dataset" {
			explicit = true
		}
	})
	if explicit {
		return name, nil
	}
	return sc.Name, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
