// Command gendt-dataset synthesizes the Dataset A / Dataset B analogues,
// prints their Table 1/2 statistics, and optionally exports the
// measurement runs as CSV.
//
// Usage:
//
//	gendt-dataset [-dataset A|B] [-scale F] [-seed N] [-csv DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gendt/internal/dataset"
	"gendt/internal/export"
)

func main() {
	which := flag.String("dataset", "A", "dataset to synthesize: A or B")
	scale := flag.Float64("scale", 0.1, "scale relative to the paper's sample counts")
	seed := flag.Int64("seed", 1, "random seed")
	csvDir := flag.String("csv", "", "directory to export runs as CSV (optional)")
	flag.Parse()

	spec := dataset.Spec{Seed: *seed, Scale: *scale}
	var d *dataset.Dataset
	switch *which {
	case "A", "a":
		d = dataset.NewDatasetA(spec)
	case "B", "b":
		d = dataset.NewDatasetB(spec)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *which)
		os.Exit(2)
	}

	fmt.Printf("Dataset %s (scale %.2f, seed %d): %d runs, %d cells\n",
		d.Name, *scale, *seed, len(d.Runs), len(d.World.Deployment.Cells))
	for _, s := range d.Scenarios() {
		fmt.Println("  " + d.ScenarioStats(s).String())
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i, r := range d.Runs {
			split := "test"
			if r.Train {
				split = "train"
			}
			name := fmt.Sprintf("run_%02d_%s_%s.csv", i, sanitize(r.Scenario), split)
			path := filepath.Join(*csvDir, name)
			if err := export.WriteRunCSV(path, r); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d samples)\n", path, len(r.Meas))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
