// Command gendt-gen loads a trained GenDT model and generates radio-KPI
// time series for an unseen trajectory in the dataset's world, writing the
// result as JSON and printing fidelity metrics against the held-out ground
// truth (which a real operator would not have — the metrics are for
// reproduction validation).
//
// Usage:
//
//	gendt-gen -model model.json [-dataset NAME] [-scenario-file F.toml]
//	          [-scale F] [-seed N] [-run N] [-out series.json] [-samples N]
package main

import (
	"flag"
	"fmt"
	"os"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/export"
	"gendt/internal/metrics"
	"gendt/internal/scenario"
)

func main() {
	modelPath := flag.String("model", "gendt-model.json", "trained model path")
	which := flag.String("dataset", "A", "registered scenario name (A, B, NR5G, Tunnel, Suburb, ...)")
	scenarioFile := flag.String("scenario-file", "", "load a scenario config file; it is registered under its [scenario] name and becomes the default -dataset")
	scale := flag.Float64("scale", 0.05, "dataset scale (must match training for the same world)")
	seed := flag.Int64("seed", 1, "random seed (must match training for the same world)")
	runIdx := flag.Int("run", 0, "index into the test runs")
	route := flag.String("route", "", "CSV trajectory (t,lat,lon) to generate for instead of a test run — the pure virtual-drive-test workflow")
	out := flag.String("out", "", "optional JSON output path for the generated series")
	samples := flag.Int("samples", 1, "number of independent generation samples")
	flag.Parse()

	m, err := core.LoadFile(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dsName, err := resolveScenario(*which, *scenarioFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-gen:", err)
		os.Exit(2)
	}
	d, err := dataset.NewByName(dsName, dataset.Spec{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendt-gen:", err)
		os.Exit(2)
	}
	var run dataset.Run
	haveTruth := true
	if *route != "" {
		// Pure virtual drive test: a user-supplied trajectory annotated
		// with the operator-held context; no ground truth exists.
		f, err := os.Open(*route)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err := export.ReadTrajectoryCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run = dataset.Run{Scenario: "custom", Traj: tr, Meas: d.World.Annotate(tr)}
		haveTruth = false
	} else {
		tests := d.TestRuns()
		if *runIdx < 0 || *runIdx >= len(tests) {
			fmt.Fprintf(os.Stderr, "run index %d out of range (%d test runs)\n", *runIdx, len(tests))
			os.Exit(2)
		}
		run = tests[*runIdx]
	}
	seq := core.PrepareSequence(run, m.Cfg.Channels, m.Cfg.MaxCells)
	fmt.Printf("generating %d sample(s) for %s trajectory (%d steps) with %s\n",
		*samples, run.Scenario, seq.Len(), m.String())

	for s := 0; s < *samples; s++ {
		series := m.DenormalizeSeries(m.Generate(seq))
		for c, ch := range m.Cfg.Channels {
			if !haveTruth {
				fmt.Printf("sample %d %-12s mean=%8.2f min=%8.2f max=%8.2f\n",
					s, ch.Name, metrics.Mean(series[c]), minOf(series[c]), maxOf(series[c]))
				continue
			}
			real := make([]float64, seq.Len())
			for t := range real {
				real[t] = ch.Denormalize(seq.KPIs[t][c])
			}
			mae, _ := metrics.MAE(real, series[c])
			dtw, _ := metrics.DTW(real, series[c], 50)
			hwd, _ := metrics.HWD(real, series[c], 40)
			fmt.Printf("sample %d %-12s MAE=%6.2f DTW=%6.2f HWD=%6.2f\n", s, ch.Name, mae, dtw, hwd)
		}
		if *out != "" && s == 0 {
			var names []string
			for _, ch := range m.Cfg.Channels {
				names = append(names, ch.Name)
			}
			gs := export.GeneratedSeries{
				Channels: names,
				Interval: run.Traj.TimeGranularity(),
				Series:   series,
			}
			if err := export.WriteSeriesJSON(*out, gs); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("wrote", *out)
		}
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// resolveScenario registers -scenario-file (if given) and picks the
// dataset name: an explicit -dataset wins, otherwise the loaded file's
// [scenario] name is used.
func resolveScenario(name, file string) (string, error) {
	if file == "" {
		return name, nil
	}
	sc, err := scenario.RegisterFile(file)
	if err != nil {
		return "", err
	}
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dataset" {
			explicit = true
		}
	})
	if explicit {
		return name, nil
	}
	return sc.Name, nil
}
