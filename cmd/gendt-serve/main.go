// Command gendt-serve runs the long-lived GenDT inference service: it
// loads one or more trained models into a hot-reloadable registry, builds
// the dataset world once, and serves virtual drive tests over HTTP.
//
// Endpoints:
//
//	POST /v1/generate   route (JSON points or CSV) -> KPI series (+envelope)
//	GET  /v1/models     registered models
//	GET  /healthz       liveness
//	GET  /debug/vars    request/latency/batching/runtime metrics (JSON)
//	POST /admin/reload  re-read every model file from disk
//
// SIGHUP also reloads the registry; SIGINT/SIGTERM drain in-flight
// requests before exiting.
//
// Usage:
//
//	gendt-serve -model gendt-model.json [-model name=path ...]
//	            [-addr :8080] [-dataset A|B] [-scale F] [-seed N]
//	            [-batch-window 2ms] [-batch-max 64] [-batch-gemm=true]
//	            [-max-body 8388608] [-max-samples 64] [-workers N]
//	            [-timeout 30s] [-precision f64|f32|int8]
//	            [-pprof-addr 127.0.0.1:6060]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/serve"
)

// modelFlags collects repeated -model flags ("path" or "name=path").
type modelFlags []serve.ModelSource

func (f *modelFlags) String() string {
	var parts []string
	for _, s := range *f {
		parts = append(parts, s.Name+"="+s.Path)
	}
	return strings.Join(parts, ",")
}

func (f *modelFlags) Set(v string) error {
	name, path, found := strings.Cut(v, "=")
	if !found {
		path = v
		name = "default"
	}
	if name == "" || path == "" {
		return fmt.Errorf("want name=path or path, got %q", v)
	}
	*f = append(*f, serve.ModelSource{Name: name, Path: path})
	return nil
}

func main() {
	var models modelFlags
	flag.Var(&models, "model", "trained model to serve, as path or name=path (repeatable)")
	addr := flag.String("addr", ":8080", "listen address")
	which := flag.String("dataset", "A", "dataset world: A or B (must match training)")
	scale := flag.Float64("scale", 0.05, "dataset scale (must match training for the same world)")
	seed := flag.Int64("seed", 1, "dataset seed (must match training for the same world)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "micro-batching window; 0 coalesces only queued requests")
	batchMax := flag.Int("batch-max", serve.DefaultMaxBatch, "max generation jobs per coalesced batch")
	batchGemm := flag.Bool("batch-gemm", true, "run frozen f32/int8 batches on the lockstep batched-GEMM engine; false falls back to job-at-a-time execution (bit-identical output)")
	timeout := flag.Duration("timeout", serve.DefaultTimeout, "per-request generation timeout")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBody, "max request body bytes")
	maxSamples := flag.Int("max-samples", serve.DefaultMaxSamples, "max samples per request")
	workers := flag.Int("workers", 0, "generation fan-out width override (0 = per-model setting)")
	precision := flag.String("precision", "", "serving backend for every model: f64 (live float64), f32, or int8 (frozen inference kernels); empty honours each model file's own preference")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof (e.g. 127.0.0.1:6060); empty disables profiling")
	flag.Parse()

	logger := log.New(os.Stderr, "gendt-serve: ", log.LstdFlags)
	if len(models) == 0 {
		logger.Fatal("at least one -model is required")
	}
	if *precision != "" {
		prec, err := core.ParsePrecision(*precision)
		if err != nil {
			logger.Fatal(err)
		}
		for i := range models {
			models[i].Precision = prec
		}
	}

	reg, err := serve.NewRegistry(models, *workers)
	if err != nil {
		logger.Fatal(err)
	}
	if !*batchGemm {
		reg.SetBatchGemm(false)
		logger.Print("batched-GEMM inference disabled (-batch-gemm=false)")
	}
	logger.Printf("loaded %d model(s): %s", len(reg.Names()), strings.Join(reg.Names(), ", "))

	logger.Printf("building dataset %s world (scale=%g seed=%d)...", *which, *scale, *seed)
	world, err := serve.NewWorld(*which, dataset.Spec{Seed: *seed, Scale: *scale})
	if err != nil {
		logger.Fatal(err)
	}

	srv := serve.New(serve.Options{
		Registry:    reg,
		World:       world,
		BatchWindow: *batchWindow,
		MaxBatch:    *batchMax,
		Timeout:     *timeout,
		MaxBody:     *maxBody,
		MaxSamples:  *maxSamples,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Profiling stays off the serving mux and off by default: pprof
	// exposes heap and goroutine internals, so it only ever binds the
	// explicitly requested (typically loopback) address.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{
				Addr:              *pprofAddr,
				Handler:           pmux,
				ReadHeaderTimeout: 10 * time.Second,
			}
			logger.Printf("pprof on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof: %v", err)
			}
		}()
	}

	// SIGHUP hot-reloads every model file; a failed file keeps its old
	// model in service.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			statuses, failures := srv.Reload()
			for _, st := range statuses {
				if st.Error != "" {
					logger.Printf("reload %s: %s", st.Name, st.Error)
				}
			}
			logger.Printf("reload: %d model(s), %d failure(s)", len(statuses), failures)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Print("shutting down: draining in-flight requests")
		// Flip into draining first: new requests get 503 + Retry-After
		// and /healthz fails, so balancers route away while in-flight
		// work finishes under Shutdown.
		srv.StartDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	logger.Printf("serving on %s (batch window %s, max batch %d)", *addr, *batchWindow, *batchMax)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	srv.Close() // drain batchers after the listener stops accepting
	logger.Print("bye")
}
