#!/usr/bin/env bash
# statistical_gate.sh — end-to-end proof that the statistical model-quality
# gate works AND has teeth. Trains a small fixed-seed model, validates it
# against the committed golden tolerances (must pass every check), then
# corrupts the same model's weights with Gaussian noise via the -corrupt
# hook and asserts gendt-validate rejects it with at least one named
# failing distributional check.
#
# The golden file is regenerated with:
#   go run ./cmd/gendt-validate -model <model> $GATE_ARGS \
#       -golden validate/golden/gate-a.json -update-golden
# after retraining with $TRAIN_ARGS below; the derivation is deterministic,
# so a regeneration with an unchanged model is a no-op diff.
#
# A second, lighter section repeats the train -> pass -> corrupt-must-fail
# -> golden-stable loop on the NR5G scenario, whose world exists only as a
# declarative config (scenarios/nr5g-dense.toml) — proving the scenario
# DSL pipeline feeds the same statistical gate as the hard-coded datasets.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Must match the parameters the committed golden file was derived under.
# Workers is pinned so training is bit-identical regardless of runner CPUs.
TRAIN_ARGS=(-dataset A -scale 0.02 -seed 7 -channels rsrp,rsrq
    -epochs 2 -hidden 12 -batch 12 -step 6 -maxcells 6 -workers 2)
GATE_ARGS=(-dataset A -scale 0.02 -seed 7)
GOLDEN=validate/golden/gate-a.json

go build -o "$work/gendt-train" ./cmd/gendt-train
go build -o "$work/gendt-validate" ./cmd/gendt-validate
go build -o "$work/gendt-serve" ./cmd/gendt-serve
go build -o "$work/gendt-bench" ./cmd/gendt-bench

echo "=== statistical gate: train fixed-seed model ==="
"$work/gendt-train" "${TRAIN_ARGS[@]}" -out "$work/model.json" -fingerprint

echo "=== statistical gate: healthy model must pass ==="
"$work/gendt-validate" -model "$work/model.json" "${GATE_ARGS[@]}" \
    -golden "$GOLDEN" | tee "$work/pass.log"

echo "=== statistical gate: frozen f32/int8 backends must pass ==="
# The frozen inference kernels serve the same statistical contract as the
# live model: every distributional tolerance and metamorphic invariant
# must hold at both quantized precisions (determinism is checked per
# precision inside the suite).
for prec in f32 int8; do
    "$work/gendt-validate" -model "$work/model.json" "${GATE_ARGS[@]}" \
        -golden "$GOLDEN" -precision "$prec" | tee "$work/pass-$prec.log"
    # The batched-GEMM engine identity check must have actually run (not
    # skipped) for every frozen backend — it is the in-process half of the
    # serial-vs-batched bit-identity contract.
    if ! grep -q '^ok   *meta/batched-engine-identity' "$work/pass-$prec.log"; then
        echo "FAIL: meta/batched-engine-identity did not run for $prec"
        exit 1
    fi
done

echo "=== statistical gate: batched serving is bit-identical under load ==="
# Two replicas of the same frozen model, one on the lockstep batched-GEMM
# engine and one with -batch-gemm=false (job-at-a-time), per precision.
# Open-loop load keeps the batched replica's micro-batcher coalescing
# multi-request batches while the verify loop asserts per-seed responses
# are float-exact across the two engines — HTTP-level proof that batching
# is purely an execution-schedule change.
BATCHED=http://127.0.0.1:18073
UNBATCHED=http://127.0.0.1:18074
wait_http() {
    for _ in $(seq 1 200); do
        if curl -fsS -o /dev/null "$1" 2>/dev/null; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $1 never became healthy"
    return 1
}
for url in "$BATCHED" "$UNBATCHED"; do
    if curl -fsS -o /dev/null "$url/healthz" 2>/dev/null; then
        echo "FAIL: something is already listening at $url — stale server from an earlier run?"
        exit 1
    fi
done
BENCH_TRACE=(-dataset A -scale 0.02 -seed 7 -routes 4 -steps 30 -trace-seed 1 -timeout 10s)
for prec in f32 int8; do
    echo "--- $prec: batched vs unbatched replicas"
    "$work/gendt-serve" -model "$work/model.json" -dataset A -scale 0.02 -seed 7 \
        -precision "$prec" -addr 127.0.0.1:18073 >"$work/serve-batched-$prec.log" 2>&1 &
    batched_pid=$!
    "$work/gendt-serve" -model "$work/model.json" -dataset A -scale 0.02 -seed 7 \
        -precision "$prec" -batch-gemm=false -addr 127.0.0.1:18074 >"$work/serve-unbatched-$prec.log" 2>&1 &
    unbatched_pid=$!
    trap 'kill "$batched_pid" "$unbatched_pid" 2>/dev/null || true; rm -rf "$work"' EXIT
    wait_http "$BATCHED/healthz"
    wait_http "$UNBATCHED/healthz"
    "$work/gendt-bench" -target "$BATCHED" "${BENCH_TRACE[@]}" \
        -rps 30 -duration 3s -warmup 0s -arrival fixed \
        -max-error-rate 0 -out "$work/load-$prec.json" >"$work/load-$prec.log" 2>&1 &
    load_pid=$!
    if ! "$work/gendt-bench" -target "$BATCHED" -verify-against "$UNBATCHED" \
        -verify-n 4 "${BENCH_TRACE[@]}"; then
        echo "FAIL: $prec: batched vs unbatched serving outputs differ"
        cat "$work/serve-batched-$prec.log" "$work/serve-unbatched-$prec.log"
        exit 1
    fi
    if ! wait "$load_pid"; then
        echo "FAIL: $prec: load window against the batched replica saw errors"
        cat "$work/load-$prec.log"
        exit 1
    fi
    kill "$batched_pid" "$unbatched_pid" 2>/dev/null || true
    wait "$batched_pid" "$unbatched_pid" 2>/dev/null || true
    trap 'rm -rf "$work"' EXIT
done

echo "=== statistical gate: corrupted model must fail ==="
if "$work/gendt-validate" -model "$work/model.json" "${GATE_ARGS[@]}" \
    -golden "$GOLDEN" -corrupt 0.5 >"$work/fail.log" 2>&1; then
    echo "FAIL: gate passed a noise-corrupted model"
    cat "$work/fail.log"
    exit 1
fi
cat "$work/fail.log"
if ! grep -q '^FAIL dist/' "$work/fail.log"; then
    echo "FAIL: corrupted run exited non-zero but named no failing dist/ check"
    exit 1
fi
echo "corrupted model rejected with named checks:"
grep '^FAIL ' "$work/fail.log" | sort -u

echo "=== statistical gate: golden regeneration is a no-op ==="
cp "$GOLDEN" "$work/golden.orig"
"$work/gendt-validate" -model "$work/model.json" "${GATE_ARGS[@]}" \
    -golden "$GOLDEN" -update-golden >/dev/null
if ! cmp -s "$GOLDEN" "$work/golden.orig"; then
    echo "FAIL: regenerated golden differs from the committed file"
    diff "$work/golden.orig" "$GOLDEN" || true
    cp "$work/golden.orig" "$GOLDEN"
    exit 1
fi

echo "=== statistical gate: NR5G scenario (config-defined world) ==="
# Same teeth, different world: NR5G is compiled from a committed scenario
# config rather than a hard-coded constructor. Must match the parameters
# validate/golden/gate-nr5g.json was derived under.
NR_TRAIN_ARGS=(-dataset NR5G -scale 0.05 -seed 7 -channels rsrp,rsrq
    -epochs 2 -hidden 12 -batch 12 -step 6 -maxcells 6 -workers 2)
NR_GATE_ARGS=(-dataset NR5G -scale 0.05 -seed 7)
NR_GOLDEN=validate/golden/gate-nr5g.json

"$work/gendt-train" "${NR_TRAIN_ARGS[@]}" -out "$work/model-nr5g.json" -fingerprint

echo "--- NR5G: healthy model must pass"
"$work/gendt-validate" -model "$work/model-nr5g.json" "${NR_GATE_ARGS[@]}" \
    -golden "$NR_GOLDEN" | tee "$work/pass-nr5g.log"

echo "--- NR5G: corrupted model must fail"
if "$work/gendt-validate" -model "$work/model-nr5g.json" "${NR_GATE_ARGS[@]}" \
    -golden "$NR_GOLDEN" -corrupt 0.5 >"$work/fail-nr5g.log" 2>&1; then
    echo "FAIL: NR5G gate passed a noise-corrupted model"
    cat "$work/fail-nr5g.log"
    exit 1
fi
if ! grep -q '^FAIL dist/' "$work/fail-nr5g.log"; then
    echo "FAIL: corrupted NR5G run exited non-zero but named no failing dist/ check"
    cat "$work/fail-nr5g.log"
    exit 1
fi
echo "corrupted NR5G model rejected with named checks:"
grep '^FAIL ' "$work/fail-nr5g.log" | sort -u

echo "--- NR5G: golden regeneration is a no-op"
cp "$NR_GOLDEN" "$work/golden-nr5g.orig"
"$work/gendt-validate" -model "$work/model-nr5g.json" "${NR_GATE_ARGS[@]}" \
    -golden "$NR_GOLDEN" -update-golden >/dev/null
if ! cmp -s "$NR_GOLDEN" "$work/golden-nr5g.orig"; then
    echo "FAIL: regenerated NR5G golden differs from the committed file"
    diff "$work/golden-nr5g.orig" "$NR_GOLDEN" || true
    cp "$work/golden-nr5g.orig" "$NR_GOLDEN"
    exit 1
fi

echo "statistical gate: pass on healthy, fail on corrupted, golden stable (A + NR5G)"
